(* The §4.3 extension: private references stored on the heap.
   Run with: dune exec examples/heap_blocks.exe

   ThreadScan scans stacks and registers.  A thread that keeps private node
   references inside a pre-allocated heap block (a cursor cache here) must
   declare that block with TS_add_heap_block, or the scan cannot see the
   references and will free the nodes under it. *)

module Runtime = Ts_sim.Runtime
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Set_intf = Ts_ds.Set_intf

let () =
  ignore
    (Runtime.run (fun () ->
         let ts =
           Threadscan.create
             ~config:{ Threadscan.Config.default with max_threads = 8; buffer_size = 16 }
             ()
         in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let set = Ts_ds.Lazy_list.create ~smr () in
         for k = 0 to 63 do
           ignore (set.Set_intf.insert k (k * k))
         done;

         (* A "cursor cache": a heap block in which this thread remembers
            direct pointers to three nodes it visits often.  We cheat and
            fabricate the pointers by allocating fresh nodes — the point is
            only where the references LIVE. *)
         let cache = Runtime.malloc 3 in
         Threadscan.add_heap_block ~start_addr:cache ~len:3;
         Fmt.pr "registered heap block [%d, %d) for this thread@." cache (cache + 3);

         let hot = List.init 3 (fun _ -> Ptr.of_addr (Runtime.malloc 3)) in
         List.iteri
           (fun i p ->
             Runtime.write (Ptr.addr p) (1000 + i);
             Runtime.write (cache + i) p)
           hot;

         (* the nodes get retired (say, deleted from the structure)… *)
         List.iter smr.Smr.retire hot;
         (* …and plenty of reclamation phases go by *)
         for _ = 1 to 80 do
           smr.Smr.retire (Ptr.of_addr (Runtime.malloc 3))
         done;
         Fmt.pr "after %d phases, cached nodes still readable:" (Threadscan.phases ts);
         List.iteri
           (fun i _ -> Fmt.pr " %d" (Runtime.read (Ptr.addr (Runtime.read (cache + i)))))
           hot;
         Fmt.pr "@.";

         (* done with the cache: clear it, deregister, let ThreadScan finish *)
         for i = 0 to 2 do
           Runtime.write (cache + i) 0
         done;
         Threadscan.remove_heap_block ~start_addr:cache ~len:3;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         Fmt.pr "after deregistration + flush: outstanding nodes = %d@."
           (Threadscan.outstanding ts);
         Fmt.pr "the scan followed the registered block exactly as it follows a stack.@."))
