(* The paper's §7 target: "large legacy systems, such as … the kernel
   reference counted data-structures (for example, the VMA)".
   Run with: dune exec examples/kernel_vma.exe

   A miniature address space: virtual memory areas (VMAs) live in a sorted
   lock-based list keyed by their start page (the kernel's mmap_sem-free
   dream).  Page-fault handlers are pure traversals — the hot path the
   kernel would love to keep unsynchronized — while mmap/munmap insert and
   delete areas.  ThreadScan reclaims unmapped VMA descriptors without any
   reference counting in the fault path. *)

module Runtime = Ts_sim.Runtime
module Smr = Ts_smr.Smr
module Set_intf = Ts_ds.Set_intf

let pages = 512 (* address space size, in pages *)

let vma_span = 8 (* pages per area *)

let () =
  ignore
    (Runtime.run ~config:{ Runtime.default_config with cores = 4; seed = 7 } (fun () ->
         let ts =
           Threadscan.create
             ~config:{ Threadscan.Config.default with max_threads = 16; buffer_size = 16 }
             ()
         in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         (* the "VMA tree": start-page -> protection bits *)
         let address_space = Ts_ds.Lazy_list.create ~smr () in
         (* initially map every even-numbered area *)
         let nareas = pages / vma_span in
         for a = 0 to nareas - 1 do
           if a mod 2 = 0 then ignore (address_space.Set_intf.insert (a * vma_span) 0o755)
         done;
         let faults = Runtime.alloc_region 1 in
         let segv = Runtime.alloc_region 1 in
         let remaps = Runtime.alloc_region 1 in
         (* fault handlers: translate a page to its area — pure traversal *)
         let fault_threads =
           List.init 4 (fun _ ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for _ = 1 to 400 do
                     let page = Runtime.rand_below pages in
                     let start = page - (page mod vma_span) in
                     if address_space.Set_intf.contains start then ignore (Runtime.faa faults 1)
                     else ignore (Runtime.faa segv 1)
                   done;
                   smr.Smr.thread_exit ()))
         in
         (* mmap/munmap churn: remap areas, freeing old descriptors *)
         let map_threads =
           List.init 2 (fun _ ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for _ = 1 to 200 do
                     let a = Runtime.rand_below nareas in
                     let start = a * vma_span in
                     if address_space.Set_intf.remove start then begin
                       (* unmapped: the old VMA descriptor is retired by the
                          list; now remap with fresh protections *)
                       ignore (address_space.Set_intf.insert start 0o700);
                       ignore (Runtime.faa remaps 1)
                     end
                     else ignore (address_space.Set_intf.insert start 0o755)
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join fault_threads;
         List.iter Runtime.join map_threads;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         address_space.Set_intf.check ();
         Fmt.pr "page faults resolved:   %d@." (Runtime.read faults);
         Fmt.pr "segfaults (unmapped):   %d@." (Runtime.read segv);
         Fmt.pr "areas remapped:         %d@." (Runtime.read remaps);
         Fmt.pr "VMA descriptors retired=%d freed=%d — no refcounts in the fault path@."
           smr.Smr.counters.retired smr.Smr.counters.freed;
         assert (smr.Smr.counters.retired = smr.Smr.counters.freed)))
