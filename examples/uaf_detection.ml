(* Why memory reclamation exists — Figure 1 of the paper, executed.
   Run with: dune exec examples/uaf_detection.exe

   Thread T1 deletes node B from a list while thread T2 is still traversing
   it.  We run the same race under three policies:

   - leaky:       never free — safe but the memory is gone for good
   - direct-free: free immediately on retire — T2 reads freed memory, and
                  the unmanaged heap catches the use-after-free
   - threadscan:  free only after the scan proves nobody holds B           *)

module Runtime = Ts_sim.Runtime
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr

(* The race from Figure 1, against an arbitrary reclamation scheme.  [cell]
   plays the role of A.next: the shared reference leading to node B. *)
let figure_one_race (smr : Smr.t) =
  let cell = Runtime.alloc_region 1 in
  let t2_has_b = Runtime.alloc_region 1 in
  let t1_freed = Runtime.alloc_region 1 in
  (* B: a node holding the value 42 *)
  let b = Ptr.of_addr (Runtime.malloc 3) in
  Runtime.write (Ptr.addr b) 42;
  Runtime.write cell b;
  let t2 =
    Runtime.spawn (fun () ->
        smr.Smr.thread_init ();
        Frame.with_frame 1 (fun fr ->
            (* T2: B = A.next — a private reference, invisible to T1 *)
            Frame.set fr 0 (Runtime.read cell);
            Runtime.write t2_has_b 1;
            (* wait until T1 has deleted (and possibly freed) B *)
            while Runtime.read t1_freed = 0 do
              Runtime.yield ()
            done;
            (* T2: val = B.value — the dangerous dereference *)
            let v = Runtime.read (Ptr.addr (Frame.get fr 0)) in
            Fmt.pr "  T2 read B.value = %d@." v);
        smr.Smr.thread_exit ())
  in
  smr.Smr.thread_init ();
  while Runtime.read t2_has_b = 0 do
    Runtime.yield ()
  done;
  (* T1: disconnect B (A.next = C), then free it through the scheme *)
  Runtime.write cell Ptr.null;
  smr.Smr.retire b;
  (* push enough garbage through to force reclamation activity *)
  for _ = 1 to 40 do
    smr.Smr.retire (Ptr.of_addr (Runtime.malloc 3))
  done;
  Runtime.write t1_freed 1;
  Runtime.join t2;
  smr.Smr.thread_exit ();
  smr.Smr.flush ()

let run_policy name make =
  Fmt.pr "@.--- %s ---@." name;
  let rt = Runtime.create Runtime.default_config in
  ignore (Runtime.add_thread rt (fun () -> figure_one_race (make ())));
  match Runtime.start rt with
  | _ ->
      let live = Alloc.live_blocks (Runtime.alloc rt) in
      Fmt.pr "  run completed safely; blocks still allocated (leaked): %d@." live
  | exception Runtime.Thread_failure (tid, Mem.Fault (kind, addr)) ->
      Fmt.pr "  thread %d crashed: %s at address %d — caught by the unmanaged heap@." tid
        (Mem.fault_to_string kind) addr

let () =
  Fmt.pr "Figure 1: T1 deletes node B while T2 still holds a private reference.@.";
  run_policy "leaky (never free)" Ts_reclaim.Leaky.create;
  run_policy "direct-free (free on retire — UNSAFE)" Ts_reclaim.Direct_free.create;
  run_policy "threadscan (scan before free)" (fun () ->
      Threadscan.smr
        (Threadscan.create
           ~config:{ Threadscan.Config.default with max_threads = 8; buffer_size = 8 }
           ()));
  Fmt.pr
    "@.threadscan freed everything it could while T2's reference kept B alive exactly as long \
     as needed.@."
