(* Bringing your own data structure to ThreadScan.
   Run with: dune exec examples/custom_ds.exe

   A Treiber stack, written from scratch against the SMR interface.  The
   integration checklist is short — this is the paper's ease-of-use claim:

   1. keep private node pointers in shadow-stack frames (Ts_sim.Frame);
   2. call [retire] on a node once it is unlinked;
   3. have each thread call [thread_init]/[thread_exit].

   No per-read announcements, no epochs: with ThreadScan behind the
   interface, [protect] is a no-op.  (The same code runs unchanged on
   hazard pointers because we still call [protect] and re-validate — other
   schemes simply make it free.) *)

module Runtime = Ts_sim.Runtime
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

module Treiber_stack = struct
  (* node layout: [value][next] *)
  type t = { smr : Smr.t; top : int (* cell holding the top pointer *) }

  let create ~smr =
    let top = Runtime.alloc_region 1 in
    Runtime.write top Ptr.null;
    { smr; top }

  let push t v =
    Frame.with_frame 1 (fun fr ->
        let node = Ptr.of_addr (Runtime.malloc 2) in
        Frame.set fr 0 node;
        Runtime.write (Ptr.addr node) v;
        let rec loop () =
          let old = Runtime.read t.top in
          Runtime.write (Ptr.addr node + 1) old;
          if not (Runtime.cas t.top old node) then loop ()
        in
        loop ())

  let pop t =
    t.smr.Smr.op_begin ();
    let result =
      Frame.with_frame 1 (fun fr ->
          let rec loop () =
            let old = t.smr.Smr.protect ~slot:0 (Runtime.read t.top) in
            Frame.set fr 0 old;
            if Ptr.is_null old then None
            else if Runtime.read t.top <> old then loop () (* validate *)
            else
              let next = Runtime.read (Ptr.addr old + 1) in
              if Runtime.cas t.top old next then begin
                let v = Runtime.read (Ptr.addr old) in
                (* unlinked: hand it to the reclamation scheme *)
                t.smr.Smr.retire old;
                Some v
              end
              else loop ()
          in
          loop ())
    in
    t.smr.Smr.release ~slot:0;
    t.smr.Smr.op_end ();
    result
end

let () =
  ignore
    (Runtime.run (fun () ->
         let ts =
           Threadscan.create
             ~config:{ Threadscan.Config.default with max_threads = 16; buffer_size = 16 }
             ()
         in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let stack = Treiber_stack.create ~smr in
         let popped = Runtime.alloc_region 1 in
         let workers =
           List.init 6 (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for k = 0 to 149 do
                     Treiber_stack.push stack ((1000 * i) + k);
                     if k mod 2 = 0 then
                       match Treiber_stack.pop stack with
                       | Some _ -> ignore (Runtime.faa popped 1)
                       | None -> ()
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join workers;
         (* drain what's left *)
         let rec drain n = match Treiber_stack.pop stack with Some _ -> drain (n + 1) | None -> n in
         let drained = drain 0 in
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         Fmt.pr "pushes:              %d@." (6 * 150);
         Fmt.pr "pops (racing):       %d@." (Runtime.read popped);
         Fmt.pr "pops (final drain):  %d@." drained;
         Fmt.pr "retired = freed:     %d = %d@." smr.Smr.counters.retired smr.Smr.counters.freed;
         Fmt.pr "reclamation phases:  %d@." (Threadscan.phases ts);
         assert (6 * 150 = Runtime.read popped + drained);
         assert (smr.Smr.counters.retired = smr.Smr.counters.freed);
         Fmt.pr "@.a brand-new lock-free stack got safe reclamation from three integration points.@."))
