(* Quickstart: ThreadScan in five steps.
   Run with: dune exec examples/quickstart.exe

   Everything happens inside the simulated multiprocessor
   (Ts_sim.Runtime.run): memory words, threads, signals and the virtual
   clock all live there.  The flow below is the paper's programming model:
   the data structure only ever calls [retire]; scanning and freeing are
   ThreadScan's business. *)

module Runtime = Ts_sim.Runtime
module Smr = Ts_smr.Smr
module Set_intf = Ts_ds.Set_intf

let () =
  ignore
    (Runtime.run (fun () ->
         (* 1. Create a ThreadScan instance: per-thread delete buffers of 32
            pointers, up to 16 participating threads. *)
         let ts =
           Threadscan.create
             ~config:{ Threadscan.Config.default with max_threads = 16; buffer_size = 32 }
             ()
         in
         let smr = Threadscan.smr ts in

         (* 2. Register the current thread (installs the TS-Scan signal
            handler) and build a data structure on top of the scheme. *)
         smr.Smr.thread_init ();
         let set = Ts_ds.Michael_list.create ~smr () in

         (* 3. Run a few concurrent workers.  Each registers itself, does
            ordinary inserts/removes/lookups, and deregisters.  No hazard
            pointers to place, no epochs to bracket: removal inside the list
            just hands unlinked nodes to [retire]. *)
         let workers =
           List.init 4 (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   for k = 0 to 199 do
                     let key = (100 * i) + (k mod 100) in
                     ignore (set.Set_intf.insert key (key * 7));
                     if k mod 3 = 0 then ignore (set.Set_intf.remove key);
                     ignore (set.Set_intf.contains key)
                   done;
                   smr.Smr.thread_exit ()))
         in
         List.iter Runtime.join workers;

         (* 4. Quiesce: free everything still buffered. *)
         smr.Smr.thread_exit ();
         smr.Smr.flush ();

         (* 5. Inspect. *)
         Fmt.pr "final set size:        %d@." (Set_intf.size set);
         Fmt.pr "nodes retired:         %d@." smr.Smr.counters.retired;
         Fmt.pr "nodes freed:           %d@." smr.Smr.counters.freed;
         Fmt.pr "reclamation phases:    %d@." (Threadscan.phases ts);
         Fmt.pr "signals sent:          %d@." (Threadscan.signals_sent ts);
         Fmt.pr "stack words scanned:   %d@." (Threadscan.scan_words ts);
         Fmt.pr "virtual time elapsed:  %d cycles@." (Runtime.now ());
         assert (smr.Smr.counters.retired = smr.Smr.counters.freed);
         Fmt.pr "@.every retired node was reclaimed — no leaks, no dangling reads.@."))
