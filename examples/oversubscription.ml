(* Oversubscription (the paper's Figure 4 scenario, single data point).
   Run with: dune exec examples/oversubscription.exe

   24 threads share 8 simulated cores.  The reclaimer must signal threads
   that are not currently scheduled; the kernel boosts them, which costs
   context switches — the overhead source §6 discusses.  We compare
   ThreadScan against the leaky baseline and show where the cycles went. *)

module Workload = Ts_harness.Workload
module Registry = Ts_scheme.Registry

let spec scheme =
  {
    Workload.default_spec with
    ds = Workload.Hash_ds;
    scheme;
    threads = 24;
    cores = 8;
    quantum = 20_000;
    init_size = 2048;
    key_range = 4096;
    buckets = 256;
    horizon = 600_000;
  }

let () =
  let leaky = Workload.run (spec (Registry.spec "leaky")) in
  let ts = Workload.run (spec (Registry.spec ~buffer:16 "threadscan")) in
  let big = Workload.run (spec (Registry.spec ~buffer:64 "threadscan")) in
  let show name (r : Workload.result) =
    Fmt.pr "%-22s %10.1f ops/Mcycle   signals=%-5d switches=%-5d peak-live=%d blocks@." name
      r.Workload.throughput r.Workload.signals_delivered r.Workload.ctx_switches
      r.Workload.peak_live_blocks
  in
  Fmt.pr "24 threads on 8 cores, hash table, 20%% updates:@.@.";
  show "leaky" leaky;
  show "threadscan (buf=16)" ts;
  show "threadscan (buf=64)" big;
  let pct a b = 100.0 *. (1.0 -. (a /. b)) in
  Fmt.pr "@.threadscan overhead vs leaky:        %5.1f%%@."
    (pct ts.Workload.throughput leaky.Workload.throughput);
  Fmt.pr "after enlarging the delete buffer 4x: %5.1f%%@."
    (pct big.Workload.throughput leaky.Workload.throughput);
  Fmt.pr
    "@.larger buffers mean rarer phases, fewer signals to descheduled threads — the paper's \
     §6 tuning — at the price of more outstanding garbage (peak-live above).@."
