type counters = { mutable retired : int; mutable freed : int; mutable cleanups : int }

type t = {
  name : string;
  thread_init : unit -> unit;
  thread_exit : unit -> unit;
  op_begin : unit -> unit;
  op_end : unit -> unit;
  protect : slot:int -> int -> int;
  release : slot:int -> unit;
  retire : int -> unit;
  flush : unit -> unit;
  counters : counters;
  extras : unit -> (string * int) list;
}

let nop () = ()

let make ~name ?(thread_init = nop) ?(thread_exit = nop) ?(op_begin = nop) ?(op_end = nop)
    ?(protect = fun ~slot:_ p -> p) ?(release = fun ~slot:_ -> ()) ?(flush = nop)
    ?(extras = fun () -> []) ~retire () =
  let counters = { retired = 0; freed = 0; cleanups = 0 } in
  {
    name;
    thread_init;
    thread_exit;
    op_begin;
    op_end;
    protect;
    release;
    retire = (fun p -> retire counters p);
    flush;
    counters;
    extras;
  }

let pp ppf t =
  Fmt.pf ppf "%s: retired=%d freed=%d cleanups=%d" t.name t.counters.retired t.counters.freed
    t.counters.cleanups;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%d" k v) (t.extras ())
