type counters = { mutable retired : int; mutable freed : int; mutable cleanups : int }

(* Raised inside a data-structure operation whose thread was neutralized
   by a scheme's signal handler (DEBRA+): the handler unpinned the
   thread, so the op must restart from its [Set_intf.wrap] bracket
   without calling [op_end]. *)
exception Neutralized

(* When may a thread legally touch a word of a retired-but-not-freed
   block?  Declared by the scheme so analysis tools (the lifecycle
   sanitizer) need no per-scheme knowledge. *)
type retired_access =
  | Invisible  (** readers are invisible by design: any access is fine
                   until the free (ThreadScan, leaky, StackTrack,
                   Hyaline) *)
  | Protected_slots  (** only while a protect slot covers the block
                         (hazard pointers) *)
  | In_op  (** only between [op_begin] and [op_end] (epoch family,
               DEBRA+) *)

type t = {
  name : string;
  thread_init : unit -> unit;
  thread_exit : unit -> unit;
  op_begin : unit -> unit;
  op_end : unit -> unit;
  protect : slot:int -> int -> int;
  release : slot:int -> unit;
  retire : int -> unit;
  flush : unit -> unit;
  counters : counters;
  extras : unit -> (string * int) list;
  retired_access : retired_access;
}

let nop () = ()

(* Counter bumps go through [Ts_rt.critical]: on the sim backend that is
   a direct call (one fiber runs at a time), on the native backend it is
   a mutex, so concurrent retire/free paths on real domains cannot lose
   increments — the leak oracle (outstanding = retired - freed) depends
   on these being exact.  Reads stay plain field accesses: every
   consumer reads after the worker joins (a happens-before edge). *)

let add_retired c n = Ts_rt.critical (fun () -> c.retired <- c.retired + n)
let add_freed c n = Ts_rt.critical (fun () -> c.freed <- c.freed + n)
let add_cleanups c n = Ts_rt.critical (fun () -> c.cleanups <- c.cleanups + n)

let make ~name ?(thread_init = nop) ?(thread_exit = nop) ?(op_begin = nop) ?(op_end = nop)
    ?(protect = fun ~slot:_ p -> p) ?(release = fun ~slot:_ -> ()) ?(flush = nop)
    ?(extras = fun () -> []) ?(retired_access = Invisible) ~retire () =
  (* retire/free paths on different threads bump these; give the record
     its own cache lines so the bumps don't ping-pong *)
  let counters = Ts_util.Padded.copy { retired = 0; freed = 0; cleanups = 0 } in
  {
    name;
    thread_init;
    thread_exit;
    op_begin;
    op_end;
    protect;
    release;
    retire = (fun p -> retire counters p);
    flush;
    counters;
    extras;
    retired_access;
  }

let pp ppf t =
  Fmt.pf ppf "%s: retired=%d freed=%d cleanups=%d" t.name t.counters.retired t.counters.freed
    t.counters.cleanups;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%d" k v) (t.extras ())
