(** Scheme-neutral interface to safe-memory-reclamation schemes.

    Every reclaimer in the repository — ThreadScan and all the baselines the
    paper evaluates against — is packaged as a value of type {!t}.  Data
    structures are written once against this interface; the scheme decides
    what each hook costs:

    - Leaky and ThreadScan make every hook except [retire] free — that is
      the paper's "automatic" property: the data structure only hands nodes
      to [retire].
    - Hazard pointers pay a store + fence in [protect] on every traversal
      step.
    - Epoch-based schemes pay two counter writes per operation in
      [op_begin]/[op_end].

    All hooks implicitly act on the calling simulated thread
    ({!Ts_rt.self}). *)

type counters = {
  mutable retired : int;  (** nodes handed to [retire] *)
  mutable freed : int;  (** nodes actually released to the allocator *)
  mutable cleanups : int;  (** reclamation phases / scans executed *)
}

exception Neutralized
(** Raised inside a data-structure operation whose thread was neutralized
    by a scheme's signal handler (DEBRA+): the handler already unpinned
    the thread, so the operation must restart from its
    {!Ts_ds.Set_intf.wrap} bracket {e without} calling [op_end]. *)

(** When may a thread legally touch a word of a retired-but-not-freed
    block?  Declared by the scheme so analysis tools (the lifecycle
    sanitizer) need no per-scheme special cases. *)
type retired_access =
  | Invisible
      (** readers are invisible by design: any access is legal until the
          free (ThreadScan, leaky, StackTrack, Hyaline) *)
  | Protected_slots  (** only while a protect slot covers the block *)
  | In_op  (** only between [op_begin] and [op_end] (epoch family, DEBRA+) *)

type t = {
  name : string;
  thread_init : unit -> unit;
      (** Must be called by each participating thread before its first
          operation (registers the thread with the scheme). *)
  thread_exit : unit -> unit;
      (** Must be called by each participating thread after its last
          operation. *)
  op_begin : unit -> unit;  (** Start of a data-structure operation. *)
  op_end : unit -> unit;  (** End of a data-structure operation. *)
  protect : slot:int -> int -> int;
      (** [protect ~slot p] announces that the calling thread is about to
          dereference pointer [p]; returns [p].  [slot] distinguishes the
          hand-over-hand positions (prev/cur/next).  No-op for schemes with
          invisible readers. *)
  release : slot:int -> unit;  (** Clears a protection slot. *)
  retire : int -> unit;
      (** [retire p] hands an unlinked node to the scheme.  [p] is a pointer
          value ({!Ts_umem.Ptr}); tag bits are ignored.  The scheme frees the
          node once it can prove no thread still holds a reference. *)
  flush : unit -> unit;
      (** Drive reclamation to quiescence.  Called after all worker threads
          have exited, from the coordinating thread; afterwards every
          reclaimable retired node must have been freed. *)
  counters : counters;
  extras : unit -> (string * int) list;
      (** Scheme-specific statistics (signals sent, phases, marked nodes…). *)
  retired_access : retired_access;
      (** The scheme's contract for touching retired-but-unfreed blocks. *)
}

val make :
  name:string ->
  ?thread_init:(unit -> unit) ->
  ?thread_exit:(unit -> unit) ->
  ?op_begin:(unit -> unit) ->
  ?op_end:(unit -> unit) ->
  ?protect:(slot:int -> int -> int) ->
  ?release:(slot:int -> unit) ->
  ?flush:(unit -> unit) ->
  ?extras:(unit -> (string * int) list) ->
  ?retired_access:retired_access ->
  retire:(counters -> int -> unit) ->
  unit ->
  t
(** Builds a scheme with no-op defaults for the omitted hooks (and
    [Invisible] retired-access semantics).  [retire] receives the shared
    counters record (and must bump [retired] itself, which keeps
    accounting decisions inside the scheme). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name plus counters and extras. *)

(** {1 Counter updates}

    Schemes must bump the shared counters through these helpers, never by
    direct field assignment: the increments run inside {!Ts_rt.critical},
    so on the native backend concurrent retire/free paths cannot lose
    updates — the leak oracle ([outstanding = retired - freed]) depends on
    the counts being exact.  Plain field {e reads} are fine wherever a
    happens-before edge exists (after joining the workers). *)

val add_retired : counters -> int -> unit
val add_freed : counters -> int -> unit
val add_cleanups : counters -> int -> unit
