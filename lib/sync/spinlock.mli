(** Test-and-test-and-set spinlock with exponential backoff, living in a
    single unmanaged-memory word.  This is the fine-grained lock used by the
    lock-based data structures and by ThreadScan's reclaimer lock. *)

type t

val create : unit -> t
(** Allocates the lock word (must run inside the simulator). *)

val at : int -> t
(** A lock view over an existing word (e.g. a lock field inside a node). *)

val acquire : t -> unit

val try_acquire : t -> bool

val release : t -> unit

val is_held : t -> bool

val word : t -> int
(** Address of the lock word. *)
