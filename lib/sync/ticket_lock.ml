module Runtime = Ts_rt

type t = { next : int; serving : int }

let create () =
  let base = Runtime.alloc_region 2 in
  Runtime.write base 0;
  Runtime.write (base + 1) 0;
  { next = base; serving = base + 1 }

let acquire t =
  let ticket = Runtime.faa t.next 1 in
  let b = Backoff.create ~max_delay:1024 () in
  while Runtime.read t.serving <> ticket do
    Backoff.once b
  done

let release t =
  let s = Runtime.read t.serving in
  Runtime.write t.serving (s + 1)
