(** Exponential backoff for contended spin loops. *)

type t

val create : ?min_delay:int -> ?max_delay:int -> unit -> t
(** Delays are in virtual cycles; defaults 32 .. 4096. *)

val once : t -> unit
(** Burn the current delay (and yield the core if oversubscribed), then
    double it up to the maximum. *)

val reset : t -> unit
