(** FIFO ticket lock: fair under contention, two unmanaged words. *)

type t

val create : unit -> t

val acquire : t -> unit

val release : t -> unit
