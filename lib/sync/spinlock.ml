module Runtime = Ts_rt

type t = { addr : int }

let create () =
  let addr = Runtime.alloc_region 1 in
  Runtime.write addr 0;
  { addr }

let at addr = { addr }

let try_acquire t = Runtime.read t.addr = 0 && Runtime.cas t.addr 0 1

let acquire t =
  if not (try_acquire t) then begin
    Runtime.set_wait_note (Some (Fmt.str "spinning on lock@%d" t.addr));
    let b = Backoff.create () in
    while not (try_acquire t) do
      Backoff.once b
    done;
    Runtime.set_wait_note None
  end

let release t = Runtime.write t.addr 0

let is_held t = Runtime.read t.addr <> 0

let word t = t.addr
