(** Sense-reversing barrier for [n] simulated threads; reusable. *)

type t

val create : int -> t

val wait : t -> unit
