module Runtime = Ts_rt

type t = { parties : int; count : int; sense : int }

let create parties =
  let base = Runtime.alloc_region 2 in
  Runtime.write base 0 (* count *);
  Runtime.write (base + 1) 0 (* sense *);
  { parties; count = base; sense = base + 1 }

let wait t =
  let my_sense = 1 - Runtime.read t.sense in
  let arrived = Runtime.faa t.count 1 + 1 in
  if arrived = t.parties then begin
    Runtime.write t.count 0;
    Runtime.write t.sense my_sense
  end
  else begin
    let b = Backoff.create ~max_delay:512 () in
    while Runtime.read t.sense <> my_sense do
      Backoff.once b
    done
  end
