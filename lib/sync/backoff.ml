module Runtime = Ts_rt

type t = { min_delay : int; max_delay : int; mutable delay : int }

let create ?(min_delay = 32) ?(max_delay = 4096) () =
  { min_delay; max_delay; delay = min_delay }

let once t =
  Runtime.advance t.delay;
  Runtime.yield ();
  t.delay <- min t.max_delay (2 * t.delay)

let reset t = t.delay <- t.min_delay
