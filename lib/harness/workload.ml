module Runtime = Ts_rt
module Sim = Ts_sim.Runtime (* tslint: allow facade -- workloads pin simulator-only chaos knobs *)
module Alloc = Ts_umem.Alloc
module Mem = Ts_umem.Mem
module Smr = Ts_smr.Smr
module Set_intf = Ts_ds.Set_intf
module Registry = Ts_scheme.Registry

type backend = Backend_sim | Backend_native of { pool : int }

let backend_to_string = function
  | Backend_sim -> "sim"
  | Backend_native { pool } -> if pool = 0 then "native" else Fmt.str "native(pool=%d)" pool

type ds_kind = List_ds | Hash_ds | Skip_ds | Lazy_ds | Split_ds

type fault =
  | Fault_none
  | Fault_crash of { victims : int; at : int }
  | Fault_stall of { victims : int; at : int; cycles : int }

let ds_kind_to_string = function
  | List_ds -> "list"
  | Hash_ds -> "hash"
  | Skip_ds -> "skiplist"
  | Lazy_ds -> "lazy-list"
  | Split_ds -> "split-hash"

let fault_to_string = function
  | Fault_none -> "none"
  | Fault_crash { victims; at } -> Fmt.str "crash:%d@%d" victims at
  | Fault_stall { victims; at; cycles } -> Fmt.str "stall:%d@%d:%d" victims at cycles

type spec = {
  ds : ds_kind;
  scheme : Registry.spec;
  threads : int;
  cores : int;
  quantum : int;
  update_ratio : float;
  init_size : int;
  key_range : int;
  horizon : int;
  padding : int;
  buckets : int;
  max_height : int;
  epoch_batch : int;
  stack_depth : int;
  fault : fault;
  chaos : Ts_util.Fault_plan.t;
  watchdog_ms : int;
  magazine : bool;
  seed : int;
  backend : backend;
  smr_wrap : (Smr.t -> Smr.t) option;
}

let default_spec =
  {
    ds = List_ds;
    scheme = Registry.spec "threadscan";
    threads = 4;
    cores = 0;
    quantum = 50_000;
    update_ratio = 0.2;
    init_size = 128;
    key_range = 256;
    horizon = 150_000;
    padding = 0;
    buckets = 128;
    max_height = 10;
    epoch_batch = 64;
    stack_depth = 64;
    fault = Fault_none;
    chaos = [];
    watchdog_ms = 0;
    magazine = true;
    seed = 0xBE5;
    backend = Backend_sim;
    smr_wrap = None;
  }

type result = {
  spec : spec;
  ops : int;
  throughput : float;
  elapsed : int;
  wall_ns : int;
  wall_throughput : float;
  trials : int; (* runs behind this result; fields below are the median's *)
  wall_min_ns : int;
  wall_max_ns : int;
  retired : int;
  freed : int;
  outstanding : int;
  peak_live_blocks : int;
  peak_live_words : int;
  signals_delivered : int;
  ctx_switches : int;
  faults : int;
  extras : (string * int) list;
  wedged : bool;
  post_mortem : string option;
  chaos : Chaos.report option;
}

let scheme_env spec =
  let hazard_slots =
    match spec.ds with
    | Skip_ds -> Ts_ds.Skiplist.hazard_slots ~max_height:spec.max_height
    | List_ds | Hash_ds | Lazy_ds | Split_ds -> 3
  in
  let budgets =
    (* Under injected faults (classic or chaos-plan) ThreadScan's
       degradation ladder must fire within the horizon, so the budgets
       scale with it instead of using the (deliberately generous)
       defaults. *)
    match (spec.fault, spec.chaos) with
    | Fault_none, [] -> None
    | _ -> Some (Registry.fault_budgets ~horizon:spec.horizon)
  in
  {
    Registry.max_threads = spec.threads + 2;
    hazard_slots;
    epoch_batch = spec.epoch_batch;
    budgets;
  }

let make_scheme spec = (Registry.build (scheme_env spec) spec.scheme).Registry.smr

let make_ds spec smr =
  match spec.ds with
  | List_ds -> Ts_ds.Michael_list.create ~smr ~padding:spec.padding ()
  | Hash_ds -> Ts_ds.Hash_table.create ~smr ~padding:spec.padding ~buckets:spec.buckets ()
  | Skip_ds -> Ts_ds.Skiplist.create ~smr ~max_height:spec.max_height ~padding:spec.padding ()
  | Lazy_ds -> Ts_ds.Lazy_list.create ~smr ~padding:spec.padding ()
  | Split_ds ->
      Ts_ds.Split_hash.set
        (Ts_ds.Split_hash.create ~smr ~padding:spec.padding ~max_buckets:spec.buckets ())

let prefill spec (ds : Set_intf.t) =
  (* deterministic prefill to exactly [init_size] distinct keys *)
  let inserted = ref 0 in
  while !inserted < spec.init_size do
    let key = Runtime.rand_below spec.key_range in
    if ds.Set_intf.insert key key then incr inserted
  done

(* Fault self-injection, between two data-structure operations.  The fault
   lands {e inside} a bracketed operation ([op_begin] with no matching
   [op_end] for a crash): for epoch-style schemes that is the worst case —
   the victim's counter is parked odd and no quiescence wait involving it
   ever succeeds — while ThreadScan's free [op_begin] leaves the victim
   simply crashed/stalled with its buffer and stack for the reclaimer's
   degradation ladder to deal with. *)
let maybe_inject spec (smr : Smr.t) ~i ~start ~armed =
  if !armed then
    match spec.fault with
    | Fault_crash { victims; at } when i < victims && Runtime.now () - start >= at ->
        armed := false;
        smr.Smr.op_begin ();
        Runtime.crash (Runtime.self ())
    | Fault_stall { victims; at; cycles } when i < victims && Runtime.now () - start >= at ->
        armed := false;
        smr.Smr.op_begin ();
        Runtime.stall ~cycles (Runtime.self ());
        smr.Smr.op_end ()
    | _ -> ()

let worker spec (smr : Smr.t) (ds : Set_intf.t) ~chaos ~i ~start ~deadline ~count () =
  smr.Smr.thread_init ();
  (* Baseline call-chain frame: a real thread's used stack is far deeper
     than the data structure's own frame, and TS-Scan walks all of it. *)
  if spec.stack_depth > 0 then ignore (Ts_rt.Frame.push spec.stack_depth);
  let insert_below = spec.update_ratio /. 2.0 in
  let ops = ref 0 in
  let armed = ref (spec.fault <> Fault_none) in
  while Runtime.now () < deadline do
    maybe_inject spec smr ~i ~start ~armed;
    (match chaos with Some c -> Chaos.worker_hook c smr ~i | None -> ());
    let key = Runtime.rand_below spec.key_range in
    let dice = float_of_int (Runtime.rand_below 1_000_000) /. 1_000_000.0 in
    if dice < insert_below then ignore (ds.Set_intf.insert key key)
    else if dice < spec.update_ratio then ignore (ds.Set_intf.remove key)
    else ignore (ds.Set_intf.contains key);
    incr ops
  done;
  count := !ops;
  smr.Smr.thread_exit ()

(* The measured interval, identical on both backends: build the scheme and
   structure, prefill, spawn the workers, join, flush.  Only {!Ts_rt}
   primitives are used, so the same closure runs under the effect-based
   scheduler and on real domains. *)
let body spec counts retired freed extras ~chaos ~smr_cell () =
  let smr =
    let smr = make_scheme spec in
    match spec.smr_wrap with Some wrap -> wrap smr | None -> smr
  in
  (* published before the workers start so a wedged run (watchdog kill,
     refs below never reached) can still read the final counters *)
  smr_cell := Some smr;
  smr.Smr.thread_init ();
  let ds = make_ds spec smr in
  prefill spec ds;
  let start = Runtime.now () in
  (match chaos with Some c -> Chaos.arm c ~start | None -> ());
  let deadline = start + spec.horizon in
  let ws =
    List.init spec.threads (fun i ->
        Runtime.spawn (worker spec smr ds ~chaos ~i ~start ~deadline ~count:counts.(i)))
  in
  (* The chaos monitor is spawned after the workers so their tids stay
     1..threads (the clause victim indexing the plan grammar promises). *)
  let mon =
    match chaos with
    | None -> None
    | Some c ->
        let done_addr = Runtime.alloc_region 1 in
        let tick = max 1_000 (spec.horizon / 100) in
        Some (done_addr, Runtime.spawn (Chaos.monitor c smr ~done_addr ~tick))
  in
  List.iter Runtime.join ws;
  smr.Smr.thread_exit ();
  smr.Smr.flush ();
  retired := smr.Smr.counters.retired;
  freed := smr.Smr.counters.freed;
  extras := smr.Smr.extras ();
  match mon with
  | None -> ()
  | Some (done_addr, m) ->
      Runtime.write done_addr 1;
      Runtime.join m

let finish spec counts ~retired ~freed ~extras ~elapsed ~wall_ns ~peak_live_blocks
    ~peak_live_words ~signals_delivered ~ctx_switches ~faults ~wedged ~post_mortem ~chaos =
  let ops = Array.fold_left (fun acc c -> acc + !c) 0 counts in
  if faults > 0 then failwith "workload produced memory faults";
  {
    spec;
    ops;
    throughput = float_of_int ops *. 1_000_000.0 /. float_of_int spec.horizon;
    elapsed;
    wall_ns;
    wall_throughput =
      (if wall_ns > 0 then float_of_int ops *. 1e9 /. float_of_int wall_ns else 0.0);
    trials = 1;
    wall_min_ns = wall_ns;
    wall_max_ns = wall_ns;
    retired = !retired;
    freed = !freed;
    outstanding = !retired - !freed;
    peak_live_blocks;
    peak_live_words;
    signals_delivered;
    ctx_switches;
    faults;
    extras = !extras;
    wedged;
    post_mortem;
    chaos;
  }

(* Allocator magazine statistics, appended to the scheme extras so they
   reach tables and JSON through the one existing channel.  Hit rate is
   left to consumers: hits / (hits + misses). *)
let alloc_extras ~hits ~misses ~refills ~flushes =
  [
    ("mag-hits", hits);
    ("mag-misses", misses);
    ("mag-refills", refills);
    ("mag-flushes", flushes);
  ]

let make_chaos (spec : spec) ~native =
  if spec.chaos = [] then None
  else
    Some
      (Chaos.create ~plan:spec.chaos ~native ~threads:spec.threads
         ~recovery_extras:(Registry.descriptor spec.scheme).Registry.recovery_extras)

let run_sim (spec : spec) =
  if Ts_util.Fault_plan.has_wall_triggers spec.chaos then
    invalid_arg
      "Workload.run: wall-clock (ms) chaos triggers need the native backend (the sim has no \
       wall clock)";
  if Ts_util.Fault_plan.has_forever spec.chaos && not (Ts_util.Fault_plan.has_release spec.chaos)
  then
    invalid_arg
      "Workload.run: an unreleased stall-forever plan never terminates on the sim backend; \
       add a release clause or use the native backend with a watchdog";
  let config =
    {
      Sim.default_config with
      cores = spec.cores;
      quantum = spec.quantum;
      seed = spec.seed;
      magazine = spec.magazine;
      propagate_failures = true;
    }
  in
  let rt = Sim.create config in
  let counts = Array.init spec.threads (fun _ -> ref 0) in
  let retired = ref 0 and freed = ref 0 and extras = ref [] in
  let chaos = make_chaos spec ~native:false in
  let smr_cell = ref None in
  ignore (Sim.add_thread rt (body spec counts retired freed extras ~chaos ~smr_cell));
  let res = Sim.start rt in
  let a = Sim.alloc rt in
  extras :=
    !extras
    @ alloc_extras ~hits:(Alloc.cache_hits a) ~misses:(Alloc.cache_misses a)
        ~refills:(Alloc.central_refills a) ~flushes:(Alloc.cache_flushes a);
  finish spec counts ~retired ~freed ~extras ~elapsed:res.Sim.elapsed ~wall_ns:0
    ~peak_live_blocks:(Alloc.peak_live_blocks (Sim.alloc rt))
    ~peak_live_words:(Alloc.peak_live_words (Sim.alloc rt))
    ~signals_delivered:res.Sim.run_stats.signals_delivered
    ~ctx_switches:res.Sim.run_stats.ctx_switches
    ~faults:(Mem.total_faults (Sim.mem rt))
    ~wedged:false ~post_mortem:None
    ~chaos:(Option.map Chaos.report chaos)

let run_native (spec : spec) ~pool =
  (* Size the heap for the live set plus the retired-but-unreclaimed backlog
     (per-thread buffers, epoch batches); the native heap cannot grow. *)
  let node_w = 8 + spec.padding + spec.max_height in
  let mem_capacity =
    max (1 lsl 21) (8 * (spec.key_range + ((spec.threads + 1) * 2048)) * node_w)
  in
  let config =
    {
      Ts_par.Runtime.default_config with
      pool;
      seed = spec.seed;
      max_threads = spec.threads + 2;
      mem_capacity;
      strict_mem = true;
      magazine = spec.magazine;
      propagate_failures = true;
      watchdog_ns = spec.watchdog_ms * 1_000_000;
    }
  in
  let counts = Array.init spec.threads (fun _ -> ref 0) in
  let retired = ref 0 and freed = ref 0 and extras = ref [] in
  let chaos = make_chaos spec ~native:true in
  let smr_cell = ref None in
  let res = Ts_par.Runtime.run ~config (body spec counts retired freed extras ~chaos ~smr_cell) in
  (* A wedged run was killed before the body could publish its totals:
     read them off the scheme directly (its domains are gone, the record
     is quiescent). *)
  if res.Ts_par.Runtime.wedged then begin
    match !smr_cell with
    | Some smr ->
        retired := smr.Smr.counters.retired;
        freed := smr.Smr.counters.freed;
        extras := smr.Smr.extras ()
    | None -> ()
  end;
  let heap = res.Ts_par.Runtime.heap in
  extras :=
    !extras
    @ alloc_extras
        ~hits:(Ts_par.Heap.cache_hits heap)
        ~misses:(Ts_par.Heap.cache_misses heap)
        ~refills:(Ts_par.Heap.central_refills heap)
        ~flushes:(Ts_par.Heap.cache_flushes heap);
  finish spec counts ~retired ~freed ~extras ~elapsed:res.Ts_par.Runtime.elapsed
    ~wall_ns:res.Ts_par.Runtime.wall_ns
    ~peak_live_blocks:(Ts_par.Heap.peak_live_blocks heap)
    ~peak_live_words:(Ts_par.Heap.peak_live_words heap)
    ~signals_delivered:res.Ts_par.Runtime.run_stats.signals_delivered ~ctx_switches:0
    ~faults:(Ts_par.Heap.total_faults heap)
    ~wedged:res.Ts_par.Runtime.wedged ~post_mortem:res.Ts_par.Runtime.post_mortem
    ~chaos:(Option.map Chaos.report chaos)

(* A plan that parks a victim inside an open operation bracket with no way
   back (crash, or stall-forever with no release) starves a quiescence
   waiter forever — fatal for any scheme whose registry descriptor says
   [wedges_under_stall]. *)
let chaos_wedges plan =
  List.exists
    (fun c ->
      match c.Ts_util.Fault_plan.event with
      | Ts_util.Fault_plan.Crash -> true
      | Ts_util.Fault_plan.Stall Ts_util.Fault_plan.Forever ->
          not (Ts_util.Fault_plan.has_release plan)
      | _ -> false)
    plan

let run (spec : spec) =
  let d = Registry.descriptor spec.scheme in
  let caps = d.Registry.caps in
  (match spec.fault with
  | Fault_crash _ when not caps.Registry.crash_tolerant ->
      invalid_arg
        (Fmt.str
           "Workload.run: %s cannot survive a crash (its quiescence wait never returns); use a \
            crash-tolerant scheme"
           d.Registry.id)
  | _ -> ());
  if caps.Registry.wedges_under_stall && chaos_wedges spec.chaos then (
    match spec.backend with
    | Backend_native _ when spec.watchdog_ms > 0 ->
        () (* the watchdog bounds the wedge; that IS the experiment *)
    | _ ->
        invalid_arg
          (Fmt.str
             "Workload.run: this chaos plan wedges %s; run it on the native backend with \
              watchdog_ms set so the wedge is bounded and reported"
             d.Registry.id));
  (if caps.Registry.neutralizes then
     match spec.ds with
     | Lazy_ds | Skip_ds ->
         invalid_arg
           (Fmt.str
              "Workload.run: %s aborts and restarts victims' operations, which a lock-based \
               structure cannot survive (an aborted lock holder deadlocks its peers); use a \
               lock-free structure"
              d.Registry.id)
     | List_ds | Hash_ds | Split_ds -> ());
  match spec.backend with
  | Backend_sim -> run_sim spec
  | Backend_native { pool } -> run_native spec ~pool

(* Median-of-trials for wall-clock runs: the sim backend is deterministic
   (one trial tells all), but native wall times on a shared machine are
   noisy, so sweeps report the median run with the min/max spread.
   [retry_wedged] reruns a trial once if the watchdog killed it — a slow
   shared machine can wedge spuriously — keeping the retried result
   (wedged or not) if the rerun wedges too. *)
let run_trials ?(retry_wedged = false) ~trials spec =
  let run_one () =
    let r = run spec in
    if r.wedged && retry_wedged then run spec else r
  in
  let n = max 1 trials in
  if n = 1 then run_one ()
  else begin
    let rs = List.init n (fun _ -> run_one ()) in
    let sorted = List.sort (fun a b -> compare a.wall_ns b.wall_ns) rs in
    let med = List.nth sorted (n / 2) in
    {
      med with
      trials = n;
      wall_min_ns = (List.hd sorted).wall_ns;
      wall_max_ns = (List.nth sorted (n - 1)).wall_ns;
    }
  end
