(** Benchmark workload runner — the §6 methodology.

    A run prefills a structure to [init_size], starts [threads] workers that
    each execute random operations ([update_ratio] split evenly between
    inserts and removes, the rest lookups over [key_range]) until their
    virtual clock passes [horizon] cycles, then joins, flushes the
    reclamation scheme, and reports totals.  Throughput is operations per
    million virtual cycles, the simulator's analogue of the paper's
    ops/second. *)

(** Execution backend for a run.  [Backend_sim] is the deterministic
    effect-based simulator (one OS thread, virtual clock).  [Backend_native]
    runs the identical workload closure on real OCaml 5 domains through
    {!Ts_par.Runtime}; [pool] bounds the domain count (0 = one domain per
    logical thread, capped at the recommended domain count). *)
type backend = Backend_sim | Backend_native of { pool : int }

val backend_to_string : backend -> string

type ds_kind = List_ds | Hash_ds | Skip_ds | Lazy_ds | Split_ds

(** Environment fault: the [victims] lowest-indexed workers self-inject once
    their clock passes [at] cycles after the measured interval starts.  The
    injection lands {e inside} a bracketed operation (an [op_begin] that,
    for a crash, never reaches its [op_end]) — the worst case for
    epoch-style schemes, whose quiescence condition the victim then never
    satisfies. *)
type fault =
  | Fault_none
  | Fault_crash of { victims : int; at : int }
  | Fault_stall of { victims : int; at : int; cycles : int }

val ds_kind_to_string : ds_kind -> string

val fault_to_string : fault -> string

type spec = {
  ds : ds_kind;
  scheme : Ts_scheme.Registry.spec;
      (** which reclamation scheme, by registry id — see
          {!Ts_scheme.Registry.all} for the field and
          {!Ts_scheme.Registry.spec} to construct one *)
  threads : int;
  cores : int;  (** 0 = one core per thread *)
  quantum : int;
  update_ratio : float;
  init_size : int;
  key_range : int;
  horizon : int;  (** virtual cycles each worker runs *)
  padding : int;  (** extra node words (false-sharing padding) *)
  buckets : int;  (** hash table only *)
  max_height : int;  (** skip list only *)
  epoch_batch : int;
  stack_depth : int;
      (** words of baseline call-chain stack each worker occupies (scanned
          by TS-Scan on every signal, like a real thread's used stack) *)
  fault : fault;
      (** injected crash/stall plan; under a fault, ThreadScan runs with
          horizon-scaled degradation budgets so the ladder can fire *)
  chaos : Ts_util.Fault_plan.t;
      (** multi-clause chaos plan ({!Chaos}): cycle-triggered clauses are
          self-inflicted by the victims, wall-clock triggers and releases
          are fired by a dedicated monitor thread that also samples
          recovery metrics into [result.chaos].  [[]] (the default) adds
          no monitor and leaves sim schedules untouched. *)
  watchdog_ms : int;
      (** native backend only: arm {!Ts_par.Runtime}'s liveness watchdog
          so a wedged run (e.g. epoch under stall-forever) is killed and
          reported instead of hanging.  [0] disables. *)
  magazine : bool;
      (** per-thread allocator magazines (both backends); [false] is the
          no-magazine baseline where every small malloc/free goes through
          the central free lists.  An allocator knob, not a scheme
          parameter — it applies to every scheme alike. *)
  seed : int;
  backend : backend;
  smr_wrap : (Ts_smr.Smr.t -> Ts_smr.Smr.t) option;
      (** instrument the scheme before the workload uses it (e.g.
          {!Ts_analyze.Analyze.wrap_smr}); [None] in {!default_spec} *)
}

val default_spec : spec

type result = {
  spec : spec;
  ops : int;  (** completed operations, all workers *)
  throughput : float;  (** ops per million cycles *)
  elapsed : int;  (** virtual end time of the whole run *)
  wall_ns : int;  (** real elapsed nanoseconds (0 on the sim backend) *)
  wall_throughput : float;  (** ops per real second (0 on the sim backend) *)
  trials : int;  (** runs behind this result ({!run_trials}); 1 for {!run} *)
  wall_min_ns : int;  (** fastest trial's wall time *)
  wall_max_ns : int;  (** slowest trial's wall time *)
  retired : int;
  freed : int;
  outstanding : int;  (** retired - freed after flush *)
  peak_live_blocks : int;
  peak_live_words : int;
  signals_delivered : int;
  ctx_switches : int;
  faults : int;  (** memory faults (must be 0) *)
  extras : (string * int) list;  (** scheme-specific statistics *)
  wedged : bool;  (** the native liveness watchdog had to kill the run *)
  post_mortem : string option;  (** thread states at watchdog fire time *)
  chaos : Chaos.report option;  (** recovery metrics, when [spec.chaos] ran *)
}

val run : spec -> result
(** Executes the workload on [spec.backend] — a fresh simulator, or a fresh
    domain pool for [Backend_native].  @raise Failure if the run produced
    memory faults or a thread died (an injected {!fault} is not a death in
    this sense — crashed victims are expected).
    @raise Invalid_argument when the scheme's registry capabilities rule
    the spec out: {!Fault_crash} on a scheme that is not
    [crash_tolerant], a wedging chaos plan (crash or unreleased
    stall-forever clause) on a [wedges_under_stall] scheme without a
    native watchdog to bound it, or a neutralizing scheme paired with a
    lock-based structure.  Also when a chaos plan uses wall-clock
    triggers on the sim backend, or when an unreleased stall-forever
    chaos plan runs on the sim at all (virtual time would never end the
    run). *)

val run_trials : ?retry_wedged:bool -> trials:int -> spec -> result
(** {!run} repeated [trials] times, reporting the median run (by
    [wall_ns]) with the min/max spread in [wall_min_ns]/[wall_max_ns].
    Meant for the noisy native backend; on the deterministic sim backend
    every trial is identical, so use [trials = 1] there.  [retry_wedged]
    (default false) reruns a watchdog-killed trial once — for schemes
    that are {e expected} to recover, a wedge on a loaded machine may be
    noise; leave it off for rows where the wedge is the datum. *)
