module Registry = Ts_scheme.Registry

type scale = Quick | Full | Paper

let scale_of_string = function
  | "quick" -> Some Quick
  | "full" -> Some Full
  | "paper" -> Some Paper
  | _ -> None

type point = { threads : int; cells : (string * Workload.result) list }

(* ------------------------------------------------------------------ *)
(* Workload presets                                                    *)
(* ------------------------------------------------------------------ *)

(* Per-structure base spec at a given scale.  The paper's sizes (list 1024
   nodes / range 2048; hash 131072 nodes / 4096 buckets; skip list 128000
   nodes) appear at [Paper] scale; [Quick] shrinks everything so one sweep
   runs in seconds of real time while keeping every ratio (range = 2 x
   size, bucket occupancy 32, 20 % updates). *)
let base_spec scale (ds : Workload.ds_kind) =
  let d = Workload.default_spec in
  (* the lazy list shares the list workload; split-hash shares the hash
     workload (its bucket count is the max_buckets bound) *)
  let shape =
    match ds with
    | Workload.Lazy_ds -> Workload.List_ds
    | Workload.Split_ds -> Workload.Hash_ds
    | other -> other
  in
  let spec =
    match (scale, shape) with
    | Quick, Workload.List_ds ->
        { d with ds; init_size = 96; key_range = 192; horizon = 400_000 }
    | Quick, Workload.Hash_ds ->
        { d with ds; init_size = 2048; key_range = 4096; buckets = 256; horizon = 150_000 }
    | Quick, Workload.Skip_ds ->
        { d with ds; init_size = 512; key_range = 1024; max_height = 10; horizon = 250_000 }
    | Full, Workload.List_ds ->
        { d with ds; init_size = 1024; key_range = 2048; horizon = 4_000_000 }
    | Full, Workload.Hash_ds ->
        { d with ds; init_size = 16384; key_range = 32768; buckets = 512; horizon = 400_000 }
    | Full, Workload.Skip_ds ->
        { d with ds; init_size = 8192; key_range = 16384; max_height = 14; horizon = 800_000 }
    | Paper, Workload.List_ds ->
        {
          d with
          ds;
          init_size = 1024;
          key_range = 2048;
          horizon = 4_000_000;
          padding = 19 (* 172-byte nodes *);
        }
    | Paper, Workload.Hash_ds ->
        {
          d with
          ds;
          init_size = 131_072;
          key_range = 262_144;
          buckets = 4096;
          horizon = 30_000_000;
        }
    | Paper, Workload.Skip_ds ->
        {
          d with
          ds;
          init_size = 128_000;
          key_range = 256_000;
          max_height = 17;
          horizon = 60_000_000;
        }
    | _, (Workload.Lazy_ds | Workload.Split_ds) -> assert false (* mapped to a shape above *)
  in
  (* Retire pacing (ThreadScan per-thread buffer, epoch batch), sized so
     several reclamation rounds happen within each horizon: roughly 5 % of
     operations retire a node, and per-operation cost differs by an order
     of magnitude between the structures. *)
  let reclaim_pace =
    match (scale, shape) with
    | Quick, Workload.List_ds -> (12, 8)
    | Quick, Workload.Hash_ds -> (32, 12)
    | Quick, Workload.Skip_ds -> (24, 12)
    | Full, Workload.List_ds -> (16, 8)
    | Full, Workload.Hash_ds -> (48, 24)
    | Full, Workload.Skip_ds -> (32, 16)
    | Paper, _ -> (1024, 1024)
    | _, (Workload.Lazy_ds | Workload.Split_ds) -> assert false
  in
  let ts_buffer, epoch_batch = reclaim_pace in
  ({ spec with epoch_batch }, ts_buffer)

let slow_delay scale =
  (* What produces the paper's collapse is delay >> reclamation period:
     every other thread's cleanup lands inside the errant thread's
     mid-operation stall and waits it out.  The paper's 40 ms vs. ~1 ms
     between cleanups is a factor of ~40; we keep the delay comparable to
     the horizon so the same regime holds at simulation scale. *)
  match scale with Quick -> 600_000 | Full -> 6_000_000 | Paper -> 50_000_000

let fig3_threads = function
  | Quick -> [ 1; 2; 4; 8; 16; 24; 32 ]
  | Full | Paper -> [ 1; 2; 4; 8; 16; 32; 48; 64; 80 ]

let fig4_setup = function
  | Quick -> (12, [ 6; 12; 18; 24; 30 ])
  | Full | Paper -> (80, [ 40; 80; 120; 160; 200 ])

(* ------------------------------------------------------------------ *)
(* Sweep machinery                                                     *)
(* ------------------------------------------------------------------ *)

let run_sweep ~backend ~trials ~threads_list ~series =
  List.map
    (fun threads ->
      let cells =
        List.map
          (fun (label, spec) ->
            (label, Workload.run_trials ~trials { spec with Workload.threads; backend }))
          series
      in
      { threads; cells })
    threads_list

let has_wall points =
  List.exists
    (fun { cells; _ } -> List.exists (fun (_, r) -> r.Workload.wall_ns > 0) cells)
    points

let print_points ~title points =
  match points with
  | [] -> ()
  | first :: _ ->
      let labels = List.map fst first.cells in
      Fmt.pr "@.== %s ==@." title;
      Fmt.pr "%-8s" "threads";
      List.iter (fun l -> Fmt.pr "%14s" l) labels;
      Fmt.pr "@.";
      List.iter
        (fun { threads; cells } ->
          Fmt.pr "%-8d" threads;
          List.iter (fun (_, r) -> Fmt.pr "%14.1f" r.Workload.throughput) cells;
          Fmt.pr "@.")
        points;
      Fmt.pr "(throughput: completed operations per million simulated cycles)@.";
      if has_wall points then begin
        (* native backend: the virtual-cycle table above keeps runs
           comparable with the simulator; this one is the real machine *)
        let trials =
          List.fold_left
            (fun acc { cells; _ } ->
              List.fold_left (fun acc (_, r) -> max acc r.Workload.trials) acc cells)
            1 points
        in
        if trials > 1 then
          Fmt.pr "@.-- %s: wall clock (kops per real second, median of %d trials) --@." title
            trials
        else Fmt.pr "@.-- %s: wall clock (kops per real second) --@." title;
        Fmt.pr "%-8s" "threads";
        List.iter (fun l -> Fmt.pr "%14s" l) labels;
        Fmt.pr "@.";
        List.iter
          (fun { threads; cells } ->
            Fmt.pr "%-8d" threads;
            List.iter
              (fun (_, r) -> Fmt.pr "%14.1f" (r.Workload.wall_throughput /. 1e3))
              cells;
            Fmt.pr "@.")
          points;
        if trials > 1 then begin
          (* the run-to-run noise behind each median, as min/med/max ms *)
          Fmt.pr "@.-- %s: wall-clock spread (min/median/max ms per run) --@." title;
          Fmt.pr "%-8s" "threads";
          List.iter (fun l -> Fmt.pr "%14s" l) labels;
          Fmt.pr "@.";
          List.iter
            (fun { threads; cells } ->
              Fmt.pr "%-8d" threads;
              List.iter
                (fun (_, r) ->
                  Fmt.pr "%14s"
                    (Fmt.str "%.0f/%.0f/%.0f"
                       (float_of_int r.Workload.wall_min_ns /. 1e6)
                       (float_of_int r.Workload.wall_ns /. 1e6)
                       (float_of_int r.Workload.wall_max_ns /. 1e6)))
                cells;
              Fmt.pr "@.")
            points
        end
      end

let ratio_summary points ~num ~den =
  let ratios =
    List.filter_map
      (fun { cells; _ } ->
        match (List.assoc_opt num cells, List.assoc_opt den cells) with
        | Some a, Some b when b.Workload.throughput > 0.0 ->
            Some (a.Workload.throughput /. b.Workload.throughput)
        | _ -> None)
      points
  in
  if ratios <> [] then begin
    let avg = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
    Fmt.pr "summary: %s / %s throughput ratio, averaged over the sweep: %.2fx@." num den avg
  end

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let fig3_series scale ds =
  let spec, ts_buffer = base_spec scale ds in
  (* the headline series runs the full reclamation pipeline (docs/PERF.md);
     ablate-pipeline measures it against the legacy single-stage phase *)
  let ts = Registry.spec ~buffer:ts_buffer "threadscan-pipe" in
  [
    ("leaky", { spec with scheme = Registry.spec "leaky" });
    ("hazard", { spec with scheme = Registry.spec "hazard" });
    ("epoch", { spec with scheme = Registry.spec "epoch" });
    ("slow-epoch", { spec with scheme = Registry.spec ~delay:(slow_delay scale) "slow-epoch" });
    ("stacktrack", { spec with scheme = Registry.spec "stacktrack" });
    ("debra", { spec with scheme = Registry.spec "debra" });
    ("hyaline", { spec with scheme = Registry.spec "hyaline" });
    ("threadscan", { spec with scheme = ts });
  ]

let fig3 ~backend ~trials scale ds =
  run_sweep ~backend ~trials ~threads_list:(fig3_threads scale) ~series:(fig3_series scale ds)

(* Fig 5 regime: the hash table (large key range, cheap operations, heavy
   retire traffic), with ThreadScan shown both ways — the legacy
   single-stage phase and the parallel reclamation pipeline — against the
   leaky and epoch baselines. *)
let fig5_series scale =
  let spec, ts_buffer = base_spec scale Workload.Hash_ds in
  [
    ("leaky", { spec with scheme = Registry.spec "leaky" });
    ("epoch", { spec with scheme = Registry.spec "epoch" });
    ("debra", { spec with scheme = Registry.spec "debra" });
    ("hyaline", { spec with scheme = Registry.spec "hyaline" });
    ( "threadscan",
      {
        spec with
        scheme = Registry.spec ~buffer:ts_buffer "threadscan";
      } );
    ( "ts-pipeline",
      {
        spec with
        scheme = Registry.spec ~buffer:ts_buffer "threadscan-pipe";
      } );
  ]

let fig5 ~backend ~trials scale =
  run_sweep ~backend ~trials ~threads_list:(fig3_threads scale) ~series:(fig5_series scale)

let fig4 ~backend ~trials scale ds =
  let cores, threads_list = fig4_setup scale in
  let spec, ts_buffer = base_spec scale ds in
  (* Oversubscribed threads share the cores, so the wall-clock horizon must
     grow for every thread to keep retiring (the paper simply ran 10 s). *)
  let spec =
    { spec with Workload.cores; quantum = 20_000; horizon = 4 * spec.Workload.horizon }
  in
  (* oversubscribed threads retire more slowly; keep phases coming *)
  let ts_buffer = max 8 (ts_buffer / 2) in
  let series =
    [
      ("leaky", { spec with scheme = Registry.spec "leaky" });
      ("epoch", { spec with scheme = Registry.spec "epoch" });
      ( "threadscan",
        { spec with scheme = Registry.spec ~buffer:ts_buffer "threadscan" }
      );
    ]
    @
    (* the paper additionally shows a large-buffer ThreadScan on the
       oversubscribed hash table *)
    match ds with
    | Workload.Hash_ds ->
        [
          ( "ts-bigbuf",
            {
              spec with
              scheme = Registry.spec ~buffer:(4 * ts_buffer) "threadscan";
            } );
        ]
    | _ -> []
  in
  run_sweep ~backend ~trials ~threads_list ~series

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablate_buffer ~backend ~trials scale =
  let cores, threads_list = fig4_setup scale in
  let spec, ts_buffer = base_spec scale Workload.Hash_ds in
  let spec =
    { spec with Workload.cores; quantum = 20_000; horizon = 4 * spec.Workload.horizon }
  in
  let series =
    List.map
      (fun mult ->
        ( Fmt.str "buf=%d" (ts_buffer * mult),
          { spec with Workload.scheme = Registry.spec ~buffer:(ts_buffer * mult) "threadscan" } ))
      [ 1; 4; 16 ]
  in
  run_sweep ~backend ~trials ~threads_list ~series

let ablate_slow_epoch ~backend ~trials scale =
  let spec, _ = base_spec scale Workload.List_ds in
  let threads_list = match scale with Quick -> [ 8; 16 ] | _ -> [ 16; 40 ] in
  let series =
    ("epoch", { spec with Workload.scheme = Registry.spec "epoch" })
    :: List.map
         (fun delay ->
           ( Fmt.str "delay=%dk" (delay / 1000),
             { spec with Workload.scheme = Registry.spec ~delay "slow-epoch" } ))
         [ slow_delay scale / 32; slow_delay scale / 8; slow_delay scale ]
  in
  run_sweep ~backend ~trials ~threads_list ~series

let ablate_help_free ~backend ~trials scale =
  let spec, ts_buffer = base_spec scale Workload.Hash_ds in
  (* frequent phases, so the reclaimer-latency difference is observable *)
  let ts_buffer = max 4 (ts_buffer / 4) in
  let threads_list = fig3_threads scale in
  let series =
    [
      ( "reclaimer-only",
        { spec with Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan" }
      );
      ( "help-free",
        { spec with Workload.scheme = Registry.spec ~buffer:ts_buffer ~help_free:true "threadscan" }
      );
    ]
  in
  run_sweep ~backend ~trials ~threads_list ~series

let ablate_padding ~backend ~trials scale =
  let spec, ts_buffer = base_spec scale Workload.List_ds in
  let ts = Registry.spec ~buffer:ts_buffer "threadscan" in
  let threads_list = match scale with Quick -> [ 4; 16; 32 ] | _ -> [ 8; 32; 80 ] in
  let series =
    [
      ("pad=0", { spec with Workload.scheme = ts; padding = 0 });
      ("pad=19", { spec with Workload.scheme = ts; padding = 19 });
    ]
  in
  run_sweep ~backend ~trials ~threads_list ~series

(* Fault tolerance: kill one worker mid-operation at 25 % of the base
   horizon, then let the rest run 1x / 2x / 4x of it.  The x-axis is the
   horizon multiplier ([point.threads] is reused to carry it): ThreadScan
   reaps the corpse and keeps reclaiming, so its outstanding count stays
   flat as the run stretches, while (patient) epoch — whose quiescence
   condition the dead thread's odd counter blocks forever — accumulates
   every node retired after the crash.  Plain epoch is not even runnable
   here: its unbounded quiescence wait would simply hang. *)
let ablate_crash ~backend ~trials scale =
  let spec, ts_buffer = base_spec scale Workload.List_ds in
  let threads = match scale with Quick -> 8 | _ -> 16 in
  let base_horizon = spec.Workload.horizon in
  let fault = Workload.Fault_crash { victims = 1; at = base_horizon / 4 } in
  let patience = max 20_000 (base_horizon / 10) in
  let series mult =
    let spec = { spec with Workload.threads; fault; horizon = mult * base_horizon } in
    [
      ( "threadscan",
        { spec with Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan" }
      );
      ("patient-epoch", { spec with Workload.scheme = Registry.spec ~patience "patient-epoch" });
    ]
  in
  List.map
    (fun mult ->
      {
        threads = mult;
        cells =
          List.map
            (fun (l, s) -> (l, Workload.run_trials ~trials { s with Workload.backend }))
            (series mult);
      })
    [ 1; 2; 4 ]

let ablate_structures ~backend ~trials scale =
  (* all six structures under ThreadScan: the library-breadth overview *)
  let threads_list = match scale with Quick -> [ 4; 16; 32 ] | _ -> [ 8; 32; 80 ] in
  let series =
    List.map
      (fun ds ->
        let spec, ts_buffer = base_spec scale ds in
        ( Workload.ds_kind_to_string ds,
          { spec with Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan" }
        ))
      [
        Workload.List_ds;
        Workload.Lazy_ds;
        Workload.Hash_ds;
        Workload.Split_ds;
        Workload.Skip_ds;
      ]
  in
  run_sweep ~backend ~trials ~threads_list ~series

(* The pipeline, measured: the legacy single-stage reclamation phase
   against the three-stage pipeline (sealed-run k-way merge collect,
   Bloom-prefiltered TS-Scan, chunked helper-parallel free), same
   workload, same pacing — the paired before/after for docs/PERF.md. *)
let ablate_pipeline ~backend ~trials scale =
  let spec, ts_buffer = base_spec scale Workload.List_ds in
  let threads_list = fig3_threads scale in
  let series =
    [
      ( "ts-legacy",
        {
          spec with
          Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan";
        } );
      ( "ts-pipeline",
        {
          spec with
          Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan-pipe";
        } );
    ]
  in
  run_sweep ~backend ~trials ~threads_list ~series

(* Chaos recovery: the crash/stall degradation ablation rerun on the
   native backend with real-domain fault injection.  One worker is taken
   out a quarter of the way into the run — killed, stalled for half a
   horizon, or stalled forever — and the chaos monitor accounts for the
   recovery in wall-clock time: when the degradation ladder first acted
   (takeover), when outstanding memory was back at the pre-fault
   baseline (MTTR), and how many signals the recovery cost.  Epoch's
   unbounded quiescence wait wedges under the crash and the unreleased
   stall; the liveness watchdog turns that hang into a reported, bounded
   datum instead of a hung benchmark. *)
let chaos_recovery ~backend ~trials scale =
  (match backend with
  | Workload.Backend_native _ -> ()
  | Workload.Backend_sim ->
      invalid_arg "chaos-recovery injects faults into real domains: run it with --backend native");
  let spec, ts_buffer = base_spec scale Workload.List_ds in
  let threads = match scale with Quick -> 6 | _ -> 16 in
  let watchdog_ms = match scale with Quick -> 2_500 | _ -> 10_000 in
  let hz = spec.Workload.horizon in
  let spec = { spec with Workload.threads; backend; watchdog_ms } in
  let plans =
    [
      Fmt.str "crash:1@%d" (hz / 4);
      Fmt.str "stall:1@%d:%d" (hz / 4) (hz / 2);
      Fmt.str "stall:1@%d:forever" (hz / 4);
    ]
  in
  let series =
    [
      ("leaky", { spec with Workload.scheme = Registry.spec "leaky" });
      ("epoch", { spec with Workload.scheme = Registry.spec "epoch" });
      ("hazard", { spec with Workload.scheme = Registry.spec "hazard" });
      ("debra", { spec with Workload.scheme = Registry.spec "debra" });
      ("hyaline", { spec with Workload.scheme = Registry.spec "hyaline" });
      ( "threadscan",
        { spec with Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan" }
      );
      ( "ts-pipeline",
        { spec with Workload.scheme = Registry.spec ~buffer:ts_buffer "threadscan-pipe" }
      );
    ]
  in
  List.mapi
    (fun idx plan_str ->
      let plan =
        match Ts_util.Fault_plan.parse plan_str with
        | Ok p -> p
        | Error e -> invalid_arg ("chaos-recovery: " ^ e)
      in
      let forever =
        Ts_util.Fault_plan.has_forever plan && not (Ts_util.Fault_plan.has_release plan)
      in
      let crash =
        List.exists (fun c -> c.Ts_util.Fault_plan.event = Ts_util.Fault_plan.Crash) plan
      in
      let cells =
        List.map
          (fun (label, s) ->
            (* An unreleased stall-forever parks its victim until the
               watchdog fires, so every scheme's *run* wedges on that row
               by design; under a crash only schemes whose registry entry
               is not crash-tolerant (quiescence waiters) do.  A wedge
               takes the full watchdog budget and is deterministic, so
               one trial suffices there — and retrying it would just
               double the wait for the same answer. *)
            let caps = (Registry.descriptor s.Workload.scheme).Registry.caps in
            let wedge_expected = forever || (crash && not caps.Registry.crash_tolerant) in
            let trials = if wedge_expected then 1 else max 1 trials in
            ( label,
              Workload.run_trials ~retry_wedged:(not wedge_expected) ~trials
                { s with Workload.chaos = plan } ))
          series
      in
      { threads = idx + 1; cells })
    plans

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let extras_summary points ~label ~key =
  let total =
    List.fold_left
      (fun acc { cells; _ } ->
        match List.assoc_opt label cells with
        | Some r -> acc + (try List.assoc key r.Workload.extras with Not_found -> 0)
        | None -> acc)
      0 points
  in
  Fmt.pr "summary: series %s: total %s = %d@." label key total

let memory_summary points =
  List.iter
    (fun { threads; cells } ->
      Fmt.pr "summary: %d threads peak live memory:" threads;
      List.iter
        (fun (label, r) -> Fmt.pr " %s=%dw" label r.Workload.peak_live_words)
        cells;
      Fmt.pr "@.")
    points

let degradation_summary points =
  Fmt.pr "@.== ablate-crash == (1 worker crashes mid-operation at 25%% of the base horizon)@.";
  Fmt.pr "%-9s %-14s %12s %12s %10s  %s@." "horizon" "scheme" "retired" "outstanding"
    "throughput" "degradation";
  List.iter
    (fun { threads = mult; cells } ->
      List.iter
        (fun (label, r) ->
          let get k = try List.assoc k r.Workload.extras with Not_found -> 0 in
          let detail =
            if List.mem_assoc "reaps" r.Workload.extras then
              Fmt.str "reaps=%d blind-phases=%d proxy-scans=%d adopted=%d" (get "reaps")
                (get "ack-timeouts") (get "proxy-scans") (get "adopted")
            else
              Fmt.str "quiescence-gaveups=%d unreclaimed-peak=%d" (get "quiescence-gaveups")
                (get "unreclaimed-peak")
          in
          Fmt.pr "%-9s %-14s %12d %12d %10.1f  %s@." (Fmt.str "%dx" mult) label r.Workload.retired
            r.Workload.outstanding r.Workload.throughput detail)
        cells)
    points;
  (* The wedge, stated as a number: how outstanding scales from the shortest
     to the longest run of each scheme. *)
  (match (points, List.rev points) with
  | first :: _, last :: _ ->
      List.iter
        (fun (label, r1) ->
          match List.assoc_opt label last.cells with
          | Some r4 ->
              Fmt.pr "summary: %s outstanding after flush: %d at 1x -> %d at %dx@." label
                r1.Workload.outstanding r4.Workload.outstanding last.threads
          | None -> ())
        first.cells
  | _ -> ());
  Fmt.pr
    "(outstanding = retired - freed after flush; epoch cannot reclaim anything retired after \
     the crash, threadscan reaps the corpse and keeps the count bounded)@."

let chaos_plan_features plan =
  let forever =
    Ts_util.Fault_plan.has_forever plan && not (Ts_util.Fault_plan.has_release plan)
  in
  let crash =
    List.exists (fun c -> c.Ts_util.Fault_plan.event = Ts_util.Fault_plan.Crash) plan
  in
  (forever, crash)

let chaos_summary points =
  Fmt.pr "@.== chaos-recovery == (native fault injection; times are wall-clock ms after the fault)@.";
  Fmt.pr "%-24s %-12s %-6s %9s %9s %10s %10s %8s %12s@." "plan" "scheme" "wedged" "baseline"
    "peak" "takeover" "recover" "storm" "outstanding";
  let ms ns = if ns < 0 then "-" else Fmt.str "%.1f" (float_of_int ns /. 1e6) in
  List.iter
    (fun { cells; _ } ->
      List.iter
        (fun (label, r) ->
          match r.Workload.chaos with
          | None -> ()
          | Some c ->
              Fmt.pr "%-24s %-12s %-6b %9d %9d %10s %10s %8d %12d@."
                (Ts_util.Fault_plan.to_string r.Workload.spec.Workload.chaos)
                label r.Workload.wedged c.Chaos.baseline_outstanding c.Chaos.peak_outstanding
                (ms c.Chaos.takeover_after) (ms c.Chaos.recover_after) c.Chaos.storm_signals
                r.Workload.outstanding)
        cells)
    points;
  Fmt.pr
    "(baseline/peak/outstanding = retired - freed; takeover = first degradation-ladder \
     activity; recover = outstanding back at the pre-fault baseline, i.e. MTTR; storm = \
     scheme signals spent recovering; wedged = the liveness watchdog had to kill the run)@."

(* The quiesce oracle behind the chaos-recovery CI gate: every violation
   is printed, then the run aborts so the job fails on the exit code. *)
let chaos_oracle points =
  let violations = ref [] in
  let bad fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun { cells; _ } ->
      List.iter
        (fun (label, r) ->
          let plan = r.Workload.spec.Workload.chaos in
          let forever, crash = chaos_plan_features plan in
          let cell = Fmt.str "%s/%s" (Ts_util.Fault_plan.to_string plan) label in
          if r.Workload.faults > 0 then
            bad "%s: %d memory faults (must be 0)" cell r.Workload.faults;
          match r.Workload.chaos with
          | None -> bad "%s: no chaos report was produced" cell
          | Some c -> (
              if c.Chaos.fault_at < 0 then bad "%s: the chaos plan never fired" cell;
              match (Registry.descriptor r.Workload.spec.Workload.scheme).Registry.chaos with
              | Registry.Self_healing ->
                  if forever then begin
                    (* the frozen victim never finishes its horizon, so
                       the watchdog ends the run — but reclamation must
                       have kept pace around the corpse in the meantime *)
                    if c.Chaos.takeover_after < 0 && c.Chaos.recover_after < 0 then
                      bad
                        "%s: neither ladder activity nor memory recovery under stall-forever"
                        cell
                  end
                  else begin
                    if r.Workload.wedged then
                      bad "%s: watchdog killed a run that should recover" cell;
                    if crash && c.Chaos.takeover_after < 0 then
                      bad "%s: crashed victim was never reaped (no ladder activity)" cell;
                    if c.Chaos.recover_after < 0
                       && r.Workload.outstanding > c.Chaos.baseline_outstanding
                    then
                      bad "%s: outstanding %d never returned to the pre-fault baseline %d"
                        cell r.Workload.outstanding c.Chaos.baseline_outstanding
                  end
              | Registry.Crash_healing ->
                  (* the recovery machinery covers crashed threads only
                     (proxy work on the corpse's behalf); a stalled
                     reader legitimately pins memory until it resumes,
                     so the stall rows assert nothing beyond no-wedge *)
                  if crash then begin
                    if r.Workload.wedged then
                      bad "%s: watchdog killed a run that should recover" cell;
                    if c.Chaos.takeover_after < 0 then
                      bad "%s: crashed victim's references were never dropped (no proxy \
                           activity)"
                        cell;
                    if c.Chaos.recover_after < 0
                       && r.Workload.outstanding > c.Chaos.baseline_outstanding
                    then
                      bad "%s: outstanding %d never returned to the pre-fault baseline %d"
                        cell r.Workload.outstanding c.Chaos.baseline_outstanding
                  end
                  else if (not forever) && r.Workload.wedged then
                    bad "%s: wedged under a bounded stall it should survive" cell
              | Registry.Quiescence_bound ->
                  if (crash || forever) && not r.Workload.wedged then
                    bad "%s: a quiescence-bound scheme was expected to wedge but the run \
                         finished"
                      cell;
                  (* not recover_after: a batch already quiescent at fault
                     time may still free and dip outstanding for an
                     instant — the durable leak is the datum *)
                  if (crash || forever)
                     && r.Workload.outstanding < c.Chaos.baseline_outstanding
                  then
                    bad "%s: the durable leak %d ended below the pre-fault baseline %d under \
                         a plan that starves quiescence"
                      cell r.Workload.outstanding c.Chaos.baseline_outstanding;
                  if (not (crash || forever)) && r.Workload.wedged then
                    bad "%s: wedged under a bounded stall it should survive" cell
              | Registry.Unchecked -> ()))
        cells)
    points;
  match List.rev !violations with
  | [] -> Fmt.pr "oracle: all recovery invariants held (0 faults, 0 unexpected wedges)@."
  | vs ->
      List.iter (fun v -> Fmt.pr "oracle violation: %s@." v) vs;
      failwith (Fmt.str "chaos-recovery: %d oracle violation(s)" (List.length vs))

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled emission (the toolchain here has no JSON library): the
   labels are all [a-z0-9-=()] so escaping only has to cover the
   characters that could ever break the framing. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The scheme's tuning parameters, emitted separately so the scheme id
   itself stays the stable registry name (no "threadscan-pipe(1024)"
   drift between tables, CLI and JSON). *)
let json_params_suffix (r : Workload.result) =
  match Registry.params_assoc r.Workload.spec.Workload.scheme with
  | [] -> ""
  | kv ->
      Fmt.str ", \"params\": { %s }"
        (String.concat ", "
           (List.map (fun (k, v) -> Fmt.str "\"%s\": %d" (json_escape k) v) kv))

(* Derived per-cell fields.  [reclaim_phase_ns] converts the scheme's
   virtual phase-cycles total into wall-clock nanoseconds with this run's
   own ns-per-cycle ratio (0 on the sim backend, which has no wall
   clock); the magazine counters ride the extras channel from the
   allocator.  Each group is emitted only when the run carried its
   counter, so cells of schemes without a phase clock keep their exact
   prior shape. *)
let json_derived_suffix (r : Workload.result) =
  let get k = List.assoc_opt k r.Workload.extras in
  let phase =
    match get "phase-cycles" with
    | None -> ""
    | Some cycles ->
        let ns =
          if r.Workload.wall_ns <= 0 || r.Workload.elapsed <= 0 then 0
          else
            int_of_float
              (float_of_int cycles *. float_of_int r.Workload.wall_ns
              /. float_of_int r.Workload.elapsed)
        in
        Fmt.str ", \"reclaim_phase_ns\": %d" ns
  in
  let mag =
    match (get "mag-hits", get "mag-misses") with
    | Some hits, Some misses ->
        let v k = Option.value (get k) ~default:0 in
        Fmt.str
          ", \"mag_hits\": %d, \"mag_misses\": %d, \"mag_refills\": %d, \"mag_flushes\": %d"
          hits misses (v "mag-refills") (v "mag-flushes")
    | _ -> ""
  in
  phase ^ mag

(* Appended to a cell only when that run carried a chaos plan, so every
   pre-existing consumer of the JSON sees unchanged bytes. *)
let json_chaos_suffix (r : Workload.result) =
  match r.Workload.chaos with
  | None -> ""
  | Some c ->
      Fmt.str
        ", \"wedged\": %b, \"chaos_plan\": \"%s\", \"fault_at_ns\": %d, \
         \"baseline_outstanding\": %d, \"peak_outstanding\": %d, \"takeover_ns\": %d, \
         \"recover_ns\": %d, \"storm_signals\": %d"
        r.Workload.wedged
        (json_escape (Ts_util.Fault_plan.to_string r.Workload.spec.Workload.chaos))
        c.Chaos.fault_at c.Chaos.baseline_outstanding c.Chaos.peak_outstanding
        c.Chaos.takeover_after c.Chaos.recover_after c.Chaos.storm_signals

let json_of_points ~target ~backend ~scale points =
  let buf = Buffer.create 4096 in
  let scale_name = match scale with Quick -> "quick" | Full -> "full" | Paper -> "paper" in
  Buffer.add_string buf
    (Fmt.str "{\n  \"target\": \"%s\",\n  \"backend\": \"%s\",\n  \"scale\": \"%s\",\n  \"points\": [\n"
       (json_escape target)
       (json_escape (Workload.backend_to_string backend))
       scale_name);
  List.iteri
    (fun pi { threads; cells } ->
      Buffer.add_string buf (Fmt.str "    { \"threads\": %d, \"cells\": [\n" threads);
      List.iteri
        (fun ci (label, (r : Workload.result)) ->
          Buffer.add_string buf
            (Fmt.str
               "      { \"series\": \"%s\", \"scheme\": \"%s\"%s, \"ds\": \"%s\", \"ops\": %d, \
                \"throughput\": %.3f, \"wall_ns\": %d, \"wall_throughput\": %.1f, \
                \"trials\": %d, \"wall_min_ns\": %d, \"wall_max_ns\": %d, \
                \"retired\": %d, \"freed\": %d, \"outstanding\": %d, \"faults\": %d, \
                \"signals\": %d%s%s }%s\n"
               (json_escape label)
               (json_escape (Registry.label r.Workload.spec.Workload.scheme))
               (json_params_suffix r)
               (json_escape (Workload.ds_kind_to_string r.Workload.spec.Workload.ds))
               r.Workload.ops r.Workload.throughput r.Workload.wall_ns
               r.Workload.wall_throughput r.Workload.trials r.Workload.wall_min_ns
               r.Workload.wall_max_ns r.Workload.retired r.Workload.freed
               r.Workload.outstanding r.Workload.faults r.Workload.signals_delivered
               (json_derived_suffix r) (json_chaos_suffix r)
               (if ci = List.length cells - 1 then "" else ",")))
        cells;
      Buffer.add_string buf
        (Fmt.str "    ] }%s\n" (if pi = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~target ~backend ~scale points =
  let file = Fmt.str "BENCH_%s.json" target in
  let oc = open_out file in
  output_string oc (json_of_points ~target ~backend ~scale points);
  close_out oc;
  file

let run_and_print ~title ?(backend = Workload.Backend_sim) ?(json = false) ?(trials = 0) f scale
    =
  (* trials = 0 means auto: median-of-3 where wall clocks are real and
     noisy, a single run on the deterministic simulator. *)
  let trials =
    if trials > 0 then trials
    else match backend with Workload.Backend_native _ -> 3 | Workload.Backend_sim -> 1
  in
  let points = f ~backend ~trials scale in
  if title = "ablate-crash" then degradation_summary points
  else if title = "chaos-recovery" then chaos_summary points
  else print_points ~title points;
  if json then begin
    let file = write_json ~target:title ~backend ~scale points in
    Fmt.pr "wrote %s@." file
  end;
  (* after the JSON is on disk, so a failing gate still leaves the data *)
  if title = "chaos-recovery" then chaos_oracle points;
  ratio_summary points ~num:"threadscan" ~den:"hazard";
  ratio_summary points ~num:"threadscan" ~den:"leaky";
  ratio_summary points ~num:"ts-pipeline" ~den:"threadscan";
  ratio_summary points ~num:"ts-pipeline" ~den:"ts-legacy";
  if title = "ablate-pipeline" || title = "fig5-hash" then
    (* how much scanning the Bloom prefilter actually saved *)
    List.iter
      (fun label ->
        extras_summary points ~label ~key:"filter-rejects";
        extras_summary points ~label ~key:"merged-runs")
      [ "ts-pipeline" ];
  if title = "ablate-help-free" then begin
    (* throughput barely moves; the point of the variant (§7) is reclaimer
       responsiveness: the free burden moves off the reclaimer and phases
       get shorter *)
    List.iter
      (fun label ->
        extras_summary points ~label ~key:"helped-frees";
        extras_summary points ~label ~key:"reclaimer-frees")
      [ "reclaimer-only"; "help-free" ];
    match List.rev points with
    | last :: _ ->
        List.iter
          (fun (label, r) ->
            let get k = try List.assoc k r.Workload.extras with Not_found -> 0 in
            Fmt.pr
              "summary: %s at %d threads: avg phase latency %d cycles, max %d cycles@."
              label last.threads (get "avg-phase-latency") (get "max-phase-latency"))
          last.cells
    | [] -> ()
  end;
  if title = "ablate-padding" then
    (* padding trades memory for false-sharing avoidance; the simulator
       prices accesses uniformly, so the visible effect is the footprint *)
    memory_summary points;
  if String.length title >= 4 && String.sub title 0 4 = "fig4" then
    (* §6: oversubscribed, "the reclaimer must wait for all of them" — show
       how long collect phases actually held the reclaimer *)
    List.iter
      (fun { threads; cells } ->
        match List.assoc_opt "threadscan" cells with
        | Some r ->
            let get k = try List.assoc k r.Workload.extras with Not_found -> 0 in
            Fmt.pr "summary: threadscan at %d threads: %d signals, avg phase %d cycles, max %d@."
              threads r.Workload.signals_delivered (get "avg-phase-latency")
              (get "max-phase-latency")
        | None -> ())
      points

let names =
  [
    ("fig3-list", fun ~backend ~trials s -> fig3 ~backend ~trials s Workload.List_ds);
    ("fig3-hash", fun ~backend ~trials s -> fig3 ~backend ~trials s Workload.Hash_ds);
    ("fig3-skip", fun ~backend ~trials s -> fig3 ~backend ~trials s Workload.Skip_ds);
    ("fig4-list", fun ~backend ~trials s -> fig4 ~backend ~trials s Workload.List_ds);
    ("fig4-hash", fun ~backend ~trials s -> fig4 ~backend ~trials s Workload.Hash_ds);
    ("fig4-skip", fun ~backend ~trials s -> fig4 ~backend ~trials s Workload.Skip_ds);
    ("fig5-hash", fig5);
    ("ablate-buffer", ablate_buffer);
    ("ablate-slow-epoch", ablate_slow_epoch);
    ("ablate-help-free", ablate_help_free);
    ("ablate-padding", ablate_padding);
    ("ablate-structures", ablate_structures);
    ("ablate-pipeline", ablate_pipeline);
    ("ablate-crash", ablate_crash);
    ("chaos-recovery", chaos_recovery);
  ]
