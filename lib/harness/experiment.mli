(** The paper's evaluation, experiment by experiment (see DESIGN.md §4).

    Each figure runner sweeps thread counts over a set of scheme series and
    prints a throughput table plus the headline shape checks the paper's
    prose states (ThreadScan ≈ Leaky, ≈2× over hazard pointers, Slow Epoch
    collapse, oversubscription overhead).

    Three scales: [Quick] (seconds, shapes only), [Full] (minutes, paper
    thread counts), [Paper] (paper structure sizes and buffer sizes as
    well).  Scale only changes magnitudes — the series and workloads are
    identical. *)

type scale = Quick | Full | Paper

val scale_of_string : string -> scale option

type point = { threads : int; cells : (string * Workload.result) list }

val fig3 : scale -> Workload.ds_kind -> point list
(** Figure 3: throughput vs threads, one core per thread; series Leaky,
    Hazard Pointers, Epoch, Slow Epoch, ThreadScan (plus StackTrack on the
    list-based structures). *)

val fig4 : scale -> Workload.ds_kind -> point list
(** Figure 4: oversubscription — threads beyond the simulated cores;
    series Leaky, Epoch, ThreadScan (and the tuned large-buffer ThreadScan
    on the hash table, as in the paper). *)

val ablate_buffer : scale -> point list
(** §6 buffer tuning: oversubscribed hash table, ThreadScan delete-buffer
    size sweep. *)

val ablate_slow_epoch : scale -> point list
(** §6 Slow Epoch sensitivity: errant-delay sweep on the list. *)

val ablate_help_free : scale -> point list
(** §7 future work: reclaimer-only frees vs scanner-helped frees. *)

val ablate_padding : scale -> point list
(** Design note: effect of the paper's 172-byte node padding on the list. *)

val ablate_structures : scale -> point list
(** Library breadth: every structure in [ts_ds] under ThreadScan. *)

val print_points : title:string -> point list -> unit

val run_and_print : title:string -> (scale -> point list) -> scale -> unit

val names : (string * (scale -> point list)) list
(** All experiments by bench-target name (fig3-list, …, ablate-…). *)
