(** The paper's evaluation, experiment by experiment (see DESIGN.md §4).

    Each figure runner sweeps thread counts over a set of scheme series and
    prints a throughput table plus the headline shape checks the paper's
    prose states (ThreadScan ≈ Leaky, ≈2× over hazard pointers, Slow Epoch
    collapse, oversubscription overhead).

    Three scales: [Quick] (seconds, shapes only), [Full] (minutes, paper
    thread counts), [Paper] (paper structure sizes and buffer sizes as
    well).  Scale only changes magnitudes — the series and workloads are
    identical. *)

type scale = Quick | Full | Paper

val scale_of_string : string -> scale option

type point = { threads : int; cells : (string * Workload.result) list }

val fig3 : backend:Workload.backend -> scale -> Workload.ds_kind -> point list
(** Figure 3: throughput vs threads, one core per thread; series Leaky,
    Hazard Pointers, Epoch, Slow Epoch, ThreadScan (plus StackTrack on the
    list-based structures). *)

val fig4 : backend:Workload.backend -> scale -> Workload.ds_kind -> point list
(** Figure 4: oversubscription — threads beyond the simulated cores;
    series Leaky, Epoch, ThreadScan (and the tuned large-buffer ThreadScan
    on the hash table, as in the paper). *)

val ablate_buffer : backend:Workload.backend -> scale -> point list
(** §6 buffer tuning: oversubscribed hash table, ThreadScan delete-buffer
    size sweep. *)

val ablate_slow_epoch : backend:Workload.backend -> scale -> point list
(** §6 Slow Epoch sensitivity: errant-delay sweep on the list. *)

val ablate_help_free : backend:Workload.backend -> scale -> point list
(** §7 future work: reclaimer-only frees vs scanner-helped frees. *)

val ablate_padding : backend:Workload.backend -> scale -> point list
(** Design note: effect of the paper's 172-byte node padding on the list. *)

val ablate_structures : backend:Workload.backend -> scale -> point list
(** Library breadth: every structure in [ts_ds] under ThreadScan. *)

val print_points : title:string -> point list -> unit
(** Virtual-cycle throughput table; when any cell carries wall-clock data
    (native backend) a second, kops-per-real-second table follows. *)

val json_of_points :
  target:string -> backend:Workload.backend -> scale:scale -> point list -> string
(** The whole sweep as a JSON document (hand-emitted; no JSON dependency):
    target/backend/scale header plus one object per (threads, series) cell
    with ops, virtual and wall-clock throughput, and the reclamation
    counters. *)

val write_json :
  target:string -> backend:Workload.backend -> scale:scale -> point list -> string
(** Writes {!json_of_points} to [BENCH_<target>.json] in the current
    directory and returns the file name. *)

val run_and_print :
  title:string ->
  ?backend:Workload.backend ->
  ?json:bool ->
  (backend:Workload.backend -> scale -> point list) ->
  scale ->
  unit
(** Runs the experiment on [backend] (default sim), prints the tables and
    the per-figure summaries, and with [~json:true] also writes
    [BENCH_<title>.json]. *)

val names : (string * (backend:Workload.backend -> scale -> point list)) list
(** All experiments by bench-target name (fig3-list, …, ablate-…). *)
