(** The paper's evaluation, experiment by experiment (see DESIGN.md §4).

    Each figure runner sweeps thread counts over a set of scheme series and
    prints a throughput table plus the headline shape checks the paper's
    prose states (ThreadScan ≈ Leaky, ≈2× over hazard pointers, Slow Epoch
    collapse, oversubscription overhead).

    Three scales: [Quick] (seconds, shapes only), [Full] (minutes, paper
    thread counts), [Paper] (paper structure sizes and buffer sizes as
    well).  Scale only changes magnitudes — the series and workloads are
    identical. *)

type scale = Quick | Full | Paper

val scale_of_string : string -> scale option

type point = { threads : int; cells : (string * Workload.result) list }

val fig3 :
  backend:Workload.backend -> trials:int -> scale -> Workload.ds_kind -> point list
(** Figure 3: throughput vs threads, one core per thread; series Leaky,
    Hazard Pointers, Epoch, Slow Epoch, ThreadScan (plus StackTrack on the
    list-based structures).  The ThreadScan series runs the parallel
    reclamation pipeline (docs/PERF.md); [ablate_pipeline] isolates its
    effect.  [trials] is the per-cell repetition count fed to
    {!Workload.run_trials} (median with min/max spread). *)

val fig4 :
  backend:Workload.backend -> trials:int -> scale -> Workload.ds_kind -> point list
(** Figure 4: oversubscription — threads beyond the simulated cores;
    series Leaky, Epoch, ThreadScan (and the tuned large-buffer ThreadScan
    on the hash table, as in the paper). *)

val fig5 : backend:Workload.backend -> trials:int -> scale -> point list
(** Figure 5 regime: the hash table under heavy retire traffic; series
    Leaky, Epoch, legacy ThreadScan, and the pipeline ThreadScan
    ([ts-pipeline]) side by side. *)

val ablate_buffer : backend:Workload.backend -> trials:int -> scale -> point list
(** §6 buffer tuning: oversubscribed hash table, ThreadScan delete-buffer
    size sweep. *)

val ablate_slow_epoch : backend:Workload.backend -> trials:int -> scale -> point list
(** §6 Slow Epoch sensitivity: errant-delay sweep on the list. *)

val ablate_help_free : backend:Workload.backend -> trials:int -> scale -> point list
(** §7 future work: reclaimer-only frees vs scanner-helped frees. *)

val ablate_padding : backend:Workload.backend -> trials:int -> scale -> point list
(** Design note: effect of the paper's 172-byte node padding on the list. *)

val ablate_structures : backend:Workload.backend -> trials:int -> scale -> point list
(** Library breadth: every structure in [ts_ds] under ThreadScan. *)

val ablate_pipeline : backend:Workload.backend -> trials:int -> scale -> point list
(** The parallel reclamation pipeline measured against the legacy
    single-stage phase: identical list workload, [ts-legacy] vs
    [ts-pipeline] series over the fig3 thread counts — the paired
    before/after behind docs/PERF.md. *)

val chaos_recovery : backend:Workload.backend -> trials:int -> scale -> point list
(** Native-only crash/stall degradation ablation with recovery-time
    accounting: one victim is crashed, stalled for half a horizon, or
    stalled forever at a quarter of the run, under leaky / epoch /
    hazard / threadscan / ts-pipeline.  Each cell carries a
    {!Chaos.report} (wall-clock takeover and MTTR, signal storm) and the
    liveness watchdog bounds the rows where epoch — or, under
    stall-forever, every run — wedges.  [point.threads] is reused as the
    plan row index.  @raise Invalid_argument on [Backend_sim]. *)

val print_points : title:string -> point list -> unit
(** Virtual-cycle throughput table; when any cell carries wall-clock data
    (native backend) a second, kops-per-real-second table follows. *)

val json_of_points :
  target:string -> backend:Workload.backend -> scale:scale -> point list -> string
(** The whole sweep as a JSON document (hand-emitted; no JSON dependency):
    target/backend/scale header plus one object per (threads, series) cell
    with ops, virtual and wall-clock throughput, the trial count and
    min/max wall-clock spread, and the reclamation counters. *)

val write_json :
  target:string -> backend:Workload.backend -> scale:scale -> point list -> string
(** Writes {!json_of_points} to [BENCH_<target>.json] in the current
    directory and returns the file name. *)

val run_and_print :
  title:string ->
  ?backend:Workload.backend ->
  ?json:bool ->
  ?trials:int ->
  (backend:Workload.backend -> trials:int -> scale -> point list) ->
  scale ->
  unit
(** Runs the experiment on [backend] (default sim), prints the tables and
    the per-figure summaries, and with [~json:true] also writes
    [BENCH_<title>.json].  [trials] repeats every wall-clock measurement
    and reports the median ({!Workload.run_trials}); 0 (the default) picks
    automatically — 3 on the native backend, 1 on the deterministic
    simulator. *)

val names :
  (string * (backend:Workload.backend -> trials:int -> scale -> point list)) list
(** All experiments by bench-target name (fig3-list, …, fig5-hash,
    ablate-…). *)
