(** Chaos driver: fires a {!Ts_util.Fault_plan} into a running workload
    and accounts for the recovery.

    Two halves, mirroring who is able to deliver each clause:

    - {!worker_hook} runs inside each worker's operation loop and fires
      the {e self-inflicted} clauses — cycle-triggered ([V\@K]) crash,
      stall, drop-signals and delay-signals on workers [0..V-1], landing
      inside an [op_begin] bracket exactly like the classic
      [Workload.fault] injection, which is the worst case for
      epoch-style schemes.
    - {!monitor} is the body of one extra logical thread that fires the
      clauses a victim cannot deliver to itself — wall-clock ([V\@Kms])
      triggers and [release] clauses — and samples recovery metrics
      (outstanding memory vs. the pre-fault baseline, degradation-ladder
      activity, signal storms) on every tick.

    All time accounting is in nanoseconds on the native backend and in
    virtual cycles on the sim (the monitor's own clock). *)

type report = {
  plan : Ts_util.Fault_plan.t;
  clauses_fired : int;
  fault_at : int;  (** first clause fire time; -1 = plan never fired *)
  baseline_outstanding : int;  (** retired - freed just before the fault *)
  peak_outstanding : int;  (** worst retired - freed seen after the fault *)
  takeover_after : int;
      (** first degradation-ladder activity (reap / takeover / proxy-scan
          / recovery) after the fault, relative to [fault_at]; -1 = the
          ladder never fired (non-ThreadScan schemes, or no need) *)
  recover_after : int;
      (** outstanding memory first back at (or below) the baseline after
          having exceeded it, relative to [fault_at]; -1 = never — the
          scheme wedged (or the run ended first) *)
  storm_signals : int;
      (** scheme signals sent between the fault and recovery (or run end)
          — the cost of recovering *)
}

type t

val create :
  plan:Ts_util.Fault_plan.t ->
  native:bool ->
  threads:int ->
  recovery_extras:string list ->
  t
(** A fresh driver for one run.  [native] selects the wall clock;
    [threads] bounds victim indices.  [recovery_extras] names the
    scheme's extras counters whose sum is its recovery ladder (from the
    scheme registry): movement past the pre-fault baseline counts as the
    takeover, an empty list means takeover is never observed. *)

val arm : t -> start:int -> unit
(** Called once by the workload body when the measured interval begins;
    [start] is the body's virtual start time. *)

val worker_hook : t -> Ts_smr.Smr.t -> i:int -> unit
(** Fire any due self-inflicted clause for worker [i] (0-based).  Call
    between operations; cheap when nothing is due.  A crash clause does
    not return. *)

val monitor : t -> Ts_smr.Smr.t -> done_addr:int -> tick:int -> unit -> unit
(** Monitor thread body: loops until the word at [done_addr] is nonzero,
    sleeping [tick] virtual cycles between samples.  Spawn it via
    [Ts_rt.spawn] after the workers (so worker tids stay [1..threads]). *)

val report : t -> report
(** Snapshot the metrics; call after the run (or after a wedge). *)
