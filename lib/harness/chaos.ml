module Runtime = Ts_rt
module Smr = Ts_smr.Smr
module Fault_plan = Ts_util.Fault_plan

type report = {
  plan : Fault_plan.t;
  clauses_fired : int;
  fault_at : int;
  baseline_outstanding : int;
  peak_outstanding : int;
  takeover_after : int;
  recover_after : int;
  storm_signals : int;
}

(* Clause ownership: a worker can inflict cycle-triggered faults on
   itself (the trigger is its own virtual clock, like the classic
   [Workload.fault] hook); everything else — wall-clock triggers,
   releases of parked victims — needs the monitor.  [fired] flags are
   written only by their owner (worker [i] writes slot [i]; the monitor
   owns its own list), so no locking is needed on the hot path. *)
type worker_clause = { wc : Fault_plan.clause; fired : bool array }

type monitor_clause = { mc : Fault_plan.clause; mutable mfired : bool }

type t = {
  plan : Fault_plan.t;
  native : bool;
  threads : int;
  recovery_extras : string list; (* extras whose sum is the recovery ladder *)
  worker_clauses : worker_clause list;
  monitor_clauses : monitor_clause list;
  mutable start_v : int; (* virtual start of the measured interval *)
  mutable start_ns : float;
  (* metrics below are read/written under [Runtime.critical]: workers
     stamp the fault, the monitor samples recovery *)
  mutable clauses_fired : int;
  mutable fault_at : int;
  mutable baseline : int;
  mutable peak : int;
  mutable base_ladder : int;
  mutable base_signals : int;
  mutable last_signals : int;
  mutable takeover_after : int;
  mutable recover_after : int;
  mutable storm_signals : int;
}

let is_worker_clause (c : Fault_plan.clause) =
  match (c.at, c.event) with
  | Fault_plan.At _, (Fault_plan.Crash | Stall _ | Drop_signals _ | Delay_signals _) -> true
  | _ -> false

let create ~plan ~native ~threads ~recovery_extras =
  {
    plan;
    native;
    threads;
    recovery_extras;
    worker_clauses =
      List.filter_map
        (fun c ->
          if is_worker_clause c then Some { wc = c; fired = Array.make threads false }
          else None)
        plan;
    monitor_clauses =
      List.filter_map
        (fun c -> if is_worker_clause c then None else Some { mc = c; mfired = false })
        plan;
    start_v = 0;
    start_ns = 0.0;
    clauses_fired = 0;
    fault_at = -1;
    baseline = 0;
    peak = 0;
    base_ladder = 0;
    base_signals = 0;
    last_signals = 0;
    takeover_after = -1;
    recover_after = -1;
    storm_signals = -1;
  }

let now_ns () = Unix.gettimeofday () *. 1e9

let arm t ~start =
  t.start_v <- start;
  t.start_ns <- now_ns ()

(* ns natively, virtual cycles (the caller's clock) on the sim *)
let elapsed t =
  if t.native then int_of_float (now_ns () -. t.start_ns)
  else Runtime.now () - t.start_v

let extra (smr : Smr.t) key =
  match List.assoc_opt key (smr.Smr.extras ()) with Some v -> v | None -> 0

(* Degradation-ladder activity: any of the scheme's registered recovery
   counters moving after the fault means the scheme noticed and acted.
   The counter names come from the scheme registry (ThreadScan's reap /
   takeover / proxy-scan / recovery ladder, DEBRA's dead/stall skips,
   Hyaline's corpse leaves). *)
let ladder_count t smr =
  List.fold_left (fun acc key -> acc + extra smr key) 0 t.recovery_extras

let outstanding (smr : Smr.t) = smr.Smr.counters.retired - smr.Smr.counters.freed

(* First clause fire = the fault the recovery metrics are measured
   against.  [Unstall] is the remedy, not the fault, and does not
   stamp. *)
let note_fired t smr (c : Fault_plan.clause) =
  Runtime.critical (fun () ->
      t.clauses_fired <- t.clauses_fired + 1;
      if t.fault_at < 0 && c.event <> Fault_plan.Unstall then begin
        t.fault_at <- elapsed t;
        t.baseline <- outstanding smr;
        t.peak <- t.baseline;
        t.base_ladder <- ladder_count t smr;
        t.base_signals <- extra smr "signals";
        t.last_signals <- t.base_signals
      end)

let inflict_self (smr : Smr.t) (event : Fault_plan.event) =
  let self = Runtime.self () in
  match event with
  | Fault_plan.Crash ->
      (* inside a bracketed operation, like the classic injection: the
         victim dies holding its op open — worst case for epochs *)
      smr.Smr.op_begin ();
      Runtime.crash self
  | Fault_plan.Stall d ->
      smr.Smr.op_begin ();
      (match d with
      | Fault_plan.Bounded n -> Runtime.stall ~cycles:n self
      | Fault_plan.Forever -> Runtime.stall self);
      smr.Smr.op_end ()
  | Fault_plan.Drop_signals n -> Runtime.drop_signals self n
  | Fault_plan.Delay_signals c -> Runtime.delay_signals self c
  | Fault_plan.Unstall -> ()

let worker_hook t smr ~i =
  List.iter
    (fun { wc; fired } ->
      if i < wc.Fault_plan.victims && i < t.threads && not fired.(i) then
        match wc.Fault_plan.at with
        | Fault_plan.At k when Runtime.now () - t.start_v >= k ->
            fired.(i) <- true;
            note_fired t smr wc;
            inflict_self smr wc.Fault_plan.event
        | _ -> ())
    t.worker_clauses

let fire_monitor t smr =
  List.iter
    (fun mcs ->
      if not mcs.mfired then begin
        let c = mcs.mc in
        let due =
          match c.Fault_plan.at with
          | Fault_plan.At k -> Runtime.now () - t.start_v >= k
          | Fault_plan.At_ms ms ->
              t.native && now_ns () -. t.start_ns >= float_of_int ms *. 1e6
        in
        if due then begin
          mcs.mfired <- true;
          note_fired t smr c;
          (* worker tids are 1..threads: main is 0, the monitor is last *)
          for v = 1 to min c.Fault_plan.victims t.threads do
            match c.Fault_plan.event with
            | Fault_plan.Unstall -> Runtime.unstall v
            | Fault_plan.Crash -> Runtime.crash v
            | Fault_plan.Stall (Fault_plan.Bounded n) -> Runtime.stall ~cycles:n v
            | Fault_plan.Stall Fault_plan.Forever -> Runtime.stall v
            | Fault_plan.Drop_signals n -> Runtime.drop_signals v n
            | Fault_plan.Delay_signals cyc -> Runtime.delay_signals v cyc
          done
        end
      end)
    t.monitor_clauses

let sample t smr =
  Runtime.critical (fun () ->
      if t.fault_at >= 0 then begin
        let out = outstanding smr in
        if out > t.peak then t.peak <- out;
        t.last_signals <- extra smr "signals";
        if t.takeover_after < 0 && ladder_count t smr > t.base_ladder then
          t.takeover_after <- elapsed t - t.fault_at;
        if t.recover_after < 0 && out <= t.baseline then begin
          t.recover_after <- elapsed t - t.fault_at;
          t.storm_signals <- t.last_signals - t.base_signals
        end
      end)

let monitor t smr ~done_addr ~tick () =
  let rec loop () =
    if Runtime.read done_addr = 0 then begin
      fire_monitor t smr;
      sample t smr;
      Runtime.sleep tick;
      loop ()
    end
  in
  loop ();
  (* final sample: a recovery that completed between the last tick and
     the run's end still counts *)
  fire_monitor t smr;
  sample t smr

let report t =
  {
    plan = t.plan;
    clauses_fired = t.clauses_fired;
    fault_at = t.fault_at;
    baseline_outstanding = t.baseline;
    peak_outstanding = t.peak;
    takeover_after = t.takeover_after;
    recover_after = t.recover_after;
    storm_signals =
      (if t.storm_signals >= 0 then t.storm_signals
       else if t.fault_at >= 0 then t.last_signals - t.base_signals
       else 0);
  }
