(** Native execution backend: real OCaml 5 domains.

    Logical threads keep the simulator's numbering (spawn order, main =
    tid 0) but execute as systhreads pinned round-robin onto a pool of
    domains.  {!run} installs the backend's {!Ts_rt.ops} record, executes
    [main] as tid 0, drains stragglers, and restores the previously
    installed backend.  See docs/BACKENDS.md for the sim/native parity
    table. *)

type tid = int

exception Par_error of string
exception Thread_failure of tid * exn

type config = {
  cost : Ts_rt.Cost_model.t;
  pool : int;  (** domains in the pool; [<= 0] = [Domain.recommended_domain_count ()] *)
  seed : int;  (** per-thread rng streams derive from it *)
  stack_words : int;
  reg_words : int;
  mem_capacity : int;  (** words; fixed at creation (the native heap cannot grow) *)
  strict_mem : bool;
  magazine : bool;
      (** per-thread allocator magazines: per-size-class caches with
          batched refill/flush against the central lists (see
          {!Heap.create}).  [false] is the no-magazine baseline where
          every small malloc/free takes the central lock. *)
  max_threads : int;
  propagate_failures : bool;
  stall_ns_per_cycle : float;
      (** wall-time value of one virtual cycle: scales [Ts_rt.stall]
          durations, [Ts_rt.sleep], and [Ts_rt.delay_signals] windows.
          Default 100ns. *)
  watchdog_ns : int;
      (** liveness watchdog: if the run is still going after this much
          wall time, snapshot a post-mortem of every thread's state, kill
          all unfinished threads (parked stall victims included), and
          return with [result.wedged] set instead of hanging.  [0]
          (default) disables. *)
}

val default_config : config

type stats = {
  reads : int;
  writes : int;
  cas_ops : int;
  faas : int;
  fences : int;
  mallocs : int;
  frees : int;
  yields : int;
  signals_sent : int;
  signals_delivered : int;
  spawns : int;
  crashes : int;
  stalls : int;  (** parks taken via [Ts_rt.stall] *)
  signals_dropped : int;  (** signals lost to [Ts_rt.drop_signals] windows *)
}

type result = {
  elapsed : int;  (** max per-thread virtual clock, cost-model cycles *)
  wall_ns : int;  (** real elapsed time *)
  run_stats : stats;
  failures : (tid * exn) list;
  crashed : tid list;
  thread_count : int;
  heap : Heap.t;  (** for post-run fault/leak assertions *)
  wedged : bool;  (** the liveness watchdog had to kill the run *)
  post_mortem : string option;
      (** thread-by-thread state snapshot taken when the watchdog fired *)
}

val run : ?config:config -> (unit -> unit) -> result
(** Run [main] as logical thread 0 on a fresh heap and domain pool.
    Raises [Thread_failure] for the first failed thread when
    [config.propagate_failures] is set.  Raises [Failure] if called while
    another backend's run is active (see {!Ts_rt.install}). *)
