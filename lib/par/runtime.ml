(* Native execution backend: real OCaml 5 domains.

   Logical threads keep the simulator's numbering (spawn order, main =
   tid 0) but execute as systhreads pinned round-robin onto a pool of
   domains — [pool] counts execution cores, like the sim's [cores], so
   requesting more threads than domains oversubscribes honestly instead
   of dying on `Domain.spawn` limits.  Within a domain systhreads
   time-share; across domains they run genuinely in parallel.

   The paper's POSIX signal is a per-thread pending counter polled at
   every op boundary (the safepoint-latched delivery DESIGN.md §2 argues
   is the faithful OCaml substitution): delivery saves the register
   file, runs the handler (nesting allowed), and sigreturn-restores the
   interrupted context — observationally the same protocol as the sim,
   at op-boundary granularity.

   Every thread still owns a shadow stack and register file inside the
   unmanaged heap, and every load mirrors its value into the register
   ring, so conservative scans stay sound: a pointer "in flight" between
   a load and its frame store is visible to TS-Scan here exactly as in
   the sim.

   Virtual clocks survive: each op charges the shared {!Ts_rt.Cost_model}
   price to the calling thread's private clock, so horizon-bounded
   workload loops ([now () < deadline]) run unchanged and figure runs
   report both virtual-cycle and wall-clock throughput.

   Fault injection mirrors the sim's surface at safepoint granularity:
   [crash] and [stall] of another thread are latched into the target's
   padded flag cells and delivered at its next poll — a stalled thread
   parks (OS-level sleep loop) with an SC [stalled_flag] raised, so
   [is_stalled]/[clock_of] give the reclaimer's proxy-scan ladder the
   same frozen-victim guarantee the sim provides: while the flag reads
   [true] the victim performs no ops, and the flag's release/acquire
   pair publishes the wake-time clock bump before any post-wake op can
   be observed.  Stall durations are scaled to wall time by
   [config.stall_ns_per_cycle]; stall-forever parks until [unstall],
   [crash], or the liveness watchdog ([config.watchdog_ns]) fires.

   What does NOT carry over from the sim: determinism (the OS schedules),
   schedule exploration (Uniform/PCT), and faults are delivered at the
   victim's next safepoint rather than between two arbitrary ops.
   docs/BACKENDS.md tabulates this. *)

module Cost_model = Ts_rt.Cost_model
module Splitmix = Ts_util.Splitmix

type tid = int

exception Par_error of string
exception Thread_failure of tid * exn

(* Raised inside a logical thread killed by [crash]; caught by the
   thread wrapper, never by user code. *)
exception Killed

type config = {
  cost : Cost_model.t;
  pool : int;  (** domains in the pool; [<= 0] = [Domain.recommended_domain_count ()] *)
  seed : int;  (** per-thread rng streams derive from it *)
  stack_words : int;
  reg_words : int;
  mem_capacity : int;  (** words; fixed at creation (the native heap cannot grow) *)
  strict_mem : bool;
  magazine : bool;  (** per-thread allocator magazines (see {!Heap.create}) *)
  max_threads : int;
  propagate_failures : bool;
  stall_ns_per_cycle : float;
      (** wall-time value of one virtual cycle for [stall]/[sleep]/signal
          delays *)
  watchdog_ns : int;
      (** kill every unfinished thread and mark the run wedged if it is
          still going after this much wall time; [0] disables *)
}

let default_config =
  {
    cost = Cost_model.default;
    pool = 0;
    seed = 0x5EED;
    stack_words = 256;
    reg_words = 32;
    mem_capacity = 1 lsl 21;
    strict_mem = true;
    magazine = true;
    max_threads = 128;
    propagate_failures = true;
    stall_ns_per_cycle = 100.0;
    watchdog_ns = 0;
  }

type stats = {
  reads : int;
  writes : int;
  cas_ops : int;
  faas : int;
  fences : int;
  mallocs : int;
  frees : int;
  yields : int;
  signals_sent : int;
  signals_delivered : int;
  spawns : int;
  crashes : int;
  stalls : int;
  signals_dropped : int;
}

type ctx = {
  tid : tid;
  mutable clock : int;
  rng : Splitmix.t;
  stack_base : int;
  stack_words : int;
  mutable sp : int; (* absolute address of the first free slot *)
  reg_base : int;
  reg_words : int;
  mutable reg_cursor : int;
  manual_save_base : int;
  mutable sig_saves : int list; (* innermost first *)
  mutable save_pool : int list;
  mutable sig_depth : int;
  mutable handler : (unit -> unit) option;
  pending : int Atomic.t; (* undelivered signals *)
  kill : bool Atomic.t;
  finished : bool Atomic.t;
  (* chaos: stall requests latch here exactly like [kill]; the victim
     parks at its next safepoint.  0 = none, -1 = forever, n > 0 =
     bounded cycles.  [stalled_flag] is the SC publication point the
     proxy-scan ladder reads (see [park]); [stall_release] is a one-shot
     latch consumed by a parked victim (or, stale, by the next stall
     request site). *)
  stall_req : int Atomic.t;
  stalled_flag : bool Atomic.t;
  stall_release : bool Atomic.t;
  drop_sigs : int Atomic.t; (* next n incoming signals are lost *)
  sig_delay : int Atomic.t; (* cycles every incoming signal is delayed *)
  sig_arrival_ns : int Atomic.t; (* stamp of the latest delayed send *)
  mutable crashed : bool;
  mutable failure : exn option;
  mutable private_ranges : (int * int) list;
  mutable wait_note : string option;
  (* neutralization: armed by a signal handler (which runs inline on this
     very thread), consumed at the next abortable op.  Same-thread only,
     so a plain mutable field suffices. *)
  mutable abort_pending : exn option;
  (* op counters: thread-local, summed after the run *)
  mutable n_ops : int;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_cas : int;
  mutable n_faa : int;
  mutable n_fences : int;
  mutable n_mallocs : int;
  mutable n_frees : int;
  mutable n_yields : int;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_spawns : int;
  mutable n_stalls : int; (* parks taken (victim-owned) *)
  mutable n_dropped : int; (* signals this thread sent into a drop window *)
}

type request = Run of (unit -> unit) | Stop

type dqueue = { dm : Mutex.t; dcv : Condition.t; dq : request Queue.t }

type t = {
  cfg : config;
  heap : Heap.t;
  ctxs : ctx option array; (* tid-indexed; written under [reg_lock] *)
  next_tid : int Atomic.t;
  reg_lock : Mutex.t; (* guards thread table growth + ctxs writes *)
  crit : Mutex.t; (* backs Ts_rt.critical *)
  steps : int Atomic.t; (* coarse global step counter, batched bumps *)
  by_thread : ctx option array Atomic.t; (* Thread.id -> ctx *)
  queues : dqueue array;
}

(* ------------------------------------------------------------------ *)
(* Thread registry                                                    *)
(* ------------------------------------------------------------------ *)

(* Maps the host [Thread.id] to the logical ctx.  A thread only ever
   reads its own slot, which it wrote at registration, so the unlocked
   read is race-free; growth copies the array and swaps it in under
   [reg_lock], and a stale array read by the owner still contains the
   owner's slot. *)

let register t ctx =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock t.reg_lock;
  let arr = Atomic.get t.by_thread in
  let arr =
    if id < Array.length arr then arr
    else begin
      let bigger = Array.make (max (2 * Array.length arr) (id + 1)) None in
      Array.blit arr 0 bigger 0 (Array.length arr);
      Atomic.set t.by_thread bigger;
      bigger
    end
  in
  arr.(id) <- Some ctx;
  Mutex.unlock t.reg_lock

let deregister t =
  let id = Thread.id (Thread.self ()) in
  Mutex.lock t.reg_lock;
  (Atomic.get t.by_thread).(id) <- None;
  Mutex.unlock t.reg_lock

let[@inline] cur t =
  let id = Thread.id (Thread.self ()) in
  let arr = Atomic.get t.by_thread in
  match if id < Array.length arr then arr.(id) else None with
  | Some c -> c
  | None -> raise (Par_error "operation outside a runtime thread")

let ctx_of t tid =
  if tid < 0 || tid >= t.cfg.max_threads then raise (Par_error "unknown thread id");
  match t.ctxs.(tid) with
  | Some c -> c
  | None -> raise (Par_error "unknown thread id")

(* ------------------------------------------------------------------ *)
(* Per-op bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let[@inline] charge c n = c.clock <- c.clock + n

let steps_batch = 64

let[@inline] step t c =
  c.n_ops <- c.n_ops + 1;
  if c.n_ops land (steps_batch - 1) = 0 then begin
    ignore (Atomic.fetch_and_add t.steps steps_batch);
    (* Oversubscribed domains: make sure op-dense loops cannot hog a
       domain for a whole preemption tick.  Each forced yield is a
       master-lock handoff (microseconds), so the interval is kept well
       above the batch size; 4096 ops is still far below a tick. *)
    if c.n_ops land 4095 = 0 then Thread.yield ()
  end

let[@inline] is_private c addr =
  (addr >= c.stack_base && addr < c.stack_base + c.stack_words)
  || (addr >= c.reg_base && addr < c.reg_base + c.reg_words)

let[@inline] mirror t c v =
  (* branch wrap, not [mod]: this runs on every load and an integer
     division is the single most expensive instruction it would issue *)
  let cursor = c.reg_cursor + 1 in
  let cursor = if cursor >= c.reg_words then 0 else cursor in
  c.reg_cursor <- cursor;
  Heap.raw_write t.heap (c.reg_base + cursor) v

let copy_regs t ~src ~dst n =
  for i = 0 to n - 1 do
    Heap.raw_write t.heap (dst + i) (Heap.raw_read t.heap (src + i))
  done

(* ------------------------------------------------------------------ *)
(* Signals: pending counter polled at op boundaries                   *)
(* ------------------------------------------------------------------ *)

let acquire_save t c =
  match c.save_pool with
  | s :: rest ->
      c.save_pool <- rest;
      s
  | [] -> Heap.alloc_region t.heap c.reg_words

let rec deliver t c =
  charge c t.cfg.cost.signal_dispatch;
  c.n_delivered <- c.n_delivered + 1;
  let save = acquire_save t c in
  copy_regs t ~src:c.reg_base ~dst:save c.reg_words;
  c.sig_saves <- save :: c.sig_saves;
  c.sig_depth <- c.sig_depth + 1;
  Fun.protect
    ~finally:(fun () ->
      (* sigreturn: restore the interrupted register context, undoing the
         handler's own register traffic. *)
      (match c.sig_saves with
      | save :: rest ->
          copy_regs t ~src:save ~dst:c.reg_base c.reg_words;
          c.sig_saves <- rest;
          c.save_pool <- save :: c.save_pool
      | [] -> ());
      c.sig_depth <- c.sig_depth - 1;
      charge c t.cfg.cost.signal_return)
    (fun () -> match c.handler with Some h -> h () | None -> ())

and now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Cooperative stall: the victim parks here, at a safepoint, until the
   bounded deadline passes, a [stall_release] arrives, or it is killed.
   Soundness of the proxy-scan ladder rests on the flag protocol:

   - [stalled_flag := true] (SC) before the wait loop; while the flag
     reads [true] the victim performs no ops, so its stack/registers are
     frozen for a cross-thread scan.
   - on wake: bump the plain [clock] FIRST, then [stalled_flag := false]
     (SC, a release publishing the bump), then resume ops.  A reclaimer
     doing [clock_of u; scan; clock_of u] (each [clock_of] acquires via
     an SC load of the flag — see [op_clock_of]) therefore either sees
     the victim still parked, or sees a changed clock and discards the
     scan — exactly the sim's frozen-victim contract. *)
and park t c req =
  c.n_stalls <- c.n_stalls + 1;
  Atomic.set c.stalled_flag true;
  let deadline =
    if req < 0 then max_float
    else Unix.gettimeofday () +. (float_of_int req *. t.cfg.stall_ns_per_cycle /. 1e9)
  in
  let rec wait () =
    if Atomic.get c.kill then begin
      Atomic.set c.stalled_flag false;
      c.crashed <- true;
      raise Killed
    end;
    if Atomic.compare_and_set c.stall_release true false then ()
    else if deadline < max_float && Unix.gettimeofday () >= deadline then ()
    else begin
      Thread.delay 0.0001;
      wait ()
    end
  in
  wait ();
  c.clock <- c.clock + max 1 req;
  Atomic.set c.stalled_flag false

and[@inline] delay_passed t c =
  let d = Atomic.get c.sig_delay in
  d = 0
  || now_ns ()
     >= Atomic.get c.sig_arrival_ns
        + int_of_float (float_of_int d *. t.cfg.stall_ns_per_cycle)

and poll_slow t c =
  if Atomic.get c.kill then begin
    c.crashed <- true;
    raise Killed
  end;
  (match Atomic.exchange c.stall_req 0 with 0 -> () | req -> park t c req);
  while Atomic.get c.pending > 0 && delay_passed t c do
    ignore (Atomic.fetch_and_add c.pending (-1));
    deliver t c
  done

(* The fast path is what every op inlines: three relaxed-in-practice
   loads of the thread's own (padded, rarely-written) flags, with the
   kill/stall/deliver machinery kept out of line so the common case
   stays branch-predictable. *)
let[@inline] poll t c =
  if Atomic.get c.kill || Atomic.get c.stall_req <> 0 || Atomic.get c.pending > 0 then
    poll_slow t c

(* A neutralization armed by a handler ([op_neutralize], which always
   runs inline on this very thread) fires here, before the op's access,
   once no handler frame is live.  Only the abortable ops consume it —
   read/write/cas/faa/fence/malloc/yield, the same set the simulator
   intercepts; frees and frame pops never abort, so cleanup paths
   (freeing a CAS-loser node, unwinding shadow frames) always run. *)
let[@inline] check_abort c =
  match c.abort_pending with
  | Some e when c.sig_depth = 0 ->
      c.abort_pending <- None;
      raise e
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Contexts                                                           *)
(* ------------------------------------------------------------------ *)

(* Contexts are the hottest per-thread records in the program: every op
   bumps [clock]/[n_ops] and polls [pending]/[kill].  Pad the record and
   its flag cells onto private cache lines — contexts for neighbouring
   threads are allocated back to back and would otherwise ping-pong a
   shared line on every single op. *)
let new_ctx t tid =
  let stack_base = Heap.alloc_region t.heap t.cfg.stack_words in
  let reg_base = Heap.alloc_region t.heap t.cfg.reg_words in
  let manual_save_base = Heap.alloc_region t.heap t.cfg.reg_words in
  Ts_util.Padded.copy
  {
    tid;
    clock = 0;
    rng = Splitmix.create (t.cfg.seed lxor ((tid + 1) * 0x9E3779B9));
    stack_base;
    stack_words = t.cfg.stack_words;
    sp = stack_base;
    reg_base;
    reg_words = t.cfg.reg_words;
    reg_cursor = 0;
    manual_save_base;
    sig_saves = [];
    save_pool = [];
    sig_depth = 0;
    handler = None;
    pending = Ts_util.Padded.copy (Atomic.make 0);
    kill = Ts_util.Padded.copy (Atomic.make false);
    finished = Ts_util.Padded.copy (Atomic.make false);
    stall_req = Ts_util.Padded.copy (Atomic.make 0);
    stalled_flag = Ts_util.Padded.copy (Atomic.make false);
    stall_release = Ts_util.Padded.copy (Atomic.make false);
    drop_sigs = Atomic.make 0;
    sig_delay = Atomic.make 0;
    sig_arrival_ns = Atomic.make 0;
    crashed = false;
    failure = None;
    private_ranges = [];
    wait_note = None;
    abort_pending = None;
    n_ops = 0;
    n_reads = 0;
    n_writes = 0;
    n_cas = 0;
    n_faa = 0;
    n_fences = 0;
    n_mallocs = 0;
    n_frees = 0;
    n_yields = 0;
    n_sent = 0;
    n_delivered = 0;
    n_spawns = 0;
    n_stalls = 0;
    n_dropped = 0;
  }

let thread_body t ctx body () =
  register t ctx;
  (try body () with
  | Killed -> ctx.crashed <- true
  | e -> ctx.failure <- Some e);
  deregister t;
  Atomic.set ctx.finished true

(* ------------------------------------------------------------------ *)
(* Domain pool                                                        *)
(* ------------------------------------------------------------------ *)

let enqueue dq req =
  Mutex.lock dq.dm;
  Queue.push req dq.dq;
  Condition.signal dq.dcv;
  Mutex.unlock dq.dm

let domain_main dq () =
  let rec loop threads =
    Mutex.lock dq.dm;
    while Queue.is_empty dq.dq do
      Condition.wait dq.dcv dq.dm
    done;
    let req = Queue.pop dq.dq in
    Mutex.unlock dq.dm;
    match req with
    | Stop -> List.iter Thread.join threads
    | Run f -> loop (Thread.create f () :: threads)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Ops                                                                *)
(* ------------------------------------------------------------------ *)

let op_read t addr =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_reads <- c.n_reads + 1;
  charge c (if is_private c addr then t.cfg.cost.local_op else t.cfg.cost.shared_read);
  let v = Heap.read t.heap addr in
  mirror t c v;
  v

let op_write t addr v =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_writes <- c.n_writes + 1;
  charge c (if is_private c addr then t.cfg.cost.local_op else t.cfg.cost.shared_write);
  Heap.write t.heap addr v

let op_cas t addr expected desired =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_cas <- c.n_cas + 1;
  charge c t.cfg.cost.cas;
  let ok = Heap.cas t.heap addr expected desired in
  if not ok then mirror t c (Heap.read t.heap addr);
  ok

let op_faa t addr delta =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_faa <- c.n_faa + 1;
  charge c t.cfg.cost.faa;
  let v = Heap.faa t.heap addr delta in
  mirror t c v;
  v

let op_fence t () =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_fences <- c.n_fences + 1;
  (* every heap word access is already sequentially consistent *)
  charge c t.cfg.cost.fence

let op_malloc t n =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_mallocs <- c.n_mallocs + 1;
  charge c t.cfg.cost.malloc;
  let addr = Heap.malloc t.heap ~tid:c.tid n in
  mirror t c addr;
  addr

let op_free t addr =
  let c = cur t in
  poll t c;
  step t c;
  c.n_frees <- c.n_frees + 1;
  charge c t.cfg.cost.free;
  Heap.free t.heap ~tid:c.tid addr

let op_alloc_region t n =
  let c = cur t in
  poll t c;
  step t c;
  charge c t.cfg.cost.malloc;
  Heap.alloc_region t.heap n

let op_yield t () =
  let c = cur t in
  poll t c;
  check_abort c;
  step t c;
  c.n_yields <- c.n_yields + 1;
  charge c t.cfg.cost.yield;
  Thread.yield ()

let op_advance t n =
  let c = cur t in
  poll t c;
  charge c (max 0 n)

let op_now t () = (cur t).clock
let op_self t () = (cur t).tid

let op_rand t n =
  let c = cur t in
  charge c t.cfg.cost.local_op;
  Splitmix.below c.rng n

let op_steps_now t () = Atomic.get t.steps

let op_spawn t f =
  let c = cur t in
  poll t c;
  step t c;
  c.n_spawns <- c.n_spawns + 1;
  charge c t.cfg.cost.spawn;
  let tid = Atomic.fetch_and_add t.next_tid 1 in
  if tid >= t.cfg.max_threads then raise (Par_error "spawn: max_threads exceeded");
  let ctx = new_ctx t tid in
  Mutex.lock t.reg_lock;
  t.ctxs.(tid) <- Some ctx;
  Mutex.unlock t.reg_lock;
  enqueue t.queues.((tid - 1) mod Array.length t.queues) (Run (thread_body t ctx f));
  tid

let op_join t target =
  let c = cur t in
  let tc = ctx_of t target in
  while not (Atomic.get tc.finished) do
    poll t c;
    charge c t.cfg.cost.yield;
    (* Sleep, don't spin: the joiner usually lives on a different domain
       than its target, and a [Thread.yield] spin there competes with the
       target's domain for CPU — on an oversubscribed machine it can eat
       half the run.  [Thread.delay] parks at the OS level. *)
    Thread.delay 0.0002
  done

let op_is_done t target = Atomic.get (ctx_of t target).finished

let op_poll t () =
  let c = cur t in
  poll t c

(* Drop accounting happens on the sender side (each sender owns its
   [n_dropped] counter), but the drop *budget* lives on the target and
   is consumed with a CAS so concurrent senders never double-spend. *)
let rec consume_drop tc =
  let d = Atomic.get tc.drop_sigs in
  d > 0 && (Atomic.compare_and_set tc.drop_sigs d (d - 1) || consume_drop tc)

let op_signal t target =
  let c = cur t in
  poll t c;
  step t c;
  c.n_sent <- c.n_sent + 1;
  charge c t.cfg.cost.signal_send;
  let tc = ctx_of t target in
  if not (Atomic.get tc.finished) then begin
    if consume_drop tc then c.n_dropped <- c.n_dropped + 1
    else begin
      if Atomic.get tc.sig_delay > 0 then Atomic.set tc.sig_arrival_ns (now_ns ());
      Atomic.incr tc.pending
    end
  end

let op_set_handler t h =
  let c = cur t in
  charge c t.cfg.cost.local_op;
  c.handler <- Some h

let op_sig_depth t () = (cur t).sig_depth

let op_neutralize t e =
  let c = cur t in
  charge c t.cfg.cost.local_op;
  c.abort_pending <- Some e

let op_cancel_neutralize t () =
  let c = cur t in
  charge c t.cfg.cost.local_op;
  c.abort_pending <- None

let op_push_frame t n =
  let c = cur t in
  poll t c;
  if n < 0 then raise (Par_error "push_frame: negative size");
  if c.sp + n > c.stack_base + c.stack_words then raise (Par_error "shadow stack overflow");
  charge c t.cfg.cost.local_op;
  let base = c.sp in
  c.sp <- c.sp + n;
  for i = base to c.sp - 1 do
    Heap.raw_write t.heap i 0
  done;
  base

let op_pop_frame t base =
  let c = cur t in
  if base < c.stack_base || base > c.sp then raise (Par_error "pop_frame: bad frame base");
  charge c t.cfg.cost.local_op;
  c.sp <- base

let op_stack_range t () =
  let c = cur t in
  (c.stack_base, c.sp)

let op_reg_range t () =
  let c = cur t in
  (c.reg_base, c.reg_words)

let op_save_regs t () =
  let c = cur t in
  charge c (c.reg_words * t.cfg.cost.local_op);
  copy_regs t ~src:c.reg_base ~dst:c.manual_save_base c.reg_words

let op_saved_reg_range t () =
  let c = cur t in
  let base = match c.sig_saves with save :: _ -> save | [] -> c.manual_save_base in
  (base, c.reg_words)

let op_clear_regs t () =
  let c = cur t in
  charge c (c.reg_words * t.cfg.cost.local_op);
  for i = 0 to c.reg_words - 1 do
    Heap.raw_write t.heap (c.reg_base + i) 0
  done

let op_add_range t base len =
  let c = cur t in
  c.private_ranges <- (base, len) :: c.private_ranges

let op_remove_range t base len =
  let c = cur t in
  let rec drop = function
    | [] -> []
    | (b, l) :: rest when b = base && l = len -> rest
    | r :: rest -> r :: drop rest
  in
  c.private_ranges <- drop c.private_ranges

let op_private_ranges t () = (cur t).private_ranges

(* Cross-thread range read: sound for crashed threads (their fields are
   frozen) and for cooperating threads at op boundaries — the proxy-scan
   uses it only on subjects it has evidence are not running. *)
let op_scan_ranges t target =
  let c = ctx_of t target in
  (c.stack_base, c.sp - c.stack_base)
  :: (c.reg_base, c.reg_words)
  :: (c.manual_save_base, c.reg_words)
  :: (List.map (fun s -> (s, c.reg_words)) c.sig_saves @ c.private_ranges)
  |> List.filter (fun (_, len) -> len > 0)

let op_crash t target =
  let c = cur t in
  if target = c.tid then begin
    c.crashed <- true;
    raise Killed
  end
  else begin
    let tc = ctx_of t target in
    if not (Atomic.get tc.finished) then Atomic.set tc.kill true
  end

let op_stall t cycles target =
  let c = cur t in
  poll t c;
  let req = match cycles with None -> -1 | Some n -> max 0 n in
  if req <> 0 then
    if target = c.tid then begin
      (* a release latched before this stall began is stale: consume it
         so the park honours its own deadline/release *)
      ignore (Atomic.compare_and_set c.stall_release true false);
      park t c req
    end
    else begin
      let tc = ctx_of t target in
      if not (Atomic.get tc.finished) then begin
        ignore (Atomic.compare_and_set tc.stall_release true false);
        Atomic.set tc.stall_req req
      end
    end

let op_unstall t target =
  let c = cur t in
  poll t c;
  charge c t.cfg.cost.local_op;
  let tc = ctx_of t target in
  (* wake a parked victim, and cancel a stall request it has not yet
     reached a safepoint to take — either way the latch is consumed by
     exactly one park (or the next stall request site) *)
  Atomic.set tc.stall_release true;
  Atomic.set tc.stall_req 0

let op_drop_signals t target n =
  let c = cur t in
  poll t c;
  charge c t.cfg.cost.local_op;
  Atomic.set (ctx_of t target).drop_sigs (max 0 n)

let op_delay_signals t target cycles =
  let c = cur t in
  poll t c;
  charge c t.cfg.cost.local_op;
  Atomic.set (ctx_of t target).sig_delay (max 0 cycles)

let op_sleep t n =
  let c = cur t in
  poll t c;
  let n = max 0 n in
  charge c n;
  if n > 0 then Thread.delay (float_of_int n *. t.cfg.stall_ns_per_cycle /. 1e9)

let op_is_crashed t target = (ctx_of t target).crashed

let op_is_stalled t target = Atomic.get (ctx_of t target).stalled_flag

let op_clock_of t target =
  let c = ctx_of t target in
  (* The SC flag load is the acquire edge pairing with [park]'s wake-time
     release store: a reader that observes [stalled_flag = false] is
     guaranteed to see the wake-time clock bump, which is what makes the
     ladder's clock-check proxy-scan sound on real domains. *)
  ignore (Atomic.get c.stalled_flag : bool);
  c.clock

let op_set_wait_note t n =
  let c = cur t in
  c.wait_note <- n

let op_note _t _s = ()

let op_critical t f =
  Mutex.lock t.crit;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.crit) f

let make_ops t : Ts_rt.ops =
  {
    Ts_rt.read = op_read t;
    write = op_write t;
    cas = op_cas t;
    faa = op_faa t;
    fence = op_fence t;
    malloc = op_malloc t;
    free = op_free t;
    alloc_region = op_alloc_region t;
    yield = op_yield t;
    advance = op_advance t;
    now = op_now t;
    self = op_self t;
    rand_below = op_rand t;
    steps_now = op_steps_now t;
    spawn = op_spawn t;
    join = op_join t;
    is_done = op_is_done t;
    poll = op_poll t;
    signal = op_signal t;
    set_signal_handler = op_set_handler t;
    signal_depth = op_sig_depth t;
    neutralize = op_neutralize t;
    cancel_neutralize = op_cancel_neutralize t;
    push_frame = op_push_frame t;
    pop_frame = op_pop_frame t;
    stack_range = op_stack_range t;
    reg_range = op_reg_range t;
    save_regs = op_save_regs t;
    saved_reg_range = op_saved_reg_range t;
    clear_regs = op_clear_regs t;
    add_private_range = op_add_range t;
    remove_private_range = op_remove_range t;
    private_ranges = op_private_ranges t;
    scan_ranges_of = op_scan_ranges t;
    crash = op_crash t;
    stall = op_stall t;
    unstall = op_unstall t;
    drop_signals = op_drop_signals t;
    delay_signals = op_delay_signals t;
    sleep = op_sleep t;
    is_crashed = op_is_crashed t;
    is_stalled = op_is_stalled t;
    clock_of = op_clock_of t;
    set_wait_note = op_set_wait_note t;
    note = op_note t;
    critical = (fun f -> op_critical t f);
  }

(* ------------------------------------------------------------------ *)
(* Running                                                            *)
(* ------------------------------------------------------------------ *)

type result = {
  elapsed : int;  (** max per-thread virtual clock, cost-model cycles *)
  wall_ns : int;  (** real elapsed time *)
  run_stats : stats;
  failures : (tid * exn) list;
  crashed : tid list;
  thread_count : int;
  heap : Heap.t;  (** for post-run fault/leak assertions *)
  wedged : bool;  (** the watchdog had to kill the run *)
  post_mortem : string option;  (** thread states at watchdog fire time *)
}

let pool_size cfg =
  let d = if cfg.pool > 0 then cfg.pool else Domain.recommended_domain_count () in
  max 1 (min d 64)

let create cfg =
  let heap =
    Heap.create ~strict:cfg.strict_mem ~capacity:cfg.mem_capacity ~magazine:cfg.magazine
      ~max_threads:cfg.max_threads ()
  in
  {
    cfg;
    heap;
    ctxs = Array.make cfg.max_threads None;
    (* bumped on every registration, read on every tid lookup — keep it
       off the line shared with the ctxs array header *)
    next_tid = Ts_util.Padded.copy (Atomic.make 1);
    reg_lock = Mutex.create ();
    crit = Mutex.create ();
    (* every thread batch-bumps [steps]; isolate it from its neighbours *)
    steps = Ts_util.Padded.copy (Atomic.make 0);
    by_thread = Ts_util.Padded.copy (Atomic.make (Array.make 256 None));
    queues =
      Array.init (pool_size cfg) (fun _ ->
          { dm = Mutex.create (); dcv = Condition.create (); dq = Queue.create () });
  }

let collect_stats t =
  let z =
    {
      reads = 0;
      writes = 0;
      cas_ops = 0;
      faas = 0;
      fences = 0;
      mallocs = 0;
      frees = 0;
      yields = 0;
      signals_sent = 0;
      signals_delivered = 0;
      spawns = 0;
      crashes = 0;
      stalls = 0;
      signals_dropped = 0;
    }
  in
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some c ->
          {
            reads = acc.reads + c.n_reads;
            writes = acc.writes + c.n_writes;
            cas_ops = acc.cas_ops + c.n_cas;
            faas = acc.faas + c.n_faa;
            fences = acc.fences + c.n_fences;
            mallocs = acc.mallocs + c.n_mallocs;
            frees = acc.frees + c.n_frees;
            yields = acc.yields + c.n_yields;
            signals_sent = acc.signals_sent + c.n_sent;
            signals_delivered = acc.signals_delivered + c.n_delivered;
            spawns = acc.spawns + c.n_spawns;
            crashes = (acc.crashes + if c.crashed then 1 else 0);
            stalls = acc.stalls + c.n_stalls;
            signals_dropped = acc.signals_dropped + c.n_dropped;
          })
    z t.ctxs

(* ---- liveness watchdog ----

   A host thread (never a logical thread: it must stay responsive while
   every logical thread is wedged) with an absolute wall deadline.  On
   fire it snapshots every thread's state into a post-mortem, then kills
   all unfinished threads — parked victims check [kill] in their wait
   loop, joiners poll, so the run drains and returns with [wedged]
   instead of hanging CI. *)

let describe_ctx c =
  let state =
    if Atomic.get c.finished then if c.crashed then "crashed" else "done"
    else if Atomic.get c.stalled_flag then "stalled"
    else "running"
  in
  let note = match c.wait_note with None -> "" | Some n -> Printf.sprintf " (%s)" n in
  let pend = Atomic.get c.pending in
  let sigs = if pend = 0 then "" else Printf.sprintf " [%d pending]" pend in
  Printf.sprintf "t%d %s%s%s clock=%d ops=%d" c.tid state note sigs c.clock c.n_ops

let post_mortem_of t =
  let parts = ref [] in
  for tid = Atomic.get t.next_tid - 1 downto 0 do
    match t.ctxs.(tid) with Some c -> parts := describe_ctx c :: !parts | None -> ()
  done;
  Printf.sprintf "watchdog fired after %.0fms: %s"
    (float_of_int t.cfg.watchdog_ns /. 1e6)
    (String.concat "; " !parts)

let watchdog_body t deadline stop fired pm () =
  let rec loop () =
    if Atomic.get stop then ()
    else if Unix.gettimeofday () >= deadline then begin
      pm := Some (post_mortem_of t);
      Atomic.set fired true;
      for tid = 0 to Atomic.get t.next_tid - 1 do
        match t.ctxs.(tid) with
        | Some c when not (Atomic.get c.finished) -> Atomic.set c.kill true
        | _ -> ()
      done
    end
    else begin
      Thread.delay 0.002;
      loop ()
    end
  in
  loop ()

let run ?(config = default_config) main =
  let t = create config in
  (* Save/restore the previous BASE record (not the decorated dispatch
     record): re-installing a decorated record would stack a second copy
     of any attached analyzer on top of it. *)
  let previous = Ts_rt.base_ops () in
  Ts_rt.install (make_ops t);
  Ts_rt.enter_run ();
  let finally () =
    Ts_rt.exit_run ();
    match previous with Some ops -> Ts_rt.install ops | None -> ()
  in
  Fun.protect ~finally (fun () ->
      let domains = Array.map (fun dq -> Domain.spawn (domain_main dq)) t.queues in
      let main_ctx = new_ctx t 0 in
      Mutex.lock t.reg_lock;
      t.ctxs.(0) <- Some main_ctx;
      Mutex.unlock t.reg_lock;
      let t0 = Unix.gettimeofday () in
      let wd_stop = Atomic.make false in
      let wd_fired = Atomic.make false in
      let wd_pm = ref None in
      let wd =
        if config.watchdog_ns <= 0 then None
        else
          let deadline = t0 +. (float_of_int config.watchdog_ns /. 1e9) in
          Some (Thread.create (watchdog_body t deadline wd_stop wd_fired wd_pm) ())
      in
      thread_body t main_ctx main ();
      (* The main body normally joins its workers; pick up any it left
         running (or spawned on the way out) before stopping the pool. *)
      let rec drain () =
        let pending = ref false in
        for tid = 0 to Atomic.get t.next_tid - 1 do
          match t.ctxs.(tid) with
          | Some c when not (Atomic.get c.finished) -> pending := true
          | _ -> ()
        done;
        if !pending then begin
          Thread.delay 0.0002;
          drain ()
        end
      in
      drain ();
      Array.iter (fun dq -> enqueue dq Stop) t.queues;
      Array.iter Domain.join domains;
      (match wd with
      | None -> ()
      | Some th ->
          Atomic.set wd_stop true;
          Thread.join th);
      let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
      let elapsed =
        Array.fold_left
          (fun acc -> function Some c -> max acc c.clock | None -> acc)
          0 t.ctxs
      in
      let failures =
        Array.fold_left
          (fun acc -> function
            | Some c -> ( match c.failure with Some e -> (c.tid, e) :: acc | None -> acc)
            | None -> acc)
          [] t.ctxs
        |> List.rev
      in
      let crashed =
        Array.fold_left
          (fun acc -> function Some (c : ctx) when c.crashed -> c.tid :: acc | _ -> acc)
          [] t.ctxs
        |> List.rev
      in
      (match (config.propagate_failures, failures) with
      | true, (tid, e) :: _ -> raise (Thread_failure (tid, e))
      | _ -> ());
      {
        elapsed;
        wall_ns;
        run_stats = collect_stats t;
        failures;
        crashed;
        thread_count = Atomic.get t.next_tid;
        heap = t.heap;
        wedged = Atomic.get wd_fired;
        post_mortem = !wd_pm;
      })
