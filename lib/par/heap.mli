(** Unmanaged shared heap for the native backend.

    Every word is an [int Atomic.t] (all accesses sequentially
    consistent), with a shadow byte per word tracking
    unallocated/live/freed state so use-after-free, double-free and wild
    accesses are detected with the same {!Ts_umem.Mem.fault_kind}
    vocabulary as the simulator's heap. *)

type t

val create :
  ?strict:bool ->
  ?capacity:int ->
  ?cache_cap:int ->
  ?batch:int ->
  ?magazine:bool ->
  max_threads:int ->
  unit ->
  t
(** [strict] (default [true]) raises {!Ts_umem.Mem.Fault} on the first
    fault; non-strict records the fault, returns poison on bad reads and
    drops bad writes. [capacity] is in words and fixed at creation.

    [magazine] (default [true]) enables the per-thread magazines:
    fixed-capacity per-size-class caches ([cache_cap], default 64)
    refilled and flushed against the central free lists in batches of
    [batch] (default 32), so the central lock is taken once per batch
    instead of once per call.  [false] routes every small
    [malloc]/[free] through the lock — the no-magazine baseline. *)

(** {1 Faults} *)

val set_fault_hook : t -> (Ts_umem.Mem.fault_kind -> int -> unit) -> unit
val fault_count : t -> Ts_umem.Mem.fault_kind -> int
val total_faults : t -> int
val pp_faults : Format.formatter -> t -> unit

(** {1 Data plane} *)

val read : t -> int -> int
val write : t -> int -> int -> unit
val cas : t -> int -> int -> int -> bool
val faa : t -> int -> int -> int

val raw_read : t -> int -> int
(** Unchecked read (no fault accounting); used for register mirrors. *)

val raw_write : t -> int -> int -> unit

val is_live : t -> int -> bool
val is_freed : t -> int -> bool

(** {1 Allocation} *)

val alloc_region : t -> int -> int
(** Permanent region (stacks, register files, data-structure anchors);
    never freed, never poisoned. *)

val malloc : t -> tid:int -> int -> int
val free : t -> tid:int -> int -> unit

(** {1 Accounting} *)

val size : t -> int
val capacity : t -> int
val strict : t -> bool
val mallocs : t -> int
val frees : t -> int
val live_blocks : t -> int
val live_words : t -> int
val peak_live_blocks : t -> int
val peak_live_words : t -> int

val cache_hits : t -> int
(** Small allocations served from the caller's magazine, lock-free. *)

val cache_misses : t -> int
(** Small allocations that took the central lock (all of them, when
    magazines are off).  Hit rate is [hits / (hits + misses)]. *)

val central_refills : t -> int
(** Batches of fresh blocks carved into a central free list. *)

val cache_flushes : t -> int
(** Magazine overflows flushed to central, one batch per lock take. *)

val magazines_enabled : t -> bool
