(* Domain-safe unmanaged heap.

   The native twin of {!Ts_umem.Mem} + {!Ts_umem.Alloc}: a fixed-capacity
   array of atomic words (every access is sequentially consistent, which
   is what gives the native backend the same SC memory model the
   simulator steps out op by op), a per-word allocation-state shadow for
   UAF/wild/double-free detection, and a TCMalloc-style size-class
   allocator with per-thread caches.

   Differences from the sim heap, all forced by real parallelism:

   - No growth.  [Ts_umem.Mem] swaps in a bigger array when it fills;
     another domain could read the stale array mid-swap, so the native
     heap allocates its full capacity up front and faults [Out_of_memory]
     beyond it.
   - Shadow-state checks are exact in steady state but best-effort at
     the instant of a concurrent transition (the shadow byte is read
     unlocked next to the word access).  A correct reclamation scheme
     never races an access with a free of the same block, so on correct
     runs this detects exactly what the sim detects; on buggy runs it
     may attribute a fault one transition late, never miss it entirely.
   - Double-free detection is exact: the header transition live->freed
     is a CAS, so of two racing frees exactly one faults.

   Fault kinds, the [Fault] exception and the poison pattern are shared
   with {!Ts_umem.Mem} so oracles and tests need only one vocabulary. *)

module Mem = Ts_umem.Mem
module Size_class = Ts_umem.Size_class
module Vec = Ts_util.Vec

let poison = Mem.poison

(* Shadow states, one byte per word. *)
let st_unalloc = '\000'
let st_live = '\001'
let st_freed = '\002'

(* Block header (same scheme as Ts_umem.Alloc): one word below the user
   base, magic in the high half, block size in the low half.  The header
   word's shadow stays unallocated so data-plane dereference of it
   faults. *)
let live_magic = 0x1A11 lsl 32
let freed_magic = 0x0F9EE lsl 32
let magic_mask = lnot ((1 lsl 32) - 1)
let size_mask = (1 lsl 32) - 1

let fault_index : Mem.fault_kind -> int = function
  | Uaf_read -> 0
  | Uaf_write -> 1
  | Wild_read -> 2
  | Wild_write -> 3
  | Double_free -> 4
  | Bad_free -> 5
  | Out_of_memory -> 6
  | Canary_overwrite -> 7

let fault_kinds : Mem.fault_kind array =
  [| Uaf_read; Uaf_write; Wild_read; Wild_write; Double_free; Bad_free; Out_of_memory;
     Canary_overwrite |]

type t = {
  words : int Atomic.t array;
  shadow : Bytes.t;
  capacity : int;
  strict : bool;
  lock : Mutex.t; (* guards hwm, central lists, large_free, cache rows creation *)
  mutable hwm : int; (* first never-reserved address *)
  central : Vec.t array; (* per size class, user base addresses *)
  caches : Vec.t array option array; (* per tid; row touched only by its owner *)
  large_free : (int, Vec.t) Hashtbl.t;
  cache_cap : int;
  batch : int;
  magazine : bool; (* per-thread magazines on; off = every call takes the lock *)
  faults : int Atomic.t array; (* per fault kind *)
  mallocs : int Atomic.t;
  frees : int Atomic.t;
  live : int Atomic.t;
  live_w : int Atomic.t;
  peak_live : int Atomic.t;
  peak_w : int Atomic.t;
  hits : int Atomic.t; (* small mallocs served from the caller's magazine *)
  misses : int Atomic.t; (* small mallocs that took the central lock *)
  refills : int Atomic.t; (* batches of fresh blocks carved into central *)
  flushes : int Atomic.t; (* magazine overflows flushed to central, batched *)
  mutable on_fault : (Mem.fault_kind -> int -> unit) option;
}

let create ?(strict = true) ?(capacity = 1 lsl 21) ?(cache_cap = 64) ?(batch = 32)
    ?(magazine = true) ~max_threads () =
  {
    words = Array.init capacity (fun _ -> Atomic.make 0);
    shadow = Bytes.make capacity st_unalloc;
    capacity;
    strict;
    lock = Mutex.create ();
    hwm = 1 (* address 0 is the reserved null address *);
    central = Array.init Size_class.count (fun _ -> Vec.create ());
    caches = Array.make max_threads None;
    large_free = Hashtbl.create 16;
    cache_cap;
    batch;
    magazine;
    faults = Array.init (Array.length fault_kinds) (fun _ -> Atomic.make 0);
    (* allocator counters are bumped by every thread on every
       malloc/free; keep each on its own cache line so traffic on one
       does not invalidate the others *)
    mallocs = Ts_util.Padded.copy (Atomic.make 0);
    frees = Ts_util.Padded.copy (Atomic.make 0);
    live = Ts_util.Padded.copy (Atomic.make 0);
    live_w = Ts_util.Padded.copy (Atomic.make 0);
    peak_live = Ts_util.Padded.copy (Atomic.make 0);
    peak_w = Ts_util.Padded.copy (Atomic.make 0);
    hits = Ts_util.Padded.copy (Atomic.make 0);
    misses = Ts_util.Padded.copy (Atomic.make 0);
    refills = Ts_util.Padded.copy (Atomic.make 0);
    flushes = Ts_util.Padded.copy (Atomic.make 0);
    on_fault = None;
  }

let set_fault_hook t f = t.on_fault <- Some f

let record_fault t kind addr =
  Atomic.incr t.faults.(fault_index kind);
  (match t.on_fault with Some f -> f kind addr | None -> ());
  if t.strict then raise (Mem.Fault (kind, addr))

let fault_count t kind = Atomic.get t.faults.(fault_index kind)

let total_faults t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.faults

let pp_faults ppf t =
  Array.iter
    (fun kind ->
      let n = fault_count t kind in
      if n > 0 then Fmt.pf ppf "%s=%d " (Mem.fault_to_string kind) n)
    fault_kinds

let[@inline] in_range t addr = addr > 0 && addr < t.capacity

let[@inline] state t addr = Bytes.unsafe_get t.shadow addr

(* Word access below an [in_range]/shadow check uses [Array.unsafe_get]:
   the range check already established the bound, so the second
   (compiler-inserted) bounds check is pure overhead on the hottest path
   in the native backend. *)
let[@inline] word t addr = Array.unsafe_get t.words addr

(* Data plane: checked, atomic. *)

let read t addr =
  if not (in_range t addr) then begin
    record_fault t Wild_read addr;
    poison
  end
  else
    match state t addr with
    | c when c = st_live -> Atomic.get (word t addr)
    | c when c = st_freed ->
        record_fault t Uaf_read addr;
        poison
    | _ ->
        record_fault t Wild_read addr;
        poison

let write t addr v =
  if not (in_range t addr) then record_fault t Wild_write addr
  else
    match state t addr with
    | c when c = st_live -> Atomic.set (word t addr) v
    | c when c = st_freed -> record_fault t Uaf_write addr
    | _ -> record_fault t Wild_write addr

let cas t addr expected desired =
  if not (in_range t addr) then begin
    record_fault t Wild_write addr;
    false
  end
  else
    match state t addr with
    | c when c = st_live -> Atomic.compare_and_set (word t addr) expected desired
    | c when c = st_freed ->
        record_fault t Uaf_write addr;
        false
    | _ ->
        record_fault t Wild_write addr;
        false

let faa t addr delta =
  if not (in_range t addr) then begin
    record_fault t Wild_write addr;
    poison
  end
  else
    match state t addr with
    | c when c = st_live -> Atomic.fetch_and_add (word t addr) delta
    | c when c = st_freed ->
        record_fault t Uaf_write addr;
        poison
    | _ ->
        record_fault t Wild_write addr;
        poison

(* Control plane: unchecked (allocator metadata, register mirroring). *)

let raw_read t addr = if in_range t addr then Atomic.get (word t addr) else poison

let raw_write t addr v = if in_range t addr then Atomic.set (word t addr) v

let is_live t addr = in_range t addr && state t addr = st_live

let is_freed t addr = in_range t addr && state t addr = st_freed

let mark_live t base n =
  Bytes.fill t.shadow base n st_live;
  for i = base to base + n - 1 do
    Atomic.set t.words.(i) 0
  done

let mark_freed t base n =
  (* Poison first, then flip the shadow: a racing reader sees either the
     old live words or (poison, freed) — never (poison, live). *)
  for i = base to base + n - 1 do
    Atomic.set t.words.(i) poison
  done;
  Bytes.fill t.shadow base n st_freed

(* [reserve] under [lock]. *)
let reserve_locked t n =
  if t.hwm + n > t.capacity then begin
    Mutex.unlock t.lock;
    record_fault t Out_of_memory t.hwm;
    Mutex.lock t.lock;
    (* non-strict mode: hand out the null address; accesses will fault *)
    0
  end
  else begin
    let base = t.hwm in
    t.hwm <- t.hwm + n;
    base
  end

let alloc_region t n =
  Mutex.lock t.lock;
  let base = reserve_locked t n in
  Mutex.unlock t.lock;
  if base > 0 then mark_live t base n;
  base

(* ------------------------------------------------------------------ *)
(* Size-class allocator                                               *)
(* ------------------------------------------------------------------ *)

let bump_peak counter peak v =
  let v = Atomic.fetch_and_add counter v + v in
  let rec loop () =
    let p = Atomic.get peak in
    if v > p && not (Atomic.compare_and_set peak p v) then loop ()
  in
  loop ()

let carve_locked t block_w =
  let base = reserve_locked t (block_w + 1) in
  if base = 0 then 0 else base + 1

let activate t addr block_w =
  raw_write t (addr - 1) (live_magic lor block_w);
  mark_live t addr block_w

let cache_row t tid =
  match t.caches.(tid) with
  | Some row -> row
  | None ->
      let row = Array.init Size_class.count (fun _ -> Vec.create ~capacity:4 ()) in
      t.caches.(tid) <- Some row;
      row

let malloc t ~tid n =
  if n <= 0 then invalid_arg "Heap.malloc";
  let addr =
    if Size_class.is_small n then begin
      let cls = Size_class.of_size n in
      if not t.magazine then begin
        (* Magazines off: every small allocation takes the central lock
           (the no-magazine baseline configuration). *)
        Mutex.lock t.lock;
        let central = t.central.(cls) in
        if Vec.is_empty central then begin
          let block_w = Size_class.size cls in
          for _ = 1 to t.batch do
            let a = carve_locked t block_w in
            if a > 0 then Vec.push central a
          done;
          Atomic.incr t.refills
        end;
        let a = if Vec.is_empty central then 0 else Vec.pop central in
        Mutex.unlock t.lock;
        Atomic.incr t.misses;
        a
      end
      else begin
        let cache = (cache_row t tid).(cls) in
        if not (Vec.is_empty cache) then begin
          Atomic.incr t.hits;
          Vec.pop cache
        end
        else begin
          Mutex.lock t.lock;
          let central = t.central.(cls) in
          if Vec.is_empty central then begin
            let block_w = Size_class.size cls in
            for _ = 1 to t.batch do
              let a = carve_locked t block_w in
              if a > 0 then Vec.push central a
            done;
            Atomic.incr t.refills
          end;
          (* Batch refill: move up to half a batch into the magazine so
             the next allocations stay off the lock; keep one for the
             caller. *)
          let take = min (t.batch / 2) (max 0 (Vec.length central - 1)) in
          for _ = 1 to take do
            Vec.push cache (Vec.pop central)
          done;
          let a = if Vec.is_empty central then 0 else Vec.pop central in
          Mutex.unlock t.lock;
          Atomic.incr t.misses;
          a
        end
      end
    end
    else begin
      Mutex.lock t.lock;
      let a =
        match Hashtbl.find_opt t.large_free n with
        | Some lst when not (Vec.is_empty lst) -> Vec.pop lst
        | _ -> carve_locked t n
      in
      Mutex.unlock t.lock;
      a
    end
  in
  if addr > 0 then begin
    let block_w = if Size_class.is_small n then Size_class.size (Size_class.of_size n) else n in
    activate t addr block_w;
    Atomic.incr t.mallocs;
    bump_peak t.live t.peak_live 1;
    bump_peak t.live_w t.peak_w block_w
  end;
  addr

let free t ~tid addr =
  if not (in_range t addr && in_range t (addr - 1)) then record_fault t Bad_free addr
  else begin
    let hdr = raw_read t (addr - 1) in
    let magic = hdr land magic_mask in
    let block_w = hdr land size_mask in
    if magic = live_magic then begin
      (* The live->freed header transition is a CAS: of two racing frees
         of the same block exactly one takes this branch, the other
         faults Double_free below on the freed magic. *)
      if Atomic.compare_and_set t.words.(addr - 1) hdr (freed_magic lor block_w) then begin
        mark_freed t addr block_w;
        Atomic.incr t.frees;
        ignore (Atomic.fetch_and_add t.live (-1));
        ignore (Atomic.fetch_and_add t.live_w (-block_w));
        if Size_class.is_small block_w && Size_class.size (Size_class.of_size block_w) = block_w
        then begin
          let cls = Size_class.of_size block_w in
          if not t.magazine then begin
            Mutex.lock t.lock;
            Vec.push t.central.(cls) addr;
            Mutex.unlock t.lock
          end
          else begin
            (* Batched flush: once the magazine overflows, move a whole
               batch to central under one lock acquisition — not one
               address per free, which would serialise every free on the
               lock as soon as the cache first filled. *)
            let cache = (cache_row t tid).(cls) in
            Vec.push cache addr;
            if Vec.length cache > t.cache_cap then begin
              Mutex.lock t.lock;
              let central = t.central.(cls) in
              for _ = 1 to t.batch do
                Vec.push central (Vec.pop cache)
              done;
              Mutex.unlock t.lock;
              Atomic.incr t.flushes
            end
          end
        end
        else begin
          Mutex.lock t.lock;
          (match Hashtbl.find_opt t.large_free block_w with
          | Some lst -> Vec.push lst addr
          | None ->
              let lst = Vec.create () in
              Vec.push lst addr;
              Hashtbl.replace t.large_free block_w lst);
          Mutex.unlock t.lock
        end
      end
      else record_fault t Double_free addr
    end
    else if magic = freed_magic then record_fault t Double_free addr
    else record_fault t Bad_free addr
  end

(* ------------------------------------------------------------------ *)
(* Statistics                                                         *)
(* ------------------------------------------------------------------ *)

let size t = t.hwm
let capacity t = t.capacity
let strict t = t.strict
let mallocs t = Atomic.get t.mallocs
let frees t = Atomic.get t.frees
let live_blocks t = Atomic.get t.live
let live_words t = Atomic.get t.live_w
let peak_live_blocks t = Atomic.get t.peak_live
let peak_live_words t = Atomic.get t.peak_w
let cache_hits t = Atomic.get t.hits
let cache_misses t = Atomic.get t.misses
let central_refills t = Atomic.get t.refills
let cache_flushes t = Atomic.get t.flushes
let magazines_enabled t = t.magazine
