(** Backend-neutral execution layer.

    [Ts_rt] is the only runtime the algorithm layers (umem allocator,
    sync, SMR schemes, ThreadScan core, data structures, workload
    bodies) name.  It dispatches every operation through the [ops]
    record the active backend installed:

    - [Ts_sim.Runtime] — the deterministic effect-based simulator;
      installs its ops at [create]/[start].
    - [Ts_par.Runtime] — real OCaml 5 domains; installs its ops at
      [run].

    See docs/BACKENDS.md for the contract each op must satisfy. *)

include Backend
module Cost_model = Rt_cost_model
module Frame = Rt_frame
