type t = { base : int; size : int }

let push n = { base = Backend.push_frame n; size = n }

let pop fr = Backend.pop_frame fr.base

let with_frame n f =
  let fr = push n in
  match f fr with
  | v ->
      pop fr;
      v
  | exception e ->
      (* Best effort: the frame may already be unwound if the thread died. *)
      (try pop fr with _ -> ());
      raise e

let check fr i = if i < 0 || i >= fr.size then invalid_arg "Frame: slot out of range"

let get fr i =
  check fr i;
  Backend.read (fr.base + i)

let set fr i v =
  check fr i;
  Backend.write (fr.base + i) v

let size fr = fr.size

let base fr = fr.base
