type t = {
  local_op : int;
  shared_read : int;
  shared_write : int;
  cas : int;
  faa : int;
  fence : int;
  malloc : int;
  free : int;
  yield : int;
  signal_send : int;
  signal_dispatch : int;
  signal_return : int;
  context_switch : int;
  spawn : int;
}

let default =
  {
    local_op = 1;
    shared_read = 10;
    shared_write = 10;
    cas = 40;
    faa = 40;
    fence = 40;
    malloc = 60;
    free = 40;
    yield = 60;
    signal_send = 400;
    signal_dispatch = 900;
    signal_return = 300;
    context_switch = 3000;
    spawn = 2000;
  }

let uniform =
  {
    local_op = 1;
    shared_read = 1;
    shared_write = 1;
    cas = 1;
    faa = 1;
    fence = 1;
    malloc = 1;
    free = 1;
    yield = 1;
    signal_send = 1;
    signal_dispatch = 1;
    signal_return = 1;
    context_switch = 1;
    spawn = 1;
  }

let pp ppf c =
  Fmt.pf ppf
    "read=%d write=%d cas=%d fence=%d malloc=%d free=%d sig=%d/%d/%d switch=%d quantum-costs"
    c.shared_read c.shared_write c.cas c.fence c.malloc c.free c.signal_send c.signal_dispatch
    c.signal_return c.context_switch
