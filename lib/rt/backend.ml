(* The execution interface every layer above the runtime is written
   against.  A backend (the deterministic simulator in [Ts_sim], real
   OCaml 5 domains in [Ts_par]) installs one [ops] record; the stack
   calls the wrapper functions below and never names a backend.

   The surface is exactly the op set the simulator exposed before the
   split, plus two backend-neutral extension points:

   - [poll]: an explicit safepoint.  Native threads deliver pending
     phase signals at op boundaries; a long computation that performs
     no ops can call [poll] to stay responsive.  No-op in the sim.
   - [critical]: mutual exclusion for *OCaml-heap* state shared between
     threads (orphan lists, overflow queues).  Words in the unmanaged
     heap are already atomic; this is only for the few managed-heap
     structures the schemes share.  No-op in the sim (one fiber runs at
     a time); a global mutex natively. *)

type tid = int

type ops = {
  (* unmanaged shared memory *)
  read : int -> int;
  write : int -> int -> unit;
  cas : int -> int -> int -> bool;
  faa : int -> int -> int;
  fence : unit -> unit;
  malloc : int -> int;
  free : int -> unit;
  alloc_region : int -> int;
  (* scheduling *)
  yield : unit -> unit;
  advance : int -> unit;
  now : unit -> int;
  self : unit -> tid;
  rand_below : int -> int;
  steps_now : unit -> int;
  spawn : (unit -> unit) -> tid;
  join : tid -> unit;
  is_done : tid -> bool;
  poll : unit -> unit;
  (* signals *)
  signal : tid -> unit;
  set_signal_handler : (unit -> unit) -> unit;
  signal_depth : unit -> int;
  neutralize : exn -> unit;
  cancel_neutralize : unit -> unit;
  (* shadow stack, registers, scan ranges *)
  push_frame : int -> int;
  pop_frame : int -> unit;
  stack_range : unit -> int * int;
  reg_range : unit -> int * int;
  save_regs : unit -> unit;
  saved_reg_range : unit -> int * int;
  clear_regs : unit -> unit;
  add_private_range : int -> int -> unit;
  remove_private_range : int -> int -> unit;
  private_ranges : unit -> (int * int) list;
  scan_ranges_of : tid -> (int * int) list;
  (* fault status and diagnostics *)
  crash : tid -> unit;
  stall : int option -> tid -> unit;
  unstall : tid -> unit;
  drop_signals : tid -> int -> unit;
  delay_signals : tid -> int -> unit;
  sleep : int -> unit;
  is_crashed : tid -> bool;
  is_stalled : tid -> bool;
  clock_of : tid -> int;
  set_wait_note : string option -> unit;
  note : string -> unit;
  (* managed-heap mutual exclusion *)
  critical : 'a. (unit -> 'a) -> 'a;
}

(* Registration is split in two layers:

   - [base]: the ops record a backend installed (sim or native).
   - [decorator]: an optional wrapper (the [Ts_analyze] race/lifecycle
     detector) applied on top of whatever base is installed.

   [current] always holds [decorator (base)] and is what the wrapper
   functions below dispatch through.  Keeping [base] separate means a
   backend re-installing its own record (the simulator does so on both
   [create] and [start]) re-applies the decorator instead of silently
   dropping it — and lets [install] reject a *different* backend while a
   run is in flight, so a stray nested run can't swap the ops out from
   under an attached analyzer. *)

let current : ops option Atomic.t = Atomic.make None

let base : ops option Atomic.t = Atomic.make None

let decorator : (ops -> ops) option Atomic.t = Atomic.make None

let run_depth : int Atomic.t = Atomic.make 0

let refresh () =
  match Atomic.get base with
  | None -> Atomic.set current None
  | Some b ->
      let o = match Atomic.get decorator with None -> b | Some d -> d b in
      Atomic.set current (Some o)

let install o =
  (match Atomic.get base with
  | Some b when Atomic.get run_depth > 0 && b != o ->
      failwith
        "Ts_rt: backend install while a run is active (finish the current Ts_sim/Ts_par run \
         before entering another backend)"
  | _ -> ());
  Atomic.set base (Some o);
  refresh ()

let base_ops () = Atomic.get base

let set_decorator d =
  Atomic.set decorator d;
  refresh ()

let enter_run () = Atomic.incr run_depth

let exit_run () =
  let rec dec () =
    let d = Atomic.get run_depth in
    if d > 0 && not (Atomic.compare_and_set run_depth d (d - 1)) then dec ()
  in
  dec ()

let run_active () = Atomic.get run_depth > 0

let installed () = Atomic.get current <> None

let[@inline] ops () =
  match Atomic.get current with
  | Some o -> o
  | None ->
      failwith
        "Ts_rt: no execution backend installed (enter Ts_sim.Runtime.run or Ts_par.Runtime.run \
         first)"

let read addr = (ops ()).read addr
let write addr v = (ops ()).write addr v
let cas addr expected desired = (ops ()).cas addr expected desired
let faa addr delta = (ops ()).faa addr delta
let fence () = (ops ()).fence ()
let malloc n = (ops ()).malloc n
let free addr = (ops ()).free addr
let alloc_region n = (ops ()).alloc_region n
let yield () = (ops ()).yield ()
let advance n = (ops ()).advance n
let now () = (ops ()).now ()
let self () = (ops ()).self ()
let rand_below n = (ops ()).rand_below n
let steps_now () = (ops ()).steps_now ()
let spawn f = (ops ()).spawn f
let join t = (ops ()).join t
let is_done t = (ops ()).is_done t
let poll () = (ops ()).poll ()
let signal t = (ops ()).signal t
let set_signal_handler h = (ops ()).set_signal_handler h
let signal_depth () = (ops ()).signal_depth ()
let neutralize e = (ops ()).neutralize e
let cancel_neutralize () = (ops ()).cancel_neutralize ()
let push_frame n = (ops ()).push_frame n
let pop_frame base = (ops ()).pop_frame base
let stack_range () = (ops ()).stack_range ()
let reg_range () = (ops ()).reg_range ()
let save_regs () = (ops ()).save_regs ()
let saved_reg_range () = (ops ()).saved_reg_range ()
let clear_regs () = (ops ()).clear_regs ()
let add_private_range base len = (ops ()).add_private_range base len
let remove_private_range base len = (ops ()).remove_private_range base len
let private_ranges () = (ops ()).private_ranges ()
let scan_ranges_of t = (ops ()).scan_ranges_of t
let crash t = (ops ()).crash t
let stall ?cycles t = (ops ()).stall cycles t
let unstall t = (ops ()).unstall t
let drop_signals t n = (ops ()).drop_signals t n
let delay_signals t c = (ops ()).delay_signals t c
let sleep n = (ops ()).sleep n
let is_crashed t = (ops ()).is_crashed t
let is_stalled t = (ops ()).is_stalled t
let clock_of t = (ops ()).clock_of t
let set_wait_note n = (ops ()).set_wait_note n
let note s = (ops ()).note s
let critical f = (ops ()).critical f
