(** The execution interface every layer above the runtime is written
    against.  A backend (the deterministic simulator in [Ts_sim], real
    OCaml 5 domains in [Ts_par]) installs one {!ops} record; the stack
    calls the wrapper functions below and never names a backend.

    This interface is the surface the {!Ts_analyze} decorator wraps — it
    is frozen here so analysis tools can rely on the exact op set. *)

type tid = int

type ops = {
  (* unmanaged shared memory *)
  read : int -> int;
  write : int -> int -> unit;
  cas : int -> int -> int -> bool;
  faa : int -> int -> int;
  fence : unit -> unit;
  malloc : int -> int;
  free : int -> unit;
  alloc_region : int -> int;
  (* scheduling *)
  yield : unit -> unit;
  advance : int -> unit;
  now : unit -> int;
  self : unit -> tid;
  rand_below : int -> int;
  steps_now : unit -> int;
  spawn : (unit -> unit) -> tid;
  join : tid -> unit;
  is_done : tid -> bool;
  poll : unit -> unit;
  (* signals *)
  signal : tid -> unit;
  set_signal_handler : (unit -> unit) -> unit;
  signal_depth : unit -> int;
  neutralize : exn -> unit;
  cancel_neutralize : unit -> unit;
  (* shadow stack, registers, scan ranges *)
  push_frame : int -> int;
  pop_frame : int -> unit;
  stack_range : unit -> int * int;
  reg_range : unit -> int * int;
  save_regs : unit -> unit;
  saved_reg_range : unit -> int * int;
  clear_regs : unit -> unit;
  add_private_range : int -> int -> unit;
  remove_private_range : int -> int -> unit;
  private_ranges : unit -> (int * int) list;
  scan_ranges_of : tid -> (int * int) list;
  (* fault status and diagnostics *)
  crash : tid -> unit;
  stall : int option -> tid -> unit;
  unstall : tid -> unit;
  drop_signals : tid -> int -> unit;
  delay_signals : tid -> int -> unit;
  sleep : int -> unit;
  is_crashed : tid -> bool;
  is_stalled : tid -> bool;
  clock_of : tid -> int;
  set_wait_note : string option -> unit;
  note : string -> unit;
  (* managed-heap mutual exclusion *)
  critical : 'a. (unit -> 'a) -> 'a;
}

(** {1 Backend registration}

    Registration is layered: a backend {!install}s a {e base} ops record,
    and an optional {e decorator} (set with {!set_decorator}) is applied
    on top of it.  The dispatch wrappers below always go through the
    decorated record.

    Reinstall semantics: a backend may re-install the {e same} base record
    at any time (the simulator does so on both [create] and [start]); the
    decorator is re-applied.  Installing a {e different} base record while
    a run is active (between {!enter_run} and {!exit_run}) raises
    [Failure] — a nested run of another backend cannot swap the ops out
    from under an attached analyzer.  Between runs, installing a different
    backend is allowed and is the normal way tests alternate sim and
    native execution. *)

val install : ops -> unit
(** Install a base ops record and recompute the decorated dispatch record.
    Raises [Failure] if a different base is already installed and a run is
    active. *)

val installed : unit -> bool
(** [true] once any backend has installed ops. *)

val ops : unit -> ops
(** The current (decorated) ops record; raises [Failure] if no backend is
    installed. *)

val base_ops : unit -> ops option
(** The currently installed base record, without decoration.  Backends use
    this to save/restore the previous backend around a run so they never
    capture (and later re-install) another tool's decorated record. *)

val set_decorator : (ops -> ops) option -> unit
(** Set or clear the ops decorator.  Takes effect immediately if a base is
    installed, and is (re-)applied on every subsequent {!install}. *)

val enter_run : unit -> unit
(** Mark the start of a backend run (bracketed by backends, not users). *)

val exit_run : unit -> unit
(** Mark the end of a backend run.  Extra calls at depth zero are ignored. *)

val run_active : unit -> bool
(** [true] while at least one backend run is in flight. *)

(** {1 Dispatch wrappers} *)

val read : int -> int
val write : int -> int -> unit
val cas : int -> int -> int -> bool
val faa : int -> int -> int
val fence : unit -> unit
val malloc : int -> int
val free : int -> unit
val alloc_region : int -> int
val yield : unit -> unit
val advance : int -> unit
val now : unit -> int
val self : unit -> tid
val rand_below : int -> int
val steps_now : unit -> int
val spawn : (unit -> unit) -> tid
val join : tid -> unit
val is_done : tid -> bool
val poll : unit -> unit
val signal : tid -> unit
val set_signal_handler : (unit -> unit) -> unit
val signal_depth : unit -> int

val neutralize : exn -> unit
(** Called from inside a signal handler: arrange for the interrupted
    context to raise [exn] at its next abortable operation (shared-memory
    access, malloc, fence or yield — {e not} free or frame pops, so
    cleanup code still runs) once all pending handlers have returned.
    This is the DEBRA+ neutralizing primitive: the handler unpins its
    thread and the victim restarts its operation from the enclosing
    {!Ts_ds.Set_intf.wrap} bracket.  A handler must use this rather than
    raising directly — on the simulator a handler fiber that raises
    kills its thread. *)

val cancel_neutralize : unit -> unit
(** Clear any pending neutralization of the calling thread.  Schemes call
    this at the top of [op_end]: once the operation's work is complete, a
    late abort must not escape and retry a completed (already
    linearized) operation. *)

val push_frame : int -> int
val pop_frame : int -> unit
val stack_range : unit -> int * int
val reg_range : unit -> int * int
val save_regs : unit -> unit
val saved_reg_range : unit -> int * int
val clear_regs : unit -> unit
val add_private_range : int -> int -> unit
val remove_private_range : int -> int -> unit
val private_ranges : unit -> (int * int) list
val scan_ranges_of : tid -> (int * int) list
val crash : tid -> unit
val stall : ?cycles:int -> tid -> unit

val unstall : tid -> unit
(** Release a [stall ~cycles:None] (stall-forever) victim.  The victim
    wakes at its next scheduling opportunity; a no-op if the target is
    not stalled.  Idempotent. *)

val drop_signals : tid -> int -> unit
(** Arrange for the target's next [n] incoming phase signals to be
    dropped (never delivered).  Counts do not accumulate: the latest
    call wins. *)

val delay_signals : tid -> int -> unit
(** Delay delivery of every signal to the target by [c] virtual cycles
    (sim) or the backend's cycle-scaled wall time (native).  [0] clears
    the delay. *)

val sleep : int -> unit
(** Advance the calling thread's clock by [n] cycles {e and} pace it in
    real time on the native backend (sim: identical to [advance]).
    Monitors and chaos drivers use this to poll without busy-spinning;
    unlike [advance] it is also a safepoint. *)

val is_crashed : tid -> bool
val is_stalled : tid -> bool
val clock_of : tid -> int
val set_wait_note : string option -> unit
val note : string -> unit
val critical : (unit -> 'a) -> 'a
