(* The single source of truth for reclamation schemes.  Each descriptor
   carries the canonical name, CLI aliases, capability flags, chaos
   profile and constructor; every consumer (workload harness, chaos
   oracle, benchmark/checker/trace CLIs, conformance tests) dispatches
   through this table instead of matching on scheme names. *)

type caps = {
  crash_tolerant : bool;
  wedges_under_stall : bool;
  protect_slots : bool;
  has_pipeline_knobs : bool;
  neutralizes : bool;
  pins_frames : bool;
  reclaims : bool;
}

type chaos_profile = Self_healing | Crash_healing | Quiescence_bound | Unchecked

type params = {
  buffer : int option;
  help_free : bool;
  collect_merge : bool;
  scan_filter : bool;
  free_chunk : int option;
  shards : int option;
  delay : int option;
  patience : int option;
  batch : int option;
}

let default_params =
  {
    buffer = None;
    help_free = false;
    collect_merge = false;
    scan_filter = false;
    free_chunk = None;
    shards = None;
    delay = None;
    patience = None;
    batch = None;
  }

type spec = { id : string; params : params }

type budgets = {
  ack_budget : int;
  suspect_phases : int;
  takeover_steps : int;
  overflow_after : int;
}

let fault_budgets ~horizon =
  {
    ack_budget = max 10_000 (horizon / 20);
    suspect_phases = 2;
    takeover_steps = max 20_000 (horizon / 10);
    overflow_after = 32;
  }

type env = {
  max_threads : int;
  hazard_slots : int;
  epoch_batch : int;
  budgets : budgets option;
}

type built = { smr : Ts_smr.Smr.t; ts : Threadscan.t option }

type descriptor = {
  id : string;
  aliases : string list;
  summary : string;
  caps : caps;
  chaos : chaos_profile;
  recovery_extras : string list;
  tunables : string list;
  crash_leak_per_victim : params -> int;
  pipelined : string option;
  build : env -> params -> built;
}

(* ----------------------------- constructors --------------------------- *)

let plain smr = { smr; ts = None }

let build_threadscan ~pipeline env p =
  let buffer_size = Option.value p.buffer ~default:64 in
  let base =
    {
      Threadscan.Config.default with
      max_threads = env.max_threads;
      buffer_size;
      help_free = p.help_free;
      (* individually toggled pipeline stages (the checker explores them
         one at a time) *)
      collect_merge = p.collect_merge;
      scan_filter = p.scan_filter;
      free_chunk = Option.value p.free_chunk ~default:Threadscan.Config.default.free_chunk;
      shards = Option.value p.shards ~default:Threadscan.Config.default.shards;
    }
  in
  let base =
    (* The whole parallel-reclamation pipeline (docs/PERF.md): sealed-run
       collect with k-way merge, Bloom-prefiltered TS-Scan, chunked
       helper-parallel free phase.  [adaptive_buffers] is deliberately
       left off: growing buffers with the thread count suppresses phases
       on benchmark-sized runs, and the figures must measure the pipeline
       at the same phase cadence as the legacy scheme. *)
    if pipeline then
      {
        base with
        collect_merge = true;
        scan_filter = true;
        help_free = true;
        free_chunk = Option.value p.free_chunk ~default:8;
        (* auto shards (one per 8 threads) unless --shards pinned it *)
        shards = Option.value p.shards ~default:0;
      }
    else base
  in
  let config =
    match env.budgets with
    | None -> base
    | Some b ->
        {
          base with
          ack_budget = b.ack_budget;
          suspect_phases = b.suspect_phases;
          takeover_steps = b.takeover_steps;
          overflow_after = b.overflow_after;
        }
  in
  let ts = Threadscan.create ~config () in
  { smr = Threadscan.smr ts; ts = Some ts }

let no_reclaim =
  {
    crash_tolerant = true;
    wedges_under_stall = false;
    protect_slots = false;
    has_pipeline_knobs = false;
    neutralizes = false;
    (* nothing is ever freed, so a held reference never dangles *)
    pins_frames = true;
    reclaims = false;
  }

let reclaims = { no_reclaim with reclaims = true; pins_frames = false }
let threadscan_caps = { reclaims with has_pipeline_knobs = true; pins_frames = true }
let epoch_caps = { reclaims with crash_tolerant = false; wedges_under_stall = true }
let ladder_extras = [ "reaps"; "takeovers"; "proxy-scans"; "recoveries" ]
let ts_tunables =
  [ "buffer"; "help-free"; "collect-merge"; "scan-filter"; "free-chunk"; "shards" ]

let all =
  [
    {
      id = "leaky";
      aliases = [ "none" ];
      summary = "never frees: the throughput ceiling and leak baseline";
      caps = no_reclaim;
      chaos = Unchecked;
      recovery_extras = [];
      tunables = [];
      crash_leak_per_victim = (fun _ -> 0);
      pipelined = None;
      build = (fun _ _ -> plain (Ts_reclaim.Leaky.create ()));
    };
    {
      id = "threadscan";
      aliases = [ "ts" ];
      summary = "signal-driven stack/buffer scan with a crash/stall degradation ladder";
      caps = threadscan_caps;
      chaos = Self_healing;
      recovery_extras = ladder_extras;
      tunables = ts_tunables;
      crash_leak_per_victim = (fun _ -> 1);
      pipelined = Some "threadscan-pipe";
      build = build_threadscan ~pipeline:false;
    };
    {
      id = "threadscan-pipe";
      aliases = [ "ts-pipe"; "ts-pipeline"; "threadscan-pipeline" ];
      summary = "ThreadScan with the parallel reclamation pipeline (merge/filter/chunked free)";
      caps = threadscan_caps;
      chaos = Self_healing;
      recovery_extras = ladder_extras;
      tunables = ts_tunables;
      crash_leak_per_victim = (fun _ -> 1);
      pipelined = None;
      build = build_threadscan ~pipeline:true;
    };
    {
      id = "hazard";
      aliases = [ "hp" ];
      summary = "hazard pointers: per-read protection slots, per-thread retired lists";
      caps = { reclaims with protect_slots = true };
      chaos = Unchecked;
      recovery_extras = [];
      tunables = [];
      (* a corpse strands its protected slots plus one in-flight retire *)
      crash_leak_per_victim = (fun _ -> 4);
      pipelined = None;
      build =
        (fun env _ ->
          plain
            (Ts_reclaim.Hazard.create ~slots:env.hazard_slots ~max_threads:env.max_threads ()));
    };
    {
      id = "epoch";
      aliases = [ "ebr" ];
      summary = "global-epoch quiescence with per-epoch limbo lists";
      caps = epoch_caps;
      chaos = Quiescence_bound;
      recovery_extras = [];
      tunables = [ "batch" ];
      crash_leak_per_victim = (fun _ -> 0);
      pipelined = None;
      build =
        (fun env p ->
          let batch = Option.value p.batch ~default:env.epoch_batch in
          plain (Ts_reclaim.Epoch.create ~batch ~max_threads:env.max_threads ()));
    };
    {
      id = "slow-epoch";
      aliases = [];
      summary = "epoch with one artificially delayed straggler (the wedge demonstrator)";
      caps = epoch_caps;
      chaos = Quiescence_bound;
      recovery_extras = [];
      tunables = [ "batch"; "delay" ];
      crash_leak_per_victim = (fun _ -> 0);
      pipelined = None;
      build =
        (fun env p ->
          let batch = Option.value p.batch ~default:env.epoch_batch in
          let delay = Option.value p.delay ~default:600_000 in
          (* thread id 1 is the first worker spawned *)
          plain
            (Ts_reclaim.Epoch.create ~batch ~errant:(1, delay) ~max_threads:env.max_threads ()));
    };
    {
      id = "patient-epoch";
      aliases = [];
      summary = "epoch whose quiescence waits give up after a bounded patience";
      caps = reclaims;
      chaos = Unchecked;
      recovery_extras = [];
      tunables = [ "batch"; "patience" ];
      crash_leak_per_victim = (fun _ -> 1);
      pipelined = None;
      build =
        (fun env p ->
          let batch = Option.value p.batch ~default:env.epoch_batch in
          let patience = Option.value p.patience ~default:20_000 in
          plain (Ts_reclaim.Epoch.create ~batch ~patience ~max_threads:env.max_threads ()));
    };
    {
      id = "stacktrack";
      aliases = [];
      summary = "explicit operation frames scanned cooperatively (no signals)";
      caps = { reclaims with pins_frames = true };
      chaos = Unchecked;
      recovery_extras = [];
      tunables = [];
      crash_leak_per_victim = (fun _ -> 2);
      pipelined = None;
      build = (fun env _ -> plain (Ts_reclaim.Stacktrack.create ~max_threads:env.max_threads ()));
    };
    {
      id = "debra";
      aliases = [ "debra+" ];
      summary = "epoch bags with neutralizing signals: crashed/stalled readers are skipped";
      caps = { reclaims with neutralizes = true };
      chaos = Self_healing;
      recovery_extras = [ "dead-skips"; "stall-skips" ];
      tunables = [ "batch" ];
      crash_leak_per_victim = (fun _ -> 1);
      pipelined = None;
      build =
        (fun env p ->
          let batch = Option.value p.batch ~default:env.epoch_batch in
          plain (Ts_reclaim.Debra.create ~batch ~max_threads:env.max_threads ()));
    };
    {
      id = "hyaline";
      aliases = [];
      summary = "reference-counted retirement batches, snapshot-free (2 FAAs per op)";
      caps = reclaims;
      chaos = Crash_healing;
      recovery_extras = [ "corpse-leaves" ];
      (* one lost (unpublished) batch plus one in-flight retire *)
      tunables = [ "batch" ];
      crash_leak_per_victim = (fun p -> Option.value p.batch ~default:64 + 1);
      pipelined = None;
      build =
        (fun env p ->
          let batch = Option.value p.batch ~default:env.epoch_batch in
          plain (Ts_reclaim.Hyaline.create ~batch ~max_threads:env.max_threads ()));
    };
  ]

(* ------------------------------- lookup ------------------------------- *)

let find name =
  List.find_opt (fun d -> d.id = name || List.mem name d.aliases) all

let names () = List.map (fun d -> d.id) all

let names_doc () =
  String.concat ", "
    (List.map
       (fun d ->
         match d.aliases with
         | [] -> d.id
         | a -> d.id ^ " (" ^ String.concat "|" a ^ ")")
       all)

let unknown name =
  Printf.sprintf "unknown scheme %S (expected one of: %s)" name (names_doc ())

let get name =
  match find name with Some d -> d | None -> invalid_arg (unknown name)

let descriptor (s : spec) = get s.id

let canonical name =
  match find name with Some d -> Ok d.id | None -> Error (unknown name)

let spec ?buffer ?(help_free = false) ?(collect_merge = false) ?(scan_filter = false) ?free_chunk
    ?shards ?delay ?patience ?batch name =
  let d = get name in
  (* Drop tuning the scheme does not use: CLIs pass their flag defaults
     for every scheme, and an irrelevant parameter must not leak into
     labels or JSON (nor suggest it had an effect). *)
  let keep k v = if List.mem k d.tunables then v else None in
  {
    id = d.id;
    params =
      {
        buffer = keep "buffer" buffer;
        help_free = help_free && List.mem "help-free" d.tunables;
        collect_merge = collect_merge && List.mem "collect-merge" d.tunables;
        scan_filter = scan_filter && List.mem "scan-filter" d.tunables;
        free_chunk = keep "free-chunk" free_chunk;
        shards = keep "shards" shards;
        delay = keep "delay" delay;
        patience = keep "patience" patience;
        batch = keep "batch" batch;
      };
  }

let label (s : spec) = s.id

let params_assoc s =
  let p = s.params in
  List.filter_map
    (fun x -> x)
    [
      Option.map (fun v -> ("buffer", v)) p.buffer;
      (if p.help_free then Some ("help-free", 1) else None);
      (if p.collect_merge then Some ("collect-merge", 1) else None);
      (if p.scan_filter then Some ("scan-filter", 1) else None);
      Option.map (fun v -> ("free-chunk", v)) p.free_chunk;
      Option.map (fun v -> ("shards", v)) p.shards;
      Option.map (fun v -> ("delay", v)) p.delay;
      Option.map (fun v -> ("patience", v)) p.patience;
      Option.map (fun v -> ("batch", v)) p.batch;
    ]

let describe s =
  match params_assoc s with
  | [] -> s.id
  | kv ->
      s.id ^ " "
      ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kv)

let build env s = (descriptor s).build env s.params
