(** First-class registry of reclamation schemes.

    One descriptor per scheme — canonical id, CLI aliases, capability
    flags, chaos profile, and a constructor — registered in exactly one
    place.  Everything that dispatches on "which scheme is this"
    ({!Ts_harness.Workload}, the chaos oracle, [tsbench], [tscheck],
    [tstrace], the backend conformance tests) goes through this table, so
    adding a scheme is one entry here and zero hand-maintained matches
    elsewhere.  Capability flags replace the old per-call-site
    scheme-name matches: the crash guard reads {!caps.crash_tolerant},
    the stall-wedge guard reads {!caps.wedges_under_stall}, the chaos
    oracle reads {!descriptor.chaos}, and the recovery ladder counts the
    extras named in {!descriptor.recovery_extras}. *)

type caps = {
  crash_tolerant : bool;
      (** survives a mid-operation thread crash without wedging and with
          at most a bounded leak; [false] makes [Fault_crash] invalid *)
  wedges_under_stall : bool;
      (** an unreleased stall starves reclamation forever (quiescence
          waiters): chaos plans with such triggers need a watchdog *)
  protect_slots : bool;  (** dereferences require [protect ~slot] *)
  has_pipeline_knobs : bool;
      (** accepts the ThreadScan parallel-reclamation pipeline knobs *)
  neutralizes : bool;
      (** aborts victims' operations via signals; restricts the scheme
          to restartable (lock-free) data structures *)
  pins_frames : bool;
      (** a private reference held in a stack {!Ts_sim.Frame} pins the
          node by itself (TS-Scan / StackTrack frame scanning, or leaky):
          cross-operation holds are safe without protect slots or
          [op_begin] brackets.  Workloads that hold nodes across
          operations (the checker's churn pattern) dispatch on this. *)
  reclaims : bool;  (** actually frees memory (leaky does not) *)
}

(** How the scheme is expected to behave under the chaos harness.

    {ul
    {- [Self_healing] — crashes and unreleased stalls both recover: the
       degradation ladder (or neutralizing protocol) moves and
       outstanding memory returns to baseline.}
    {- [Crash_healing] — crashes recover (proxy work on behalf of the
       corpse), but a stalled reader legitimately pins memory until it
       resumes; only the no-wedge half is asserted for stalls.}
    {- [Quiescence_bound] — a crashed or parked thread starves
       reclamation forever: the run is expected to wedge (watchdog) and
       leak durably.}
    {- [Unchecked] — no recovery machinery to assert either way.}} *)
type chaos_profile = Self_healing | Crash_healing | Quiescence_bound | Unchecked

(** Per-scheme tuning accepted by {!build}.  Irrelevant fields are
    ignored by schemes that do not use them. *)
type params = {
  buffer : int option;  (** ThreadScan per-thread buffer (default 64) *)
  help_free : bool;  (** ThreadScan: peers help the free phase *)
  collect_merge : bool;  (** ThreadScan: sealed-run collect + k-way merge *)
  scan_filter : bool;  (** ThreadScan: Bloom-prefiltered TS-Scan *)
  free_chunk : int option;  (** ThreadScan: chunked helper-parallel free *)
  shards : int option;
      (** ThreadScan: reclamation shard count ([0] = auto, one per 8
          threads; [1] = legacy single master) *)
  delay : int option;  (** slow-epoch: straggler delay in steps *)
  patience : int option;  (** patient-epoch: bounded quiescence wait *)
  batch : int option;  (** epoch family / debra / hyaline batch *)
}

val default_params : params

(** A scheme selection: canonical id plus tuning.  This is what lives in
    [Workload.spec] and what the CLIs parse. *)
type spec = { id : string; params : params }

(** ThreadScan degradation-ladder budgets.  [None] in {!env} keeps the
    (deliberately generous) defaults; harnesses that inject faults pass
    budgets scaled to their horizon so the ladder fires within it. *)
type budgets = {
  ack_budget : int;
  suspect_phases : int;
  takeover_steps : int;
  overflow_after : int;
}

val fault_budgets : horizon:int -> budgets
(** The standard fault-scaled ladder budgets:
    [ack_budget = max 10_000 (horizon/20)], [suspect_phases = 2],
    [takeover_steps = max 20_000 (horizon/10)], [overflow_after = 32]. *)

(** Everything a constructor needs from the harness. *)
type env = {
  max_threads : int;
  hazard_slots : int;  (** per-thread protection slots (ds-dependent) *)
  epoch_batch : int;  (** default batch when [params.batch] is [None] *)
  budgets : budgets option;
}

type built = {
  smr : Ts_smr.Smr.t;
  ts : Threadscan.t option;
      (** the underlying ThreadScan instance, for harnesses that poke
          phase counters or inject protocol bugs; [None] otherwise *)
}

type descriptor = {
  id : string;  (** canonical, stable: what JSON and tables print *)
  aliases : string list;
  summary : string;
  caps : caps;
  chaos : chaos_profile;
  recovery_extras : string list;
      (** extras-counter names whose sum is the scheme's recovery
          ladder: movement past the pre-fault baseline = a takeover *)
  tunables : string list;
      (** which {!params} keys this scheme reads (by their
          {!params_assoc} name); {!spec} silently drops the rest, so a
          CLI can pass every flag's value for every scheme *)
  crash_leak_per_victim : params -> int;
      (** checker budget: nodes one crashed thread may strand forever *)
  pipelined : string option;
      (** id of this scheme's pipelined variant, if it has one (lets a
          legacy [--pipeline] flag upgrade without naming schemes) *)
  build : env -> params -> built;
}

val all : descriptor list
(** Every registered scheme, in display order. *)

val find : string -> descriptor option
(** Look up by canonical id or alias. *)

val get : string -> descriptor
(** Like {!find}.  @raise Invalid_argument on unknown names, listing
    the valid ones. *)

val descriptor : spec -> descriptor
(** The descriptor behind a spec.  @raise Invalid_argument likewise. *)

val canonical : string -> (string, string) result
(** Resolve a name or alias to the canonical id; the error carries a
    human-readable list of valid names (for CLI converters). *)

val names : unit -> string list
val names_doc : unit -> string
(** All ids (and, for [names_doc], their aliases) as one list / one
    comma-separated string for [--scheme] help text and error messages. *)

val spec :
  ?buffer:int ->
  ?help_free:bool ->
  ?collect_merge:bool ->
  ?scan_filter:bool ->
  ?free_chunk:int ->
  ?shards:int ->
  ?delay:int ->
  ?patience:int ->
  ?batch:int ->
  string ->
  spec
(** Smart constructor; resolves aliases.  @raise Invalid_argument on
    unknown names. *)

val label : spec -> string
(** The stable canonical id — the one name used in JSON, tables and CLI
    alike (no parameter suffixes; see {!params_assoc}). *)

val params_assoc : spec -> (string * int) list
(** The tuning parameters that are actually set, as a flat assoc for
    JSON emission ([help-free] encodes as [1]). *)

val describe : spec -> string
(** [label] plus any set parameters, for verbose human output. *)

val build : env -> spec -> built
(** Construct the scheme.  Must run inside the runtime (schemes allocate
    shared words).  @raise Invalid_argument on unknown ids. *)
