module Runtime = Ts_rt
module Frame = Ts_rt.Frame
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

(* Node layout: [key][value][next+mark][padding...] *)
let off_key = 0

let off_value = 1

let off_next = 2

let node_words ~padding = 3 + max padding 0

let next_cell p = Ptr.addr p + off_next

let key_of p = Runtime.read (Ptr.addr p + off_key)

(* Frame slots for the traversal's private references. *)
let fr_prev = 0

let fr_cur = 1

let fr_new = 2

let frame_slots = 3

exception Restart

(* Michael's find: positions the traversal at the first node with
   key >= [key], unlinking (and retiring) marked nodes on the way.
   Returns [(found, prev_cell, cur)]; [prev_cell] is the address of the
   pointer cell that leads to [cur].  On return the frame holds prev and
   cur, and the scheme's protection slots cover both. *)
let find ~(smr : Smr.t) ~head key fr =
  let rec attempt () =
    match
      Frame.set fr fr_prev Ptr.null;
      let prev_cell = ref head in
      let cur_slot = ref 1 in
      let cur = ref (Ptr.unmark (Runtime.read head)) in
      ignore (smr.protect ~slot:!cur_slot !cur);
      if Runtime.read !prev_cell <> !cur then raise Restart;
      Frame.set fr fr_cur !cur;
      let result = ref None in
      while !result = None do
        if Ptr.is_null !cur then result := Some (false, !prev_cell, Ptr.null)
        else begin
          let next_t = Runtime.read (next_cell !cur) in
          if Ptr.is_marked next_t then begin
            (* cur is logically deleted: unlink it here. *)
            let succ = Ptr.unmark next_t in
            if not (Runtime.cas !prev_cell !cur succ) then raise Restart;
            smr.retire !cur;
            ignore (smr.protect ~slot:!cur_slot succ);
            if Runtime.read !prev_cell <> succ then raise Restart;
            cur := succ;
            Frame.set fr fr_cur succ
          end
          else begin
            let ckey = key_of !cur in
            if ckey >= key then result := Some (ckey = key, !prev_cell, !cur)
            else begin
              (* hop: prev <- cur, cur <- successor (validated) *)
              Frame.set fr fr_prev !cur;
              prev_cell := next_cell !cur;
              let succ = Ptr.unmark next_t in
              cur_slot := 1 - !cur_slot;
              ignore (smr.protect ~slot:!cur_slot succ);
              if Runtime.read !prev_cell <> succ then raise Restart;
              cur := succ;
              Frame.set fr fr_cur succ
            end
          end
        end
      done;
      Option.get !result
    with
    | r -> r
    | exception Restart -> attempt ()
  in
  attempt ()

let insert_at ~(smr : Smr.t) ~padding ~head key value =
  Frame.with_frame frame_slots (fun fr ->
      let rec loop () =
        let found, prev_cell, cur = find ~smr ~head key fr in
        if found then false
        else begin
          let addr = Runtime.malloc (node_words ~padding) in
          (* the fresh node stays private until the publishing CAS: if a
             neutralization aborts this window the node must be freed, or
             it leaks — [Runtime.free] is a non-abortable op, so the
             cleanup itself always completes *)
          match
            Runtime.write (addr + off_key) key;
            Runtime.write (addr + off_value) value;
            Runtime.write (addr + off_next) cur;
            let node = Ptr.of_addr addr in
            Frame.set fr fr_new node;
            Runtime.cas prev_cell cur node
          with
          | true -> true
          | false ->
              (* never published: plain free, no reclamation protocol needed *)
              Runtime.free addr;
              loop ()
          | exception e ->
              Runtime.free addr;
              raise e
        end
      in
      loop ())

let insert_node_at ~(smr : Smr.t) ~padding ~head key value =
  Frame.with_frame frame_slots (fun fr ->
      let rec loop () =
        let found, prev_cell, cur = find ~smr ~head key fr in
        if found then (cur, false)
        else begin
          let addr = Runtime.malloc (node_words ~padding) in
          match
            Runtime.write (addr + off_key) key;
            Runtime.write (addr + off_value) value;
            Runtime.write (addr + off_next) cur;
            let node = Ptr.of_addr addr in
            Frame.set fr fr_new node;
            Runtime.cas prev_cell cur node
          with
          | true -> (Ptr.of_addr addr, true)
          | false ->
              Runtime.free addr;
              loop ()
          | exception e ->
              Runtime.free addr;
              raise e
        end
      in
      loop ())

let remove_at ~(smr : Smr.t) ?(retire_early = false) ~head key =
  Frame.with_frame frame_slots (fun fr ->
      let rec loop () =
        let found, prev_cell, cur = find ~smr ~head key fr in
        if not found then false
        else begin
          let next_t = Runtime.read (next_cell cur) in
          if Ptr.is_marked next_t then loop ()
          else if Runtime.cas (next_cell cur) next_t (Ptr.mark next_t) then begin
            if retire_early then begin
              (* seeded bug: hand the node to the scheme while the
                 predecessor still links to it — the retire-before-unlink
                 transition the lifecycle automaton must flag (and, once a
                 traversal unlinks the marked node and retires it again, a
                 double-retire). *)
              smr.retire cur; (* tslint: allow retire -- the seeded bug is the lifecycle sanitizer's positive fixture *)
              true
            end
            else begin
              (* logically deleted; now unlink (or let a traversal do it) *)
              if Runtime.cas prev_cell cur (Ptr.unmark next_t) then smr.retire cur
              else ignore (find ~smr ~head key fr);
              true
            end
          end
          else loop ()
        end
      in
      loop ())

let pop_min_at ~(smr : Smr.t) ~head =
  Frame.with_frame frame_slots (fun fr ->
      let rec loop () =
        let cur = Ptr.unmark (Runtime.read head) in
        ignore (smr.protect ~slot:1 cur);
        if Runtime.read head <> cur then loop ()
        else if Ptr.is_null cur then None
        else begin
          Frame.set fr fr_cur cur;
          let next_t = Runtime.read (next_cell cur) in
          if Ptr.is_marked next_t then begin
            (* someone else popped it but has not unlinked yet: help *)
            if Runtime.cas head cur (Ptr.unmark next_t) then smr.retire cur;
            loop ()
          end
          else begin
            let key = Runtime.read (Ptr.addr cur + off_key) in
            let value = Runtime.read (Ptr.addr cur + off_value) in
            if Runtime.cas (next_cell cur) next_t (Ptr.mark next_t) then begin
              if Runtime.cas head cur (Ptr.unmark next_t) then smr.retire cur
              else ignore (find ~smr ~head key fr);
              Some (key, value)
            end
            else loop ()
          end
        end
      in
      loop ())

let contains_at ~(smr : Smr.t) ~head key =
  Frame.with_frame frame_slots (fun fr ->
      let found, _, _ = find ~smr ~head key fr in
      found)

(* Quiescent-only helpers (tests, invariant checks): raw traversal. *)
let to_list_at ~head =
  let rec go p acc =
    if Ptr.is_null p then List.rev acc
    else
      let a = Ptr.addr p in
      let next_t = Runtime.read (a + off_next) in
      let acc =
        if Ptr.is_marked next_t then acc
        else (Runtime.read (a + off_key), Runtime.read (a + off_value)) :: acc
      in
      go (Ptr.unmark next_t) acc
  in
  go (Ptr.unmark (Runtime.read head)) []

let check_at ~head =
  let keys = List.map fst (to_list_at ~head) in
  let rec sorted = function
    | a :: (b :: _ as tl) -> if a >= b then failwith "list keys not strictly sorted" else sorted tl
    | _ -> ()
  in
  sorted keys

let create ~smr ?(padding = 0) ?(retire_early = false) () =
  let head = Runtime.alloc_region 1 in
  Runtime.write head Ptr.null;
  let wrap f = Set_intf.wrap smr f in
  {
    Set_intf.name = "michael-list";
    insert = (fun key value -> wrap (fun () -> insert_at ~smr ~padding ~head key value));
    remove = (fun key -> wrap (fun () -> remove_at ~smr ~retire_early ~head key));
    contains = (fun key -> wrap (fun () -> contains_at ~smr ~head key));
    to_list = (fun () -> to_list_at ~head);
    check = (fun () -> check_at ~head);
  }
