module Runtime = Ts_rt
module Frame = Ts_rt.Frame
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Spinlock = Ts_sync.Spinlock

let max_height_default = 14

let hazard_slots ~max_height = (2 * max_height) + 2

(* Node layout: [key][value][toplevel][marked][fullylinked][lock][next0..] *)
let off_key = 0

let off_value = 1

let off_top = 2

let off_marked = 3

let off_linked = 4

let off_lock = 5

let off_next = 6

let node_words ~padding top = off_next + top + max padding 0

let key_of p = Runtime.read (Ptr.addr p + off_key)

let next_cell p level = Ptr.addr p + off_next + level

let lock_of p = Spinlock.at (Ptr.addr p + off_lock)

let is_marked p = Runtime.read (Ptr.addr p + off_marked) <> 0

let is_linked p = Runtime.read (Ptr.addr p + off_linked) <> 0

exception Restart

type t = {
  smr : Smr.t;
  height : int;
  padding : int;
  head : int; (* ptr to the left sentinel *)
}

(* Frame layout during an operation:
   [0 .. h-1]        preds per level
   [h .. 2h-1]       succs per level
   [2h], [2h+1]      traversal pred/cur
   [2h+2]            remove's victim / add's new node *)
let fr_pred _t level = level

let fr_succ t level = t.height + level

let fr_hot_pred t = 2 * t.height

let fr_hot_cur t = (2 * t.height) + 1

let fr_extra t = (2 * t.height) + 2

let frame_slots t = (2 * t.height) + 3

let new_node t ~key ~value ~top =
  let addr = Runtime.malloc (node_words ~padding:t.padding top) in
  Runtime.write (addr + off_key) key;
  Runtime.write (addr + off_value) value;
  Runtime.write (addr + off_top) top;
  Runtime.write (addr + off_marked) 0;
  Runtime.write (addr + off_linked) 0;
  Runtime.write (addr + off_lock) 0;
  Ptr.of_addr addr

(* Per-level traversal protection: pred and succ of level l live in
   protection slots 2l and 2l+1 (hazard pointers need one per held ref). *)
let protect_pair t level ~pred ~succ =
  ignore (t.smr.Smr.protect ~slot:(2 * level) pred);
  ignore (t.smr.Smr.protect ~slot:((2 * level) + 1) succ)

(* Returns the highest level at which [key] was found (-1 if absent);
   fills preds/succs frame slots for every level. *)
let find t key fr =
  let rec attempt () =
    match
      let lfound = ref (-1) in
      let pred = ref t.head in
      Frame.set fr (fr_hot_pred t) !pred;
      for level = t.height - 1 downto 0 do
        let cur = ref (Runtime.read (next_cell !pred level)) in
        Frame.set fr (fr_hot_cur t) !cur;
        protect_pair t level ~pred:!pred ~succ:!cur;
        if Runtime.read (next_cell !pred level) <> !cur then raise Restart;
        while key_of !cur < key do
          Frame.set fr (fr_hot_pred t) !cur;
          pred := !cur;
          cur := Runtime.read (next_cell !pred level);
          Frame.set fr (fr_hot_cur t) !cur;
          protect_pair t level ~pred:!pred ~succ:!cur;
          if Runtime.read (next_cell !pred level) <> !cur then raise Restart
        done;
        if !lfound = -1 && key_of !cur = key then lfound := level;
        Frame.set fr (fr_pred t level) !pred;
        Frame.set fr (fr_succ t level) !cur
      done;
      !lfound
    with
    | r -> r
    | exception Restart -> attempt ()
  in
  attempt ()

let random_level t =
  let rec go l = if l < t.height && Runtime.rand_below 2 = 0 then go (l + 1) else l in
  go 1

(* Lock preds[0..top-1] bottom-up (once per distinct node), validating that
   every level still links pred -> succ with both unmarked.  Returns the
   locked (distinct, bottom-up) preds on success. *)
let lock_and_validate t fr ~top ~check_succ_unmarked =
  let locked = ref [] in
  let last = ref Ptr.null in
  let valid = ref true in
  let level = ref 0 in
  while !valid && !level < top do
    let pred = Frame.get fr (fr_pred t !level) in
    let succ = Frame.get fr (fr_succ t !level) in
    if pred <> !last then begin
      Spinlock.acquire (lock_of pred);
      locked := pred :: !locked;
      last := pred
    end;
    valid :=
      (not (is_marked pred))
      && Runtime.read (next_cell pred !level) = succ
      && ((not check_succ_unmarked) || not (is_marked succ));
    incr level
  done;
  if !valid then Ok !locked
  else begin
    List.iter (fun p -> Spinlock.release (lock_of p)) !locked;
    Error ()
  end

let unlock_all locked = List.iter (fun p -> Spinlock.release (lock_of p)) locked

let add t key value =
  Frame.with_frame (frame_slots t) (fun fr ->
      let top = random_level t in
      let rec loop () =
        let lfound = find t key fr in
        if lfound >= 0 then begin
          let victim = Frame.get fr (fr_succ t lfound) in
          if is_marked victim then begin
            (* being removed: wait for it to disappear *)
            Runtime.yield ();
            loop ()
          end
          else if not (is_linked victim) then begin
            (* an insert of the same key is mid-flight: wait *)
            Runtime.yield ();
            loop ()
          end
          else false
        end
        else
          match lock_and_validate t fr ~top ~check_succ_unmarked:true with
          | Error () -> loop ()
          | Ok locked ->
              let node = new_node t ~key ~value ~top in
              Frame.set fr (fr_extra t) node;
              for level = 0 to top - 1 do
                Runtime.write (next_cell node level) (Frame.get fr (fr_succ t level))
              done;
              for level = 0 to top - 1 do
                Runtime.write (next_cell (Frame.get fr (fr_pred t level)) level) node
              done;
              Runtime.write (Ptr.addr node + off_linked) 1;
              unlock_all locked;
              true
      in
      loop ())

let remove t key =
  Frame.with_frame (frame_slots t) (fun fr ->
      let victim_locked = ref false in
      let top = ref 0 in
      let rec loop () =
        let lfound = find t key fr in
        if not !victim_locked then begin
          if lfound < 0 then false
          else begin
            let victim = Frame.get fr (fr_succ t lfound) in
            Frame.set fr (fr_extra t) victim;
            if
              is_linked victim
              && Runtime.read (Ptr.addr victim + off_top) = lfound + 1
              && not (is_marked victim)
            then begin
              Spinlock.acquire (lock_of victim);
              if is_marked victim then begin
                Spinlock.release (lock_of victim);
                false
              end
              else begin
                Runtime.write (Ptr.addr victim + off_marked) 1;
                victim_locked := true;
                top := Runtime.read (Ptr.addr victim + off_top);
                unlink ()
              end
            end
            else false
          end
        end
        else unlink ()
      and unlink () =
        let victim = Frame.get fr (fr_extra t) in
        match lock_and_validate t fr ~top:!top ~check_succ_unmarked:false with
        | Error () -> loop ()
        | Ok locked ->
            (* validate that every pred still points at the victim *)
            let still_linked = ref true in
            for level = 0 to !top - 1 do
              if Frame.get fr (fr_succ t level) <> victim then still_linked := false
            done;
            if not !still_linked then begin
              unlock_all locked;
              loop ()
            end
            else begin
              for level = !top - 1 downto 0 do
                Runtime.write
                  (next_cell (Frame.get fr (fr_pred t level)) level)
                  (Runtime.read (next_cell victim level))
              done;
              Spinlock.release (lock_of victim);
              unlock_all locked;
              t.smr.Smr.retire victim;
              true
            end
      in
      loop ())

let contains t key =
  Frame.with_frame (frame_slots t) (fun fr ->
      let lfound = find t key fr in
      lfound >= 0
      &&
      let node = Frame.get fr (fr_succ t lfound) in
      is_linked node && not (is_marked node))

let to_list t () =
  let rec go p acc =
    if key_of p = max_int then List.rev acc
    else
      let a = Ptr.addr p in
      let acc =
        if Runtime.read (a + off_marked) = 0 && Runtime.read (a + off_linked) = 1 then
          (Runtime.read (a + off_key), Runtime.read (a + off_value)) :: acc
        else acc
      in
      go (Runtime.read (a + off_next)) acc
  in
  go (Runtime.read (next_cell t.head 0)) []

let check t () =
  (* level-0 strictly sorted *)
  let keys = List.map fst (to_list t ()) in
  let rec sorted = function
    | a :: (b :: _ as tl) ->
        if a >= b then failwith "skiplist keys not strictly sorted" else sorted tl
    | _ -> ()
  in
  sorted keys;
  (* every higher level must be a subsequence of level 0 *)
  for level = 1 to t.height - 1 do
    let rec walk p =
      if key_of p <> max_int then begin
        let a = Ptr.addr p in
        if Runtime.read (a + off_top) <= level then failwith "node on level above its height";
        if Runtime.read (a + off_marked) = 0 && not (List.mem (Runtime.read (a + off_key)) keys)
        then failwith "node on upper level missing from level 0";
        walk (Runtime.read (a + off_next + level))
      end
    in
    walk (Runtime.read (next_cell t.head level))
  done

let create ~smr ?(max_height = max_height_default) ?(padding = 0) () =
  if max_height < 1 then invalid_arg "Skiplist.create";
  let t = { smr; height = max_height; padding; head = Ptr.null } in
  (* sentinels: head(min_int) -> tail(max_int) at every level *)
  let tail = new_node { t with head = Ptr.null } ~key:max_int ~value:0 ~top:max_height in
  let head = new_node { t with head = Ptr.null } ~key:min_int ~value:0 ~top:max_height in
  for level = 0 to max_height - 1 do
    Runtime.write (next_cell head level) tail;
    Runtime.write (next_cell tail level) Ptr.null
  done;
  Runtime.write (Ptr.addr head + off_linked) 1;
  Runtime.write (Ptr.addr tail + off_linked) 1;
  let t = { t with head } in
  let wrap f = Set_intf.wrap smr f in
  {
    Set_intf.name = "skiplist";
    insert = (fun key value -> wrap (fun () -> add t key value));
    remove = (fun key -> wrap (fun () -> remove t key));
    contains = (fun key -> wrap (fun () -> contains t key));
    to_list = (fun () -> to_list t ());
    check = (fun () -> check t ());
  }
