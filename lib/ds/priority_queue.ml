module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

type t = { smr : Smr.t; padding : int; head : int }

let create ~smr ?(padding = 0) () =
  let head = Runtime.alloc_region 1 in
  Runtime.write head Ptr.null;
  { smr; padding; head }

let wrap t f = Set_intf.wrap t.smr f

let insert t ~priority ~value =
  wrap t (fun () ->
      Michael_list.insert_at ~smr:t.smr ~padding:t.padding ~head:t.head priority value)

let pop_min t = wrap t (fun () -> Michael_list.pop_min_at ~smr:t.smr ~head:t.head)

let peek_min t =
  match Michael_list.to_list_at ~head:t.head with [] -> None | kv :: _ -> Some kv

let is_empty t = Michael_list.to_list_at ~head:t.head = []

let size t = List.length (Michael_list.to_list_at ~head:t.head)
