module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Fibonacci multiplicative hashing; [lsr] keeps it well-mixed and
   non-negative even when the multiplication wraps. *)
let bucket_of ~mask key = (key * 0x2545F4914F6CDD1D) lsr 20 land mask

let create ~smr ?(padding = 0) ~buckets () =
  if not (is_power_of_two buckets) then invalid_arg "Hash_table.create: buckets not a power of 2";
  let mask = buckets - 1 in
  let base = Runtime.alloc_region buckets in
  for i = 0 to buckets - 1 do
    Runtime.write (base + i) Ptr.null
  done;
  let head key = base + bucket_of ~mask key in
  let wrap f = Set_intf.wrap smr f in
  {
    Set_intf.name = "hash-table";
    insert = (fun key value -> wrap (fun () -> Michael_list.insert_at ~smr ~padding ~head:(head key) key value));
    remove = (fun key -> wrap (fun () -> Michael_list.remove_at ~smr ~head:(head key) key));
    contains = (fun key -> wrap (fun () -> Michael_list.contains_at ~smr ~head:(head key) key));
    to_list =
      (fun () ->
        let all = ref [] in
        for i = buckets - 1 downto 0 do
          all := Michael_list.to_list_at ~head:(base + i) @ !all
        done;
        List.sort compare !all);
    check =
      (fun () ->
        for i = 0 to buckets - 1 do
          Michael_list.check_at ~head:(base + i);
          (* every key must live in its own bucket *)
          List.iter
            (fun (k, _) ->
              if bucket_of ~mask k <> i then failwith "hash table: key in wrong bucket")
            (Michael_list.to_list_at ~head:(base + i))
        done);
  }
