module Runtime = Ts_rt
module Frame = Ts_rt.Frame
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Spinlock = Ts_sync.Spinlock

(* Node layout: [key][value][next][marked][lock][padding...] *)
let off_key = 0

let off_value = 1

let off_next = 2

let off_marked = 3

let off_lock = 4

let node_words ~padding = 5 + max padding 0

let key_of p = Runtime.read (Ptr.addr p + off_key)

let next_of p = Runtime.read (Ptr.addr p + off_next)

let is_marked p = Runtime.read (Ptr.addr p + off_marked) <> 0

let lock_of p = Spinlock.at (Ptr.addr p + off_lock)

let fr_pred = 0

let fr_curr = 1

let frame_slots = 2

type t = {
  smr : Smr.t;
  padding : int;
  head : int; (* region cell holding the ptr to the left sentinel *)
  elide_locks : bool; (* seeded bug: skip per-node locks entirely *)
}

let lock t l = if not t.elide_locks then Spinlock.acquire l

let unlock t l = if not t.elide_locks then Spinlock.release l

let new_node t ~key ~value ~next =
  let addr = Runtime.malloc (node_words ~padding:t.padding) in
  Runtime.write (addr + off_key) key;
  Runtime.write (addr + off_value) value;
  Runtime.write (addr + off_next) next;
  Runtime.write (addr + off_marked) 0;
  Runtime.write (addr + off_lock) 0;
  Ptr.of_addr addr

exception Restart

(* Lock-free traversal: every hop is a plain read plus the scheme's
   [protect] (only hazard pointers make that costly).  After protecting the
   successor we re-check that the node we read it from is still unmarked:
   an unmarked node is still linked, so its successor was reachable — the
   check that keeps the "invisible reader" from hopping out of a node whose
   memory a reclamation phase is about to release (a link from one retired
   node to another is exactly what Assumption 1.1 forbids).  Leaves
   pred/curr in the frame with curr.key >= key. *)
let walk t key fr =
  let rec attempt () =
    match
      let pred = ref (Runtime.read t.head) in
      ignore (t.smr.Smr.protect ~slot:0 !pred);
      Frame.set fr fr_pred !pred;
      let curr = ref (next_of !pred) in
      ignore (t.smr.Smr.protect ~slot:1 !curr);
      Frame.set fr fr_curr !curr;
      let slot = ref 1 in
      while key_of !curr < key do
        let succ = next_of !curr in
        slot := 1 - !slot;
        ignore (t.smr.Smr.protect ~slot:!slot succ);
        if is_marked !curr then raise Restart;
        pred := !curr;
        Frame.set fr fr_pred !pred;
        curr := succ;
        Frame.set fr fr_curr !curr
      done;
      (!pred, !curr)
    with
    | r -> r
    | exception Restart -> attempt ()
  in
  attempt ()

let validate pred curr = (not (is_marked pred)) && (not (is_marked curr)) && next_of pred = curr

let insert t key value =
  Frame.with_frame frame_slots (fun fr ->
      let rec loop () =
        let pred, curr = walk t key fr in
        lock t (lock_of pred);
        lock t (lock_of curr);
        let ok = validate pred curr in
        let result =
          if not ok then None
          else if key_of curr = key then Some false
          else begin
            let node = new_node t ~key ~value ~next:curr in
            Runtime.write (Ptr.addr pred + off_next) node;
            Some true
          end
        in
        unlock t (lock_of curr);
        unlock t (lock_of pred);
        match result with Some r -> r | None -> loop ()
      in
      loop ())

let remove t key =
  Frame.with_frame frame_slots (fun fr ->
      let rec loop () =
        let pred, curr = walk t key fr in
        lock t (lock_of pred);
        lock t (lock_of curr);
        let ok = validate pred curr in
        let result =
          if not ok then None
          else if key_of curr <> key then Some false
          else begin
            (* logical delete under the lock, then unlink *)
            Runtime.write (Ptr.addr curr + off_marked) 1;
            Runtime.write (Ptr.addr pred + off_next) (next_of curr);
            Some true
          end
        in
        unlock t (lock_of curr);
        unlock t (lock_of pred);
        match result with
        | Some true ->
            t.smr.Smr.retire curr;
            true
        | Some false -> false
        | None -> loop ()
      in
      loop ())

let contains t key =
  Frame.with_frame frame_slots (fun fr ->
      let _, curr = walk t key fr in
      key_of curr = key && not (is_marked curr))

let to_list t () =
  let rec go p acc =
    if key_of p = max_int then List.rev acc
    else
      let a = Ptr.addr p in
      let acc =
        if Runtime.read (a + off_marked) = 0 then
          (Runtime.read (a + off_key), Runtime.read (a + off_value)) :: acc
        else acc
      in
      go (Runtime.read (a + off_next)) acc
  in
  go (next_of (Runtime.read t.head)) []

let check t () =
  let keys = List.map fst (to_list t ()) in
  let rec sorted = function
    | a :: (b :: _ as tl) ->
        if a >= b then failwith "lazy list keys not strictly sorted" else sorted tl
    | _ -> ()
  in
  sorted keys

let create ~smr ?(padding = 0) ?(elide_locks = false) () =
  let head_cell = Runtime.alloc_region 1 in
  let t = { smr; padding; head = head_cell; elide_locks } in
  let tail = new_node t ~key:max_int ~value:0 ~next:Ptr.null in
  let head = new_node t ~key:min_int ~value:0 ~next:tail in
  Runtime.write head_cell head;
  let wrap f = Set_intf.wrap smr f in
  {
    Set_intf.name = "lazy-list";
    insert = (fun key value -> wrap (fun () -> insert t key value));
    remove = (fun key -> wrap (fun () -> remove t key));
    contains = (fun key -> wrap (fun () -> contains t key));
    to_list = (fun () -> to_list t ());
    check = (fun () -> check t ());
  }
