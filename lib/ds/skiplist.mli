(** Lock-based optimistic skip list (Herlihy, Lev, Luchangco, Shavit,
    SIROCCO 2007) — the paper's third benchmark structure.

    Mutations lock the predecessors at every level and validate
    optimistically; traversals (and [contains]) take no locks.  A removed
    node is marked under its lock, unlinked from every level, and then
    handed to the reclamation scheme.  Because the structure is blocking,
    it exercises the paper's claim that ThreadScan's progress is
    independent of the data structure's progress guarantees (Lemma 3).

    Under hazard pointers the traversal protects the predecessor/successor
    pair of every level in its own pair of slots, so create the {!
    Ts_reclaim.Hazard} scheme with [slots >= 2 * max_height + 2]. *)

val max_height_default : int

val hazard_slots : max_height:int -> int
(** Protection slots the traversal uses; pass to [Hazard.create]. *)

val create :
  smr:Ts_smr.Smr.t -> ?max_height:int -> ?padding:int -> unit -> Set_intf.t
(** [max_height] defaults to {!max_height_default} (node heights are
    geometric with p = 1/2, capped).  [padding] adds words per node: the
    paper's skip-list nodes are 104 bytes unpadded. *)
