type t = {
  name : string;
  insert : int -> int -> bool;
  remove : int -> bool;
  contains : int -> bool;
  to_list : unit -> (int * int) list;
  check : unit -> unit;
}

let size t = List.length (t.to_list ())
