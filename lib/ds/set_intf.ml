type t = {
  name : string;
  insert : int -> int -> bool;
  remove : int -> bool;
  contains : int -> bool;
  to_list : unit -> (int * int) list;
  check : unit -> unit;
}

let size t = List.length (t.to_list ())

(* The one operation bracket every data structure uses.  On
   [Smr.Neutralized] — a DEBRA+-style handler aborted the operation after
   unpinning the thread — the op restarts from [op_begin]; [op_end] is
   NOT called for the aborted attempt (the handler already announced
   quiescence, and the scheme cancels any still-pending abort at the top
   of the completed attempt's [op_end]). *)
let wrap (smr : Ts_smr.Smr.t) f =
  let rec go () =
    smr.Ts_smr.Smr.op_begin ();
    match f () with
    | v ->
        smr.Ts_smr.Smr.op_end ();
        v
    | exception Ts_smr.Smr.Neutralized -> go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Operation recording, for the linearizability oracle                  *)
(* ------------------------------------------------------------------ *)

type op_kind = Op_insert | Op_remove | Op_contains

type event = {
  tid : int;
  kind : op_kind;
  key : int;
  result : bool;
  t0 : int; (* scheduler step at invocation *)
  t1 : int; (* scheduler step at response *)
}

let instrument ~record t =
  let module Runtime = Ts_rt in
  let timed kind key f =
    let tid = Runtime.self () in
    let t0 = Runtime.steps_now () in
    let result = f () in
    let t1 = Runtime.steps_now () in
    record { tid; kind; key; result; t0; t1 };
    result
  in
  {
    t with
    insert = (fun key value -> timed Op_insert key (fun () -> t.insert key value));
    remove = (fun key -> timed Op_remove key (fun () -> t.remove key));
    contains = (fun key -> timed Op_contains key (fun () -> t.contains key));
  }
