module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

let key_bits = 20

let max_key = (1 lsl key_bits) - 1

(* Bit-reverse within [key_bits] bits. *)
let reverse x =
  let r = ref 0 in
  for i = 0 to key_bits - 1 do
    if x land (1 lsl i) <> 0 then r := !r lor (1 lsl (key_bits - 1 - i))
  done;
  !r

(* Split-order keys: regular nodes set the LSB (after the reversed bits) so
   each falls just after its bucket's dummy in list order. *)
let so_regular key = (reverse key lsl 1) lor 1

let so_dummy bucket = reverse bucket lsl 1

let key_of_so so = reverse (so lsr 1)

let is_dummy_so so = so land 1 = 0

(* Parent bucket: clear the most significant set bit. *)
let parent b =
  let rec msb i = if 1 lsl (i + 1) > b then i else msb (i + 1) in
  if b = 0 then 0 else b land lnot (1 lsl msb 0)

type t = {
  smr : Smr.t;
  padding : int;
  buckets : int; (* region: max_buckets words, each a dummy node ptr or 0 *)
  max_buckets : int;
  size_addr : int; (* current bucket count *)
  count_addr : int; (* element count *)
  load_factor : int;
  head : int; (* head cell of the underlying split-ordered list *)
}

(* The suffix of the list starting right after a dummy node behaves as a
   list whose head cell is the dummy's next field. *)
let head_after_dummy dummy = Ptr.addr dummy + 2 (* Michael_list.off_next *)

(* Find (installing if needed) bucket [b]'s dummy node. *)
let rec bucket_dummy t b =
  let cell = t.buckets + b in
  let d = Runtime.read cell in
  if not (Ptr.is_null d) then d
  else begin
    let start = if b = 0 then t.head else head_after_dummy (bucket_dummy t (parent b)) in
    let dummy, _inserted =
      Michael_list.insert_node_at ~smr:t.smr ~padding:0 ~head:start (so_dummy b) 0
    in
    (* several threads may race to install; they all found/created the same
       node because dummy keys are unique *)
    ignore (Runtime.cas cell 0 dummy);
    Runtime.read cell
  end

let current_size t = Runtime.read t.size_addr

let bucket_of t key =
  let b = key land (current_size t - 1) in
  bucket_dummy t b

let maybe_grow t =
  let size = current_size t in
  if size < t.max_buckets && Runtime.read t.count_addr > t.load_factor * size then
    ignore (Runtime.cas t.size_addr size (2 * size))

let check_key key =
  if key < 0 || key > max_key then invalid_arg "Split_hash: key out of range"

let insert t key value =
  check_key key;
  let dummy = bucket_of t key in
  let ok =
    Michael_list.insert_at ~smr:t.smr ~padding:t.padding ~head:(head_after_dummy dummy)
      (so_regular key) value
  in
  if ok then begin
    ignore (Runtime.faa t.count_addr 1);
    maybe_grow t
  end;
  ok

let remove t key =
  check_key key;
  let dummy = bucket_of t key in
  let ok = Michael_list.remove_at ~smr:t.smr ~head:(head_after_dummy dummy) (so_regular key) in
  if ok then ignore (Runtime.faa t.count_addr (-1));
  ok

let contains t key =
  check_key key;
  let dummy = bucket_of t key in
  Michael_list.contains_at ~smr:t.smr ~head:(head_after_dummy dummy) (so_regular key)

let to_list t () =
  Michael_list.to_list_at ~head:t.head
  |> List.filter_map (fun (so, v) -> if is_dummy_so so then None else Some (key_of_so so, v))
  |> List.sort compare

let check t () =
  (* the underlying list must be sorted by split-order key *)
  Michael_list.check_at ~head:t.head;
  (* every installed bucket's dummy must still be reachable in the list *)
  let raw = Michael_list.to_list_at ~head:t.head in
  let size = current_size t in
  for b = 0 to size - 1 do
    let d = Runtime.read (t.buckets + b) in
    if not (Ptr.is_null d) then
      if not (List.mem_assoc (so_dummy b) raw) then
        failwith "split hash: installed dummy missing from the list"
  done

let create ~smr ?(padding = 0) ?(max_buckets = 4096) ?(load_factor = 4) () =
  if max_buckets < 2 || max_buckets land (max_buckets - 1) <> 0 then
    invalid_arg "Split_hash.create: max_buckets must be a power of two";
  let head = Runtime.alloc_region 1 in
  Runtime.write head Ptr.null;
  let buckets = Runtime.alloc_region max_buckets in
  let size_addr = Runtime.alloc_region 1 in
  let count_addr = Runtime.alloc_region 1 in
  Runtime.write size_addr 2;
  Runtime.write count_addr 0;
  let t = { smr; padding; buckets; max_buckets; size_addr; count_addr; load_factor; head } in
  (* bucket 0's dummy anchors the whole structure *)
  ignore (bucket_dummy t 0);
  t

let bucket_count = current_size

let size t = Runtime.read t.count_addr

let set t =
  let wrap f = Set_intf.wrap t.smr f in
  {
    Set_intf.name = "split-hash";
    insert = (fun key value -> wrap (fun () -> insert t key value));
    remove = (fun key -> wrap (fun () -> remove t key));
    contains = (fun key -> wrap (fun () -> contains t key));
    to_list = (fun () -> to_list t ());
    check = (fun () -> check t ());
  }
