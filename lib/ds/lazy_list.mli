(** Lazy list (Heller, Herlihy, Luchangco, Moir, Scherer, Shavit, OPODIS
    2005) — the paper's introductory example (§1): a lock-based sorted list
    whose traversals are completely unsynchronized.

    Mutations lock the two adjacent nodes and validate optimistically;
    [contains] just walks [next] pointers, which is exactly the "invisible
    reader" pattern whose memory reclamation the paper solves.  A removed
    node is marked under its lock, unlinked, and handed to the reclamation
    scheme. *)

val create : smr:Ts_smr.Smr.t -> ?padding:int -> ?elide_locks:bool -> unit -> Set_intf.t
(** [elide_locks] (default false) seeds a deliberate bug for the
    analyzer's test suite: insert/remove skip the per-node locks, so two
    mutators can write the same [next]/[marked] words with no
    happens-before edge — the unordered write-write pair the
    {!Ts_analyze} race detector must report. *)
