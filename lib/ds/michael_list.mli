(** Lock-free sorted linked list (Harris 2001, in Michael's 2002
    hazard-pointer-compatible formulation) — the paper's first benchmark
    structure and the bucket list of its hash table.

    Nodes are [key; value; next(+mark bit); padding…] blocks in unmanaged
    memory.  Logical deletion sets the mark bit in [next]; traversals unlink
    marked nodes and [retire] them through the reclamation scheme.  Every
    hop protects the new node ([Smr.protect], a fence under hazard
    pointers, free elsewhere) and re-validates [prev.next == cur] before
    trusting it — the discipline that makes the traversal safe under every
    scheme in the repository, ThreadScan included.

    The list is also usable as a bucket: all operations exist in a variant
    taking an explicit head-cell address. *)

val node_words : padding:int -> int
(** Size of a node block given extra [padding] words (the paper pads list
    nodes to 172 bytes ≈ 19 extra words to fight false sharing). *)

val create : smr:Ts_smr.Smr.t -> ?padding:int -> ?retire_early:bool -> unit -> Set_intf.t
(** A standalone list with its own head cell.  [padding] defaults to 0.
    [retire_early] (default false) seeds a deliberate bug for the
    analyzer's test suite: [remove] retires the node right after marking
    it, while the predecessor still links to it — the
    retire-before-unlink transition the {!Ts_analyze} lifecycle automaton
    must flag. *)

(** {1 Bucket interface} — operations on a list hanging off an arbitrary
    head cell (used by {!Hash_table}).  These do NOT bracket themselves
    with [op_begin]/[op_end]; the caller does. *)

val insert_at : smr:Ts_smr.Smr.t -> padding:int -> head:int -> int -> int -> bool

val insert_node_at :
  smr:Ts_smr.Smr.t -> padding:int -> head:int -> int -> int -> int * bool
(** Like {!insert_at} but returns [(node, inserted)] where [node] is the
    pointer to the (new or already-present) node with that key.  Used by
    {!Split_hash} to install bucket dummy nodes, which are never retired —
    holding the returned pointer is only safe for such immortal nodes. *)

val remove_at : smr:Ts_smr.Smr.t -> ?retire_early:bool -> head:int -> int -> bool

val contains_at : smr:Ts_smr.Smr.t -> head:int -> int -> bool

val pop_min_at : smr:Ts_smr.Smr.t -> head:int -> (int * int) option
(** Atomically removes and returns the smallest-keyed node — the
    Lotan-Shavit deleteMin pattern ({!Priority_queue} builds on it).
    [None] when the list is empty. *)

val to_list_at : head:int -> (int * int) list

val check_at : head:int -> unit
