(** Split-ordered lists: a lock-free *extensible* hash table
    (Shalev & Shavit, J.ACM 2006) — cited by the paper's introduction as a
    flagship unsynchronized-traversal structure.

    All elements live in one {!Michael_list} sorted by *split-order* key
    (the bit-reversed hash); each bucket is an immortal "dummy" node
    spliced into that list, so doubling the table is O(1): new buckets
    lazily insert their dummy between existing ones, and no element ever
    moves.  Deleted elements are retired through the reclamation scheme;
    dummy nodes are never reclaimed.

    Keys must be in [\[0, 2^key_bits)] with [key_bits = 20]. *)

val key_bits : int

val max_key : int

type t

val create : smr:Ts_smr.Smr.t -> ?padding:int -> ?max_buckets:int -> ?load_factor:int -> unit -> t
(** [max_buckets] (default 4096, power of two) bounds the bucket array;
    [load_factor] (default 4) is the elements-per-bucket threshold that
    triggers doubling. *)

val set : t -> Set_intf.t
(** The standard set interface (insert/remove/contains/to_list/check). *)

val bucket_count : t -> int
(** Current number of (logical) buckets — grows as elements arrive. *)

val size : t -> int
(** Current element count (maintained, O(1), may be momentarily stale). *)
