(** Common interface of the concurrent integer-set data structures.

    All operations run inside the simulator, bracket themselves with the
    reclamation scheme's [op_begin]/[op_end], keep their private node
    references in shadow-stack frames, and hand unlinked nodes to the
    scheme's [retire] — i.e. they are exactly the kind of client code the
    paper's library serves. *)

type t = {
  name : string;
  insert : int -> int -> bool;
      (** [insert key value] — [false] when the key was already present. *)
  remove : int -> bool;  (** [false] when the key was absent. *)
  contains : int -> bool;
  to_list : unit -> (int * int) list;
      (** Sorted (key, value) snapshot — quiescent use only (tests). *)
  check : unit -> unit;
      (** Structural invariant check — quiescent use only; raises
          [Failure] on violation. *)
}

val size : t -> int
(** Quiescent size via [to_list]. *)

val wrap : Ts_smr.Smr.t -> (unit -> 'a) -> 'a
(** [wrap smr f] brackets one data-structure operation with the scheme's
    [op_begin]/[op_end].  If [f] is aborted by a neutralizing signal
    handler ({!Ts_smr.Smr.Neutralized}), the operation restarts from
    [op_begin] — without calling [op_end] for the aborted attempt, whose
    thread the handler already unpinned. *)

(** {1 Operation recording (linearizability oracle)} *)

type op_kind = Op_insert | Op_remove | Op_contains

type event = {
  tid : int;
  kind : op_kind;
  key : int;
  result : bool;
  t0 : int;  (** scheduler step at invocation *)
  t1 : int;  (** scheduler step at response *)
}
(** One completed operation.  [t0]/[t1] are global scheduler step counts
    ({!Ts_rt.steps_now}); op A happens-before op B iff
    [A.t1 < B.t0]. *)

val instrument : record:(event -> unit) -> t -> t
(** Wrap a set so every operation reports an {!event} to [record] (called
    outside the timed window, from the operating fiber). *)
