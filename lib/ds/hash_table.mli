(** Lock-free hash table: a fixed array of bucket head cells, each heading a
    {!Michael_list} — the paper's second benchmark structure (Synchrobench's
    table with its bucket list replaced by the Michael/Harris list). *)

val create : smr:Ts_smr.Smr.t -> ?padding:int -> buckets:int -> unit -> Set_intf.t
(** [buckets] must be a power of two. *)
