(** Lock-free priority queue over the Michael list (Lotan-Shavit style,
    list-based): [insert] places an element by priority, [pop_min] removes
    the minimum.  One of the unsynchronized-traversal structures the
    paper's introduction motivates — and a reclamation stress test, since
    every [pop_min] retires a node.

    Priorities must be unique (it is a key-ordered set underneath); callers
    with duplicate priorities can disambiguate in the low bits. *)

type t

val create : smr:Ts_smr.Smr.t -> ?padding:int -> unit -> t

val insert : t -> priority:int -> value:int -> bool
(** [false] when the priority is already enqueued. *)

val pop_min : t -> (int * int) option
(** Removes and returns [(priority, value)] of the minimum, or [None]. *)

val peek_min : t -> (int * int) option
(** Quiescent-only inspection. *)

val is_empty : t -> bool
(** Quiescent-only. *)

val size : t -> int
(** Quiescent-only. *)
