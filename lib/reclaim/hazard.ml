module Smr = Ts_smr.Smr
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Vec = Ts_util.Vec
module Isort = Ts_util.Isort

type state = {
  slots : int;
  max_threads : int;
  hp_base : int; (* max_threads * slots shared words *)
  rlists : Vec.t array;
  orphans : Vec.t;
  threshold : int;
  mutable scans : int;
}

let slot_addr st tid slot = st.hp_base + (tid * st.slots) + slot

(* Read every hazard slot (priced shared reads), return them sorted for
   binary search.  The sort itself is private work, charged as cycles. *)
let snapshot_hazards st =
  let n = st.max_threads * st.slots in
  let hz = Array.make n 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let v = Runtime.read (st.hp_base + i) in
    if v <> 0 then begin
      hz.(!count) <- v;
      incr count
    end
  done;
  Isort.sort_prefix hz !count;
  Runtime.advance (!count * 8);
  (hz, !count)

let scan st (c : Smr.counters) =
  Smr.add_cleanups c 1;
  st.scans <- st.scans + 1;
  let hz, nhz = snapshot_hazards st in
  let sweep lst =
    let keep = Vec.create () in
    Vec.iter
      (fun p ->
        Runtime.advance 8 (* binary search over the private snapshot *);
        if Isort.binary_search hz nhz p >= 0 then Vec.push keep p
        else begin
          Runtime.free (Ptr.addr p);
          Smr.add_freed c 1
        end)
      lst;
    keep
  in
  let tid = Runtime.self () in
  st.rlists.(tid) <- sweep st.rlists.(tid)

let create ?(slots = 3) ?(threshold_extra = 64) ~max_threads () =
  let hp_base = Runtime.alloc_region (max_threads * slots) in
  let st =
    {
      slots;
      max_threads;
      hp_base;
      rlists = Array.init max_threads (fun _ -> Vec.create ());
      orphans = Vec.create ();
      threshold = (max_threads * slots) + threshold_extra;
      scans = 0;
    }
  in
  let protect ~slot p =
    Runtime.write (slot_addr st (Runtime.self ()) slot) (Ptr.mask p);
    Runtime.fence ();
    p
  in
  let release ~slot = Runtime.write (slot_addr st (Runtime.self ()) slot) 0 in
  let clear_all () =
    let tid = Runtime.self () in
    for s = 0 to slots - 1 do
      Runtime.write (slot_addr st tid s) 0
    done
  in
  let retire (c : Smr.counters) p =
    Smr.add_retired c 1;
    let tid = Runtime.self () in
    Vec.push st.rlists.(tid) (Ptr.mask p);
    if Vec.length st.rlists.(tid) >= st.threshold then scan st c
  in
  let thread_exit () =
    clear_all ();
    let tid = Runtime.self () in
    (* [orphans] is shared OCaml-heap state: exits must not race pushes. *)
    Runtime.critical (fun () ->
        Vec.iter (Vec.push st.orphans) st.rlists.(tid);
        Vec.clear st.rlists.(tid))
  in
  let smr = ref None in
  let flush () =
    let c = (Option.get !smr : Smr.t).Smr.counters in
    let hz, nhz = snapshot_hazards st in
    let sweep lst =
      let keep = Vec.create () in
      Vec.iter
        (fun p ->
          if Isort.binary_search hz nhz p >= 0 then Vec.push keep p
          else begin
            Runtime.free (Ptr.addr p);
            Smr.add_freed c 1
          end)
        lst;
      keep
    in
    Array.iteri (fun i lst -> st.rlists.(i) <- sweep lst) st.rlists;
    let remaining = sweep st.orphans in
    Vec.clear st.orphans;
    Vec.iter (Vec.push st.orphans) remaining
  in
  let t =
    Smr.make ~name:"hazard-pointers" ~op_end:clear_all ~thread_exit ~protect ~release ~flush
      ~retired_access:Smr.Protected_slots
      ~extras:(fun () -> [ ("scans", st.scans) ])
      ~retire ()
  in
  smr := Some t;
  t
