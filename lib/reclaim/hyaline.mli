(** Hyaline — snapshot-free reclamation by reference-counted retirement
    batches (Nikolaev & Ravindran, SPAA'19).

    Retired nodes are grouped into batches on one global list whose head
    is packed with a count of in-operation threads.  Entering an
    operation is a single fetch-and-add that also records the list head
    (the thread's handle); a batch is published with its reference count
    set to the number of threads active at the insertion instant; leaving
    walks the list from the current head down to the handle, dropping one
    reference per batch and freeing any batch whose count reaches zero.
    There are no epochs and no per-thread snapshots — reclamation is as
    automatic as ThreadScan's but pays two fetch-and-adds per operation
    instead of a signal storm per batch.

    Crashed threads are handled by a proxy leave: the first insertion (or
    the final [flush]) after the crash performs the corpse's pending
    decrement walk using its recorded handle, so its reference cannot pin
    batches forever.  A stalled thread, by contrast, legitimately pins
    every batch published while it is inside an operation — memory grows
    until it resumes (the bound the paper states), though no peer ever
    blocks on it.

    Extras: ["batches"], ["immediate-frees"], ["corpse-leaves"],
    ["unreclaimed-peak"]. *)

val create : ?batch:int -> max_threads:int -> unit -> Ts_smr.Smr.t
(** [batch] (default 64) is the per-thread retire count that triggers
    publishing a batch.  Must run inside the runtime (allocates the
    packed head word). *)
