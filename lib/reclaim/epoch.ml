module Smr = Ts_smr.Smr
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Vec = Ts_util.Vec
module Backoff = Ts_sync.Backoff

type state = {
  max_threads : int;
  counters_base : int; (* one shared word per thread *)
  mirror : int array; (* thread-local copy of the own counter *)
  limbo : Vec.t array;
  pending : Vec.t array; (* batch waiting for the next op boundary *)
  orphans : Vec.t;
  batch : int;
  errant : (int * int) option;
  patience : int option; (* bounded quiescence wait; None = wait forever *)
  mutable waits : int;
  mutable stall_cycles : int;
  mutable gaveups : int; (* cleanups abandoned because patience ran out *)
  mutable unreclaimed_peak : int; (* max limbo+pending ever seen at a boundary *)
}

let counter_addr st tid = st.counters_base + tid

(* Wait until every thread that was mid-operation at snapshot time has
   passed an operation boundary.  With [patience] set, give up after that
   many cycles and return [false]: the batch is NOT safe to free — epoch
   has no per-pointer information, so a thread that never quiesces (crashed
   or stalled mid-operation) wedges reclamation; all we can bound is the
   wait, not the limbo growth. *)
let wait_for_quiescence st self =
  let ok = ref true in
  let snap = Array.make st.max_threads 0 in
  for t = 0 to st.max_threads - 1 do
    if t <> self then snap.(t) <- Runtime.read (counter_addr st t)
  done;
  for t = 0 to st.max_threads - 1 do
    if t <> self && !ok && snap.(t) land 1 = 1 then begin
      Runtime.set_wait_note (Some (Fmt.str "epoch quiescence wait on t%d" t));
      let b = Backoff.create () in
      let t0 = Runtime.now () in
      while !ok && Runtime.read (counter_addr st t) = snap.(t) do
        st.waits <- st.waits + 1;
        match st.patience with
        | Some p when Runtime.now () - t0 > p -> ok := false
        | _ -> Backoff.once b
      done;
      Runtime.set_wait_note None;
      st.stall_cycles <- st.stall_cycles + (Runtime.now () - t0)
    end
  done;
  if not !ok then st.gaveups <- st.gaveups + 1;
  !ok

let cleanup st (c : Smr.counters) =
  let self = Runtime.self () in
  Smr.add_cleanups c 1;
  let to_free = st.pending.(self) in
  if not (Vec.is_empty to_free) then
    if wait_for_quiescence st self then begin
      Vec.iter
        (fun p ->
          Runtime.free (Ptr.addr p);
          Smr.add_freed c 1)
        to_free;
      Vec.clear to_free
    end

let create ?(batch = 256) ?errant ?patience ?(skip_fence = false) ~max_threads () =
  let counters_base = Runtime.alloc_region max_threads in
  let st =
    {
      max_threads;
      counters_base;
      mirror = Array.make max_threads 0;
      limbo = Array.init max_threads (fun _ -> Vec.create ());
      pending = Array.init max_threads (fun _ -> Vec.create ());
      orphans = Vec.create ();
      batch;
      errant;
      patience;
      waits = 0;
      stall_cycles = 0;
      gaveups = 0;
      unreclaimed_peak = 0;
    }
  in
  let bump () =
    let tid = Runtime.self () in
    st.mirror.(tid) <- st.mirror.(tid) + 1;
    Runtime.write (counter_addr st tid) st.mirror.(tid)
  in
  let smr = ref None in
  let op_begin () =
    if skip_fence then
      (* Seeded bug: the store announcing the odd epoch is issued without
         the fence that must drain it before the section's first read.
         Rendered TSO-honestly, the announce sits in the store buffer for
         the whole read-side section and only reaches shared memory at
         the next boundary — so a concurrent cleanup reads a stale even
         counter and frees nodes under this thread's feet. *)
      let tid = Runtime.self () in
      st.mirror.(tid) <- st.mirror.(tid) + 1
    else bump ()
  in
  let op_end () =
    let tid = Runtime.self () in
    (* If the batch filled during this operation, the errant thread (Slow
       Epoch) stalls here, mid-operation, with its counter odd: this is the
       application delay the paper injects. *)
    (match st.errant with
    | Some (etid, delay)
      when etid = tid && Vec.length st.limbo.(tid) >= st.batch && Vec.is_empty st.pending.(tid)
      ->
        Runtime.advance delay
    | _ -> ());
    if skip_fence then
      (* the delayed announce finally drains, back to back with the
         boundary store below *)
      Runtime.write (counter_addr st tid) st.mirror.(tid);
    bump ();
    let backlog = Vec.length st.limbo.(tid) + Vec.length st.pending.(tid) in
    if backlog > st.unreclaimed_peak then st.unreclaimed_peak <- backlog;
    (* Operation boundary: our counter is even, so concurrent cleanups never
       wait on us while we wait on them — no mutual stall. *)
    if Vec.length st.limbo.(tid) >= st.batch && Vec.is_empty st.pending.(tid) then begin
      let tmp = st.pending.(tid) in
      st.pending.(tid) <- st.limbo.(tid);
      st.limbo.(tid) <- tmp;
      cleanup st (Option.get !smr : Smr.t).Smr.counters
    end
    else if Vec.length st.limbo.(tid) >= st.batch then
      (* An earlier cleanup gave up (bounded patience): keep retrying at
         every boundary — the batch swap stays blocked, limbo keeps growing
         until quiescence returns.  This is epoch's fundamental wedge. *)
      cleanup st (Option.get !smr : Smr.t).Smr.counters
  in
  let retire (c : Smr.counters) p =
    Smr.add_retired c 1;
    Vec.push st.limbo.(Runtime.self ()) (Ptr.mask p)
  in
  let thread_exit () =
    let tid = Runtime.self () in
    if st.mirror.(tid) land 1 = 1 then bump ();
    (* [orphans] is the one OCaml-heap structure shared across threads:
       concurrent exits must not race their pushes. *)
    Runtime.critical (fun () ->
        Vec.iter (Vec.push st.orphans) st.limbo.(tid);
        Vec.clear st.limbo.(tid);
        Vec.iter (Vec.push st.orphans) st.pending.(tid);
        Vec.clear st.pending.(tid))
  in
  let flush () =
    let c = (Option.get !smr : Smr.t).Smr.counters in
    let self = Runtime.self () in
    if wait_for_quiescence st self then begin
      let drain lst =
        Vec.iter
          (fun p ->
            Runtime.free (Ptr.addr p);
            Smr.add_freed c 1)
          lst;
        Vec.clear lst
      in
      Array.iter drain st.limbo;
      Array.iter drain st.pending;
      drain st.orphans
    end
    (* else: a thread died or stalled mid-operation and never quiesced.
       Without per-pointer information nothing in limbo is provably safe,
       so everything stays unreclaimed — the wedge the ablate-crash
       experiment measures. *)
  in
  let name =
    if skip_fence then "epoch-nofence"
    else match errant with None -> "epoch" | Some _ -> "slow-epoch"
  in
  let t =
    Smr.make ~name ~op_begin ~op_end ~thread_exit ~flush ~retired_access:Smr.In_op
      ~extras:(fun () ->
        [
          ("spin-waits", st.waits);
          ("stall-cycles", st.stall_cycles);
          ("quiescence-gaveups", st.gaveups);
          ("unreclaimed-peak", st.unreclaimed_peak);
        ])
      ~retire ()
  in
  smr := Some t;
  t
