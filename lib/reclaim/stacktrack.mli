(** StackTrack-style reclamation (Alistarh et al., EuroSys 2014) —
    approximated without HTM (a hardware gate; see DESIGN.md).

    StackTrack makes each operation's live references visible by executing
    the operation as a sequence of transactions whose read sets the
    reclaimer can inspect.  The fallback path publishes accessed node
    pointers into a per-thread visible buffer framed by a sequence counter
    (odd = operation in flight).  We reproduce that fallback: [protect]
    appends the pointer to the calling thread's visible ring (two plain
    stores — cheaper than a hazard pointer's store + fence, which is the
    cost relationship the original paper demonstrates); the reclaimer
    snapshots every thread's ring with seqlock-style double-checked reads
    and frees retired nodes that appear in no ring.

    The visible ring must be large enough that a still-held reference is
    never overwritten before the operation ends; [ring] defaults to 256,
    ample for the structures in this repository (see DESIGN.md for the
    bound). *)

val create :
  ?ring:int -> ?threshold:int -> max_threads:int -> unit -> Ts_smr.Smr.t
(** [threshold] is the retire-list length that triggers a scan
    (default 128). *)
