module Smr = Ts_smr.Smr
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Vec = Ts_util.Vec

(* DEBRA+ (Brown, PODC'15): epoch-based reclamation with limbo bags per
   epoch, plus neutralizing signals so reclamation never waits behind a
   stalled or crashed reader.  A thread pins the global epoch for the
   duration of each operation by publishing (epoch lsl 1) lor 1 in its
   announce word; retired nodes go into the bag tagged with the pinning
   epoch and are freed once the global epoch has advanced twice past the
   tag.  A thread that wants to advance the epoch but finds a peer pinned
   at an older epoch signals it: the peer's handler announces quiescence
   on the spot and arranges — via [Runtime.neutralize] — for the
   interrupted operation to abort at its next shared-memory access and
   restart from [op_begin].  Crashed peers are skipped outright (their
   bags are adopted), so unlike plain epoch the scheme tolerates crashes
   and unbounded stalls without wedging. *)

type bag = { tag : int; nodes : Vec.t }

type state = {
  max_threads : int;
  epoch_addr : int; (* global epoch word *)
  announce_base : int; (* one word per thread: (epoch lsl 1) lor active *)
  bags : bag list ref array; (* per thread, newest first *)
  in_section : bool array; (* plain flag the handler consults *)
  local_epoch : int array; (* epoch pinned by the current section *)
  orphans : bag list ref; (* adopted/exited bags, under Runtime.critical *)
  adopted : bool array; (* corpse bags already adopted *)
  batch : int;
  resend_every : int; (* spin iterations between signal resends *)
  stall_skip_after : int; (* resends before a parked victim is skipped *)
  mutable advances : int;
  mutable signals : int;
  mutable neutralizations : int;
  mutable dead_skips : int;
  mutable stall_skips : int;
  mutable unreclaimed_peak : int;
}

let announce_addr st tid = st.announce_base + tid

let bag_for st tid tag =
  match List.find_opt (fun b -> b.tag = tag) !(st.bags.(tid)) with
  | Some b -> b.nodes
  | None ->
      let b = { tag; nodes = Vec.create () } in
      st.bags.(tid) := b :: !(st.bags.(tid));
      b.nodes

let backlog st tid =
  List.fold_left (fun acc b -> acc + Vec.length b.nodes) 0 !(st.bags.(tid))

let free_bag (c : Smr.counters) b =
  Vec.iter
    (fun p ->
      Runtime.free (Ptr.addr p);
      Smr.add_freed c 1)
    b.nodes;
  Vec.clear b.nodes

(* Free every bag with tag <= limit from [bagsref] (a single thread's
   list, or — detached under critical first — the orphan list). *)
let free_safe st c ~limit bagsref =
  ignore st;
  let keep, ripe = List.partition (fun b -> b.tag > limit) !bagsref in
  bagsref := keep;
  List.iter (free_bag c) ripe

let free_orphans st c ~limit =
  if !(st.orphans) <> [] then begin
    let ripe =
      Runtime.critical (fun () ->
          let keep, ripe = List.partition (fun b -> b.tag > limit) !(st.orphans) in
          st.orphans := keep;
          ripe)
    in
    List.iter (free_bag c) ripe
  end

(* A crashed peer never leaves its section: take its bags (once) and
   clear its announce word so no advancer waits on the corpse again.
   Freeing what the corpse retired is safe — it unlinked those nodes
   before retiring them, and a dead thread performs no further reads. *)
let adopt_dead st tid =
  Runtime.critical (fun () ->
      if not st.adopted.(tid) then begin
        st.adopted.(tid) <- true;
        st.orphans := !(st.bags.(tid)) @ !(st.orphans);
        st.bags.(tid) := []
      end);
  Runtime.write (announce_addr st tid) 0

(* Advance the global epoch by one, neutralizing every thread still
   pinned at an older epoch.  Termination: a live victim either finishes
   its section (announce goes even), re-pins the current epoch, or takes
   the signal and quiesces in its handler; a crashed victim is adopted; a
   parked victim is skipped once [stall_skip_after] resends sit pending —
   sound, because delivery precedes its next instruction on wake, so it
   aborts before touching shared memory again.  (The one hole: a
   drop-signals fault can eat the pending resend, reintroducing the race
   — see docs/SCHEMES.md.) *)
let try_advance st (c : Smr.counters) =
  Smr.add_cleanups c 1;
  let self = Runtime.self () in
  let e = Runtime.read st.epoch_addr in
  for u = 0 to st.max_threads - 1 do
    if u <> self then begin
      let a = Runtime.read (announce_addr st u) in
      if a land 1 = 1 && a asr 1 < e then begin
        if Runtime.is_crashed u then begin
          adopt_dead st u;
          st.dead_skips <- st.dead_skips + 1
        end
        else begin
          Runtime.signal u;
          st.signals <- st.signals + 1;
          Runtime.set_wait_note (Some (Fmt.str "debra neutralize wait on t%d" u));
          let resends = ref 1 in
          let spins = ref 0 in
          let waiting = ref true in
          while
            !waiting
            &&
            let a' = Runtime.read (announce_addr st u) in
            a' land 1 = 1 && a' asr 1 < e
          do
            if Runtime.is_crashed u then begin
              adopt_dead st u;
              st.dead_skips <- st.dead_skips + 1;
              waiting := false
            end
            else if Runtime.is_stalled u && !resends >= st.stall_skip_after then begin
              st.stall_skips <- st.stall_skips + 1;
              waiting := false
            end
            else begin
              incr spins;
              if !spins mod st.resend_every = 0 then begin
                Runtime.signal u;
                st.signals <- st.signals + 1;
                incr resends
              end;
              Runtime.yield ()
            end
          done;
          Runtime.set_wait_note None
        end
      end
    end
  done;
  if Runtime.cas st.epoch_addr e (e + 1) then st.advances <- st.advances + 1

let create ?(batch = 64) ?(resend_every = 16) ?(stall_skip_after = 64) ~max_threads () =
  let epoch_addr = Runtime.alloc_region 1 in
  (* start at 2 so tag <= epoch - 2 never goes negative *)
  Runtime.write epoch_addr 2;
  let announce_base = Runtime.alloc_region max_threads in
  let st =
    {
      max_threads;
      epoch_addr;
      announce_base;
      bags = Array.init max_threads (fun _ -> ref []);
      in_section = Array.make max_threads false;
      local_epoch = Array.make max_threads 0;
      orphans = ref [];
      adopted = Array.make max_threads false;
      batch;
      resend_every;
      stall_skip_after;
      advances = 0;
      signals = 0;
      neutralizations = 0;
      dead_skips = 0;
      stall_skips = 0;
      unreclaimed_peak = 0;
    }
  in
  let smr = ref None in
  let cnt () = (Option.get !smr : Smr.t).Smr.counters in
  (* The handler runs on the victim thread (inline at a poll natively, as
     a same-thread fiber on the simulator).  If the victim is mid-section
     it announces quiescence right here and arms the abort; the victim
     then raises [Smr.Neutralized] at its next shared-memory access and
     the data structure's [wrap] restarts the operation from [op_begin].
     Outside a section there is nothing to unpin — in particular a signal
     landing between [op_end]'s [in_section := false] and its
     [cancel_neutralize] must NOT re-arm an abort for the operation that
     just completed. *)
  let handler () =
    let tid = Runtime.self () in
    if st.in_section.(tid) then begin
      st.in_section.(tid) <- false;
      Runtime.write (announce_addr st tid) (st.local_epoch.(tid) lsl 1);
      st.neutralizations <- st.neutralizations + 1;
      Runtime.neutralize Smr.Neutralized
    end
  in
  let thread_init () = Runtime.set_signal_handler handler in
  let op_begin () =
    let tid = Runtime.self () in
    (* a retried (neutralized) attempt enters here with no abort pending
       — the raise consumed it — but be defensive: a stale abort escaping
       into the section would tear the pin protocol *)
    Runtime.cancel_neutralize ();
    (* announce-then-recheck: the pin is only valid once the announce was
       visible while the global epoch still had the announced value —
       otherwise an advancer whose scan missed us could free a bag whose
       nodes were unlinked after we started reading *)
    let rec pin () =
      let e = Runtime.read st.epoch_addr in
      Runtime.write (announce_addr st tid) ((e lsl 1) lor 1);
      if Runtime.read st.epoch_addr <> e then pin () else e
    in
    let e = pin () in
    st.local_epoch.(tid) <- e;
    st.in_section.(tid) <- true
  in
  let reclaim_boundary st tid c =
    let e = Runtime.read st.epoch_addr in
    free_safe st c ~limit:(e - 2) st.bags.(tid);
    free_orphans st c ~limit:(e - 2)
  in
  let op_end () =
    let tid = Runtime.self () in
    (* order matters: the flag first (the handler reads it), then the
       cancel (a completed — linearized — operation must never retry),
       and only then any shared-memory effect *)
    st.in_section.(tid) <- false;
    Runtime.cancel_neutralize ();
    Runtime.write (announce_addr st tid) (st.local_epoch.(tid) lsl 1);
    let bl = backlog st tid in
    if bl > st.unreclaimed_peak then st.unreclaimed_peak <- bl;
    let c = cnt () in
    reclaim_boundary st tid c;
    let current = bag_for st tid st.local_epoch.(tid) in
    if Vec.length current >= st.batch then begin
      try_advance st c;
      reclaim_boundary st tid c
    end
  in
  let retire (c : Smr.counters) p =
    let tid = Runtime.self () in
    (* inside a section the pinning epoch tags the bag; a bare retire
       (tests, fixtures) uses the current global epoch, which is never
       older than the unlink *)
    let tag =
      if st.in_section.(tid) then st.local_epoch.(tid) else Runtime.read st.epoch_addr
    in
    (* count before push: a crash between the two leaks (bounded) rather
       than letting freed outrun retired *)
    Smr.add_retired c 1;
    Vec.push (bag_for st tid tag) (Ptr.mask p)
  in
  let thread_exit () =
    let tid = Runtime.self () in
    st.in_section.(tid) <- false;
    Runtime.cancel_neutralize ();
    Runtime.write (announce_addr st tid) 0;
    let c = cnt () in
    let e = Runtime.read st.epoch_addr in
    free_safe st c ~limit:(e - 2) st.bags.(tid);
    Runtime.critical (fun () ->
        st.orphans := !(st.bags.(tid)) @ !(st.orphans);
        st.bags.(tid) := [])
  in
  let flush () =
    let c = cnt () in
    (* Drive the full neutralizing protocol a few hops so every straggler
       is quiesced, adopted, or carries a pending abort; after that every
       bag is safe — a neutralized thread that wakes later aborts before
       its next shared-memory access. *)
    for _ = 1 to 3 do
      try_advance st c
    done;
    for tid = 0 to st.max_threads - 1 do
      free_safe st c ~limit:max_int st.bags.(tid)
    done;
    free_orphans st c ~limit:max_int
  in
  let t =
    Smr.make ~name:"debra" ~thread_init ~thread_exit ~op_begin ~op_end ~flush
      ~retired_access:Smr.In_op
      ~extras:(fun () ->
        [
          ("epoch-advances", st.advances);
          ("neutralize-signals", st.signals);
          ("neutralizations", st.neutralizations);
          ("dead-skips", st.dead_skips);
          ("stall-skips", st.stall_skips);
          ("unreclaimed-peak", st.unreclaimed_peak);
        ])
      ~retire ()
  in
  smr := Some t;
  t
