(** Deliberately unsafe "reclaim immediately" scheme — failure injection.

    [retire] calls [free] on the spot, with no attempt to prove the node is
    unreferenced.  Under any concurrent workload this produces
    use-after-free accesses, which the unmanaged heap detects; tests use it
    to prove the safety oracle actually fires (and therefore that the safe
    schemes' clean runs are meaningful). *)

val create : unit -> Ts_smr.Smr.t
