module Smr = Ts_smr.Smr

let create () =
  Smr.make ~name:"leaky" ~retire:(fun c _p -> Smr.add_retired c 1) ()
