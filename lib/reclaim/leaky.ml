module Smr = Ts_smr.Smr

let create () =
  Smr.make ~name:"leaky" ~retire:(fun c _p -> c.retired <- c.retired + 1) ()
