module Smr = Ts_smr.Smr
module Runtime = Ts_sim.Runtime
module Ptr = Ts_umem.Ptr

let create () =
  Smr.make ~name:"direct-free"
    ~retire:(fun c p ->
      c.retired <- c.retired + 1;
      Runtime.free (Ptr.addr p);
      c.freed <- c.freed + 1)
    ()
