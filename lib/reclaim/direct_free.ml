module Smr = Ts_smr.Smr
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr

let create () =
  Smr.make ~name:"direct-free"
    ~retire:(fun c p ->
      Smr.add_retired c 1;
      Runtime.free (Ptr.addr p);
      Smr.add_freed c 1)
    ()
