(** DEBRA+ — distributed epoch-based reclamation with neutralizing
    signals (Brown, PODC'15).

    Plain epoch with per-epoch limbo bags, except that reclamation never
    waits behind an uncooperative reader: a thread trying to advance the
    global epoch signals every peer still pinned at an older epoch.  The
    peer's handler announces quiescence immediately and — via
    {!Ts_rt.neutralize} — aborts the interrupted operation at its next
    shared-memory access with {!Ts_smr.Smr.Neutralized}; the data
    structure's {!Ts_ds.Set_intf.wrap} bracket restarts it from
    [op_begin].  Crashed peers are skipped and their bags adopted;
    stalled peers are skipped once a resent signal sits pending (delivery
    precedes their next instruction on wake).  The scheme therefore
    recovers from crashes and unbounded stalls where the epoch family
    wedges — at the cost of requiring operations that are safe to restart
    (lock-free data structures only; a neutralized lock holder would
    deadlock its peers).

    Extras: ["epoch-advances"], ["neutralize-signals"],
    ["neutralizations"], ["dead-skips"], ["stall-skips"],
    ["unreclaimed-peak"]. *)

val create :
  ?batch:int ->
  ?resend_every:int ->
  ?stall_skip_after:int ->
  max_threads:int ->
  unit ->
  Ts_smr.Smr.t
(** [batch] (default 64) is the per-thread retire count that triggers an
    epoch-advance attempt at the next operation boundary.
    [resend_every] (default 16) is the number of spin iterations between
    signal resends while waiting out a pinned peer; [stall_skip_after]
    (default 64) is the number of resends after which a parked peer is
    left behind with its abort pending.  Must run inside the runtime
    (allocates the epoch and announce words). *)
