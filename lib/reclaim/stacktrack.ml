module Smr = Ts_smr.Smr
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Vec = Ts_util.Vec
module Isort = Ts_util.Isort

(* Per-thread record in shared memory:
   [seq][count][ring slots...] ; seq odd = operation in flight. *)
type state = {
  ring : int;
  max_threads : int;
  base : int; (* max_threads * (2 + ring) words *)
  seq_mirror : int array;
  count_mirror : int array;
  rlists : Vec.t array;
  orphans : Vec.t;
  threshold : int;
  mutable scans : int;
  mutable unstable_aborts : int;
}

let stride st = 2 + st.ring

let seq_addr st tid = st.base + (tid * stride st)

let count_addr st tid = st.base + (tid * stride st) + 1

let slot_addr st tid i = st.base + (tid * stride st) + 2 + i

(* Snapshot one thread's visible set with a seqlock read; [None] when the
   thread kept racing past our retries. *)
let snapshot_thread st tid out =
  let rec attempt tries =
    if tries = 0 then false
    else begin
      let s1 = Runtime.read (seq_addr st tid) in
      let n = min (Runtime.read (count_addr st tid)) st.ring in
      let tmp = Array.make (max n 1) 0 in
      for i = 0 to n - 1 do
        tmp.(i) <- Runtime.read (slot_addr st tid i)
      done;
      let s2 = Runtime.read (seq_addr st tid) in
      if s1 = s2 then begin
        for i = 0 to n - 1 do
          Vec.push out tmp.(i)
        done;
        true
      end
      else attempt (tries - 1)
    end
  in
  attempt 3

let scan st (c : Smr.counters) =
  Smr.add_cleanups c 1;
  st.scans <- st.scans + 1;
  let visible = Vec.create () in
  let stable = ref true in
  for tid = 0 to st.max_threads - 1 do
    if !stable && not (snapshot_thread st tid visible) then stable := false
  done;
  if not !stable then st.unstable_aborts <- st.unstable_aborts + 1
  else begin
    let vis = Vec.to_array visible in
    Isort.sort_prefix vis (Array.length vis);
    Runtime.advance (Array.length vis * 8);
    let self = Runtime.self () in
    let keep = Vec.create () in
    Vec.iter
      (fun p ->
        Runtime.advance 8;
        if Isort.binary_search vis (Array.length vis) p >= 0 then Vec.push keep p
        else begin
          Runtime.free (Ptr.addr p);
          Smr.add_freed c 1
        end)
      st.rlists.(self);
    st.rlists.(self) <- keep
  end

let create ?(ring = 256) ?(threshold = 128) ~max_threads () =
  let base = Runtime.alloc_region (max_threads * (2 + ring)) in
  let st =
    {
      ring;
      max_threads;
      base;
      seq_mirror = Array.make max_threads 0;
      count_mirror = Array.make max_threads 0;
      rlists = Array.init max_threads (fun _ -> Vec.create ());
      orphans = Vec.create ();
      threshold;
      scans = 0;
      unstable_aborts = 0;
    }
  in
  let op_begin () =
    let tid = Runtime.self () in
    st.seq_mirror.(tid) <- st.seq_mirror.(tid) + 1;
    Runtime.write (seq_addr st tid) st.seq_mirror.(tid);
    st.count_mirror.(tid) <- 0;
    Runtime.write (count_addr st tid) 0
  in
  let op_end () =
    let tid = Runtime.self () in
    st.seq_mirror.(tid) <- st.seq_mirror.(tid) + 1;
    Runtime.write (seq_addr st tid) st.seq_mirror.(tid)
  in
  let protect ~slot:_ p =
    let tid = Runtime.self () in
    let i = st.count_mirror.(tid) in
    Runtime.write (slot_addr st tid (i mod st.ring)) (Ptr.mask p);
    st.count_mirror.(tid) <- i + 1;
    Runtime.write (count_addr st tid) (i + 1);
    p
  in
  let retire (c : Smr.counters) p =
    Smr.add_retired c 1;
    let tid = Runtime.self () in
    Vec.push st.rlists.(tid) (Ptr.mask p);
    if Vec.length st.rlists.(tid) >= st.threshold then scan st c
  in
  let thread_exit () =
    let tid = Runtime.self () in
    st.count_mirror.(tid) <- 0;
    Runtime.write (count_addr st tid) 0;
    if st.seq_mirror.(tid) land 1 = 1 then op_end ();
    (* [orphans] is shared OCaml-heap state: exits must not race pushes. *)
    Runtime.critical (fun () ->
        Vec.iter (Vec.push st.orphans) st.rlists.(tid);
        Vec.clear st.rlists.(tid))
  in
  let smr = ref None in
  let flush () =
    let c = (Option.get !smr : Smr.t).Smr.counters in
    (* quiescent: every ring is empty, free everything *)
    let drain lst =
      Vec.iter
        (fun p ->
          Runtime.free (Ptr.addr p);
          Smr.add_freed c 1)
        lst;
      Vec.clear lst
    in
    let visible = Vec.create () in
    for tid = 0 to st.max_threads - 1 do
      ignore (snapshot_thread st tid visible)
    done;
    if Vec.length visible = 0 then begin
      Array.iter drain st.rlists;
      drain st.orphans
    end
    else begin
      (* someone still has a visible set (caller included): conservative *)
      let vis = Vec.to_array visible in
      Isort.sort_prefix vis (Array.length vis);
      let sweep lst =
        let keep = Vec.create () in
        Vec.iter
          (fun p ->
            if Isort.binary_search vis (Array.length vis) p >= 0 then Vec.push keep p
            else begin
              Runtime.free (Ptr.addr p);
              Smr.add_freed c 1
            end)
          lst;
        keep
      in
      Array.iteri (fun i lst -> st.rlists.(i) <- sweep lst) st.rlists;
      let rest = sweep st.orphans in
      Vec.clear st.orphans;
      Vec.iter (Vec.push st.orphans) rest
    end
  in
  let t =
    Smr.make ~name:"stacktrack" ~op_begin ~op_end ~protect ~thread_exit ~flush
      ~extras:(fun () -> [ ("scans", st.scans); ("unstable-aborts", st.unstable_aborts) ])
      ~retire ()
  in
  smr := Some t;
  t
