(** The paper's "Leaky" baseline: no reclamation at all.

    Retired nodes are counted but never freed — the upper bound on
    throughput (zero reclamation overhead) and the lower bound on memory
    behaviour (everything leaks). *)

val create : unit -> Ts_smr.Smr.t
