(** Hazard pointers (Michael, IEEE TPDS 2004) — the paper's pointer-based
    baseline.

    Each thread owns [slots] hazard-pointer slots in shared memory.  Before
    dereferencing a node, a traversal publishes the pointer in a slot with a
    store followed by a full fence ({!Ts_smr.Smr.t.protect}) — the per-step
    cost the paper's evaluation highlights — and the caller re-validates the
    link before trusting it.  Retired nodes go to a per-thread list; once
    the list exceeds a threshold proportional to the total number of hazard
    slots, the thread scans all slots and frees every retired node that is
    not announced. *)

val create : ?slots:int -> ?threshold_extra:int -> max_threads:int -> unit -> Ts_smr.Smr.t
(** [slots] hazard pointers per thread (default 3: prev/cur/next).
    A scan triggers when a retire list exceeds
    [max_threads * slots + threshold_extra] (default extra 64).
    Must run inside the simulator (allocates the hazard array). *)
