(** Quiescence/epoch-based reclamation — the paper's "Epoch" baseline, in
    the exact formulation §6 describes: each thread keeps a counter that it
    bumps before and after every operation (odd = inside an operation), and
    a thread that has retired [batch] nodes waits, at its next operation
    boundary, until it has seen every mid-operation thread's counter change;
    the batch is then safe to free.

    The "Slow Epoch" variant is obtained with [~errant:(tid, delay)]: that
    thread busy-waits [delay] cycles *inside* an operation whenever its
    batch fills, keeping its counter odd — every other thread's reclamation
    then stalls behind it, which is precisely the sensitivity the paper's
    Figure 3 demonstrates. *)

val create :
  ?batch:int ->
  ?errant:int * int ->
  ?patience:int ->
  ?skip_fence:bool ->
  max_threads:int ->
  unit ->
  Ts_smr.Smr.t
(** [batch] (default 256) is the per-thread retire count that triggers a
    cleanup.  Must run inside the simulator (allocates the counter array).

    [skip_fence] (default false) seeds the classic epoch bug for the
    analyzer's test suite: the store announcing the odd epoch is issued
    without its fence, rendered TSO-honestly by deferring the shared
    counter write to the next operation boundary.  A concurrent cleanup
    can then read a stale even counter and free a node the thread is
    still traversing — a use-after-free the heap sanitizer and the
    free-vs-read race report both catch.  The scheme is named
    ["epoch-nofence"].

    [patience] bounds every quiescence wait to that many virtual cycles:
    on timeout the cleanup (or flush) is abandoned and nothing is freed —
    the thread keeps running instead of spinning forever behind a crashed
    or stalled peer, but its limbo list grows without bound (tracked by
    the ["quiescence-gaveups"] and ["unreclaimed-peak"] extras).  This is
    deliberate: epoch has no per-pointer information, so a thread that
    never quiesces makes every retired node unreclaimable — the contrast
    the [ablate-crash] experiment measures against ThreadScan's
    suspect/reap ladder (see docs/FAULTS.md). *)
