module Smr = Ts_smr.Smr
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Vec = Ts_util.Vec

(* Hyaline (Nikolaev & Ravindran, SPAA'19): snapshot-free reclamation by
   reference-counted retirement batches.  All retired batches live on one
   global list whose head is packed together with a count of the threads
   currently inside an operation:

       HH = (href lsl ref_shift) lor head_addr

   Enter bumps href with one fetch-and-add and remembers the head it saw
   (its handle).  A batch is published with its ref field set to the href
   captured by the same CAS that inserts it — exactly the set of threads
   active at that instant, each of which will walk past the batch when it
   leaves.  Leave decrements href and walks the list from the head it saw
   down to its handle, decrementing each batch's ref and freeing a batch
   when its count hits zero.  No per-thread snapshot, no epochs: the cost
   is two fetch-and-adds per operation, and memory bounded by the number
   of batches retired while any given reader is active. *)

let ref_shift = 36
let addr_mask = (1 lsl ref_shift) - 1
let ref_one = 1 lsl ref_shift

(* Batch node layout: [ref][next][count][ptr0 .. ptr(count-1)] *)
let off_ref = 0
let off_next = 1
let off_count = 2
let off_ptrs = 3

type state = {
  max_threads : int;
  hh : int; (* the packed (href, head) word *)
  pending : Vec.t array; (* per-thread retired, not yet batched *)
  handles : int array; (* head observed at enter *)
  registered : bool array; (* tids that ever ran thread_init *)
  entered : bool array;
  adopted : bool array; (* corpse's leave already performed by proxy *)
  registry : (int, unit) Hashtbl.t; (* published batches, for flush teardown *)
  batch : int;
  mutable batches : int;
  mutable immediate : int; (* batches freed on the spot: href was 0 *)
  mutable corpse_leaves : int;
  mutable unreclaimed_peak : int;
}

let free_batch st (c : Smr.counters) node =
  (* unregister first: a crash mid-free must leak, never expose the
     half-freed batch to the flush teardown for a second free *)
  Runtime.critical (fun () -> Hashtbl.remove st.registry node);
  let n = Runtime.read (node + off_count) in
  for i = 0 to n - 1 do
    Runtime.free (Ptr.addr (Runtime.read (node + off_ptrs + i)));
    Smr.add_freed c 1
  done;
  Runtime.free node

(* Walk from [from] (a head captured by the fetch-and-add that gave up
   the reference) down to — exclusive — [until] (the handle), dropping
   one reference per batch.  Every batch in that range was inserted while
   the departing thread was counted, so its ref is at least one until we
   decrement it: reading [next] before the decrement is safe. *)
let traverse st c ~from ~until =
  let p = ref from in
  while !p <> until && !p <> 0 do
    let next = Runtime.read (!p + off_next) in
    let r = Runtime.faa (!p + off_ref) (-1) in
    if r = 1 then free_batch st c !p;
    p := next
  done

(* A thread that crashed inside an operation never performs its leave:
   its +1 on href would pin every batch forever.  Perform the leave on
   its behalf, exactly once, using the handle it recorded at enter.
   Its un-batched retired nodes are adopted into the caller's pending so
   they still go through the insertion protocol.  (A crash in the
   one-instruction window after the enter fetch-and-add but before the
   handle store leaves [entered] false: the ref leaks until [flush]
   resets the word — bounded, and never a use-after-free.) *)
let adopt_corpses st c ~into =
  for u = 0 to st.max_threads - 1 do
    (* only probe tids that ever registered: the runtime rejects
       liveness queries on never-spawned thread ids *)
    if u <> into && st.registered.(u) && (not st.adopted.(u)) && Runtime.is_crashed u then begin
      let leave =
        Runtime.critical (fun () ->
            if st.adopted.(u) then false
            else begin
              st.adopted.(u) <- true;
              Vec.iter (Vec.push st.pending.(into)) st.pending.(u);
              Vec.clear st.pending.(u);
              st.entered.(u)
            end)
      in
      if leave then begin
        st.corpse_leaves <- st.corpse_leaves + 1;
        let prev = Runtime.faa st.hh (-ref_one) in
        traverse st c ~from:(prev land addr_mask) ~until:st.handles.(u)
      end
    end
  done

let insert_batch st c tid =
  adopt_corpses st c ~into:tid;
  let pend = st.pending.(tid) in
  let n = Vec.length pend in
  if n > 0 then begin
    let node = Runtime.malloc (off_ptrs + n) in
    Runtime.write (node + off_count) n;
    let i = ref 0 in
    Vec.iter
      (fun p ->
        Runtime.write (node + off_ptrs + !i) p;
        incr i)
      pend;
    (* the registry entry precedes the publish: if this thread crashes
       mid-insertion the flush teardown still frees the contents *)
    Runtime.critical (fun () -> Hashtbl.replace st.registry node ());
    Vec.clear pend;
    let rec publish () =
      let cur = Runtime.read st.hh in
      let href = cur asr ref_shift in
      if href = 0 then begin
        (* nobody is inside an operation at this instant, and retirement
           implies the nodes were already unlinked: free on the spot *)
        st.immediate <- st.immediate + 1;
        free_batch st c node
      end
      else begin
        Runtime.write (node + off_next) (cur land addr_mask);
        Runtime.write (node + off_ref) href;
        if Runtime.cas st.hh cur ((href lsl ref_shift) lor node) then
          st.batches <- st.batches + 1
        else publish ()
      end
    in
    publish ()
  end

let create ?(batch = 64) ~max_threads () =
  let hh = Runtime.alloc_region 1 in
  let st =
    {
      max_threads;
      hh;
      pending = Array.init max_threads (fun _ -> Vec.create ());
      handles = Array.make max_threads 0;
      registered = Array.make max_threads false;
      entered = Array.make max_threads false;
      adopted = Array.make max_threads false;
      registry = Hashtbl.create 64;
      batch;
      batches = 0;
      immediate = 0;
      corpse_leaves = 0;
      unreclaimed_peak = 0;
    }
  in
  let smr = ref None in
  let cnt () = (Option.get !smr : Smr.t).Smr.counters in
  let thread_init () = st.registered.(Runtime.self ()) <- true in
  let op_begin () =
    let tid = Runtime.self () in
    let prev = Runtime.faa st.hh ref_one in
    st.handles.(tid) <- prev land addr_mask;
    st.entered.(tid) <- true
  in
  let op_end () =
    let tid = Runtime.self () in
    (* the flag drops before the fetch-and-add: a crash between the two
       leaks this thread's reference (bounded, cleared by flush) instead
       of letting the proxy leave run twice and free batches early *)
    st.entered.(tid) <- false;
    let c = cnt () in
    let prev = Runtime.faa st.hh (-ref_one) in
    traverse st c ~from:(prev land addr_mask) ~until:st.handles.(tid)
  in
  let retire (c : Smr.counters) p =
    let tid = Runtime.self () in
    (* count before push: a crash between the two leaks (bounded) rather
       than letting freed outrun retired *)
    Smr.add_retired c 1;
    Vec.push st.pending.(tid) (Ptr.mask p);
    let outstanding = c.Smr.retired - c.Smr.freed in
    if outstanding > st.unreclaimed_peak then st.unreclaimed_peak <- outstanding;
    if Vec.length st.pending.(tid) >= st.batch then begin
      Smr.add_cleanups c 1;
      insert_batch st c tid
    end
  in
  let thread_exit () =
    let tid = Runtime.self () in
    (* push leftovers into the protocol — active peers still hold them *)
    let c = cnt () in
    Smr.add_cleanups c 1;
    insert_batch st c tid
  in
  let flush () =
    let tid = Runtime.self () in
    let c = cnt () in
    (* post-join: every other participant is done or dead *)
    adopt_corpses st c ~into:tid;
    Runtime.critical (fun () ->
        for u = 0 to st.max_threads - 1 do
          if u <> tid then begin
            Vec.iter (Vec.push st.pending.(tid)) st.pending.(u);
            Vec.clear st.pending.(u)
          end
        done);
    insert_batch st c tid;
    (* quiescent teardown: reference counts no longer matter (any count
       still above zero belongs to a dead or departed thread); free every
       batch the registry still holds and reset the packed word *)
    let live = Runtime.critical (fun () -> Hashtbl.fold (fun k () acc -> k :: acc) st.registry []) in
    List.iter (fun node -> free_batch st c node) live;
    Runtime.write st.hh 0;
    Array.fill st.entered 0 st.max_threads false;
    Array.fill st.adopted 0 st.max_threads false
  in
  let t =
    Smr.make ~name:"hyaline" ~thread_init ~thread_exit ~op_begin ~op_end ~flush
      ~retired_access:Smr.Invisible
      ~extras:(fun () ->
        [
          ("batches", st.batches);
          ("immediate-frees", st.immediate);
          ("corpse-leaves", st.corpse_leaves);
          ("unreclaimed-peak", st.unreclaimed_peak);
        ])
      ~retire ()
  in
  smr := Some t;
  t
