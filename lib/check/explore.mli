(** Schedule exploration: seed-family sweeps and failure shrinking.

    A sweep runs one scenario shape across a family of seeds, alternating
    the {!Scenario.Uniform} random walk with {!Scenario.Pct} priority
    schedules (which hit ordering bugs of bounded preemption depth with
    known probability).  Because every run is a pure function of its spec,
    a failure shrinks by plain greedy search — fewer threads, fewer ops,
    narrower key range, smaller seed — re-running the scenario at each
    step and keeping only reductions that still fail. *)

type summary = {
  runs : int;
  total_events : int;  (** operations recorded across all runs *)
  total_phases : int;  (** reclamation phases across all runs *)
  total_steps : int;  (** scheduler steps across all runs *)
  lin_keys : int;  (** per-key histories checked *)
  skipped_segments : int;  (** linearizability segments skipped as too wide *)
  failures : Scenario.outcome list;  (** failing outcomes, in sweep order *)
}

val sweep : ?progress:(int -> unit) -> ?step_budget:int -> Scenario.spec list -> summary
(** Run every spec; [progress] is called with the number of completed
    runs after each one.  A positive [step_budget] stops the sweep
    before the first run that would start beyond the budget — the
    replay-from-seed side of the fork-vs-replay throughput comparison
    (see {!Fork}). *)

val sweep_specs :
  base:Scenario.spec -> schedules:int -> seed0:int -> pct_depth:int -> Scenario.spec list
(** The standard seed family: [schedules] copies of [base] with seeds
    [seed0, seed0+1, ...], even indices under {!Scenario.Uniform} and odd
    ones under {!Scenario.Pct}[ pct_depth]. *)

val fails : Scenario.spec -> bool
(** Whether one run of [spec] produces any violation. *)

type shrink_stats = {
  candidates : int;  (** reduction candidates considered *)
  runs_executed : int;  (** scenarios actually run *)
  memo_hits : int;  (** candidates answered from the memo table *)
}

val shrink_memo : ?fails:(Scenario.spec -> bool) -> Scenario.spec -> Scenario.spec * shrink_stats
(** Greedily minimise a failing spec (threads, ops and key range to a
    fixpoint, then a bounded smallest-seed scan) while it keeps failing.
    Returns the spec unchanged if it does not fail.  Candidate verdicts
    are memoized, so no spec is run twice across passes.  [fails]
    defaults to {!fails}; tests inject synthetic predicates to exercise
    each reduction axis without a real failure.  Deterministic. *)

val shrink : Scenario.spec -> Scenario.spec
(** [shrink spec] is [fst (shrink_memo spec)]. *)
