(** Schedule exploration: seed-family sweeps and failure shrinking.

    A sweep runs one scenario shape across a family of seeds, alternating
    the {!Scenario.Uniform} random walk with {!Scenario.Pct} priority
    schedules (which hit ordering bugs of bounded preemption depth with
    known probability).  Because every run is a pure function of its spec,
    a failure shrinks by plain greedy search — fewer threads, fewer ops,
    narrower key range, smaller seed — re-running the scenario at each
    step and keeping only reductions that still fail. *)

type summary = {
  runs : int;
  total_events : int;  (** operations recorded across all runs *)
  total_phases : int;  (** reclamation phases across all runs *)
  lin_keys : int;  (** per-key histories checked *)
  skipped_segments : int;  (** linearizability segments skipped as too wide *)
  failures : Scenario.outcome list;  (** failing outcomes, in sweep order *)
}

val sweep : ?progress:(int -> unit) -> Scenario.spec list -> summary
(** Run every spec; [progress] is called with the number of completed
    runs after each one. *)

val sweep_specs :
  base:Scenario.spec -> schedules:int -> seed0:int -> pct_depth:int -> Scenario.spec list
(** The standard seed family: [schedules] copies of [base] with seeds
    [seed0, seed0+1, ...], even indices under {!Scenario.Uniform} and odd
    ones under {!Scenario.Pct}[ pct_depth]. *)

val shrink : Scenario.spec -> Scenario.spec
(** Greedily minimise a failing spec (threads, then ops, then key range,
    then seed) while it keeps failing.  Returns the spec unchanged if it
    does not fail.  Deterministic. *)
