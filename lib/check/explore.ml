type summary = {
  runs : int;
  total_events : int;
  total_phases : int;
  total_steps : int;
  lin_keys : int;
  skipped_segments : int;
  failures : Scenario.outcome list;
}

let sweep ?(progress = fun _ -> ()) ?(step_budget = 0) specs =
  let runs = ref 0
  and ev = ref 0
  and ph = ref 0
  and st = ref 0
  and keys = ref 0
  and sk = ref 0
  and failures = ref [] in
  (try
     List.iter
       (fun spec ->
         if step_budget > 0 && !st >= step_budget then raise Exit;
         let o = Scenario.run spec in
         incr runs;
         ev := !ev + o.Scenario.events;
         ph := !ph + o.Scenario.phases;
         st := !st + o.Scenario.steps;
         keys := !keys + o.Scenario.lin_keys;
         sk := !sk + o.Scenario.skipped_segments;
         if Scenario.failed o then failures := o :: !failures;
         progress !runs)
       specs
   with Exit -> ());
  {
    runs = !runs;
    total_events = !ev;
    total_phases = !ph;
    total_steps = !st;
    lin_keys = !keys;
    skipped_segments = !sk;
    failures = List.rev !failures;
  }

(* The seed family a sweep walks: alternate the random-walk and PCT
   policies so every second schedule probes ordering bugs of bounded
   preemption depth. *)
let sweep_specs ~base ~schedules ~seed0 ~pct_depth =
  List.init schedules (fun i ->
      let policy = if i mod 2 = 0 then Scenario.Uniform else Scenario.Pct pct_depth in
      { base with Scenario.policy; seed = seed0 + i })

let fails spec = Scenario.failed (Scenario.run spec)

type shrink_stats = { candidates : int; runs_executed : int; memo_hits : int }

(* Greedy shrink: each reduction is kept only if the spec still fails.
   Deterministic replay makes this sound — no flakiness to chase.

   Every candidate verdict is snapshotted in a memo table keyed by the
   spec, so the fixpoint passes below never re-run a scenario they have
   already judged: revisiting a candidate (the axes interact — halving
   ops can re-enable a thread reduction that previously survived, so we
   sweep the axes until none of them moves) costs a hash lookup, not a
   full simulator run. *)
let shrink_memo ?(fails = fails) spec =
  let memo : (Scenario.spec, bool) Hashtbl.t = Hashtbl.create 64 in
  let candidates = ref 0 and executed = ref 0 and hits = ref 0 in
  let check c =
    incr candidates;
    match Hashtbl.find_opt memo c with
    | Some v ->
        incr hits;
        v
    | None ->
        incr executed;
        let v = fails c in
        Hashtbl.add memo c v;
        v
  in
  let s = ref spec in
  if not (check spec) then (!s, { candidates = !candidates; runs_executed = !executed; memo_hits = !hits })
  else begin
    let reduce_axis shrink_one bottom =
      let moved = ref false in
      let continue_ = ref true in
      while !continue_ && not (bottom !s) do
        let c = shrink_one !s in
        if check c then begin
          s := c;
          moved := true
        end
        else continue_ := false
      done;
      !moved
    in
    let pass () =
      let t =
        reduce_axis
          (fun s -> { s with Scenario.threads = s.Scenario.threads - 1 })
          (fun s -> s.Scenario.threads <= 1)
      in
      let o =
        reduce_axis
          (fun s -> { s with Scenario.ops = s.Scenario.ops / 2 })
          (fun s -> s.Scenario.ops <= 4)
      in
      let k =
        reduce_axis
          (fun s -> { s with Scenario.key_range = s.Scenario.key_range / 2 })
          (fun s -> s.Scenario.key_range <= 4)
      in
      t || o || k
    in
    while pass () do
      ()
    done;
    (* Finally prefer the smallest failing seed in a short scan: stop at
       the first failing seed, and never scan past the current seed or
       the 64-seed horizon. *)
    let rec seed_scan i =
      if i < !s.Scenario.seed && i < 64 then
        if check { !s with Scenario.seed = i } then s := { !s with Scenario.seed = i }
        else seed_scan (i + 1)
    in
    seed_scan 0;
    (!s, { candidates = !candidates; runs_executed = !executed; memo_hits = !hits })
  end

let shrink spec = fst (shrink_memo spec)
