type summary = {
  runs : int;
  total_events : int;
  total_phases : int;
  lin_keys : int;
  skipped_segments : int;
  failures : Scenario.outcome list;
}

let sweep ?(progress = fun _ -> ()) specs =
  let runs = ref 0
  and ev = ref 0
  and ph = ref 0
  and keys = ref 0
  and sk = ref 0
  and failures = ref [] in
  List.iter
    (fun spec ->
      let o = Scenario.run spec in
      incr runs;
      ev := !ev + o.Scenario.events;
      ph := !ph + o.Scenario.phases;
      keys := !keys + o.Scenario.lin_keys;
      sk := !sk + o.Scenario.skipped_segments;
      if Scenario.failed o then failures := o :: !failures;
      progress !runs)
    specs;
  {
    runs = !runs;
    total_events = !ev;
    total_phases = !ph;
    lin_keys = !keys;
    skipped_segments = !sk;
    failures = List.rev !failures;
  }

(* The seed family a sweep walks: alternate the random-walk and PCT
   policies so every second schedule probes ordering bugs of bounded
   preemption depth. *)
let sweep_specs ~base ~schedules ~seed0 ~pct_depth =
  List.init schedules (fun i ->
      let policy = if i mod 2 = 0 then Scenario.Uniform else Scenario.Pct pct_depth in
      { base with Scenario.policy; seed = seed0 + i })

let fails spec = Scenario.failed (Scenario.run spec)

(* Greedy shrink: each reduction is kept only if the spec still fails.
   Deterministic replay makes this sound — no flakiness to chase. *)
let shrink spec =
  let s = ref spec in
  let continue_ = ref true in
  while !continue_ && !s.Scenario.threads > 1 do
    let c = { !s with Scenario.threads = !s.Scenario.threads - 1 } in
    if fails c then s := c else continue_ := false
  done;
  continue_ := true;
  while !continue_ && !s.Scenario.ops > 4 do
    let c = { !s with Scenario.ops = !s.Scenario.ops / 2 } in
    if fails c then s := c else continue_ := false
  done;
  continue_ := true;
  while !continue_ && !s.Scenario.key_range > 4 do
    let c = { !s with Scenario.key_range = !s.Scenario.key_range / 2 } in
    if fails c then s := c else continue_ := false
  done;
  (* Finally prefer the smallest failing seed in a short scan. *)
  let rec seed_scan i =
    if i < !s.Scenario.seed && i < 64 then
      if fails { !s with Scenario.seed = i } then s := { !s with Scenario.seed = i }
      else seed_scan (i + 1)
  in
  seed_scan 0;
  !s
