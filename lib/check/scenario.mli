(** One checked run: workload + schedule policy + detection layers.

    A scenario builds a deterministic simulator run (sanitized heap, strict
    memory, chosen scheduling policy), drives a concurrent integer-set
    workload over ThreadScan, and folds all three detection layers into one
    {!outcome}:

    - the {!Sanitize} hook attributes any memory fault to a thread and a
      reclamation phase;
    - the {!Oracle} invariants run after quiescence;
    - the {!Linearize} checker validates the recorded operation history.

    Everything is a pure function of the {!spec} — any failing outcome is
    reproducible from its spec alone, which is what {!replay_command}
    prints. *)

type ds_kind =
  | List_ds
  | Hash_ds
  | Skip_ds
  | Lazy_ds
      (** the lock-based lazy list — mainly interesting under [--race],
          where its unsynchronized traversals stress the happens-before
          model, and as the home of the [elide-lock] seeded bug *)
  | Churn
      (** not a set: each worker owns a published slot, grabs random slots'
          nodes and holds them in frames across dereferences while
          replacing and retiring its own — the paper's Lemma-1 access
          pattern.  Cross-thread holds make mark/carry-over load-bearing,
          so protocol injections surface as attributed UAF faults; no
          operation history is recorded. *)

type policy =
  | Timed  (** cost-model schedule, one interleaving per seed *)
  | Uniform  (** uniformly random walk over active threads *)
  | Pct of int  (** PCT priority scheduling with [d] change points *)

(** A deliberately seeded synchronization/lifecycle bug, used to validate
    the {!Ts_analyze} checkers (each must fire, with the right
    attribution).  Each bug implies the structure it lives in — see
    {!bug_ds}. *)
type bug =
  | Bug_elide_lock
      (** lazy list mutates without its per-node locks: unordered
          write-write pairs on [next]/[marked] words *)
  | Bug_retire_early
      (** Michael list retires a marked node before unlinking it:
          retire-before-unlink, then double-retire when a traversal
          unlinks and retires it again *)
  | Bug_skip_fence
      (** epoch scheme announces its odd epoch without the fence
          (TSO-honestly: the store is deferred to the next operation
          boundary), so a cleanup frees under a live traversal:
          free-vs-read race + sanitizer use-after-free *)

(** Environment fault plan: the [victims] lowest-indexed workers self-inject
    after [after] completed operations.  Unlike {!Threadscan.inject} (a
    deliberate {e protocol} bug that must produce a violation), a fault is a
    legal execution — crashes and stalls are things the paper's signal-based
    protocol must survive, so a faulted run is held to the same oracles as a
    clean one. *)
type fault =
  | Fault_none
  | Fault_crash of { victims : int; after : int }
      (** victims die mid-workload ([SIGKILL]-style, no cleanup, still
          registered with the SMR). *)
  | Fault_stall of { victims : int; after : int; cycles : int }
      (** victims are descheduled for [cycles] virtual cycles, then resume
          and finish their operations. *)

type spec = {
  ds : ds_kind;
  scheme : string;
      (** reclamation scheme under check, by canonical
          {!Ts_scheme.Registry} id.  Any registered scheme runs the full
          detection stack; the ThreadScan-only layers (protocol
          injections, phase attribution, help-free conservation) engage
          exactly when the built scheme exposes a ThreadScan instance. *)
  threads : int;  (** worker threads (main is extra) *)
  ops : int;  (** operations per worker *)
  key_range : int;
  buffer_size : int;  (** ThreadScan per-thread delete buffer *)
  help_free : bool;
  collect_merge : bool;
      (** sealed-run collect with k-way merge publish
          ({!Threadscan.Config.collect_merge}) *)
  scan_filter : bool;
      (** Bloom-prefiltered TS-Scan ({!Threadscan.Config.scan_filter}) *)
  free_chunk : int;
      (** chunked helper-parallel free phase, 0 = legacy whole-queue claim
          ({!Threadscan.Config.free_chunk}) *)
  shards : int;
      (** reclamation shard count ({!Threadscan.Config.shards}); 0 here
          means "leave it to the registry default" — 1 (single master)
          for legacy threadscan, auto for the pipelined variant *)
  magazine : bool;
      (** per-thread allocator magazines in the simulated heap; [false]
          routes every small malloc/free through the central lists *)
  inject : Threadscan.inject;  (** deliberate bug, for checker validation *)
  fault : fault;  (** injected environment fault the protocol must survive *)
  policy : policy;
  seed : int;
  analyze : bool;
      (** run the {!Ts_analyze} happens-before + lifecycle checkers;
          their reports land first in [violations].  Note: the analyzer
          performs extra ops, so analyzed schedules differ from
          unanalyzed ones (both remain deterministic per seed). *)
  bug : bug option;  (** seed a deliberate bug (checker validation) *)
}

val default : spec
(** list over threadscan, 3 threads, 40 ops, keys 0..31, buffer 8, no help-free, pipeline
    toggles off (legacy single-stage phase), registry-default shards,
    magazines on, no injection, uniform policy, seed 0, no analysis, no
    seeded bug. *)

val ds_to_string : ds_kind -> string

val ds_of_string : string -> ds_kind option

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["timed"], ["uniform"], or ["pct:<d>"]. *)

val bug_to_string : bug -> string

val bug_of_string : string -> bug option
(** ["elide-lock"], ["retire-early"], or ["skip-fence"]. *)

val bug_ds : bug -> ds_kind
(** The structure a seeded bug lives in ([Bug_skip_fence] swaps the
    scheme, not the structure, and runs over the Michael list). *)

val inject_to_string : Threadscan.inject -> string

val inject_of_string : string -> Threadscan.inject option

val fault_to_string : fault -> string

val fault_of_string : string -> fault option
(** ["none"], ["crash:<victims>\@<after>"], or
    ["stall:<victims>\@<after>:<cycles>"]. *)

val replay_command : spec -> string
(** The exact shell command that reproduces this run. *)

type outcome = {
  spec : spec;
  violations : Report.violation list;  (** empty = the run checked out *)
  events : int;  (** operations recorded in the history *)
  phases : int;  (** reclamation phases completed *)
  steps : int;  (** scheduler steps consumed *)
  lin_keys : int;  (** keys the linearizability checker examined *)
  skipped_segments : int;  (** over-wide segments skipped conservatively *)
}

val failed : outcome -> bool

val run :
  ?configure:(Ts_sim.Runtime.t -> unit) -> (* tslint: allow facade -- callers tune the simulator under test *)
  ?trace:(Ts_sim.Trace.entry -> unit) -> (* tslint: allow facade -- trace sink receives simulator entries *)
  spec ->
  outcome
(** Deterministic: same spec, same outcome.

    @raise Invalid_argument when the scheme's registry capabilities rule
    the spec out: a protocol injection on a scheme without the ThreadScan
    collect protocol, or a neutralizing scheme paired with a lock-based
    structure ([Lazy_ds], [Skip_ds]).

    [configure] runs right after the runtime is created and before any
    thread executes — the place to install a {!Ts_sim.Runtime.set_scheduler_hook}
    or {!Ts_sim.Runtime.preload_choices} for guided/forked exploration.
    [trace] receives every trace entry (composes with [TSCHECK_TRACE]);
    use it to digest the schedule for differential checking. *)
