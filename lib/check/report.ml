module Mem = Ts_umem.Mem
module Set_intf = Ts_ds.Set_intf

type violation =
  | Sanitizer of { kind : Mem.fault_kind; addr : int; tid : int; phase : int }
  | Oracle of { what : string; detail : string }
  | Non_linearizable of { ds : string; key : int; ops : Set_intf.event list }
  | Crash of { what : string }
  | Race of Ts_analyze.Analyze.race
  | Lifecycle of Ts_analyze.Analyze.lifecycle

let op_kind_to_string = function
  | Set_intf.Op_insert -> "insert"
  | Set_intf.Op_remove -> "remove"
  | Set_intf.Op_contains -> "contains"

let pp_event ppf (e : Set_intf.event) =
  Fmt.pf ppf "[%d,%d] t%d %s(%d)=%b" e.t0 e.t1 e.tid (op_kind_to_string e.kind) e.key e.result

let pp ppf = function
  | Sanitizer { kind; addr; tid; phase } ->
      Fmt.pf ppf "sanitizer: %s at addr %d (tid %d, phase %d)" (Mem.fault_to_string kind) addr
        tid phase
  | Oracle { what; detail } -> Fmt.pf ppf "oracle: %s (%s)" what detail
  | Non_linearizable { ds; key; ops } ->
      Fmt.pf ppf "non-linearizable: %s key %d: %a" ds key
        Fmt.(list ~sep:(any "; ") pp_event)
        ops
  | Crash { what } -> Fmt.pf ppf "crash: %s" what
  | Race r -> Ts_analyze.Analyze.pp_race ppf r
  | Lifecycle l -> Ts_analyze.Analyze.pp_lifecycle ppf l

let to_string v = Fmt.str "%a" pp v
