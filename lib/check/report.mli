(** What the checker can find.

    A violation is the checker's unit of output: exactly what went wrong,
    with enough context to say so in one line.  The scenario driver
    aggregates the three detection layers (heap sanitizer, SMR oracle,
    linearizability check) into a single list of these. *)

type violation =
  | Sanitizer of { kind : Ts_umem.Mem.fault_kind; addr : int; tid : int; phase : int }
      (** A memory fault the heap sanitizer observed, attributed to the
          thread being stepped and the reclamation phase in progress. *)
  | Oracle of { what : string; detail : string }
      (** A broken SMR invariant (free conservation, eventual reclamation,
          double retire, heap baseline). *)
  | Non_linearizable of { ds : string; key : int; ops : Ts_ds.Set_intf.event list }
      (** No legal sequential order explains the per-key history [ops]. *)
  | Crash of { what : string }
      (** The run aborted (thread failure, deadlock, step limit) before any
          finer-grained layer could attribute a cause. *)
  | Race of Ts_analyze.Analyze.race
      (** An unordered access pair the happens-before detector reported
          (only present when the scenario ran with [analyze = true]). *)
  | Lifecycle of Ts_analyze.Analyze.lifecycle
      (** An SMR lifecycle violation (retire-before-unlink, double-retire,
          access-after-retire), attributed to the owning scheme. *)

val pp_event : Format.formatter -> Ts_ds.Set_intf.event -> unit
(** ["[t0,t1] t<tid> op(key)=result"]. *)

val pp : Format.formatter -> violation -> unit

val to_string : violation -> string
