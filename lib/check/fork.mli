(** Forked schedule-tree exploration: prefix sharing via process snapshots.

    Replay-from-seed re-executes every shared prefix once per schedule.
    This explorer runs one trunk schedule per seed and, at scheduling
    decision points, snapshots the entire simulator — live fibers
    included — by forking the process: each child forces one alternative
    thread at the fork point, then falls back to the configured policy,
    exploring a distinct schedule while inheriting the trunk's prefix
    without re-executing it.  Each trunk runs twice — a scout pass
    records its exact decision points, a fork pass replays the identical
    schedule and forks leaves at the deepest recorded points, where the
    shared prefix per leaf is maximal.  Siblings at a point are pruned
    when their forced first step commutes (footprint-independent, see
    {!Ts_sim.Runtime.conflicts}) with every explored sibling's.

    Exploration is sequential and deterministic: statistics are a pure
    function of the spec family and {!options}.

    Replay-from-seed stays the oracle: in differential mode every trunk
    samples leaves (choice log + trace digest) and replays them from the
    seed via {!Ts_sim.Runtime.preload_choices}, demanding byte-identical
    traces and identical outcome counters.  See docs/CHECKING.md,
    "Forked exploration". *)

type options = {
  fork_factor : int;  (** max alternatives forked per decision point *)
  stride : int;  (** min step spacing between chosen fork points (0 = 1) *)
  window : float;  (** fraction of the trunk below which no fork is placed *)
  prune : bool;  (** sleep-set pruning of commuting alternatives *)
  differential : int;  (** leaves per trunk replayed from seed and compared (0 = off) *)
  step_budget : int;  (** stop forking once this many fresh steps ran (0 = unlimited) *)
}

val default_options : options
(** factor 3, stride 1, window 0.5, pruning on, differential off,
    no step budget. *)

type stats = {
  trunks : int;  (** seed-family trunk schedules run *)
  explored : int;  (** schedules run to completion (trunks + forked) *)
  pruned : int;  (** forked schedules abandoned by sleep-set pruning *)
  forks : int;  (** process snapshots taken *)
  shared_steps : int;  (** prefix steps inherited instead of re-executed *)
  fresh_steps : int;  (** steps actually executed (including scout and fork passes) *)
  replay_steps : int;  (** steps replay-from-seed would spend on the same schedules *)
  events : int;
  phases : int;
  lin_keys : int;
  skipped_segments : int;
  failed : int;  (** schedules with violations *)
  failures : (Scenario.outcome * int array) list;
      (** failing outcome + its recorded choice log (capped), replayable
          via {!Ts_sim.Runtime.preload_choices} *)
  errors : int;  (** forked children that died without reporting *)
  diff_checked : int;  (** leaves replayed from seed by the differential oracle *)
  diff_mismatches : int;  (** leaves whose replay diverged (must be 0) *)
  diff_steps : int;  (** replay steps the oracle spent (kept out of [fresh_steps]) *)
}

val speedup : stats -> float
(** [replay_steps / fresh_steps] — how many times over a replay-from-seed
    sweep of the same schedules would have re-executed shared work. *)

val explore : ?opts:options -> schedules:int -> Scenario.spec -> stats
(** Explore [schedules] schedules of one spec's tree: the spec's own
    trunk plus leaves forked at its deepest decision points. *)

val sweep :
  ?progress:(int -> unit) ->
  ?opts:options ->
  base:Scenario.spec ->
  schedules:int ->
  seed0:int ->
  pct_depth:int ->
  unit ->
  stats
(** Forked counterpart of {!Explore.sweep} over the standard seed
    family: a few trunks (even seeds {!Scenario.Uniform}, odd seeds
    {!Scenario.Pct}[ pct_depth]) split the [schedules] budget and each
    explores its slice by forking.  [progress] receives the cumulative
    explored count after every trunk. *)
