(** Post-run SMR invariants (the oracle layer of the checker).

    Checked once the run has quiesced (all workers joined, every key
    removed, [flush] driven to completion):

    - [freed <= retired] — nothing is freed that was never retired;
    - [helped_frees + reclaimer_frees = freed] — every free is accounted
      to exactly one freeing side (the §7 help-free conservation law);
    - [outstanding = 0] — every unreachable retired node was eventually
      freed (the set is empty, so all retired nodes are unreachable);
    - the set really is empty;
    - allocator [live_blocks] is back to the post-construction baseline —
      no leak, no over-free.

    "Never free a reachable node" is not checked here: it is enforced
    {e continuously} by the strict heap + sanitizer, which turn any access
    to a prematurely freed node into a fault the {!Sanitize} layer
    attributes. *)

val check :
  ?max_leak:int ->
  ?ts:Threadscan.t ->
  counters:Ts_smr.Smr.counters ->
  alloc:Ts_umem.Alloc.t ->
  baseline_live:int ->
  final_list:(int * int) list ->
  unit ->
  Report.violation list
(** Empty list = all invariants hold.  [ts] enables the ThreadScan-only
    invariants (help-free conservation, scheme-side outstanding count);
    without it, outstanding is [retired - freed] from the shared
    counters.  [max_leak] (default 0) relaxes the
    [outstanding] and live-heap checks by that many nodes: a thread crashed
    mid-[retire] takes its in-flight pointer with it, so runs that kill [k]
    threads budget a bounded leak of [k] — any excess (or any use-after-free,
    which the sanitizer catches separately) is still a violation. *)
