(** Linearizability checking for integer-set histories.

    The checker exploits two structural facts to stay fast:

    - {b per-key decomposition}: set operations on different keys commute,
      so the history is linearizable iff every per-key sub-history is;
    - {b quiescent cuts}: within a key, whenever every earlier operation
      responded before the next was invoked, any linearization must respect
      the cut — the history splits into small independent segments.

    Each segment is searched Wing & Gong-style: pick any operation minimal
    in real-time order whose recorded result matches the sequential
    specification (per key the state is one bool), recurse, memoised on
    (chosen-set, state).  The feasible end states of one segment seed the
    next.  Timestamps come from {!Ts_sim.Runtime.steps_now}: the simulator
    is sequentially consistent in step order, so [t1 < t0'] is exactly the
    real-time precedence linearizability must preserve. *)

type result = {
  keys : int;  (** distinct keys checked *)
  ops : int;  (** total operations in the history *)
  skipped_segments : int;
      (** segments wider than the search bound, skipped conservatively
          (both start states assumed feasible afterwards) *)
  violation : (int * Ts_ds.Set_intf.event list) option;
      (** the smallest offending key and its full per-key history *)
}

val check : Ts_ds.Set_intf.event list -> result
(** Check a complete history (all operations responded).  Deterministic:
    keys are examined in increasing order and the first violating key is
    reported. *)

val segments : Ts_ds.Set_intf.event list -> Ts_ds.Set_intf.event list list
(** The quiescent-cut segmentation of one key's t0-sorted history
    (exposed for tests). *)
