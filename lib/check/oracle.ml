module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr

(* Post-run SMR invariants.  All reads are control-plane (OCaml-side
   counters and allocator metadata); the run is over, nothing races.
   [max_leak] is the crash-leak budget: a thread killed mid-[retire] takes
   its in-flight pointer with it (the reference exists only in its dead
   hands), so a run with [k] crashed threads may legitimately end with up
   to [k] nodes never freed — a bounded leak, never a use-after-free. *)
let check ?(max_leak = 0) ?ts ~(counters : Smr.counters) ~alloc ~baseline_live ~final_list () =
  let v = ref [] in
  let add what detail = v := Report.Oracle { what; detail } :: !v in
  let retired = counters.Smr.retired and freed = counters.Smr.freed in
  if freed > retired then add "freed exceeds retired" (Fmt.str "retired=%d freed=%d" retired freed);
  (* The help-free conservation law is ThreadScan bookkeeping; for every
     other scheme outstanding falls back to the shared counters (which is
     what [Threadscan.outstanding] computes anyway). *)
  (match ts with
  | None -> ()
  | Some ts ->
      let helped = Threadscan.helped_frees ts and burden = Threadscan.reclaimer_frees ts in
      if helped + burden <> freed then
        add "free accounting mismatch"
          (Fmt.str "helped=%d + reclaimer=%d <> freed=%d" helped burden freed));
  let outstanding =
    match ts with Some ts -> Threadscan.outstanding ts | None -> retired - freed
  in
  if outstanding > max_leak then
    add "retired nodes never freed"
      (Fmt.str "outstanding=%d after flush (crash-leak budget %d)" outstanding max_leak);
  if final_list <> [] then
    add "set not empty after removing every key"
      (Fmt.str "%d keys left" (List.length final_list));
  let live = Alloc.live_blocks alloc in
  if live - baseline_live > max_leak || live < baseline_live then
    add "heap not back to baseline"
      (Fmt.str "live=%d baseline=%d (crash-leak budget %d)" live baseline_live max_leak);
  List.rev !v
