module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr

(* Post-run SMR invariants.  All reads are control-plane (OCaml-side
   counters and allocator metadata); the run is over, nothing races. *)
let check ~ts ~(counters : Smr.counters) ~alloc ~baseline_live ~final_list =
  let v = ref [] in
  let add what detail = v := Report.Oracle { what; detail } :: !v in
  let retired = counters.Smr.retired and freed = counters.Smr.freed in
  if freed > retired then add "freed exceeds retired" (Fmt.str "retired=%d freed=%d" retired freed);
  let helped = Threadscan.helped_frees ts and burden = Threadscan.reclaimer_frees ts in
  if helped + burden <> freed then
    add "free accounting mismatch"
      (Fmt.str "helped=%d + reclaimer=%d <> freed=%d" helped burden freed);
  let outstanding = Threadscan.outstanding ts in
  if outstanding <> 0 then
    add "retired nodes never freed" (Fmt.str "outstanding=%d after flush" outstanding);
  if final_list <> [] then
    add "set not empty after removing every key"
      (Fmt.str "%d keys left" (List.length final_list));
  let live = Alloc.live_blocks alloc in
  if live <> baseline_live then
    add "heap not back to baseline" (Fmt.str "live=%d baseline=%d" live baseline_live);
  List.rev !v
