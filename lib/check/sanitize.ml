module Runtime = Ts_sim.Runtime (* tslint: allow facade -- fault capture hooks into the simulator heap *)
module Mem = Ts_umem.Mem

type fault = { kind : Mem.fault_kind; addr : int; tid : int; phase : int }

type t = { mutable first : fault option }

let install rt ~phase_of =
  let st = { first = None } in
  Mem.set_fault_hook (Runtime.mem rt) (fun kind addr ->
      if st.first = None then begin
        let tid = match Runtime.running_tid rt with Some t -> t | None -> -1 in
        st.first <- Some { kind; addr; tid; phase = phase_of () }
      end);
  st

let first t = t.first

let violation t =
  match t.first with
  | None -> None
  | Some { kind; addr; tid; phase } -> Some (Report.Sanitizer { kind; addr; tid; phase })
