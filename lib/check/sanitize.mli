(** Fault-context capture for the heap sanitizer.

    The sanitized allocator ({!Ts_umem.Alloc} with [sanitize]) and the
    strict memory store already detect use-after-free, double free, wild
    accesses and canary clobbers — but a strict-mode raise unwinds the
    faulting fiber before anyone can ask {e who} faulted and {e when}.
    This module installs a {!Ts_umem.Mem.set_fault_hook} that snapshots the
    running thread id and the current reclamation phase at the instant of
    the first fault, while the simulator state is still intact. *)

type fault = { kind : Ts_umem.Mem.fault_kind; addr : int; tid : int; phase : int }

type t

val install : Ts_sim.Runtime.t -> phase_of:(unit -> int) -> t (* tslint: allow facade -- capture hook takes the simulator runtime *)
(** Install the capture hook on [rt]'s heap.  [phase_of] reports the
    reclamation phase in progress (supply [-1] until the scheme exists). *)

val first : t -> fault option
(** The first fault of the run, if any. *)

val violation : t -> Report.violation option
