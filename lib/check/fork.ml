(* Forked schedule-tree exploration.

   A sweep that replays every schedule from its seed re-executes every
   shared prefix once per schedule.  This explorer shares prefixes for
   real: it runs a handful of trunk schedules and, at scheduling decision
   points, snapshots the whole simulator — live fibers included — by
   forking the process.  Each forked leaf forces one alternative thread
   at its fork point and then falls back to the configured policy, so it
   explores a distinct complete schedule while inheriting the trunk's
   first [s] steps without re-executing them.

   Process snapshots rather than in-heap savepoints because OCaml's
   one-shot continuations cannot be cloned: a fiber suspended mid-effect
   exists once per address space, so the only way to branch a *running*
   simulation is to branch the address space.  [Runtime.savepoint] /
   [restore] (passive state copies, verified by replay) remain the
   in-process oracle machinery; [fork] is the throughput mechanism.

   Each trunk runs twice:

   - a *scout* pass records every decision point (step, runnable set)
     plus the trunk's own choice log and outcome;
   - a *fork* pass replays the identical schedule (same spec, the hook
     defers everywhere) and forks leaves at the points the plan chose.

   The plan spends the schedule quota at the trunk's deepest decision
   points first.  Throughput is bounded by how late a schedule can still
   diverge: every leaf must execute its own suffix — at minimum the
   single-threaded teardown after the last decision point — so forking
   as deep as possible maximizes the shared prefix per leaf.  The two
   trunk passes are the price of knowing those points exactly instead of
   estimating them across seeds; they amortize over the leaves.

   Exploration is sequential and deterministic: a parent forks one leaf,
   drains its report from a pipe, reaps it, and only then forks the next
   sibling — so sweep statistics are a pure function of the spec family
   and the options, and cram tests can pin them.

   Sleep-set pruning: when a leaf's forced first step turns out to be
   independent (no footprint conflict, see {!Ts_sim.Runtime.conflicts})
   of the first steps of every already-explored sibling at the same fork
   point, the orderings it would sample differ from an explored sibling
   only by commuting that step — so the leaf abandons the run after one
   step instead of executing its whole suffix.  Because exploration is
   sampling (policies randomize the suffix), pruning is a redundancy
   heuristic over samples, not a soundness-bearing reduction: the
   unpruned trunks and the replay-from-seed sweeps remain ground truth.
   docs/CHECKING.md states the argument in full.

   The differential mode is the oracle for the whole mechanism: leaves
   record their choice log and a digest of their trace; the root replays
   each sampled leaf from the seed via [Runtime.preload_choices] and
   requires a byte-identical trace and identical outcome counters. *)

module Runtime = Ts_sim.Runtime (* tslint: allow facade -- schedule forking preloads simulator choice points *)
module Trace = Ts_sim.Trace (* tslint: allow facade -- replay determinism is checked by byte-comparing traces *)

type options = {
  fork_factor : int;  (** max alternatives forked per decision point *)
  stride : int;  (** min step spacing between chosen fork points (0 = 1) *)
  window : float;  (** fraction of the trunk below which no fork is placed *)
  prune : bool;  (** sleep-set pruning of commuting alternatives *)
  differential : int;  (** leaves per trunk to verify against replay-from-seed (0 = off) *)
  step_budget : int;  (** stop forking once this many fresh steps ran (0 = unlimited) *)
}

let default_options =
  { fork_factor = 3; stride = 0; window = 0.5; prune = true; differential = 0; step_budget = 0 }

(* A leaf schedule captured for differential verification: enough to
   replay it from the seed and compare byte-for-byte. *)
type sample = {
  s_log : int array;  (** full choice log, replayable via [preload_choices] *)
  s_digest : string;  (** digest of the rendered trace *)
  s_steps : int;
  s_events : int;
  s_phases : int;
  s_failed : bool;
}

(* What a forked leaf reports to the trunk (marshaled through a pipe). *)
type report = {
  r_explored : int;
  r_pruned : int;
  r_shared : int;  (** prefix steps inherited instead of re-executed *)
  r_fresh : int;  (** steps actually executed by the leaf *)
  r_replay : int;  (** steps replay-from-seed would spend on the same schedule *)
  r_events : int;
  r_phases : int;
  r_keys : int;
  r_skipped : int;
  r_failed : int;
  r_failures : (Scenario.outcome * int array) list;  (** failing outcome + its choice log *)
  r_samples : sample list;
  r_errors : int;  (** leaves that died without reporting *)
  r_first_fp : Runtime.footprint option;  (** footprint of the leaf's forced first step *)
}

let empty_report =
  {
    r_explored = 0;
    r_pruned = 0;
    r_shared = 0;
    r_fresh = 0;
    r_replay = 0;
    r_events = 0;
    r_phases = 0;
    r_keys = 0;
    r_skipped = 0;
    r_failed = 0;
    r_failures = [];
    r_samples = [];
    r_errors = 0;
    r_first_fp = None;
  }

let merge a b =
  {
    r_explored = a.r_explored + b.r_explored;
    r_pruned = a.r_pruned + b.r_pruned;
    r_shared = a.r_shared + b.r_shared;
    r_fresh = a.r_fresh + b.r_fresh;
    r_replay = a.r_replay + b.r_replay;
    r_events = a.r_events + b.r_events;
    r_phases = a.r_phases + b.r_phases;
    r_keys = a.r_keys + b.r_keys;
    r_skipped = a.r_skipped + b.r_skipped;
    r_failed = a.r_failed + b.r_failed;
    r_failures = a.r_failures @ b.r_failures;
    r_samples = a.r_samples @ b.r_samples;
    r_errors = a.r_errors + b.r_errors;
    r_first_fp = a.r_first_fp;
  }

(* Caps keep pipe payloads and aggregate reports bounded. *)
let max_failures = 16

let rec take n = function [] -> [] | _ when n <= 0 -> [] | x :: tl -> x :: take (n - 1) tl

exception Pruned

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid

let read_report fd =
  let ic = Unix.in_channel_of_descr fd in
  let rep =
    try (Marshal.from_channel ic : report) with _ -> { empty_report with r_errors = 1 }
  in
  (try close_in ic with _ -> ());
  rep

(* Forked children share the parent's output buffers; flush before every
   fork so nothing is emitted twice. *)
let flush_std () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  flush stdout;
  flush stderr

let mk_trace buf e = Buffer.add_string buf (Fmt.str "%a@." Trace.pp e)

(* ------------------------------ scout pass ------------------------------ *)

type scout = {
  sc_points : (int * int array) list;  (** decision points, deepest first *)
  sc_log : int array;  (** the trunk's choice log *)
  sc_len : int;  (** trunk run length in steps *)
  sc_outcome : Scenario.outcome;
  sc_sample : sample option;
}

let scout_run ~differential spec =
  let pts = ref [] in
  let the_rt = ref None in
  let tracebuf = if differential > 0 then Some (Buffer.create 4096) else None in
  let hook rt cands =
    pts := (Runtime.step_count rt, Array.copy cands) :: !pts;
    -1
  in
  let o =
    Scenario.run
      ?trace:(Option.map mk_trace tracebuf)
      ~configure:(fun rt ->
        the_rt := Some rt;
        Runtime.set_scheduler_hook rt (Some hook))
      spec
  in
  let log = Runtime.choices (Option.get !the_rt) in
  let sample =
    Option.map
      (fun b ->
        {
          s_log = log;
          s_digest = Digest.to_hex (Digest.string (Buffer.contents b));
          s_steps = o.Scenario.steps;
          s_events = o.Scenario.events;
          s_phases = o.Scenario.phases;
          s_failed = Scenario.failed o;
        })
      tracebuf
  in
  {
    sc_points = !pts;  (* accumulated backwards: already deepest first *)
    sc_log = log;
    sc_len = o.Scenario.steps;
    sc_outcome = o;
    sc_sample = sample;
  }

(* Spend the leaf quota at the deepest decision points first: every leaf
   pays its own suffix, so depth is throughput.  At each chosen point the
   alternatives are the runnable threads minus the trunk's own pick
   (forcing the trunk's pick without its policy bookkeeping would explore
   a near-duplicate under Pct/Timed and an rng-shifted twin under
   Uniform).  Points closer than [stride] to an already-chosen one are
   skipped. *)
let build_plan ~opts ~quota scout =
  let stride = max 1 opts.stride in
  let min_depth = int_of_float (opts.window *. float_of_int scout.sc_len) in
  let plan : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let needed = ref quota in
  let planned = ref 0 in
  let last_s = ref max_int in
  List.iter
    (fun (s, cands) ->
      if !needed > 0 && s >= min_depth && s + stride <= !last_s then begin
        let trunk_pick = Runtime.choice_tid scout.sc_log.(s) in
        let alts = Array.to_list cands |> List.filter (fun t -> t <> trunk_pick) in
        (* rotate so successive points spread over the thread set *)
        let alts =
          match alts with
          | [] -> []
          | _ ->
              let n = List.length alts in
              let r = s mod n in
              let rec rot i = function
                | [] -> []
                | x :: tl -> if i < r then rot (i + 1) tl @ [ x ] else x :: tl
              in
              rot 0 alts
        in
        let alts = take (min opts.fork_factor !needed) alts in
        if alts <> [] then begin
          Hashtbl.replace plan s alts;
          needed := !needed - List.length alts;
          planned := !planned + List.length alts;
          last_s := s
        end
      end)
    scout.sc_points;
  (plan, !planned)

(* ------------------------------ fork pass ------------------------------- *)

(* Replay the trunk schedule (the hook defers everywhere, so the run is
   step-identical to the scout) and fork one leaf per planned
   alternative.  Returns the merged leaf reports plus this pass's own
   step cost. *)
let fork_pass ~opts ~plan ~budget spec =
  let the_rt = ref None in
  let is_leaf = ref false in
  let leaf_out = ref Unix.stderr in
  let fork_step = ref 0 in
  let pending = ref None in
  let first_fp = ref None in
  let children = ref empty_report in
  let tracebuf = if opts.differential > 0 then Some (Buffer.create 4096) else None in
  let hook rt cands =
    if !is_leaf then begin
      (* our forced first step has executed by now: learn its footprint,
         and abandon the run if it commutes with every explored sibling *)
      (match !pending with
      | Some (fs, sleep) when Runtime.step_count rt > fs ->
          pending := None;
          Option.iter
            (fun fp ->
              first_fp := Some fp;
              if
                opts.prune && sleep <> []
                && List.for_all (fun g -> not (Runtime.conflicts fp g)) sleep
              then raise Pruned)
            (Runtime.step_footprint rt fs)
      | _ -> ());
      -1
    end
    else begin
      let s = Runtime.step_count rt in
      match Hashtbl.find_opt plan s with
      | None -> -1
      | Some alts ->
          Hashtbl.remove plan s;
          let rec spawn alts sleep =
            match alts with
            | [] -> -1
            | alt :: rest ->
                if
                  (opts.step_budget > 0 && !children.r_fresh + s >= budget)
                  || not (Array.exists (fun c -> c = alt) cands)
                then -1 (* budget exhausted, or the replay drifted: stop forking *)
                else begin
                  flush_std ();
                  let rd, wr = Unix.pipe () in
                  match Unix.fork () with
                  | 0 ->
                      (* leaf: we *are* the alternative branch now — same
                         live fibers, heap and trace prefix *)
                      Unix.close rd;
                      is_leaf := true;
                      leaf_out := wr;
                      fork_step := s;
                      pending := Some (s, (if opts.prune then sleep else []));
                      first_fp := None;
                      children := empty_report;
                      alt
                  | pid ->
                      Unix.close wr;
                      let rep = read_report rd in
                      reap pid;
                      children := merge !children rep;
                      let sleep =
                        match rep.r_first_fp with Some fp -> fp :: sleep | None -> sleep
                      in
                      spawn rest sleep
                end
          in
          spawn alts []
    end
  in
  let leaf_report rep =
    (try
       let oc = Unix.out_channel_of_descr !leaf_out in
       Marshal.to_channel oc
         ({
            rep with
            r_failures = take max_failures rep.r_failures;
            r_samples = take opts.differential rep.r_samples;
            r_first_fp = !first_fp;
          }
           : report)
         [];
       flush oc
     with _ -> ());
    flush_std ();
    Unix._exit 0
  in
  match
    Scenario.run
      ?trace:(Option.map mk_trace tracebuf)
      ~configure:(fun rt ->
        the_rt := Some rt;
        Runtime.set_scheduler_hook rt (Some hook))
      spec
  with
  | o ->
      if not !is_leaf then (!children, o.Scenario.steps)
      else
        (* a leaf ran to completion: one fresh schedule *)
        let rt = Option.get !the_rt in
        let log = Runtime.choices rt in
        let failed = Scenario.failed o in
        leaf_report
          (merge
             {
               empty_report with
               r_explored = 1;
               r_shared = !fork_step;
               r_fresh = o.Scenario.steps - !fork_step;
               r_replay = o.Scenario.steps;
               r_events = o.Scenario.events;
               r_phases = o.Scenario.phases;
               r_keys = o.Scenario.lin_keys;
               r_skipped = o.Scenario.skipped_segments;
               r_failed = (if failed then 1 else 0);
               r_failures = (if failed then [ (o, log) ] else []);
               r_samples =
                 (match tracebuf with
                 | None -> []
                 | Some b ->
                     [
                       {
                         s_log = log;
                         s_digest = Digest.to_hex (Digest.string (Buffer.contents b));
                         s_steps = o.Scenario.steps;
                         s_events = o.Scenario.events;
                         s_phases = o.Scenario.phases;
                         s_failed = failed;
                       };
                     ]);
             }
             !children)
  | exception Pruned ->
      let fresh =
        match !the_rt with Some rt -> Runtime.step_count rt - !fork_step | None -> 0
      in
      leaf_report (merge { empty_report with r_pruned = 1; r_fresh = fresh } !children)
  | exception e ->
      (* never let a leaf escape into the trunk's control flow *)
      if !is_leaf then leaf_report { empty_report with r_errors = 1 } else raise e

(* ------------------------- differential oracle ------------------------- *)

(* Replay a sampled leaf from the seed ([preload_choices] forces the
   recorded schedule, replicating policy side effects bit-for-bit) and
   demand a byte-identical trace and identical outcome counters. *)
let verify_sample spec (s : sample) =
  let buf = Buffer.create 4096 in
  let o =
    Scenario.run
      ~configure:(fun rt -> Runtime.preload_choices rt s.s_log)
      ~trace:(mk_trace buf) spec
  in
  let digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  let ok =
    String.equal digest s.s_digest
    && o.Scenario.steps = s.s_steps && o.Scenario.events = s.s_events
    && o.Scenario.phases = s.s_phases
    && Scenario.failed o = s.s_failed
  in
  (ok, o.Scenario.steps)

(* ------------------------------- stats --------------------------------- *)

type stats = {
  trunks : int;
  explored : int;
  pruned : int;
  forks : int;
  shared_steps : int;
  fresh_steps : int;
  replay_steps : int;
  events : int;
  phases : int;
  lin_keys : int;
  skipped_segments : int;
  failed : int;
  failures : (Scenario.outcome * int array) list;
  errors : int;
  diff_checked : int;
  diff_mismatches : int;
  diff_steps : int;
}

let speedup st =
  if st.fresh_steps <= 0 then 1.0 else float_of_int st.replay_steps /. float_of_int st.fresh_steps

let empty_stats =
  {
    trunks = 0;
    explored = 0;
    pruned = 0;
    forks = 0;
    shared_steps = 0;
    fresh_steps = 0;
    replay_steps = 0;
    events = 0;
    phases = 0;
    lin_keys = 0;
    skipped_segments = 0;
    failed = 0;
    failures = [];
    errors = 0;
    diff_checked = 0;
    diff_mismatches = 0;
    diff_steps = 0;
  }

(* One trunk: scout, plan, fork, then feed sampled leaves to the
   differential oracle.  [quota] counts schedules (>= 1: the trunk's own
   plus forked leaves). *)
let run_trunk ~opts ~quota ~budget spec st =
  let sc = scout_run ~differential:opts.differential spec in
  let plan, planned = build_plan ~opts ~quota:(quota - 1) sc in
  let rep, pass_steps =
    if planned = 0 then (empty_report, 0) else fork_pass ~opts ~plan ~budget spec
  in
  let o = sc.sc_outcome in
  let trunk_failed = Scenario.failed o in
  let rep =
    merge
      {
        empty_report with
        r_explored = 1;
        r_fresh = o.Scenario.steps + pass_steps;
        r_replay = o.Scenario.steps;
        r_events = o.Scenario.events;
        r_phases = o.Scenario.phases;
        r_keys = o.Scenario.lin_keys;
        r_skipped = o.Scenario.skipped_segments;
        r_failed = (if trunk_failed then 1 else 0);
        r_failures = (if trunk_failed then [ (o, sc.sc_log) ] else []);
        r_samples = Option.to_list sc.sc_sample;
      }
      rep
  in
  let checked, mismatches, dsteps =
    List.fold_left
      (fun (c, m, d) s ->
        let ok, steps = verify_sample spec s in
        (c + 1, (if ok then m else m + 1), d + steps))
      (0, 0, 0)
      (take opts.differential rep.r_samples)
  in
  {
    trunks = st.trunks + 1;
    explored = st.explored + rep.r_explored;
    pruned = st.pruned + rep.r_pruned;
    forks = st.forks + rep.r_explored - 1 + rep.r_pruned + rep.r_errors;
    shared_steps = st.shared_steps + rep.r_shared;
    fresh_steps = st.fresh_steps + rep.r_fresh;
    replay_steps = st.replay_steps + rep.r_replay;
    events = st.events + rep.r_events;
    phases = st.phases + rep.r_phases;
    lin_keys = st.lin_keys + rep.r_keys;
    skipped_segments = st.skipped_segments + rep.r_skipped;
    failed = st.failed + rep.r_failed;
    failures = st.failures @ take max_failures rep.r_failures;
    errors = st.errors + rep.r_errors;
    diff_checked = st.diff_checked + checked;
    diff_mismatches = st.diff_mismatches + mismatches;
    diff_steps = st.diff_steps + dsteps;
  }

let explore ?(opts = default_options) ~schedules spec =
  let schedules = max 1 schedules in
  let budget = if opts.step_budget > 0 then opts.step_budget else max_int in
  run_trunk ~opts ~quota:schedules ~budget spec empty_stats

(* A forked sweep over the standard seed family: a few trunks (even
   seeds Uniform, odd seeds PCT, like {!Explore.sweep_specs}) each
   exploring a slice of the schedule budget. *)
let sweep ?(progress = fun _ -> ()) ?(opts = default_options) ~base ~schedules ~seed0
    ~pct_depth () =
  let schedules = max 1 schedules in
  let trunks = min schedules (max 2 (schedules / 512)) in
  let quota0 = schedules / trunks in
  let st = ref empty_stats in
  (try
     for i = 0 to trunks - 1 do
       if opts.step_budget > 0 && !st.fresh_steps >= opts.step_budget then raise Exit;
       let budget =
         if opts.step_budget > 0 then opts.step_budget - !st.fresh_steps else max_int
       in
       let policy = if i mod 2 = 0 then Scenario.Uniform else Scenario.Pct pct_depth in
       let quota = quota0 + (if i < schedules mod trunks then 1 else 0) in
       let spec = { base with Scenario.policy; seed = seed0 + i } in
       st := run_trunk ~opts ~quota ~budget spec !st;
       progress !st.explored
     done
   with Exit -> ());
  !st
