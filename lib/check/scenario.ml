module Runtime = Ts_sim.Runtime (* tslint: allow facade -- the checker owns the simulator it explores *)
module Frame = Ts_sim.Frame (* tslint: allow facade -- frame inspection for the root-coverage oracle *)
module Alloc = Ts_umem.Alloc
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Set_intf = Ts_ds.Set_intf
module Registry = Ts_scheme.Registry

type ds_kind = List_ds | Hash_ds | Skip_ds | Lazy_ds | Churn

type policy = Timed | Uniform | Pct of int

type bug = Bug_elide_lock | Bug_retire_early | Bug_skip_fence

type fault =
  | Fault_none
  | Fault_crash of { victims : int; after : int }
  | Fault_stall of { victims : int; after : int; cycles : int }

type spec = {
  ds : ds_kind;
  scheme : string;
  threads : int;
  ops : int;
  key_range : int;
  buffer_size : int;
  help_free : bool;
  collect_merge : bool;
  scan_filter : bool;
  free_chunk : int;
  shards : int;
  magazine : bool;
  inject : Threadscan.inject;
  fault : fault;
  policy : policy;
  seed : int;
  analyze : bool;
  bug : bug option;
}

let default =
  {
    ds = List_ds;
    scheme = "threadscan";
    threads = 3;
    ops = 40;
    key_range = 32;
    buffer_size = 8;
    help_free = false;
    collect_merge = false;
    scan_filter = false;
    free_chunk = 0;
    shards = 0;
    magazine = true;
    inject = Threadscan.No_fault;
    fault = Fault_none;
    policy = Uniform;
    seed = 0;
    analyze = false;
    bug = None;
  }

let ds_to_string = function
  | List_ds -> "list"
  | Hash_ds -> "hash"
  | Skip_ds -> "skip"
  | Lazy_ds -> "lazy"
  | Churn -> "churn"

let ds_of_string = function
  | "list" -> Some List_ds
  | "hash" -> Some Hash_ds
  | "skip" | "skiplist" -> Some Skip_ds
  | "lazy" -> Some Lazy_ds
  | "churn" -> Some Churn
  | _ -> None

let bug_to_string = function
  | Bug_elide_lock -> "elide-lock"
  | Bug_retire_early -> "retire-early"
  | Bug_skip_fence -> "skip-fence"

let bug_of_string = function
  | "elide-lock" -> Some Bug_elide_lock
  | "retire-early" -> Some Bug_retire_early
  | "skip-fence" -> Some Bug_skip_fence
  | _ -> None

(* The structure a seeded bug lives in: the checker forces this so
   [--bug retire-early] cannot be paired with a structure that never
   exercises the bug. *)
let bug_ds = function
  | Bug_elide_lock -> Lazy_ds
  | Bug_retire_early | Bug_skip_fence -> List_ds

let policy_to_string = function
  | Timed -> "timed"
  | Uniform -> "uniform"
  | Pct d -> Fmt.str "pct:%d" d

let policy_of_string s =
  match s with
  | "timed" -> Some Timed
  | "uniform" -> Some Uniform
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "pct" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some d when d >= 0 -> Some (Pct d)
          | _ -> None)
      | _ -> None)

let inject_to_string = function
  | Threadscan.No_fault -> "none"
  | Threadscan.Skip_carryover -> "skip-carryover"
  | Threadscan.Skip_ack_wait -> "skip-ack-wait"
  | Threadscan.Skip_proxy_scan -> "skip-proxy-scan"
  | Threadscan.Crash_mid_phase -> "crash-mid-phase"
  | Threadscan.Stall_mid_phase -> "stall-mid-phase"

let inject_of_string = function
  | "none" -> Some Threadscan.No_fault
  | "skip-carryover" -> Some Threadscan.Skip_carryover
  | "skip-ack-wait" -> Some Threadscan.Skip_ack_wait
  | "skip-proxy-scan" -> Some Threadscan.Skip_proxy_scan
  | "crash-mid-phase" -> Some Threadscan.Crash_mid_phase
  | "stall-mid-phase" -> Some Threadscan.Stall_mid_phase
  | _ -> None

let fault_to_string = function
  | Fault_none -> "none"
  | Fault_crash { victims; after } -> Fmt.str "crash:%d@%d" victims after
  | Fault_stall { victims; after; cycles } -> Fmt.str "stall:%d@%d:%d" victims after cycles

(* The checker's fault surface is the single-clause, op-count-triggered
   subset of the shared {!Ts_util.Fault_plan} grammar: exactly one
   [crash:V@K] or bounded [stall:V@K:C].  Wall-clock triggers, forever
   stalls, releases, and signal faults only make sense under a real
   scheduler and stay rejected here — the harness's chaos plans own
   them. *)
let fault_of_string s =
  match Ts_util.Fault_plan.parse s with
  | Ok [] -> Some Fault_none
  | Ok [ { victims; at = At after; event = Crash } ] -> Some (Fault_crash { victims; after })
  | Ok [ { victims; at = At after; event = Stall (Bounded cycles) } ] ->
      Some (Fault_stall { victims; after; cycles })
  | Ok _ | Error _ -> None

let replay_command spec =
  (* Pipeline flags are emitted only when non-default, so commands for the
     legacy configuration stay byte-identical to what they always were. *)
  Fmt.str
    "dune exec bin/tscheck.exe -- replay --ds %s%s --threads %d --ops %d --key-range %d \
     --buffer %d%s%s%s%s%s%s --inject %s --fault %s --policy %s --seed %d%s%s"
    (ds_to_string spec.ds)
    (if spec.scheme = default.scheme then "" else " --scheme " ^ spec.scheme)
    spec.threads spec.ops spec.key_range spec.buffer_size
    (if spec.help_free then " --help-free" else "")
    (if spec.collect_merge then " --collect-merge" else "")
    (if spec.scan_filter then " --scan-filter" else "")
    (if spec.free_chunk <> 0 then Fmt.str " --free-chunk %d" spec.free_chunk else "")
    (if spec.shards <> 0 then Fmt.str " --shards %d" spec.shards else "")
    (if spec.magazine then "" else " --no-magazine")
    (inject_to_string spec.inject) (fault_to_string spec.fault) (policy_to_string spec.policy)
    spec.seed
    (if spec.analyze then " --race" else "")
    (match spec.bug with None -> "" | Some b -> " --bug " ^ bug_to_string b)

type outcome = {
  spec : spec;
  violations : Report.violation list;
  events : int;
  phases : int;
  steps : int;
  lin_keys : int;
  skipped_segments : int;
}

let failed o = o.violations <> []

(* Rough step count of one run; only used to place PCT change points. *)
let expected_steps spec = spec.threads * spec.ops * 250

(* Self-injection point, called by worker [i] before its [n]-th operation
   (1-based).  The victim set is the [victims] lowest-indexed workers, and
   the injection lands deterministically after [after] completed operations
   — so a failing spec replays exactly, fault included.  A crash never
   returns (the fiber is killed); a stalled worker resumes here and finishes
   its remaining operations, exercising suspect → recovery (or reap →
   re-admission) on the reclaimer side. *)
let fault_hook spec i n =
  match spec.fault with
  | Fault_crash { victims; after } when i < victims && n = after + 1 ->
      Runtime.crash (Runtime.self ())
  | Fault_stall { victims; after; cycles } when i < victims && n = after + 1 ->
      Runtime.stall ~cycles (Runtime.self ())
  | _ -> ()

(* Set workload: concurrent inserts/removes/contains over one of the lib/ds
   structures, every operation recorded for the linearizability check.
   Returns (heap baseline, final snapshot). *)
let run_sets rt spec (smr : Smr.t) ~record =
  let ds0 =
    match spec.ds with
    | List_ds ->
        Ts_ds.Michael_list.create ~smr
          ~retire_early:(spec.bug = Some Bug_retire_early)
          ()
    | Lazy_ds ->
        Ts_ds.Lazy_list.create ~smr ~elide_locks:(spec.bug = Some Bug_elide_lock) ()
    | Hash_ds -> Ts_ds.Hash_table.create ~smr ~buckets:(max 4 (spec.key_range / 4)) ()
    | Skip_ds | Churn -> Ts_ds.Skiplist.create ~smr ~max_height:6 ()
  in
  let baseline = Alloc.live_blocks (Runtime.alloc rt) in
  let ds = Set_intf.instrument ~record ds0 in
  (* Prefill every other key so removes find work from step one; the
     prefill goes through the instrumented set, so the recorded history is
     complete and starts from the empty set. *)
  for k = 0 to (spec.key_range / 2) - 1 do
    ignore (ds.Set_intf.insert (k * 2) (k * 2))
  done;
  let worker i () =
    smr.Smr.thread_init ();
    ignore (Frame.push 16);
    for n = 1 to spec.ops do
      fault_hook spec i n;
      let key = Runtime.rand_below spec.key_range in
      (match Runtime.rand_below 5 with
      | 0 | 1 -> ignore (ds.Set_intf.insert key key)
      | 2 | 3 -> ignore (ds.Set_intf.remove key)
      | _ -> ignore (ds.Set_intf.contains key));
      Runtime.advance 10
    done;
    smr.Smr.thread_exit ()
  in
  let ws = List.init spec.threads (fun i -> Runtime.spawn (worker i)) in
  List.iter Runtime.join ws;
  (* Quiesce: empty the set so every retired node is unreachable. *)
  for k = 0 to spec.key_range - 1 do
    ignore (ds.Set_intf.remove k)
  done;
  ds0.Set_intf.check ();
  (baseline, ds0.Set_intf.to_list ())

(* Churn workload: each worker owns a shared slot, repeatedly grabs a random
   slot's node, holds it in a frame across two dereferences, then replaces
   and retires its own — the Lemma-1 access pattern.  Cross-thread holds
   make the scan's mark/carry-over machinery load-bearing, so the protocol
   injections ([Skip_carryover], [Skip_ack_wait]) surface as attributed
   use-after-free faults here. *)
let run_churn rt spec (smr : Smr.t) ~pinned =
  let nslots = spec.threads in
  let slots = Runtime.alloc_region nslots in
  let noise = Runtime.alloc_region 1 in
  let baseline = Alloc.live_blocks (Runtime.alloc rt) in
  let alloc_node () = Ptr.of_addr (Runtime.malloc 3) in
  for i = 0 to nslots - 1 do
    Runtime.write (slots + i) (alloc_node ())
  done;
  let worker_pinned i () =
    smr.Smr.thread_init ();
    Frame.with_frame 1 (fun fr ->
        (* [held] mirrors frame slot 0: a long-lived cross-thread reference
           kept across several ops.  Its owner typically replaces and
           retires it mid-hold, so the hold spans the retire and the next
           collect phase — every later dereference is safe only because the
           scan marked it and the sweep carried it over. *)
        let held = ref 0 in
        for n = 1 to spec.ops do
          (* The injection lands mid-hold: the victim's frame still pins a
             possibly cross-thread node, so a collect phase during the
             outage must proxy-scan this stack (stall) or drop the pin for
             good (crash) to stay sound. *)
          fault_hook spec i n;
          if Ptr.is_null !held || Runtime.rand_below 4 = 0 then begin
            held := Runtime.read (slots + Runtime.rand_below nslots);
            Frame.set fr 0 !held
          end;
          if not (Ptr.is_null !held) then ignore (Runtime.read (Ptr.addr !held));
          Runtime.advance 15;
          let p = alloc_node () in
          let old = Runtime.read (slots + i) in
          Runtime.write (slots + i) p;
          if not (Ptr.is_null old) then smr.Smr.retire old
        done;
        Frame.set fr 0 0);
    smr.Smr.thread_exit ()
  in
  (* Schemes whose frames do not pin ([caps.pins_frames] false) need
     visible readers: the hold and both dereferences run inside an op
     bracket (restarted from scratch if the scheme neutralizes it), with
     a validated protect slot for slot-protecting schemes.  The worker's
     own replace-and-retire runs {e outside} the bracket: retire needs no
     bracket under any scheme, and keeping it out means a neutralization
     can never abort between the unlink and the retire (which would leak
     the node for good). *)
  let worker_visible i () =
    smr.Smr.thread_init ();
    Frame.with_frame 1 (fun fr ->
        for n = 1 to spec.ops do
          fault_hook spec i n;
          let rec attempt () =
            match
              smr.Smr.op_begin ();
              let s = slots + Runtime.rand_below nslots in
              let rec acquire tries =
                if tries = 0 then 0
                else
                  let p = Runtime.read s in
                  if Ptr.is_null p then 0
                  else begin
                    ignore (smr.Smr.protect ~slot:0 p);
                    (* re-validate: still published, so not yet retired —
                       the slot was announced before this read *)
                    if Runtime.read s = p then p else acquire (tries - 1)
                  end
              in
              let held = acquire 4 in
              Frame.set fr 0 held;
              if not (Ptr.is_null held) then ignore (Runtime.read (Ptr.addr held));
              Runtime.advance 15;
              Frame.set fr 0 0;
              smr.Smr.release ~slot:0;
              smr.Smr.op_end ()
            with
            | () -> ()
            | exception Smr.Neutralized ->
                Frame.set fr 0 0;
                attempt ()
          in
          attempt ();
          let p = alloc_node () in
          let old = Runtime.read (slots + i) in
          Runtime.write (slots + i) p;
          if not (Ptr.is_null old) then smr.Smr.retire old
        done);
    smr.Smr.thread_exit ()
  in
  let worker = if pinned then worker_pinned else worker_visible in
  let ws = List.init spec.threads (fun i -> Runtime.spawn (worker i)) in
  List.iter Runtime.join ws;
  (* Unpublish every node; all retired nodes are now unreachable. *)
  for i = 0 to nslots - 1 do
    let old = Runtime.read (slots + i) in
    Runtime.write (slots + i) 0;
    if not (Ptr.is_null old) then smr.Smr.retire old
  done;
  (* Wash conservative register pins before the quiescence oracle. *)
  for _ = 1 to 64 do
    ignore (Runtime.read noise)
  done;
  (baseline, [])

let run ?configure ?trace spec =
  let d = Registry.get spec.scheme in
  (* Capability guards, before any runtime exists.  The protocol
     injection points live inside the ThreadScan collect protocol; the
     pipeline-knob capability marks exactly that family. *)
  if spec.inject <> Threadscan.No_fault && not d.Registry.caps.Registry.has_pipeline_knobs then
    invalid_arg
      (Fmt.str "scheme %s has no ThreadScan collect protocol to inject %s into" spec.scheme
         (inject_to_string spec.inject));
  (if d.Registry.caps.Registry.neutralizes then
     match spec.ds with
     | Lazy_ds | Skip_ds ->
         invalid_arg
           (Fmt.str
              "scheme %s aborts and restarts victims' operations, which the lock-based %s \
               structure cannot survive"
              spec.scheme (ds_to_string spec.ds))
     | List_ds | Hash_ds | Churn -> ());
  let sched =
    match spec.policy with
    | Timed -> Runtime.Timed
    | Uniform -> Runtime.Uniform
    | Pct d -> Runtime.Pct { change_points = d; expected_steps = expected_steps spec }
  in
  let config =
    {
      Runtime.default_config with
      seed = spec.seed;
      cores = 0;
      sched;
      sanitize = true;
      strict_mem = true;
      magazine = spec.magazine;
      propagate_failures = true;
      (* ~30x the step count of a typical clean run: failing runs often end
         in a spin (a dead thread never acks) and should fail fast.  Fault
         runs get headroom — blind phases and overflow churn retry work. *)
      max_steps =
        (200_000 + (spec.threads * spec.ops * 2_000))
        * (match spec.fault with Fault_none -> 1 | _ -> 4);
    }
  in
  (* TSCHECK_TRACE=1 streams the scheduler/protocol trace of every run to
     stderr — the fastest way from a failing replay command to a timeline
     (the degradation-ladder notes land here too).  A [trace] callback
     (the fork explorer's differential digest) composes with it. *)
  let config =
    let sinks =
      (match Sys.getenv_opt "TSCHECK_TRACE" with
      | Some _ -> [ (fun e -> Fmt.epr "%a@." Ts_sim.Trace.pp e) ] (* tslint: allow facade -- TSCHECK_TRACE debug sink pretty-prints trace entries *)
      | None -> [])
      @ (match trace with Some f -> [ f ] | None -> [])
    in
    match sinks with
    | [] -> config
    | fs -> { config with Runtime.trace = Some (fun e -> List.iter (fun f -> f e) fs) }
  in
  (* The analyzer is an ops decorator: attach it before the runtime
     installs its backend so every op of the run is observed.  It must be
     detached on every exit path — a leaked decorator would instrument the
     next (unrelated) run of a sweep. *)
  let analyzer = if spec.analyze then Some (Ts_analyze.Analyze.attach ()) else None in
  Fun.protect ~finally:(fun () -> Option.iter Ts_analyze.Analyze.detach analyzer)
  @@ fun () ->
  let wrap_analyzed smr =
    match analyzer with Some an -> Ts_analyze.Analyze.wrap_smr an smr | None -> smr
  in
  let rt = Runtime.create config in
  (* the fork explorer's entry point: install a scheduler hook or preload a
     recorded schedule before the run starts *)
  Option.iter (fun f -> f rt) configure;
  let phase_of = ref (fun () -> -1) in
  let san = Sanitize.install rt ~phase_of:(fun () -> !phase_of ()) in
  let events = ref [] in
  let record e = events := e :: !events in
  let phases = ref 0 in
  let oracle_violations = ref [] in
  ignore
    (Runtime.add_thread rt (fun () ->
         match spec.bug with
         | Some Bug_skip_fence ->
             (* The seeded bug lives in the reclamation scheme itself, so
                this run swaps ThreadScan for the epoch-nofence variant —
                no protocol injection, phase counter or quiescence oracle
                applies.  A small batch makes a checker-sized run reclaim
                mid-workload, which is what lets the stale-counter free
                land under a concurrent traversal. *)
             let smr =
               wrap_analyzed
                 (Ts_reclaim.Epoch.create ~skip_fence:true ~batch:4
                    ~max_threads:(spec.threads + 2) ())
             in
             smr.Smr.thread_init ();
             (match spec.ds with
             | Churn -> ignore (run_churn rt spec smr ~pinned:false)
             | _ -> ignore (run_sets rt spec smr ~record));
             smr.Smr.thread_exit ();
             smr.Smr.flush ()
         | _ ->
         let env =
           {
             Registry.max_threads = spec.threads + 2;
             hazard_slots =
               (match spec.ds with
               | Skip_ds -> Ts_ds.Skiplist.hazard_slots ~max_height:6
               | List_ds | Hash_ds | Lazy_ds | Churn -> 3);
             (* checker-sized: a small default batch so batching schemes
                reclaim mid-workload, where the bugs are *)
             epoch_batch = 8;
             budgets =
               (match (spec.fault, spec.inject) with
               | ( Fault_none,
                   (Threadscan.No_fault | Skip_carryover | Skip_ack_wait | Skip_proxy_scan) ) ->
                   None
               | _, _ ->
                   (* Budgets small enough that a checker-sized run actually
                      climbs the degradation ladder: the ack wait times out well
                      inside a stall, two silent phases reap, a dead reclaimer's
                      lock is taken over, and full buffers overflow instead of
                      spinning out the step limit. *)
                   Some
                     {
                       Registry.ack_budget = 20_000;
                       suspect_phases = 2;
                       takeover_steps = 30_000;
                       overflow_after = 16;
                     });
           }
         in
         let rspec =
           Registry.spec ~buffer:spec.buffer_size ~help_free:spec.help_free
             ~collect_merge:spec.collect_merge ~scan_filter:spec.scan_filter
             ?free_chunk:(if spec.free_chunk = 0 then None else Some spec.free_chunk)
             ?shards:(if spec.shards = 0 then None else Some spec.shards)
             spec.scheme
         in
         let built = Registry.build env rspec in
         (match built.Registry.ts with
         | Some ts ->
             Threadscan.set_inject ts spec.inject;
             phase_of := (fun () -> Threadscan.phases ts)
         | None -> ());
         let smr0 = built.Registry.smr in
         (* ABA / double-retire oracle: in sanitizer mode every allocation
            at a given base bumps a generation counter, so retiring the
            same (addr, generation) twice means the structure unlinked one
            node twice — even if the address was recycled in between. *)
         let retired_gen = Hashtbl.create 64 in
         let smr =
           {
             smr0 with
             Smr.retire =
               (fun p ->
                 let addr = Ptr.addr p in
                 let a = Runtime.alloc rt in
                 let gen = Alloc.generation a addr in
                 (match Hashtbl.find_opt retired_gen addr with
                 | Some g when g = gen ->
                     oracle_violations :=
                       Report.Oracle
                         {
                           what = "double retire";
                           detail = Fmt.str "addr %d retired twice in generation %d" addr gen;
                         }
                       :: !oracle_violations
                 | _ -> ());
                 Hashtbl.replace retired_gen addr gen;
                 smr0.Smr.retire p);
           }
         in
         (* Analyzer wrapping goes outermost so [note_retire] sees the
            retire before the generation oracle consumes it. *)
         let smr = wrap_analyzed smr in
         smr.Smr.thread_init ();
         let baseline, final_list =
           match spec.ds with
           | List_ds | Hash_ds | Skip_ds | Lazy_ds -> run_sets rt spec smr ~record
           | Churn -> run_churn rt spec smr ~pinned:d.Registry.caps.Registry.pins_frames
         in
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         phases :=
           (match built.Registry.ts with
           | Some ts -> Threadscan.phases ts
           | None -> smr.Smr.counters.Smr.cleanups);
         let max_leak =
           (* the scheme's per-corpse budget (in-flight retires, stranded
              protection slots, a lost batch ...) per crashed thread *)
           (match spec.fault with
           | Fault_crash { victims; _ } ->
               victims * d.Registry.crash_leak_per_victim rspec.Registry.params
           | _ -> 0)
           + (match spec.inject with Threadscan.Crash_mid_phase -> 1 | _ -> 0)
         in
         oracle_violations :=
           !oracle_violations
           @ Oracle.check ~max_leak ?ts:built.Registry.ts ~counters:smr.Smr.counters
               ~alloc:(Runtime.alloc rt) ~baseline_live:baseline ~final_list ()));
  let crash =
    try
      ignore (Runtime.start rt);
      None
    with
    | Runtime.Thread_failure (tid, e) ->
        Some (Fmt.str "thread %d failed: %s" tid (Printexc.to_string e))
    | Runtime.Deadlock what -> Some ("deadlock: " ^ what)
    | Runtime.Step_limit_exceeded -> Some "step limit exceeded"
  in
  let steps = (Runtime.stats rt).Runtime.steps in
  (* Layered attribution: a sanitizer fault is the root cause (the crash it
     triggers is downstream noise); a crash without one stands alone; only
     a clean run is worth oracle + linearizability verdicts. *)
  let violations, lin_keys, skipped =
    match (Sanitize.violation san, crash) with
    | Some v, _ -> ([ v ], 0, 0)
    | None, Some what -> ([ Report.Crash { what } ], 0, 0)
    | None, None ->
        let lin = Linearize.check (List.rev !events) in
        let lin_v =
          match lin.Linearize.violation with
          | Some (key, ops) -> [ Report.Non_linearizable { ds = ds_to_string spec.ds; key; ops } ]
          | None -> []
        in
        (!oracle_violations @ lin_v, lin.Linearize.keys, lin.Linearize.skipped_segments)
  in
  (* Analyzer reports come first: a race or lifecycle violation is the root
     cause of whatever downstream fault (sanitizer UAF, crash) it produced. *)
  let analysis =
    match analyzer with
    | None -> []
    | Some an ->
        List.map
          (function
            | Ts_analyze.Analyze.Race r -> Report.Race r
            | Ts_analyze.Analyze.Lifecycle l -> Report.Lifecycle l)
          (Ts_analyze.Analyze.violations an)
  in
  {
    spec;
    violations = analysis @ violations;
    events = List.length !events;
    phases = !phases;
    steps;
    lin_keys;
    skipped_segments = skipped;
  }
