module Set_intf = Ts_ds.Set_intf

(* Integer-set histories decompose by key: operations on different keys
   commute, so the full history is linearizable iff every per-key history
   is.  Per key the sequential state is a single bool (present?), which
   makes the Wing & Gong search cheap: we memoise on (set of linearized
   ops, state) and the state contributes one bit. *)

type result = {
  keys : int;
  ops : int;
  skipped_segments : int;
  violation : (int * Set_intf.event list) option;
}

(* Sequential spec: (expected result, next state). *)
let step_state (kind : Set_intf.op_kind) state =
  match kind with
  | Set_intf.Op_insert -> (not state, true)
  | Set_intf.Op_remove -> (state, false)
  | Set_intf.Op_contains -> (state, state)

(* Concurrent segments are bounded by quiescent cuts, so they stay small in
   practice; a segment wider than this is skipped (counted, not failed). *)
let max_segment = 22

exception Too_big

(* All sequential end states reachable by linearizing [evs] (one segment,
   already sorted by t0) from [start_state]; [] means non-linearizable. *)
let segment_ends (evs : Set_intf.event array) start_state =
  let n = Array.length evs in
  if n > max_segment then raise Too_big;
  let full = (1 lsl n) - 1 in
  let ends = ref [] in
  let seen = Hashtbl.create 64 in
  let rec go mask state =
    let memo = (mask * 2) + Bool.to_int state in
    if not (Hashtbl.mem seen memo) then begin
      Hashtbl.add seen memo ();
      if mask = full then begin
        if not (List.mem state !ends) then ends := state :: !ends
      end
      else
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 then begin
            (* [i] may linearize next iff no other unlinearized op finished
               before [i] was invoked (real-time order). *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if j <> i && mask land (1 lsl j) = 0 && evs.(j).Set_intf.t1 < evs.(i).Set_intf.t0
              then minimal := false
            done;
            if !minimal then begin
              let expected, next = step_state evs.(i).Set_intf.kind state in
              if evs.(i).Set_intf.result = expected then go (mask lor (1 lsl i)) next
            end
          end
        done
    end
  in
  go 0 start_state;
  !ends

(* Split a t0-sorted event list at quiescent cuts: a new segment starts
   whenever every earlier op responded before the next one was invoked. *)
let segments evs =
  let out = ref [] and cur = ref [] and max_t1 = ref min_int in
  List.iter
    (fun (e : Set_intf.event) ->
      if !cur <> [] && !max_t1 < e.t0 then begin
        out := List.rev !cur :: !out;
        cur := []
      end;
      cur := e :: !cur;
      max_t1 := max !max_t1 e.t1)
    evs;
  if !cur <> [] then out := List.rev !cur :: !out;
  List.rev !out

(* One key's history: thread the set of feasible states through the
   segments; an empty set of end states is a violation. *)
let check_key evs =
  let skipped = ref 0 in
  let ok = ref true in
  let states = ref [ false ] in
  List.iter
    (fun seg ->
      if !ok then begin
        let seg_a = Array.of_list seg in
        match List.concat_map (fun s -> segment_ends seg_a s) !states |> List.sort_uniq compare with
        | exception Too_big ->
            incr skipped;
            states := [ false; true ]
        | [] -> ok := false
        | ends -> states := ends
      end)
    (segments evs);
  (!ok, !skipped)

let check events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Set_intf.event) ->
      let l = try Hashtbl.find tbl e.key with Not_found -> [] in
      Hashtbl.replace tbl e.key (e :: l))
    events;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare in
  let skipped = ref 0 and violation = ref None in
  List.iter
    (fun key ->
      if !violation = None then begin
        let evs =
          Hashtbl.find tbl key
          |> List.sort (fun (a : Set_intf.event) (b : Set_intf.event) ->
                 compare (a.t0, a.t1) (b.t0, b.t1))
        in
        let ok, sk = check_key evs in
        skipped := !skipped + sk;
        if not ok then violation := Some (key, evs)
      end)
    keys;
  {
    keys = List.length keys;
    ops = List.length events;
    skipped_segments = !skipped;
    violation = !violation;
  }
