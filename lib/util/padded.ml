(* Cache-line padding for per-thread hot records.

   OCaml allocates small blocks back to back, so two threads' contexts —
   or two [Atomic.t] cells made in the same loop — routinely share a
   cache line, and every write by one thread invalidates the other's
   line (false sharing).  [copy_as_padded] re-allocates a block with its
   size rounded up to whole cache lines plus one full line of slack, so
   no other allocation can land on the lines its hot fields occupy.

   The technique is the [Obj]-level copy used by multicore libraries:
   allocate a scannable block of the padded size, copy the real fields,
   initialise the padding fields to the immediate [0] (the GC scans
   them, so they must be valid values).  Mutation through the returned
   value works because field offsets are unchanged; the original block
   becomes garbage.

   Only plain scannable blocks (tag 0 records, [Atomic.t] cells) are
   padded; anything else — immediates, float records, custom blocks —
   is returned unchanged, which is always correct, just unpadded. *)

(* 8 fields x 8 bytes = 64 B, one x86/arm cache line. *)
let line_words = 8

let[@inline never] copy x =
  let src = Obj.repr x in
  if (not (Obj.is_block src)) || Obj.tag src <> 0 then x
  else begin
    let n = Obj.size src in
    let padded = ((n + line_words - 1) / line_words * line_words) + line_words in
    let dst = Obj.new_block 0 padded in
    for i = 0 to n - 1 do
      Obj.set_field dst i (Obj.field src i)
    done;
    for i = n to padded - 1 do
      Obj.set_field dst i (Obj.repr 0)
    done;
    Obj.obj dst
  end

let atomic v = copy (Atomic.make v) (* tslint: allow facade -- the padding shim constructs the cell it isolates *)

(* Stride helpers for unmanaged-heap layouts: one hot word per thread,
   each on its own line. *)

let stride = line_words

let words_for n = n * stride

let index base tid = base + (tid * stride)
