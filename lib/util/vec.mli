(** Growable vector of unboxed [int]s.

    OCaml 5.1 predates [Dynarray]; this is the small subset the repository
    needs, specialised to [int] so elements stay unboxed. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val push : t -> int -> unit

val pop : t -> int
(** Removes and returns the last element.  @raise Invalid_argument if empty. *)

val get : t -> int -> int

val set : t -> int -> int -> unit

val clear : t -> unit
(** Resets length to zero; capacity is kept. *)

val iter : (int -> unit) -> t -> unit

val exists : (int -> bool) -> t -> bool

val to_array : t -> int array

val of_array : int array -> t

val append_array : t -> int array -> unit

val sort : t -> unit
(** Ascending in-place sort. *)

val swap_remove : t -> int -> int
(** [swap_remove t i] removes index [i] in O(1) by swapping in the last
    element; returns the removed value. *)
