(** Cache-line padding for per-thread hot records (false-sharing
    avoidance).

    OCaml allocates small blocks contiguously, so records or [Atomic.t]
    cells created together share cache lines; when different threads
    write them, every write invalidates the neighbours' line. *)

val line_words : int
(** Words per cache line (8 x 8 B = 64 B). *)

val copy : 'a -> 'a
(** [copy x] returns a copy of [x] whose block is padded out to whole
    cache lines (plus one line of slack) so no other allocation shares
    its lines.  Field offsets are unchanged, so mutation through the
    copy works; use the copy and drop the original.  Values that are not
    plain scannable blocks (immediates, float records, custom blocks)
    are returned unchanged. *)

val atomic : int -> int Atomic.t (* tslint: allow facade -- the isolated cell's type is necessarily Atomic.t *)
(** [atomic v] is [copy (Atomic.make v)]: a line-isolated atomic. *)

val stride : int
(** Heap-layout stride: slots per thread when spreading one hot word per
    thread across distinct cache lines. *)

val words_for : int -> int
(** [words_for n] is the region size for [n] line-strided slots. *)

val index : int -> int -> int
(** [index base tid] is the address of [tid]'s line-strided slot in a
    region of [words_for n] words at [base]. *)
