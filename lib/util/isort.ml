(* Bottom-up heapsort on the prefix: in-place, no allocation, O(n log n)
   worst case; recursion-free so it is safe to call from simulator fibers. *)

let sort_prefix a n =
  if n > 1 then begin
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    let sift_down start last =
      let root = ref start in
      let continue = ref true in
      while !continue do
        let child = (2 * !root) + 1 in
        if child > last then continue := false
        else begin
          let child = if child + 1 <= last && a.(child) < a.(child + 1) then child + 1 else child in
          if a.(!root) < a.(child) then begin
            swap !root child;
            root := child
          end
          else continue := false
        end
      done
    in
    for start = (n - 2) / 2 downto 0 do
      sift_down start (n - 1)
    done;
    for last = n - 1 downto 1 do
      swap 0 last;
      sift_down 0 (last - 1)
    done
  end

let binary_search a n key =
  let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    let v = a.(mid) in
    if v = key then found := mid
    else if v < key then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let is_sorted a n =
  let rec loop i = i >= n || (a.(i - 1) <= a.(i) && loop (i + 1)) in
  loop 1

(* K-way merge of sorted runs with deduplication, the collect-phase
   replacement for concat-then-[sort_prefix]: O(total * k) with a plain
   min-scan over the run cursors, which beats a heap for the small k
   (participant count) the reclaimer sees, and O(total log total) of
   re-sorting either way.  Runs may contain duplicates and may overlap;
   the output prefix is sorted and duplicate-free. *)
let merge_runs runs dst =
  let k = Array.length runs in
  let cursor = Array.make k 0 in
  let out = ref 0 in
  let exhausted = ref 0 in
  Array.iter (fun (_, len) -> if len <= 0 then incr exhausted) runs;
  while !exhausted < k do
    (* smallest head across the live runs *)
    let best = ref (-1) and best_v = ref max_int in
    for i = 0 to k - 1 do
      let a, len = runs.(i) in
      if cursor.(i) < len then begin
        let v = a.(cursor.(i)) in
        if !best < 0 || v < !best_v then begin
          best := i;
          best_v := v
        end
      end
    done;
    let v = !best_v in
    if !out = 0 || dst.(!out - 1) <> v then begin
      dst.(!out) <- v;
      incr out
    end;
    (* advance every run past [v]: cross-run duplicates die here *)
    for i = 0 to k - 1 do
      let a, len = runs.(i) in
      while cursor.(i) < len && a.(cursor.(i)) = v do
        cursor.(i) <- cursor.(i) + 1;
        if cursor.(i) = len then incr exhausted
      done
    done
  done;
  !out

let dedup_sorted a n =
  if n <= 1 then n
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    !w
  end
