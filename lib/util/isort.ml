(* Bottom-up heapsort on the prefix: in-place, no allocation, O(n log n)
   worst case; recursion-free so it is safe to call from simulator fibers. *)

let sort_prefix a n =
  if n > 1 then begin
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    let sift_down start last =
      let root = ref start in
      let continue = ref true in
      while !continue do
        let child = (2 * !root) + 1 in
        if child > last then continue := false
        else begin
          let child = if child + 1 <= last && a.(child) < a.(child + 1) then child + 1 else child in
          if a.(!root) < a.(child) then begin
            swap !root child;
            root := child
          end
          else continue := false
        end
      done
    in
    for start = (n - 2) / 2 downto 0 do
      sift_down start (n - 1)
    done;
    for last = n - 1 downto 1 do
      swap 0 last;
      sift_down 0 (last - 1)
    done
  end

let binary_search a n key =
  let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    let v = a.(mid) in
    if v = key then found := mid
    else if v < key then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let is_sorted a n =
  let rec loop i = i >= n || (a.(i - 1) <= a.(i) && loop (i + 1)) in
  loop 1

let dedup_sorted a n =
  if n <= 1 then n
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    !w
  end
