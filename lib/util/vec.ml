type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let data = Array.make (2 * Array.length t.data) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

let append_array t a = Array.iter (push t) a

let sort t =
  let a = to_array t in
  Array.sort compare a;
  Array.blit a 0 t.data 0 t.len

let swap_remove t i =
  check t i;
  let v = t.data.(i) in
  t.len <- t.len - 1;
  t.data.(i) <- t.data.(t.len);
  v
