(** Sorting and searching over [int array] prefixes.

    The master delete buffer is a fixed array with a live prefix; these
    helpers avoid allocating intermediate arrays on the hot path. *)

val sort_prefix : int array -> int -> unit
(** [sort_prefix a n] sorts [a.(0) .. a.(n-1)] ascending (in place). *)

val binary_search : int array -> int -> int -> int
(** [binary_search a n key] returns the index of [key] within the sorted
    prefix [a.(0) .. a.(n-1)], or [-1] when absent. *)

val is_sorted : int array -> int -> bool

val dedup_sorted : int array -> int -> int
(** [dedup_sorted a n] compacts consecutive duplicates in the sorted prefix
    and returns the new prefix length. *)

val merge_runs : (int array * int) array -> int array -> int
(** [merge_runs runs dst] k-way merges the sorted prefixes
    [(a, len)] in [runs] into [dst], dropping duplicates (within and
    across runs), and returns the merged length.  [dst] must hold the sum
    of the run lengths.  Equivalent to concatenating, [sort_prefix] and
    [dedup_sorted], but O(total x k) with no re-sort of already-sorted
    input. *)
