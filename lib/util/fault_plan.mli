(** One fault-plan grammar for every CLI (tscheck, tstrace, tsbench).

    A plan is a comma-separated list of clauses:

    {v
    crash:V@K            crash the V lowest-indexed victims at K
    stall:V@K:C          stall them for C cycles at K
    stall:V@K:forever    stall them until an explicit release
    release:V@K          wake stalled victims at K
    drop-signals:V@K:N   drop the victims' next N incoming signals at K
    delay-signals:V@K:C  delay every signal to the victims by C cycles at K
    none                 the empty plan
    v}

    The trigger point [K] is a plain count whose unit belongs to the
    caller: completed operations in the checker ([tscheck --fault]),
    virtual cycles in the workload harness.  A [K] with an [ms] suffix
    ([crash:1\@250ms]) triggers on wall-clock milliseconds instead — only
    the native backend can honour those; the simulator has no wall clock.

    The printer round-trips: [to_string] of a parsed single [crash:V\@K] /
    [stall:V\@K:C] clause is byte-identical to what {!Ts_check} always
    printed in replay commands. *)

type stall_dur = Bounded of int  (** cycles *) | Forever

type event =
  | Crash
  | Stall of stall_dur
  | Unstall  (** release stalled victims ([release:V\@K]) *)
  | Drop_signals of int
  | Delay_signals of int

type trigger =
  | At of int  (** op-count or virtual cycles — the caller's unit *)
  | At_ms of int  (** wall-clock milliseconds; native backend only *)

type clause = { victims : int; at : trigger; event : event }

type t = clause list
(** The empty list is the empty plan ("none"). *)

val parse : string -> (t, string) result
(** Parse a plan. [Error msg] carries a one-line diagnosis naming the
    offending clause. Victim counts must be positive, trigger points
    non-negative, stall/delay cycle counts and drop counts positive. *)

val clause_to_string : clause -> string

val to_string : t -> string
(** Inverse of {!parse}; the empty plan prints as ["none"]. *)

val grammar : string
(** One-line grammar summary for [--help] texts and parse errors. *)

val has_wall_triggers : t -> bool
(** Any [At_ms] clause present (the plan needs a wall clock)? *)

val has_forever : t -> bool
(** Any [stall:...:forever] clause present? *)

val has_release : t -> bool

val needs_monitor : t -> bool
(** True when some clause cannot be fired by the victims themselves —
    wall-clock triggers and releases need a third party watching. *)
