(** Blocked Bloom filter math over power-of-two word tables.

    All of a key's bits live in a single table word, so adding or
    testing a key is one shared-memory access.  The storage is the
    caller's (the reclaimer keeps it in the unmanaged heap next to the
    master buffer); this module only computes which word and which bits.
    False positives are expected and safe — they fall through to the
    exact search; false negatives cannot happen, since [slot]/[bits] are
    pure functions of the key. *)

val words_for : int -> int
(** [words_for n] is the table size (a power of two, at least 16) for
    [n] expected keys: about 8 bits per key. *)

val slot : mask:int -> int -> int
(** [slot ~mask key] is the table word index for [key]; [mask] is
    [words - 1] of a power-of-two table. *)

val bits : int -> int
(** [bits key] is the key's signature: an int with (up to) two bits set,
    all below bit 62.  Add with [lor], test with [land] against itself. *)

(** Array-backed reference filter, for tests and OCaml-side tables. *)

type t

val create : expected:int -> t
val words : t -> int
val add : t -> int -> unit
val test : t -> int -> bool
