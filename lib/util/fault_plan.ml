type stall_dur = Bounded of int | Forever

type event =
  | Crash
  | Stall of stall_dur
  | Unstall
  | Drop_signals of int
  | Delay_signals of int

type trigger = At of int | At_ms of int

type clause = { victims : int; at : trigger; event : event }

type t = clause list

let grammar =
  "none|crash:V@K|stall:V@K:C|stall:V@K:forever|release:V@K|\
   drop-signals:V@K:N|delay-signals:V@K:C (comma-separated; K may end in 'ms')"

let int_of s =
  match int_of_string_opt (String.trim s) with
  | Some n -> Some n
  | None -> None

let trigger_of s =
  let s = String.trim s in
  let n = String.length s in
  if n > 2 && String.sub s (n - 2) 2 = "ms" then
    match int_of (String.sub s 0 (n - 2)) with
    | Some k -> Some (At_ms k)
    | None -> None
  else match int_of s with Some k -> Some (At k) | None -> None

(* Split "V@K" into victims + trigger. *)
let head_of clause s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "clause %S: expected V@K" clause)
  | Some i -> (
      let v = String.sub s 0 i in
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of v, trigger_of k) with
      | Some v, Some at when v > 0 ->
          let ok = match at with At k | At_ms k -> k >= 0 in
          if ok then Ok (v, at)
          else Error (Printf.sprintf "clause %S: trigger must be >= 0" clause)
      | Some v, Some _ when v <= 0 ->
          Error (Printf.sprintf "clause %S: victims must be > 0" clause)
      | _ -> Error (Printf.sprintf "clause %S: expected V@K" clause))

let parse_clause s =
  let s = String.trim s in
  let parts = String.split_on_char ':' s in
  let bad () = Error (Printf.sprintf "unknown fault clause %S (%s)" s grammar) in
  match parts with
  | [ "crash"; vk ] -> (
      match head_of s vk with
      | Ok (victims, at) -> Ok { victims; at; event = Crash }
      | Error e -> Error e)
  | [ "stall"; vk; dur ] -> (
      match head_of s vk with
      | Error e -> Error e
      | Ok (victims, at) -> (
          if String.trim dur = "forever" then
            Ok { victims; at; event = Stall Forever }
          else
            match int_of dur with
            | Some c when c > 0 -> Ok { victims; at; event = Stall (Bounded c) }
            | Some _ -> Error (Printf.sprintf "clause %S: cycles must be > 0" s)
            | None -> bad ()))
  | [ "release"; vk ] -> (
      match head_of s vk with
      | Ok (victims, at) -> Ok { victims; at; event = Unstall }
      | Error e -> Error e)
  | [ "drop-signals"; vk; n ] -> (
      match head_of s vk with
      | Error e -> Error e
      | Ok (victims, at) -> (
          match int_of n with
          | Some n when n > 0 -> Ok { victims; at; event = Drop_signals n }
          | Some _ -> Error (Printf.sprintf "clause %S: count must be > 0" s)
          | None -> bad ()))
  | [ "delay-signals"; vk; c ] -> (
      match head_of s vk with
      | Error e -> Error e
      | Ok (victims, at) -> (
          match int_of c with
          | Some c when c > 0 -> Ok { victims; at; event = Delay_signals c }
          | Some _ -> Error (Printf.sprintf "clause %S: cycles must be > 0" s)
          | None -> bad ()))
  | _ -> bad ()

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
          match parse_clause c with
          | Ok cl -> go (cl :: acc) rest
          | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)

let trigger_to_string = function
  | At k -> string_of_int k
  | At_ms k -> Printf.sprintf "%dms" k

let clause_to_string { victims; at; event } =
  let vk = Printf.sprintf "%d@%s" victims (trigger_to_string at) in
  match event with
  | Crash -> Printf.sprintf "crash:%s" vk
  | Stall (Bounded c) -> Printf.sprintf "stall:%s:%d" vk c
  | Stall Forever -> Printf.sprintf "stall:%s:forever" vk
  | Unstall -> Printf.sprintf "release:%s" vk
  | Drop_signals n -> Printf.sprintf "drop-signals:%s:%d" vk n
  | Delay_signals c -> Printf.sprintf "delay-signals:%s:%d" vk c

let to_string = function
  | [] -> "none"
  | cs -> String.concat "," (List.map clause_to_string cs)

let has_wall_triggers t =
  List.exists (fun c -> match c.at with At_ms _ -> true | At _ -> false) t

let has_forever t =
  List.exists (fun c -> c.event = Stall Forever) t

let has_release t = List.exists (fun c -> c.event = Unstall) t

let needs_monitor t = has_wall_triggers t || has_release t
