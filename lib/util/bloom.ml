(* Blocked Bloom filter math over power-of-two word tables.

   The reclaimer publishes the filter in the unmanaged heap next to the
   sorted master buffer, so this module cannot own the storage — it only
   computes, for a key, which table word to touch ([slot]) and which bits
   to set or test in it ([bits]).  Callers OR [bits] into the slot to add
   a key and AND-compare to test one; all of a key's bits live in one
   word, so both sides cost a single shared access.

   Two bit positions are derived from independent halves of a splitmix64
   finalizer, giving ~2 effective hash functions.  False positives just
   fall through to the exact binary search; false negatives are
   impossible by construction — [slot]/[bits] are pure functions of the
   key, so the test recomputes exactly what the add wrote.  The property
   test in test/test_util.ml pins this over random retire sets.

   Only 62 low bits of each word are used: OCaml ints are 63-bit and
   staying clear of the sign bit keeps stored words non-negative (the
   unmanaged heap's poison value is negative, which makes a clobbered
   filter word obvious in a dump). *)

let bits_per_word = 62

(* splitmix64 finalizer, with the multiplier constants truncated to
   OCaml's 63-bit int range (arithmetic wraps mod 2^63 anyway, so the
   top bit of the 64-bit constants is unrepresentable and irrelevant to
   the avalanche quality we need here). *)
let mix k =
  let k = k * 0x1E3779B97F4A7C15 in
  let k = (k lxor (k lsr 30)) * 0x3F58476D1CE4E5B9 in
  let k = (k lxor (k lsr 27)) * 0x14D049BB133111EB in
  k lxor (k lsr 31)

let words_for n =
  (* ~8 bits per expected key, i.e. a quarter as many words as keys,
     rounded up to a power of two; never below 16 words so tiny phases
     still spread keys across a few cache lines. *)
  let target = max 16 ((n + 3) / 4) in
  let w = ref 16 in
  while !w < target do
    w := !w * 2
  done;
  !w

let[@inline] slot ~mask key = mix key land mask

let[@inline] bits key =
  let h = mix (key lxor 0x5DEECE66D) in
  (* mask the sign bit before [mod]: OCaml's [mod] follows the dividend's
     sign and a negative shift count is undefined *)
  let b1 = (h land max_int) mod bits_per_word in
  let b2 = (h lsr 32) mod bits_per_word in
  (1 lsl b1) lor (1 lsl b2)

(* Array-backed reference filter: used by property tests, and by any
   caller whose table lives in OCaml rather than a runtime heap.  The
   heap-resident filter in lib/core uses the same [slot]/[bits] math, so
   proving zero false negatives here proves it there. *)

type t = { table : int array; mask : int }

let create ~expected =
  let words = words_for expected in
  { table = Array.make words 0; mask = words - 1 }

let words t = Array.length t.table

let add t key =
  let i = slot ~mask:t.mask key in
  t.table.(i) <- t.table.(i) lor bits key

let test t key = t.table.(slot ~mask:t.mask key) land bits key = bits key
