type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let raw_state t = t.state

let set_raw_state t s = t.state <- s

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* Truncate to OCaml's 62 non-sign bits so the result is non-negative. *)
let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 1) land max_int

let split t =
  let seed = next64 t in
  { state = seed }

let below t n =
  assert (n > 0);
  (* Rejection sampling keeps the distribution exactly uniform. *)
  let limit = max_int - (max_int mod n) in
  let rec loop () =
    let v = next t in
    if v < limit then v mod n else loop ()
  in
  loop ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + below t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t = Stdlib.float_of_int (next t) /. Stdlib.float_of_int max_int /. (1. +. epsilon_float)

let chance t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
