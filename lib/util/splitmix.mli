(** Deterministic SplitMix64 pseudo-random number generator.

    Every source of randomness in the repository goes through this module so
    that a run is a pure function of its seed.  The generator is the standard
    SplitMix64 of Steele, Lea and Flood, truncated to OCaml's 63-bit [int]. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy that will produce the same future stream. *)

val raw_state : t -> int64
(** The exact internal state word, for snapshotting / state digests. *)

val set_raw_state : t -> int64 -> unit
(** Rewind the generator to a state previously read with {!raw_state}. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Used to give each simulated thread its own stream. *)

val next : t -> int
(** Next raw 63-bit non-negative value. *)

val below : t -> int -> int
(** [below t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
