(** Per-thread delete buffer (§4.2 "Reclamation").

    A single-reader/single-writer circular buffer in unmanaged memory: the
    owning thread pushes retired pointers at the head; the (unique, lock
    protected) reclaimer drains from the tail.  Head and tail are
    monotonically increasing counters, so no flag is needed to distinguish
    full from empty, and under the simulator's sequentially consistent
    memory the slot write happening before the head bump is all the
    synchronisation required. *)

type t

val create : capacity:int -> t
(** Allocates the buffer region (inside the simulator). *)

val capacity : t -> int

val push : t -> int -> bool
(** Owner side.  [push t p] appends pointer value [p]; returns [false]
    (without writing) when the buffer is full. *)

val size : t -> int
(** Owner-or-reclaimer estimate of current occupancy. *)

val drain : t -> (int -> bool) -> unit
(** Reclaimer side.  [drain t f] feeds buffered pointers to [f] in FIFO
    order and consumes them; stops early (leaving the rest buffered) when
    [f] returns [false]. *)
