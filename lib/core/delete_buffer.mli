(** Per-thread delete buffer (§4.2 "Reclamation").

    A single-reader/single-writer circular buffer in unmanaged memory: the
    owning thread pushes retired pointers at the head; the (unique, lock
    protected) reclaimer drains from the tail.  Head and tail are
    monotonically increasing counters, so no flag is needed to distinguish
    full from empty, and under the simulator's sequentially consistent
    memory the slot write happening before the head bump is all the
    synchronisation required.

    With [sealed_runs] (the collect-merge pipeline) the buffer gains a
    claim word and a second region: when the window fills, the owner
    {e seals} it — copies the window into a locally sorted run, off the
    phase critical path — and the reclaimer consumes the run whole,
    feeding the k-way merge instead of the master re-sort.  The window is
    never consumed by sealing, so a crash at any point of the protocol at
    worst re-drains it unsorted. *)

type t

val create : ?sealed_runs:bool -> capacity:int -> unit -> t
(** Allocates the buffer region (inside the simulator).  [sealed_runs]
    (default [false]) adds the claim word and the sealed-run region; the
    default layout is byte-identical to the pre-pipeline one. *)

val capacity : t -> int

val push : t -> int -> bool
(** Owner side.  [push t p] appends pointer value [p]; returns [false]
    (without writing) when the buffer is full — or, in [sealed_runs]
    mode, while the claim word is taken (sealed run pending, or a drain
    in flight). *)

val size : t -> int
(** Owner-or-reclaimer estimate of current occupancy. *)

val drain : t -> (int -> bool) -> unit
(** Reclaimer side.  [drain t f] feeds buffered pointers to [f] in FIFO
    order and consumes them; stops early (leaving the rest buffered) when
    [f] returns [false]. *)

val seal : t -> bool
(** Owner side, [sealed_runs] mode.  Claim the full window and publish it
    as a locally sorted run for the reclaimer to merge.  Returns [false]
    when the buffer is not in sealed-run mode, the claim is taken, the
    window turns out not to be full, or a reclaimer stole a frozen seal
    from under us. *)

val drain_phase :
  ?steal:bool ->
  t ->
  sealed:(len:int -> read:(int -> int) -> bool) ->
  loose:(int -> bool) ->
  unit
(** Reclaimer side, one collect per phase.  A pending sealed run is handed
    to [sealed] (which must stage {e all} [len] entries, reading them with
    [read], and return [true]; on [false] — no space — the run is kept for
    the next phase); otherwise the window is drained unsorted through
    [loose] exactly like {!drain}, including from buffers whose sealer
    crashed or froze mid-seal.  Falls back to {!drain} on legacy buffers.

    [steal] (default [false]) is the shard work-steal transition: an idle
    thread that claimed a whole reclamation shard drains its buffers
    under claim state [4] instead of [3], so a reclaimer recovering a
    shard can tell a helper's orphaned drain from its own.  The caller
    must hold the exclusive right to collect this buffer's shard (the
    phase lock, or the shard claim word); a drainer that died mid-drain
    (state 3 {e or} 4) is taken over and its window re-drained — any
    entries it had already staged are deduplicated at publish. *)
