(** ThreadScan tuning parameters. *)

type t = {
  max_threads : int;
      (** Upper bound on simulated thread ids that may participate. *)
  buffer_size : int;
      (** Per-thread delete-buffer capacity.  The paper uses 1024 pointers
          per thread (4096 in the tuned oversubscribed hash-table run); the
          scaled-down simulation defaults to 64 so reclamation phases happen
          within short horizons. *)
  help_free : bool;
      (** §7 future-work variant: scanning threads free a share of the
          previous phase's garbage in their next TS-Scan, unloading the
          reclaimer. *)
  ack_budget : int;
      (** Virtual cycles the reclaimer waits for scanner acknowledgments
          before declaring the phase blind and marking non-ackers suspect
          (see [docs/FAULTS.md]).  [<= 0] waits forever (the paper's
          original, wedge-prone behaviour). *)
  suspect_phases : int;
      (** Consecutive silent phases after which a suspect is reaped:
          force-deregistered, its delete buffer adopted, its last-known
          stack and registers proxy-scanned by the reclaimer from then on. *)
  takeover_steps : int;
      (** Scheduler steps a waiter tolerates the phase lock being held with
          no heartbeat movement before it declares the reclaimer dead and
          takes the phase over (the watchdog model: the stale holder is
          killed first, stale state is fenced by the phase generation).
          [<= 0] disables takeover. *)
  overflow_after : int;
      (** Full-buffer wait rounds (exponential backoff each) a retiring
          thread endures before parking the pointer on the shared overflow
          list — the hard backpressure bound while reclamation is degraded.
          [<= 0] waits forever. *)
  collect_merge : bool;
      (** Collect phase as a k-way merge: threads seal their full delete
          buffer into a locally sorted run (off the phase critical path),
          and the reclaimer merges the sealed runs, the loose appends and
          the carried-over survivors instead of re-sorting the whole
          master buffer every phase. *)
  scan_filter : bool;
      (** Publish a blocked Bloom filter over the master buffer alongside
          the sorted entries; scanners test each candidate word against
          it (one shared read) and binary-search only on a hit.  False
          positives fall through to the exact search; false negatives
          cannot happen (see [Ts_util.Bloom]). *)
  free_chunk : int;
      (** With [help_free]: number of work-queue slots a helper claims per
          fetch-and-add, looping until the queue is drained.  [0] keeps
          the legacy behaviour (each helper claims exactly one
          size-proportional chunk per scan and stops). *)
  adaptive_buffers : bool;
      (** Scale the per-thread delete-buffer capacity up to at least
          [4 x max_threads] so phase frequency stays bounded as threads
          are added (the paper's guidance that the buffer must outgrow
          the thread count for the amortisation argument to hold). *)
  shards : int;
      (** Reclamation shards: threads are grouped by tid into this many
          shards, each with its own master buffer; the collect/merge/
          publish of each shard is an independently claimable unit of
          work, so idle helpers steal whole shards from the reclaimer
          (see [docs/PERF.md], "Sharded reclamation").  [1] (default)
          keeps the legacy single-master layout byte for byte; [0]
          auto-derives from [max_threads] (one shard per 8 threads). *)
}

val default : t
(** [max_threads = 64], [buffer_size = 64], [help_free = false], and
    robustness defaults generous enough that healthy runs never trigger
    them: [ack_budget = 5_000_000] cycles, [suspect_phases = 3],
    [takeover_steps = 1_000_000], [overflow_after = 64].  All pipeline
    toggles off: [collect_merge = false], [scan_filter = false],
    [free_chunk = 0], [adaptive_buffers = false], [shards = 1] — the
    defaults replay the legacy single-stage reclamation byte for byte. *)

val paper : t
(** The paper's configuration: buffer of 1024 pointers, 256 threads. *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical values. *)

val resolved_shards : t -> int
(** The effective shard count: [shards] clamped to [1 .. max_threads],
    with [0] auto-derived as one shard per 8 threads. *)
