(** ThreadScan tuning parameters. *)

type t = {
  max_threads : int;
      (** Upper bound on simulated thread ids that may participate. *)
  buffer_size : int;
      (** Per-thread delete-buffer capacity.  The paper uses 1024 pointers
          per thread (4096 in the tuned oversubscribed hash-table run); the
          scaled-down simulation defaults to 64 so reclamation phases happen
          within short horizons. *)
  help_free : bool;
      (** §7 future-work variant: scanning threads free a share of the
          previous phase's garbage in their next TS-Scan, unloading the
          reclaimer. *)
}

val default : t
(** [max_threads = 64], [buffer_size = 64], [help_free = false]. *)

val paper : t
(** The paper's configuration: buffer of 1024 pointers, 256 threads. *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical values. *)
