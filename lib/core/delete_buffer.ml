module Runtime = Ts_rt
module Isort = Ts_util.Isort

(* Legacy layout:     [head][tail][slot 0 .. slot cap-1]
   Sealed-run layout: [head][tail][claim][slot 0 .. cap-1][sealed 0 .. cap-1]
   head/tail are monotone.

   The claim word arbitrates the sealed-run protocol (collect_merge):
     0  open: owner may push / seal, reclaimer may drain
     1  owner sealing: copying the full window into a locally sorted run
     2  sealed: a sorted run awaits the reclaimer
     3  reclaimer draining the (unsorted) window
     4  shard helper draining (the work-steal transition: same drain,
        entered by an idle thread that claimed the whole shard, so the
        reclaimer can tell a live steal from its own orphaned drain)
   The owner enters 1 and leaves it only by CAS (0->1, 1->2), so a
   reclaimer that steals a frozen seal (1->3) makes the woken owner's
   1->2 fail and the seal is abandoned with the window intact.  Sealing
   copies the window without consuming it — a crash at any point during
   a seal loses nothing, the window is still there to drain unsorted.
   A drainer (3 or 4) that dies between staging and consuming leaves the
   window intact too; the re-drain stages duplicates, which the publish
   dedup absorbs (the crash-safety argument of docs/PERF.md). *)
type t = { base : int; cap : int; sealed_runs : bool }

let head t = t.base

let tail t = t.base + 1

let claim t = t.base + 2

let data t = if t.sealed_runs then t.base + 3 else t.base + 2

let slot t k = data t + (k mod t.cap)

let sealed_slot t i = t.base + 3 + t.cap + i

let create ?(sealed_runs = false) ~capacity () =
  if capacity < 1 then invalid_arg "Delete_buffer.create";
  let words = if sealed_runs then 3 + (2 * capacity) else 2 + capacity in
  let base = Runtime.alloc_region words in
  { base; cap = capacity; sealed_runs }

let capacity t = t.cap

let push t p =
  if t.sealed_runs && Runtime.read (claim t) <> 0 then false
  else begin
    let h = Runtime.read (head t) in
    let tl = Runtime.read (tail t) in
    if h - tl >= t.cap then false
    else begin
      Runtime.write (slot t h) p;
      Runtime.write (head t) (h + 1);
      true
    end
  end

let size t =
  let h = Runtime.read (head t) in
  let tl = Runtime.read (tail t) in
  h - tl

let drain t f =
  let h = Runtime.read (head t) in
  let k = ref (Runtime.read (tail t)) in
  let keep_going = ref true in
  while !keep_going && !k < h do
    let p = Runtime.read (slot t !k) in
    if f p then begin
      incr k;
      Runtime.write (tail t) !k
    end
    else keep_going := false
  done

let seal t =
  t.sealed_runs
  && Runtime.cas (claim t) 0 1
  &&
  let h = Runtime.read (head t) in
  let tl = Runtime.read (tail t) in
  if h - tl < t.cap then begin
    (* A drain emptied the window between our failed push and the claim;
       nothing to seal — reopen and let the retry push succeed. *)
    Runtime.write (claim t) 0;
    false
  end
  else begin
    let run = Array.make t.cap 0 in
    for i = 0 to t.cap - 1 do
      run.(i) <- Runtime.read (slot t (tl + i))
    done;
    Isort.sort_prefix run t.cap;
    (* private sort: ~n log n cycles of local work *)
    Runtime.advance (t.cap * 8);
    for i = 0 to t.cap - 1 do
      Runtime.write (sealed_slot t i) run.(i)
    done;
    (* CAS, not a plain write: a reclaimer that judged us frozen may have
       stolen the seal (1->3) and drained the window under us. *)
    Runtime.cas (claim t) 1 2
  end

let rec drain_phase ?(steal = false) t ~sealed ~loose =
  if not t.sealed_runs then drain t loose
  else begin
    let draining = if steal then 4 else 3 in
    let c = Runtime.read (claim t) in
    if c = 2 then begin
      if Runtime.cas (claim t) 2 draining then begin
        if sealed ~len:t.cap ~read:(fun i -> Runtime.read (sealed_slot t i)) then begin
          (* The run is staged; consume the whole window it copied. *)
          Runtime.write (tail t) (Runtime.read (tail t) + t.cap);
          Runtime.write (claim t) 0
        end
        else
          (* No room in the master this phase; the run keeps until the
             next one (pushes stay blocked, which is the backpressure). *)
          Runtime.write (claim t) 2
      end
      else drain_phase ~steal t ~sealed ~loose
    end
    else if c = 3 || c = 4 || Runtime.cas (claim t) c draining then begin
      (* c = 0: plain open window.  c = 1: the sealer crashed or froze
         mid-copy — stealing the claim makes its finishing CAS fail, and
         the window (which sealing never consumes) is drained here.
         c = 3 or 4: a reclaimer or shard helper died mid-drain (the
         caller holds the phase lock / shard claim, so a live drainer is
         impossible here); the undrained suffix is still in the window. *)
      drain t loose;
      Runtime.write (claim t) 0
    end
    else drain_phase ~steal t ~sealed ~loose
  end
