module Runtime = Ts_rt

(* Layout: [head][tail][slot 0 .. slot cap-1].  head/tail are monotone. *)
type t = { base : int; cap : int }

let head t = t.base

let tail t = t.base + 1

let slot t k = t.base + 2 + (k mod t.cap)

let create ~capacity =
  if capacity < 1 then invalid_arg "Delete_buffer.create";
  let base = Runtime.alloc_region (2 + capacity) in
  { base; cap = capacity }

let capacity t = t.cap

let push t p =
  let h = Runtime.read (head t) in
  let tl = Runtime.read (tail t) in
  if h - tl >= t.cap then false
  else begin
    Runtime.write (slot t h) p;
    Runtime.write (head t) (h + 1);
    true
  end

let size t =
  let h = Runtime.read (head t) in
  let tl = Runtime.read (tail t) in
  h - tl

let drain t f =
  let h = Runtime.read (head t) in
  let k = ref (Runtime.read (tail t)) in
  let keep_going = ref true in
  while !keep_going && !k < h do
    let p = Runtime.read (slot t !k) in
    if f p then begin
      incr k;
      Runtime.write (tail t) !k
    end
    else keep_going := false
  done
