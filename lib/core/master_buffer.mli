(** The master delete buffer a reclamation phase operates on.

    The reclaimer aggregates all per-thread delete buffers here, sorts the
    live prefix, and publishes the count; scanning threads binary-search it
    (shared reads) and set mark words.  Marked entries survive the sweep and
    are carried over into the next phase's prefix. *)

type t

val create : ?filter:bool -> capacity:int -> unit -> t
(** [filter] (default [false]) additionally allocates a blocked Bloom
    filter region that both publish paths maintain over the published
    prefix; the default layout is byte-identical to the pre-pipeline
    one. *)

val capacity : t -> int

val count : t -> int
(** Published number of (sorted) entries in the current phase. *)

val staged_pos : t -> int
(** Reclaimer side: the private append cursor (next staged index). *)

val space : t -> int
(** Reclaimer side: how many more entries [append] will accept. *)

val append : t -> int -> bool
(** Reclaimer side, before publication: append an entry; [false] if full. *)

val publish_sorted : t -> unit
(** Reclaimer side: sort the staged entries (pulling them into private
    memory, sorting, writing back — priced accordingly), deduplicate, clear
    all marks, and publish the count. *)

val publish_merged : t -> runs:(int * int) list -> unit
(** Reclaimer side, collect-merge pipeline: like {!publish_sorted}, but
    built as a k-way merge of already-sorted runs — the carried-over
    prefix left by {!sweep} and the sealed runs staged at the [(start,
    len)] positions in [runs] (ascending, non-overlapping) — with only
    the loose entries between them sorted here.  Equivalent output
    (sorted, deduplicated, marks cleared, filter rebuilt, count
    published), without re-sorting what is already sorted. *)

val filter_mask : t -> int
(** Scanner side: the published filter's table mask, or [-1] when the
    filter is disabled.  Read once per scan; the mask is republished with
    every count. *)

val filter_test : t -> mask:int -> int -> bool
(** Scanner side: one shared read of the filter word for [key].  [false]
    means {e definitely not} in the published prefix (skip the binary
    search); [true] means maybe.  Only meaningful under a mask obtained
    from {!filter_mask} after the corresponding count was published. *)

val find : t -> int -> int
(** Scanner side: binary search over the published prefix via shared reads;
    returns the index or [-1]. *)

val mark : t -> int -> unit
(** Scanner side: mark entry [i] as still referenced. *)

val is_marked : t -> int -> bool

val entry : t -> int -> int

val sweep : ?ignore_marks:bool -> t -> (int -> unit) -> int
(** Reclaimer side: call [f] on every unmarked entry, compact the marked
    ones to the front as the next phase's carry-over, reset the staged
    count to the carry-over size, and return the number of entries carried
    over.  Crash-safe ordering: the buffer is made consistent (compacted,
    count hidden) {e before} the first [f] call, so a reclaimer that dies
    mid-sweep can leak a bounded number of entries but never double-free
    or resurrect one.  [ignore_marks] (default [false]) treats every entry
    as unmarked — the checker's {e deliberately wrong} sweep used to
    validate that the concurrency checker catches a skipped carry-over. *)

val bounds : t -> int * int
(** [(lo, hi)] of the published prefix, for the scanner's cheap range
    filter; [(max_int, min_int)] when empty. *)
