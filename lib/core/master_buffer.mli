(** The master delete buffer a reclamation phase operates on.

    The reclaimer aggregates all per-thread delete buffers here, sorts the
    live prefix, and publishes the count; scanning threads binary-search it
    (shared reads) and set mark words.  Marked entries survive the sweep and
    are carried over into the next phase's prefix. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val count : t -> int
(** Published number of (sorted) entries in the current phase. *)

val append : t -> int -> bool
(** Reclaimer side, before publication: append an entry; [false] if full. *)

val publish_sorted : t -> unit
(** Reclaimer side: sort the staged entries (pulling them into private
    memory, sorting, writing back — priced accordingly), deduplicate, clear
    all marks, and publish the count. *)

val find : t -> int -> int
(** Scanner side: binary search over the published prefix via shared reads;
    returns the index or [-1]. *)

val mark : t -> int -> unit
(** Scanner side: mark entry [i] as still referenced. *)

val is_marked : t -> int -> bool

val entry : t -> int -> int

val sweep : ?ignore_marks:bool -> t -> (int -> unit) -> int
(** Reclaimer side: call [f] on every unmarked entry, compact the marked
    ones to the front as the next phase's carry-over, reset the staged
    count to the carry-over size, and return the number of entries carried
    over.  Crash-safe ordering: the buffer is made consistent (compacted,
    count hidden) {e before} the first [f] call, so a reclaimer that dies
    mid-sweep can leak a bounded number of entries but never double-free
    or resurrect one.  [ignore_marks] (default [false]) treats every entry
    as unmarked — the checker's {e deliberately wrong} sweep used to
    validate that the concurrency checker catches a skipped carry-over. *)

val bounds : t -> int * int
(** [(lo, hi)] of the published prefix, for the scanner's cheap range
    filter; [(max_int, min_int)] when empty. *)
