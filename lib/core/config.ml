type t = {
  max_threads : int;
  buffer_size : int;
  help_free : bool;
  ack_budget : int;
  suspect_phases : int;
  takeover_steps : int;
  overflow_after : int;
  collect_merge : bool;
  scan_filter : bool;
  free_chunk : int;
  adaptive_buffers : bool;
  shards : int;
}

let default =
  {
    max_threads = 64;
    buffer_size = 64;
    help_free = false;
    ack_budget = 5_000_000;
    suspect_phases = 3;
    takeover_steps = 1_000_000;
    overflow_after = 64;
    collect_merge = false;
    scan_filter = false;
    free_chunk = 0;
    adaptive_buffers = false;
    shards = 1;
  }

let paper = { default with max_threads = 256; buffer_size = 1024 }

let validate t =
  if t.max_threads < 1 then invalid_arg "Threadscan config: max_threads < 1";
  if t.buffer_size < 2 then invalid_arg "Threadscan config: buffer_size < 2";
  if t.suspect_phases < 1 then invalid_arg "Threadscan config: suspect_phases < 1";
  if t.free_chunk < 0 then invalid_arg "Threadscan config: free_chunk < 0";
  if t.shards < 0 then invalid_arg "Threadscan config: shards < 0"

(* [shards = 0] means auto: one shard per 8 participating threads, capped
   so tiny runs keep the single-master legacy layout. *)
let resolved_shards t =
  let n = if t.shards = 0 then t.max_threads / 8 else t.shards in
  max 1 (min n t.max_threads)
