type t = { max_threads : int; buffer_size : int; help_free : bool }

let default = { max_threads = 64; buffer_size = 64; help_free = false }

let paper = { max_threads = 256; buffer_size = 1024; help_free = false }

let validate t =
  if t.max_threads < 1 then invalid_arg "Threadscan config: max_threads < 1";
  if t.buffer_size < 2 then invalid_arg "Threadscan config: buffer_size < 2"
