(** ThreadScan: automatic and scalable memory reclamation (SPAA 2015).

    The library implements the paper's protocol on the simulated
    multiprocessor:

    - {b retire} ({!Ts_smr.Smr.t.retire}): the caller pushes the unlinked
      node's pointer into its private single-reader/single-writer
      {!Delete_buffer}.  When the buffer is full, the caller becomes the
      reclaimer (serialised by a lock) and runs a {b collect} phase.
    - {b collect}: aggregate every thread's delete buffer (plus the marked
      carry-over of the previous phase) into the {!Master_buffer}, sort it,
      bump the phase id, signal every other registered thread, run TS-Scan
      locally, wait for all acknowledgments, then free every unmarked entry
      and carry the marked ones over.
    - {b TS-Scan} (the signal handler): walk the thread's shadow stack, the
      interrupted register context, and any registered heap blocks
      word-by-word; mask the low-order tag bits of each word; binary-search
      the master buffer; mark hits; acknowledge.

    Beyond [retire], every hook is free: ThreadScan is automatic — the data
    structure neither announces pointers (hazard pointers) nor brackets its
    operations (epochs).

    The §4.3 extension ({!add_heap_block}/{!remove_heap_block}) registers
    per-thread heap blocks holding private references so TS-Scan covers
    them.  The §7 future-work variant ([help_free]) makes scanning threads
    free a chunk of the previous phase's garbage inside their handler,
    unloading the reclaimer. *)

module Config = Config
module Delete_buffer = Delete_buffer
module Master_buffer = Master_buffer

type t

val create : ?config:Config.t -> unit -> t
(** Builds a ThreadScan instance (allocates its buffers; must run inside
    the simulator). *)

val smr : t -> Ts_smr.Smr.t
(** The scheme-neutral interface data structures consume.  [thread_init]
    installs the TS-Scan signal handler and registers the thread;
    [thread_exit] deregisters it (a dead thread is never waited for). *)

val config : t -> Config.t

(** {1 §4.3 extension: heap blocks with private references} *)

val add_heap_block : start_addr:int -> len:int -> unit
(** Declare a heap block holding private references of the calling thread;
    TS-Scan will include it in the scan. *)

val remove_heap_block : start_addr:int -> len:int -> unit

(** {1 Introspection (tests, benchmarks)} *)

val phases : t -> int
(** Completed collect phases. *)

val signals_sent : t -> int

val carried_last : t -> int
(** Entries carried over (still referenced) after the last phase. *)

val scan_words : t -> int
(** Total words examined by all TS-Scans. *)

val scan_hits : t -> int
(** Scan words that matched a master-buffer entry. *)

val helped_frees : t -> int
(** Nodes freed inside scanners' handlers ([help_free] variant). *)

val full_waits : t -> int
(** Times a thread found its buffer full while another reclaimer was
    active and had to wait (usually to discover its buffer drained). *)

(** {1 Reclamation-pipeline metrics (see [docs/PERF.md])} *)

val sealed_runs : t -> int
(** Full delete-buffer windows sealed as locally sorted runs by their
    owners ([collect_merge]). *)

val merged_runs : t -> int
(** Sealed runs consumed whole by a k-way merge publish. *)

val filter_hits : t -> int
(** In-range scan words the Bloom prefilter passed through to the binary
    search ([scan_filter]). *)

val filter_rejects : t -> int
(** In-range scan words the Bloom prefilter screened out — each saved a
    binary search over the master buffer. *)

val shards : t -> int
(** Resolved reclamation shard count ({!Config.resolved_shards}): threads
    are grouped by [tid mod shards], each shard owning a master buffer
    whose collect/merge/publish is an independently claimable unit.  [1]
    is the legacy single-master layout. *)

val shard_steals : t -> int
(** Shard collects claimed and run by idle helpers (threads spinning in
    retire on a full buffer) instead of the reclaimer. *)

val shard_recoveries : t -> int
(** Shards the reclaimer recovered after the claiming helper died or
    stalled past the budget: the holder is crashed, the claim taken, and
    the shard re-collected (the re-drain dedups at publish). *)

val outstanding : t -> int
(** Nodes retired but not yet freed. *)

val phase_latencies : t -> int list
(** Cycles the reclaiming thread spent inside each collect phase, in phase
    order — the §7 responsiveness concern: the reclaimer is unavailable to
    its application for this long.  The [help_free] variant shortens these
    by moving the free() calls into the scanners' handlers. *)

val total_phase_cycles : t -> int
(** Sum of {!phase_latencies}: total cycles spent inside collect phases.
    The harness scales this by the wall-clock-per-cycle ratio to report
    [reclaim_phase_ns] per benchmark cell. *)

val reclaimer_frees : t -> int
(** Nodes freed by the reclaimer inside collect phases (as opposed to by
    helping scanners). *)

(** {1 Degradation metrics (fault tolerance, see [docs/FAULTS.md])}

    The protocol degrades gracefully when threads crash or stall mid-phase:
    a bounded ack wait turns a wedged phase into a {e blind} one (carry
    everything, free nothing), non-ackers become {e suspects} whose stacks
    the reclaimer proxy-scans, persistent suspects are {e reaped}
    (force-deregistered, buffers adopted), a dead reclaimer's phase lock is
    taken over behind a generation fence, and retiring threads fall back to
    a shared overflow list instead of blocking forever. *)

val ack_timeouts : t -> int
(** Phases whose ack wait exhausted [ack_budget] and went blind. *)

val carried_blind : t -> int
(** Master-buffer entries carried over because their phase was blind. *)

val suspected_total : t -> int
(** Threads ever marked suspect (cumulative). *)

val suspects_now : t -> int
(** Threads currently suspect. *)

val recoveries : t -> int
(** Suspects cleared because they acked again. *)

val reaps : t -> int
(** Suspects force-deregistered (crashed, or silent for
    [suspect_phases] phases). *)

val adopted : t -> int
(** Buffered retirements adopted from reaped threads. *)

val proxy_scans : t -> int
(** Stacks/registers scanned by the reclaimer on a suspect's behalf. *)

val takeovers : t -> int
(** Phase locks wrested from a reclaimer whose heartbeat went stale. *)

val gen_aborts : t -> int
(** Sweeps aborted by the phase-generation fence (stale reclaimer). *)

val overflow_pushes : t -> int
(** Retirements parked on the overflow list by backpressure. *)

(** {1 Fault injection (checker validation only)}

    Deliberate protocol bugs, used to prove the concurrency checker in
    [lib/check] actually catches violations.  Production code must leave
    this at {!No_fault}. *)

type inject =
  | No_fault
  | Skip_carryover
      (** The sweep frees {e every} master-buffer entry, marked or not —
          still-referenced nodes are reclaimed, a use-after-free. *)
  | Skip_ack_wait
      (** The reclaimer sweeps without waiting for scanner acks — nodes a
          scanner was about to mark get freed under it. *)
  | Skip_proxy_scan
      (** Suspects are suspected and reaped but never proxy-scanned — a
          stalled thread's held node is freed under it, proving the proxy
          scan is load-bearing for the degradation ladder. *)
  | Crash_mid_phase
      (** The next reclaimer kills itself right after signaling (once):
        the phase lock is orphaned mid-phase, exercising heartbeat
        takeover and the generation fence. *)
  | Stall_mid_phase
      (** Like {!Crash_mid_phase} but the reclaimer stalls forever
        instead of dying: the phase lock is held by a frozen thread, so
        workers must heartbeat-takeover, and a later [Ts_rt.unstall]
        resumes the victim into a generation-fence abort. *)

val set_inject : t -> inject -> unit

val inject : t -> inject
