module Config = Config
module Delete_buffer = Delete_buffer
module Master_buffer = Master_buffer
module Runtime = Ts_sim.Runtime
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Spinlock = Ts_sync.Spinlock
module Backoff = Ts_sync.Backoff

type inject = No_fault | Skip_carryover | Skip_ack_wait

type t = {
  cfg : Config.t;
  buffers : Delete_buffer.t array;
  master : Master_buffer.t;
  lock : Spinlock.t;
  phase_addr : int; (* current phase id, written by the reclaimer *)
  acks_base : int; (* acks_base + tid: last phase acknowledged *)
  registered_base : int; (* registered_base + tid: participation flag *)
  work_idx : int; (* help-free: next unclaimed index *)
  work_count : int; (* help-free: number of queued frees *)
  work_base : int; (* help-free: queued pointers *)
  mutable smr_counters : Smr.counters option;
  mutable smr_self : Smr.t option;
  mutable phases : int;
  mutable signals : int;
  mutable carried : int;
  mutable scan_words : int;
  mutable scan_hits : int;
  mutable helped : int;
  mutable full_waits : int;
  phase_latencies : Ts_util.Vec.t; (* cycles spent inside each do_phase *)
  mutable free_burden : int; (* nodes freed inside collect, by the reclaimer *)
  mutable inject : inject; (* deliberate protocol bug, for checker validation *)
}

let counters t = Option.get t.smr_counters

let debug_scan = Sys.getenv_opt "TS_DEBUG_SCAN" <> None

(* ------------------------------------------------------------------ *)
(* TS-Scan: the signal-handler side (Algorithm 1, lines 18-26)         *)
(* ------------------------------------------------------------------ *)

(* Help-free variant (§7): grab a chunk of the previous phase's garbage and
   free it on behalf of the reclaimer. *)
let help_free t =
  let cnt = Runtime.read t.work_count in
  if cnt > 0 then begin
    let chunk = max 1 (cnt / t.cfg.max_threads) in
    let start = Runtime.faa t.work_idx chunk in
    let stop = min (start + chunk) cnt in
    let c = counters t in
    for i = start to stop - 1 do
      let p = Runtime.read (t.work_base + i) in
      Runtime.free (Ptr.addr p);
      c.freed <- c.freed + 1;
      t.helped <- t.helped + 1
    done
  end

let scan_range t (base, len) =
  let lo, hi = Master_buffer.bounds t.master in
  for a = base to base + len - 1 do
    let w = Runtime.read a in
    let m = Ptr.mask w in
    t.scan_words <- t.scan_words + 1;
    if m >= lo && m <= hi then begin
      let idx = Master_buffer.find t.master m in
      if idx >= 0 then begin
        if debug_scan then
          Printf.eprintf "[scan] tid=%d hit at addr=%d (range base=%d len=%d) value=%d\n%!"
            (Runtime.self ()) a base len m;
        Master_buffer.mark t.master idx;
        t.scan_hits <- t.scan_hits + 1
      end
    end
  done

let ts_scan t =
  if t.cfg.help_free then help_free t;
  if Master_buffer.count t.master > 0 then begin
    let sbase, sp = Runtime.stack_range () in
    scan_range t (sbase, sp - sbase);
    scan_range t (Runtime.saved_reg_range ());
    List.iter (scan_range t) (Runtime.private_ranges ())
  end;
  (* Acknowledge: publish the phase we scanned for. *)
  let phase = Runtime.read t.phase_addr in
  Runtime.write (t.acks_base + Runtime.self ()) phase

(* ------------------------------------------------------------------ *)
(* TS-Collect: the reclaimer side (Algorithm 1, lines 1-16)            *)
(* ------------------------------------------------------------------ *)

let registered t u = Runtime.read (t.registered_base + u) <> 0

let drain_work_leftovers t =
  (* After all acks, nobody is inside a handler: the reclaimer finishes
     whatever help-free work the scanners did not claim. *)
  let cnt = Runtime.read t.work_count in
  if cnt > 0 then begin
    let c = counters t in
    let i = ref (Runtime.faa t.work_idx cnt) in
    while !i < cnt do
      let p = Runtime.read (t.work_base + !i) in
      Runtime.free (Ptr.addr p);
      c.freed <- c.freed + 1;
      t.free_burden <- t.free_burden + 1;
      incr i
    done;
    Runtime.write t.work_count 0;
    Runtime.write t.work_idx 0
  end

let wait_for_acks t phase signaled =
  let b = Backoff.create () in
  let pending = ref signaled in
  while !pending <> [] do
    pending :=
      List.filter
        (fun u -> Runtime.read (t.acks_base + u) <> phase && registered t u)
        !pending;
    if !pending <> [] then Backoff.once b
  done

(* One reclamation phase.  Caller holds [t.lock]. *)
let do_phase t =
  let phase_start = Runtime.now () in
  let c = counters t in
  let self = Runtime.self () in
  (* Snapshot our register context before the aggregation loop clobbers the
     register file with buffered pointers. *)
  Runtime.save_regs ();
  t.phases <- t.phases + 1;
  c.cleanups <- c.cleanups + 1;
  (* Aggregate every thread's delete buffer into the master buffer (on top
     of the previous phase's carry-over).  If the master fills up, the rest
     simply stays buffered for the next phase. *)
  Array.iter (fun b -> Delete_buffer.drain b (Master_buffer.append t.master)) t.buffers;
  Master_buffer.publish_sorted t.master;
  let phase = Runtime.read t.phase_addr + 1 in
  Runtime.write t.phase_addr phase;
  (* Signal all other registered threads, then scan ourselves. *)
  let signaled = ref [] in
  for u = 0 to t.cfg.max_threads - 1 do
    if u <> self && registered t u then begin
      Runtime.signal u;
      t.signals <- t.signals + 1;
      signaled := u :: !signaled
    end
  done;
  ts_scan t;
  (* A thread that exits mid-phase is deregistered and never acks: its
     stack is gone, so skipping it is safe. *)
  if t.inject <> Skip_ack_wait then wait_for_acks t phase !signaled;
  let ignore_marks = t.inject = Skip_carryover in
  if t.cfg.help_free then begin
    drain_work_leftovers t;
    let queued = ref 0 in
    t.carried <-
      Master_buffer.sweep ~ignore_marks t.master (fun p ->
          Runtime.write (t.work_base + !queued) p;
          incr queued);
    Runtime.write t.work_idx 0;
    Runtime.write t.work_count !queued
  end
  else
    t.carried <-
      Master_buffer.sweep ~ignore_marks t.master (fun p ->
          Runtime.free (Ptr.addr p);
          c.freed <- c.freed + 1;
          t.free_burden <- t.free_burden + 1);
  Ts_util.Vec.push t.phase_latencies (Runtime.now () - phase_start)

(* ------------------------------------------------------------------ *)
(* The SMR-facing hooks                                                 *)
(* ------------------------------------------------------------------ *)

let max_phase_latency t =
  let m = ref 0 in
  Ts_util.Vec.iter (fun d -> if d > !m then m := d) t.phase_latencies;
  !m

let avg_phase_latency t =
  let n = Ts_util.Vec.length t.phase_latencies in
  if n = 0 then 0
  else begin
    let sum = ref 0 in
    Ts_util.Vec.iter (fun d -> sum := !sum + d) t.phase_latencies;
    !sum / n
  end

let retire t (c : Smr.counters) p =
  c.retired <- c.retired + 1;
  let tid = Runtime.self () in
  let masked = Ptr.mask p in
  let b = Backoff.create () in
  while not (Delete_buffer.push t.buffers.(tid) masked) do
    (* Full buffer: become the reclaimer, or wait for the active one — by
       the time the lock is free our buffer has usually been drained. *)
    if Spinlock.try_acquire t.lock then begin
      (match do_phase t with
      | () -> Spinlock.release t.lock
      | exception e ->
          Spinlock.release t.lock;
          raise e);
      Backoff.reset b
    end
    else begin
      t.full_waits <- t.full_waits + 1;
      Backoff.once b
    end
  done

let thread_init t () =
  let tid = Runtime.self () in
  if tid >= t.cfg.max_threads then invalid_arg "Threadscan: tid exceeds max_threads";
  Runtime.set_signal_handler (fun () -> ts_scan t);
  Runtime.write (t.registered_base + tid) 1

let thread_exit t () =
  let tid = Runtime.self () in
  Runtime.write (t.registered_base + tid) 0

(* Quiesce after all workers exited: run phases until nothing more can be
   freed.  Anything still pinned by the caller's own (conservatively
   scanned) stack stays allocated. *)
let flush t () =
  Spinlock.acquire t.lock;
  let continue_ = ref true in
  while !continue_ do
    (* Drop conservative pins left in our own register file by the previous
       iteration's sweep (the caller holds no node references here). *)
    Runtime.clear_regs ();
    let before = (counters t).freed in
    do_phase t;
    drain_work_leftovers t;
    let buffered = Array.exists (fun b -> Delete_buffer.size b > 0) t.buffers in
    (* Keep going only while the last phase made progress: whatever remains
       is pinned by the caller's own conservatively-scanned stack. *)
    continue_ := (buffered || t.carried > 0) && (counters t).freed > before
  done;
  Spinlock.release t.lock

let create ?(config = Config.default) () =
  Config.validate config;
  let master_cap = (config.max_threads * config.buffer_size) + 1024 in
  let t =
    {
      cfg = config;
      buffers =
        Array.init config.max_threads (fun _ -> Delete_buffer.create ~capacity:config.buffer_size);
      master = Master_buffer.create ~capacity:master_cap;
      lock = Spinlock.create ();
      phase_addr = Runtime.alloc_region 1;
      acks_base = Runtime.alloc_region config.max_threads;
      registered_base = Runtime.alloc_region config.max_threads;
      work_idx = Runtime.alloc_region 1;
      work_count = Runtime.alloc_region 1;
      work_base = Runtime.alloc_region master_cap;
      smr_counters = None;
      smr_self = None;
      phases = 0;
      signals = 0;
      carried = 0;
      scan_words = 0;
      scan_hits = 0;
      helped = 0;
      full_waits = 0;
      phase_latencies = Ts_util.Vec.create ();
      free_burden = 0;
      inject = No_fault;
    }
  in
  let smr =
    Smr.make ~name:"threadscan" ~thread_init:(thread_init t) ~thread_exit:(thread_exit t)
      ~flush:(flush t)
      ~extras:(fun () ->
        [
          ("phases", t.phases);
          ("signals", t.signals);
          ("carried", t.carried);
          ("scan-words", t.scan_words);
          ("scan-hits", t.scan_hits);
          ("helped-frees", t.helped);
          ("full-waits", t.full_waits);
          ("reclaimer-frees", t.free_burden);
          ("max-phase-latency", max_phase_latency t);
          ("avg-phase-latency", avg_phase_latency t);
        ])
      ~retire:(retire t) ()
  in
  t.smr_counters <- Some smr.Smr.counters;
  t.smr_self <- Some smr;
  t

let smr t = Option.get t.smr_self

let config t = t.cfg

let add_heap_block ~start_addr ~len = Runtime.add_private_range start_addr len

let remove_heap_block ~start_addr ~len = Runtime.remove_private_range start_addr len

let phases t = t.phases

let signals_sent t = t.signals

let carried_last t = t.carried

let scan_words t = t.scan_words

let scan_hits t = t.scan_hits

let helped_frees t = t.helped

let full_waits t = t.full_waits

let outstanding t =
  let c = counters t in
  c.retired - c.freed

let phase_latencies t =
  let out = ref [] in
  Ts_util.Vec.iter (fun d -> out := d :: !out) t.phase_latencies;
  List.rev !out

let reclaimer_frees t = t.free_burden

let set_inject t inject = t.inject <- inject

let inject t = t.inject
