module Config = Config
module Delete_buffer = Delete_buffer
module Master_buffer = Master_buffer
module Runtime = Ts_rt
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Backoff = Ts_sync.Backoff
module Padded = Ts_util.Padded

type inject =
  | No_fault
  | Skip_carryover
  | Skip_ack_wait
  | Skip_proxy_scan
  | Crash_mid_phase
  | Stall_mid_phase
      (* stall-forever at the same point Crash_mid_phase kills: the
         reclaimer freezes holding the phase lock, so workers must
         heartbeat-takeover; an eventual [Ts_rt.unstall] resumes it into
         a generation-fence abort *)

type t = {
  cfg : Config.t;
  nshards : int; (* resolved shard count; 1 = the legacy single-master layout *)
  buffers : Delete_buffer.t array;
  masters : Master_buffer.t array; (* one master buffer per shard *)
  collect_gen_addr : int; (* sharding: collect generation, bumped per phase *)
  shard_claims : int; (* sharding: per-shard claim word, Padded stride *)
  shard_dones : int; (* sharding: per-shard done stamp (= collect gen) *)
  steal_stats : int; (* sharding: FAA'd by helpers [steals; merged runs] *)
  owner_addr : int; (* phase lock: 0 free, else holder tid + 1 *)
  beat_addr : int; (* heartbeat: step stamp of the holder's last progress *)
  gen_addr : int; (* phase generation: bumped on commit and on takeover *)
  phase_addr : int; (* current phase id, written by the reclaimer *)
  acks_base : int; (* acks_base + tid: last phase acknowledged *)
  registered_base : int; (* registered_base + tid: participation flag *)
  work_idx : int; (* help-free: next unclaimed index *)
  work_count : int; (* help-free: number of queued frees *)
  work_base : int; (* help-free: queued pointers *)
  (* Degradation-ladder state, owned by whoever holds the phase lock. *)
  suspect_since : int array; (* phase at which tid went suspect; -1 clear *)
  suspect_ack : int array; (* ack value at suspicion, to detect recovery *)
  suspect_silent : int array; (* consecutive silent phases while suspect *)
  reaped : bool array;
  mutable overflow : int list; (* backpressure: parked retirements *)
  mutable smr_counters : Smr.counters option;
  mutable smr_self : Smr.t option;
  mutable phases : int;
  mutable signals : int;
  mutable carried : int;
  mutable scan_words : int;
  mutable scan_hits : int;
  mutable helped : int;
  mutable full_waits : int;
  mutable seals : int; (* pipeline: delete-buffer windows sealed as sorted runs *)
  mutable merged_runs : int; (* pipeline: sealed runs consumed by a merge publish *)
  mutable filter_hits : int; (* pipeline: in-range words the Bloom filter passed *)
  mutable filter_rejects : int; (* pipeline: in-range words the filter screened out *)
  phase_latencies : Ts_util.Vec.t; (* cycles spent inside each do_phase *)
  mutable free_burden : int; (* nodes freed inside collect, by the reclaimer *)
  mutable ack_timeouts : int; (* phases whose ack wait exhausted the budget *)
  mutable carried_blind : int; (* entries carried because a phase was blind *)
  mutable suspected_total : int;
  mutable recoveries : int; (* suspects that acked again and were cleared *)
  mutable reaps : int;
  mutable adopted : int; (* buffered retirements adopted from reaped threads *)
  mutable proxy_scans : int; (* stacks scanned by the reclaimer on behalf *)
  mutable takeovers : int; (* phase locks wrested from stale reclaimers *)
  mutable gen_aborts : int; (* sweeps aborted by the generation fence *)
  mutable overflow_pushes : int; (* retirements parked by backpressure *)
  mutable shard_steals : int; (* shard collects stolen by idle helpers *)
  mutable shard_recoveries : int; (* shards recovered from a dead helper *)
  mutable inject : inject; (* deliberate protocol bug, for checker validation *)
}

let counters t = Option.get t.smr_counters

let debug_scan = Sys.getenv_opt "TS_DEBUG_SCAN" <> None

(* ------------------------------------------------------------------ *)
(* Sharding: tids are grouped by [tid mod nshards]; each shard owns a
   master buffer, a claim word and a done stamp (stride-padded so the
   claim CASes of concurrent collectors never share a cache line).      *)
(* ------------------------------------------------------------------ *)

let shard_of t tid = tid mod t.nshards

let shard_claim t s = Padded.index t.shard_claims s

let shard_done t s = Padded.index t.shard_dones s

let total_count t =
  let n = ref 0 in
  for s = 0 to t.nshards - 1 do
    n := !n + Master_buffer.count t.masters.(s)
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Phase lock: a raw owner word so waiters can identify (and, past the
   heartbeat budget, replace) a dead holder — a Spinlock's anonymous 0/1
   word cannot support takeover.                                       *)
(* ------------------------------------------------------------------ *)

let try_acquire t =
  Runtime.read t.owner_addr = 0 && Runtime.cas t.owner_addr 0 (Runtime.self () + 1)

let release t = Runtime.write t.owner_addr 0

let heartbeat t = Runtime.write t.beat_addr (Runtime.steps_now ())

(* Watchdog: a waiter that has watched the same holder make zero heartbeat
   progress for [takeover_steps] scheduler steps declares it dead, kills it
   (it must never wake up mid-sweep believing it still owns the phase) and
   adopts the lock.  The generation bump fences any state the orphaned
   phase left behind.  The [owner_seen]/[beat_seen]/[seen_at] refs persist
   across the caller's wait rounds: staleness is measured from the first
   observation of an unchanged (owner, beat) pair, so a freshly acquired
   lock is never mistaken for a stale one. *)
let check_takeover t owner_seen beat_seen seen_at =
  t.cfg.takeover_steps > 0
  &&
  let o = Runtime.read t.owner_addr in
  if o = 0 then begin
    owner_seen := 0;
    false
  end
  else begin
    let bt = Runtime.read t.beat_addr in
    let s = Runtime.steps_now () in
    if o <> !owner_seen || bt <> !beat_seen then begin
      owner_seen := o;
      beat_seen := bt;
      seen_at := s;
      false
    end
    else if s - !seen_at <= t.cfg.takeover_steps then false
    else begin
      let victim = o - 1 in
      Runtime.crash victim;
      if Runtime.cas t.owner_addr o (Runtime.self () + 1) then begin
        t.takeovers <- t.takeovers + 1;
        ignore (Runtime.faa t.gen_addr 1);
        Runtime.note (Fmt.str "took over the phase lock from stale reclaimer t%d" victim);
        true
      end
      else begin
        (* another waiter won the takeover race *)
        owner_seen := 0;
        false
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* TS-Scan: the signal-handler side (Algorithm 1, lines 18-26)         *)
(* ------------------------------------------------------------------ *)

(* Help-free variant (§7): grab a chunk of the previous phase's garbage and
   free it on behalf of the reclaimer.  Every free is preceded by a CAS
   claiming the queue slot: a helper that stalled mid-chunk and wakes after
   the queue was recycled finds its claims failing instead of double-freeing,
   and the reclaimer can likewise sweep up a dead helper's unclaimed slots. *)
let help_free t =
  let cnt = Runtime.read t.work_count in
  if cnt > 0 then begin
    let c = counters t in
    let free_range start stop =
      for i = start to stop - 1 do
        let p = Runtime.read (t.work_base + i) in
        if p <> 0 && Runtime.cas (t.work_base + i) p 0 then begin
          (* tslint: allow sigsafe -- both backends deliver signals at safepoint polls, never preempting an allocator call; helping runs between polls, as the paper's helpers run outside the handler *)
          Runtime.free (Ptr.addr p);
          Smr.add_freed c 1;
          t.helped <- t.helped + 1
        end
      done
    in
    if t.cfg.free_chunk > 0 then begin
      (* Pipeline free phase: every helper loops, claiming a fixed-size
         chunk per fetch-and-add, until the queue is exhausted — the whole
         backlog is freed in parallel instead of one share per helper. *)
      let chunk = t.cfg.free_chunk in
      let continue_ = ref true in
      while !continue_ do
        let start = Runtime.faa t.work_idx chunk in
        if start >= cnt then continue_ := false
        else free_range start (min (start + chunk) cnt)
      done
    end
    else begin
      (* Legacy: one size-proportional chunk per scan, then stop. *)
      let chunk = max 1 (cnt / t.cfg.max_threads) in
      let start = Runtime.faa t.work_idx chunk in
      free_range start (min (start + chunk) cnt)
    end
  end

let scan_range t (base, len) =
  let n = t.nshards in
  (* Per-shard bounds and Bloom masks are read once per range — they only
     change under a new count, and a scan that raced a publish is not
     counted for the new phase anyway.  The global [glo, ghi] envelope
     keeps the common case — a word pointing at no master — at one
     comparison per word, exactly as in the single-master layout; an
     address lives in at most one shard (its retirer's), so the per-shard
     probe stops at the first hit. *)
  let los = Array.make n 0 and his = Array.make n 0 and fms = Array.make n (-1) in
  let glo = ref max_int and ghi = ref min_int in
  for s = 0 to n - 1 do
    let lo, hi = Master_buffer.bounds t.masters.(s) in
    los.(s) <- lo;
    his.(s) <- hi;
    if lo < !glo then glo := lo;
    if hi > !ghi then ghi := hi;
    (* Bloom prefilter (pipeline): one shared read per in-range candidate
       against the published filter screens out almost every word before
       the ~log n reads of the binary search.  False positives fall
       through to [find]; false negatives are impossible (the filter is
       republished with every count, see Master_buffer). *)
    if t.cfg.scan_filter then fms.(s) <- Master_buffer.filter_mask t.masters.(s)
  done;
  for a = base to base + len - 1 do
    let w = Runtime.read a in
    let m = Ptr.mask w in
    t.scan_words <- t.scan_words + 1;
    if m >= !glo && m <= !ghi then begin
      let s = ref 0 in
      let hit = ref false in
      while (not !hit) && !s < n do
        let sm = t.masters.(!s) in
        if m >= los.(!s) && m <= his.(!s) then begin
          if fms.(!s) >= 0 && not (Master_buffer.filter_test sm ~mask:fms.(!s) m) then
            t.filter_rejects <- t.filter_rejects + 1
          else begin
            if fms.(!s) >= 0 then t.filter_hits <- t.filter_hits + 1;
            let idx = Master_buffer.find sm m in
            if idx >= 0 then begin
              if debug_scan then
                Printf.eprintf "[scan] tid=%d hit at addr=%d (range base=%d len=%d) value=%d\n%!"
                  (Runtime.self ()) a base len m;
              Master_buffer.mark sm idx;
              t.scan_hits <- t.scan_hits + 1;
              hit := true
            end
          end
        end;
        incr s
      done
    end
  done

let ts_scan t =
  if t.cfg.help_free then help_free t;
  (* Read the phase *before* scanning: if the reclaimer gave up waiting and
     published a new phase while we scan, we must not claim to have covered
     a master buffer we may never have seen. *)
  let phase = Runtime.read t.phase_addr in
  if total_count t > 0 then begin
    let sbase, sp = Runtime.stack_range () in
    scan_range t (sbase, sp - sbase);
    scan_range t (Runtime.saved_reg_range ());
    List.iter (scan_range t) (Runtime.private_ranges ())
  end;
  (* Acknowledge: publish the phase we scanned for. *)
  Runtime.write (t.acks_base + Runtime.self ()) phase

(* ------------------------------------------------------------------ *)
(* TS-Collect: the reclaimer side (Algorithm 1, lines 1-16)            *)
(* ------------------------------------------------------------------ *)

let registered t u = Runtime.read (t.registered_base + u) <> 0

let drain_work_leftovers t =
  (* Claim-and-free every slot not already claimed by a helper; slots a live
     helper claimed are already 0, slots a dead helper never reached are
     swept up here.  Must run before the queue is recycled. *)
  let cnt = Runtime.read t.work_count in
  if cnt > 0 then begin
    let c = counters t in
    for i = 0 to cnt - 1 do
      let p = Runtime.read (t.work_base + i) in
      if p <> 0 && Runtime.cas (t.work_base + i) p 0 then begin
        Runtime.free (Ptr.addr p);
        Smr.add_freed c 1;
        t.free_burden <- t.free_burden + 1
      end
    done;
    Runtime.write t.work_count 0;
    Runtime.write t.work_idx 0
  end

(* Aggregate one shard's delete buffers into its master and publish.
   Returns the number of sealed runs merged, for the caller to fold into
   the stats ([t]'s unsynchronised OCaml counters must not be raced from
   helpers).  The caller holds the exclusive right to collect this
   shard: the phase lock (single-shard layout) or the shard claim
   word. *)
let collect_shard t ~steal s =
  let sm = t.masters.(s) in
  if t.cfg.collect_merge then begin
    (* Pipeline collect: sealed windows arrive as sorted runs and are
       staged whole (all-or-nothing, so an entry is never both staged and
       still in a window at publish time); only loose entries get sorted.
       The run positions feed the k-way merge publish. *)
    let runs = ref [] in
    let merged = ref 0 in
    let u = ref s in
    while !u < t.cfg.max_threads do
      Delete_buffer.drain_phase ~steal t.buffers.(!u)
        ~sealed:(fun ~len ~read ->
          Master_buffer.space sm >= len
          && begin
               let pos = Master_buffer.staged_pos sm in
               for i = 0 to len - 1 do
                 ignore (Master_buffer.append sm (read i))
               done;
               runs := (pos, len) :: !runs;
               incr merged;
               true
             end)
        ~loose:(Master_buffer.append sm);
      u := !u + t.nshards
    done;
    Master_buffer.publish_merged sm ~runs:(List.rev !runs);
    !merged
  end
  else begin
    let u = ref s in
    while !u < t.cfg.max_threads do
      Delete_buffer.drain t.buffers.(!u) (Master_buffer.append sm);
      u := !u + t.nshards
    done;
    Master_buffer.publish_sorted sm;
    0
  end

(* Work-steal hook, run by threads spinning in [retire] on a full
   buffer: while a sharded collect is in flight (generation published,
   some shard's done stamp behind it), claim an unclaimed shard and run
   its collect — which usually drains our own full buffer along the way.
   Claims CAS 0 -> tid + 1 so a recovering reclaimer can identify (and
   crash) a helper that died holding a shard.  The generation is re-read
   after a successful claim: it may have advanced between the first read
   and the CAS, and the value read under the claim is stable until our
   done-stamp write (no phase can complete while we hold an undone
   shard). *)
let try_steal t =
  let g = Runtime.read t.collect_gen_addr in
  g > 0
  && begin
       let self = Runtime.self () in
       let stole = ref false in
       let s = ref 0 in
       while (not !stole) && !s < t.nshards do
         if
           Runtime.read (shard_done t !s) <> g
           && Runtime.read (shard_claim t !s) = 0
           && Runtime.cas (shard_claim t !s) 0 (self + 1)
         then begin
           stole := true;
           ignore (Runtime.faa t.steal_stats 1);
           let g = Runtime.read t.collect_gen_addr in
           let merged = collect_shard t ~steal:true !s in
           if merged > 0 then ignore (Runtime.faa (t.steal_stats + Padded.stride) merged);
           Runtime.write (shard_done t !s) g
         end;
         incr s
       done;
       !stole
     end

(* Bounded ack wait.  Returns [(timed_out, departed)]: [timed_out] are
   still-registered threads that made no ack within the budget (the phase
   must go blind); [departed] are threads observed dead while registered —
   they crashed without deregistering and can never ack, so waiting on them
   is pointless and they are reaped immediately. *)
let wait_for_acks t phase signaled =
  Runtime.set_wait_note (Some (Fmt.str "ack wait: phase %d" phase));
  let budget = t.cfg.ack_budget in
  let t0 = Runtime.now () in
  let b = Backoff.create () in
  let pending = ref signaled in
  let departed = ref [] in
  let timed_out = ref [] in
  while !pending <> [] do
    pending :=
      List.filter
        (fun u ->
          if Runtime.read (t.acks_base + u) = phase || not (registered t u) then false
          else if Runtime.is_done u then begin
            departed := u :: !departed;
            false
          end
          else true)
        !pending;
    if !pending <> [] then begin
      heartbeat t;
      if budget > 0 && Runtime.now () - t0 > budget then begin
        timed_out := !pending;
        pending := []
      end
      else Backoff.once b
    end
  done;
  Runtime.set_wait_note None;
  (!timed_out, !departed)

let mark_suspect t phase u =
  if t.suspect_since.(u) < 0 then begin
    t.suspect_since.(u) <- phase;
    t.suspect_ack.(u) <- Runtime.read (t.acks_base + u);
    t.suspect_silent.(u) <- 0;
    t.suspected_total <- t.suspected_total + 1;
    Runtime.note (Fmt.str "phase %d: t%d is suspect (no ack within budget)" phase u)
  end

let reap t phase u reason =
  t.reaped.(u) <- true;
  t.suspect_since.(u) <- -1;
  Runtime.write (t.registered_base + u) 0;
  (* Its buffered retirements are adopted by the normal aggregation path of
     the next phase; count them now, while the buffer is still its own. *)
  t.adopted <- t.adopted + Delete_buffer.size t.buffers.(u);
  t.reaps <- t.reaps + 1;
  Runtime.note (Fmt.str "phase %d: reaped t%d (%s)" phase u reason)

(* One reclamation phase.  Caller holds the phase lock. *)
let do_phase t =
  let phase_start = Runtime.now () in
  let c = counters t in
  let self = Runtime.self () in
  heartbeat t;
  (* Snapshot our register context before the aggregation loop clobbers the
     register file with buffered pointers. *)
  Runtime.save_regs ();
  t.phases <- t.phases + 1;
  Smr.add_cleanups c 1;
  let my_gen = Runtime.read t.gen_addr in
  (* Adopt retirements parked on the overflow list by backpressured
     threads.  The snapshot swap is atomic (no effect between the read and
     the reset); whatever does not fit goes back on the list. *)
  let parked =
    Runtime.critical (fun () ->
        let parked = t.overflow in
        t.overflow <- [];
        parked)
  in
  let append_parked p =
    (* Parked entries have no owning shard; stage into our own first and
       spill to the others when it is full. *)
    let s0 = shard_of t self in
    let ok = ref false in
    let k = ref 0 in
    while (not !ok) && !k < t.nshards do
      ok := Master_buffer.append t.masters.((s0 + !k) mod t.nshards) p;
      incr k
    done;
    !ok
  in
  let rejected = List.filter (fun p -> not (append_parked p)) parked in
  if rejected <> [] then Runtime.critical (fun () -> t.overflow <- rejected @ t.overflow);
  (* Aggregate every thread's delete buffer into its shard's master buffer
     (on top of the previous phase's carry-over).  If a master fills up,
     the rest simply stays buffered for the next phase. *)
  if t.nshards = 1 then
    (* Single shard: the legacy path, byte for byte — no claim protocol,
       no generation word. *)
    t.merged_runs <- t.merged_runs + collect_shard t ~steal:false 0
  else begin
    (* Sharded collect: each shard's aggregate+publish is a claimable
       unit.  Reset the claim and done words, publish the generation,
       then claim shards starting from our own — idle helpers spinning
       in [retire]'s wait loop steal whatever we have not claimed yet. *)
    let g = Runtime.read t.collect_gen_addr + 1 in
    for s = 0 to t.nshards - 1 do
      Runtime.write (shard_claim t s) 0;
      Runtime.write (shard_done t s) 0
    done;
    Runtime.write t.collect_gen_addr g;
    let my = shard_of t self in
    for k = 0 to t.nshards - 1 do
      let s = (my + k) mod t.nshards in
      if Runtime.cas (shard_claim t s) 0 (self + 1) then begin
        t.merged_runs <- t.merged_runs + collect_shard t ~steal:false s;
        Runtime.write (shard_done t s) g
      end
    done;
    (* Wait for stolen shards, with per-budget recovery rounds.  Each
       time the ack budget expires, recover the shards that can never
       finish on their own: an unclaimed shard has no collector, and a
       shard whose claim holder is observed dead will never stamp it
       done — take the claim and re-collect.  [drain_phase] is
       restartable and the re-drain's duplicates are absorbed by the
       publish dedup, so the recovery publish is always sound
       (sealed-run structure is lost — the re-publish falls back to the
       master re-sort).  A *live* holder — running slowly, or stalled
       and due to wake — still owns the shard's master buffer, and the
       only safe preemption would be killing a thread that is not dead,
       leaking whatever node it holds in flight.  So we keep waiting
       under our own heartbeat instead: bounded stalls finish their
       collect on wake-up, and retiring threads never block on the slow
       phase — past [overflow_after] rounds they park on the overflow
       list and move on. *)
    let all_done () =
      let ok = ref true in
      for s = 0 to t.nshards - 1 do
        if Runtime.read (shard_done t s) <> g then ok := false
      done;
      !ok
    in
    let t0 = ref (Runtime.now ()) in
    let b = Backoff.create () in
    let finished = ref (all_done ()) in
    while not !finished do
      heartbeat t;
      if t.cfg.ack_budget > 0 && Runtime.now () - !t0 > t.cfg.ack_budget then begin
        for s = 0 to t.nshards - 1 do
          if Runtime.read (shard_done t s) <> g then begin
            let cl = Runtime.read (shard_claim t s) in
            if
              (cl = 0 || cl = self + 1 || Runtime.is_done (cl - 1))
              && Runtime.cas (shard_claim t s) cl (self + 1)
            then begin
              t.merged_runs <- t.merged_runs + collect_shard t ~steal:false s;
              Runtime.write (shard_done t s) g;
              t.shard_recoveries <- t.shard_recoveries + 1;
              Runtime.note (Fmt.str "recovered shard %d from a dead collector" s)
            end
          end
        done;
        t0 := Runtime.now ();
        finished := all_done ()
      end
      else begin
        Backoff.once b;
        finished := all_done ()
      end
    done;
    (* Fold helper-side stats, FAA'd on shared words (helpers must not
       race [t]'s unsynchronised counters): once every done stamp reads
       [g], no helper can claim — or FAA — for this generation again. *)
    let stolen = Runtime.read t.steal_stats in
    if stolen > 0 then begin
      Runtime.write t.steal_stats 0;
      t.shard_steals <- t.shard_steals + stolen
    end;
    let helper_merged = Runtime.read (t.steal_stats + Padded.stride) in
    if helper_merged > 0 then begin
      Runtime.write (t.steal_stats + Padded.stride) 0;
      t.merged_runs <- t.merged_runs + helper_merged
    end
  end;
  let phase = Runtime.read t.phase_addr + 1 in
  Runtime.write t.phase_addr phase;
  heartbeat t;
  (* Signal all other registered, non-suspect threads, then scan ourselves.
     Suspects are not signaled (their handlers are not draining the queue;
     more signals only pile up) — the proxy scan below covers them, and the
     signal they already missed delivers on wake-up, whose ack is how we
     detect recovery. *)
  let signaled = ref [] in
  for u = 0 to t.cfg.max_threads - 1 do
    if u <> self && registered t u && t.suspect_since.(u) < 0 then begin
      Runtime.signal u;
      t.signals <- t.signals + 1;
      signaled := u :: !signaled
    end
  done;
  ts_scan t;
  if t.inject = Crash_mid_phase then begin
    t.inject <- No_fault;
    Runtime.note "injected reclaimer crash mid-phase";
    Runtime.crash self
  end;
  if t.inject = Stall_mid_phase then begin
    t.inject <- No_fault;
    Runtime.note "injected reclaimer stall mid-phase";
    Runtime.stall self
  end;
  let timed_out, departed =
    if t.inject = Skip_ack_wait then ([], []) else wait_for_acks t phase !signaled
  in
  heartbeat t;
  (* Degradation ladder (docs/FAULTS.md).  Rung 3: a thread observed dead
     while still registered can never ack or deregister — reap immediately. *)
  List.iter (fun u -> reap t phase u "crashed while registered") departed;
  (* Rung 1→2: non-ackers become suspects; the phase goes blind below. *)
  List.iter (mark_suspect t phase) timed_out;
  (* Suspect bookkeeping: recovery (its ack moved: the missed signal finally
     delivered) or reaping after [suspect_phases] silent phases. *)
  let stale_recovery = ref false in
  for u = 0 to t.cfg.max_threads - 1 do
    if t.suspect_since.(u) >= 0 then begin
      if Runtime.is_done u then begin
        if Runtime.is_crashed u then reap t phase u "crashed while suspect"
        else t.suspect_since.(u) <- -1 (* exited normally; deregistered itself *)
      end
      else if Runtime.read (t.acks_base + u) <> t.suspect_ack.(u) then begin
        t.suspect_since.(u) <- -1;
        t.recoveries <- t.recoveries + 1;
        (* The ack that moved may be for an *older* phase: the signal it
           missed while frozen delivers on wake, and its handler scans
           whatever master was published when it read the phase word —
           possibly the previous one.  Only an ack tagged with the current
           phase proves its scan covered this master; a recovered thread
           whose references were never marked here means the sweep below
           would free nodes it still holds, so the phase goes blind. *)
        if Runtime.read (t.acks_base + u) <> phase then begin
          stale_recovery := true;
          Runtime.note
            (Fmt.str "phase %d: t%d recovered on a stale ack; phase goes blind" phase u)
        end
        else Runtime.note (Fmt.str "phase %d: t%d recovered (acked again)" phase u)
      end
      else begin
        t.suspect_silent.(u) <- t.suspect_silent.(u) + 1;
        if t.suspect_silent.(u) >= t.cfg.suspect_phases then
          reap t phase u (Fmt.str "silent for %d phases" t.suspect_silent.(u))
      end
    end
  done;
  if timed_out <> [] then t.ack_timeouts <- t.ack_timeouts + 1;
  (* Proxy scan: walk each suspect's (and each reaped-but-alive thread's)
     last-known stack, register contexts and private ranges on its behalf,
     marking what it still holds.  Its stack cannot grow new references to
     retired nodes (retire happens after unlink), so this conservative scan
     is as sound as the thread's own handler scan — but only while the
     subject is frozen.  A suspect observed *running* (or waking mid-scan,
     caught by its clock advancing) could move a pointer between two words
     we already passed, so the phase goes blind instead.  A reaped thread
     found running again is re-admitted to the protocol: it is alive after
     all, and being signaled and acking like everyone else beats blinding
     every phase on its account.  Once a thread is actually dead its pins
     are dropped (nothing can ever read them again). *)
  let blind = ref (timed_out <> [] || !stale_recovery) in
  if t.inject <> Skip_proxy_scan then
    for u = 0 to t.cfg.max_threads - 1 do
      if (t.suspect_since.(u) >= 0 || t.reaped.(u)) && not (Runtime.is_done u) then
        if Runtime.is_stalled u then begin
          let c0 = Runtime.clock_of u in
          List.iter (scan_range t) (Runtime.scan_ranges_of u);
          t.proxy_scans <- t.proxy_scans + 1;
          Runtime.note (Fmt.str "phase %d: proxy-scanned frozen t%d on its behalf" phase u);
          if Runtime.clock_of u <> c0 then begin
            blind := true;
            Runtime.note (Fmt.str "phase %d: t%d woke mid-proxy-scan; phase goes blind" phase u)
          end
        end
        else begin
          blind := true;
          Runtime.note
            (Fmt.str "phase %d: t%d is a running suspect (unscannable); phase goes blind" phase u);
          if t.reaped.(u) then begin
            t.reaped.(u) <- false;
            t.suspect_silent.(u) <- 0;
            Runtime.write (t.registered_base + u) 1;
            t.recoveries <- t.recoveries + 1;
            Runtime.note (Fmt.str "phase %d: t%d woke after reap; re-admitted" phase u)
          end
        end
    done;
  if !blind then begin
    (* Rung 1: the phase is blind — some signaled thread never confirmed its
       scan (or a suspect could not be safely proxy-scanned), so no entry is
       provably unreferenced.  Free nothing; carry the entire master buffer
       over.  This single rule closes every late-scanner race a bounded wait
       opens. *)
    t.carried <- total_count t;
    t.carried_blind <- t.carried_blind + t.carried;
    Runtime.note (Fmt.str "phase %d: blind; carrying all %d entries" phase t.carried)
  end
  else if not (Runtime.cas t.gen_addr my_gen (my_gen + 1)) then begin
    (* Generation fence: the phase was taken over under us (we were presumed
       dead but are somehow still here).  Our view is stale — abort without
       freeing anything. *)
    t.gen_aborts <- t.gen_aborts + 1;
    t.carried <- total_count t;
    Runtime.note (Fmt.str "phase %d: generation fence failed; sweep aborted" phase)
  end
  else begin
    let ignore_marks = t.inject = Skip_carryover in
    if t.cfg.help_free then begin
      drain_work_leftovers t;
      let queued = ref 0 in
      let carried = ref 0 in
      for s = 0 to t.nshards - 1 do
        carried :=
          !carried
          + Master_buffer.sweep ~ignore_marks t.masters.(s) (fun p ->
                Runtime.write (t.work_base + !queued) p;
                incr queued)
      done;
      t.carried <- !carried;
      Runtime.write t.work_idx 0;
      Runtime.write t.work_count !queued
    end
    else begin
      let carried = ref 0 in
      for s = 0 to t.nshards - 1 do
        carried :=
          !carried
          + Master_buffer.sweep ~ignore_marks t.masters.(s) (fun p ->
                Runtime.free (Ptr.addr p);
                Smr.add_freed c 1;
                t.free_burden <- t.free_burden + 1)
      done;
      t.carried <- !carried
    end
  end;
  heartbeat t;
  Ts_util.Vec.push t.phase_latencies (Runtime.now () - phase_start)

let run_phase_locked t =
  match do_phase t with
  | () -> release t
  | exception e ->
      release t;
      raise e

(* ------------------------------------------------------------------ *)
(* The SMR-facing hooks                                                *)
(* ------------------------------------------------------------------ *)

let max_phase_latency t =
  let m = ref 0 in
  Ts_util.Vec.iter (fun d -> if d > !m then m := d) t.phase_latencies;
  !m

let avg_phase_latency t =
  let n = Ts_util.Vec.length t.phase_latencies in
  if n = 0 then 0
  else begin
    let sum = ref 0 in
    Ts_util.Vec.iter (fun d -> sum := !sum + d) t.phase_latencies;
    !sum / n
  end

let total_phase_cycles t =
  let sum = ref 0 in
  Ts_util.Vec.iter (fun d -> sum := !sum + d) t.phase_latencies;
  !sum

let retire t (c : Smr.counters) p =
  Smr.add_retired c 1;
  let tid = Runtime.self () in
  let masked = Ptr.mask p in
  let b = Backoff.create () in
  let rounds = ref 0 in
  let owner_seen = ref 0 and beat_seen = ref 0 and seen_at = ref 0 in
  let done_ = ref false in
  while not !done_ do
    if Delete_buffer.push t.buffers.(tid) masked then done_ := true
    else if t.cfg.collect_merge && Delete_buffer.seal t.buffers.(tid) then
      (* Full window sealed as a locally sorted run — the sort happens
         here, on the retiring thread, off the phase critical path.  The
         next loop round triggers (or joins) the phase that merges it. *)
      t.seals <- t.seals + 1
    else if try_acquire t then begin
      (* Full buffer: become the reclaimer. *)
      run_phase_locked t;
      Backoff.reset b;
      rounds := 0
    end
    else if check_takeover t owner_seen beat_seen seen_at then begin
      (* The active reclaimer is dead; we adopted the phase lock. *)
      run_phase_locked t;
      Backoff.reset b;
      rounds := 0
    end
    else if t.cfg.overflow_after > 0 && !rounds >= t.cfg.overflow_after then begin
      (* Hard backpressure bound: park the pointer on the shared overflow
         list (adopted by the next phase) instead of blocking forever on a
         degraded reclaimer. *)
      Runtime.critical (fun () -> t.overflow <- masked :: t.overflow);
      t.overflow_pushes <- t.overflow_pushes + 1;
      done_ := true
    end
    else begin
      (* Wait for the active reclaimer — by the time the lock is free our
         buffer has usually been drained.  With sharding, waiters first
         try to steal an unclaimed shard's collect (usually including
         their own full buffer) instead of just backing off. *)
      t.full_waits <- t.full_waits + 1;
      if not (t.nshards > 1 && try_steal t) then Backoff.once b;
      incr rounds
    end
  done

let thread_init t () =
  let tid = Runtime.self () in
  if tid >= t.cfg.max_threads then invalid_arg "Threadscan: tid exceeds max_threads";
  (* A reused tid starts with a clean fault record. *)
  t.suspect_since.(tid) <- -1;
  t.suspect_silent.(tid) <- 0;
  t.reaped.(tid) <- false;
  Runtime.set_signal_handler (fun () -> ts_scan t);
  Runtime.write (t.registered_base + tid) 1

let thread_exit t () =
  let tid = Runtime.self () in
  t.suspect_since.(tid) <- -1;
  Runtime.write (t.registered_base + tid) 0

(* Quiesce after all workers exited: run phases until nothing more can be
   freed.  Anything still pinned by the caller's own (conservatively
   scanned) stack — or by the proxy-scanned stack of a thread stalled
   forever — stays allocated. *)
let flush t () =
  if not (try_acquire t) then begin
    Runtime.set_wait_note (Some "waiting for the phase lock");
    let b = Backoff.create () in
    let owner_seen = ref 0 and beat_seen = ref 0 and seen_at = ref 0 in
    while
      (not (try_acquire t)) && not (check_takeover t owner_seen beat_seen seen_at)
    do
      Backoff.once b
    done;
    Runtime.set_wait_note None
  end;
  let continue_ = ref true in
  while !continue_ do
    (* Drop conservative pins left in our own register file by the previous
       iteration's sweep (the caller holds no node references here). *)
    Runtime.clear_regs ();
    let before = (counters t).freed in
    do_phase t;
    drain_work_leftovers t;
    let buffered = Array.exists (fun b -> Delete_buffer.size b > 0) t.buffers in
    (* Keep going only while the last phase made progress: whatever remains
       is pinned by a conservatively-scanned stack. *)
    continue_ :=
      (buffered || t.carried > 0 || t.overflow <> []) && (counters t).freed > before
  done;
  release t

let create ?(config = Config.default) () =
  Config.validate config;
  (* Adaptive sizing: the amortisation argument needs the per-thread
     buffer to outgrow the thread count, or phases fire so often that
     signalling dominates.  Never shrink an explicit buffer_size. *)
  let buffer_size =
    if config.adaptive_buffers then max config.buffer_size (4 * config.max_threads)
    else config.buffer_size
  in
  let config = { config with buffer_size } in
  let nshards = Config.resolved_shards config in
  (* Per-shard capacity: each shard only ever aggregates its own threads'
     buffers (plus slack for carried and parked entries), so shard
     masters shrink as shards are added.  At one shard this is exactly
     the legacy capacity. *)
  let shard_threads = (config.max_threads + nshards - 1) / nshards in
  let master_cap = (shard_threads * config.buffer_size) + 1024 in
  let t =
    {
      cfg = config;
      nshards;
      buffers =
        Array.init config.max_threads (fun _ ->
            Delete_buffer.create ~sealed_runs:config.collect_merge
              ~capacity:config.buffer_size ());
      masters =
        Array.init nshards (fun _ ->
            Master_buffer.create ~filter:config.scan_filter ~capacity:master_cap ());
      (* The shard protocol words exist only in the sharded layout: at
         one shard nothing is allocated, keeping the region layout (and
         so the simulator traces) byte-identical to the legacy one. *)
      collect_gen_addr = (if nshards = 1 then 0 else Runtime.alloc_region 1);
      shard_claims =
        (if nshards = 1 then 0 else Runtime.alloc_region (Padded.words_for nshards));
      shard_dones =
        (if nshards = 1 then 0 else Runtime.alloc_region (Padded.words_for nshards));
      steal_stats = (if nshards = 1 then 0 else Runtime.alloc_region (Padded.words_for 2));
      owner_addr = Runtime.alloc_region 1;
      beat_addr = Runtime.alloc_region 1;
      gen_addr = Runtime.alloc_region 1;
      phase_addr = Runtime.alloc_region 1;
      acks_base = Runtime.alloc_region config.max_threads;
      registered_base = Runtime.alloc_region config.max_threads;
      work_idx = Runtime.alloc_region 1;
      work_count = Runtime.alloc_region 1;
      work_base = Runtime.alloc_region (nshards * master_cap);
      suspect_since = Array.make config.max_threads (-1);
      suspect_ack = Array.make config.max_threads 0;
      suspect_silent = Array.make config.max_threads 0;
      reaped = Array.make config.max_threads false;
      overflow = [];
      smr_counters = None;
      smr_self = None;
      phases = 0;
      signals = 0;
      carried = 0;
      scan_words = 0;
      scan_hits = 0;
      helped = 0;
      full_waits = 0;
      seals = 0;
      merged_runs = 0;
      filter_hits = 0;
      filter_rejects = 0;
      phase_latencies = Ts_util.Vec.create ();
      free_burden = 0;
      ack_timeouts = 0;
      carried_blind = 0;
      suspected_total = 0;
      recoveries = 0;
      reaps = 0;
      adopted = 0;
      proxy_scans = 0;
      takeovers = 0;
      gen_aborts = 0;
      overflow_pushes = 0;
      shard_steals = 0;
      shard_recoveries = 0;
      inject = No_fault;
    }
  in
  let smr =
    Smr.make ~name:"threadscan" ~thread_init:(thread_init t) ~thread_exit:(thread_exit t)
      ~flush:(flush t)
      ~extras:(fun () ->
        [
          ("phases", t.phases);
          ("signals", t.signals);
          ("carried", t.carried);
          ("scan-words", t.scan_words);
          ("scan-hits", t.scan_hits);
          ("helped-frees", t.helped);
          ("full-waits", t.full_waits);
          ("sealed-runs", t.seals);
          ("merged-runs", t.merged_runs);
          ("filter-hits", t.filter_hits);
          ("filter-rejects", t.filter_rejects);
          ("reclaimer-frees", t.free_burden);
          ("max-phase-latency", max_phase_latency t);
          ("avg-phase-latency", avg_phase_latency t);
          ("ack-timeouts", t.ack_timeouts);
          ("carried-blind", t.carried_blind);
          ("suspects", t.suspected_total);
          ("recoveries", t.recoveries);
          ("reaps", t.reaps);
          ("adopted", t.adopted);
          ("proxy-scans", t.proxy_scans);
          ("takeovers", t.takeovers);
          ("gen-aborts", t.gen_aborts);
          ("overflow-pushes", t.overflow_pushes);
          ("shards", t.nshards);
          ("shard-steals", t.shard_steals);
          ("shard-recoveries", t.shard_recoveries);
          ("phase-cycles", total_phase_cycles t);
        ])
      ~retire:(retire t) ()
  in
  t.smr_counters <- Some smr.Smr.counters;
  t.smr_self <- Some smr;
  t

let smr t = Option.get t.smr_self

let config t = t.cfg

let add_heap_block ~start_addr ~len = Runtime.add_private_range start_addr len

let remove_heap_block ~start_addr ~len = Runtime.remove_private_range start_addr len

let phases t = t.phases

let signals_sent t = t.signals

let carried_last t = t.carried

let scan_words t = t.scan_words

let scan_hits t = t.scan_hits

let helped_frees t = t.helped

let full_waits t = t.full_waits

let sealed_runs t = t.seals

let merged_runs t = t.merged_runs

let filter_hits t = t.filter_hits

let filter_rejects t = t.filter_rejects

let outstanding t =
  let c = counters t in
  c.retired - c.freed

let phase_latencies t =
  let out = ref [] in
  Ts_util.Vec.iter (fun d -> out := d :: !out) t.phase_latencies;
  List.rev !out

let reclaimer_frees t = t.free_burden

let ack_timeouts t = t.ack_timeouts

let carried_blind t = t.carried_blind

let suspected_total t = t.suspected_total

let recoveries t = t.recoveries

let reaps t = t.reaps

let adopted t = t.adopted

let proxy_scans t = t.proxy_scans

let takeovers t = t.takeovers

let gen_aborts t = t.gen_aborts

let overflow_pushes t = t.overflow_pushes

let shards t = t.nshards

let shard_steals t = t.shard_steals

let shard_recoveries t = t.shard_recoveries

let suspects_now t =
  Array.fold_left (fun acc s -> if s >= 0 then acc + 1 else acc) 0 t.suspect_since

let set_inject t inject = t.inject <- inject

let inject t = t.inject
