module Runtime = Ts_rt
module Isort = Ts_util.Isort

(* Layout: [count][entries: cap][marks: cap].  [staged] is the reclaimer's
   private append cursor; [count] is what scanners read. *)
type t = { base : int; cap : int; mutable staged : int }

let count_addr t = t.base

let entry_addr t i = t.base + 1 + i

let mark_addr t i = t.base + 1 + t.cap + i

let create ~capacity =
  if capacity < 1 then invalid_arg "Master_buffer.create";
  let base = Runtime.alloc_region (1 + (2 * capacity)) in
  { base; cap = capacity; staged = 0 }

let capacity t = t.cap

let count t = Runtime.read (count_addr t)

let append t p =
  if t.staged >= t.cap then false
  else begin
    Runtime.write (entry_addr t t.staged) p;
    t.staged <- t.staged + 1;
    true
  end

let publish_sorted t =
  let n = t.staged in
  let tmp = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    tmp.(i) <- Runtime.read (entry_addr t i)
  done;
  Isort.sort_prefix tmp n;
  let n = Isort.dedup_sorted tmp n in
  (* private sort: ~n log n cycles of local work *)
  Runtime.advance (n * 8);
  for i = 0 to n - 1 do
    Runtime.write (entry_addr t i) tmp.(i);
    Runtime.write (mark_addr t i) 0
  done;
  t.staged <- n;
  Runtime.write (count_addr t) n

let find t key =
  let n = count t in
  let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    let v = Runtime.read (entry_addr t mid) in
    if v = key then found := mid else if v < key then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mark t i = Runtime.write (mark_addr t i) 1

let is_marked t i = Runtime.read (mark_addr t i) <> 0

let entry t i = Runtime.read (entry_addr t i)

let sweep ?(ignore_marks = false) t f =
  let n = count t in
  let carry = ref 0 in
  let to_free = ref [] in
  (* Pass 1: compact the marked (carried) prefix and collect the frees.
     Nothing is freed until the buffer is consistent again, so a reclaimer
     that dies mid-sweep leaves at worst duplicate entries (deduplicated by
     the next publish) or a bounded leak of this phase's unmarked entries —
     never a double free, never a resurrected entry. *)
  for i = 0 to n - 1 do
    let p = Runtime.read (entry_addr t i) in
    if (not ignore_marks) && Runtime.read (mark_addr t i) <> 0 then begin
      Runtime.write (entry_addr t !carry) p;
      incr carry
    end
    else to_free := p :: !to_free
  done;
  t.staged <- !carry;
  (* The carried prefix is stale until the next publish; hide it. *)
  Runtime.write (count_addr t) 0;
  (* Pass 2: the actual frees, in entry order. *)
  List.iter f (List.rev !to_free);
  !carry

let bounds t =
  let n = count t in
  if n = 0 then (max_int, min_int)
  else (Runtime.read (entry_addr t 0), Runtime.read (entry_addr t (n - 1)))
