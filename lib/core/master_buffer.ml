module Runtime = Ts_rt
module Isort = Ts_util.Isort
module Bloom = Ts_util.Bloom

(* Layout: [count][entries: cap][marks: cap].  [staged] is the reclaimer's
   private append cursor; [count] is what scanners read.

   [sorted_prefix] tracks how much of the staged region is known sorted:
   the whole prefix right after a publish, the compacted carry-over right
   after a sweep.  The merge publish consumes it as a ready-made run, so
   survivors are never re-sorted phase after phase.

   With [filter], a blocked Bloom filter over the published entries lives
   in its own region: [mask][table words].  The table is sized to the
   published count each phase (so small phases pay small filters), and is
   written entirely before the count — a scanner that can see the count
   sees the matching filter, which is what makes false negatives
   impossible. *)
type t = {
  base : int;
  cap : int;
  mutable staged : int;
  mutable sorted_prefix : int;
  filter_base : int; (* -1 when the filter is disabled *)
}

let count_addr t = t.base

let entry_addr t i = t.base + 1 + i

let mark_addr t i = t.base + 1 + t.cap + i

let create ?(filter = false) ~capacity () =
  if capacity < 1 then invalid_arg "Master_buffer.create";
  let base = Runtime.alloc_region (1 + (2 * capacity)) in
  let filter_base =
    if filter then Runtime.alloc_region (1 + Bloom.words_for capacity) else -1
  in
  { base; cap = capacity; staged = 0; sorted_prefix = 0; filter_base }

let capacity t = t.cap

let count t = Runtime.read (count_addr t)

let staged_pos t = t.staged

let space t = t.cap - t.staged

let append t p =
  if t.staged >= t.cap then false
  else begin
    Runtime.write (entry_addr t t.staged) p;
    t.staged <- t.staged + 1;
    true
  end

(* Build and publish the filter for the sorted prefix [tmp.(0..n-1)].
   Must run before the count write. *)
let write_filter t tmp n =
  if t.filter_base >= 0 then begin
    let words = Bloom.words_for n in
    let mask = words - 1 in
    let local = Array.make words 0 in
    for i = 0 to n - 1 do
      let k = tmp.(i) in
      let s = Bloom.slot ~mask k in
      local.(s) <- local.(s) lor Bloom.bits k
    done;
    (* private hashing: a couple of multiplies per key *)
    Runtime.advance (n * 2);
    Runtime.write t.filter_base mask;
    for i = 0 to words - 1 do
      Runtime.write (t.filter_base + 1 + i) local.(i)
    done
  end

let filter_mask t = if t.filter_base < 0 then -1 else Runtime.read t.filter_base

let filter_test t ~mask key =
  let w = Runtime.read (t.filter_base + 1 + Bloom.slot ~mask key) in
  let b = Bloom.bits key in
  w land b = b

let publish_sorted t =
  let n = t.staged in
  let tmp = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    tmp.(i) <- Runtime.read (entry_addr t i)
  done;
  Isort.sort_prefix tmp n;
  let n = Isort.dedup_sorted tmp n in
  (* private sort: ~n log n cycles of local work *)
  Runtime.advance (n * 8);
  for i = 0 to n - 1 do
    Runtime.write (entry_addr t i) tmp.(i);
    Runtime.write (mark_addr t i) 0
  done;
  write_filter t tmp n;
  t.staged <- n;
  t.sorted_prefix <- n;
  Runtime.write (count_addr t) n

let publish_merged t ~runs =
  let total = t.staged in
  (* Segment the staged region: the carried-over prefix and the sealed
     runs are already sorted; everything between them (overflow adoptions
     and loose drains) is gathered into one run and sorted here. *)
  let runs = if t.sorted_prefix > 0 then (0, t.sorted_prefix) :: runs else runs in
  let loose = ref [] in
  let segs = ref [] in
  let pos = ref 0 in
  List.iter
    (fun (s, len) ->
      if s > !pos then loose := (!pos, s - !pos) :: !loose;
      let a = Array.make (max len 1) 0 in
      for i = 0 to len - 1 do
        a.(i) <- Runtime.read (entry_addr t (s + i))
      done;
      segs := (a, len) :: !segs;
      pos := s + len)
    runs;
  if total > !pos then loose := (!pos, total - !pos) :: !loose;
  let loose_n = List.fold_left (fun acc (_, len) -> acc + len) 0 !loose in
  if loose_n > 0 then begin
    let a = Array.make loose_n 0 in
    let w = ref 0 in
    List.iter
      (fun (s, len) ->
        for i = 0 to len - 1 do
          a.(!w) <- Runtime.read (entry_addr t (s + i));
          incr w
        done)
      (List.rev !loose);
    Isort.sort_prefix a loose_n;
    (* private sort of the loose entries only — the runs stay merged *)
    Runtime.advance (loose_n * 8);
    segs := (a, loose_n) :: !segs
  end;
  let tmp = Array.make (max total 1) 0 in
  let n = Isort.merge_runs (Array.of_list !segs) tmp in
  (* k-way merge: a handful of compares per entry *)
  Runtime.advance (n * 2);
  for i = 0 to n - 1 do
    Runtime.write (entry_addr t i) tmp.(i);
    Runtime.write (mark_addr t i) 0
  done;
  write_filter t tmp n;
  t.staged <- n;
  t.sorted_prefix <- n;
  Runtime.write (count_addr t) n

let find t key =
  let n = count t in
  let lo = ref 0 and hi = ref (n - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    let v = Runtime.read (entry_addr t mid) in
    if v = key then found := mid else if v < key then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mark t i = Runtime.write (mark_addr t i) 1

let is_marked t i = Runtime.read (mark_addr t i) <> 0

let entry t i = Runtime.read (entry_addr t i)

let sweep ?(ignore_marks = false) t f =
  let n = count t in
  let carry = ref 0 in
  let to_free = ref [] in
  (* Pass 1: compact the marked (carried) prefix and collect the frees.
     Nothing is freed until the buffer is consistent again, so a reclaimer
     that dies mid-sweep leaves at worst duplicate entries (deduplicated by
     the next publish) or a bounded leak of this phase's unmarked entries —
     never a double free, never a resurrected entry. *)
  for i = 0 to n - 1 do
    let p = Runtime.read (entry_addr t i) in
    if (not ignore_marks) && Runtime.read (mark_addr t i) <> 0 then begin
      Runtime.write (entry_addr t !carry) p;
      incr carry
    end
    else to_free := p :: !to_free
  done;
  t.staged <- !carry;
  (* Compaction preserves order, so the carried prefix is a sorted run the
     next (merge) publish can consume without re-sorting. *)
  t.sorted_prefix <- !carry;
  (* The carried prefix is stale until the next publish; hide it. *)
  Runtime.write (count_addr t) 0;
  (* Pass 2: the actual frees, in entry order. *)
  List.iter f (List.rev !to_free);
  !carry

let bounds t =
  let n = count t in
  if n = 0 then (max_int, min_int)
  else (Runtime.read (entry_addr t 0), Runtime.read (entry_addr t (n - 1)))
