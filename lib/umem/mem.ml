type fault_kind =
  | Uaf_read
  | Uaf_write
  | Wild_read
  | Wild_write
  | Double_free
  | Bad_free
  | Out_of_memory
  | Canary_overwrite

exception Fault of fault_kind * int

let fault_to_string = function
  | Uaf_read -> "use-after-free read"
  | Uaf_write -> "use-after-free write"
  | Wild_read -> "wild read"
  | Wild_write -> "wild write"
  | Double_free -> "double free"
  | Bad_free -> "bad free"
  | Out_of_memory -> "out of memory"
  | Canary_overwrite -> "canary overwrite"

let poison = 0x5D5D5D5D5D

(* Per-word allocation states, stored in a byte shadow. *)
let st_unalloc = '\000'
let st_live = '\001'
let st_freed = '\002'

type t = {
  mutable words : int array;
  mutable shadow : Bytes.t;
  mutable hwm : int; (* first unreserved address *)
  capacity_limit : int;
  strict : bool;
  faults : int array; (* indexed by fault kind *)
  mutable on_fault : fault_kind -> int -> unit; (* runs before any raise *)
}

let fault_index = function
  | Uaf_read -> 0
  | Uaf_write -> 1
  | Wild_read -> 2
  | Wild_write -> 3
  | Double_free -> 4
  | Bad_free -> 5
  | Out_of_memory -> 6
  | Canary_overwrite -> 7

let all_faults =
  [
    Uaf_read;
    Uaf_write;
    Wild_read;
    Wild_write;
    Double_free;
    Bad_free;
    Out_of_memory;
    Canary_overwrite;
  ]

let create ?(strict = true) ?(capacity_limit = 1 lsl 26) () =
  let cap = 1 lsl 12 in
  {
    words = Array.make cap 0;
    shadow = Bytes.make cap st_unalloc;
    hwm = 1 (* address 0 is the null address *);
    capacity_limit;
    strict;
    faults = Array.make 8 0;
    on_fault = (fun _ _ -> ());
  }

let strict t = t.strict

let size t = t.hwm

let set_fault_hook t f = t.on_fault <- f

let record_fault t kind addr =
  t.faults.(fault_index kind) <- t.faults.(fault_index kind) + 1;
  t.on_fault kind addr;
  if t.strict then raise (Fault (kind, addr))

let grow_to t needed =
  let cap = ref (Array.length t.words) in
  while !cap < needed do
    cap := !cap * 2
  done;
  let cap = min !cap t.capacity_limit in
  if cap < needed then record_fault t Out_of_memory needed
  else begin
    let words = Array.make cap 0 in
    Array.blit t.words 0 words 0 t.hwm;
    let shadow = Bytes.make cap st_unalloc in
    Bytes.blit t.shadow 0 shadow 0 t.hwm;
    t.words <- words;
    t.shadow <- shadow
  end

let reserve t n =
  assert (n > 0);
  if t.hwm + n > t.capacity_limit then record_fault t Out_of_memory t.hwm;
  if t.hwm + n > Array.length t.words then grow_to t (t.hwm + n);
  let base = t.hwm in
  t.hwm <- t.hwm + n;
  base

let in_range t addr = addr >= 1 && addr < t.hwm

let state t addr = Bytes.unsafe_get t.shadow addr

let mark_live t base n =
  assert (in_range t base && in_range t (base + n - 1));
  Bytes.fill t.shadow base n st_live;
  Array.fill t.words base n 0

let mark_freed t base n =
  assert (in_range t base && in_range t (base + n - 1));
  Bytes.fill t.shadow base n st_freed;
  Array.fill t.words base n poison

let is_live t addr = in_range t addr && state t addr = st_live

let is_freed t addr = in_range t addr && state t addr = st_freed

let read t addr =
  if not (in_range t addr) then begin
    record_fault t Wild_read addr;
    poison
  end
  else
    match state t addr with
    | c when c = st_live -> Array.unsafe_get t.words addr
    | c when c = st_freed ->
        record_fault t Uaf_read addr;
        poison
    | _ ->
        record_fault t Wild_read addr;
        poison

let write t addr v =
  if not (in_range t addr) then record_fault t Wild_write addr
  else
    match state t addr with
    | c when c = st_live -> Array.unsafe_set t.words addr v
    | c when c = st_freed -> record_fault t Uaf_write addr
    | _ -> record_fault t Wild_write addr

let raw_read t addr = if in_range t addr then Array.unsafe_get t.words addr else poison

let raw_write t addr v = if in_range t addr then Array.unsafe_set t.words addr v

(* ---- whole-heap snapshots (simulator savepoints) ----

   A snapshot owns copies of every word and shadow byte below the
   high-water mark plus the fault counters; restoring puts the heap back
   bit-for-bit, including words above the snapshot's hwm that a later
   reservation dirtied. *)

type snapshot = {
  snap_words : int array;
  snap_shadow : Bytes.t;
  snap_hwm : int;
  snap_faults : int array;
}

let snapshot t =
  {
    snap_words = Array.sub t.words 0 t.hwm;
    snap_shadow = Bytes.sub t.shadow 0 t.hwm;
    snap_hwm = t.hwm;
    snap_faults = Array.copy t.faults;
  }

let restore_snapshot t s =
  if Array.length t.words < s.snap_hwm then grow_to t s.snap_hwm;
  Array.blit s.snap_words 0 t.words 0 s.snap_hwm;
  Bytes.blit s.snap_shadow 0 t.shadow 0 s.snap_hwm;
  (* words reserved after the snapshot go back to pristine unallocated *)
  if t.hwm > s.snap_hwm then begin
    Array.fill t.words s.snap_hwm (t.hwm - s.snap_hwm) 0;
    Bytes.fill t.shadow s.snap_hwm (t.hwm - s.snap_hwm) st_unalloc
  end;
  t.hwm <- s.snap_hwm;
  Array.blit s.snap_faults 0 t.faults 0 (Array.length t.faults)

let reset t =
  Array.fill t.words 0 t.hwm 0;
  Bytes.fill t.shadow 0 t.hwm st_unalloc;
  t.hwm <- 1;
  Array.fill t.faults 0 (Array.length t.faults) 0

let snapshot_digest_into buf s =
  Buffer.add_int64_ne buf (Int64.of_int s.snap_hwm);
  for i = 0 to s.snap_hwm - 1 do
    Buffer.add_int64_ne buf (Int64.of_int s.snap_words.(i))
  done;
  Buffer.add_subbytes buf s.snap_shadow 0 s.snap_hwm;
  Array.iter (fun f -> Buffer.add_int64_ne buf (Int64.of_int f)) s.snap_faults

let fault_count t kind = t.faults.(fault_index kind)

let total_faults t = Array.fold_left ( + ) 0 t.faults

let pp_faults ppf t =
  let any = ref false in
  List.iter
    (fun k ->
      let n = fault_count t k in
      if n > 0 then begin
        any := true;
        Fmt.pf ppf "%s: %d@ " (fault_to_string k) n
      end)
    all_faults;
  if not !any then Fmt.pf ppf "no faults"
