(** TCMalloc-like allocator over {!Mem}.

    The paper's test bed used TCMalloc; this reproduces its structure at the
    level the experiments care about: per-thread caches serve most
    allocations without touching shared state, a central free list per size
    class absorbs cache overflow in batches, and fresh spans are carved from
    a bump pointer.  Every block carries a one-word header (invisible to the
    data plane) used to validate frees; double frees and frees of interior
    pointers are detected and reported through {!Mem.record_fault}.

    The allocator itself is control-plane: the simulator charges a lump cost
    per [malloc]/[free] rather than pricing its internal accesses. *)

type t

val create :
  ?cache_cap:int ->
  ?batch:int ->
  ?magazine:bool ->
  ?sanitize:bool ->
  max_threads:int ->
  Mem.t ->
  t
(** [create ~max_threads mem] builds an allocator with one cache per thread
    id in [0, max_threads).  [cache_cap] (default 64) bounds a per-class
    cache; [batch] (default 32) is the cache<->central transfer size.

    [magazine] (default [true]) enables the per-thread magazines (the
    size-class caches with batched refill/flush against the central
    lists).  [false] routes every small [malloc]/[free] straight to the
    central free list — the configuration benchmarked as the
    no-magazine baseline.

    [sanitize] (default [false]) enables heap-sanitizer mode: every block
    carries a trailing canary word (checked on [free], clobbering reports
    {!Mem.Canary_overwrite}) and a per-base allocation generation counter
    ({!generation}) that lets checkers detect ABA reuse — a block freed and
    reallocated at the same address while a stale reference survives.
    Sanitized blocks occupy one extra word, so addresses differ from
    unsanitized runs; keep it off for benchmarks. *)

val malloc : t -> tid:int -> int -> int
(** [malloc t ~tid n] allocates a block of at least [n >= 1] words and
    returns its user base address.  The block is zero-filled and live. *)

val free : t -> tid:int -> int -> unit
(** [free t ~tid addr] releases a block previously returned by {!malloc}.
    Freed words are poisoned and any later data-plane access faults until
    the block is reallocated. *)

val alloc_region : t -> int -> int
(** [alloc_region t n] carves a permanent live region of [n] words (thread
    stacks, register files, global arrays, delete buffers).  Regions are
    never freed and have no header. *)

val block_size : t -> int -> int
(** Usable size (words) of a live block.  @raise Invalid_argument if [addr]
    is not a live block base. *)

val is_block : t -> int -> bool
(** Whether [addr] is the user base of a currently live block. *)

(** {1 Snapshots}

    The allocator half of a simulator savepoint: free lists, per-thread
    cache rows, sanitizer generation counters, statistics.  Pair with
    {!Mem.snapshot} of the underlying heap. *)

type snapshot

val snapshot : t -> snapshot

val restore_snapshot : t -> snapshot -> unit
(** Restore on top of a matching {!Mem.restore_snapshot} of the heap. *)

val reset : t -> unit
(** Back to the just-{!create}d state (configuration is kept). *)

val snapshot_digest_into : Buffer.t -> snapshot -> unit
(** Serialise deterministically (hash-table contents sorted). *)

val sanitized : t -> bool

val generation : t -> int -> int
(** [generation t addr] — how many times a block has been handed out at
    user base [addr] (0 if never).  Only tracked in sanitizer mode. *)

(** {1 Statistics} *)

val live_blocks : t -> int

val live_words : t -> int

val peak_live_blocks : t -> int

val peak_live_words : t -> int

val total_mallocs : t -> int

val total_frees : t -> int

val cache_hits : t -> int
(** Small allocations served from the caller's magazine without touching
    the central list. *)

val central_refills : t -> int
(** Batches of fresh blocks carved into a central list. *)

val cache_flushes : t -> int
(** Magazine overflows flushed to a central list, [batch] blocks each. *)

val cache_misses : t -> int
(** Small allocations that had to go to a central list (every small
    allocation, when magazines are off).  Hit rate is
    [hits / (hits + misses)]. *)

val magazines_enabled : t -> bool

val pp_stats : Format.formatter -> t -> unit
