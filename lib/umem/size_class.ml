let classes =
  [| 1; 2; 3; 4; 5; 6; 8; 10; 12; 16; 20; 24; 28; 32; 40; 48; 56; 64; 80; 96; 112; 128; 160; 192; 224; 256 |]

let count = Array.length classes

let max_small = classes.(count - 1)

(* Precomputed request-size -> class-index table. *)
let table =
  let t = Array.make (max_small + 1) 0 in
  let c = ref 0 in
  for n = 1 to max_small do
    if n > classes.(!c) then incr c;
    t.(n) <- !c
  done;
  t

let is_small n = n >= 1 && n <= max_small

let of_size n =
  if not (is_small n) then invalid_arg "Size_class.of_size";
  table.(n)

let size c = classes.(c)
