module Vec = Ts_util.Vec

(* Block header: one word just below the user base.  The header word is left
   in the "unallocated" shadow state so any data-plane access to it faults,
   which catches off-by-one bugs in data-structure code. *)
let live_magic = 0x1A11 lsl 32
let freed_magic = 0x0F9EE lsl 32
let magic_mask = lnot ((1 lsl 32) - 1)
let size_mask = (1 lsl 32) - 1

(* Sanitizer trailing canary: xor'd with the block base so a canary copied
   from another block is still detected. *)
let canary_magic = 0x5AFEC0DE lsl 24

type t = {
  mem : Mem.t;
  central : Vec.t array; (* per size class, user base addresses *)
  caches : Vec.t array option array; (* caches.(tid).(class), rows lazy *)
  large_free : (int, Vec.t) Hashtbl.t; (* exact size -> free list *)
  cache_cap : int;
  batch : int;
  magazine : bool; (* per-thread caches on; off = every call hits central *)
  sanitize : bool;
  generations : (int, int) Hashtbl.t; (* user base -> allocation generation *)
  mutable mallocs : int;
  mutable frees : int;
  mutable live : int;
  mutable peak_live : int;
  mutable live_w : int;
  mutable peak_w : int;
  mutable hits : int;
  mutable refills : int;
  mutable flushes : int;
  mutable misses : int;
}

let create ?(cache_cap = 64) ?(batch = 32) ?(magazine = true) ?(sanitize = false)
    ~max_threads mem =
  {
    mem;
    central = Array.init Size_class.count (fun _ -> Vec.create ());
    caches = Array.make max_threads None;
    large_free = Hashtbl.create 16;
    cache_cap;
    batch;
    magazine;
    sanitize;
    generations = Hashtbl.create 64;
    mallocs = 0;
    frees = 0;
    live = 0;
    peak_live = 0;
    live_w = 0;
    peak_w = 0;
    hits = 0;
    refills = 0;
    flushes = 0;
    misses = 0;
  }

let carve t block_w =
  (* One fresh block, header included; sanitized blocks get one more word
     for the trailing canary.  The extra words stay in the "unallocated"
     shadow state, so any data-plane access to them faults. *)
  let extra = if t.sanitize then 2 else 1 in
  let base = Mem.reserve t.mem (block_w + extra) in
  base + 1

let refill_central t cls =
  let block_w = Size_class.size cls in
  let lst = t.central.(cls) in
  for _ = 1 to t.batch do
    Vec.push lst (carve t block_w)
  done;
  t.refills <- t.refills + 1

let activate t addr block_w =
  Mem.raw_write t.mem (addr - 1) (live_magic lor block_w);
  Mem.mark_live t.mem addr block_w;
  if t.sanitize then begin
    Mem.raw_write t.mem (addr + block_w) (canary_magic lxor addr);
    let gen = match Hashtbl.find_opt t.generations addr with Some g -> g | None -> 0 in
    Hashtbl.replace t.generations addr (gen + 1)
  end

let cache_row t tid =
  match t.caches.(tid) with
  | Some row -> row
  | None ->
      let row = Array.init Size_class.count (fun _ -> Vec.create ~capacity:4 ()) in
      t.caches.(tid) <- Some row;
      row

let malloc_small t ~tid n =
  let cls = Size_class.of_size n in
  let addr =
    if not t.magazine then begin
      (* Magazines off: every small allocation goes to the central list. *)
      let central = t.central.(cls) in
      if Vec.is_empty central then refill_central t cls;
      t.misses <- t.misses + 1;
      Vec.pop central
    end
    else begin
      let cache = (cache_row t tid).(cls) in
      if not (Vec.is_empty cache) then begin
        t.hits <- t.hits + 1;
        Vec.pop cache
      end
      else begin
        let central = t.central.(cls) in
        if Vec.is_empty central then refill_central t cls;
        t.misses <- t.misses + 1;
        (* Move up to half a batch into the cache, keep one for the caller. *)
        let take = min (t.batch / 2) (Vec.length central - 1) in
        for _ = 1 to take do
          Vec.push cache (Vec.pop central)
        done;
        Vec.pop central
      end
    end
  in
  activate t addr (Size_class.size cls);
  addr

let malloc_large t n =
  let addr =
    match Hashtbl.find_opt t.large_free n with
    | Some lst when not (Vec.is_empty lst) -> Vec.pop lst
    | _ -> carve t n
  in
  activate t addr n;
  addr

let bump_stats_alloc t n =
  t.mallocs <- t.mallocs + 1;
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  t.live_w <- t.live_w + n;
  if t.live_w > t.peak_w then t.peak_w <- t.live_w

let malloc t ~tid n =
  if n < 1 then invalid_arg "Alloc.malloc: size must be >= 1";
  let addr = if Size_class.is_small n then malloc_small t ~tid n else malloc_large t n in
  let hdr = Mem.raw_read t.mem (addr - 1) in
  bump_stats_alloc t (hdr land size_mask);
  addr

let header t addr = if addr >= 2 then Mem.raw_read t.mem (addr - 1) else 0

let is_block t addr = header t addr land magic_mask = live_magic && Mem.is_live t.mem addr

let block_size t addr =
  if not (is_block t addr) then invalid_arg "Alloc.block_size: not a live block";
  header t addr land size_mask

let free t ~tid addr =
  let hdr = header t addr in
  if hdr land magic_mask = live_magic then begin
    let block_w = hdr land size_mask in
    if t.sanitize && Mem.raw_read t.mem (addr + block_w) <> canary_magic lxor addr then
      Mem.record_fault t.mem Mem.Canary_overwrite addr;
    Mem.raw_write t.mem (addr - 1) (freed_magic lor block_w);
    Mem.mark_freed t.mem addr block_w;
    t.frees <- t.frees + 1;
    t.live <- t.live - 1;
    t.live_w <- t.live_w - block_w;
    if Size_class.is_small block_w && Size_class.size (Size_class.of_size block_w) = block_w
    then begin
      let cls = Size_class.of_size block_w in
      if not t.magazine then Vec.push t.central.(cls) addr
      else begin
        let cache = (cache_row t tid).(cls) in
        Vec.push cache addr;
        if Vec.length cache > t.cache_cap then begin
          let central = t.central.(cls) in
          for _ = 1 to t.batch do
            Vec.push central (Vec.pop cache)
          done;
          t.flushes <- t.flushes + 1
        end
      end
    end
    else begin
      let lst =
        match Hashtbl.find_opt t.large_free block_w with
        | Some lst -> lst
        | None ->
            let lst = Vec.create () in
            Hashtbl.add t.large_free block_w lst;
            lst
      in
      Vec.push lst addr
    end
  end
  else if hdr land magic_mask = freed_magic then Mem.record_fault t.mem Mem.Double_free addr
  else Mem.record_fault t.mem Mem.Bad_free addr

let alloc_region t n =
  if n < 1 then invalid_arg "Alloc.alloc_region";
  let base = Mem.reserve t.mem n in
  Mem.mark_live t.mem base n;
  base

(* ---- allocator snapshots (simulator savepoints) ----

   Captures every free list, per-thread cache row, the sanitizer's
   generation counters and the statistics; restoring (on top of a matching
   {!Mem.restore_snapshot}) puts the allocator back exactly where it was.
   Hash-table contents are serialised sorted so digests are canonical. *)

type snapshot = {
  snap_central : int array array;
  snap_caches : (int * int array array) list; (* materialised rows, by tid *)
  snap_large : (int * int array) list; (* by block size *)
  snap_generations : (int * int) list; (* by user base *)
  snap_counters : int array;
}

let snapshot t =
  let sorted l = List.sort compare l in
  {
    snap_central = Array.map Vec.to_array t.central;
    snap_caches =
      Array.to_list t.caches
      |> List.mapi (fun tid row -> (tid, row))
      |> List.filter_map (fun (tid, row) ->
             Option.map (fun r -> (tid, Array.map Vec.to_array r)) row);
    snap_large =
      Hashtbl.fold (fun n lst acc -> (n, Vec.to_array lst) :: acc) t.large_free []
      |> sorted;
    snap_generations = Hashtbl.fold (fun a g acc -> (a, g) :: acc) t.generations [] |> sorted;
    snap_counters =
      [|
        t.mallocs;
        t.frees;
        t.live;
        t.peak_live;
        t.live_w;
        t.peak_w;
        t.hits;
        t.refills;
        t.flushes;
        t.misses;
      |];
  }

let refill_vec v a =
  Vec.clear v;
  Vec.append_array v a

let restore_snapshot t s =
  Array.iteri (fun i a -> refill_vec t.central.(i) a) s.snap_central;
  Array.fill t.caches 0 (Array.length t.caches) None;
  List.iter
    (fun (tid, row) -> t.caches.(tid) <- Some (Array.map Vec.of_array row))
    s.snap_caches;
  Hashtbl.reset t.large_free;
  List.iter (fun (n, a) -> Hashtbl.add t.large_free n (Vec.of_array a)) s.snap_large;
  Hashtbl.reset t.generations;
  List.iter (fun (a, g) -> Hashtbl.add t.generations a g) s.snap_generations;
  (match s.snap_counters with
  | [| m; f; l; pl; lw; pw; h; r; fl; ms |] ->
      t.mallocs <- m;
      t.frees <- f;
      t.live <- l;
      t.peak_live <- pl;
      t.live_w <- lw;
      t.peak_w <- pw;
      t.hits <- h;
      t.refills <- r;
      t.flushes <- fl;
      t.misses <- ms
  | _ -> assert false)

let reset t =
  Array.iter Vec.clear t.central;
  Array.fill t.caches 0 (Array.length t.caches) None;
  Hashtbl.reset t.large_free;
  Hashtbl.reset t.generations;
  t.mallocs <- 0;
  t.frees <- 0;
  t.live <- 0;
  t.peak_live <- 0;
  t.live_w <- 0;
  t.peak_w <- 0;
  t.hits <- 0;
  t.refills <- 0;
  t.flushes <- 0;
  t.misses <- 0

let snapshot_digest_into buf s =
  let int i = Buffer.add_int64_ne buf (Int64.of_int i) in
  Array.iter
    (fun a ->
      int (Array.length a);
      Array.iter int a)
    s.snap_central;
  List.iter
    (fun (tid, row) ->
      int tid;
      Array.iter
        (fun a ->
          int (Array.length a);
          Array.iter int a)
        row)
    s.snap_caches;
  List.iter
    (fun (n, a) ->
      int n;
      int (Array.length a);
      Array.iter int a)
    s.snap_large;
  List.iter
    (fun (a, g) ->
      int a;
      int g)
    s.snap_generations;
  Array.iter int s.snap_counters

let sanitized t = t.sanitize

let generation t addr =
  match Hashtbl.find_opt t.generations addr with Some g -> g | None -> 0

let live_blocks t = t.live

let live_words t = t.live_w

let peak_live_blocks t = t.peak_live

let peak_live_words t = t.peak_w

let total_mallocs t = t.mallocs

let total_frees t = t.frees

let cache_hits t = t.hits

let central_refills t = t.refills

let cache_flushes t = t.flushes

let cache_misses t = t.misses

let magazines_enabled t = t.magazine

let pp_stats ppf t =
  Fmt.pf ppf
    "mallocs=%d frees=%d live=%d peak=%d live_words=%d cache_hits=%d misses=%d refills=%d \
     flushes=%d"
    t.mallocs t.frees t.live t.peak_live t.live_w t.hits t.misses t.refills t.flushes
