(** Flat, word-addressable "unmanaged" memory.

    This is the C heap of the reproduction: a growable [int array] indexed by
    word addresses, with a per-word allocation-state shadow.  The shadow is
    what makes memory errors — the whole reason memory reclamation exists —
    *observable events* rather than silent corruption: reading or writing a
    freed word is a use-after-free fault, touching never-allocated memory is a
    wild access, and freed words are filled with a poison pattern.

    Addresses are word indices; address [0] is reserved as the null address
    and is never backed.  See {!Ptr} for the pointer-value encoding used by
    data structures. *)

type t

type fault_kind =
  | Uaf_read      (** read of a freed word *)
  | Uaf_write     (** write to a freed word *)
  | Wild_read     (** read of a never-allocated word *)
  | Wild_write    (** write to a never-allocated word *)
  | Double_free   (** free of a block that is not live *)
  | Bad_free      (** free of an address that is not a block base *)
  | Out_of_memory (** capacity limit exceeded *)
  | Canary_overwrite
      (** a sanitizer canary word was clobbered (control-plane overflow) *)

exception Fault of fault_kind * int
(** Raised on a memory error when the store is strict; the [int] is the
    offending address. *)

val fault_to_string : fault_kind -> string

val poison : int
(** Pattern written into every word of a freed block. *)

val create : ?strict:bool -> ?capacity_limit:int -> unit -> t
(** [create ()] makes an empty store.  [strict] (default [true]) raises
    {!Fault} on memory errors; otherwise faults are only counted and reads of
    bad words return {!poison}.  [capacity_limit] bounds growth (default
    [1 lsl 26] words = 512 MiB worth of 8-byte words). *)

val strict : t -> bool

val size : t -> int
(** Current number of backed words (high-water mark of {!reserve}). *)

val reserve : t -> int -> int
(** [reserve t n] extends the store by [n] fresh words and returns the base
    address of the new range.  The words start in the unallocated state.
    @raise Fault [Out_of_memory] when the limit would be exceeded. *)

(** {1 Allocation state} *)

val mark_live : t -> int -> int -> unit
(** [mark_live t base n] marks [n] words from [base] live and zero-fills
    them. *)

val mark_freed : t -> int -> int -> unit
(** Marks the range freed and poisons it. *)

val is_live : t -> int -> bool

val is_freed : t -> int -> bool

(** {1 Data-plane access (checked)} *)

val read : t -> int -> int

val write : t -> int -> int -> unit

(** {1 Control-plane access (unchecked)} *)

val raw_read : t -> int -> int
(** Reads without state checking; used by allocator metadata, oracles and
    debug printers.  Out-of-range addresses return {!poison}. *)

val raw_write : t -> int -> int -> unit

(** {1 Snapshots}

    Deep copies of the whole heap (words, shadow states, high-water mark,
    fault counters) — the memory half of a simulator savepoint. *)

type snapshot

val snapshot : t -> snapshot
(** An independent deep copy of the current heap contents; immutable under
    further execution. *)

val restore_snapshot : t -> snapshot -> unit
(** Put the heap back bit-for-bit to the snapshotted state.  Words reserved
    after the snapshot return to the pristine unallocated state. *)

val reset : t -> unit
(** Back to the just-{!create}d state (capacity is kept). *)

val snapshot_digest_into : Buffer.t -> snapshot -> unit
(** Serialise the snapshot deterministically for state digests. *)

(** {1 Fault accounting} *)

val fault_count : t -> fault_kind -> int

val total_faults : t -> int

val record_fault : t -> fault_kind -> int -> unit
(** Count (and in strict mode raise) a fault detected by a client, e.g. the
    allocator's double-free check. *)

val set_fault_hook : t -> (fault_kind -> int -> unit) -> unit
(** Install a callback invoked on every fault {e before} the strict-mode
    raise — the heap sanitizer uses it to capture the offending thread and
    reclamation phase while the simulator state is still intact. *)

val pp_faults : Format.formatter -> t -> unit
