(** Pointer-value encoding.

    A node reference stored *in memory* (as opposed to a bare word address)
    is encoded as [addr lsl 3], mimicking a byte address with 8-byte
    alignment.  The three low bits are available for tags; bit 0 carries the
    Harris/Michael logical-deletion mark.  ThreadScan's scanner masks the low
    bits before comparing, exactly as §4.2 of the paper prescribes. *)

val null : int
(** The null pointer (0). *)

val of_addr : int -> int
(** [of_addr a] encodes word address [a] as a pointer value. *)

val addr : int -> int
(** [addr p] decodes the word address, ignoring tag bits. *)

val is_null : int -> bool
(** True when the pointer (tags ignored) designates no node. *)

val mark : int -> int
(** Sets the logical-deletion bit (bit 0). *)

val unmark : int -> int

val is_marked : int -> bool

val mask : int -> int
(** [mask w] clears the three low-order tag bits of an arbitrary word — the
    conservative-scan normalisation. *)
