(** TCMalloc-style size classes (in words).

    Small requests are rounded up to one of a fixed set of class sizes so
    freed blocks are reusable across call sites; larger requests are served
    as exact-size "large" spans.  The class table mirrors TCMalloc's shape:
    dense at small sizes, geometric afterwards. *)

val max_small : int
(** Largest size (in words) served from a size class. *)

val count : int
(** Number of size classes. *)

val of_size : int -> int
(** [of_size n] is the class index for a request of [n] words.
    Requires [1 <= n <= max_small]. *)

val size : int -> int
(** [size c] is the block size (words) of class [c]. *)

val is_small : int -> bool
(** Whether a request of [n] words is served from a class. *)
