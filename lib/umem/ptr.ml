let null = 0

let of_addr a = a lsl 3

let mask w = w land lnot 7

let addr p = (mask p) lsr 3

let is_null p = mask p = 0

let mark p = p lor 1

let unmark p = p land lnot 1

let is_marked p = p land 1 = 1
