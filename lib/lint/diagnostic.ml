(* A single finding: which pass, how severe, where, and why.

   Severity is per-diagnostic (not per-pass) so a pass can mix hard
   violations with advisory notes: only [Error] diagnostics fail the
   driver; [Warning]s print but exit 0 — that is what keeps the
   unused-waiver check from blocking a build while still making rot
   visible. *)

type severity = Error | Warning

type t = {
  pass : string;  (* pass id, e.g. "facade" — what a waiver names *)
  severity : severity;
  file : string;  (* path as walked, relative to the driver's cwd *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, compiler convention *)
  message : string;
}

let make ~pass ~severity ~file ~line ~col message =
  { pass; severity; file; line; col; message }

let severity_string = function Error -> "error" | Warning -> "warning"

(* file, then position, then pass: the order a reader fixes things in. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.pass b.pass

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" d.file d.line d.col d.pass
    (severity_string d.severity)
    d.message

(* Hand-rolled JSON, same policy as the bench writers: no dependency,
   escaping covers everything a diagnostic message can contain. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    {|{"pass":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape d.pass)
    (severity_string d.severity)
    (json_escape d.file) d.line d.col (json_escape d.message)
