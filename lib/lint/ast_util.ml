(* Shared parsetree helpers for the passes. *)

open Parsetree

(* [Longident.flatten] raises on functor applications; a forbidden
   module inside [F(Atomic)] still surfaces because the iterator visits
   the argument as its own module expression. *)
let flatten lid = try Longident.flatten lid with _ -> []

let last lid = match List.rev (flatten lid) with x :: _ -> Some x | [] -> None

(* The callee of an application, as a flattened name path:
   [Runtime.cas a b c] -> ["Runtime"; "cas"], [smr.retire p] ->
   ["retire"] (field access keeps only the field path — the record
   expression is not a module path). *)
let callee_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten txt
  | Pexp_field (_, { txt; _ }) -> flatten txt
  | _ -> []

let callee_last e = match List.rev (callee_path e) with x :: _ -> Some x | [] -> None

(* Iterate every expression in a structure, top-down. *)
let iter_exprs f str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* Does [e] mention the value identifier [name] (unqualified)? *)
let mentions_ident name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when n = name -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it e;
  !found

(* All unqualified value identifiers mentioned in [e] — used to extract
   the "core" variables of a retire argument like [!cur] or
   [Ptr.addr p].  Operator names ([!], [+]) are not variables. *)
let idents_of e =
  let acc = ref [] in
  let is_var n =
    String.length n > 0 && (match n.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } ->
              if is_var n && not (List.mem n !acc) then acc := n :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it e;
  !acc

(* Variable names bound by a pattern (function parameters). *)
let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self x ->
          (match x.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              if not (List.mem txt !acc) then acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self x);
    }
  in
  it.pat it p;
  !acc

(* In-file aliases of a module path: [module Runtime = Ts_rt] makes
   "Runtime" an alias of ["Ts_rt"].  Returns the alias names (the
   original head is always included). *)
let module_aliases str ~target =
  let aliases = ref [ List.hd target ] in
  let it =
    {
      Ast_iterator.default_iterator with
      module_binding =
        (fun self mb ->
          (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some name, Pmod_ident { txt; _ } when flatten txt = target ->
              if not (List.mem name !aliases) then aliases := name :: !aliases
          | _ -> ());
          Ast_iterator.default_iterator.module_binding self mb);
    }
  in
  it.structure it str;
  !aliases

(* First positional (unlabelled) argument of an argument list. *)
let first_positional args =
  List.find_map (function Asttypes.Nolabel, a -> Some a | _ -> None) args

(* Name -> body for every [let]-bound function in the file, at any
   nesting depth.  Later bindings shadow earlier ones — good enough for
   reachability seeds; the repo does not shadow function names across
   meanings. *)
let function_bodies str =
  let tbl = Hashtbl.create 64 in
  let rec strip_funs e =
    match e.pexp_desc with Pexp_fun (_, _, _, body) -> strip_funs body | _ -> e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
          | Ppat_var { txt; _ }, (Pexp_fun _ | Pexp_function _) ->
              Hashtbl.replace tbl txt (strip_funs vb.pvb_expr)
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  tbl
