(* The driver: walk roots, parse every .ml/.mli with compiler-libs,
   run the selected passes, apply inline waivers, report.

   Exit codes (what `dune build @lint` and CI key on):
     0 — no error diagnostics (warnings — unused waivers, stale
         whitelist entries — print but do not fail);
     1 — at least one non-waived error;
     2 — usage or I/O problem (missing root, unknown pass). *)

type config = {
  roots : string list;
  passes : string list option;  (* None = all *)
  json : bool;
}

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let rec walk dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun acc e ->
      let p = Filename.concat dir e in
      if Sys.is_directory p then acc @ walk p
      else if Filename.check_suffix e ".ml" || Filename.check_suffix e ".mli" then acc @ [ p ]
      else acc)
    [] entries

(* Files under a root, as (root, rel, path).  A root may be a single
   file — handy for fixtures and spot checks. *)
let files_of_root root =
  if Sys.is_directory root then
    List.map
      (fun path ->
        let r = String.length root and p = String.length path in
        let rel =
          if p > r && String.sub path 0 r = root then String.sub path (r + 1) (p - r - 1)
          else path
        in
        (root, rel, path))
      (walk root)
  else [ (Filename.dirname root, Filename.basename root, root) ]

let parse_line_of exn =
  match exn with
  | Syntaxerr.Error e -> (Syntaxerr.location_of_error e).loc_start.pos_lnum
  | _ -> 1

(* Lint one already-loaded file; returns (diagnostics, waiver list). *)
let lint_source ~passes ~root ~rel ~path source =
  let ctx = { Pass.root; rel; path; source } in
  let waivers, waiver_warns = Waiver.scan ~file:path source in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  let diags =
    try
      if Filename.check_suffix path ".mli" then
        let sg = Parse.interface lexbuf in
        List.concat_map
          (fun (p : Pass.t) -> match p.intf with Some f -> f ctx sg | None -> [])
          passes
      else
        let str = Parse.implementation lexbuf in
        List.concat_map
          (fun (p : Pass.t) -> match p.impl with Some f -> f ctx str | None -> [])
          passes
    with exn ->
      [
        Diagnostic.make ~pass:"parse" ~severity:Diagnostic.Error ~file:path
          ~line:(parse_line_of exn) ~col:0
          (Printf.sprintf "file does not parse: %s"
             (match exn with Syntaxerr.Error _ -> "syntax error" | e -> Printexc.to_string e));
      ]
  in
  let kept =
    List.filter
      (fun (d : Diagnostic.t) -> not (Waiver.covers waivers ~pass:d.pass ~line:d.line))
      diags
  in
  let ran = List.map (fun (p : Pass.t) -> p.id) passes in
  (kept @ waiver_warns @ Waiver.unused waivers ~file:path ~ran, waivers)

let lint_file ?passes path =
  let passes =
    match passes with
    | None -> Passes.all
    | Some ids -> List.filter_map Passes.find ids
  in
  let root = Filename.dirname path and rel = Filename.basename path in
  fst (lint_source ~passes ~root ~rel ~path (read_file path))

let run cfg =
  let passes =
    match cfg.passes with
    | None -> Passes.all
    | Some ids ->
        List.map
          (fun id ->
            match Passes.find id with
            | Some p -> p
            | None ->
                Printf.eprintf "tslint: unknown pass %S (see --list-passes)\n" id;
                exit 2)
          ids
  in
  List.iter
    (fun root ->
      if not (Sys.file_exists root) then begin
        Printf.eprintf "tslint: no such file or directory: %s\n" root;
        exit 2
      end)
    cfg.roots;
  let files = List.concat_map files_of_root cfg.roots in
  let diags =
    List.concat_map
      (fun (root, rel, path) ->
        fst (lint_source ~passes ~root ~rel ~path (read_file path)))
      files
  in
  let diags = List.sort Diagnostic.compare diags in
  (* A site reachable two ways (e.g. a handler-reachable function on two
     call paths) yields identical diagnostics; keep one. *)
  let diags =
    let rec dedup = function
      | (a : Diagnostic.t) :: b :: rest
        when a.pass = b.pass && a.file = b.file && a.line = b.line && a.col = b.col ->
          dedup (a :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    dedup diags
  in
  let errors =
    List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) diags)
  in
  let warnings = List.length diags - errors in
  if cfg.json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b "  \"tool\": \"ts_lint\",\n";
    Buffer.add_string b "  \"version\": 1,\n";
    Buffer.add_string b
      (Printf.sprintf "  \"roots\": [%s],\n"
         (String.concat ", "
            (List.map (fun r -> "\"" ^ Diagnostic.json_escape r ^ "\"") cfg.roots)));
    Buffer.add_string b
      (Printf.sprintf "  \"passes\": [%s],\n"
         (String.concat ", " (List.map (fun (p : Pass.t) -> "\"" ^ p.id ^ "\"") passes)));
    Buffer.add_string b (Printf.sprintf "  \"files\": %d,\n" (List.length files));
    Buffer.add_string b (Printf.sprintf "  \"errors\": %d,\n" errors);
    Buffer.add_string b (Printf.sprintf "  \"warnings\": %d,\n" warnings);
    Buffer.add_string b "  \"diagnostics\": [";
    List.iteri
      (fun i d ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "\n    ";
        Buffer.add_string b (Diagnostic.to_json d))
      diags;
    if diags <> [] then Buffer.add_string b "\n  ";
    Buffer.add_string b "]\n}\n";
    print_string (Buffer.contents b)
  end
  else begin
    List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
    if errors > 0 then
      Printf.printf "tslint: %d error%s, %d warning%s (%d pass%s, %d files)\n" errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
        (List.length passes)
        (if List.length passes = 1 then "" else "es")
        (List.length files)
    else
      Printf.printf "tslint: OK%s (%d pass%s, %d files)\n"
        (if warnings > 0 then Printf.sprintf ", %d warning%s" warnings (if warnings = 1 then "" else "s")
         else "")
        (List.length passes)
        (if List.length passes = 1 then "" else "es")
        (List.length files)
  end;
  if errors > 0 then 1 else 0

let list_passes () =
  List.iter (fun (p : Pass.t) -> Printf.printf "%-10s %s\n" p.id p.doc) Passes.all
