(* Pass "padded": the false-sharing audit.

   OCaml allocates small blocks back to back, so hot cells and records
   touched by different threads routinely share a cache line; every
   write by one thread then invalidates the other's line.  The cure is
   [Ts_util.Padded.copy] (docs/PERF.md), and this pass makes the cure a
   checked invariant instead of a code-review habit:

   - a whitelist of known-hot types (seeded below, extended as new
     shared words appear — the ROADMAP's standing ask) pins down the
     fields that MUST be line-isolated: constructing such a record with
     a hot field not wrapped in [Padded.copy]/[Padded.atomic] is an
     error, as is constructing a whole-record entry outside a
     [Padded.copy] application;
   - independently, in the audited directories any record field whose
     value is a bare [Atomic.make ...] is flagged: a freshly made cell
     stored straight into a field is exactly the allocation pattern
     that lands two threads' hot words on one line.  (Cells created
     inside [Array.init] are deliberately not flagged: an array of
     atomics is a layout decision the whitelist governs, not a per-cell
     accident.)

   A whitelist entry that no longer matches a type declaration is
   reported as a warning so the seed list cannot rot along with the
   code it describes. *)

open Parsetree

let pass_id = "padded"

(* Directories (relative to a scanned root) under audit: the native
   backend, the reclamation schemes, the ThreadScan core and the SMR
   counter plumbing every scheme shares. *)
let audited_dirs = [ "core"; "reclaim"; "par"; "smr" ]

(* Known-hot types: (file basename, type name, hot fields).  An empty
   field list means the whole record must be constructed under
   [Padded.copy] (its fields are immediates mutated in place); a
   non-empty list names pointer fields whose cells must each be padded. *)
let hot_types =
  [
    (* par backend: every op bumps these; neighbours must not share lines *)
    ("runtime.ml", "t", [ "steps"; "by_thread"; "next_tid" ]);
    ( "runtime.ml",
      "ctx",
      [ "pending"; "kill"; "finished"; "stall_req"; "stalled_flag"; "stall_release" ] );
    ( "heap.ml",
      "t",
      (* the magazine stats ride the malloc/free hot path too *)
      [
        "mallocs";
        "frees";
        "live";
        "live_w";
        "peak_live";
        "peak_w";
        "hits";
        "misses";
        "refills";
        "flushes";
      ] );
    (* SMR counters: bumped under critical by every thread on every
       retire/free — the record itself must sit on its own line *)
    ("smr.ml", "counters", []);
    (* regression fixture *)
    ("fixture_padded.ml", "hot", [ "sig_word"; "ack_word" ]);
  ]

let padded_heads = [ "copy"; "atomic" ]

(* [Padded.copy e] / [Ts_util.Padded.atomic v] / an alias of
   Ts_util.Padded. *)
let is_padded_app aliases e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match List.rev (Ast_util.callee_path f) with
      | fn :: "Padded" :: _ -> List.mem fn padded_heads
      | [ fn; m ] -> List.mem fn padded_heads && List.mem m aliases
      | _ -> false)
  | _ -> false

let is_atomic_make e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match Ast_util.callee_path f with [ "Atomic"; "make" ] -> true | _ -> false)
  | _ -> false

let label_last (lid : Longident.t Asttypes.loc) = Ast_util.last lid.txt

let scan ctx str =
  let base = Filename.basename ctx.Pass.rel in
  let acc = ref [] in
  let aliases = Ast_util.module_aliases str ~target:[ "Ts_util"; "Padded" ] in
  let my_hot = List.filter (fun (f, _, _) -> f = base) hot_types in
  (* Declared label sets for this file's record types. *)
  let decls = Hashtbl.create 8 in
  let it_decl =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              Hashtbl.replace decls td.ptype_name.txt
                (List.map (fun l -> l.pld_name.txt) labels)
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it_decl.structure it_decl str;
  (* Stale whitelist entries: the type vanished or a hot field did. *)
  List.iter
    (fun (_, tname, fields) ->
      match Hashtbl.find_opt decls tname with
      | None ->
          acc :=
            Pass.warn ~pass:pass_id ctx Location.none
              "stale padded whitelist entry: no record type %S in %s" tname base
            :: !acc
      | Some labels ->
          List.iter
            (fun f ->
              if not (List.mem f labels) then
                acc :=
                  Pass.warn ~pass:pass_id ctx Location.none
                    "stale padded whitelist entry: type %S has no field %S" tname f
                  :: !acc)
            fields)
    my_hot;
  (* Record constructions sitting directly under a Padded application —
     the legal way to build a whole-record hot type. *)
  let wrapped = Hashtbl.create 8 in
  Ast_util.iter_exprs
    (fun e ->
      if is_padded_app aliases e then
        match e.pexp_desc with
        | Pexp_apply (_, args) -> (
            match Ast_util.first_positional args with
            | Some { pexp_desc = Pexp_record (_, None); pexp_loc; _ } ->
                Hashtbl.replace wrapped pexp_loc ()
            | _ -> ())
        | _ -> ())
    str;
  (* Which hot entry does a record construction belong to?  All declared
     labels present (OCaml requires totality without `with`), matched by
     the construction's label set. *)
  let hot_entry_of labels_used =
    List.find_opt
      (fun (_, tname, _) ->
        match Hashtbl.find_opt decls tname with
        | Some decl_labels ->
            List.length labels_used = List.length decl_labels
            && List.for_all (fun l -> List.mem l decl_labels) labels_used
        | None -> false)
      my_hot
  in
  Ast_util.iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_record (fields, None) -> (
          let labels_used = List.filter_map (fun (l, _) -> label_last l) fields in
          match hot_entry_of labels_used with
          | Some (_, tname, []) ->
              if not (Hashtbl.mem wrapped e.pexp_loc) then
                acc :=
                  Pass.err ~pass:pass_id ctx e.pexp_loc
                    "construction of hot type %s is not wrapped in Ts_util.Padded.copy — \
                     its fields are mutated cross-thread and must own their cache lines"
                    tname
                  :: !acc
          | Some (_, tname, hot_fields) ->
              List.iter
                (fun (l, v) ->
                  match label_last l with
                  | Some name when List.mem name hot_fields ->
                      if not (is_padded_app aliases v) then
                        acc :=
                          Pass.err ~pass:pass_id ctx v.pexp_loc
                            "hot field %s.%s is not line-isolated — wrap the cell in \
                             Ts_util.Padded.copy"
                            tname name
                          :: !acc
                  | _ -> ())
                fields
          | None ->
              List.iter
                (fun (l, v) ->
                  if is_atomic_make v then
                    acc :=
                      Pass.err ~pass:pass_id ctx v.pexp_loc
                        "record field %s holds a bare Atomic.make cell — adjacent cells \
                         share a cache line; wrap it in Ts_util.Padded.copy (or \
                         whitelist the type as cold)"
                        (Option.value ~default:"?" (label_last l))
                      :: !acc)
                fields)
      | _ -> ())
    str;
  List.rev !acc

let applies ctx = Pass.in_dir ctx audited_dirs || Pass.is_fixture ctx

let pass =
  {
    Pass.id = pass_id;
    doc = "cross-thread-hot record fields in core/reclaim/par/smr must be Ts_util.Padded";
    impl = Some (fun ctx str -> if applies ctx then scan ctx str else []);
    intf = None;
  }
