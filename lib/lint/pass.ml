(* The pass interface and registry.

   A pass sees one parsed file at a time: the raw parsetree (no typing,
   no ppx — whatever `Parse.implementation` returns) plus a [ctx] with
   the file's place in the scanned tree.  It returns diagnostics; the
   driver owns waiver filtering, ordering and output.

   Passes are pure per-file by design: every check here is either
   syntactic or resolved through in-file binding tracking (module
   aliases, local functions).  Cross-module reasoning belongs to the
   dynamic analyzers (docs/ANALYSIS.md); the split is documented in
   docs/LINT.md. *)

type ctx = {
  root : string;  (* the root argument this file was found under *)
  rel : string;  (* path relative to [root], '/'-separated *)
  path : string;  (* [root] joined with [rel] — what diagnostics cite *)
  source : string;  (* raw file contents *)
}

(* Directories under a root whose modules ARE the execution backends:
   they implement the primitives the rest of the tree must not name. *)
let backend_dirs = [ "rt"; "sim"; "par" ]

let in_dir ctx dirs =
  List.exists
    (fun d ->
      let p = d ^ "/" in
      String.length ctx.rel > String.length p && String.sub ctx.rel 0 (String.length p) = p)
    dirs

let is_backend ctx = in_dir ctx backend_dirs

(* Seeded-violation fixtures (test/lint_fixtures) carry no directory
   structure; passes whose scope is directory-based treat them as
   in-scope so the regression suite can exercise every pass. *)
let is_fixture ctx =
  let base = Filename.basename ctx.rel in
  String.length base >= 8 && String.sub base 0 8 = "fixture_"

type t = {
  id : string;  (* what --pass and waiver comments name *)
  doc : string;  (* one line for --list-passes *)
  impl : (ctx -> Parsetree.structure -> Diagnostic.t list) option;
  intf : (ctx -> Parsetree.signature -> Diagnostic.t list) option;
}

let err ~pass ctx (loc : Location.t) fmt =
  Printf.ksprintf
    (fun msg ->
      Diagnostic.make ~pass ~severity:Diagnostic.Error ~file:ctx.path
        ~line:loc.loc_start.pos_lnum
        ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        msg)
    fmt

let warn ~pass ctx (loc : Location.t) fmt =
  Printf.ksprintf
    (fun msg ->
      Diagnostic.make ~pass ~severity:Diagnostic.Warning ~file:ctx.path
        ~line:loc.loc_start.pos_lnum
        ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        msg)
    fmt
