(* The pass catalogue, in the order --list-passes and reports use.
   Adding a pass: write lib/lint/pass_<id>.ml exposing a [pass] value,
   list it here, document it in docs/LINT.md, and seed a violation in
   test/lint_fixtures/fixture_<id>.ml. *)

let all : Pass.t list =
  [
    Pass_facade.pass;
    Pass_critical.pass;
    Pass_padding.pass;
    Pass_sigsafe.pass;
    Pass_retire.pass;
  ]

let find id = List.find_opt (fun (p : Pass.t) -> p.id = id) all
