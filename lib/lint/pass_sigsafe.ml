(* Pass "sigsafe": signal-path safety.

   The paper's handler discipline (§3): the code a ThreadScan/DEBRA+
   signal handler runs must be async-safe — it may scan, mark and
   write flags, but it must not allocate or free through the managed
   allocator and must not take locks, because the interrupted thread
   may hold the very lock (or be mid-malloc in the very allocator) the
   handler would need.  Both backends today deliver signals at
   safepoint polls, which softens the constraint in practice — but the
   discipline is what makes a preemptive-delivery port possible at
   all, so the tree keeps it, with waivers marking the two places that
   knowingly lean on polled delivery.

   Mechanics: the pass finds every [set_signal_handler] registration,
   resolves the handler to a function body (a literal [fun] or an
   in-file [let]-bound name), and walks the in-file call graph
   reachable from it — a mention of a local function name anywhere in
   a reachable body (including partial applications passed to
   [List.iter] etc.) makes that function reachable.  In reachable
   code it flags:

   - [malloc]/[free] through the facade (qualified with Ts_rt or an
     alias, or an ops-record field access);
   - lock acquisition: [Ts_rt.critical], [Mutex.lock],
     [Spinlock.acquire], [Ticket_lock.acquire].

   The analysis is intra-file: a reachable call into another module is
   not followed (the dynamic checker owns that depth).  docs/LINT.md
   spells out the limitation. *)

open Parsetree

let pass_id = "sigsafe"

let alloc_calls = [ "malloc"; "free" ]

(* (module head or None-for-field, function) pairs that take a lock *)
let lock_calls =
  [ (None, "critical"); (Some "Mutex", "lock"); (Some "Spinlock", "acquire"); (Some "Ticket_lock", "acquire") ]

let scan ctx str =
  let acc = ref [] in
  let rt_aliases = Ast_util.module_aliases str ~target:[ "Ts_rt" ] in
  let bodies = Ast_util.function_bodies str in
  (* Registration sites: set_signal_handler applied to a handler. *)
  let registrations = ref [] in
  Ast_util.iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, args) when Ast_util.callee_last f = Some "set_signal_handler" -> (
          match Ast_util.first_positional args with
          | Some h -> registrations := (e.pexp_loc, h) :: !registrations
          | None -> ())
      | _ -> ())
    str;
  let check_reachable (reg_loc : Location.t) handler =
    let visited = Hashtbl.create 16 in
    let rec visit_body via body =
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.pexp_desc with
              | Pexp_apply (f, _) -> (
                  match List.rev (Ast_util.callee_path f) with
                  | [ fn ] when List.mem fn alloc_calls && (match f.pexp_desc with Pexp_field _ -> true | _ -> false) ->
                      flag e fn via
                  | [ fn; m ] when List.mem fn alloc_calls && List.mem m rt_aliases ->
                      flag e fn via
                  | [ fn ] when List.exists (fun (m, n) -> m = None && n = fn) lock_calls
                                && (match f.pexp_desc with Pexp_field _ -> true | _ -> false) ->
                      flag_lock e fn via
                  | [ fn; m ]
                    when List.exists
                           (fun (mh, n) ->
                             n = fn && (mh = Some m || (mh = None && List.mem m rt_aliases)))
                           lock_calls ->
                      flag_lock e fn via
                  | _ -> ())
              | _ -> ());
              (* any mention of a local function name marks it reachable,
                 covering partial applications handed to HOFs *)
              (match e.pexp_desc with
              | Pexp_ident { txt = Longident.Lident n; _ } when Hashtbl.mem bodies n ->
                  if not (Hashtbl.mem visited n) then begin
                    Hashtbl.add visited n ();
                    visit_body (via @ [ n ]) (Hashtbl.find bodies n)
                  end
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.expr it body
    and flag e fn via =
      acc :=
        Pass.err ~pass:pass_id ctx e.pexp_loc
          "%s on the signal path (handler registered at line %d%s) — handlers must not \
           touch the managed allocator"
          fn reg_loc.loc_start.pos_lnum (via_string via)
        :: !acc
    and flag_lock e fn via =
      acc :=
        Pass.err ~pass:pass_id ctx e.pexp_loc
          "%s on the signal path (handler registered at line %d%s) — the interrupted \
           thread may hold the lock the handler would block on"
          fn reg_loc.loc_start.pos_lnum (via_string via)
        :: !acc
    and via_string = function [] -> "" | vs -> ", via " ^ String.concat " -> " vs in
    match handler.pexp_desc with
    | Pexp_fun (_, _, _, body) -> visit_body [] body
    | Pexp_ident { txt = Longident.Lident n; _ } when Hashtbl.mem bodies n ->
        Hashtbl.add visited n ();
        visit_body [ n ] (Hashtbl.find bodies n)
    | _ -> visit_body [] handler
  in
  List.iter (fun (loc, h) -> check_reachable loc h) (List.rev !registrations);
  List.rev !acc

let pass =
  {
    Pass.id = pass_id;
    doc = "code reachable from signal-handler registration must not malloc/free or lock";
    impl = Some (fun ctx str -> if Pass.is_backend ctx then [] else scan ctx str);
    intf = None;
  }
