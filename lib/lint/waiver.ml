(* Inline waivers.

   A diagnostic is silenced by a comment at the violation site:

     (* tslint: allow <pass>[,<pass>...] -- <reason> *)

   The comment covers every line it spans plus the line immediately
   after it, so it can sit at the end of the offending line or on its
   own line directly above.  The reason is mandatory: a waiver is a
   documented backdoor, and the documentation is the point.

   Waivers replace the old hardcoded path list in bin/tslint.ml, which
   silenced whole files forever: nobody noticed when a waived file
   stopped needing its waiver.  Here every waiver is tracked — one that
   silenced nothing during a run of its pass is itself reported (as a
   warning, pass id "waiver"), so the set cannot rot. *)

type t = {
  start_line : int;
  end_line : int;
  passes : string list;
  reason : string;
  mutable used : bool;
}

let directive = "tslint:"

(* A comment is a directive only when its body — right after the opener
   — starts with "tslint:".  Prose that merely mentions the marker
   mid-comment is not parsed. *)
let is_directive body =
  let n = String.length body in
  let i = ref 2 (* skip the opener *) in
  while !i < n && (body.[!i] = ' ' || body.[!i] = '\t' || body.[!i] = '\n') do
    incr i
  done;
  !i + String.length directive <= n && String.sub body !i (String.length directive) = directive

(* Comment spans, with nesting, tracking line numbers.  Strings are not
   skipped: a string literal containing "(*" is vanishingly rare outside
   this library itself, and this library spells the marker split so it
   cannot self-match. *)
let comment_spans src =
  let n = String.length src in
  let spans = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    if src.[!i] = '\n' then begin
      incr line;
      incr i
    end
    else if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let start = !i in
      let depth = ref 1 in
      i := !i + 2;
      while !i < n && !depth > 0 do
        if src.[!i] = '\n' then incr line;
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          i := !i + 2
        end
        else incr i
      done;
      spans := (start_line, !line, String.sub src start (!i - start)) :: !spans
    end
    else incr i
  done;
  List.rev !spans

let is_id_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false

(* Parse "allow p1, p2 -- reason" out of a directive comment.  Returns
   [Error msg] for a malformed directive. *)
let parse_directive body =
  if not (is_directive body) then Ok None
  else
    match
      let idx = ref (-1) in
      String.iteri
        (fun i _ ->
          if
            !idx < 0
            && i + String.length directive <= String.length body
            && String.sub body i (String.length directive) = directive
          then idx := i)
        body;
      !idx
    with
    | -1 -> Ok None
    | at -> (
      let rest = String.sub body (at + String.length directive) (String.length body - at - String.length directive) in
      (* strip the trailing comment closer *)
      let rest =
        match String.index_opt rest '*' with
        | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' -> String.sub rest 0 j
        | _ -> rest
      in
      let rest = String.trim rest in
      let allow = "allow" in
      if not (String.length rest >= String.length allow && String.sub rest 0 (String.length allow) = allow)
      then Error "expected `allow` after `tslint:`"
      else
        let rest = String.trim (String.sub rest (String.length allow) (String.length rest - String.length allow)) in
        match
          let sep = ref None in
          String.iteri
            (fun i c -> if !sep = None && c = '-' && i + 1 < String.length rest && rest.[i + 1] = '-' then sep := Some i)
            rest;
          !sep
        with
        | None -> Error "missing `-- <reason>` (a waiver must say why)"
        | Some sep ->
            let ids = String.sub rest 0 sep in
            let reason = String.trim (String.sub rest (sep + 2) (String.length rest - sep - 2)) in
            let passes =
              String.split_on_char ',' ids |> List.map String.trim
              |> List.filter (fun s -> s <> "")
            in
            if passes = [] then Error "no pass ids before `--`"
            else if List.exists (fun p -> not (String.for_all is_id_char p)) passes then
              Error "pass ids must be [a-z0-9_-]"
            else if reason = "" then Error "empty reason after `--`"
            else Ok (Some (passes, reason)))

(* Scan a file's source.  Returns the waivers plus a malformed-directive
   warning list (pass id "waiver"). *)
let scan ~file src =
  List.fold_left
    (fun (ws, diags) (start_line, end_line, body) ->
      match parse_directive body with
      | Ok None -> (ws, diags)
      | Ok (Some (passes, reason)) ->
          ({ start_line; end_line; passes; reason; used = false } :: ws, diags)
      | Error msg ->
          ( ws,
            Diagnostic.make ~pass:"waiver" ~severity:Diagnostic.Warning ~file ~line:start_line
              ~col:0
              (Printf.sprintf "malformed tslint comment: %s" msg)
            :: diags ))
    ([], []) (comment_spans src)
  |> fun (ws, diags) -> (List.rev ws, List.rev diags)

(* The waiver, if any, covering a diagnostic of [pass] at [line].  Marks
   it used as a side effect.  A waiver ON the diagnostic's own line wins
   over a previous line's spillover coverage — otherwise two trailing
   waivers on adjacent lines leave the second one reported unused. *)
let covers ws ~pass ~line =
  let on_line w = List.mem pass w.passes && line >= w.start_line && line <= w.end_line in
  let spill w = List.mem pass w.passes && line = w.end_line + 1 in
  match
    match List.find_opt on_line ws with
    | Some _ as w -> w
    | None -> List.find_opt spill ws
  with
  | Some w ->
      w.used <- true;
      true
  | None -> false

(* Unused-waiver warnings, restricted to waivers whose every pass was in
   the run set — running a single pass must not flag the others' waivers. *)
let unused ws ~file ~ran =
  List.filter_map
    (fun w ->
      if w.used || not (List.for_all (fun p -> List.mem p ran) w.passes) then None
      else
        Some
          (Diagnostic.make ~pass:"waiver" ~severity:Diagnostic.Warning ~file ~line:w.start_line
             ~col:0
             (Printf.sprintf "unused waiver for %s (%s) — remove it or the violation moved"
                (String.concat ", " w.passes) w.reason)))
    ws
