(* Pass "facade": everything outside the backend directories reaches
   the execution layer exclusively through [Ts_rt].

   Naming the simulator ([Ts_sim.*]) or a domain primitive ([Atomic],
   [Mutex], [Thread], [Domain]) bypasses the installed ops table: the
   code stops being backend-portable AND the operation becomes invisible
   to the [Ts_analyze] decorator — an unobserved access can neither race
   nor order anything.

   This is the AST rewrite of the original textual grep, which looked
   for the literal tokens "Atomic." etc. and was silently defeated by
   any of:

     module A = Atomic        (* alias: "A.make" has no token *)
     open Atomic              (* open: bare "make" has no token *)
     let module M = Mutex in  (* local binding *)

   Here the forbidden name is found wherever a module path mentions it —
   value identifiers, type constructors, module expressions, opens,
   functor arguments — so the alias itself is flagged at its binding
   and there is nothing left to smuggle.  Comments and strings never
   reach the parsetree, so documentation stays free. *)

open Parsetree

let forbidden =
  [
    ("Ts_sim", "simulator internals; use the Ts_rt facade");
    ("Atomic", "backend primitive; route shared state through Ts_rt ops");
    ("Mutex", "backend primitive; use Ts_rt.critical or lib/sync locks");
    ("Thread", "backend primitive; spawn through Ts_rt");
    ("Domain", "backend primitive; spawn through Ts_rt");
  ]

(* Components of a path that sit in module position: all of them for a
   module expression or open, all but the last for a value/type path
   ([Foo.Atomic.x] names the module [Atomic]; [My_atomic.x] does not). *)
let check ~pass ctx acc (loc : Location.t) ~module_pos lid =
  let comps = Ast_util.flatten lid in
  let module_comps =
    if module_pos then comps
    else match List.rev comps with [] -> [] | _ :: rev_init -> List.rev rev_init
  in
  List.iter
    (fun c ->
      match List.assoc_opt c forbidden with
      | Some why -> acc := Pass.err ~pass ctx loc "forbidden reference %S — %s" c why :: !acc
      | None -> ())
    module_comps

let pass_id = "facade"

let scan_structure ctx str =
  let acc = ref [] in
  let chk = check ~pass:pass_id ctx acc in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> chk loc ~module_pos:false txt
          | Pexp_new { txt; loc } -> chk loc ~module_pos:false txt
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _) | Ptyp_class ({ txt; loc }, _) ->
              chk loc ~module_pos:false txt
          | _ -> ());
          Ast_iterator.default_iterator.typ self t);
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; loc }, _) -> chk loc ~module_pos:false txt
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
      module_expr =
        (fun self m ->
          (match m.pmod_desc with
          | Pmod_ident { txt; loc } -> chk loc ~module_pos:true txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr self m);
      module_type =
        (fun self mt ->
          (match mt.pmty_desc with
          | Pmty_ident { txt; loc } | Pmty_alias { txt; loc } -> chk loc ~module_pos:true txt
          | _ -> ());
          Ast_iterator.default_iterator.module_type self mt);
    }
  in
  it.structure it str;
  List.rev !acc

let scan_signature ctx sg =
  let acc = ref [] in
  let chk = check ~pass:pass_id ctx acc in
  let it =
    {
      Ast_iterator.default_iterator with
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _) | Ptyp_class ({ txt; loc }, _) ->
              chk loc ~module_pos:false txt
          | _ -> ());
          Ast_iterator.default_iterator.typ self t);
      open_description =
        (fun self od ->
          chk od.popen_expr.loc ~module_pos:true od.popen_expr.txt;
          Ast_iterator.default_iterator.open_description self od);
      module_type =
        (fun self mt ->
          (match mt.pmty_desc with
          | Pmty_ident { txt; loc } | Pmty_alias { txt; loc } -> chk loc ~module_pos:true txt
          | _ -> ());
          Ast_iterator.default_iterator.module_type self mt);
      module_declaration =
        (fun self md ->
          Ast_iterator.default_iterator.module_declaration self md);
    }
  in
  it.signature it sg;
  List.rev !acc

let pass =
  {
    Pass.id = pass_id;
    doc = "shared state must flow through the Ts_rt facade (catches aliases and opens)";
    impl = Some (fun ctx str -> if Pass.is_backend ctx then [] else scan_structure ctx str);
    intf = Some (fun ctx sg -> if Pass.is_backend ctx then [] else scan_signature ctx sg);
  }
