(* Pass "critical": discipline inside [Ts_rt.critical] brackets.

   On the simulator a critical section is scheduling-atomic; on the
   native backend it is one global non-reentrant mutex.  Both make the
   same demands of the body:

   - no [spawn]/[join]: joining inside the section deadlocks against a
     child that needs the section to finish its ops; spawning makes the
     child observable mid-section, which the analyzer's single critical
     chain cannot order;
   - no [poll]/[sleep]/[op_sleep]: signal delivery happens at polls, and
     a handler that re-enters the section self-deadlocks natively;
   - no [while]/[for] polling loops: a loop waiting on another thread's
     write can never be satisfied — the writer needs the section (or the
     simulator never schedules it);
   - no nested [critical]: the native mutex is non-reentrant, so the
     second enter is a self-deadlock.  This includes calling an in-file
     function whose body enters [critical] (one level of indirection —
     deeper chains are the dynamic checker's job);
   - the body must be a literal [fun () -> ...]: passing a pre-built
     closure makes the bracket's extent non-syntactic — the static
     analogue of unbalanced enter/exit, and this pass's other checks
     cannot see into it. *)

open Parsetree

let pass_id = "critical"

(* Heads under which [X.critical f] is the facade bracket: Ts_rt itself
   plus any in-file alias (module Runtime = Ts_rt), plus a record field
   access [o.critical] — the raw ops record in decorator code. *)
let is_critical_callee aliases f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Ast_util.flatten txt with
      | [ m; "critical" ] -> List.mem m aliases
      | _ -> false)
  | Pexp_field (_, { txt; _ }) -> Ast_util.last txt = Some "critical"
  | _ -> false

let forbidden_calls = [ "spawn"; "join"; "poll"; "sleep"; "op_sleep" ]

(* Is this application a facade call named [n]?  Qualified through an
   alias head, or a field access on an ops record. *)
let facade_call aliases n f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Ast_util.flatten txt with [ m; x ] -> x = n && List.mem m aliases | _ -> false)
  | Pexp_field (_, { txt; _ }) -> Ast_util.last txt = Some n
  | _ -> false

let scan ctx str =
  let acc = ref [] in
  let aliases = Ast_util.module_aliases str ~target:[ "Ts_rt" ] in
  (* in-file functions whose body directly enters critical *)
  let bodies = Ast_util.function_bodies str in
  let enters_critical name =
    match Hashtbl.find_opt bodies name with
    | None -> false
    | Some body ->
        let found = ref false in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_apply (f, _) when is_critical_callee aliases f -> found := true
                | _ -> ());
                Ast_iterator.default_iterator.expr self e);
          }
        in
        it.expr it body;
        !found
  in
  (* Check one critical body. *)
  let check_body body =
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_apply (f, _) when is_critical_callee aliases f ->
                acc :=
                  Pass.err ~pass:pass_id ctx e.pexp_loc
                    "nested Ts_rt.critical — self-deadlock on the native backend's \
                     non-reentrant mutex"
                  :: !acc
            | Pexp_apply (f, _)
              when List.exists (fun n -> facade_call aliases n f) forbidden_calls ->
                let n = Option.value ~default:"?" (Ast_util.callee_last f) in
                acc :=
                  Pass.err ~pass:pass_id ctx e.pexp_loc
                    "%s inside a critical section — the bracket must stay short, \
                     non-blocking and signal-free"
                    n
                  :: !acc
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident n; _ }; _ }, _)
              when enters_critical n ->
                acc :=
                  Pass.err ~pass:pass_id ctx e.pexp_loc
                    "call to %s, which enters Ts_rt.critical — nested section \
                     self-deadlocks on the native backend"
                    n
                  :: !acc
            | Pexp_while (_, _) ->
                acc :=
                  Pass.err ~pass:pass_id ctx e.pexp_loc
                    "polling loop inside a critical section — a wait on another \
                     thread's write can never be satisfied here"
                  :: !acc
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.expr it body
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) when is_critical_callee aliases f -> (
              match Ast_util.first_positional args with
              | Some { pexp_desc = Pexp_fun (_, _, _, body); _ } -> check_body body
              | Some arg ->
                  acc :=
                    Pass.err ~pass:pass_id ctx arg.pexp_loc
                      "critical section body is not a literal fun — its extent is \
                       non-syntactic (the static analogue of unbalanced enter/exit) \
                       and cannot be checked"
                    :: !acc
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.rev !acc

let pass =
  {
    Pass.id = pass_id;
    doc = "Ts_rt.critical bodies: no spawn/join/poll/sleep, no polling loops, no nesting";
    impl = Some (fun ctx str -> if Pass.is_backend ctx then [] else scan ctx str);
    intf = None;
  }
