(* Pass "retire": the static sibling of the dynamic retire-before-unlink
   sanitizer (docs/ANALYSIS.md).

   [Smr.retire p] hands a node to the reclamation scheme; the contract
   (lib/smr/smr.mli) is that [p] was already unlinked — no live path
   from a structure root reaches it.  The dynamic sanitizer catches a
   violation when a schedule happens to expose it; this pass catches the
   *shape* at compile time: a retire call with no unlink evidence
   anywhere on the straight-line path that reaches it.

   Unlink evidence for [retire v] is a facade [write]/[cas] whose
   TARGET does not mention [v]: unlinking stores the successor into the
   predecessor's cell ([cas prev_cell v succ], [write (pred + off) n]),
   so the target is some other node's field.  A [cas (next_cell v) ...]
   is the logical-delete mark on [v] itself — precisely the state the
   retire-before-unlink bug retires in — and therefore does not count.

   "Path that reaches it" is syntactic evaluation order within the
   enclosing function (the issue's "same function" scope): preceding
   elements of a sequence, the bound expressions of enclosing [let]s,
   the scrutinee of enclosing [match]es, and — success evidence — the
   condition of an [if] when the retire sits in the THEN branch.  A
   [fun] boundary resets the context.  The heuristic is deliberately
   per-function: helper-retire protocols that separate unlink and
   retire across functions get a waiver naming the protocol. *)

open Parsetree

let pass_id = "retire"

let is_retire_callee f =
  match f.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> Ast_util.last txt = Some "retire"
  | _ -> false

let is_unlink_op f =
  match Ast_util.callee_last f with Some ("cas" | "write") -> true | _ -> false

let scan ctx str =
  let acc = ref [] in
  (* evidence search inside one expression subtree *)
  let subtree_evidence vars e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self x ->
            (match x.pexp_desc with
            | Pexp_apply (f, args) when is_unlink_op f -> (
                match Ast_util.first_positional args with
                | Some target ->
                    if not (List.exists (fun v -> Ast_util.mentions_ident v target) vars)
                    then found := true
                | None -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self x);
      }
    in
    it.expr it e;
    !found
  in
  (* Walk with [params] — the enclosing function's own parameters — and
     [env], the expressions already evaluated on the path to the current
     point within that function. *)
  let rec visit params env e =
    let continue_children () =
      (* default: children see the same environment *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _self child -> visit params env child);
        }
      in
      (* iterate only the immediate structure of [e] *)
      Ast_iterator.default_iterator.expr it e
    in
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        visit params env a;
        visit params (a :: env) b
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> visit params env vb.pvb_expr) vbs;
        visit params (List.map (fun vb -> vb.pvb_expr) vbs @ env) body
    | Pexp_ifthenelse (c, t, f) ->
        visit params env c;
        visit params (c :: env) t;
        Option.iter (visit params env) f
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        visit params env scrut;
        List.iter
          (fun case ->
            Option.iter (visit params (scrut :: env)) case.pc_guard;
            visit params (scrut :: env) case.pc_rhs)
          cases
    | Pexp_while (c, body) ->
        visit params env c;
        visit params (c :: env) body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (visit params env) default;
        (* new function: the unlink must happen in THIS function, so the
           evaluated-path environment resets.  Parameters ACCUMULATE
           across enclosing functions: a retire of a bare parameter is a
           forwarder (a decorator or scheme wrapper re-emitting its
           caller's node) — the unlink obligation sits with the caller
           that obtained the node, and the dynamic sanitizer checks it
           there.  Let-bound traversal variables are never parameters,
           so real retire-before-unlink shapes still surface. *)
        visit (Ast_util.pattern_vars pat @ params) [] body
    | Pexp_function cases ->
        List.iter
          (fun case ->
            let params = Ast_util.pattern_vars case.pc_lhs @ params in
            Option.iter (visit params []) case.pc_guard;
            visit params [] case.pc_rhs)
          cases
    | Pexp_apply (f, args) when is_retire_callee f ->
        (match Ast_util.first_positional args with
        | Some arg -> (
            match Ast_util.idents_of arg with
            | [] -> ()  (* not reducible to variables; nothing to check *)
            | vars ->
                let forwarded = List.for_all (fun v -> List.mem v params) vars in
                if (not forwarded) && not (List.exists (subtree_evidence vars) env) then
                  acc :=
                    Pass.err ~pass:pass_id ctx e.pexp_loc
                      "retire of %s with no unlink evidence on the path: no preceding \
                       write/cas targets another cell — the node may still be reachable \
                       from the structure (retire-before-unlink)"
                      (String.concat "/" vars)
                    :: !acc)
        | None -> ());
        List.iter (fun (_, a) -> visit params env a) args;
        visit params env f
    | _ -> continue_children ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _self e -> visit [] [] e);
      (* value bindings at structure level start an empty path *)
    }
  in
  it.structure it str;
  List.rev !acc

let pass =
  {
    Pass.id = pass_id;
    doc = "Smr.retire must be dominated by an unlink write/cas in the same function";
    impl = Some (fun ctx str -> if Pass.is_backend ctx then [] else scan ctx str);
    intf = None;
  }
