(** Cycle prices for simulated operations.

    The simulator measures throughput in virtual cycles; the relative shape
    of the paper's results (who wins and by how much) is produced by the
    asymmetries encoded here: fences and CAS are an order of magnitude more
    expensive than plain reads, signals cost thousands of cycles but are
    rare, context switches are the dominant cost under oversubscription.
    The defaults loosely follow published x86 latencies (a cycle here is one
    CPU cycle at the paper's 2.4 GHz). *)

type t = {
  local_op : int;  (** private stack/register access or register-file step *)
  shared_read : int;
      (** heap word read — priced as a hit/miss mix, not an L1 hit *)
  shared_write : int;  (** heap word write *)
  cas : int;  (** compare-and-swap, includes full fence *)
  faa : int;  (** fetch-and-add, includes full fence *)
  fence : int;  (** standalone memory fence (mfence) *)
  malloc : int;  (** lump cost of an allocator call *)
  free : int;
  yield : int;  (** sched_yield-style voluntary step *)
  signal_send : int;  (** pthread_kill on the sender side *)
  signal_dispatch : int;  (** kernel dispatch into the handler, receiver side *)
  signal_return : int;  (** sigreturn back to interrupted code *)
  context_switch : int;  (** descheduling one thread, scheduling another *)
  spawn : int;  (** thread creation *)
}

val default : t

val uniform : t
(** Everything costs one cycle — for schedule-shape unit tests where virtual
    time must be trivial to predict. *)

val pp : Format.formatter -> t -> unit
