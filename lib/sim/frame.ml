(* Shadow-stack frames.  The implementation lives in {!Ts_rt.Frame}
   (it is backend-neutral: every operation goes through the installed
   backend); this alias keeps the historical [Ts_sim.Frame] path
   working. *)

include Ts_rt.Frame
