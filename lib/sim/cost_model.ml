(* Cycle prices for simulated operations.  The definition lives in
   {!Ts_rt.Cost_model} so both backends share one price list (the native
   backend uses it to advance per-thread virtual clocks); this alias
   keeps the historical [Ts_sim.Cost_model] path working. *)

include Ts_rt.Cost_model
