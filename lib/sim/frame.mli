(** Shadow-stack frames.

    In C, a traversal's local pointers live in the stack frame and are what
    ThreadScan's handler scans.  Simulated code gets the same property by
    keeping every node reference it holds in a frame slot: [Frame.set]
    stores into the thread's shadow stack in unmanaged memory, where a
    conservative scan (and ThreadScan's TS-Scan) can see it.

    Discipline for data-structure code: a pointer loaded from the heap must
    be written to a frame slot (or be dead) within a few operations — in the
    interim it is covered by the register file, into which the simulator
    mirrors every load result (see {!Runtime}). *)

type t

val push : int -> t
(** [push n] allocates a frame of [n] zeroed slots on the calling thread's
    shadow stack. *)

val pop : t -> unit
(** Frames must be popped in LIFO order. *)

val with_frame : int -> (t -> 'a) -> 'a
(** [with_frame n f] pushes, runs [f], and pops even on exception. *)

val get : t -> int -> int

val set : t -> int -> int -> unit

val size : t -> int

val base : t -> int
(** Base address of the frame in unmanaged memory (useful in tests). *)
