module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Ptr = Ts_umem.Ptr
module Splitmix = Ts_util.Splitmix

type tid = int

exception Deadlock of string
exception Step_limit_exceeded
exception Thread_failure of tid * exn
exception Sim_error of string

type sched =
  | Timed
  | Uniform
  | Pct of { change_points : int; expected_steps : int }

type config = {
  cost : Cost_model.t;
  cores : int;
  quantum : int;
  seed : int;
  stack_words : int;
  reg_words : int;
  mem_capacity : int;
  strict_mem : bool;
  sanitize : bool;
  max_steps : int;
  propagate_failures : bool;
  trace : (Trace.entry -> unit) option;
  sched : sched;
}

let default_config =
  {
    cost = Cost_model.default;
    cores = 0;
    quantum = 50_000;
    seed = 0x5EED;
    stack_words = 256;
    reg_words = 32;
    mem_capacity = 1 lsl 26;
    strict_mem = true;
    sanitize = false;
    max_steps = 1 lsl 32;
    propagate_failures = true;
    trace = None;
    sched = Timed;
  }

type stats = {
  mutable steps : int;
  mutable reads : int;
  mutable writes : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable fences : int;
  mutable mallocs : int;
  mutable frees : int;
  mutable yields : int;
  mutable signals_sent : int;
  mutable signals_delivered : int;
  mutable ctx_switches : int;
  mutable spawns : int;
  mutable crashes : int;
  mutable stalls : int;
  mutable signals_dropped : int;
}

let make_stats () =
  {
    steps = 0;
    reads = 0;
    writes = 0;
    cas_ops = 0;
    cas_failures = 0;
    fences = 0;
    mallocs = 0;
    frees = 0;
    yields = 0;
    signals_sent = 0;
    signals_delivered = 0;
    ctx_switches = 0;
    spawns = 0;
    crashes = 0;
    stalls = 0;
    signals_dropped = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "steps=%d reads=%d writes=%d cas=%d(-%d) fences=%d malloc=%d free=%d yields=%d sig=%d/%d \
     switches=%d spawns=%d"
    s.steps s.reads s.writes s.cas_ops s.cas_failures s.fences s.mallocs s.frees s.yields
    s.signals_sent s.signals_delivered s.ctx_switches s.spawns;
  if s.crashes + s.stalls + s.signals_dropped > 0 then
    Fmt.pf ppf " crashes=%d stalls=%d sigdrops=%d" s.crashes s.stalls s.signals_dropped

type result = {
  elapsed : int;
  run_stats : stats;
  failures : (tid * exn) list;
  abandoned : tid list;
}

type status = Ready | Done

type thread = {
  tid : int;
  mutable clock : int;
  mutable status : status;
  mutable resume : (unit -> unit) option;
  mutable saved : (unit -> unit) list; (* fibers interrupted by signal handlers *)
  mutable on_core : bool;
  mutable heap_pos : int; (* index in the active heap, -1 when off-core *)
  mutable core_since : int;
  mutable ever_scheduled : bool;
  mutable boosted : bool;
  mutable wants_yield : bool;
  stack_base : int;
  stack_words : int;
  mutable sp : int; (* next free stack slot (absolute address) *)
  reg_base : int;
  reg_words : int;
  manual_save_base : int; (* explicit save_regs snapshot *)
  mutable sig_saves : int list; (* per-nesting-level saved contexts, top first *)
  mutable save_pool : int list; (* recycled save regions *)
  mutable reg_cursor : int;
  mutable handler : (unit -> unit) option;
  pending : int Queue.t;
  mutable sig_depth : int;
  mutable failure : exn option;
  rng : Splitmix.t;
  mutable private_ranges : (int * int) list;
  mutable prio : int; (* PCT priority; higher steps first *)
  mutable stalled_until : int; (* -1 not stalled; max_int forever *)
  mutable crashed : bool;
  mutable drop_sigs : int; (* fault injection: drop the next n signals *)
  mutable sig_delay : int; (* fault injection: delay delivery by n cycles *)
  mutable wait_note : string option; (* what the thread is blocked on *)
}

type t = {
  cfg : config;
  mem : Mem.t;
  alloc : Alloc.t;
  mutable threads : thread array; (* index = tid; dummy slots beyond nthreads *)
  mutable nthreads : int;
  mutable ready_front : thread list;
  mutable ready_back : thread list;
  (* Active threads as a binary min-heap on (clock, tid): the scheduler
     steps the minimum on every iteration, so this is the hot structure. *)
  mutable heap : thread array;
  mutable nactive : int;
  mutable live : int;
  mutable now : int;
  mutable want_preempt : bool;
  mutable started : bool;
  sim_stats : stats;
  rng : Splitmix.t;
  mutable pct_points : int list; (* remaining change points, ascending *)
  mutable floor_prio : int; (* every demotion goes strictly below this *)
  mutable sched_steps : int; (* steps counted for PCT change points *)
  mutable current : int; (* tid being stepped, -1 outside [step] *)
  mutable stalled : thread list; (* descheduled by fault injection *)
}

(* ------------------------------------------------------------------ *)
(* Effects                                                            *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | E_read : int -> int Effect.t
  | E_write : (int * int) -> unit Effect.t
  | E_cas : (int * int * int) -> bool Effect.t
  | E_faa : (int * int) -> int Effect.t
  | E_fence : unit Effect.t
  | E_malloc : int -> int Effect.t
  | E_free : int -> unit Effect.t
  | E_region : int -> int Effect.t
  | E_yield : unit Effect.t
  | E_advance : int -> unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_rand : int -> int Effect.t
  | E_spawn : (unit -> unit) -> int Effect.t
  | E_join : int -> unit Effect.t
  | E_is_done : int -> bool Effect.t
  | E_signal : int -> unit Effect.t
  | E_set_handler : (unit -> unit) -> unit Effect.t
  | E_sig_depth : int Effect.t
  | E_push_frame : int -> int Effect.t
  | E_pop_frame : int -> unit Effect.t
  | E_stack_range : (int * int) Effect.t
  | E_reg_range : (int * int) Effect.t
  | E_save_regs : unit Effect.t
  | E_saved_reg_range : (int * int) Effect.t
  | E_clear_regs : unit Effect.t
  | E_add_range : (int * int) -> unit Effect.t
  | E_remove_range : (int * int) -> unit Effect.t
  | E_ranges : (int * int) list Effect.t
  | E_ranges_of : int -> (int * int) list Effect.t
  | E_steps : int Effect.t
  | E_crash : int -> unit Effect.t
  | E_stall : (int * int option) -> unit Effect.t
  | E_drop_signals : (int * int) -> unit Effect.t
  | E_delay_signals : (int * int) -> unit Effect.t
  | E_wait_note : string option -> unit Effect.t
  | E_note : string -> unit Effect.t
  | E_is_crashed : int -> bool Effect.t
  | E_is_stalled : int -> bool Effect.t
  | E_clock_of : int -> int Effect.t

(* ------------------------------------------------------------------ *)
(* Ready queue (FIFO with push-front for boosted threads)             *)
(* ------------------------------------------------------------------ *)

let ready_push rt th = rt.ready_back <- th :: rt.ready_back

let ready_push_front rt th = rt.ready_front <- th :: rt.ready_front

let rec ready_pop rt =
  match rt.ready_front with
  | th :: tl ->
      rt.ready_front <- tl;
      Some th
  | [] -> (
      match rt.ready_back with
      | [] -> None
      | l ->
          rt.ready_front <- List.rev l;
          rt.ready_back <- [];
          ready_pop rt)

let ready_nonempty rt = rt.ready_front <> [] || rt.ready_back <> []

let ready_remove rt th =
  let not_th x = x != th in
  rt.ready_front <- List.filter not_th rt.ready_front;
  rt.ready_back <- List.filter not_th rt.ready_back

(* ------------------------------------------------------------------ *)
(* Thread bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let charge th c = th.clock <- th.clock + c

let emit rt th event =
  match rt.cfg.trace with
  | None -> ()
  | Some f -> f { Trace.time = th.clock; event }

let unlimited rt = rt.cfg.cores <= 0

(* ---- active-set heap (min on (clock, tid)) ---- *)

let th_less a b = a.clock < b.clock || (a.clock = b.clock && a.tid < b.tid)

let heap_swap rt i j =
  let a = rt.heap.(i) and b = rt.heap.(j) in
  rt.heap.(i) <- b;
  rt.heap.(j) <- a;
  a.heap_pos <- j;
  b.heap_pos <- i

let rec sift_up rt i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if th_less rt.heap.(i) rt.heap.(p) then begin
      heap_swap rt i p;
      sift_up rt p
    end
  end

let rec sift_down rt i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < rt.nactive && th_less rt.heap.(l) rt.heap.(!m) then m := l;
  if r < rt.nactive && th_less rt.heap.(r) rt.heap.(!m) then m := r;
  if !m <> i then begin
    heap_swap rt i !m;
    sift_down rt !m
  end

let heap_push rt th =
  if rt.nactive = Array.length rt.heap then begin
    let bigger = Array.make (max 8 (2 * Array.length rt.heap)) th in
    Array.blit rt.heap 0 bigger 0 rt.nactive;
    rt.heap <- bigger
  end;
  rt.heap.(rt.nactive) <- th;
  th.heap_pos <- rt.nactive;
  rt.nactive <- rt.nactive + 1;
  sift_up rt (rt.nactive - 1)

let heap_remove rt th =
  let i = th.heap_pos in
  rt.nactive <- rt.nactive - 1;
  let last = rt.heap.(rt.nactive) in
  if i < rt.nactive then begin
    rt.heap.(i) <- last;
    last.heap_pos <- i;
    sift_down rt i;
    sift_up rt i
  end;
  th.heap_pos <- -1

let remove_active rt th =
  if th.on_core then begin
    th.on_core <- false;
    heap_remove rt th
  end

let thread_finished rt th =
  th.status <- Done;
  th.saved <- [];
  th.resume <- None;
  rt.live <- rt.live - 1;
  remove_active rt th;
  emit rt th (Trace.Thread_finished { tid = th.tid })

let thread_fail rt th e =
  th.failure <- Some e;
  thread_finished rt th

let copy_regs rt ~src ~dst n =
  for i = 0 to n - 1 do
    Mem.raw_write rt.mem (dst + i) (Mem.raw_read rt.mem (src + i))
  done

(* Called when the currently-running fiber of [th] returns normally. *)
let fiber_done rt th =
  match th.saved with
  | [] -> thread_finished rt th
  | f :: tl ->
      th.saved <- tl;
      th.sig_depth <- th.sig_depth - 1;
      charge th rt.cfg.cost.signal_return;
      (* sigreturn: restore the interrupted register context, undoing the
         handler's own register traffic. *)
      (match th.sig_saves with
      | save :: rest ->
          copy_regs rt ~src:save ~dst:th.reg_base th.reg_words;
          th.sig_saves <- rest;
          th.save_pool <- save :: th.save_pool
      | [] -> ());
      emit rt th (Trace.Signal_returned { tid = th.tid });
      th.resume <- Some f

(* ------------------------------------------------------------------ *)
(* Memory operations (executed at effect-perform time)                *)
(* ------------------------------------------------------------------ *)

let is_private th addr =
  (addr >= th.stack_base && addr < th.stack_base + th.stack_words)
  || (addr >= th.reg_base && addr < th.reg_base + th.reg_words)

let mirror_into_regs rt th v =
  th.reg_cursor <- (th.reg_cursor + 1) mod th.reg_words;
  Mem.raw_write rt.mem (th.reg_base + th.reg_cursor) v

let do_read rt th addr =
  rt.sim_stats.reads <- rt.sim_stats.reads + 1;
  charge th (if is_private th addr then rt.cfg.cost.local_op else rt.cfg.cost.shared_read);
  let v = Mem.read rt.mem addr in
  mirror_into_regs rt th v;
  v

let do_write rt th addr v =
  rt.sim_stats.writes <- rt.sim_stats.writes + 1;
  charge th (if is_private th addr then rt.cfg.cost.local_op else rt.cfg.cost.shared_write);
  Mem.write rt.mem addr v

let do_cas rt th addr expected desired =
  rt.sim_stats.cas_ops <- rt.sim_stats.cas_ops + 1;
  charge th rt.cfg.cost.cas;
  let v = Mem.read rt.mem addr in
  if v = expected then begin
    Mem.write rt.mem addr desired;
    true
  end
  else begin
    rt.sim_stats.cas_failures <- rt.sim_stats.cas_failures + 1;
    mirror_into_regs rt th v;
    false
  end

let do_faa rt th addr delta =
  charge th rt.cfg.cost.faa;
  let v = Mem.read rt.mem addr in
  Mem.write rt.mem addr (v + delta);
  mirror_into_regs rt th v;
  v

(* ------------------------------------------------------------------ *)
(* Fibers                                                             *)
(* ------------------------------------------------------------------ *)

let ranges_of_thread th =
  (* stack, live registers, the manual snapshot, every signal-time saved
     context, and registered private ranges: everything a value the thread
     held at its last instant could live in.  Conservative supersets are
     safe; a proxy scan of a stalled/crashed thread must not miss a pointer
     parked in a saved context. *)
  (th.stack_base, th.sp - th.stack_base)
  :: (th.reg_base, th.reg_words)
  :: (th.manual_save_base, th.reg_words)
  :: (List.map (fun s -> (s, th.reg_words)) th.sig_saves @ th.private_ranges)
  |> List.filter (fun (_, len) -> len > 0)

let get_thread rt tid =
  if tid < 0 || tid >= rt.nthreads then raise (Sim_error "unknown thread id");
  rt.threads.(tid)

let thread_done rt tid = (get_thread rt tid).status = Done

let is_stalled th = th.stalled_until >= 0

let do_signal rt sender target_tid =
  let target = get_thread rt target_tid in
  rt.sim_stats.signals_sent <- rt.sim_stats.signals_sent + 1;
  charge sender rt.cfg.cost.signal_send;
  emit rt sender (Trace.Signal_sent { sender = sender.tid; target = target_tid });
  if target.status <> Done then begin
    if target.drop_sigs > 0 then begin
      target.drop_sigs <- target.drop_sigs - 1;
      rt.sim_stats.signals_dropped <- rt.sim_stats.signals_dropped + 1;
      emit rt sender (Trace.Signal_dropped { sender = sender.tid; target = target_tid })
    end
    else begin
      (* queue entries hold the earliest virtual time delivery may happen;
         0 = immediately (the normal, undelayed case) *)
      let deliver_at =
        if target.sig_delay > 0 then max sender.clock target.clock + target.sig_delay else 0
      in
      Queue.push deliver_at target.pending;
      if (not target.on_core) && (not target.boosted) && not (is_stalled target) then begin
        (* The kernel makes a freshly-signaled thread runnable promptly:
           move it to the head of the ready queue and request a preemption.
           A stalled thread stays descheduled; the signal pends until it
           wakes. *)
        target.boosted <- true;
        ready_remove rt target;
        ready_push_front rt target;
        rt.want_preempt <- true
      end
    end
  end

(* ---- non-preemptible critical sections ----

   [Ts_rt.critical] must make its body scheduling-atomic: a decorator
   (the happens-before analyzer) delegates a memory effect and then
   updates its own bookkeeping inside one [critical] body, and no other
   fiber may observe the memory mutation before the bookkeeping lands.
   Mutual exclusion alone is free here (one fiber runs at a time), but
   every effect is a scheduling point, so [critical] additionally pins
   its owner: while a section is open the scheduler keeps resuming the
   owning fiber.

   The refs are module-level because the [Ts_rt.ops] record is static;
   exactly one simulator instance runs at a time (enforced by
   [Ts_rt.install]), and [create] resets them.  When no critical body
   performs an effect — true of every in-tree caller except the
   analyzer — the scheduler never observes a nonzero depth and
   schedules are bit-for-bit what they were. *)

let crit_depth = ref 0
let crit_tid = ref (-1) (* owner while depth > 0 *)
let cur_tid = ref (-1) (* tid of the fiber inside [step] *)

(* ---- fault injection ---- *)

let do_crash rt reporter target_tid =
  let target = get_thread rt target_tid in
  if target.status <> Done then begin
    rt.sim_stats.crashes <- rt.sim_stats.crashes + 1;
    target.crashed <- true;
    Queue.clear target.pending;
    ready_remove rt target;
    rt.stalled <- List.filter (fun th -> th != target) rt.stalled;
    target.stalled_until <- -1;
    (* The fiber is abandoned, not unwound: a crashed thread's shadow stack
       and register file keep their last contents, exactly like a real
       thread that died at an arbitrary instruction. *)
    target.status <- Done;
    target.saved <- [];
    target.resume <- None;
    rt.live <- rt.live - 1;
    remove_active rt target;
    (* the fiber is abandoned mid-flight: any critical section it held
       would otherwise stay open forever *)
    if !crit_tid = target_tid then begin
      crit_depth := 0;
      crit_tid := -1
    end;
    emit rt reporter (Trace.Crashed { tid = target_tid })
  end

let do_stall rt reporter target_tid cycles =
  let target = get_thread rt target_tid in
  if target.status <> Done && not (is_stalled target) then begin
    rt.sim_stats.stalls <- rt.sim_stats.stalls + 1;
    let until =
      match cycles with None -> max_int | Some c -> max rt.now target.clock + max c 0
    in
    target.stalled_until <- until;
    target.boosted <- false;
    ready_remove rt target;
    remove_active rt target;
    rt.stalled <- target :: rt.stalled;
    emit rt reporter
      (Trace.Stalled
         { tid = target_tid; until = (if until = max_int then None else Some until) })
  end

let wake_stalled rt =
  if rt.stalled <> [] then begin
    let woken, still = List.partition (fun th -> th.stalled_until <= rt.now) rt.stalled in
    rt.stalled <- still;
    List.iter
      (fun th ->
        th.stalled_until <- -1;
        if th.clock < rt.now then th.clock <- rt.now;
        emit rt th (Trace.Recovered { tid = th.tid });
        if Queue.is_empty th.pending then ready_push rt th else ready_push_front rt th)
      woken
  end

let describe_thread th =
  let state =
    if th.stalled_until = max_int then "stalled forever"
    else if th.stalled_until >= 0 then Fmt.str "stalled until t=%d" th.stalled_until
    else if th.on_core then "on core"
    else "ready"
  in
  let note = match th.wait_note with None -> "" | Some n -> Fmt.str " (%s)" n in
  let sigs =
    if Queue.is_empty th.pending then ""
    else Fmt.str " [%d pending signal%s]" (Queue.length th.pending)
      (if Queue.length th.pending = 1 then "" else "s")
  in
  Fmt.str "t%d %s%s%s" th.tid state note sigs

let blocked_summary rt =
  let blocked = ref [] in
  for i = rt.nthreads - 1 downto 0 do
    let th = rt.threads.(i) in
    if th.status <> Done then blocked := describe_thread th :: !blocked
  done;
  Fmt.str "%d threads alive but none runnable: %s" rt.live (String.concat "; " !blocked)

let rec make_handler : t -> thread -> (unit, unit) Effect.Deep.handler =
 fun rt th ->
  let open Effect.Deep in
  {
    retc = (fun () -> fiber_done rt th);
    exnc = (fun e -> thread_fail rt th e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        let resume_with (k : (a, unit) continuation) (v : a) =
          th.resume <- Some (fun () -> continue k v)
        in
        let guarded (k : (a, unit) continuation) (f : unit -> a) =
          match f () with
          | v -> resume_with k v
          | exception e -> th.resume <- Some (fun () -> discontinue k e)
        in
        match eff with
        | E_read addr -> Some (fun k -> guarded k (fun () -> do_read rt th addr))
        | E_write (addr, v) -> Some (fun k -> guarded k (fun () -> do_write rt th addr v))
        | E_cas (addr, e0, d) -> Some (fun k -> guarded k (fun () -> do_cas rt th addr e0 d))
        | E_faa (addr, d) -> Some (fun k -> guarded k (fun () -> do_faa rt th addr d))
        | E_fence ->
            Some
              (fun k ->
                rt.sim_stats.fences <- rt.sim_stats.fences + 1;
                charge th rt.cfg.cost.fence;
                resume_with k ())
        | E_malloc n ->
            Some
              (fun k ->
                guarded k (fun () ->
                    rt.sim_stats.mallocs <- rt.sim_stats.mallocs + 1;
                    charge th rt.cfg.cost.malloc;
                    let addr = Alloc.malloc rt.alloc ~tid:th.tid n in
                    mirror_into_regs rt th (Ptr.of_addr addr);
                    addr))
        | E_free addr ->
            Some
              (fun k ->
                guarded k (fun () ->
                    rt.sim_stats.frees <- rt.sim_stats.frees + 1;
                    charge th rt.cfg.cost.free;
                    Alloc.free rt.alloc ~tid:th.tid addr))
        | E_region n ->
            Some
              (fun k ->
                guarded k (fun () ->
                    charge th rt.cfg.cost.malloc;
                    Alloc.alloc_region rt.alloc n))
        | E_yield ->
            Some
              (fun k ->
                rt.sim_stats.yields <- rt.sim_stats.yields + 1;
                charge th rt.cfg.cost.yield;
                th.wants_yield <- true;
                resume_with k ())
        | E_advance n ->
            Some
              (fun k ->
                charge th (max n 0);
                resume_with k ())
        | E_now -> Some (fun k -> resume_with k th.clock)
        | E_self -> Some (fun k -> resume_with k th.tid)
        | E_rand n -> Some (fun k -> guarded k (fun () -> Splitmix.below th.rng n))
        | E_spawn f ->
            Some
              (fun k ->
                guarded k (fun () ->
                    charge th rt.cfg.cost.spawn;
                    let child = new_thread rt f in
                    child.clock <- th.clock;
                    ready_push rt child;
                    child.tid))
        | E_join target ->
            Some
              (fun k ->
                let rec attempt () =
                  if thread_done rt target then begin
                    th.wait_note <- None;
                    continue k ()
                  end
                  else begin
                    th.wait_note <- Some (Fmt.str "joining thread %d" target);
                    rt.sim_stats.yields <- rt.sim_stats.yields + 1;
                    charge th rt.cfg.cost.yield;
                    th.wants_yield <- true;
                    th.resume <- Some attempt
                  end
                in
                th.resume <- Some attempt)
        | E_is_done target -> Some (fun k -> resume_with k (thread_done rt target))
        | E_signal target -> Some (fun k -> guarded k (fun () -> do_signal rt th target))
        | E_set_handler f ->
            Some
              (fun k ->
                th.handler <- Some f;
                charge th rt.cfg.cost.local_op;
                resume_with k ())
        | E_sig_depth -> Some (fun k -> resume_with k th.sig_depth)
        | E_push_frame n ->
            Some
              (fun k ->
                guarded k (fun () ->
                    if n < 0 then raise (Sim_error "push_frame: negative size");
                    if th.sp + n > th.stack_base + th.stack_words then
                      raise (Sim_error "shadow stack overflow");
                    charge th rt.cfg.cost.local_op;
                    let base = th.sp in
                    th.sp <- th.sp + n;
                    for i = base to th.sp - 1 do
                      Mem.raw_write rt.mem i 0
                    done;
                    base))
        | E_pop_frame base ->
            Some
              (fun k ->
                guarded k (fun () ->
                    if base < th.stack_base || base > th.sp then
                      raise (Sim_error "pop_frame: bad frame base");
                    charge th rt.cfg.cost.local_op;
                    th.sp <- base))
        | E_stack_range -> Some (fun k -> resume_with k (th.stack_base, th.sp))
        | E_reg_range -> Some (fun k -> resume_with k (th.reg_base, th.reg_words))
        | E_save_regs ->
            Some
              (fun k ->
                charge th (th.reg_words * rt.cfg.cost.local_op);
                copy_regs rt ~src:th.reg_base ~dst:th.manual_save_base th.reg_words;
                resume_with k ())
        | E_saved_reg_range ->
            Some
              (fun k ->
                let base =
                  match th.sig_saves with
                  | save :: _ -> save
                  | [] -> th.manual_save_base
                in
                resume_with k (base, th.reg_words))
        | E_clear_regs ->
            Some
              (fun k ->
                charge th (th.reg_words * rt.cfg.cost.local_op);
                for i = 0 to th.reg_words - 1 do
                  Mem.raw_write rt.mem (th.reg_base + i) 0
                done;
                resume_with k ())
        | E_add_range (base, len) ->
            Some
              (fun k ->
                th.private_ranges <- (base, len) :: th.private_ranges;
                charge th rt.cfg.cost.local_op;
                resume_with k ())
        | E_remove_range (base, len) ->
            Some
              (fun k ->
                let removed = ref false in
                th.private_ranges <-
                  List.filter
                    (fun r ->
                      if (not !removed) && r = (base, len) then begin
                        removed := true;
                        false
                      end
                      else true)
                    th.private_ranges;
                charge th rt.cfg.cost.local_op;
                resume_with k ())
        | E_ranges -> Some (fun k -> resume_with k th.private_ranges)
        | E_ranges_of target ->
            Some (fun k -> guarded k (fun () -> ranges_of_thread (get_thread rt target)))
        | E_steps -> Some (fun k -> resume_with k rt.sim_stats.steps)
        | E_crash target ->
            Some
              (fun k ->
                charge th rt.cfg.cost.local_op;
                if target = th.tid then begin
                  (* self-crash: the continuation is abandoned, never resumed *)
                  ignore k;
                  do_crash rt th target
                end
                else guarded k (fun () -> do_crash rt th target))
        | E_stall (target, cycles) ->
            Some
              (fun k ->
                charge th rt.cfg.cost.local_op;
                (* set the continuation first: a self-stalling thread resumes
                   here when its deadline passes *)
                resume_with k ();
                do_stall rt th target cycles)
        | E_drop_signals (target, n) ->
            Some
              (fun k ->
                guarded k (fun () -> (get_thread rt target).drop_sigs <- max 0 n))
        | E_delay_signals (target, cycles) ->
            Some
              (fun k ->
                guarded k (fun () -> (get_thread rt target).sig_delay <- max 0 cycles))
        | E_wait_note n ->
            Some
              (fun k ->
                th.wait_note <- n;
                resume_with k ())
        | E_note msg ->
            Some
              (fun k ->
                emit rt th (Trace.Note { tid = th.tid; msg });
                resume_with k ())
        | E_is_crashed target ->
            Some (fun k -> guarded k (fun () -> (get_thread rt target).crashed))
        | E_is_stalled target ->
            Some (fun k -> guarded k (fun () -> is_stalled (get_thread rt target)))
        | E_clock_of target ->
            Some (fun k -> guarded k (fun () -> (get_thread rt target).clock))
        | _ -> None);
  }

and new_thread : t -> (unit -> unit) -> thread =
 fun rt body ->
  let tid = rt.nthreads in
  let stack_base = Alloc.alloc_region rt.alloc rt.cfg.stack_words in
  let reg_base = Alloc.alloc_region rt.alloc rt.cfg.reg_words in
  let manual_save_base = Alloc.alloc_region rt.alloc rt.cfg.reg_words in
  let th =
    {
      tid;
      clock = 0;
      status = Ready;
      resume = None;
      saved = [];
      on_core = false;
      heap_pos = -1;
      core_since = 0;
      ever_scheduled = false;
      boosted = false;
      wants_yield = false;
      stack_base;
      stack_words = rt.cfg.stack_words;
      sp = stack_base;
      reg_base;
      reg_words = rt.cfg.reg_words;
      manual_save_base;
      sig_saves = [];
      save_pool = [];
      reg_cursor = 0;
      handler = None;
      pending = Queue.create ();
      sig_depth = 0;
      failure = None;
      rng = Splitmix.split rt.rng;
      private_ranges = [];
      stalled_until = -1;
      crashed = false;
      drop_sigs = 0;
      sig_delay = 0;
      wait_note = None;
      prio =
        (match rt.cfg.sched with
        | Pct _ -> 1 + Splitmix.below rt.rng 1_000_000_000
        | Timed | Uniform -> 0);
    }
  in
  th.resume <- Some (fun () -> Effect.Deep.match_with body () (make_handler rt th));
  if tid >= Array.length rt.threads then begin
    let cap = max 8 (2 * Array.length rt.threads) in
    let bigger = Array.make cap th in
    Array.blit rt.threads 0 bigger 0 tid;
    rt.threads <- bigger
  end;
  rt.threads.(tid) <- th;
  rt.nthreads <- rt.nthreads + 1;
  rt.live <- rt.live + 1;
  rt.sim_stats.spawns <- rt.sim_stats.spawns + 1;
  th

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

let deliver_signal rt th =
  match th.handler with
  | Some h
    when (not (Queue.is_empty th.pending))
         && Queue.peek th.pending <= th.clock
         && th.resume <> None ->
      ignore (Queue.pop th.pending);
      rt.sim_stats.signals_delivered <- rt.sim_stats.signals_delivered + 1;
      charge th rt.cfg.cost.signal_dispatch;
      (* The kernel saves the interrupted context; the handler scans this
         snapshot, not the registers its own execution clobbers. *)
      let save =
        match th.save_pool with
        | s :: rest ->
            th.save_pool <- rest;
            s
        | [] -> Alloc.alloc_region rt.alloc th.reg_words
      in
      copy_regs rt ~src:th.reg_base ~dst:save th.reg_words;
      th.sig_saves <- save :: th.sig_saves;
      th.sig_depth <- th.sig_depth + 1;
      emit rt th (Trace.Signal_delivered { tid = th.tid; depth = th.sig_depth });
      let interrupted = Option.get th.resume in
      th.saved <- interrupted :: th.saved;
      th.resume <- Some (fun () -> Effect.Deep.match_with h () (make_handler rt th))
  | _ -> ()

let capacity rt = if unlimited rt then max_int else rt.cfg.cores

let refill rt =
  while rt.nactive < capacity rt && ready_nonempty rt do
    match ready_pop rt with
    | None -> ()
    | Some th ->
        th.on_core <- true;
        th.boosted <- false;
        if th.ever_scheduled then begin
          if not (unlimited rt) then begin
            rt.sim_stats.ctx_switches <- rt.sim_stats.ctx_switches + 1;
            charge th rt.cfg.cost.context_switch
          end;
          emit rt th (Trace.Scheduled { tid = th.tid })
        end
        else emit rt th (Trace.Thread_started { tid = th.tid });
        th.ever_scheduled <- true;
        if th.clock < rt.now then th.clock <- rt.now;
        th.core_since <- th.clock;
        heap_push rt th
  done

(* PCT: strictly lower than every priority seen so far, so a demoted thread
   only runs once everyone above it is blocked or done. *)
let demote rt th =
  rt.floor_prio <- rt.floor_prio - 1;
  th.prio <- rt.floor_prio

(* While a critical section is open its owner runs next, if it can: the
   section must be scheduling-atomic.  An owner that was crashed clears
   the state in [do_crash]; an owner that was stalled mid-section cannot
   run, so the pin is waived rather than deadlocking the schedule (fault
   injection under the analyzer is best-effort by design). *)
let pinned_owner rt =
  if !crit_depth = 0 || !crit_tid < 0 || !crit_tid >= rt.nthreads then None
  else
    let th = rt.threads.(!crit_tid) in
    if th.status <> Done && th.on_core && th.resume <> None then Some th else None

let pick_next rt =
  if rt.nactive = 0 then None
  else
    match pinned_owner rt with
    | Some th -> Some th
    | None -> (
    match rt.cfg.sched with
    | Timed -> Some rt.heap.(0)
    | Uniform ->
        (* adversarial exploration: any active thread may step next.  The
           walk is still deterministic in the seed, and execution order
           still defines a sequentially consistent history. *)
        Some rt.heap.(Splitmix.below rt.rng rt.nactive)
    | Pct _ ->
        (* highest priority steps; at each change point the running thread
           drops below everyone, handing the schedule over *)
        let best = ref rt.heap.(0) in
        for i = 1 to rt.nactive - 1 do
          let th = rt.heap.(i) in
          if th.prio > !best.prio || (th.prio = !best.prio && th.tid < !best.tid) then best := th
        done;
        rt.sched_steps <- rt.sched_steps + 1;
        (match rt.pct_points with
        | cp :: rest when rt.sched_steps >= cp ->
            rt.pct_points <- rest;
            demote rt !best;
            emit rt !best (Trace.Priority_changed { tid = !best.tid; prio = !best.prio })
        | _ -> ());
        Some !best)

let deschedule rt th =
  remove_active rt th;
  ready_push rt th;
  emit rt th (Trace.Descheduled { tid = th.tid })

let post_step rt th =
  if
    th.status <> Done && th.on_core
    && not (unlimited rt)
    && not (!crit_depth > 0 && !crit_tid = th.tid)
  then begin
    let others_waiting = ready_nonempty rt in
    if
      others_waiting
      && (th.wants_yield || rt.want_preempt || th.clock - th.core_since >= rt.cfg.quantum)
    then begin
      deschedule rt th;
      rt.want_preempt <- false
    end
  end;
  (* Under PCT a yield demotes: spin-wait loops (locks, ack waits, joins)
     always hand the schedule to whoever they are waiting for, so blocking
     protocols keep making progress under priority scheduling. *)
  (match rt.cfg.sched with
  | Pct _ when th.wants_yield && th.status <> Done -> demote rt th
  | _ -> ());
  th.wants_yield <- false;
  (* the stepped thread's clock advanced; restore the heap invariant *)
  if th.on_core && th.heap_pos >= 0 then sift_down rt th.heap_pos

let step rt th =
  rt.current <- th.tid;
  cur_tid := th.tid;
  deliver_signal rt th;
  if th.clock > rt.now then rt.now <- th.clock;
  rt.sim_stats.steps <- rt.sim_stats.steps + 1;
  if rt.sim_stats.steps > rt.cfg.max_steps then raise Step_limit_exceeded;
  (match th.resume with
  | None -> raise (Sim_error "scheduled a thread with nothing to run")
  | Some f ->
      th.resume <- None;
      f ());
  post_step rt th

(* ------------------------------------------------------------------ *)
(* Public API                                                         *)
(* ------------------------------------------------------------------ *)

let create cfg =
  (* stale pin state can only survive a run that crashed a fiber inside
     a critical section; never let it leak into the next run *)
  crit_depth := 0;
  crit_tid := -1;
  cur_tid := -1;
  let mem = Mem.create ~strict:cfg.strict_mem ~capacity_limit:cfg.mem_capacity () in
  (* max_threads for allocator caches: grown lazily via modulo mapping is
     wrong; instead size generously and let Alloc index by tid directly. *)
  let alloc = Alloc.create ~sanitize:cfg.sanitize ~max_threads:4096 mem in
  let rng = Splitmix.create cfg.seed in
  let pct_points =
    match cfg.sched with
    | Pct { change_points; expected_steps } ->
        List.init change_points (fun _ -> 1 + Splitmix.below rng (max 1 expected_steps))
        |> List.sort_uniq compare
    | Timed | Uniform -> []
  in
  {
    cfg;
    mem;
    alloc;
    threads = [||];
    nthreads = 0;
    ready_front = [];
    ready_back = [];
    heap = [||];
    nactive = 0;
    live = 0;
    now = 0;
    want_preempt = false;
    started = false;
    sim_stats = make_stats ();
    rng;
    pct_points;
    floor_prio = 0;
    sched_steps = 0;
    current = -1;
    stalled = [];
  }

let add_thread rt body =
  if rt.started then invalid_arg "Runtime.add_thread: already started";
  let th = new_thread rt body in
  ready_push rt th;
  th.tid

let mem rt = rt.mem

let alloc rt = rt.alloc

let stats rt = rt.sim_stats

let running_tid rt = if rt.current >= 0 then Some rt.current else None

let thread_count rt = rt.nthreads

let collect_failures rt =
  let fs = ref [] in
  for i = rt.nthreads - 1 downto 0 do
    match rt.threads.(i).failure with
    | Some e -> fs := (i, e) :: !fs
    | None -> ()
  done;
  !fs

let start rt =
  if rt.started then invalid_arg "Runtime.start: already started";
  rt.started <- true;
  let running = ref true in
  while !running do
    wake_stalled rt;
    refill rt;
    if not (ready_nonempty rt) then rt.want_preempt <- false;
    match pick_next rt with
    | Some th -> step rt th
    | None ->
        if rt.live = 0 then running := false
        else begin
          (* Nothing runnable.  If a stalled thread has a finite deadline,
             jump virtual time forward to the earliest wake-up.  If every
             remaining live thread is stalled forever, the run is over and
             they are reported as abandoned.  Anything else is a genuine
             deadlock: report who is blocked and on what. *)
          let next_wake =
            List.fold_left
              (fun acc th -> if th.stalled_until < acc then th.stalled_until else acc)
              max_int rt.stalled
          in
          if next_wake < max_int then rt.now <- max rt.now next_wake
          else if rt.stalled <> [] && List.length rt.stalled = rt.live then running := false
          else raise (Deadlock (blocked_summary rt))
        end
  done;
  let abandoned =
    List.filter_map (fun th -> if th.status <> Done then Some th.tid else None) rt.stalled
    |> List.sort compare
  in
  let failures = collect_failures rt in
  (match failures with
  | (tid, e) :: _ when rt.cfg.propagate_failures -> raise (Thread_failure (tid, e))
  | _ -> ());
  { elapsed = rt.now; run_stats = rt.sim_stats; failures; abandoned }

let run ?(config = default_config) main =
  let rt = create config in
  ignore (add_thread rt main);
  start rt

(* Effect-performing wrappers *)

let read addr = Effect.perform (E_read addr)

let write addr v = Effect.perform (E_write (addr, v))

let cas addr expected desired = Effect.perform (E_cas (addr, expected, desired))

let faa addr delta = Effect.perform (E_faa (addr, delta))

let fence () = Effect.perform E_fence

let malloc n = Effect.perform (E_malloc n)

let free addr = Effect.perform (E_free addr)

let alloc_region n = Effect.perform (E_region n)

let yield () = Effect.perform E_yield

let advance n = Effect.perform (E_advance n)

let now () = Effect.perform E_now

let self () = Effect.perform E_self

let rand_below n = Effect.perform (E_rand n)

let spawn f = Effect.perform (E_spawn f)

let join tid = Effect.perform (E_join tid)

let is_done tid = Effect.perform (E_is_done tid)

let signal tid = Effect.perform (E_signal tid)

let set_signal_handler f = Effect.perform (E_set_handler f)

let signal_depth () = Effect.perform E_sig_depth

let push_frame n = Effect.perform (E_push_frame n)

let pop_frame base = Effect.perform (E_pop_frame base)

let stack_range () = Effect.perform E_stack_range

let reg_range () = Effect.perform E_reg_range

let save_regs () = Effect.perform E_save_regs

let saved_reg_range () = Effect.perform E_saved_reg_range

let clear_regs () = Effect.perform E_clear_regs

let add_private_range base len = Effect.perform (E_add_range (base, len))

let remove_private_range base len = Effect.perform (E_remove_range (base, len))

let private_ranges () = Effect.perform E_ranges

let scan_ranges_of tid = Effect.perform (E_ranges_of tid)

let steps_now () = Effect.perform E_steps

(* Fault injection *)

let crash tid = Effect.perform (E_crash tid)

let stall ?cycles tid = Effect.perform (E_stall (tid, cycles))

let drop_signals tid n = Effect.perform (E_drop_signals (tid, n))

let delay_signals tid cycles = Effect.perform (E_delay_signals (tid, cycles))

let is_crashed tid = Effect.perform (E_is_crashed tid)

let is_stalled tid = Effect.perform (E_is_stalled tid)

let clock_of tid = Effect.perform (E_clock_of tid)

let set_wait_note n = Effect.perform (E_wait_note n)

let note msg = Effect.perform (E_note msg)

(* Backend registration: the whole algorithm stack calls [Ts_rt], which
   dispatches to whichever backend registered last.  The sim op wrappers
   above are plain [Effect.perform] closures, so the record is static;
   entering the simulator (create/start/run) re-installs it, which lets
   sim and native runs alternate freely within one process. *)

let rt_ops : Ts_rt.ops =
  {
    Ts_rt.read;
    write;
    cas;
    faa;
    fence;
    malloc;
    free;
    alloc_region;
    yield;
    advance;
    now;
    self;
    rand_below;
    steps_now;
    spawn;
    join;
    is_done;
    poll = (fun () -> ());
    signal;
    set_signal_handler;
    signal_depth;
    push_frame;
    pop_frame;
    stack_range;
    reg_range;
    save_regs;
    saved_reg_range;
    clear_regs;
    add_private_range;
    remove_private_range;
    private_ranges;
    scan_ranges_of;
    crash;
    stall = (fun cycles tid -> stall ?cycles tid);
    is_crashed;
    is_stalled;
    clock_of;
    set_wait_note;
    note;
    (* Exactly one fiber runs at a time, so mutual exclusion is free —
       but a decorator performing effects inside [critical] also needs
       the section to be scheduling-atomic, so the owner is pinned until
       the depth returns to zero (see [pinned_owner]). *)
    critical =
      (fun f ->
        if !crit_depth = 0 then crit_tid := !cur_tid;
        incr crit_depth;
        Fun.protect
          ~finally:(fun () ->
            decr crit_depth;
            if !crit_depth = 0 then crit_tid := -1)
          f);
  }

let create cfg =
  Ts_rt.install rt_ops;
  create cfg

let start rt =
  Ts_rt.install rt_ops;
  Ts_rt.enter_run ();
  Fun.protect ~finally:Ts_rt.exit_run (fun () -> start rt)

let run ?config main =
  Ts_rt.install rt_ops;
  Ts_rt.enter_run ();
  Fun.protect ~finally:Ts_rt.exit_run (fun () -> run ?config main)
