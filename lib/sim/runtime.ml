module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Ptr = Ts_umem.Ptr
module Splitmix = Ts_util.Splitmix
module Vec = Ts_util.Vec

type tid = int

exception Deadlock of string
exception Step_limit_exceeded
exception Thread_failure of tid * exn
exception Sim_error of string

type sched =
  | Timed
  | Uniform
  | Pct of { change_points : int; expected_steps : int }

type config = {
  cost : Cost_model.t;
  cores : int;
  quantum : int;
  seed : int;
  stack_words : int;
  reg_words : int;
  mem_capacity : int;
  strict_mem : bool;
  sanitize : bool;
  magazine : bool;
  max_steps : int;
  propagate_failures : bool;
  trace : (Trace.entry -> unit) option;
  sched : sched;
}

let default_config =
  {
    cost = Cost_model.default;
    cores = 0;
    quantum = 50_000;
    seed = 0x5EED;
    stack_words = 256;
    reg_words = 32;
    mem_capacity = 1 lsl 26;
    strict_mem = true;
    sanitize = false;
    magazine = true;
    max_steps = 1 lsl 32;
    propagate_failures = true;
    trace = None;
    sched = Timed;
  }

type stats = {
  mutable steps : int;
  mutable reads : int;
  mutable writes : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable fences : int;
  mutable mallocs : int;
  mutable frees : int;
  mutable yields : int;
  mutable signals_sent : int;
  mutable signals_delivered : int;
  mutable ctx_switches : int;
  mutable spawns : int;
  mutable crashes : int;
  mutable stalls : int;
  mutable signals_dropped : int;
}

let make_stats () =
  {
    steps = 0;
    reads = 0;
    writes = 0;
    cas_ops = 0;
    cas_failures = 0;
    fences = 0;
    mallocs = 0;
    frees = 0;
    yields = 0;
    signals_sent = 0;
    signals_delivered = 0;
    ctx_switches = 0;
    spawns = 0;
    crashes = 0;
    stalls = 0;
    signals_dropped = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "steps=%d reads=%d writes=%d cas=%d(-%d) fences=%d malloc=%d free=%d yields=%d sig=%d/%d \
     switches=%d spawns=%d"
    s.steps s.reads s.writes s.cas_ops s.cas_failures s.fences s.mallocs s.frees s.yields
    s.signals_sent s.signals_delivered s.ctx_switches s.spawns;
  if s.crashes + s.stalls + s.signals_dropped > 0 then
    Fmt.pf ppf " crashes=%d stalls=%d sigdrops=%d" s.crashes s.stalls s.signals_dropped

let reset_stats s =
  s.steps <- 0;
  s.reads <- 0;
  s.writes <- 0;
  s.cas_ops <- 0;
  s.cas_failures <- 0;
  s.fences <- 0;
  s.mallocs <- 0;
  s.frees <- 0;
  s.yields <- 0;
  s.signals_sent <- 0;
  s.signals_delivered <- 0;
  s.ctx_switches <- 0;
  s.spawns <- 0;
  s.crashes <- 0;
  s.stalls <- 0;
  s.signals_dropped <- 0

let stats_to_array s =
  [|
    s.steps; s.reads; s.writes; s.cas_ops; s.cas_failures; s.fences; s.mallocs; s.frees;
    s.yields; s.signals_sent; s.signals_delivered; s.ctx_switches; s.spawns; s.crashes;
    s.stalls; s.signals_dropped;
  |]

type result = {
  elapsed : int;
  run_stats : stats;
  failures : (tid * exn) list;
  abandoned : tid list;
}

(* What one scheduler step touched, for partial-order (sleep-set) pruning.
   [Pure] steps only read/write the stepping thread's own private state and
   commute with every other thread's step; [Shared] steps touch one shared
   word; anything whose interaction we cannot bound precisely (allocator
   traffic, spawns, signals, fault injection, cross-thread queries) is
   [Global] and conflicts with everything — the safe direction: an
   over-approximate footprint only loses pruning, never soundness. *)
type footprint = Pure | Shared of { addr : int; write : bool } | Global

let conflicts a b =
  match (a, b) with
  | Pure, _ | _, Pure -> false
  | Global, _ | _, Global -> true
  | Shared { addr = a1; write = w1 }, Shared { addr = a2; write = w2 } ->
      a1 = a2 && (w1 || w2)

(* Footprints pack into one int for the per-step log: tag in the low two
   bits (0 = pure, 1 = global, 2 = shared read, 3 = shared write), shared
   address above. *)
let encode_fp = function
  | Pure -> 0
  | Global -> 1
  | Shared { addr; write } -> (addr lsl 2) lor 2 lor Bool.to_int write

let decode_fp v =
  match v land 3 with
  | 0 -> Pure
  | 1 -> Global
  | t -> Shared { addr = v lsr 2; write = t = 3 }

type status = Ready | Done

type thread = {
  tid : int;
  mutable clock : int;
  mutable status : status;
  mutable resume : (unit -> unit) option;
  mutable saved : (unit -> unit) list; (* fibers interrupted by signal handlers *)
  mutable on_core : bool;
  mutable heap_pos : int; (* index in the active heap, -1 when off-core *)
  mutable core_since : int;
  mutable ever_scheduled : bool;
  mutable boosted : bool;
  mutable wants_yield : bool;
  stack_base : int;
  stack_words : int;
  mutable sp : int; (* next free stack slot (absolute address) *)
  reg_base : int;
  reg_words : int;
  manual_save_base : int; (* explicit save_regs snapshot *)
  mutable sig_saves : int list; (* per-nesting-level saved contexts, top first *)
  mutable save_pool : int list; (* recycled save regions *)
  mutable reg_cursor : int;
  mutable handler : (unit -> unit) option;
  pending : int Queue.t;
  mutable sig_depth : int;
  mutable failure : exn option;
  rng : Splitmix.t;
  mutable private_ranges : (int * int) list;
  mutable prio : int; (* PCT priority; higher steps first *)
  mutable stalled_until : int; (* -1 not stalled; max_int forever *)
  mutable crashed : bool;
  mutable drop_sigs : int; (* fault injection: drop the next n signals *)
  mutable sig_delay : int; (* fault injection: delay delivery by n cycles *)
  mutable wait_note : string option; (* what the thread is blocked on *)
  mutable abort_pending : exn option; (* neutralization armed by a handler *)
}

type t = {
  cfg : config;
  mem : Mem.t;
  alloc : Alloc.t;
  mutable threads : thread array; (* index = tid; dummy slots beyond nthreads *)
  mutable nthreads : int;
  mutable ready_front : thread list;
  mutable ready_back : thread list;
  (* Active threads as a binary min-heap on (clock, tid): the scheduler
     steps the minimum on every iteration, so this is the hot structure. *)
  mutable heap : thread array;
  mutable nactive : int;
  mutable live : int;
  mutable now : int;
  mutable want_preempt : bool;
  mutable started : bool;
  sim_stats : stats;
  rng : Splitmix.t;
  mutable pct_points : int list; (* remaining change points, ascending *)
  mutable floor_prio : int; (* every demotion goes strictly below this *)
  mutable sched_steps : int; (* steps counted for PCT change points *)
  mutable current : int; (* tid being stepped, -1 outside [step] *)
  mutable stalled : thread list; (* descheduled by fault injection *)
  (* ---- guided scheduling, savepoints and replay ---- *)
  mutable hook : (t -> int array -> int) option; (* decision-point callback *)
  mutable guided : bool; (* record every choice; policy never draws [rng] *)
  choice_log : Vec.t; (* tid stepped at each step index (guided runs) *)
  fp_log : Vec.t; (* encoded footprint of each step (guided runs) *)
  mutable replay_limit : int; (* force choices from the log below this step *)
  mutable replay_mute : bool; (* suppress trace callbacks during replay *)
  mutable trace_cursor : int; (* total trace entries emitted (incl. muted) *)
  mutable initial_bodies : (unit -> unit) list; (* reversed add order *)
  mutable init_rng : int64; (* scheduler rng state before the first thread *)
  init_pct_points : int list;
  mutable entered : bool; (* [step_run] holds the Ts_rt run bracket *)
  mutable finished : bool; (* the run reached its end state *)
  mutable step_fp : footprint; (* what the last step touched *)
  mutable last_pick_policy : bool; (* the pending pick came from the policy *)
  mutable my_crit : int * int; (* this runtime's (crit_depth, crit_tid) *)
}

(* ------------------------------------------------------------------ *)
(* Effects                                                            *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | E_read : int -> int Effect.t
  | E_write : (int * int) -> unit Effect.t
  | E_cas : (int * int * int) -> bool Effect.t
  | E_faa : (int * int) -> int Effect.t
  | E_fence : unit Effect.t
  | E_malloc : int -> int Effect.t
  | E_free : int -> unit Effect.t
  | E_region : int -> int Effect.t
  | E_yield : unit Effect.t
  | E_advance : int -> unit Effect.t
  | E_now : int Effect.t
  | E_self : int Effect.t
  | E_rand : int -> int Effect.t
  | E_spawn : (unit -> unit) -> int Effect.t
  | E_join : int -> unit Effect.t
  | E_is_done : int -> bool Effect.t
  | E_signal : int -> unit Effect.t
  | E_set_handler : (unit -> unit) -> unit Effect.t
  | E_sig_depth : int Effect.t
  | E_neutralize : exn -> unit Effect.t
  | E_cancel_neutralize : unit Effect.t
  | E_push_frame : int -> int Effect.t
  | E_pop_frame : int -> unit Effect.t
  | E_stack_range : (int * int) Effect.t
  | E_reg_range : (int * int) Effect.t
  | E_save_regs : unit Effect.t
  | E_saved_reg_range : (int * int) Effect.t
  | E_clear_regs : unit Effect.t
  | E_add_range : (int * int) -> unit Effect.t
  | E_remove_range : (int * int) -> unit Effect.t
  | E_ranges : (int * int) list Effect.t
  | E_ranges_of : int -> (int * int) list Effect.t
  | E_steps : int Effect.t
  | E_crash : int -> unit Effect.t
  | E_stall : (int * int option) -> unit Effect.t
  | E_unstall : int -> unit Effect.t
  | E_drop_signals : (int * int) -> unit Effect.t
  | E_delay_signals : (int * int) -> unit Effect.t
  | E_wait_note : string option -> unit Effect.t
  | E_note : string -> unit Effect.t
  | E_is_crashed : int -> bool Effect.t
  | E_is_stalled : int -> bool Effect.t
  | E_clock_of : int -> int Effect.t

(* ------------------------------------------------------------------ *)
(* Ready queue (FIFO with push-front for boosted threads)             *)
(* ------------------------------------------------------------------ *)

let ready_push rt th = rt.ready_back <- th :: rt.ready_back

let ready_push_front rt th = rt.ready_front <- th :: rt.ready_front

let rec ready_pop rt =
  match rt.ready_front with
  | th :: tl ->
      rt.ready_front <- tl;
      Some th
  | [] -> (
      match rt.ready_back with
      | [] -> None
      | l ->
          rt.ready_front <- List.rev l;
          rt.ready_back <- [];
          ready_pop rt)

let ready_nonempty rt = rt.ready_front <> [] || rt.ready_back <> []

let ready_remove rt th =
  let not_th x = x != th in
  rt.ready_front <- List.filter not_th rt.ready_front;
  rt.ready_back <- List.filter not_th rt.ready_back

(* ------------------------------------------------------------------ *)
(* Thread bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

let charge th c = th.clock <- th.clock + c

(* The cursor counts every entry, muted or not: a restore replays the
   prefix with the callback muted and then checks the cursor landed where
   the savepoint said it would, so trace positions survive savepoints. *)
let emit rt th event =
  rt.trace_cursor <- rt.trace_cursor + 1;
  if not rt.replay_mute then
    match rt.cfg.trace with
    | None -> ()
    | Some f -> f { Trace.time = th.clock; event }

let unlimited rt = rt.cfg.cores <= 0

(* ---- active-set heap (min on (clock, tid)) ---- *)

let th_less a b = a.clock < b.clock || (a.clock = b.clock && a.tid < b.tid)

let heap_swap rt i j =
  let a = rt.heap.(i) and b = rt.heap.(j) in
  rt.heap.(i) <- b;
  rt.heap.(j) <- a;
  a.heap_pos <- j;
  b.heap_pos <- i

let rec sift_up rt i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if th_less rt.heap.(i) rt.heap.(p) then begin
      heap_swap rt i p;
      sift_up rt p
    end
  end

let rec sift_down rt i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < rt.nactive && th_less rt.heap.(l) rt.heap.(!m) then m := l;
  if r < rt.nactive && th_less rt.heap.(r) rt.heap.(!m) then m := r;
  if !m <> i then begin
    heap_swap rt i !m;
    sift_down rt !m
  end

let heap_push rt th =
  if rt.nactive = Array.length rt.heap then begin
    let bigger = Array.make (max 8 (2 * Array.length rt.heap)) th in
    Array.blit rt.heap 0 bigger 0 rt.nactive;
    rt.heap <- bigger
  end;
  rt.heap.(rt.nactive) <- th;
  th.heap_pos <- rt.nactive;
  rt.nactive <- rt.nactive + 1;
  sift_up rt (rt.nactive - 1)

let heap_remove rt th =
  let i = th.heap_pos in
  rt.nactive <- rt.nactive - 1;
  let last = rt.heap.(rt.nactive) in
  if i < rt.nactive then begin
    rt.heap.(i) <- last;
    last.heap_pos <- i;
    sift_down rt i;
    sift_up rt i
  end;
  th.heap_pos <- -1

let remove_active rt th =
  if th.on_core then begin
    th.on_core <- false;
    heap_remove rt th
  end

let thread_finished rt th =
  th.status <- Done;
  th.saved <- [];
  th.resume <- None;
  rt.live <- rt.live - 1;
  remove_active rt th;
  emit rt th (Trace.Thread_finished { tid = th.tid })

let thread_fail rt th e =
  th.failure <- Some e;
  thread_finished rt th

let copy_regs rt ~src ~dst n =
  for i = 0 to n - 1 do
    Mem.raw_write rt.mem (dst + i) (Mem.raw_read rt.mem (src + i))
  done

(* Called when the currently-running fiber of [th] returns normally. *)
let fiber_done rt th =
  match th.saved with
  | [] -> thread_finished rt th
  | f :: tl ->
      th.saved <- tl;
      th.sig_depth <- th.sig_depth - 1;
      charge th rt.cfg.cost.signal_return;
      (* sigreturn: restore the interrupted register context, undoing the
         handler's own register traffic. *)
      (match th.sig_saves with
      | save :: rest ->
          copy_regs rt ~src:save ~dst:th.reg_base th.reg_words;
          th.sig_saves <- rest;
          th.save_pool <- save :: th.save_pool
      | [] -> ());
      emit rt th (Trace.Signal_returned { tid = th.tid });
      th.resume <- Some f

(* ------------------------------------------------------------------ *)
(* Memory operations (executed at effect-perform time)                *)
(* ------------------------------------------------------------------ *)

let is_private th addr =
  (addr >= th.stack_base && addr < th.stack_base + th.stack_words)
  || (addr >= th.reg_base && addr < th.reg_base + th.reg_words)

let mirror_into_regs rt th v =
  th.reg_cursor <- (th.reg_cursor + 1) mod th.reg_words;
  Mem.raw_write rt.mem (th.reg_base + th.reg_cursor) v

let do_read rt th addr =
  rt.sim_stats.reads <- rt.sim_stats.reads + 1;
  charge th (if is_private th addr then rt.cfg.cost.local_op else rt.cfg.cost.shared_read);
  let v = Mem.read rt.mem addr in
  mirror_into_regs rt th v;
  v

let do_write rt th addr v =
  rt.sim_stats.writes <- rt.sim_stats.writes + 1;
  charge th (if is_private th addr then rt.cfg.cost.local_op else rt.cfg.cost.shared_write);
  Mem.write rt.mem addr v

let do_cas rt th addr expected desired =
  rt.sim_stats.cas_ops <- rt.sim_stats.cas_ops + 1;
  charge th rt.cfg.cost.cas;
  let v = Mem.read rt.mem addr in
  if v = expected then begin
    Mem.write rt.mem addr desired;
    true
  end
  else begin
    rt.sim_stats.cas_failures <- rt.sim_stats.cas_failures + 1;
    mirror_into_regs rt th v;
    false
  end

let do_faa rt th addr delta =
  charge th rt.cfg.cost.faa;
  let v = Mem.read rt.mem addr in
  Mem.write rt.mem addr (v + delta);
  mirror_into_regs rt th v;
  v

(* ------------------------------------------------------------------ *)
(* Fibers                                                             *)
(* ------------------------------------------------------------------ *)

let ranges_of_thread th =
  (* stack, live registers, the manual snapshot, every signal-time saved
     context, and registered private ranges: everything a value the thread
     held at its last instant could live in.  Conservative supersets are
     safe; a proxy scan of a stalled/crashed thread must not miss a pointer
     parked in a saved context. *)
  (th.stack_base, th.sp - th.stack_base)
  :: (th.reg_base, th.reg_words)
  :: (th.manual_save_base, th.reg_words)
  :: (List.map (fun s -> (s, th.reg_words)) th.sig_saves @ th.private_ranges)
  |> List.filter (fun (_, len) -> len > 0)

let get_thread rt tid =
  if tid < 0 || tid >= rt.nthreads then raise (Sim_error "unknown thread id");
  rt.threads.(tid)

let thread_done rt tid = (get_thread rt tid).status = Done

let is_stalled th = th.stalled_until >= 0

let do_signal rt sender target_tid =
  let target = get_thread rt target_tid in
  rt.sim_stats.signals_sent <- rt.sim_stats.signals_sent + 1;
  charge sender rt.cfg.cost.signal_send;
  emit rt sender (Trace.Signal_sent { sender = sender.tid; target = target_tid });
  if target.status <> Done then begin
    if target.drop_sigs > 0 then begin
      target.drop_sigs <- target.drop_sigs - 1;
      rt.sim_stats.signals_dropped <- rt.sim_stats.signals_dropped + 1;
      emit rt sender (Trace.Signal_dropped { sender = sender.tid; target = target_tid })
    end
    else begin
      (* queue entries hold the earliest virtual time delivery may happen;
         0 = immediately (the normal, undelayed case) *)
      let deliver_at =
        if target.sig_delay > 0 then max sender.clock target.clock + target.sig_delay else 0
      in
      Queue.push deliver_at target.pending;
      if (not target.on_core) && (not target.boosted) && not (is_stalled target) then begin
        (* The kernel makes a freshly-signaled thread runnable promptly:
           move it to the head of the ready queue and request a preemption.
           A stalled thread stays descheduled; the signal pends until it
           wakes. *)
        target.boosted <- true;
        ready_remove rt target;
        ready_push_front rt target;
        rt.want_preempt <- true
      end
    end
  end

(* ---- non-preemptible critical sections ----

   [Ts_rt.critical] must make its body scheduling-atomic: a decorator
   (the happens-before analyzer) delegates a memory effect and then
   updates its own bookkeeping inside one [critical] body, and no other
   fiber may observe the memory mutation before the bookkeeping lands.
   Mutual exclusion alone is free here (one fiber runs at a time), but
   every effect is a scheduling point, so [critical] additionally pins
   its owner: while a section is open the scheduler keeps resuming the
   owning fiber.

   The refs are module-level because the [Ts_rt.ops] record is static;
   exactly one simulator instance runs at a time (enforced by
   [Ts_rt.install]), and [create] resets them.  When no critical body
   performs an effect — true of every in-tree caller except the
   analyzer — the scheduler never observes a nonzero depth and
   schedules are bit-for-bit what they were. *)

let crit_depth = ref 0
let crit_tid = ref (-1) (* owner while depth > 0 *)
let cur_tid = ref (-1) (* tid of the fiber inside [step] *)

(* ---- fault injection ---- *)

let do_crash rt reporter target_tid =
  let target = get_thread rt target_tid in
  if target.status <> Done then begin
    rt.sim_stats.crashes <- rt.sim_stats.crashes + 1;
    target.crashed <- true;
    Queue.clear target.pending;
    ready_remove rt target;
    rt.stalled <- List.filter (fun th -> th != target) rt.stalled;
    target.stalled_until <- -1;
    (* The fiber is abandoned, not unwound: a crashed thread's shadow stack
       and register file keep their last contents, exactly like a real
       thread that died at an arbitrary instruction. *)
    target.status <- Done;
    target.saved <- [];
    target.resume <- None;
    rt.live <- rt.live - 1;
    remove_active rt target;
    (* the fiber is abandoned mid-flight: any critical section it held
       would otherwise stay open forever *)
    if !crit_tid = target_tid then begin
      crit_depth := 0;
      crit_tid := -1
    end;
    emit rt reporter (Trace.Crashed { tid = target_tid })
  end

let do_stall rt reporter target_tid cycles =
  let target = get_thread rt target_tid in
  if target.status <> Done && not (is_stalled target) then begin
    rt.sim_stats.stalls <- rt.sim_stats.stalls + 1;
    let until =
      match cycles with None -> max_int | Some c -> max rt.now target.clock + max c 0
    in
    target.stalled_until <- until;
    target.boosted <- false;
    ready_remove rt target;
    remove_active rt target;
    rt.stalled <- target :: rt.stalled;
    emit rt reporter
      (Trace.Stalled
         { tid = target_tid; until = (if until = max_int then None else Some until) })
  end

let wake_stalled rt =
  if rt.stalled <> [] then begin
    let woken, still = List.partition (fun th -> th.stalled_until <= rt.now) rt.stalled in
    rt.stalled <- still;
    List.iter
      (fun th ->
        th.stalled_until <- -1;
        if th.clock < rt.now then th.clock <- rt.now;
        emit rt th (Trace.Recovered { tid = th.tid });
        if Queue.is_empty th.pending then ready_push rt th else ready_push_front rt th)
      woken
  end

let describe_thread th =
  let state =
    if th.stalled_until = max_int then "stalled forever"
    else if th.stalled_until >= 0 then Fmt.str "stalled until t=%d" th.stalled_until
    else if th.on_core then "on core"
    else "ready"
  in
  let note = match th.wait_note with None -> "" | Some n -> Fmt.str " (%s)" n in
  let sigs =
    if Queue.is_empty th.pending then ""
    else Fmt.str " [%d pending signal%s]" (Queue.length th.pending)
      (if Queue.length th.pending = 1 then "" else "s")
  in
  Fmt.str "t%d %s%s%s" th.tid state note sigs

let blocked_summary rt =
  let blocked = ref [] in
  for i = rt.nthreads - 1 downto 0 do
    let th = rt.threads.(i) in
    if th.status <> Done then blocked := describe_thread th :: !blocked
  done;
  Fmt.str "%d threads alive but none runnable: %s" rt.live (String.concat "; " !blocked)

(* Footprint of one effect, before it runs.  Everything not explicitly
   classified (allocation, spawn, signal, join, fault injection,
   cross-thread queries, and the fiber-completion step which performs no
   effect at all) defaults to [Global]: forgetting a case costs pruning,
   never soundness. *)
let fp_of_eff : type a. thread -> a Effect.t -> footprint =
 fun th eff ->
  let mem_fp addr ~write = if is_private th addr then Pure else Shared { addr; write } in
  match eff with
  | E_read addr -> mem_fp addr ~write:false
  | E_write (addr, _) -> mem_fp addr ~write:true
  | E_cas (addr, _, _) -> mem_fp addr ~write:true
  | E_faa (addr, _) -> mem_fp addr ~write:true
  | E_fence | E_yield | E_advance _ | E_now | E_self | E_rand _ | E_set_handler _
  | E_sig_depth | E_neutralize _ | E_cancel_neutralize | E_push_frame _ | E_pop_frame _
  | E_stack_range | E_reg_range | E_save_regs | E_saved_reg_range | E_clear_regs
  | E_add_range _ | E_remove_range _ | E_ranges | E_steps | E_wait_note _ | E_note _ ->
      Pure
  | _ -> Global

let rec make_handler : t -> thread -> (unit, unit) Effect.Deep.handler =
 fun rt th ->
  let open Effect.Deep in
  {
    retc = (fun () -> fiber_done rt th);
    exnc = (fun e -> thread_fail rt th e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        rt.step_fp <- fp_of_eff th eff;
        let resume_with (k : (a, unit) continuation) (v : a) =
          th.resume <- Some (fun () -> continue k v)
        in
        let guarded (k : (a, unit) continuation) (f : unit -> a) =
          match f () with
          | v -> resume_with k v
          | exception e -> th.resume <- Some (fun () -> discontinue k e)
        in
        (* A pending neutralization (armed by a signal handler via
           [E_neutralize]) fires at the victim's next abortable effect —
           shared-memory accesses, malloc, fence, yield.  Frees and frame
           pops are deliberately non-abortable so cleanup paths (freeing a
           node that lost its publishing CAS, unwinding shadow frames) can
           never be skipped; the abort stays pending until the next
           abortable op.  Nothing fires while a handler is still running. *)
        let abortable : bool =
          match eff with
          | E_read _ | E_write _ | E_cas _ | E_faa _ | E_fence | E_malloc _ | E_yield ->
              true
          | _ -> false
        in
        match th.abort_pending with
        | Some e when th.sig_depth = 0 && abortable ->
            Some
              (fun k ->
                rt.step_fp <- Pure;
                th.abort_pending <- None;
                th.resume <- Some (fun () -> discontinue k e))
        | _ -> (
        match eff with
        | E_read addr -> Some (fun k -> guarded k (fun () -> do_read rt th addr))
        | E_write (addr, v) -> Some (fun k -> guarded k (fun () -> do_write rt th addr v))
        | E_cas (addr, e0, d) -> Some (fun k -> guarded k (fun () -> do_cas rt th addr e0 d))
        | E_faa (addr, d) -> Some (fun k -> guarded k (fun () -> do_faa rt th addr d))
        | E_fence ->
            Some
              (fun k ->
                rt.sim_stats.fences <- rt.sim_stats.fences + 1;
                charge th rt.cfg.cost.fence;
                resume_with k ())
        | E_malloc n ->
            Some
              (fun k ->
                guarded k (fun () ->
                    rt.sim_stats.mallocs <- rt.sim_stats.mallocs + 1;
                    charge th rt.cfg.cost.malloc;
                    let addr = Alloc.malloc rt.alloc ~tid:th.tid n in
                    mirror_into_regs rt th (Ptr.of_addr addr);
                    addr))
        | E_free addr ->
            Some
              (fun k ->
                guarded k (fun () ->
                    rt.sim_stats.frees <- rt.sim_stats.frees + 1;
                    charge th rt.cfg.cost.free;
                    Alloc.free rt.alloc ~tid:th.tid addr))
        | E_region n ->
            Some
              (fun k ->
                guarded k (fun () ->
                    charge th rt.cfg.cost.malloc;
                    Alloc.alloc_region rt.alloc n))
        | E_yield ->
            Some
              (fun k ->
                rt.sim_stats.yields <- rt.sim_stats.yields + 1;
                charge th rt.cfg.cost.yield;
                th.wants_yield <- true;
                resume_with k ())
        | E_advance n ->
            Some
              (fun k ->
                charge th (max n 0);
                resume_with k ())
        | E_now -> Some (fun k -> resume_with k th.clock)
        | E_self -> Some (fun k -> resume_with k th.tid)
        | E_rand n -> Some (fun k -> guarded k (fun () -> Splitmix.below th.rng n))
        | E_spawn f ->
            Some
              (fun k ->
                guarded k (fun () ->
                    charge th rt.cfg.cost.spawn;
                    let child = new_thread rt f in
                    child.clock <- th.clock;
                    ready_push rt child;
                    child.tid))
        | E_join target ->
            Some
              (fun k ->
                let rec attempt () =
                  if thread_done rt target then begin
                    th.wait_note <- None;
                    continue k ()
                  end
                  else begin
                    th.wait_note <- Some (Fmt.str "joining thread %d" target);
                    rt.sim_stats.yields <- rt.sim_stats.yields + 1;
                    charge th rt.cfg.cost.yield;
                    th.wants_yield <- true;
                    th.resume <- Some attempt
                  end
                in
                th.resume <- Some attempt)
        | E_is_done target -> Some (fun k -> resume_with k (thread_done rt target))
        | E_signal target -> Some (fun k -> guarded k (fun () -> do_signal rt th target))
        | E_set_handler f ->
            Some
              (fun k ->
                th.handler <- Some f;
                charge th rt.cfg.cost.local_op;
                resume_with k ())
        | E_sig_depth -> Some (fun k -> resume_with k th.sig_depth)
        | E_push_frame n ->
            Some
              (fun k ->
                guarded k (fun () ->
                    if n < 0 then raise (Sim_error "push_frame: negative size");
                    if th.sp + n > th.stack_base + th.stack_words then
                      raise (Sim_error "shadow stack overflow");
                    charge th rt.cfg.cost.local_op;
                    let base = th.sp in
                    th.sp <- th.sp + n;
                    for i = base to th.sp - 1 do
                      Mem.raw_write rt.mem i 0
                    done;
                    base))
        | E_pop_frame base ->
            Some
              (fun k ->
                guarded k (fun () ->
                    if base < th.stack_base || base > th.sp then
                      raise (Sim_error "pop_frame: bad frame base");
                    charge th rt.cfg.cost.local_op;
                    th.sp <- base))
        | E_stack_range -> Some (fun k -> resume_with k (th.stack_base, th.sp))
        | E_reg_range -> Some (fun k -> resume_with k (th.reg_base, th.reg_words))
        | E_save_regs ->
            Some
              (fun k ->
                charge th (th.reg_words * rt.cfg.cost.local_op);
                copy_regs rt ~src:th.reg_base ~dst:th.manual_save_base th.reg_words;
                resume_with k ())
        | E_saved_reg_range ->
            Some
              (fun k ->
                let base =
                  match th.sig_saves with
                  | save :: _ -> save
                  | [] -> th.manual_save_base
                in
                resume_with k (base, th.reg_words))
        | E_clear_regs ->
            Some
              (fun k ->
                charge th (th.reg_words * rt.cfg.cost.local_op);
                for i = 0 to th.reg_words - 1 do
                  Mem.raw_write rt.mem (th.reg_base + i) 0
                done;
                resume_with k ())
        | E_add_range (base, len) ->
            Some
              (fun k ->
                th.private_ranges <- (base, len) :: th.private_ranges;
                charge th rt.cfg.cost.local_op;
                resume_with k ())
        | E_remove_range (base, len) ->
            Some
              (fun k ->
                let removed = ref false in
                th.private_ranges <-
                  List.filter
                    (fun r ->
                      if (not !removed) && r = (base, len) then begin
                        removed := true;
                        false
                      end
                      else true)
                    th.private_ranges;
                charge th rt.cfg.cost.local_op;
                resume_with k ())
        | E_ranges -> Some (fun k -> resume_with k th.private_ranges)
        | E_ranges_of target ->
            Some (fun k -> guarded k (fun () -> ranges_of_thread (get_thread rt target)))
        | E_steps -> Some (fun k -> resume_with k rt.sim_stats.steps)
        | E_crash target ->
            Some
              (fun k ->
                charge th rt.cfg.cost.local_op;
                if target = th.tid then begin
                  (* self-crash: the continuation is abandoned, never resumed *)
                  ignore k;
                  do_crash rt th target
                end
                else guarded k (fun () -> do_crash rt th target))
        | E_stall (target, cycles) ->
            Some
              (fun k ->
                charge th rt.cfg.cost.local_op;
                (* set the continuation first: a self-stalling thread resumes
                   here when its deadline passes *)
                resume_with k ();
                do_stall rt th target cycles)
        | E_unstall target ->
            Some
              (fun k ->
                guarded k (fun () ->
                    let t = get_thread rt target in
                    (* retime the deadline to "now"; [wake_stalled] does the
                       actual wake (and emits Recovered) at the next
                       scheduling point, so release shares one code path
                       with bounded-stall expiry *)
                    if is_stalled t then t.stalled_until <- rt.now))
        | E_drop_signals (target, n) ->
            Some
              (fun k ->
                guarded k (fun () -> (get_thread rt target).drop_sigs <- max 0 n))
        | E_delay_signals (target, cycles) ->
            Some
              (fun k ->
                guarded k (fun () -> (get_thread rt target).sig_delay <- max 0 cycles))
        | E_wait_note n ->
            Some
              (fun k ->
                th.wait_note <- n;
                resume_with k ())
        | E_note msg ->
            Some
              (fun k ->
                emit rt th (Trace.Note { tid = th.tid; msg });
                resume_with k ())
        | E_is_crashed target ->
            Some (fun k -> guarded k (fun () -> (get_thread rt target).crashed))
        | E_is_stalled target ->
            Some (fun k -> guarded k (fun () -> is_stalled (get_thread rt target)))
        | E_clock_of target ->
            Some (fun k -> guarded k (fun () -> (get_thread rt target).clock))
        | E_neutralize e ->
            Some
              (fun k ->
                charge th rt.cfg.cost.local_op;
                th.abort_pending <- Some e;
                resume_with k ())
        | E_cancel_neutralize ->
            Some
              (fun k ->
                charge th rt.cfg.cost.local_op;
                th.abort_pending <- None;
                resume_with k ())
        | _ -> None));
  }

and new_thread : t -> (unit -> unit) -> thread =
 fun rt body ->
  let tid = rt.nthreads in
  let stack_base = Alloc.alloc_region rt.alloc rt.cfg.stack_words in
  let reg_base = Alloc.alloc_region rt.alloc rt.cfg.reg_words in
  let manual_save_base = Alloc.alloc_region rt.alloc rt.cfg.reg_words in
  let th =
    {
      tid;
      clock = 0;
      status = Ready;
      resume = None;
      saved = [];
      on_core = false;
      heap_pos = -1;
      core_since = 0;
      ever_scheduled = false;
      boosted = false;
      wants_yield = false;
      stack_base;
      stack_words = rt.cfg.stack_words;
      sp = stack_base;
      reg_base;
      reg_words = rt.cfg.reg_words;
      manual_save_base;
      sig_saves = [];
      save_pool = [];
      reg_cursor = 0;
      handler = None;
      pending = Queue.create ();
      sig_depth = 0;
      failure = None;
      rng = Splitmix.split rt.rng;
      private_ranges = [];
      stalled_until = -1;
      crashed = false;
      drop_sigs = 0;
      sig_delay = 0;
      wait_note = None;
      abort_pending = None;
      prio =
        (match rt.cfg.sched with
        | Pct _ -> 1 + Splitmix.below rt.rng 1_000_000_000
        | Timed | Uniform -> 0);
    }
  in
  th.resume <- Some (fun () -> Effect.Deep.match_with body () (make_handler rt th));
  if tid >= Array.length rt.threads then begin
    let cap = max 8 (2 * Array.length rt.threads) in
    let bigger = Array.make cap th in
    Array.blit rt.threads 0 bigger 0 tid;
    rt.threads <- bigger
  end;
  rt.threads.(tid) <- th;
  rt.nthreads <- rt.nthreads + 1;
  rt.live <- rt.live + 1;
  rt.sim_stats.spawns <- rt.sim_stats.spawns + 1;
  th

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

let deliver_signal rt th =
  match th.handler with
  | Some h
    when (not (Queue.is_empty th.pending))
         && Queue.peek th.pending <= th.clock
         && th.resume <> None ->
      ignore (Queue.pop th.pending);
      rt.sim_stats.signals_delivered <- rt.sim_stats.signals_delivered + 1;
      charge th rt.cfg.cost.signal_dispatch;
      (* The kernel saves the interrupted context; the handler scans this
         snapshot, not the registers its own execution clobbers. *)
      let save =
        match th.save_pool with
        | s :: rest ->
            th.save_pool <- rest;
            s
        | [] -> Alloc.alloc_region rt.alloc th.reg_words
      in
      copy_regs rt ~src:th.reg_base ~dst:save th.reg_words;
      th.sig_saves <- save :: th.sig_saves;
      th.sig_depth <- th.sig_depth + 1;
      emit rt th (Trace.Signal_delivered { tid = th.tid; depth = th.sig_depth });
      let interrupted = Option.get th.resume in
      th.saved <- interrupted :: th.saved;
      th.resume <- Some (fun () -> Effect.Deep.match_with h () (make_handler rt th))
  | _ -> ()

let capacity rt = if unlimited rt then max_int else rt.cfg.cores

let refill rt =
  while rt.nactive < capacity rt && ready_nonempty rt do
    match ready_pop rt with
    | None -> ()
    | Some th ->
        th.on_core <- true;
        th.boosted <- false;
        if th.ever_scheduled then begin
          if not (unlimited rt) then begin
            rt.sim_stats.ctx_switches <- rt.sim_stats.ctx_switches + 1;
            charge th rt.cfg.cost.context_switch
          end;
          emit rt th (Trace.Scheduled { tid = th.tid })
        end
        else emit rt th (Trace.Thread_started { tid = th.tid });
        th.ever_scheduled <- true;
        if th.clock < rt.now then th.clock <- rt.now;
        th.core_since <- th.clock;
        heap_push rt th
  done

(* PCT: strictly lower than every priority seen so far, so a demoted thread
   only runs once everyone above it is blocked or done. *)
let demote rt th =
  rt.floor_prio <- rt.floor_prio - 1;
  th.prio <- rt.floor_prio

(* While a critical section is open its owner runs next, if it can: the
   section must be scheduling-atomic.  An owner that was crashed clears
   the state in [do_crash]; an owner that was stalled mid-section cannot
   run, so the pin is waived rather than deadlocking the schedule (fault
   injection under the analyzer is best-effort by design). *)
let pinned_owner rt =
  if !crit_depth = 0 || !crit_tid < 0 || !crit_tid >= rt.nthreads then None
  else
    let th = rt.threads.(!crit_tid) in
    if th.status <> Done && th.on_core && th.resume <> None then Some th else None

let runnable_tids rt =
  let a = Array.init rt.nactive (fun i -> rt.heap.(i).tid) in
  Array.sort compare a;
  a

let policy_pick rt =
  rt.last_pick_policy <- true;
  match rt.cfg.sched with
  | Timed -> Some rt.heap.(0)
  | Uniform ->
      (* adversarial exploration: any active thread may step next.  The
         walk is still deterministic in the seed, and execution order
         still defines a sequentially consistent history. *)
      Some rt.heap.(Splitmix.below rt.rng rt.nactive)
  | Pct _ ->
      (* highest priority steps; at each change point the running thread
         drops below everyone, handing the schedule over *)
      let best = ref rt.heap.(0) in
      for i = 1 to rt.nactive - 1 do
        let th = rt.heap.(i) in
        if th.prio > !best.prio || (th.prio = !best.prio && th.tid < !best.tid) then best := th
      done;
      rt.sched_steps <- rt.sched_steps + 1;
      (match rt.pct_points with
      | cp :: rest when rt.sched_steps >= cp ->
          rt.pct_points <- rest;
          demote rt !best;
          emit rt !best (Trace.Priority_changed { tid = !best.tid; prio = !best.prio })
      | _ -> ());
      Some !best

(* Forced replay takes absolute precedence over pins, hook and policy: the
   log was recorded at these exact decision points, so re-applying it
   reproduces the run bit for bit.  Each log entry carries a "policy pick"
   bit; when set, the policy's side effects at that decision (the uniform
   scheduler's rng draw, PCT's change-point bookkeeping and demotion) are
   replicated so the rng stream and the trace stay byte-identical. *)
let forced_pick rt =
  if rt.sim_stats.steps >= rt.replay_limit then None
  else begin
    if rt.sim_stats.steps >= Vec.length rt.choice_log then
      raise (Sim_error "replay: choice log exhausted before its limit");
    let v = Vec.get rt.choice_log rt.sim_stats.steps in
    let tid = v lsr 1 in
    let th = get_thread rt tid in
    if th.status = Done || (not th.on_core) || th.resume = None then
      raise (Sim_error "replay: forced thread is not runnable");
    rt.last_pick_policy <- v land 1 = 1;
    if rt.last_pick_policy then begin
      match rt.cfg.sched with
      | Timed -> ()
      | Uniform -> ignore (Splitmix.below rt.rng rt.nactive : int)
      | Pct _ -> (
          rt.sched_steps <- rt.sched_steps + 1;
          match rt.pct_points with
          | cp :: rest when rt.sched_steps >= cp ->
              rt.pct_points <- rest;
              demote rt th;
              emit rt th (Trace.Priority_changed { tid = th.tid; prio = th.prio })
          | _ -> ())
    end;
    Some th
  end

(* The hook sees the sorted runnable tids and either forces one or returns
   a negative value to defer to the configured policy; deferring everywhere
   makes a hook-guided run identical to the plain run. *)
let hook_pick rt h =
  rt.my_crit <- (!crit_depth, !crit_tid);
  let tid = h rt (runnable_tids rt) in
  if tid < 0 then policy_pick rt
  else begin
    let th = get_thread rt tid in
    if th.status = Done || (not th.on_core) || th.resume = None then
      raise (Sim_error "scheduler hook chose a non-runnable thread");
    Some th
  end

let pick_next rt =
  if rt.nactive = 0 then None
  else begin
    rt.last_pick_policy <- false;
    match forced_pick rt with
    | Some th -> Some th
    | None -> (
        match pinned_owner rt with
        | Some th -> Some th
        | None -> (
            match rt.hook with
            | Some h when rt.nactive > 1 -> hook_pick rt h
            | Some _ | None -> policy_pick rt))
  end

let deschedule rt th =
  remove_active rt th;
  ready_push rt th;
  emit rt th (Trace.Descheduled { tid = th.tid })

let post_step rt th =
  if
    th.status <> Done && th.on_core
    && not (unlimited rt)
    && not (!crit_depth > 0 && !crit_tid = th.tid)
  then begin
    let others_waiting = ready_nonempty rt in
    if
      others_waiting
      && (th.wants_yield || rt.want_preempt || th.clock - th.core_since >= rt.cfg.quantum)
    then begin
      deschedule rt th;
      rt.want_preempt <- false
    end
  end;
  (* Under PCT a yield demotes: spin-wait loops (locks, ack waits, joins)
     always hand the schedule to whoever they are waiting for, so blocking
     protocols keep making progress under priority scheduling. *)
  (match rt.cfg.sched with
  | Pct _ when th.wants_yield && th.status <> Done -> demote rt th
  | _ -> ());
  th.wants_yield <- false;
  (* the stepped thread's clock advanced; restore the heap invariant *)
  if th.on_core && th.heap_pos >= 0 then sift_down rt th.heap_pos;
  rt.current <- -1

let step rt th =
  rt.current <- th.tid;
  cur_tid := th.tid;
  (* guided runs log the choice at its step index (low bit: whether the
     policy made it, see [forced_pick]); during forced replay the log
     already holds this prefix, so nothing is re-pushed *)
  if rt.guided && Vec.length rt.choice_log = rt.sim_stats.steps then
    Vec.push rt.choice_log ((th.tid lsl 1) lor Bool.to_int rt.last_pick_policy);
  deliver_signal rt th;
  if th.clock > rt.now then rt.now <- th.clock;
  rt.sim_stats.steps <- rt.sim_stats.steps + 1;
  if rt.sim_stats.steps > rt.cfg.max_steps then raise Step_limit_exceeded;
  (* a completion step performs no effect, so the handler never classifies
     it; thread exit wakes joiners, hence the Global default *)
  rt.step_fp <- Global;
  (match th.resume with
  | None -> raise (Sim_error "scheduled a thread with nothing to run")
  | Some f ->
      th.resume <- None;
      f ());
  (* the footprint is only known once the step ran: the suspension effect
     classified itself into [step_fp].  Same replay-idempotence guard as
     the choice log above (steps was already incremented). *)
  if rt.guided && Vec.length rt.fp_log = rt.sim_stats.steps - 1 then
    Vec.push rt.fp_log (encode_fp rt.step_fp);
  post_step rt th

(* ------------------------------------------------------------------ *)
(* Public API                                                         *)
(* ------------------------------------------------------------------ *)

let create cfg =
  (* stale pin state can only survive a run that crashed a fiber inside
     a critical section; never let it leak into the next run *)
  crit_depth := 0;
  crit_tid := -1;
  cur_tid := -1;
  let mem = Mem.create ~strict:cfg.strict_mem ~capacity_limit:cfg.mem_capacity () in
  (* max_threads for allocator caches: grown lazily via modulo mapping is
     wrong; instead size generously and let Alloc index by tid directly. *)
  let alloc = Alloc.create ~sanitize:cfg.sanitize ~magazine:cfg.magazine ~max_threads:4096 mem in
  let rng = Splitmix.create cfg.seed in
  let pct_points =
    match cfg.sched with
    | Pct { change_points; expected_steps } ->
        List.init change_points (fun _ -> 1 + Splitmix.below rng (max 1 expected_steps))
        |> List.sort_uniq compare
    | Timed | Uniform -> []
  in
  {
    cfg;
    mem;
    alloc;
    threads = [||];
    nthreads = 0;
    ready_front = [];
    ready_back = [];
    heap = [||];
    nactive = 0;
    live = 0;
    now = 0;
    want_preempt = false;
    started = false;
    sim_stats = make_stats ();
    rng;
    pct_points;
    floor_prio = 0;
    sched_steps = 0;
    current = -1;
    stalled = [];
    hook = None;
    guided = false;
    choice_log = Vec.create ();
    fp_log = Vec.create ();
    replay_limit = 0;
    replay_mute = false;
    trace_cursor = 0;
    initial_bodies = [];
    (* captured after the PCT draws and before any thread is created, so a
       rewind to this state replays thread-creation rng splits exactly *)
    init_rng = Splitmix.raw_state rng;
    init_pct_points = pct_points;
    entered = false;
    finished = false;
    step_fp = Global;
    last_pick_policy = false;
    my_crit = (0, -1);
  }

let add_thread rt body =
  if rt.started then invalid_arg "Runtime.add_thread: already started";
  rt.initial_bodies <- body :: rt.initial_bodies;
  let th = new_thread rt body in
  ready_push rt th;
  th.tid

let mem rt = rt.mem

let alloc rt = rt.alloc

let stats rt = rt.sim_stats

let running_tid rt = if rt.current >= 0 then Some rt.current else None

let thread_count rt = rt.nthreads

let collect_failures rt =
  let fs = ref [] in
  for i = rt.nthreads - 1 downto 0 do
    match rt.threads.(i).failure with
    | Some e -> fs := (i, e) :: !fs
    | None -> ()
  done;
  !fs

(* ---- the scheduler loop ----

   Structured around canonical decision points: [advance_phase] (wake
   stalled threads, refill cores) runs before *every* pick, so the state a
   scheduler hook or [savepoint] observes between steps is exactly the
   state a restore's replay lands on. *)

let advance_phase rt =
  wake_stalled rt;
  refill rt;
  if not (ready_nonempty rt) then rt.want_preempt <- false

(* Whether the run can still step; drives virtual time over stall gaps.
   Returns with the runtime at a decision point ([nactive > 0]) or with
   [finished] set. *)
let rec progress rt =
  if rt.finished then false
  else if rt.nactive > 0 then true
  else if rt.live = 0 then begin
    rt.finished <- true;
    false
  end
  else begin
    (* Nothing runnable.  If a stalled thread has a finite deadline, jump
       virtual time forward to the earliest wake-up.  If every remaining
       live thread is stalled forever, the run is over and they are
       reported as abandoned.  Anything else is a genuine deadlock: report
       who is blocked and on what. *)
    let next_wake =
      List.fold_left
        (fun acc th -> if th.stalled_until < acc then th.stalled_until else acc)
        max_int rt.stalled
    in
    if next_wake < max_int then begin
      rt.now <- max rt.now next_wake;
      advance_phase rt;
      progress rt
    end
    else if rt.stalled <> [] && List.length rt.stalled = rt.live then begin
      rt.finished <- true;
      false
    end
    else raise (Deadlock (blocked_summary rt))
  end

let step_once rt =
  match pick_next rt with
  | None -> raise (Sim_error "no runnable thread at a decision point")
  | Some th ->
      step rt th;
      advance_phase rt

(* Critical-section pin state lives in module-level refs shared by every
   runtime in the process (the [Ts_rt.ops] record is static); each runtime
   keeps its own copy in [my_crit] and swaps it in around its steps, so
   branched runtimes can be driven in any order. *)
let step_loop rt max_steps =
  if not rt.started then begin
    rt.started <- true;
    advance_phase rt
  end;
  let d, t = rt.my_crit in
  crit_depth := d;
  crit_tid := t;
  Fun.protect
    ~finally:(fun () -> rt.my_crit <- (!crit_depth, !crit_tid))
    (fun () ->
      let stop_at =
        if max_steps >= max_int - rt.sim_stats.steps then max_int
        else rt.sim_stats.steps + max_steps
      in
      let continue_ = ref (progress rt) in
      while !continue_ && rt.sim_stats.steps < stop_at do
        step_once rt;
        continue_ := progress rt
      done;
      !continue_)

let result_of rt =
  let abandoned =
    List.filter_map (fun th -> if th.status <> Done then Some th.tid else None) rt.stalled
    |> List.sort compare
  in
  let failures = collect_failures rt in
  (match failures with
  | (tid, e) :: _ when rt.cfg.propagate_failures -> raise (Thread_failure (tid, e))
  | _ -> ());
  { elapsed = rt.now; run_stats = rt.sim_stats; failures; abandoned }

let start rt =
  if rt.started then invalid_arg "Runtime.start: already started";
  ignore (step_loop rt max_int : bool);
  result_of rt

let run ?(config = default_config) main =
  let rt = create config in
  ignore (add_thread rt main);
  start rt

(* ------------------------------------------------------------------ *)
(* Savepoints: capture, digest, restore, branch                        *)
(* ------------------------------------------------------------------ *)

(* A savepoint is a *passive* deep copy of everything that defines the
   simulation state — heap words, allocator free lists, per-thread
   bookkeeping, scheduler queues, rng states, clocks, the trace cursor —
   plus the choice log that reaches it.  Fibers (one-shot OCaml
   continuations) cannot be copied, so [restore]/[branch] reconstruct the
   execution by deterministic replay from the initial state and then prove
   the reconstruction landed on the same state by digest comparison.  The
   copy is the oracle, the replay is the mechanism. *)

type thread_state = {
  ts_tid : int;
  ts_clock : int;
  ts_done : bool;
  ts_runnable : bool;
  ts_saved_depth : int;
  ts_on_core : bool;
  ts_core_since : int;
  ts_ever_scheduled : bool;
  ts_boosted : bool;
  ts_wants_yield : bool;
  ts_stack_base : int;
  ts_sp : int;
  ts_reg_base : int;
  ts_manual_save_base : int;
  ts_sig_saves : int list;
  ts_save_pool : int list;
  ts_reg_cursor : int;
  ts_has_handler : bool;
  ts_pending : int list;
  ts_sig_depth : int;
  ts_failed : bool;
  ts_rng : int64;
  ts_private_ranges : (int * int) list;
  ts_prio : int;
  ts_stalled_until : int;
  ts_crashed : bool;
  ts_drop_sigs : int;
  ts_sig_delay : int;
  ts_wait_note : string option;
  ts_abort_pending : bool;
}

type savepoint = {
  sp_steps : int;
  sp_guided : bool;
  sp_log : int array;
  sp_trace_cursor : int;
  sp_mem : Mem.snapshot;
  sp_alloc : Alloc.snapshot;
  sp_threads : thread_state array;
  sp_ready : int list;
  sp_active : int list; (* heap order *)
  sp_stalled : int list;
  sp_live : int;
  sp_now : int;
  sp_want_preempt : bool;
  sp_stats : int array;
  sp_rng : int64;
  sp_pct_points : int list;
  sp_floor_prio : int;
  sp_sched_steps : int;
  sp_crit : int * int;
}

let capture_thread th =
  {
    ts_tid = th.tid;
    ts_clock = th.clock;
    ts_done = (th.status = Done);
    ts_runnable = th.resume <> None;
    ts_saved_depth = List.length th.saved;
    ts_on_core = th.on_core;
    ts_core_since = th.core_since;
    ts_ever_scheduled = th.ever_scheduled;
    ts_boosted = th.boosted;
    ts_wants_yield = th.wants_yield;
    ts_stack_base = th.stack_base;
    ts_sp = th.sp;
    ts_reg_base = th.reg_base;
    ts_manual_save_base = th.manual_save_base;
    ts_sig_saves = th.sig_saves;
    ts_save_pool = th.save_pool;
    ts_reg_cursor = th.reg_cursor;
    ts_has_handler = th.handler <> None;
    ts_pending = Queue.fold (fun acc x -> x :: acc) [] th.pending |> List.rev;
    ts_sig_depth = th.sig_depth;
    ts_failed = th.failure <> None;
    ts_rng = Splitmix.raw_state th.rng;
    ts_private_ranges = th.private_ranges;
    ts_prio = th.prio;
    ts_stalled_until = th.stalled_until;
    ts_crashed = th.crashed;
    ts_drop_sigs = th.drop_sigs;
    ts_sig_delay = th.sig_delay;
    ts_wait_note = th.wait_note;
    ts_abort_pending = th.abort_pending <> None;
  }

let savepoint rt =
  if not rt.started then raise (Sim_error "Runtime.savepoint: run not started");
  if rt.current >= 0 then raise (Sim_error "Runtime.savepoint: only legal between steps");
  if rt.guided && Vec.length rt.choice_log <> rt.sim_stats.steps then
    raise (Sim_error "Runtime.savepoint: choice log does not cover the run");
  {
    sp_steps = rt.sim_stats.steps;
    sp_guided = rt.guided;
    sp_log = (if rt.guided then Vec.to_array rt.choice_log else [||]);
    sp_trace_cursor = rt.trace_cursor;
    sp_mem = Mem.snapshot rt.mem;
    sp_alloc = Alloc.snapshot rt.alloc;
    sp_threads = Array.init rt.nthreads (fun i -> capture_thread rt.threads.(i));
    sp_ready =
      List.map (fun th -> th.tid) rt.ready_front
      @ List.rev_map (fun th -> th.tid) rt.ready_back;
    sp_active = List.init rt.nactive (fun i -> rt.heap.(i).tid);
    sp_stalled = List.map (fun th -> th.tid) rt.stalled;
    sp_live = rt.live;
    sp_now = rt.now;
    sp_want_preempt = rt.want_preempt;
    sp_stats = stats_to_array rt.sim_stats;
    sp_rng = Splitmix.raw_state rt.rng;
    sp_pct_points = rt.pct_points;
    sp_floor_prio = rt.floor_prio;
    sp_sched_steps = rt.sched_steps;
    sp_crit = rt.my_crit;
  }

let savepoint_steps sp = sp.sp_steps

(* Deterministic serialisation of a savepoint; equal digests mean equal
   captured states.  Recomputed from the stored copies on every call, so a
   snapshot mutated through aliasing would change its digest. *)
let savepoint_digest sp =
  let buf = Buffer.create 65536 in
  let int i = Buffer.add_int64_ne buf (Int64.of_int i) in
  let i64 v = Buffer.add_int64_ne buf v in
  let flag b = int (Bool.to_int b) in
  let ints l =
    int (List.length l);
    List.iter int l
  in
  int sp.sp_steps;
  flag sp.sp_guided;
  int sp.sp_trace_cursor;
  Mem.snapshot_digest_into buf sp.sp_mem;
  Alloc.snapshot_digest_into buf sp.sp_alloc;
  int (Array.length sp.sp_threads);
  Array.iter
    (fun ts ->
      int ts.ts_tid;
      int ts.ts_clock;
      flag ts.ts_done;
      flag ts.ts_runnable;
      int ts.ts_saved_depth;
      flag ts.ts_on_core;
      int ts.ts_core_since;
      flag ts.ts_ever_scheduled;
      flag ts.ts_boosted;
      flag ts.ts_wants_yield;
      int ts.ts_stack_base;
      int ts.ts_sp;
      int ts.ts_reg_base;
      int ts.ts_manual_save_base;
      ints ts.ts_sig_saves;
      ints ts.ts_save_pool;
      int ts.ts_reg_cursor;
      flag ts.ts_has_handler;
      ints ts.ts_pending;
      int ts.ts_sig_depth;
      flag ts.ts_failed;
      i64 ts.ts_rng;
      int (List.length ts.ts_private_ranges);
      List.iter
        (fun (b, l) ->
          int b;
          int l)
        ts.ts_private_ranges;
      int ts.ts_prio;
      int ts.ts_stalled_until;
      flag ts.ts_crashed;
      int ts.ts_drop_sigs;
      int ts.ts_sig_delay;
      flag ts.ts_abort_pending;
      (match ts.ts_wait_note with
      | None -> int (-1)
      | Some s ->
          int (String.length s);
          Buffer.add_string buf s))
    sp.sp_threads;
  ints sp.sp_ready;
  ints sp.sp_active;
  ints sp.sp_stalled;
  int sp.sp_live;
  int sp.sp_now;
  flag sp.sp_want_preempt;
  Array.iter int sp.sp_stats;
  i64 sp.sp_rng;
  ints sp.sp_pct_points;
  int sp.sp_floor_prio;
  int sp.sp_sched_steps;
  let d, t = sp.sp_crit in
  int d;
  int t;
  Digest.string (Buffer.contents buf)

let state_digest rt = savepoint_digest (savepoint rt)

(* Rewind the runtime to the just-created state: heap, allocator, threads,
   queues, clocks, stats and rng all go back; the initial threads are
   re-created, which replays their creation-time rng splits exactly. *)
let reset_to_start rt =
  Mem.reset rt.mem;
  Alloc.reset rt.alloc;
  crit_depth := 0;
  crit_tid := -1;
  cur_tid := -1;
  rt.my_crit <- (0, -1);
  rt.threads <- [||];
  rt.nthreads <- 0;
  rt.ready_front <- [];
  rt.ready_back <- [];
  rt.heap <- [||];
  rt.nactive <- 0;
  rt.live <- 0;
  rt.now <- 0;
  rt.want_preempt <- false;
  reset_stats rt.sim_stats;
  Splitmix.set_raw_state rt.rng rt.init_rng;
  rt.pct_points <- rt.init_pct_points;
  rt.floor_prio <- 0;
  rt.sched_steps <- 0;
  rt.current <- -1;
  rt.stalled <- [];
  rt.finished <- false;
  rt.trace_cursor <- 0;
  Vec.clear rt.fp_log;
  List.iter (fun body -> ready_push rt (new_thread rt body)) (List.rev rt.initial_bodies)

let restore rt sp =
  if rt.current >= 0 then raise (Sim_error "Runtime.restore: only legal between steps");
  if not rt.started then raise (Sim_error "Runtime.restore: run not started");
  let was_mute = rt.replay_mute in
  rt.replay_mute <- true;
  Vec.clear rt.choice_log;
  if sp.sp_guided then begin
    Vec.append_array rt.choice_log sp.sp_log;
    rt.replay_limit <- sp.sp_steps
  end
  else rt.replay_limit <- 0;
  let finish () =
    rt.replay_limit <- 0;
    rt.replay_mute <- was_mute
  in
  (try
     reset_to_start rt;
     advance_phase rt;
     while rt.sim_stats.steps < sp.sp_steps && progress rt do
       step_once rt
     done
   with e ->
     finish ();
     raise e);
  finish ();
  rt.my_crit <- (!crit_depth, !crit_tid);
  if rt.sim_stats.steps <> sp.sp_steps then
    raise (Sim_error "Runtime.restore: replay ended before the savepoint");
  let emitted = rt.trace_cursor in
  rt.trace_cursor <- sp.sp_trace_cursor;
  if emitted <> sp.sp_trace_cursor then
    raise (Sim_error "Runtime.restore: trace drift during replay");
  if savepoint_digest (savepoint rt) <> savepoint_digest sp then
    raise (Sim_error "Runtime.restore: replay diverged from the savepoint")

(* A fresh runtime positioned at [sp]; the parent is untouched.  The two
   runtimes share no mutable state and may be driven independently (though
   not interleaved within one [critical] section, which cannot happen at a
   decision point anyway). *)
let branch rt sp =
  if not rt.started then raise (Sim_error "Runtime.branch: run not started");
  let rt2 = create rt.cfg in
  rt2.initial_bodies <- rt.initial_bodies;
  rt2.hook <- rt.hook;
  rt2.guided <- rt.guided;
  rt2.started <- true;
  restore rt2 sp;
  rt2

(* ------------------------------------------------------------------ *)
(* Guided scheduling                                                   *)
(* ------------------------------------------------------------------ *)

let set_scheduler_hook rt h =
  rt.hook <- h;
  match h with
  | Some _ ->
      if rt.started && Vec.length rt.choice_log <> rt.sim_stats.steps then
        raise (Sim_error "Runtime.set_scheduler_hook: run no longer replayable");
      rt.guided <- true
  | None -> ()

let preload_choices rt log =
  if rt.started then invalid_arg "Runtime.preload_choices: run already started";
  Vec.clear rt.choice_log;
  Vec.append_array rt.choice_log log;
  rt.guided <- true;
  rt.replay_limit <- Array.length log

let choices rt = Vec.to_array rt.choice_log

let choice_tid c = c lsr 1

let step_count rt = rt.sim_stats.steps

let trace_position rt = rt.trace_cursor

let last_footprint rt = rt.step_fp

let step_footprint rt i =
  if i < 0 || i >= Vec.length rt.fp_log then None else Some (decode_fp (Vec.get rt.fp_log i))

(* Effect-performing wrappers *)

let read addr = Effect.perform (E_read addr)

let write addr v = Effect.perform (E_write (addr, v))

let cas addr expected desired = Effect.perform (E_cas (addr, expected, desired))

let faa addr delta = Effect.perform (E_faa (addr, delta))

let fence () = Effect.perform E_fence

let malloc n = Effect.perform (E_malloc n)

let free addr = Effect.perform (E_free addr)

let alloc_region n = Effect.perform (E_region n)

let yield () = Effect.perform E_yield

let advance n = Effect.perform (E_advance n)

let now () = Effect.perform E_now

let self () = Effect.perform E_self

let rand_below n = Effect.perform (E_rand n)

let spawn f = Effect.perform (E_spawn f)

let join tid = Effect.perform (E_join tid)

let is_done tid = Effect.perform (E_is_done tid)

let signal tid = Effect.perform (E_signal tid)

let set_signal_handler f = Effect.perform (E_set_handler f)

let signal_depth () = Effect.perform E_sig_depth

let neutralize e = Effect.perform (E_neutralize e)

let cancel_neutralize () = Effect.perform E_cancel_neutralize

let push_frame n = Effect.perform (E_push_frame n)

let pop_frame base = Effect.perform (E_pop_frame base)

let stack_range () = Effect.perform E_stack_range

let reg_range () = Effect.perform E_reg_range

let save_regs () = Effect.perform E_save_regs

let saved_reg_range () = Effect.perform E_saved_reg_range

let clear_regs () = Effect.perform E_clear_regs

let add_private_range base len = Effect.perform (E_add_range (base, len))

let remove_private_range base len = Effect.perform (E_remove_range (base, len))

let private_ranges () = Effect.perform E_ranges

let scan_ranges_of tid = Effect.perform (E_ranges_of tid)

let steps_now () = Effect.perform E_steps

(* Fault injection *)

let crash tid = Effect.perform (E_crash tid)

let stall ?cycles tid = Effect.perform (E_stall (tid, cycles))

let unstall tid = Effect.perform (E_unstall tid)

let drop_signals tid n = Effect.perform (E_drop_signals (tid, n))

let delay_signals tid cycles = Effect.perform (E_delay_signals (tid, cycles))

let is_crashed tid = Effect.perform (E_is_crashed tid)

let is_stalled tid = Effect.perform (E_is_stalled tid)

let clock_of tid = Effect.perform (E_clock_of tid)

let set_wait_note n = Effect.perform (E_wait_note n)

let note msg = Effect.perform (E_note msg)

(* Backend registration: the whole algorithm stack calls [Ts_rt], which
   dispatches to whichever backend registered last.  The sim op wrappers
   above are plain [Effect.perform] closures, so the record is static;
   entering the simulator (create/start/run) re-installs it, which lets
   sim and native runs alternate freely within one process. *)

let rt_ops : Ts_rt.ops =
  {
    Ts_rt.read;
    write;
    cas;
    faa;
    fence;
    malloc;
    free;
    alloc_region;
    yield;
    advance;
    now;
    self;
    rand_below;
    steps_now;
    spawn;
    join;
    is_done;
    poll = (fun () -> ());
    signal;
    set_signal_handler;
    signal_depth;
    neutralize;
    cancel_neutralize;
    push_frame;
    pop_frame;
    stack_range;
    reg_range;
    save_regs;
    saved_reg_range;
    clear_regs;
    add_private_range;
    remove_private_range;
    private_ranges;
    scan_ranges_of;
    crash;
    stall = (fun cycles tid -> stall ?cycles tid);
    unstall;
    drop_signals;
    delay_signals;
    (* virtual time only: sleeping in the sim is just advancing *)
    sleep = advance;
    is_crashed;
    is_stalled;
    clock_of;
    set_wait_note;
    note;
    (* Exactly one fiber runs at a time, so mutual exclusion is free —
       but a decorator performing effects inside [critical] also needs
       the section to be scheduling-atomic, so the owner is pinned until
       the depth returns to zero (see [pinned_owner]). *)
    critical =
      (fun f ->
        if !crit_depth = 0 then crit_tid := !cur_tid;
        incr crit_depth;
        Fun.protect
          ~finally:(fun () ->
            decr crit_depth;
            if !crit_depth = 0 then crit_tid := -1)
          f);
  }

let create cfg =
  Ts_rt.install rt_ops;
  create cfg

let start rt =
  Ts_rt.install rt_ops;
  Ts_rt.enter_run ();
  Fun.protect ~finally:Ts_rt.exit_run (fun () -> start rt)

let run ?config main =
  Ts_rt.install rt_ops;
  Ts_rt.enter_run ();
  Fun.protect ~finally:Ts_rt.exit_run (fun () -> run ?config main)

(* Incremental driving: the first call takes the backend run bracket, the
   call that completes the run (or [finalize]) releases it.  A caller that
   abandons an unfinished run without calling [finalize] leaks the
   bracket. *)
let step_run rt ~max_steps =
  if not rt.entered then begin
    Ts_rt.install rt_ops;
    Ts_rt.enter_run ();
    rt.entered <- true
  end;
  let release () =
    Ts_rt.exit_run ();
    rt.entered <- false
  in
  match step_loop rt max_steps with
  | more ->
      if not more then release ();
      more
  | exception e ->
      release ();
      raise e

let finalize rt =
  if rt.entered then begin
    Ts_rt.exit_run ();
    rt.entered <- false
  end;
  result_of rt

let restore rt sp =
  Ts_rt.install rt_ops;
  restore rt sp

let branch rt sp =
  Ts_rt.install rt_ops;
  branch rt sp
