(** Structured execution traces.

    When {!Runtime.config.trace} is set, the scheduler reports scheduling
    decisions, signal traffic and thread lifecycle as timestamped entries —
    enough to reconstruct a ThreadScan phase timeline (see [bin/tstrace]).
    Traces are deterministic like everything else in the simulator. *)

type event =
  | Thread_started of { tid : int }  (** first time on a core *)
  | Thread_finished of { tid : int }
  | Scheduled of { tid : int }  (** placed on a core (after the first time) *)
  | Descheduled of { tid : int }  (** preempted or yielded while others wait *)
  | Signal_sent of { sender : int; target : int }
  | Signal_delivered of { tid : int; depth : int }
      (** handler pushed; [depth] counts nesting *)
  | Signal_returned of { tid : int }  (** handler finished, context restored *)
  | Priority_changed of { tid : int; prio : int }
      (** a PCT change point fired and demoted the running thread *)
  | Crashed of { tid : int }
      (** fault injection: the fiber was killed and never runs again *)
  | Stalled of { tid : int; until : int option }
      (** fault injection: descheduled until virtual time [until]
          ([None] = forever) *)
  | Recovered of { tid : int }  (** a stalled thread's deadline passed *)
  | Signal_dropped of { sender : int; target : int }
      (** fault injection: a signal was lost in delivery *)
  | Note of { tid : int; msg : string }
      (** free-form protocol annotation (suspects, reaps, takeovers) *)

type entry = { time : int; event : event }

val pp : Format.formatter -> entry -> unit

val recorder : unit -> (entry -> unit) * (unit -> entry list)
(** [recorder ()] returns a callback suitable for [config.trace] and a
    function retrieving everything recorded so far, in order. *)
