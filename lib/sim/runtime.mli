(** Deterministic simulated multiprocessor.

    Threads are OCaml 5 fibers; every shared-memory operation is an effect.
    The scheduler executes exactly one operation per step, always choosing
    the active thread with the smallest virtual clock, which yields a
    sequentially consistent interleaving whose timing follows the
    {!Cost_model}.  [cores] simulated cores are multiplexed among threads
    with a quantum and context-switch costs, reproducing oversubscription.

    POSIX-style signals: {!signal} enqueues a signal for a target thread; a
    handler fiber is pushed on top of the target's execution before its next
    step (handlers nest, as §4.2 of the paper describes).  A descheduled
    target is priority-boosted, modelling the kernel making a signaled
    thread runnable promptly.

    Every thread owns a shadow stack and a register file *inside the
    unmanaged heap*; the result of every load is automatically mirrored into
    the register file, so a value "in flight" between a load and its stack
    store is visible to conservative scans — the reason ThreadScan scans
    registers at all.

    A run is a pure function of its configuration (including [seed]): no
    wall clock, no global randomness. *)

type tid = int

exception Deadlock of string
exception Step_limit_exceeded
exception Thread_failure of tid * exn
exception Sim_error of string

(** {1 Configuration} *)

type sched =
  | Timed
      (** step the active thread with the smallest virtual clock — the
          default, cost-model-faithful interleaving *)
  | Uniform
      (** step a uniformly random active thread: timing stops being
          meaningful, but the seed-indexed family of runs explores far more
          interleavings — a lightweight model-checking mode *)
  | Pct of { change_points : int; expected_steps : int }
      (** PCT-style priority scheduling (Burckhardt et al., ASPLOS 2010):
          every thread gets a random priority at spawn and the
          highest-priority active thread always steps; at [change_points]
          step indices sampled uniformly in [\[1, expected_steps\]] the
          running thread's priority drops below everyone else's, which
          hits bugs of preemption depth [change_points + 1] with known
          probability.  A {!yield} also demotes the yielding thread, so
          spin-wait loops always hand the schedule to the thread they wait
          for — blocking protocols stay live under priority scheduling.
          Intended for [cores <= 0]. *)

type config = {
  cost : Cost_model.t;
  cores : int;  (** [<= 0] means one core per thread (never preempt) *)
  quantum : int;  (** cycles a thread may hold a core while others wait *)
  seed : int;
  stack_words : int;  (** shadow-stack size per thread *)
  reg_words : int;  (** register-file size per thread *)
  mem_capacity : int;  (** word limit of the unmanaged heap *)
  strict_mem : bool;  (** raise on memory faults (vs. count only) *)
  sanitize : bool;
      (** heap-sanitizer mode: the allocator adds canary words and
          allocation-generation counters (see {!Ts_umem.Alloc}); changes
          block layout, so off by default *)
  magazine : bool;
      (** per-thread allocator magazines (see {!Ts_umem.Alloc.create});
          [true] by default — the legacy allocator behaviour.  [false]
          routes every small malloc/free through the central free lists,
          the no-magazine baseline configuration. *)
  max_steps : int;  (** hard step bound, guards against livelock *)
  propagate_failures : bool;  (** re-raise the first thread failure after the run *)
  trace : (Trace.entry -> unit) option;
      (** scheduling/signal event stream (see {!Trace.recorder}) *)
  sched : sched;  (** scheduling policy (default {!Timed}) *)
}

val default_config : config

(** {1 Statistics} *)

type stats = {
  mutable steps : int;
  mutable reads : int;
  mutable writes : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable fences : int;
  mutable mallocs : int;
  mutable frees : int;
  mutable yields : int;
  mutable signals_sent : int;
  mutable signals_delivered : int;
  mutable ctx_switches : int;
  mutable spawns : int;
  mutable crashes : int;  (** fault injection: fibers killed via {!crash} *)
  mutable stalls : int;  (** fault injection: threads descheduled via {!stall} *)
  mutable signals_dropped : int;  (** fault injection: signals lost via {!drop_signals} *)
}

val pp_stats : Format.formatter -> stats -> unit

type result = {
  elapsed : int;  (** virtual cycles at the end of the run *)
  run_stats : stats;
  failures : (tid * exn) list;
  abandoned : tid list;
      (** threads stalled forever when every other thread had finished: the
          run ends (they can never step again) and they are reported here
          instead of raising {!Deadlock} *)
}

(** {1 Running} *)

type t

val create : config -> t

val add_thread : t -> (unit -> unit) -> tid
(** Register a thread before {!start}.  The first added thread has tid 0. *)

val start : t -> result
(** Runs until every thread has finished.  @raise Thread_failure (when
    [propagate_failures]), @raise Deadlock, @raise Step_limit_exceeded.
    The [Deadlock] payload lists every blocked thread and what it is
    blocked on (stall state, pending signals, and the {!set_wait_note}
    annotation protocols attach while spinning). *)

val blocked_summary : t -> string
(** The per-thread blocked-state report used as the {!Deadlock} payload;
    also useful for post-mortem diagnostics in tests. *)

val run : ?config:config -> (unit -> unit) -> result
(** [run main] = create + add main + start.  [main] can {!spawn} workers. *)

val mem : t -> Ts_umem.Mem.t
(** The unmanaged heap, for post-run assertions. *)

val alloc : t -> Ts_umem.Alloc.t

val stats : t -> stats

val thread_count : t -> int

val running_tid : t -> int option
(** The thread currently being stepped; [None] outside a step.  Lets
    fault hooks installed on {!mem} attribute a fault to a thread. *)

(** {1 Incremental stepping}

    An alternative to {!start} for checkers that interleave simulation
    with host-side work (taking savepoints, forking children): drive the
    run a bounded number of steps at a time. *)

val step_run : t -> max_steps:int -> bool
(** Execute up to [max_steps] scheduler steps; [true] while the run can
    continue.  The first call starts the run (like {!start}); when it
    returns [false] the run reached its end state and {!finalize} builds
    the result.  Raises exactly what {!start} raises. *)

val finalize : t -> result
(** The {!result} of a run driven with {!step_run}.  @raise Thread_failure
    when [propagate_failures] and a thread failed. *)

(** {1 Step footprints}

    What the most recent scheduler step touched — the commutativity
    information partial-order pruning needs. *)

type footprint =
  | Pure  (** only the stepping thread's private state; commutes with everything *)
  | Shared of { addr : int; write : bool }  (** one shared heap word *)
  | Global  (** conservative: assume interaction with every other thread *)

val conflicts : footprint -> footprint -> bool
(** Whether two adjacent steps by different threads may fail to commute.
    Over-approximate: [Global] conflicts with everything but [Pure]. *)

val last_footprint : t -> footprint
(** Footprint of the step that just executed. *)

val step_footprint : t -> int -> footprint option
(** [step_footprint rt i] — footprint of step [i] of a guided run
    ([None] if the run is not guided or step [i] has not executed).
    This is the happens-before data sleep-set pruning consumes. *)

(** {1 Savepoints}

    A savepoint is a passive deep copy of the entire simulation state:
    heap words, allocator free lists and generation counters, per-thread
    frames / shadow stacks / register bookkeeping / pending signals,
    scheduler queues, cost-model clocks, rng states and the trace cursor.
    OCaml fibers are one-shot and cannot be copied, so {!restore} and
    {!branch} reconstruct the execution by deterministic replay from the
    initial state — and then {e prove} the reconstruction is exact by
    comparing {!savepoint_digest}s, raising {!Sim_error} on any
    divergence.  The copy is the oracle; the replay is the mechanism.

    Replay re-executes the registered thread bodies, so host-side (OCaml
    heap) effects of the workload run again: workloads used with
    savepoints must keep their observable state in simulated memory. *)

type savepoint

val savepoint : t -> savepoint
(** Capture the current state.  Legal between steps — from a scheduler
    hook or between {!step_run} calls — once the run has started. *)

val savepoint_steps : savepoint -> int
(** The step count at which the savepoint was taken. *)

val savepoint_digest : savepoint -> string
(** Deterministic digest of the captured state; recomputed from the
    stored copy on every call.  Equal digests = equal states. *)

val state_digest : t -> string
(** [savepoint_digest] of the current state. *)

val restore : t -> savepoint -> unit
(** Rewind the runtime to the savepoint by reset + replay (trace emission
    muted during the replay; the cursor continues from the savepoint).
    @raise Sim_error if the replayed state's digest differs. *)

val branch : t -> savepoint -> t
(** A fresh runtime positioned at the savepoint; the parent is untouched
    and both can be driven independently with {!step_run}/{!restore}. *)

(** {1 Guided scheduling}

    The exploration interface: a hook decides which runnable thread steps
    at every decision point, every decision is recorded, and a recorded
    schedule can be replayed exactly — the checker's replay-from-seed
    oracle. *)

val set_scheduler_hook : t -> (t -> int array -> int) option -> unit
(** [set_scheduler_hook rt (Some h)] calls [h rt candidates] at every
    decision point with two or more runnable threads ([candidates] is the
    sorted tid array).  [h] returns the tid to step, or a negative value
    to defer to the configured {!sched} policy — so a hook that always
    defers observes the run without changing it.  Installing a hook makes
    the run {e guided}: every choice is logged (see {!choices}).  Not
    called while a critical-section pin or forced replay decides. *)

val preload_choices : t -> int array -> unit
(** Before the first step: force the scheduler to follow a log previously
    obtained from {!choices} — exact replay of a guided run, including
    the policy's rng draws.  @raise Sim_error if the log names a thread
    that is not runnable (the log belongs to a different workload). *)

val choices : t -> int array
(** The choice log of a guided run so far (opaque encoding; feed back via
    {!preload_choices}, inspect with {!choice_tid}). *)

val choice_tid : int -> tid
(** The thread id a choice-log entry stepped. *)

val step_count : t -> int
(** Scheduler steps executed so far. *)

val trace_position : t -> int
(** Trace entries emitted so far (including entries muted during a
    {!restore} replay) — the trace cursor a savepoint preserves. *)

(** {1 Operations (only valid inside a running thread)} *)

val read : int -> int
(** Shared-memory load of one word; the value is mirrored into the calling
    thread's register file. *)

val write : int -> int -> unit

val cas : int -> int -> int -> bool
(** [cas addr expected desired] — atomic compare-and-swap. *)

val faa : int -> int -> int
(** [faa addr delta] — atomic fetch-and-add, returns the previous value. *)

val fence : unit -> unit

val malloc : int -> int
(** Allocates [n] words from the simulated allocator; returns the block's
    base address. *)

val free : int -> unit

val alloc_region : int -> int
(** Permanent region (no header, never freed): global variables, buffers. *)

val yield : unit -> unit
(** Voluntarily relinquish the core when others are waiting. *)

val advance : int -> unit
(** Burn [n] cycles of pure computation (models local work / busy-wait). *)

val now : unit -> int
(** The calling thread's virtual clock. *)

val self : unit -> tid

val rand_below : int -> int
(** Deterministic per-thread random value in [\[0, n)]. *)

val steps_now : unit -> int
(** The global scheduler step count at this instant.  Every shared-memory
    operation is one step and execution is sequentially consistent in step
    order, so two step stamps totally order any two operations — the
    timestamps history recorders and linearizability checkers need. *)

val spawn : (unit -> unit) -> tid

val join : tid -> unit
(** Spin (with {!yield}) until the target finishes. *)

val is_done : tid -> bool

val signal : tid -> unit
(** Send the (single) simulated signal to a thread; its handler runs before
    that thread's next application step. *)

val set_signal_handler : (unit -> unit) -> unit
(** Install the calling thread's signal handler. *)

val signal_depth : unit -> int
(** How many nested signal handlers the calling thread is currently in. *)

val neutralize : exn -> unit
(** Called from inside a signal handler: arm a neutralization of the
    interrupted context.  Once every pending handler has returned, the
    thread raises [exn] at its next abortable effect (read / write / cas /
    faa / fence / malloc / yield — {e not} free or pop_frame, so cleanup
    code still runs).  A handler must use this instead of raising: a
    handler fiber that raises kills its thread. *)

val cancel_neutralize : unit -> unit
(** Clear any neutralization pending on the calling thread. *)

(** {1 Shadow stack, registers, private ranges} *)

val push_frame : int -> int
(** [push_frame n] reserves [n] zeroed shadow-stack slots; returns the frame
    base address.  @raise Sim_error on shadow-stack overflow. *)

val pop_frame : int -> unit
(** [pop_frame base] releases the frame pushed at [base].  Popped slots are
    deliberately not cleared: like a real stack, stale words linger and a
    conservative scan may see them. *)

val stack_range : unit -> int * int
(** [(base, sp)] of the calling thread — the live extent a scan must cover. *)

val reg_range : unit -> int * int
(** [(base, len)] of the calling thread's register file. *)

val save_regs : unit -> unit
(** Snapshot the calling thread's register file into its save area — what
    the kernel does implicitly on signal delivery.  A scanner that is about
    to clobber its own registers (the reclaimer scanning itself) calls this
    first. *)

val saved_reg_range : unit -> int * int
(** [(base, len)] of the register context a conservative scan must cover:
    inside a signal handler, the interrupted context saved at delivery
    (restored by the simulated [sigreturn] when the handler finishes);
    otherwise the snapshot taken by the last {!save_regs}. *)

val clear_regs : unit -> unit
(** Zero the calling thread's register file — a function deliberately
    clobbering its registers.  Used by end-of-run reclamation to drop the
    conservative pins its own register traffic would otherwise create. *)

val add_private_range : int -> int -> unit
(** Declare [(base, len)] as holding private references of the calling
    thread (the §4.3 heap-block extension's underlying registry). *)

val remove_private_range : int -> int -> unit

val private_ranges : unit -> (int * int) list

val scan_ranges_of : tid -> (int * int) list
(** All ranges a conservative scan of thread [tid] must cover: live stack,
    register file, saved register contexts (manual snapshot and any
    signal-time saves), registered private ranges.  Usable from any thread
    (the data is private to the runtime, not the target) — this is what a
    reclaimer proxy-scanning a crashed or stalled thread reads. *)

(** {1 Fault injection}

    Deterministic, seedable fault primitives for robustness testing.  All
    of them are ordinary effects performed by a running thread (a fault
    "injector" is just another thread), so every fault lands at a precise,
    reproducible point in the interleaving. *)

val crash : tid -> unit
(** Kill a thread's fiber at this instant: it never runs again, its stack
    and registers are left exactly as they were (no unwinding, no cleanup —
    like [SIGKILL] mid-instruction).  Pending signals are discarded.  The
    thread counts as finished for {!join}/{!is_done}.  Crashing yourself
    never returns.  Idempotent on already-finished threads. *)

val stall : ?cycles:int -> tid -> unit
(** Deschedule a thread: it takes no steps until [cycles] virtual cycles
    have passed (omitted = stalled forever).  Signals sent to a stalled
    thread pend and deliver on wake-up.  If every remaining thread is
    stalled forever the run ends and reports them in [result.abandoned].
    Stalling yourself resumes after the deadline.  No-op on finished or
    already-stalled threads. *)

val unstall : tid -> unit
(** Release a stalled thread early: its wake deadline is retimed to the
    current virtual time and it resumes (emitting
    {!Trace.event.Recovered}) at the next scheduling point.  This is the
    only way a [stall] with no [cycles] ends before the run does.  No-op
    on threads that are not stalled. *)

val drop_signals : tid -> int -> unit
(** The next [n] signals sent to the thread are silently lost (emitting
    {!Trace.event.Signal_dropped}). *)

val delay_signals : tid -> int -> unit
(** Subsequent signals sent to the thread deliver only once its clock
    reaches send-time + [cycles] ([0] restores prompt delivery). *)

val is_crashed : tid -> bool
(** Whether the thread was killed by {!crash} (distinguishes a crash from
    a normal exit, both of which satisfy {!is_done}). *)

val is_stalled : tid -> bool
(** Whether the thread is currently descheduled by {!stall}.  A stalled
    thread is frozen: until it wakes it takes no steps, so another thread
    may read its stack and registers without racing it. *)

val clock_of : tid -> int
(** The thread's virtual clock.  Every step it takes advances it, so an
    unchanged clock across two reads proves the thread ran nothing in
    between — how a proxy scanner checks its subject stayed frozen. *)

val set_wait_note : string option -> unit
(** Annotate the calling thread with what it is currently blocked on
    ("ack wait: phase 3", "spinning on lock\@1024"); shown by {!Deadlock}
    diagnostics and {!blocked_summary}.  Clear with [None] when done. *)

val note : string -> unit
(** Emit a free-form {!Trace.event.Note} entry on the trace stream — used
    by protocols to mark suspect/reap/takeover decisions on the timeline. *)
