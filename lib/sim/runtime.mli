(** Deterministic simulated multiprocessor.

    Threads are OCaml 5 fibers; every shared-memory operation is an effect.
    The scheduler executes exactly one operation per step, always choosing
    the active thread with the smallest virtual clock, which yields a
    sequentially consistent interleaving whose timing follows the
    {!Cost_model}.  [cores] simulated cores are multiplexed among threads
    with a quantum and context-switch costs, reproducing oversubscription.

    POSIX-style signals: {!signal} enqueues a signal for a target thread; a
    handler fiber is pushed on top of the target's execution before its next
    step (handlers nest, as §4.2 of the paper describes).  A descheduled
    target is priority-boosted, modelling the kernel making a signaled
    thread runnable promptly.

    Every thread owns a shadow stack and a register file *inside the
    unmanaged heap*; the result of every load is automatically mirrored into
    the register file, so a value "in flight" between a load and its stack
    store is visible to conservative scans — the reason ThreadScan scans
    registers at all.

    A run is a pure function of its configuration (including [seed]): no
    wall clock, no global randomness. *)

type tid = int

exception Deadlock of string
exception Step_limit_exceeded
exception Thread_failure of tid * exn
exception Sim_error of string

(** {1 Configuration} *)

type sched =
  | Timed
      (** step the active thread with the smallest virtual clock — the
          default, cost-model-faithful interleaving *)
  | Uniform
      (** step a uniformly random active thread: timing stops being
          meaningful, but the seed-indexed family of runs explores far more
          interleavings — a lightweight model-checking mode *)
  | Pct of { change_points : int; expected_steps : int }
      (** PCT-style priority scheduling (Burckhardt et al., ASPLOS 2010):
          every thread gets a random priority at spawn and the
          highest-priority active thread always steps; at [change_points]
          step indices sampled uniformly in [\[1, expected_steps\]] the
          running thread's priority drops below everyone else's, which
          hits bugs of preemption depth [change_points + 1] with known
          probability.  A {!yield} also demotes the yielding thread, so
          spin-wait loops always hand the schedule to the thread they wait
          for — blocking protocols stay live under priority scheduling.
          Intended for [cores <= 0]. *)

type config = {
  cost : Cost_model.t;
  cores : int;  (** [<= 0] means one core per thread (never preempt) *)
  quantum : int;  (** cycles a thread may hold a core while others wait *)
  seed : int;
  stack_words : int;  (** shadow-stack size per thread *)
  reg_words : int;  (** register-file size per thread *)
  mem_capacity : int;  (** word limit of the unmanaged heap *)
  strict_mem : bool;  (** raise on memory faults (vs. count only) *)
  sanitize : bool;
      (** heap-sanitizer mode: the allocator adds canary words and
          allocation-generation counters (see {!Ts_umem.Alloc}); changes
          block layout, so off by default *)
  max_steps : int;  (** hard step bound, guards against livelock *)
  propagate_failures : bool;  (** re-raise the first thread failure after the run *)
  trace : (Trace.entry -> unit) option;
      (** scheduling/signal event stream (see {!Trace.recorder}) *)
  sched : sched;  (** scheduling policy (default {!Timed}) *)
}

val default_config : config

(** {1 Statistics} *)

type stats = {
  mutable steps : int;
  mutable reads : int;
  mutable writes : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable fences : int;
  mutable mallocs : int;
  mutable frees : int;
  mutable yields : int;
  mutable signals_sent : int;
  mutable signals_delivered : int;
  mutable ctx_switches : int;
  mutable spawns : int;
  mutable crashes : int;  (** fault injection: fibers killed via {!crash} *)
  mutable stalls : int;  (** fault injection: threads descheduled via {!stall} *)
  mutable signals_dropped : int;  (** fault injection: signals lost via {!drop_signals} *)
}

val pp_stats : Format.formatter -> stats -> unit

type result = {
  elapsed : int;  (** virtual cycles at the end of the run *)
  run_stats : stats;
  failures : (tid * exn) list;
  abandoned : tid list;
      (** threads stalled forever when every other thread had finished: the
          run ends (they can never step again) and they are reported here
          instead of raising {!Deadlock} *)
}

(** {1 Running} *)

type t

val create : config -> t

val add_thread : t -> (unit -> unit) -> tid
(** Register a thread before {!start}.  The first added thread has tid 0. *)

val start : t -> result
(** Runs until every thread has finished.  @raise Thread_failure (when
    [propagate_failures]), @raise Deadlock, @raise Step_limit_exceeded.
    The [Deadlock] payload lists every blocked thread and what it is
    blocked on (stall state, pending signals, and the {!set_wait_note}
    annotation protocols attach while spinning). *)

val blocked_summary : t -> string
(** The per-thread blocked-state report used as the {!Deadlock} payload;
    also useful for post-mortem diagnostics in tests. *)

val run : ?config:config -> (unit -> unit) -> result
(** [run main] = create + add main + start.  [main] can {!spawn} workers. *)

val mem : t -> Ts_umem.Mem.t
(** The unmanaged heap, for post-run assertions. *)

val alloc : t -> Ts_umem.Alloc.t

val stats : t -> stats

val thread_count : t -> int

val running_tid : t -> int option
(** The thread currently being stepped; [None] outside a step.  Lets
    fault hooks installed on {!mem} attribute a fault to a thread. *)

(** {1 Operations (only valid inside a running thread)} *)

val read : int -> int
(** Shared-memory load of one word; the value is mirrored into the calling
    thread's register file. *)

val write : int -> int -> unit

val cas : int -> int -> int -> bool
(** [cas addr expected desired] — atomic compare-and-swap. *)

val faa : int -> int -> int
(** [faa addr delta] — atomic fetch-and-add, returns the previous value. *)

val fence : unit -> unit

val malloc : int -> int
(** Allocates [n] words from the simulated allocator; returns the block's
    base address. *)

val free : int -> unit

val alloc_region : int -> int
(** Permanent region (no header, never freed): global variables, buffers. *)

val yield : unit -> unit
(** Voluntarily relinquish the core when others are waiting. *)

val advance : int -> unit
(** Burn [n] cycles of pure computation (models local work / busy-wait). *)

val now : unit -> int
(** The calling thread's virtual clock. *)

val self : unit -> tid

val rand_below : int -> int
(** Deterministic per-thread random value in [\[0, n)]. *)

val steps_now : unit -> int
(** The global scheduler step count at this instant.  Every shared-memory
    operation is one step and execution is sequentially consistent in step
    order, so two step stamps totally order any two operations — the
    timestamps history recorders and linearizability checkers need. *)

val spawn : (unit -> unit) -> tid

val join : tid -> unit
(** Spin (with {!yield}) until the target finishes. *)

val is_done : tid -> bool

val signal : tid -> unit
(** Send the (single) simulated signal to a thread; its handler runs before
    that thread's next application step. *)

val set_signal_handler : (unit -> unit) -> unit
(** Install the calling thread's signal handler. *)

val signal_depth : unit -> int
(** How many nested signal handlers the calling thread is currently in. *)

(** {1 Shadow stack, registers, private ranges} *)

val push_frame : int -> int
(** [push_frame n] reserves [n] zeroed shadow-stack slots; returns the frame
    base address.  @raise Sim_error on shadow-stack overflow. *)

val pop_frame : int -> unit
(** [pop_frame base] releases the frame pushed at [base].  Popped slots are
    deliberately not cleared: like a real stack, stale words linger and a
    conservative scan may see them. *)

val stack_range : unit -> int * int
(** [(base, sp)] of the calling thread — the live extent a scan must cover. *)

val reg_range : unit -> int * int
(** [(base, len)] of the calling thread's register file. *)

val save_regs : unit -> unit
(** Snapshot the calling thread's register file into its save area — what
    the kernel does implicitly on signal delivery.  A scanner that is about
    to clobber its own registers (the reclaimer scanning itself) calls this
    first. *)

val saved_reg_range : unit -> int * int
(** [(base, len)] of the register context a conservative scan must cover:
    inside a signal handler, the interrupted context saved at delivery
    (restored by the simulated [sigreturn] when the handler finishes);
    otherwise the snapshot taken by the last {!save_regs}. *)

val clear_regs : unit -> unit
(** Zero the calling thread's register file — a function deliberately
    clobbering its registers.  Used by end-of-run reclamation to drop the
    conservative pins its own register traffic would otherwise create. *)

val add_private_range : int -> int -> unit
(** Declare [(base, len)] as holding private references of the calling
    thread (the §4.3 heap-block extension's underlying registry). *)

val remove_private_range : int -> int -> unit

val private_ranges : unit -> (int * int) list

val scan_ranges_of : tid -> (int * int) list
(** All ranges a conservative scan of thread [tid] must cover: live stack,
    register file, saved register contexts (manual snapshot and any
    signal-time saves), registered private ranges.  Usable from any thread
    (the data is private to the runtime, not the target) — this is what a
    reclaimer proxy-scanning a crashed or stalled thread reads. *)

(** {1 Fault injection}

    Deterministic, seedable fault primitives for robustness testing.  All
    of them are ordinary effects performed by a running thread (a fault
    "injector" is just another thread), so every fault lands at a precise,
    reproducible point in the interleaving. *)

val crash : tid -> unit
(** Kill a thread's fiber at this instant: it never runs again, its stack
    and registers are left exactly as they were (no unwinding, no cleanup —
    like [SIGKILL] mid-instruction).  Pending signals are discarded.  The
    thread counts as finished for {!join}/{!is_done}.  Crashing yourself
    never returns.  Idempotent on already-finished threads. *)

val stall : ?cycles:int -> tid -> unit
(** Deschedule a thread: it takes no steps until [cycles] virtual cycles
    have passed (omitted = stalled forever).  Signals sent to a stalled
    thread pend and deliver on wake-up.  If every remaining thread is
    stalled forever the run ends and reports them in [result.abandoned].
    Stalling yourself resumes after the deadline.  No-op on finished or
    already-stalled threads. *)

val drop_signals : tid -> int -> unit
(** The next [n] signals sent to the thread are silently lost (emitting
    {!Trace.event.Signal_dropped}). *)

val delay_signals : tid -> int -> unit
(** Subsequent signals sent to the thread deliver only once its clock
    reaches send-time + [cycles] ([0] restores prompt delivery). *)

val is_crashed : tid -> bool
(** Whether the thread was killed by {!crash} (distinguishes a crash from
    a normal exit, both of which satisfy {!is_done}). *)

val is_stalled : tid -> bool
(** Whether the thread is currently descheduled by {!stall}.  A stalled
    thread is frozen: until it wakes it takes no steps, so another thread
    may read its stack and registers without racing it. *)

val clock_of : tid -> int
(** The thread's virtual clock.  Every step it takes advances it, so an
    unchanged clock across two reads proves the thread ran nothing in
    between — how a proxy scanner checks its subject stayed frozen. *)

val set_wait_note : string option -> unit
(** Annotate the calling thread with what it is currently blocked on
    ("ack wait: phase 3", "spinning on lock\@1024"); shown by {!Deadlock}
    diagnostics and {!blocked_summary}.  Clear with [None] when done. *)

val note : string -> unit
(** Emit a free-form {!Trace.event.Note} entry on the trace stream — used
    by protocols to mark suspect/reap/takeover decisions on the timeline. *)
