type event =
  | Thread_started of { tid : int }
  | Thread_finished of { tid : int }
  | Scheduled of { tid : int }
  | Descheduled of { tid : int }
  | Signal_sent of { sender : int; target : int }
  | Signal_delivered of { tid : int; depth : int }
  | Signal_returned of { tid : int }
  | Priority_changed of { tid : int; prio : int }
  | Crashed of { tid : int }
  | Stalled of { tid : int; until : int option }
  | Recovered of { tid : int }
  | Signal_dropped of { sender : int; target : int }
  | Note of { tid : int; msg : string }

type entry = { time : int; event : event }

let pp ppf { time; event } =
  let p fmt = Fmt.pf ppf ("%10d  " ^^ fmt) time in
  match event with
  | Thread_started { tid } -> p "thread %d started" tid
  | Thread_finished { tid } -> p "thread %d finished" tid
  | Scheduled { tid } -> p "thread %d scheduled onto a core" tid
  | Descheduled { tid } -> p "thread %d descheduled" tid
  | Signal_sent { sender; target } -> p "thread %d signaled thread %d" sender target
  | Signal_delivered { tid; depth } -> p "thread %d entered its handler (depth %d)" tid depth
  | Signal_returned { tid } -> p "thread %d returned from its handler" tid
  | Priority_changed { tid; prio } -> p "thread %d demoted to priority %d" tid prio
  | Crashed { tid } -> p "thread %d crashed (fiber killed, never runs again)" tid
  | Stalled { tid; until = Some t } -> p "thread %d stalled until t=%d" tid t
  | Stalled { tid; until = None } -> p "thread %d stalled forever" tid
  | Recovered { tid } -> p "thread %d recovered from its stall" tid
  | Signal_dropped { sender; target } -> p "signal from thread %d to thread %d dropped" sender target
  | Note { tid; msg } -> p "thread %d: %s" tid msg

let recorder () =
  let entries = ref [] in
  let record e = entries := e :: !entries in
  (record, fun () -> List.rev !entries)
