(** Happens-before race detector + SMR lifecycle sanitizer over the
    {!Ts_rt} op stream.

    Attach before a run; every unmanaged read/write/cas/faa, fence,
    spawn/join, signal and critical section of either backend is then
    observed through an ops decorator (see {!Ts_rt.set_decorator}).
    One analyzer instance covers one run; create a fresh one per run.

    The happens-before model is TSO-faithful: writes release the
    writer's full vector clock into a per-word sync clock, reads (and
    failed CASes) acquire it, and spawn/join/signal-delivery/critical/
    fence add the usual edges.  Reported conflicts are unordered
    write-write pairs (different values) and free-vs-unordered-access;
    racy reads of live words are stale-but-defined on a word-atomic
    machine and are not reported.  docs/ANALYSIS.md documents the model
    and its limits (fault injection, native best-effort ordering).

    In the simulator the instrumented run is deterministic: the same
    seed yields a byte-identical report (note: the analyzer performs
    extra ops, so analyzed schedules differ from unanalyzed ones). *)

type t

(** {1 Reports} *)

type access = { a_tid : int; a_clk : int; a_op : string }

type race = {
  rc_addr : int;  (** the word both accesses touched *)
  rc_alloc : (int * int) option;  (** (allocation id, word offset) if inside a tracked block *)
  rc_first : access;
  rc_second : access;
}

type lifecycle_kind = Retire_before_unlink | Double_retire | Access_after_retire

type lifecycle = {
  lc_kind : lifecycle_kind;
  lc_scheme : string;  (** scheme owning the violated transition *)
  lc_tid : int;  (** thread that committed the violation *)
  lc_base : int;  (** block base address *)
  lc_alloc : int;  (** allocation id *)
  lc_detail : string;
}

type violation = Race of race | Lifecycle of lifecycle

val kind_to_string : lifecycle_kind -> string
val pp_race : Format.formatter -> race -> unit
val pp_lifecycle : Format.formatter -> lifecycle -> unit
val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** {1 Lifecycle of an analysis} *)

val attach : ?max_reports:int -> ?notes:bool -> unit -> t
(** Create an analyzer and install it as the ops decorator (replacing
    any previous one).  [max_reports] (default 32) caps recorded
    violations; later ones are counted in {!dropped}.  [notes] (default
    true) emits each violation through the backend's [note] op as it is
    detected, so TSCHECK_TRACE and tstrace timelines show the racing
    access inline. *)

val detach : t -> unit
(** Remove the decorator.  The analyzer's report remains readable. *)

val wrap_smr : t -> Ts_smr.Smr.t -> Ts_smr.Smr.t
(** Instrument a reclamation scheme: retire feeds the lifecycle
    automaton, protect/release maintain the hazard table,
    op_begin/op_end the epoch section flag, and all hook bodies run
    flagged as scheme-internal (their stores do not count as shared
    references). *)

(** {1 Results} *)

val violations : t -> violation list
(** In detection order (deterministic in the simulator). *)

val races : t -> race list
val lifecycle_violations : t -> lifecycle list
val ops_seen : t -> int
val allocs_seen : t -> int

val dropped : t -> int
(** Violations beyond [max_reports]. *)

val pp_summary : Format.formatter -> t -> unit

val report_to_string : t -> string
(** Summary line followed by one line per violation. *)
