(* Happens-before race detector + SMR lifecycle sanitizer.

   Implemented as a decorator over the installed backend's [Ts_rt.ops]
   record: every unmanaged-memory access, spawn/join, signal and
   critical section flows through here, on either backend, without a
   single data-structure line changing.

   Memory model (docs/ANALYSIS.md has the long version): the detector
   renders x86-TSO, the machine the paper targets.

   - Program order: each thread carries a vector clock, bumped per op.
   - Reads-from edges carry the writer's FULL clock: a TSO store buffer
     drains in order, so a read observing write W also observes W's
     thread's entire program prefix.  Concretely, every write releases
     the writer's whole clock into a per-word sync clock and every read
     (including CAS failures and spin reads) acquires it.
   - spawn/join, signal delivery, [critical] sections, a true
     [is_done]/[is_crashed]/[is_stalled] answer, and [fence] (via one
     global fence clock) are further release/acquire pairs.

   Reported conflicts are (a) write-write on the same word where the
   previous write's epoch is not covered by the writer's clock —
   excepting same-value stores (idempotent flag/mark stores are how
   ThreadScan's handlers talk) and pairs where both stores come from
   inside an Smr hook (scheme-internal protocol memory, e.g. the
   reclaimer-takeover path, is managed by the scheme's own generation
   discipline, not by happens-before) — and (b) free-vs-any-access: freeing a
   block whose last write or any unordered read is not behind the
   freeing thread.  Read-write conflicts are deliberately not reported:
   every simulated word is a machine word with atomic access, so a racy
   read is a stale read, not undefined behaviour; it only becomes a bug
   when the block is freed under the reader, which (b) catches.

   Last accesses use the FastTrack adaptive representation: one
   (tid, clock) epoch per word for the last write and for the last read,
   escalating the read side to a full vector clock only when genuinely
   concurrent reads accumulate.

   The lifecycle automaton tracks every allocation through
   allocated -> published -> unlinked -> retired -> freed, counting
   incoming references from shared memory (region words and words of
   published blocks; shadow-stack frames, registered private ranges and
   scheme-internal buffers are roots, not links — retiring a node the
   reclaimer can still see in a frame is ThreadScan's whole point).
   Flagged: retire with live counted references (retire-before-unlink),
   retire of an already-retired or freed block (double-retire), and a
   word access inside a retired block by a thread the owning scheme does
   not protect (access-after-retire): under hazard pointers the accessor
   must hold a protect slot on the block, under epoch schemes it must be
   inside an op_begin/op_end section; schemes with invisible readers
   (threadscan, leaky, stacktrack) permit such reads by design.

   Thread safety: all analyzer state is mutated inside the backend's own
   [critical] (a no-op in the deterministic simulator, the global mutex
   natively).  On the native backend each memory op performs its effect
   and its analysis inside one critical section, so the recorded order
   is an order the machine really executed — heavy serialization, but
   --analyze is a checking mode, not a benchmarking mode. *)

module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                      *)
(* ------------------------------------------------------------------ *)

module Vc = struct
  type t = { mutable a : int array }

  let create () = { a = Array.make 8 0 }

  let ensure t n =
    if n >= Array.length t.a then begin
      let b = Array.make (max (n + 1) (2 * Array.length t.a)) 0 in
      Array.blit t.a 0 b 0 (Array.length t.a);
      t.a <- b
    end

  let get t i = if i >= 0 && i < Array.length t.a then t.a.(i) else 0

  let set t i v =
    ensure t i;
    t.a.(i) <- v

  let join dst src =
    let n = Array.length src.a in
    if n > 0 then ensure dst (n - 1);
    for i = 0 to n - 1 do
      if src.a.(i) > dst.a.(i) then dst.a.(i) <- src.a.(i)
    done

  let copy src = { a = Array.copy src.a }
  let covers t ~tid ~clk = get t tid >= clk
end

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

type lifecycle_state =
  | Alive
  | Retired of { r_scheme : string; r_tid : int; r_access : Smr.retired_access }
  | Freed

type alloc = {
  al_id : int;  (* allocation sequence number, deterministic in the sim *)
  al_base : int;
  al_words : int;
  al_creator : int;
  mutable al_refs : int;  (* counted incoming references *)
  mutable al_published : bool;
  mutable al_state : lifecycle_state;
}

type word = {
  mutable wr_tid : int;  (* -1 = never written *)
  mutable wr_clk : int;
  mutable wr_op : string;
  mutable wr_val : int;
  mutable wr_scheme : bool;  (* last write came from inside an Smr hook *)
  mutable rd_tid : int;  (* -1 = never read, -2 = escalated to vector *)
  mutable rd_clk : int;
  mutable rd_vc : Vc.t option;
  mutable sync : Vc.t option;  (* accumulated release clock of all writers *)
  mutable owner : alloc option;
  mutable target : alloc option;  (* allocation this word's value points at *)
  mutable counted : bool;  (* does [target] count toward al_refs? *)
}

type thread = {
  th_tid : int;
  vc : Vc.t;
  mutable frames : (int * int) list;  (* active shadow-stack frames *)
  mutable priv : (int * int) list;  (* registered private ranges *)
  mutable scheme_depth : int;  (* inside an Smr hook body *)
  mutable in_op : bool;  (* between op_begin and op_end *)
  protects : (int, int) Hashtbl.t;  (* protect slot -> protected block base *)
}

type access = { a_tid : int; a_clk : int; a_op : string }

type race = {
  rc_addr : int;
  rc_alloc : (int * int) option;  (* (allocation id, word offset) *)
  rc_first : access;
  rc_second : access;
}

type lifecycle_kind = Retire_before_unlink | Double_retire | Access_after_retire

type lifecycle = {
  lc_kind : lifecycle_kind;
  lc_scheme : string;
  lc_tid : int;
  lc_base : int;
  lc_alloc : int;
  lc_detail : string;
}

type violation = Race of race | Lifecycle of lifecycle

type t = {
  mutable orig : Ts_rt.ops option;  (* the ops being decorated *)
  threads : (int, thread) Hashtbl.t;
  words : (int, word) Hashtbl.t;
  allocs : (int, alloc) Hashtbl.t;  (* live block base -> alloc *)
  chans : (int, Vc.t) Hashtbl.t;  (* signal channel per target tid *)
  fence_vc : Vc.t;
  crit_vc : Vc.t;
  mutable crit_owner : int;  (* tid holding the analyzer's critical section *)
  mutable next_alloc : int;
  mutable n_allocs : int;
  mutable ops_seen : int;
  raced : (int, unit) Hashtbl.t;  (* word addrs already reported *)
  flagged : (int, unit) Hashtbl.t;  (* alloc ids with access-after-retire *)
  mutable viols : violation list;  (* reversed *)
  mutable n_viols : int;
  mutable dropped : int;
  max_reports : int;
  notes : bool;
}

let create ?(max_reports = 32) ?(notes = true) () =
  {
    orig = None;
    threads = Hashtbl.create 16;
    words = Hashtbl.create 1024;
    allocs = Hashtbl.create 256;
    chans = Hashtbl.create 16;
    fence_vc = Vc.create ();
    crit_vc = Vc.create ();
    crit_owner = -1;
    next_alloc = 0;
    n_allocs = 0;
    ops_seen = 0;
    raced = Hashtbl.create 8;
    flagged = Hashtbl.create 8;
    viols = [];
    n_viols = 0;
    dropped = 0;
    max_reports;
    notes;
  }

let thread an tid =
  match Hashtbl.find_opt an.threads tid with
  | Some th -> th
  | None ->
      let th =
        {
          th_tid = tid;
          vc = Vc.create ();
          frames = [];
          priv = [];
          scheme_depth = 0;
          in_op = false;
          protects = Hashtbl.create 4;
        }
      in
      Vc.set th.vc tid 1;
      Hashtbl.add an.threads tid th;
      th

let word an addr =
  match Hashtbl.find_opt an.words addr with
  | Some w -> w
  | None ->
      let w =
        {
          wr_tid = -1;
          wr_clk = 0;
          wr_op = "";
          wr_val = 0;
          wr_scheme = false;
          rd_tid = -1;
          rd_clk = 0;
          rd_vc = None;
          sync = None;
          owner = None;
          target = None;
          counted = false;
        }
      in
      Hashtbl.add an.words addr w;
      w

let chan an tid =
  match Hashtbl.find_opt an.chans tid with
  | Some v -> v
  | None ->
      let v = Vc.create () in
      Hashtbl.add an.chans tid v;
      v

(* Reentrancy-aware mutual exclusion for analyzer state.  Signal
   handlers run from the poll inside a delegated op, i.e. while the
   interrupted op still holds the section; [crit_owner] lets the
   handler's ops analyze without re-taking the (non-reentrant native)
   mutex.  The unlocked read is safe: only thread [tid] ever stores
   [tid] there, and it clears it before unlocking. *)
let with_crit an (o : Ts_rt.ops) tid f =
  if an.crit_owner = tid then f ()
  else
    (* tslint: allow sigsafe -- the crit_owner guard above makes the handler path re-entry-safe: a thread interrupted inside the bracket still owns it and skips the lock *)
    o.critical (fun () ->
        an.crit_owner <- tid;
        Fun.protect ~finally:(fun () -> an.crit_owner <- -1) f)

let tick th =
  let c = Vc.get th.vc th.th_tid + 1 in
  Vc.set th.vc th.th_tid c;
  c

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Retire_before_unlink -> "retire-before-unlink"
  | Double_retire -> "double-retire"
  | Access_after_retire -> "access-after-retire"

let pp_access ppf a = Fmt.pf ppf "t%d %s@%d" a.a_tid a.a_op a.a_clk

let pp_race ppf r =
  let pp_where ppf () =
    match r.rc_alloc with
    | Some (id, off) -> Fmt.pf ppf "word %d (alloc #%d+%d)" r.rc_addr id off
    | None -> Fmt.pf ppf "word %d" r.rc_addr
  in
  Fmt.pf ppf "race on %a: %a vs %a" pp_where () pp_access r.rc_first pp_access r.rc_second

let pp_lifecycle ppf l =
  Fmt.pf ppf "lifecycle [%s] %s: alloc #%d (base %d) by t%d: %s" l.lc_scheme
    (kind_to_string l.lc_kind) l.lc_alloc l.lc_base l.lc_tid l.lc_detail

let pp_violation ppf = function
  | Race r -> pp_race ppf r
  | Lifecycle l -> pp_lifecycle ppf l

let violation_to_string v = Fmt.str "%a" pp_violation v

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let add_violation an v =
  if an.n_viols < an.max_reports then begin
    an.viols <- v :: an.viols;
    an.n_viols <- an.n_viols + 1;
    if an.notes then
      match an.orig with
      | Some o -> o.note (Fmt.str "analyze: %a" pp_violation v)
      | None -> ()
  end
  else an.dropped <- an.dropped + 1

let word_alloc_info w addr =
  match w.owner with Some a -> Some (a.al_id, addr - a.al_base) | None -> None

let report_race an ~addr ~first ~second w =
  if not (Hashtbl.mem an.raced addr) then begin
    Hashtbl.replace an.raced addr ();
    add_violation an
      (Race { rc_addr = addr; rc_alloc = word_alloc_info w addr; rc_first = first; rc_second = second })
  end

(* ------------------------------------------------------------------ *)
(* Happens-before bookkeeping                                         *)
(* ------------------------------------------------------------------ *)

let acquire th w = match w.sync with Some s -> Vc.join th.vc s | None -> ()

let release th w =
  match w.sync with
  | Some s -> Vc.join s th.vc
  | None -> w.sync <- Some (Vc.copy th.vc)

let record_read th w =
  let tid = th.th_tid in
  let clk = Vc.get th.vc tid in
  match w.rd_tid with
  | -2 -> Vc.set (Option.get w.rd_vc) tid clk
  | t when t = tid || t < 0 ->
      w.rd_tid <- tid;
      w.rd_clk <- clk
  | t ->
      if Vc.covers th.vc ~tid:t ~clk:w.rd_clk then begin
        w.rd_tid <- tid;
        w.rd_clk <- clk
      end
      else begin
        let v = match w.rd_vc with Some v -> v | None -> Vc.create () in
        Vc.set v t w.rd_clk;
        Vc.set v tid clk;
        w.rd_vc <- Some v;
        w.rd_tid <- -2
      end

(* Write-write conflicts where BOTH stores come from inside an Smr hook
   are protocol memory, not data: a reclamation scheme is free to run
   deliberately racy internal protocols (ThreadScan's reclaimer takeover
   overwrites a stalled peer's work queue and heartbeat by design,
   guarded by generation checks rather than happens-before).  Those
   words are managed — the analyzer's charter is the unmanaged ones. *)
let check_write_race an th w addr op v =
  if
    w.wr_tid >= 0 && w.wr_tid <> th.th_tid && v <> w.wr_val
    && not (w.wr_scheme && th.scheme_depth > 0)
    && not (Vc.covers th.vc ~tid:w.wr_tid ~clk:w.wr_clk)
  then
    report_race an ~addr
      ~first:{ a_tid = w.wr_tid; a_clk = w.wr_clk; a_op = w.wr_op }
      ~second:{ a_tid = th.th_tid; a_clk = Vc.get th.vc th.th_tid; a_op = op }
      w

let record_write th w op v =
  w.wr_tid <- th.th_tid;
  w.wr_clk <- Vc.get th.vc th.th_tid;
  w.wr_op <- op;
  w.wr_val <- v;
  w.wr_scheme <- th.scheme_depth > 0

(* ------------------------------------------------------------------ *)
(* Lifecycle automaton                                                *)
(* ------------------------------------------------------------------ *)

let decref a = a.al_refs <- a.al_refs - 1

let rec incref an a =
  a.al_refs <- a.al_refs + 1;
  if not a.al_published then publish an a

(* First counted incoming reference (or first read by a thread other
   than the creator, which proves reachability through memory the
   analyzer does not map, e.g. an OCaml-side anchor to a sentinel):
   the block's own outgoing pointers start counting. *)
and publish an a =
  a.al_published <- true;
  for i = 0 to a.al_words - 1 do
    match Hashtbl.find_opt an.words (a.al_base + i) with
    | Some w when not w.counted -> (
        match w.target with
        | Some c when c.al_state = Alive ->
            w.counted <- true;
            incref an c
        | _ -> ())
    | _ -> ()
  done

let drop_outgoing an a =
  for i = 0 to a.al_words - 1 do
    match Hashtbl.find_opt an.words (a.al_base + i) with
    | Some w ->
        (match w.target with Some c when w.counted -> decref c | _ -> ());
        w.target <- None;
        w.counted <- false
    | None -> ()
  done

let in_ranges ranges addr = List.exists (fun (b, n) -> addr >= b && addr < b + n) ranges

let map_write an th w addr v =
  (match w.target with Some c when w.counted -> decref c | _ -> ());
  w.target <- None;
  w.counted <- false;
  let base = Ptr.addr v in
  if base <> 0 then
    match Hashtbl.find_opt an.allocs base with
    | Some ({ al_state = Alive; _ } as c) ->
        let private_ =
          th.scheme_depth > 0 || in_ranges th.frames addr || in_ranges th.priv addr
        in
        let owner_ok =
          match w.owner with None -> true | Some o -> o.al_state = Alive
        in
        if (not private_) && owner_ok then begin
          w.target <- Some c;
          let counted = match w.owner with None -> true | Some o -> o.al_published in
          w.counted <- counted;
          if counted then incref an c
        end
    | _ -> ()

let maybe_publish_on_read an th w =
  match w.owner with
  | Some a when (not a.al_published) && a.al_creator <> th.th_tid && a.al_state = Alive ->
      publish an a
  | _ -> ()

(* May [th] legally touch a word of a retired block?  Decided by the
   [Smr.retired_access] policy the retiring scheme declared — the
   analyzer carries no per-scheme knowledge of its own. *)
let retired_access_allowed th ~access a =
  th.scheme_depth > 0
  ||
  match (access : Smr.retired_access) with
  | Smr.Protected_slots ->
      Hashtbl.fold (fun _ b acc -> acc || b = a.al_base) th.protects false
  | Smr.In_op -> th.in_op
  | Smr.Invisible -> true (* readers are invisible by design *)

let check_retired_access an th w addr op =
  match w.owner with
  | Some ({ al_state = Retired { r_scheme; r_access; _ }; _ } as a)
    when not (Hashtbl.mem an.flagged a.al_id) ->
      if not (retired_access_allowed th ~access:r_access a) then begin
        Hashtbl.replace an.flagged a.al_id ();
        add_violation an
          (Lifecycle
             {
               lc_kind = Access_after_retire;
               lc_scheme = r_scheme;
               lc_tid = th.th_tid;
               lc_base = a.al_base;
               lc_alloc = a.al_id;
               lc_detail =
                 Fmt.str "unprotected %s of word %d (+%d) after retire" op addr
                   (addr - a.al_base);
             })
      end
  | _ -> ()

let check_free_races an th a =
  let tid = th.th_tid in
  let hit = ref false in
  for i = 0 to a.al_words - 1 do
    if not !hit then
      match Hashtbl.find_opt an.words (a.al_base + i) with
      | None -> ()
      | Some w ->
          let addr = a.al_base + i in
          let second = { a_tid = tid; a_clk = Vc.get th.vc tid; a_op = "free" } in
          if w.wr_tid >= 0 && w.wr_tid <> tid && not (Vc.covers th.vc ~tid:w.wr_tid ~clk:w.wr_clk)
          then begin
            hit := true;
            report_race an ~addr ~first:{ a_tid = w.wr_tid; a_clk = w.wr_clk; a_op = w.wr_op }
              ~second w
          end
          else if w.rd_tid >= 0 && w.rd_tid <> tid
                  && not (Vc.covers th.vc ~tid:w.rd_tid ~clk:w.rd_clk)
          then begin
            hit := true;
            report_race an ~addr ~first:{ a_tid = w.rd_tid; a_clk = w.rd_clk; a_op = "read" }
              ~second w
          end
          else if w.rd_tid = -2 then
            match w.rd_vc with
            | Some v ->
                let n = Array.length v.Vc.a in
                let j = ref 0 in
                while (not !hit) && !j < n do
                  let c = v.Vc.a.(!j) in
                  if c > 0 && !j <> tid && not (Vc.covers th.vc ~tid:!j ~clk:c) then begin
                    hit := true;
                    report_race an ~addr ~first:{ a_tid = !j; a_clk = c; a_op = "read" } ~second w
                  end;
                  incr j
                done
            | None -> ()
  done

let lifecycle_violation an th kind ~scheme a detail =
  add_violation an
    (Lifecycle
       {
         lc_kind = kind;
         lc_scheme = scheme;
         lc_tid = th.th_tid;
         lc_base = a.al_base;
         lc_alloc = a.al_id;
         lc_detail = detail;
       })

let note_retire an ~scheme ~access p =
  match an.orig with
  | None -> ()
  | Some o ->
      let tid = o.self () in
      with_crit an o tid (fun () ->
          let th = thread an tid in
          let base = Ptr.addr p in
          match Hashtbl.find_opt an.allocs base with
          | None -> ()
          | Some a -> (
              match a.al_state with
              | Retired { r_scheme; _ } ->
                  lifecycle_violation an th Double_retire ~scheme a
                    (Fmt.str "already retired to %s" r_scheme)
              | Freed ->
                  lifecycle_violation an th Double_retire ~scheme a "retire of a freed block"
              | Alive ->
                  if a.al_refs > 0 then
                    lifecycle_violation an th Retire_before_unlink ~scheme a
                      (Fmt.str "%d live shared reference%s at retire" a.al_refs
                         (if a.al_refs = 1 then "" else "s"));
                  a.al_state <- Retired { r_scheme = scheme; r_tid = tid; r_access = access };
                  drop_outgoing an a))

(* ------------------------------------------------------------------ *)
(* The decorator                                                      *)
(* ------------------------------------------------------------------ *)

let wrap an (o : Ts_rt.ops) : Ts_rt.ops =
  an.orig <- Some o;
  let mem_read addr =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let v = o.read addr in
        let th = thread an tid in
        ignore (tick th);
        an.ops_seen <- an.ops_seen + 1;
        let w = word an addr in
        acquire th w;
        maybe_publish_on_read an th w;
        record_read th w;
        check_retired_access an th w addr "read";
        v)
  in
  let mem_write addr v =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        o.write addr v;
        let th = thread an tid in
        ignore (tick th);
        an.ops_seen <- an.ops_seen + 1;
        let w = word an addr in
        check_write_race an th w addr "write" v;
        record_write th w "write" v;
        release th w;
        check_retired_access an th w addr "write";
        map_write an th w addr v)
  in
  let mem_cas addr expected desired =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let ok = o.cas addr expected desired in
        let th = thread an tid in
        ignore (tick th);
        an.ops_seen <- an.ops_seen + 1;
        let w = word an addr in
        acquire th w;
        if ok then begin
          check_write_race an th w addr "cas" desired;
          record_write th w "cas" desired;
          release th w;
          map_write an th w addr desired
        end
        else record_read th w;
        check_retired_access an th w addr "cas";
        ok)
  in
  let mem_faa addr delta =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let old = o.faa addr delta in
        let th = thread an tid in
        ignore (tick th);
        an.ops_seen <- an.ops_seen + 1;
        let w = word an addr in
        acquire th w;
        check_write_race an th w addr "faa" (old + delta);
        record_write th w "faa" (old + delta);
        release th w;
        check_retired_access an th w addr "faa";
        old)
  in
  let mem_fence () =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        o.fence ();
        let th = thread an tid in
        ignore (tick th);
        Vc.join th.vc an.fence_vc;
        Vc.join an.fence_vc th.vc)
  in
  let mem_malloc n =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let base = o.malloc n in
        let th = thread an tid in
        ignore (tick th);
        an.ops_seen <- an.ops_seen + 1;
        let a =
          {
            al_id = an.next_alloc;
            al_base = base;
            al_words = n;
            al_creator = tid;
            al_refs = 0;
            al_published = false;
            al_state = Alive;
          }
        in
        an.next_alloc <- an.next_alloc + 1;
        an.n_allocs <- an.n_allocs + 1;
        Hashtbl.replace an.allocs base a;
        for i = 0 to n - 1 do
          Hashtbl.remove an.words (base + i);
          let w = word an (base + i) in
          w.owner <- Some a;
          (* allocation hands the block to its creator: later same-thread
             accesses are ordered by program order, cross-thread access
             before publication would be the racing write it looks like *)
          record_write th w "malloc" 0
        done;
        base)
  in
  let mem_free addr =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        o.free addr;
        let th = thread an tid in
        ignore (tick th);
        an.ops_seen <- an.ops_seen + 1;
        match Hashtbl.find_opt an.allocs addr with
        | None -> ()
        | Some a ->
            check_free_races an th a;
            drop_outgoing an a;
            a.al_state <- Freed;
            for i = 0 to a.al_words - 1 do
              Hashtbl.remove an.words (addr + i)
            done;
            Hashtbl.remove an.allocs addr)
  in
  let sched_spawn f =
    let tid = o.self () in
    let snap =
      with_crit an o tid (fun () ->
          let th = thread an tid in
          ignore (tick th);
          Vc.copy th.vc)
    in
    o.spawn (fun () ->
        let me = o.self () in
        with_crit an o me (fun () ->
            let th = thread an me in
            Vc.join th.vc snap;
            ignore (tick th));
        f ())
  in
  let join_target tid u =
    with_crit an o tid (fun () ->
        let th = thread an tid in
        (match Hashtbl.find_opt an.threads u with
        | Some tu -> Vc.join th.vc tu.vc
        | None -> ());
        ignore (tick th))
  in
  let sched_join u =
    o.join u;
    join_target (o.self ()) u
  in
  let status_query q u =
    let r = q u in
    if r then join_target (o.self ()) u;
    r
  in
  let sig_send u =
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let th = thread an tid in
        ignore (tick th);
        Vc.join (chan an u) th.vc);
    o.signal u
  in
  let sig_set_handler h =
    o.set_signal_handler (fun () ->
        let me = o.self () in
        with_crit an o me (fun () ->
            let th = thread an me in
            Vc.join th.vc (chan an me);
            ignore (tick th));
        h ())
  in
  let crit_section : 'a. (unit -> 'a) -> 'a =
   fun f ->
    o.critical (fun () ->
        let tid = o.self () in
        an.crit_owner <- tid;
        Fun.protect
          ~finally:(fun () ->
            (match Hashtbl.find_opt an.threads tid with
            | Some th -> Vc.join an.crit_vc th.vc
            | None -> ());
            an.crit_owner <- -1)
          (fun () ->
            let th = thread an tid in
            ignore (tick th);
            Vc.join th.vc an.crit_vc;
            f ()))
  in
  let frame_push n =
    let b = o.push_frame n in
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let th = thread an tid in
        th.frames <- (b, n) :: th.frames);
    b
  in
  let frame_pop b =
    o.pop_frame b;
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let th = thread an tid in
        let rec drop = function
          | (bb, _) :: rest when bb >= b -> drop rest
          | l -> l
        in
        th.frames <- drop th.frames)
  in
  let priv_add b n =
    o.add_private_range b n;
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let th = thread an tid in
        th.priv <- (b, n) :: th.priv)
  in
  let priv_remove b n =
    o.remove_private_range b n;
    let tid = o.self () in
    with_crit an o tid (fun () ->
        let th = thread an tid in
        let rec dropone = function
          | [] -> []
          | (bb, nn) :: rest when bb = b && nn = n -> rest
          | r :: rest -> r :: dropone rest
        in
        th.priv <- dropone th.priv)
  in
  {
    o with
    read = mem_read;
    write = mem_write;
    cas = mem_cas;
    faa = mem_faa;
    fence = mem_fence;
    malloc = mem_malloc;
    free = mem_free;
    spawn = sched_spawn;
    join = sched_join;
    is_done = status_query o.is_done;
    is_crashed = status_query o.is_crashed;
    is_stalled = status_query o.is_stalled;
    signal = sig_send;
    set_signal_handler = sig_set_handler;
    critical = crit_section;
    push_frame = frame_push;
    pop_frame = frame_pop;
    add_private_range = priv_add;
    remove_private_range = priv_remove;
  }

(* ------------------------------------------------------------------ *)
(* SMR hook instrumentation                                           *)
(* ------------------------------------------------------------------ *)

let with_scheme an f =
  match an.orig with
  | None -> f ()
  | Some o ->
      let tid = o.self () in
      let bump d =
        with_crit an o tid (fun () ->
            let th = thread an tid in
            th.scheme_depth <- th.scheme_depth + d)
      in
      bump 1;
      Fun.protect ~finally:(fun () -> bump (-1)) f

let set_in_op an v =
  match an.orig with
  | None -> ()
  | Some o ->
      let tid = o.self () in
      with_crit an o tid (fun () -> (thread an tid).in_op <- v)

let note_protect an slot p =
  match an.orig with
  | None -> ()
  | Some o ->
      let tid = o.self () in
      with_crit an o tid (fun () -> Hashtbl.replace (thread an tid).protects slot (Ptr.addr p))

let note_release an slot =
  match an.orig with
  | None -> ()
  | Some o ->
      let tid = o.self () in
      with_crit an o tid (fun () -> Hashtbl.remove (thread an tid).protects slot)

let wrap_smr an (s : Smr.t) : Smr.t =
  {
    s with
    thread_init = (fun () -> with_scheme an s.thread_init);
    thread_exit = (fun () -> with_scheme an s.thread_exit);
    op_begin =
      (fun () ->
        set_in_op an true;
        with_scheme an s.op_begin);
    op_end =
      (fun () ->
        with_scheme an s.op_end;
        set_in_op an false);
    protect =
      (fun ~slot p ->
        note_protect an slot p;
        with_scheme an (fun () -> s.protect ~slot p));
    release =
      (fun ~slot ->
        note_release an slot;
        with_scheme an (fun () -> s.release ~slot));
    retire =
      (fun p ->
        note_retire an ~scheme:s.name ~access:s.retired_access p;
        with_scheme an (fun () -> s.retire p));
    flush = (fun () -> with_scheme an s.flush);
  }

(* ------------------------------------------------------------------ *)
(* Attach / report                                                    *)
(* ------------------------------------------------------------------ *)

let attach ?max_reports ?notes () =
  let an = create ?max_reports ?notes () in
  Ts_rt.set_decorator (Some (wrap an));
  an

let detach _an = Ts_rt.set_decorator None

let violations an = List.rev an.viols

let races an =
  List.filter_map (function Race r -> Some r | Lifecycle _ -> None) (violations an)

let lifecycle_violations an =
  List.filter_map (function Lifecycle l -> Some l | Race _ -> None) (violations an)

let ops_seen an = an.ops_seen
let allocs_seen an = an.n_allocs
let dropped an = an.dropped

let pp_summary ppf an =
  Fmt.pf ppf "analyze: %d ops, %d allocs, %d race%s, %d lifecycle violation%s%s" an.ops_seen
    an.n_allocs
    (List.length (races an))
    (if List.length (races an) = 1 then "" else "s")
    (List.length (lifecycle_violations an))
    (if List.length (lifecycle_violations an) = 1 then "" else "s")
    (if an.dropped > 0 then Fmt.str " (+%d dropped)" an.dropped else "")

let report_to_string an =
  let b = Buffer.create 256 in
  Buffer.add_string b (Fmt.str "%a" pp_summary an);
  List.iter
    (fun v ->
      Buffer.add_char b '\n';
      Buffer.add_string b (violation_to_string v))
    (violations an);
  Buffer.contents b
