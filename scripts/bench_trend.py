#!/usr/bin/env python3
"""Benchmark trend harness (ROADMAP, "Raw speed").

For every committed BENCH_*.json, diff the working-tree copy against its
committed predecessor: wall throughput per (series, thread count), as a
table with the percentage delta.  The predecessor is the last commit
that touched the file (HEAD if the working tree is clean for it, else
the working tree is "now" and HEAD is the baseline).

Exit non-zero when any series/thread cell regressed more than the CI
perf-smoke rule allows (25% by default) — the same only-catch-cliffs
threshold the native-smoke job applies to the top thread count, applied
across the whole grid.  Cells present on only one side (a new series, a
removed thread count) are reported but never gate.

Usage:
    scripts/bench_trend.py [--threshold 0.25] [--baseline REV] [FILES...]

With no FILES, every tracked BENCH_*.json is checked.  --baseline
overrides the git revision the working tree is compared against
(default: the last commit touching each file, which is HEAD after a
fresh `git commit`, making this a predecessor-vs-current diff).
"""

import argparse
import json
import subprocess
import sys


def run(args):
    return subprocess.run(args, capture_output=True, text=True, check=False)


def tracked_bench_files():
    p = run(["git", "ls-files", "BENCH_*.json"])
    return [f for f in p.stdout.split() if f]


def committed_predecessor(path, baseline):
    """The committed JSON this working-tree file should be diffed against."""
    if baseline is None:
        # last commit touching the file; with a dirty working tree this is
        # the natural "before", after a commit it is the predecessor
        dirty = run(["git", "diff", "--quiet", "HEAD", "--", path]).returncode != 0
        if dirty:
            baseline = "HEAD"
        else:
            p = run(["git", "log", "-n", "2", "--format=%H", "--", path])
            revs = p.stdout.split()
            if len(revs) < 2:
                return None  # first commit of this file: nothing to diff
            baseline = revs[1]
    p = run(["git", "show", f"{baseline}:{path}"])
    if p.returncode != 0:
        return None
    return json.loads(p.stdout)


def cells(doc):
    """{(series, threads): wall_throughput} over the sweep grid."""
    out = {}
    for point in doc.get("points", []):
        threads = point.get("threads")
        for cell in point.get("cells", []):
            wt = cell.get("wall_throughput")
            if wt is not None:
                out[(cell.get("series"), threads)] = wt
    return out


def diff_file(path, baseline_rev, threshold):
    try:
        now_doc = json.load(open(path))
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable ({e}); skipped")
        return []
    base_doc = committed_predecessor(path, baseline_rev)
    if base_doc is None:
        print(f"{path}: no committed predecessor; skipped")
        return []
    base, now = cells(base_doc), cells(now_doc)
    keys = sorted(set(base) | set(now), key=lambda k: (str(k[0]), k[1] or 0))
    if not keys:
        print(f"{path}: no wall-throughput cells; skipped")
        return []

    print(f"\n{path} (vs {baseline_rev or 'predecessor commit'}):")
    print(f"  {'series':<24} {'thr':>4} {'baseline':>12} {'now':>12} {'delta':>8}")
    regressions = []
    for series, threads in keys:
        b = base.get((series, threads))
        n = now.get((series, threads))
        if b is None or n is None:
            side = "new" if b is None else "removed"
            val = n if b is None else b
            print(f"  {series:<24} {threads:>4} {'-' if b is None else f'{b:>12.1f}'}"
                  f" {'-' if n is None else f'{n:>12.1f}'}   ({side}: {val:.1f})")
            continue
        delta = (n - b) / b if b > 0 else 0.0
        flag = ""
        if b > 0 and n < (1.0 - threshold) * b:
            flag = "  << REGRESSION"
            regressions.append((path, series, threads, b, n, delta))
        print(f"  {series:<24} {threads:>4} {b:>12.1f} {n:>12.1f} {delta:>+7.1%}{flag}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="BENCH_*.json files (default: all tracked)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="regression gate as a fraction (default 0.25 = 25%%)")
    ap.add_argument("--baseline", default=None,
                    help="git revision to diff against (default: each file's predecessor commit)")
    args = ap.parse_args()

    files = args.files or tracked_bench_files()
    if not files:
        print("no BENCH_*.json files found")
        return 0

    regressions = []
    for path in files:
        regressions += diff_file(path, args.baseline, args.threshold)

    if regressions:
        print(f"\n{len(regressions)} cell(s) regressed more than "
              f"{args.threshold:.0%}:")
        for path, series, threads, b, n, delta in regressions:
            print(f"  {path}: {series} @ {threads} threads: "
                  f"{b:.1f} -> {n:.1f} ({delta:+.1%})")
        return 1
    print("\ntrend: no cell regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
