(* Benchmark driver: regenerates every figure of the paper's evaluation
   (plus the ablations DESIGN.md calls out) and runs Bechamel microbenches
   of the substrate.

   Usage:  dune exec bench/main.exe -- [--scale quick|full|paper]
                                       [--backend sim|native] [--pool N]
                                       [--only fig3-list,ablate-buffer,...]
                                       [--json] [--no-micro] [--list]     *)

module Runtime = Ts_sim.Runtime
module Smr = Ts_smr.Smr
module Workload = Ts_harness.Workload
module Experiment = Ts_harness.Experiment

let parse_args () =
  let scale = ref Experiment.Quick in
  let only = ref None in
  let micro = ref true in
  let list_only = ref false in
  let backend = ref `Sim in
  let pool = ref 0 in
  let json = ref false in
  let rec go = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        (match Experiment.scale_of_string s with
        | Some sc -> scale := sc
        | None -> failwith ("unknown scale: " ^ s));
        go rest
    | "--backend" :: s :: rest ->
        (match s with
        | "sim" -> backend := `Sim
        | "native" -> backend := `Native
        | _ -> failwith ("unknown backend: " ^ s));
        go rest
    | "--pool" :: n :: rest ->
        pool := int_of_string n;
        go rest
    | "--json" :: rest ->
        json := true;
        go rest
    | "--only" :: names :: rest ->
        only := Some (String.split_on_char ',' names);
        go rest
    | "--no-micro" :: rest ->
        micro := false;
        go rest
    | "--list" :: rest ->
        list_only := true;
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  let backend =
    match !backend with
    | `Sim -> Workload.Backend_sim
    | `Native -> Workload.Backend_native { pool = !pool }
  in
  (!scale, !only, !micro, !list_only, backend, !json)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the substrate                            *)
(* ------------------------------------------------------------------ *)

(* Each thunk runs a small simulation end to end; Bechamel reports real
   nanoseconds per run, i.e. the host-side cost of the simulator itself. *)

let micro_sim_steps () =
  ignore
    (Runtime.run (fun () ->
         for _ = 1 to 500 do
           Runtime.advance 1
         done))

let micro_malloc_free () =
  ignore
    (Runtime.run (fun () ->
         for _ = 1 to 200 do
           let a = Runtime.malloc 8 in
           Runtime.free a
         done))

let micro_signal_roundtrip () =
  ignore
    (Runtime.run (fun () ->
         let hit = Runtime.alloc_region 1 in
         let t =
           Runtime.spawn (fun () ->
               Runtime.set_signal_handler (fun () -> Runtime.write hit 1);
               while Runtime.read hit = 0 do
                 Runtime.yield ()
               done)
         in
         Runtime.signal t;
         Runtime.join t))

let micro_list_op () =
  ignore
    (Runtime.run (fun () ->
         let smr = Ts_reclaim.Leaky.create () in
         smr.Smr.thread_init ();
         let ds = Ts_ds.Michael_list.create ~smr () in
         for k = 0 to 63 do
           ignore (ds.Ts_ds.Set_intf.insert k k)
         done;
         for k = 0 to 63 do
           ignore (ds.Ts_ds.Set_intf.contains k)
         done))

let micro_collect_phase () =
  ignore
    (Runtime.run (fun () ->
         let ts =
           Threadscan.create
             ~config:{ Threadscan.Config.default with max_threads = 4; buffer_size = 64 }
             ()
         in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         for _ = 1 to 65 do
           smr.Smr.retire (Ts_umem.Ptr.of_addr (Runtime.malloc 3))
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let run_micro () =
  let open Bechamel in
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"substrate"
      [
        test "sim: 500 advance steps" micro_sim_steps;
        test "alloc: 200 malloc/free" micro_malloc_free;
        test "signal round-trip" micro_signal_roundtrip;
        test "list: build+search 64 keys" micro_list_op;
        test "threadscan: one collect phase" micro_collect_phase;
      ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Fmt.pr "@.== substrate microbenchmarks (host-side cost, Bechamel OLS) ==@.";
  match benchmark () with
  | [ results ] ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-45s %12.0f ns/run@." name est
          | _ -> Fmt.pr "%-45s (no estimate)@." name)
        results
  | _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  let scale, only, micro, list_only, backend, json = parse_args () in
  if list_only then begin
    List.iter (fun (name, _) -> print_endline name) Experiment.names;
    exit 0
  end;
  let scale_name =
    match scale with
    | Experiment.Quick -> "quick"
    | Experiment.Full -> "full"
    | Experiment.Paper -> "paper"
  in
  Fmt.pr "ThreadScan reproduction benchmarks — scale: %s, backend: %s@." scale_name
    (Workload.backend_to_string backend);
  let selected =
    match only with
    | None -> Experiment.names
    | Some names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n Experiment.names) then begin
              Fmt.epr "unknown experiment %S; use --list to see the targets@." n;
              exit 2
            end)
          names;
        List.filter (fun (n, _) -> List.mem n names) Experiment.names
  in
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      Experiment.run_and_print ~title:name ~backend ~json f scale;
      Fmt.pr "(%s took %.1fs of real time)@." name (Unix.gettimeofday () -. t0))
    selected;
  if micro && only = None then run_micro ()
