(* tscheck: the systematic concurrency checker's command line.

   - `tscheck sweep`   run a seed family of checked schedules per structure,
                       shrink the first failure to a minimal replay command
   - `tscheck replay`  re-run one fully specified scenario verbosely

   Every run is a pure function of its printed spec: any failure line can be
   reproduced by copy-pasting the replay command. *)

module Scenario = Ts_check.Scenario
module Explore = Ts_check.Explore
module Fork = Ts_check.Fork
module Report = Ts_check.Report
module Registry = Ts_scheme.Registry
open Cmdliner

(* ------------------------------ converters ------------------------------ *)

let ds_conv =
  let parse s =
    match Scenario.ds_of_string s with
    | Some ds -> Ok ds
    | None -> Error (`Msg (Fmt.str "unknown structure %S (list|hash|skip|lazy|churn)" s))
  in
  Arg.conv (parse, fun ppf ds -> Fmt.string ppf (Scenario.ds_to_string ds))

let bug_conv =
  let parse s =
    match Scenario.bug_of_string s with
    | Some b -> Ok b
    | None ->
        Error (`Msg (Fmt.str "unknown seeded bug %S (elide-lock|retire-early|skip-fence)" s))
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (Scenario.bug_to_string b))

let inject_conv =
  let parse s =
    match Scenario.inject_of_string s with
    | Some i -> Ok i
    | None ->
        Error
          (`Msg
             (Fmt.str
                "unknown injection %S \
                 (none|skip-carryover|skip-ack-wait|skip-proxy-scan|crash-mid-phase)"
                s))
  in
  Arg.conv (parse, fun ppf i -> Fmt.string ppf (Scenario.inject_to_string i))

let scheme_conv =
  let parse s =
    match Registry.canonical s with Ok id -> Ok id | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Fmt.string)

let fault_conv =
  let parse s =
    match Scenario.fault_of_string s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
             (Fmt.str "unknown fault %S (none|crash:<victims>@<after>|stall:<victims>@<after>:<cycles>)" s))
  in
  Arg.conv (parse, fun ppf f -> Fmt.string ppf (Scenario.fault_to_string f))

let policy_conv =
  let parse s =
    match Scenario.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Fmt.str "unknown policy %S (timed|uniform|pct:<d>)" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Scenario.policy_to_string p))

(* ------------------------------ shared args ----------------------------- *)

let threads_arg = Arg.(value & opt int 3 & info [ "t"; "threads" ] ~doc:"Worker threads.")

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Scenario.default.Scenario.scheme
    & info [ "scheme" ]
        ~doc:(Fmt.str "Reclamation scheme to check: %s." (Registry.names_doc ())))

let ops_arg = Arg.(value & opt int 40 & info [ "ops" ] ~doc:"Operations per worker.")

let range_arg = Arg.(value & opt int 32 & info [ "key-range" ] ~doc:"Key range.")

let buffer_arg =
  Arg.(value & opt int 8 & info [ "buffer" ] ~doc:"ThreadScan per-thread delete buffer.")

let help_free_arg =
  Arg.(value & flag & info [ "help-free" ] ~doc:"Check the help-free ThreadScan variant.")

let collect_merge_arg =
  Arg.(
    value & flag
    & info [ "collect-merge" ]
        ~doc:"Check the sealed-run collect with k-way merge publish (docs/PERF.md).")

let scan_filter_arg =
  Arg.(
    value & flag
    & info [ "scan-filter" ] ~doc:"Check the Bloom-prefiltered TS-Scan (docs/PERF.md).")

let free_chunk_arg =
  Arg.(
    value & opt int 0
    & info [ "free-chunk" ]
        ~doc:"Chunked helper-parallel free phase with this chunk size (0 = legacy).")

let pipeline_arg =
  Arg.(
    value & flag
    & info [ "pipeline" ]
        ~doc:
          "Shorthand: check the whole parallel reclamation pipeline \
           (--collect-merge --scan-filter --free-chunk 4 --help-free).")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ]
        ~doc:
          "ThreadScan reclamation shard count (0 = registry default: one master for legacy \
           threadscan, auto for the pipelined variant; >1 shards the collect with \
           helper work-stealing).")

let no_magazine_arg =
  Arg.(
    value & flag
    & info [ "no-magazine" ]
        ~doc:
          "Disable the per-thread allocator magazines: every small malloc/free goes \
           through the central free lists.")

let inject_arg =
  Arg.(
    value
    & opt inject_conv Threadscan.No_fault
    & info [ "inject" ]
        ~doc:
          "Deliberate protocol bug \
           (none|skip-carryover|skip-ack-wait|skip-proxy-scan|crash-mid-phase).")

let fault_arg =
  Arg.(
    value
    & opt fault_conv Scenario.Fault_none
    & info [ "fault" ]
        ~doc:
          "Environment fault the protocol must survive \
           (none|crash:<victims>@<after>|stall:<victims>@<after>:<cycles>).")

let race_arg =
  Arg.(
    value & flag
    & info [ "race" ]
        ~doc:
          "Run the happens-before race detector and SMR lifecycle sanitizer inside every \
           schedule (implied by --bug).")

let bug_arg =
  Arg.(
    value
    & opt (some bug_conv) None
    & info [ "bug" ]
        ~doc:
          "Seed a deliberate synchronization/lifecycle bug \
           (elide-lock|retire-early|skip-fence) and check that the analyzer catches it.  \
           Forces the structure the bug lives in and implies --race.")

(* ----------------------------- fork args -------------------------------- *)

let fork_arg =
  Arg.(
    value & flag
    & info [ "fork" ]
        ~doc:
          "Forked schedule-tree exploration: share schedule prefixes via process \
           snapshots instead of replaying every schedule from its seed (docs/CHECKING.md).")

let prune_arg =
  Arg.(
    value & flag
    & info [ "prune" ]
        ~doc:
          "With --fork: sleep-set pruning — abandon forked alternatives whose first step \
           commutes with every explored sibling's (footprint independence).")

let fork_factor_arg =
  Arg.(
    value & opt int 3
    & info [ "fork-factor" ] ~doc:"With --fork: max alternatives forked per decision point.")

let fork_stride_arg =
  Arg.(
    value & opt int 0
    & info [ "fork-stride" ]
        ~doc:"With --fork: minimum step spacing between chosen fork points (0 = 1).")

let fork_window_arg =
  Arg.(
    value & opt float 0.5
    & info [ "fork-window" ]
        ~doc:
          "With --fork: fraction of the trunk run below which no fork point is placed.  \
           Fork points are spent at the deepest decision points first, so this only \
           binds when the schedule quota is very large.")

let differential_arg =
  Arg.(
    value & opt int 0
    & info [ "differential" ]
        ~doc:
          "With --fork: replay this many forked leaves per trunk from their seed \
           (preloaded choice log) and fail unless traces are byte-identical and outcomes \
           equal — the replay-from-seed oracle.")

let step_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "step-budget" ]
        ~doc:
          "Stop exploring once this many simulator steps ran (0 = unlimited).  Applies \
           to both replay and forked sweeps, making their schedule throughput directly \
           comparable.")

(* -------------------------------- sweep --------------------------------- *)

let pp_summary name (s : Explore.summary) =
  Fmt.pr "  %-5s %4d schedules  %6d ops  %4d phases  %4d keys checked  %d violations@." name
    s.Explore.runs s.Explore.total_events s.Explore.total_phases s.Explore.lin_keys
    (List.length s.Explore.failures);
  if s.Explore.skipped_segments > 0 then
    Fmt.pr "        (%d linearizability segments skipped as too wide)@." s.Explore.skipped_segments

let pp_fork_summary name (st : Fork.stats) =
  Fmt.pr "  %-5s %4d schedules  %6d ops  %4d phases  %4d keys checked  %d violations@." name
    st.Fork.explored st.Fork.events st.Fork.phases st.Fork.lin_keys st.Fork.failed;
  if st.Fork.skipped_segments > 0 then
    Fmt.pr "        (%d linearizability segments skipped as too wide)@." st.Fork.skipped_segments;
  Fmt.pr "        fork: %d trunks  %d snapshots  %d schedules pruned@." st.Fork.trunks
    st.Fork.forks st.Fork.pruned;
  Fmt.pr "        fork: %d prefix steps shared  %d fresh  %d replay-equivalent  speedup %.1fx@."
    st.Fork.shared_steps st.Fork.fresh_steps st.Fork.replay_steps (Fork.speedup st);
  if st.Fork.diff_checked > 0 then
    Fmt.pr "        differential: %d leaves replayed from seed  %d mismatches@."
      st.Fork.diff_checked st.Fork.diff_mismatches;
  if st.Fork.errors > 0 then Fmt.pr "        fork: %d children died without reporting@." st.Fork.errors

let sweep_cmd =
  let ds_list =
    Arg.(
      value
      & opt (list ds_conv) [ Scenario.List_ds; Scenario.Hash_ds; Scenario.Skip_ds; Scenario.Churn ]
      & info [ "ds" ] ~doc:"Structures to sweep (comma-separated: list,hash,skip,churn).")
  in
  let schedules =
    Arg.(value & opt int 60 & info [ "schedules" ] ~doc:"Schedules per structure.")
  in
  let pct_depth =
    Arg.(value & opt int 3 & info [ "pct-depth" ] ~doc:"PCT priority change points.")
  in
  let seed0 = Arg.(value & opt int 0 & info [ "seed0" ] ~doc:"First seed of the family.") in
  let action ds_list schedules pct_depth seed0 scheme threads ops key_range buffer_size
      help_free collect_merge scan_filter free_chunk shards no_magazine pipeline inject fault
      race bug fork prune fork_factor fork_stride fork_window differential step_budget =
    let analyze = race || bug <> None in
    let help_free = help_free || pipeline in
    let collect_merge = collect_merge || pipeline in
    let scan_filter = scan_filter || pipeline in
    let free_chunk = if pipeline && free_chunk = 0 then 4 else free_chunk in
    (* A seeded bug lives in one specific structure; sweeping any other
       would "pass" without exercising it. *)
    let ds_list = match bug with None -> ds_list | Some b -> [ Scenario.bug_ds b ] in
    (* A neutralizing scheme cannot run lock-based structures (the abort
       is not restartable there): drop them from the sweep with a note
       rather than failing the whole invocation. *)
    let ds_list =
      if (Registry.get scheme).Registry.caps.Registry.neutralizes then begin
        let dropped, kept =
          List.partition (fun ds -> ds = Scenario.Skip_ds || ds = Scenario.Lazy_ds) ds_list
        in
        if dropped <> [] then
          Fmt.pr "note: %s neutralizes; skipping lock-based structures: %s@." scheme
            (String.concat ", " (List.map Scenario.ds_to_string dropped));
        kept
      end
      else ds_list
    in
    let base =
      {
        Scenario.default with
        Scenario.scheme;
        threads;
        ops;
        key_range;
        buffer_size;
        help_free;
        collect_merge;
        scan_filter;
        free_chunk;
        shards;
        magazine = not no_magazine;
        inject;
        fault;
        analyze;
        bug;
      }
    in
    Fmt.pr "sweep: %d structures x %d schedules (seeds %d..%d, uniform/pct:%d alternating)@."
      (List.length ds_list) schedules seed0
      (seed0 + schedules - 1)
      pct_depth;
    if scheme <> Scenario.default.Scenario.scheme then Fmt.pr "scheme: %s@." scheme;
    if fork then
      Fmt.pr "fork: factor=%d stride=%s window=%.2f prune=%s differential=%d@." fork_factor
        (if fork_stride = 0 then "auto" else string_of_int fork_stride)
        fork_window
        (if prune then "on" else "off")
        differential;
    if step_budget > 0 then Fmt.pr "step budget: %d per structure@." step_budget;
    if collect_merge || scan_filter || free_chunk <> 0 || shards <> 0 then
      Fmt.pr "pipeline:%s%s%s%s@."
        (if collect_merge then " collect-merge" else "")
        (if scan_filter then " scan-filter" else "")
        (if free_chunk <> 0 then Fmt.str " free-chunk=%d" free_chunk else "")
        (if shards <> 0 then Fmt.str " shards=%d" shards else "");
    if no_magazine then Fmt.pr "allocator: magazines off (central free lists only)@.";
    if inject <> Threadscan.No_fault then
      Fmt.pr "injected bug: %s@." (Scenario.inject_to_string inject);
    if fault <> Scenario.Fault_none then
      Fmt.pr "injected fault: %s@." (Scenario.fault_to_string fault);
    if analyze then Fmt.pr "analysis: happens-before + lifecycle checkers on@.";
    (match bug with
    | Some b -> Fmt.pr "seeded bug: %s (ds forced to %s)@." (Scenario.bug_to_string b)
                  (Scenario.ds_to_string (Scenario.bug_ds b))
    | None -> ());
    let first_failure = ref None in
    let total_runs = ref 0 and total_violations = ref 0 and total_mismatches = ref 0 in
    (* fork-mode failures carry the recorded choice log alongside the
       outcome: a forked schedule is not reproducible from its spec alone *)
    let first_forked_failure = ref None in
    List.iter
      (fun ds ->
        let base = { base with Scenario.ds } in
        if fork then begin
          let opts =
            {
              Fork.fork_factor;
              stride = fork_stride;
              window = fork_window;
              prune;
              differential;
              step_budget;
            }
          in
          let st = Fork.sweep ~opts ~base ~schedules ~seed0 ~pct_depth () in
          total_runs := !total_runs + st.Fork.explored;
          total_violations := !total_violations + st.Fork.failed;
          total_mismatches := !total_mismatches + st.Fork.diff_mismatches;
          pp_fork_summary (Scenario.ds_to_string ds) st;
          match st.Fork.failures with
          | f :: _ when !first_forked_failure = None -> first_forked_failure := Some f
          | _ -> ()
        end
        else begin
          let specs = Explore.sweep_specs ~base ~schedules ~seed0 ~pct_depth in
          let s = Explore.sweep ~step_budget specs in
          total_runs := !total_runs + s.Explore.runs;
          total_violations := !total_violations + List.length s.Explore.failures;
          pp_summary (Scenario.ds_to_string ds) s;
          match s.Explore.failures with
          | o :: _ when !first_failure = None -> first_failure := Some o
          | _ -> ()
        end)
      ds_list;
    Fmt.pr "total: %d schedules, %d with violations@." !total_runs !total_violations;
    if !total_mismatches > 0 then begin
      Fmt.pr "differential FAILED: %d forked schedules diverged from replay-from-seed@."
        !total_mismatches;
      exit 2
    end;
    match (!first_failure, !first_forked_failure) with
    | None, None -> `Ok ()
    | None, Some (o, log) ->
        Fmt.pr "@.first failing schedule (%s, forked from seed %d):@."
          (Scenario.ds_to_string o.Scenario.spec.Scenario.ds)
          o.Scenario.spec.Scenario.seed;
        List.iter (fun v -> Fmt.pr "  %a@." Report.pp v) o.Scenario.violations;
        Fmt.pr "recorded schedule: %d choices (replayable via the preloaded choice log)@."
          (Array.length log);
        exit 1
    | Some o, _ ->
        Fmt.pr "@.first failing schedule (%s, seed %d):@."
          (Scenario.ds_to_string o.Scenario.spec.Scenario.ds)
          o.Scenario.spec.Scenario.seed;
        List.iter (fun v -> Fmt.pr "  %a@." Report.pp v) o.Scenario.violations;
        let shrunk = Explore.shrink o.Scenario.spec in
        Fmt.pr "shrunk to threads=%d ops=%d key-range=%d seed=%d@." shrunk.Scenario.threads
          shrunk.Scenario.ops shrunk.Scenario.key_range shrunk.Scenario.seed;
        Fmt.pr "replay: %s@." (Scenario.replay_command shrunk);
        exit 1
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Explore a family of checked schedules per data structure.")
    Term.(
      ret
        (const action $ ds_list $ schedules $ pct_depth $ seed0 $ scheme_arg $ threads_arg
       $ ops_arg $ range_arg $ buffer_arg $ help_free_arg $ collect_merge_arg $ scan_filter_arg
       $ free_chunk_arg $ shards_arg $ no_magazine_arg $ pipeline_arg $ inject_arg $ fault_arg
       $ race_arg $ bug_arg $ fork_arg $ prune_arg $ fork_factor_arg $ fork_stride_arg
       $ fork_window_arg $ differential_arg $ step_budget_arg))

(* -------------------------------- replay -------------------------------- *)

let replay_cmd =
  let ds = Arg.(value & opt ds_conv Scenario.List_ds & info [ "ds" ] ~doc:"Structure.") in
  let policy =
    Arg.(
      value
      & opt policy_conv Scenario.Uniform
      & info [ "policy" ] ~doc:"Schedule policy (timed|uniform|pct:<d>).")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Schedule seed.") in
  let action ds policy seed scheme threads ops key_range buffer_size help_free collect_merge
      scan_filter free_chunk shards no_magazine pipeline inject fault race bug =
    let analyze = race || bug <> None in
    let help_free = help_free || pipeline in
    let collect_merge = collect_merge || pipeline in
    let scan_filter = scan_filter || pipeline in
    let free_chunk = if pipeline && free_chunk = 0 then 4 else free_chunk in
    let ds = match bug with None -> ds | Some b -> Scenario.bug_ds b in
    let spec =
      {
        Scenario.ds;
        scheme;
        threads;
        ops;
        key_range;
        buffer_size;
        help_free;
        collect_merge;
        scan_filter;
        free_chunk;
        shards;
        magazine = not no_magazine;
        inject;
        fault;
        policy;
        seed;
        analyze;
        bug;
      }
    in
    Fmt.pr
      "replay: ds=%s%s threads=%d ops=%d key-range=%d buffer=%d%s%s%s%s%s%s inject=%s fault=%s \
       policy=%s seed=%d%s%s@."
      (Scenario.ds_to_string ds)
      (if scheme = Scenario.default.Scenario.scheme then "" else " scheme=" ^ scheme)
      threads ops key_range buffer_size
      (if help_free then " help-free" else "")
      (if collect_merge then " collect-merge" else "")
      (if scan_filter then " scan-filter" else "")
      (if free_chunk <> 0 then Fmt.str " free-chunk=%d" free_chunk else "")
      (if shards <> 0 then Fmt.str " shards=%d" shards else "")
      (if no_magazine then " no-magazine" else "")
      (Scenario.inject_to_string inject)
      (Scenario.fault_to_string fault)
      (Scenario.policy_to_string policy)
      seed
      (if analyze then " race" else "")
      (match bug with None -> "" | Some b -> " bug=" ^ Scenario.bug_to_string b);
    let o = Scenario.run spec in
    Fmt.pr "outcome: %d violations (events=%d phases=%d steps=%d keys-checked=%d)@."
      (List.length o.Scenario.violations)
      o.Scenario.events o.Scenario.phases o.Scenario.steps o.Scenario.lin_keys;
    List.iter (fun v -> Fmt.pr "  %a@." Report.pp v) o.Scenario.violations;
    if Scenario.failed o then exit 1 else `Ok ()
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-run one fully specified scenario.")
    Term.(
      ret
        (const action $ ds $ policy $ seed $ scheme_arg $ threads_arg $ ops_arg $ range_arg $ buffer_arg
       $ help_free_arg $ collect_merge_arg $ scan_filter_arg $ free_chunk_arg $ shards_arg
       $ no_magazine_arg $ pipeline_arg $ inject_arg $ fault_arg $ race_arg $ bug_arg))

let () =
  let doc = "systematic concurrency checker for the ThreadScan reproduction" in
  exit (Cmd.eval (Cmd.group (Cmd.info "tscheck" ~doc) [ sweep_cmd; replay_cmd ]))
