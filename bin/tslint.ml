(* tslint: the facade-discipline pass.

   Everything outside lib/rt, lib/sim and lib/par must reach the execution
   backend exclusively through the Ts_rt facade — naming the simulator
   directly ([Ts_sim.Runtime]) or the domain backend's primitives
   ([Atomic.], [Mutex.], [Thread.], [Domain.]) bypasses the installed ops
   table, which breaks backend portability AND hides those operations from
   the Ts_analyze decorator (an unobserved access can neither race nor
   order anything).

   The pass is textual but comment/string-aware: OCaml comments (nested),
   string literals (including {|quoted|} ones) and character literals are
   stripped before the token search, so documentation may name the
   forbidden modules freely.

   Usage: tslint.exe [ROOT]   (default ROOT = lib)
   Exit 1 with file:line diagnostics when the discipline is violated.  A
   short waiver list covers the checker's own backdoors (the sanitizer and
   scenario driver genuinely need simulator-only hooks). *)

let forbidden =
  [
    ("Ts_sim.Runtime", "use the Ts_rt facade instead of the simulator directly");
    ("Atomic.", "backend primitive; route shared state through Ts_rt ops");
    ("Mutex.", "backend primitive; use Ts_rt.critical or lib/sync locks");
    ("Thread.", "backend primitive; spawn through Ts_rt");
    ("Domain.", "backend primitive; spawn through Ts_rt");
  ]

(* Directories (relative to ROOT) whose modules ARE the backends. *)
let allowed_dirs = [ "rt"; "sim"; "par" ]

(* Individual waivers: checker internals that need simulator-only hooks
   (fault attribution, trace recording, run construction).  Keep short —
   every entry here is invisible to the analyzer's decorator. *)
let waivers =
  [
    "check/scenario.ml";  (* builds the simulator run it checks *)
    "check/scenario.mli";  (* exposes the pre-start configure hook on that run *)
    "check/fork.ml";  (* drives scheduler hooks / choice logs on the run it forks *)
    "check/sanitize.ml";  (* installs simulator memory-fault hooks *)
    "check/sanitize.mli";
    "harness/workload.ml";  (* constructs both backends' runs *)
    "util/padded.ml";  (* IS the padding wrapper around the native atomics *)
    "util/padded.mli";
  ]

(* Blank out comments, strings and char literals, preserving newlines so
   diagnostics keep their line numbers. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let in_range k = k < n in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && in_range (!i + 1) && src.[!i + 1] = '*' then begin
      (* nested comment *)
      let depth = ref 1 in
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      while !i < n && !depth > 0 do
        if src.[!i] = '(' && in_range (!i + 1) && src.[!i + 1] = '*' then begin
          incr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if src.[!i] = '*' && in_range (!i + 1) && src.[!i + 1] = ')' then begin
          decr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i
        end
      done
    end
    else if c = '"' then begin
      (* string literal with backslash escapes *)
      blank !i;
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\\' && in_range (!i + 1) then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          if src.[!i] = '"' then closed := true;
          blank !i;
          incr i
        end
      done
    end
    else if c = '{' && in_range (!i + 1) then begin
      (* {id|...|id} quoted string *)
      let j = ref (!i + 1) in
      while !j < n && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z')) do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let closer = "|" ^ id ^ "}" in
        let cl = String.length closer in
        let k = ref (!j + 1) in
        let fin = ref (-1) in
        while !fin < 0 && !k + cl <= n do
          if String.sub src !k cl = closer then fin := !k + cl else incr k
        done;
        let stop = if !fin < 0 then n else !fin in
        for p = !i to stop - 1 do
          blank p
        done;
        i := stop
      end
      else incr i
    end
    else if
      c = '\''
      && in_range (!i + 2)
      && (src.[!i + 2] = '\'' || (src.[!i + 1] = '\\' && in_range (!i + 3)))
    then
      (* char literal: '"', '\'', '\\', '\n', '\xNN' (type variables like
         'a never have a closing quote and fall through untouched) *)
      if src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' && !j - !i < 6 do
          incr j
        done;
        if !j < n && src.[!j] = '\'' then begin
          for p = !i to !j do
            blank p
          done;
          i := !j + 1
        end
        else incr i
      end
      else begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
    else incr i
  done;
  Bytes.to_string out

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Token occurrences that start a module path: the preceding character must
   not be part of an identifier or a path ([Foo.Atomic.x] is still a naming
   of [Atomic], but [My_atomic.x] is not). *)
let find_tokens stripped token =
  let tl = String.length token in
  let n = String.length stripped in
  let hits = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i + tl <= n do
    if stripped.[!i] = '\n' then incr line
    else if
      String.sub stripped !i tl = token
      && (!i = 0 || not (is_ident_char stripped.[!i - 1]))
    then hits := !line :: !hits;
    incr i
  done;
  while !i < n do
    if stripped.[!i] = '\n' then incr line;
    incr i
  done;
  List.rev !hits

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let rec walk dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun acc e ->
      let p = Filename.concat dir e in
      if Sys.is_directory p then acc @ walk p
      else if Filename.check_suffix e ".ml" || Filename.check_suffix e ".mli" then acc @ [ p ]
      else acc)
    [] entries

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "lib" in
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    Printf.eprintf "tslint: no such directory: %s\n" root;
    exit 2
  end;
  let rel path =
    (* path relative to root, with / separators *)
    let r = String.length root in
    let p = String.length path in
    if p > r && String.sub path 0 r = root then String.sub path (r + 1) (p - r - 1) else path
  in
  let errors = ref 0 in
  List.iter
    (fun path ->
      let r = rel path in
      let top = match String.index_opt r '/' with Some i -> String.sub r 0 i | None -> "" in
      if (not (List.mem top allowed_dirs)) && not (List.mem r waivers) then begin
        let stripped = strip (read_file path) in
        List.iter
          (fun (token, why) ->
            List.iter
              (fun line ->
                incr errors;
                Printf.printf "%s:%d: forbidden reference %S — %s\n" path line token why)
              (find_tokens stripped token))
          forbidden
      end)
    (walk root);
  if !errors > 0 then begin
    Printf.printf "tslint: %d violation%s of the Ts_rt facade discipline\n" !errors
      (if !errors = 1 then "" else "s");
    exit 1
  end
  else print_endline "tslint: OK"
