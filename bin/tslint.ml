(* tslint — thin CLI over the Ts_lint static-analysis framework
   (lib/lint, docs/LINT.md).

   Five AST passes over the repository's own sources — facade
   discipline, critical-section discipline, the false-sharing audit,
   signal-path safety and the retire-path lifecycle — with inline
   waiver comments replacing the old hardcoded path list.

     tslint.exe [--pass ID[,ID...]] [--json] [--list-passes] [ROOT...]

   Default ROOT is lib.  Exit 1 on any non-waived error diagnostic. *)

let usage () =
  prerr_endline "usage: tslint.exe [--pass ID[,ID...]] [--json] [--list-passes] [ROOT...]";
  prerr_endline "       default ROOT: lib; --list-passes shows the pass catalogue";
  exit 2

let () =
  let roots = ref [] in
  let passes = ref None in
  let json = ref false in
  let rec parse = function
    | [] -> ()
    | "--list-passes" :: _ ->
        Ts_lint.Driver.list_passes ();
        exit 0
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--pass" :: ids :: rest ->
        let add = String.split_on_char ',' ids |> List.map String.trim in
        passes := Some (Option.value ~default:[] !passes @ add);
        parse rest
    | "--pass" :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | root :: rest ->
        roots := root :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = match List.rev !roots with [] -> [ "lib" ] | rs -> rs in
  exit (Ts_lint.Driver.run { Ts_lint.Driver.roots; passes = !passes; json = !json })
