(* tstrace: watch one ThreadScan collect phase happen (Figure 2, §4).

   Three worker threads traverse shared nodes; a fourth fills its delete
   buffer and becomes the reclaimer.  The timeline below is the simulator's
   deterministic trace: signal sends, handler entries/exits, scheduling.

   Usage: dune exec bin/tstrace.exe [-- --threads N] [--buffer N] [--cores N] [--seed N] *)

module Runtime = Ts_sim.Runtime
module Trace = Ts_sim.Trace
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr

let parse_args () =
  let threads = ref 3
  and buffer = ref 8
  and cores = ref 0
  and seed = ref Runtime.default_config.Runtime.seed in
  let rec go = function
    | [] -> ()
    | "--threads" :: n :: rest ->
        threads := int_of_string n;
        go rest
    | "--buffer" :: n :: rest ->
        buffer := int_of_string n;
        go rest
    | "--cores" :: n :: rest ->
        cores := int_of_string n;
        go rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!threads, !buffer, !cores, !seed)

let () =
  let nthreads, buffer_size, cores, seed = parse_args () in
  let record, entries = Trace.recorder () in
  let config =
    {
      Runtime.default_config with
      cores;
      seed;
      (* under multiplexing, a short quantum makes the scheduling visible *)
      quantum = (if cores > 0 then 2_000 else Runtime.default_config.Runtime.quantum);
      trace = Some record;
    }
  in
  let phases = ref 0 and signals = ref 0 and carried = ref 0 in
  ignore
    (Runtime.run ~config (fun () ->
         let ts =
           Threadscan.create
             ~config:
               { Threadscan.Config.max_threads = nthreads + 2; buffer_size; help_free = false }
             ()
         in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let cells = Runtime.alloc_region nthreads in
         let stop = Runtime.alloc_region 1 in
         (* workers: each holds a private reference to a published node and
            keeps working until released — their handlers will mark it *)
         let ws =
           List.init nthreads (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   Frame.with_frame 1 (fun fr ->
                       let p = Ptr.of_addr (Runtime.malloc 3) in
                       Frame.set fr 0 p;
                       Runtime.write (cells + i) p;
                       while Runtime.read stop = 0 do
                         Runtime.advance 20
                       done;
                       Frame.set fr 0 0);
                   smr.Smr.thread_exit ()))
         in
         Runtime.advance 500;
         (* the main thread retires nodes until its buffer overflows: it
            becomes the reclaimer of Figure 2 *)
         for i = 0 to nthreads - 1 do
           let p = Runtime.read (cells + i) in
           if not (Ptr.is_null p) then begin
             Runtime.write (cells + i) 0;
             smr.Smr.retire p (* still held by worker i: will be marked *)
           end
         done;
         for _ = 1 to buffer_size do
           smr.Smr.retire (Ptr.of_addr (Runtime.malloc 3))
         done;
         phases := Threadscan.phases ts;
         signals := Threadscan.signals_sent ts;
         carried := Threadscan.carried_last ts;
         Runtime.write stop 1;
         List.iter Runtime.join ws;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()));
  Fmt.pr "One ThreadScan collect phase, traced (threads=%d, buffer=%d, cores=%s, seed=%d):@.@."
    nthreads buffer_size
    (if cores <= 0 then "dedicated" else string_of_int cores)
    seed;
  Fmt.pr "replay: dune exec bin/tstrace.exe -- --threads %d --buffer %d --cores %d --seed %d@."
    nthreads buffer_size cores seed;
  Fmt.pr "(entries are in global schedule order; times are per-thread local clocks)@.";
  Fmt.pr "%10s  %s@." "cycles" "event";
  List.iter (fun e -> Fmt.pr "%a@." Trace.pp e) (entries ());
  Fmt.pr "@.phases completed: %d;  signals sent: %d;  nodes carried (still referenced): %d@."
    !phases !signals !carried
