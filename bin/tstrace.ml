(* tstrace: watch one ThreadScan collect phase happen (Figure 2, §4).

   Three worker threads traverse shared nodes; a fourth fills its delete
   buffer and becomes the reclaimer.  The timeline below is the simulator's
   deterministic trace: signal sends, handler entries/exits, scheduling.

   With --fault crash|stall, the first worker is killed (or descheduled)
   right before the collect phase, so the timeline additionally shows the
   degradation ladder: the crashed worker is reaped mid-phase, the stalled
   one goes suspect, is proxy-scanned while frozen, and recovers on wake.

   With --analyze, the happens-before race detector and SMR lifecycle
   sanitizer ride along: every violation is emitted as a note in the
   timeline at the moment of detection (showing both racing accesses
   inline), and the analyzer's report is printed after the trace.

   Usage: dune exec bin/tstrace.exe
            [-- --threads N] [--buffer N] [--cores N] [--seed N]
            [--shards N] [--no-magazine]
            [--scheme NAME] [--fault none|crash|stall|<plan>] [--analyze]

   --scheme selects any registry scheme (default threadscan).  The
   ThreadScan phase counters only appear for the ThreadScan family; for
   every other scheme the workers hold their node inside an operation
   bracket (restarting on neutralization), which is what protects it
   there in place of the stack scan.

   --fault also accepts a full Ts_util.Fault_plan expression
   (e.g. "stall:2@800:forever,release:2@40000"): each clause fires on
   worker tids 1..V after advancing the trigger's virtual cycles, so the
   timeline shows exactly when the chaos landed.  The bare crash/stall
   keywords keep their historical one-victim shapes. *)

module Sim = Ts_sim.Runtime (* tslint: allow facade -- trace replay drives the simulator backend directly *)
module Runtime = Ts_rt
module Trace = Ts_sim.Trace (* tslint: allow facade -- renders the simulator's trace entries *)
module Frame = Ts_rt.Frame
module Ptr = Ts_umem.Ptr
module Smr = Ts_smr.Smr
module Registry = Ts_scheme.Registry

let default_scheme = "threadscan"

let parse_args () =
  let threads = ref 3
  and buffer = ref 8
  and cores = ref 0
  and shards = ref 0
  and magazine = ref true
  and scheme = ref default_scheme
  and fault = ref "none"
  and analyze = ref false
  and seed = ref Sim.default_config.Sim.seed in
  let rec go = function
    | [] -> ()
    | "--threads" :: n :: rest ->
        threads := int_of_string n;
        go rest
    | "--buffer" :: n :: rest ->
        buffer := int_of_string n;
        go rest
    | "--cores" :: n :: rest ->
        cores := int_of_string n;
        go rest
    | "--shards" :: n :: rest ->
        shards := int_of_string n;
        go rest
    | "--no-magazine" :: rest ->
        magazine := false;
        go rest
    | "--scheme" :: n :: rest ->
        (match Registry.canonical n with
        | Ok id -> scheme := id
        | Error e -> failwith e);
        go rest
    | "--fault" :: f :: rest ->
        if not (List.mem f [ "none"; "crash"; "stall" ]) then begin
          match Ts_util.Fault_plan.parse f with
          | Ok _ -> ()
          | Error e -> failwith ("unknown fault: " ^ f ^ " (none|crash|stall) or a plan: " ^ e)
        end;
        fault := f;
        go rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        go rest
    | "--analyze" :: rest ->
        analyze := true;
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!threads, !buffer, !cores, !shards, !magazine, !scheme, !fault, !seed, !analyze)

let () =
  let nthreads, buffer_size, cores, shards, magazine, scheme, fault, seed, analyze =
    parse_args ()
  in
  let record, entries = Trace.recorder () in
  let config =
    {
      Sim.default_config with
      cores;
      seed;
      (* under multiplexing, a short quantum makes the scheduling visible *)
      quantum = (if cores > 0 then 2_000 else Sim.default_config.Sim.quantum);
      magazine;
      trace = Some record;
    }
  in
  let phases = ref 0 and signals = ref 0 and carried = ref 0 in
  let has_ts = ref false in
  (* Attach before the run so the decorator observes the backend install;
     violations surface as trace notes the moment they are detected. *)
  let an = if analyze then Some (Ts_analyze.Analyze.attach ()) else None in
  let wrap_analyzed smr =
    match an with Some a -> Ts_analyze.Analyze.wrap_smr a smr | None -> smr
  in
  ignore
    (Sim.run ~config (fun () ->
         let env =
           {
             Registry.max_threads = nthreads + 2;
             hazard_slots = 3;
             epoch_batch = 32;
             budgets =
               (if fault = "none" then None
                else
                  (* budgets small enough that the ladder fires inside this
                     tiny run: the ack wait gives up quickly and suspects
                     are visible *)
                  Some
                    {
                      Registry.ack_budget = 2_000;
                      suspect_phases = 2;
                      takeover_steps = Threadscan.Config.default.Threadscan.Config.takeover_steps;
                      overflow_after = Threadscan.Config.default.Threadscan.Config.overflow_after;
                    });
           }
         in
         let built =
           Registry.build env
             (Registry.spec ~buffer:buffer_size
                ?shards:(if shards = 0 then None else Some shards)
                scheme)
         in
         let smr = wrap_analyzed built.Registry.smr in
         (* schemes without a stack scan protect the held node with an
            operation bracket instead (restarted if neutralized) *)
         let bracket = built.Registry.ts = None in
         smr.Smr.thread_init ();
         let cells = Runtime.alloc_region nthreads in
         let stop = Runtime.alloc_region 1 in
         (* workers: each holds a private reference to a published node and
            keeps working until released — their handlers will mark it *)
         let ws =
           List.init nthreads (fun i ->
               Runtime.spawn (fun () ->
                   smr.Smr.thread_init ();
                   Frame.with_frame 1 (fun fr ->
                       let p = Ptr.of_addr (Runtime.malloc 3) in
                       Frame.set fr 0 p;
                       let rec hold () =
                         match
                           if bracket then smr.Smr.op_begin ();
                           while Runtime.read stop = 0 do
                             Runtime.advance 20
                           done;
                           if bracket then smr.Smr.op_end ()
                         with
                         | () -> ()
                         | exception Smr.Neutralized -> hold ()
                       in
                       Runtime.write (cells + i) p;
                       hold ();
                       Frame.set fr 0 0);
                   smr.Smr.thread_exit ()))
         in
         Runtime.advance 500;
         (* Fault demo: take out the first worker (tid 1) right before the
            collect phase, while it still holds its published node.  A crash
            drops its pin for good (the node is freed, not carried); a stall
            leaves it frozen mid-hold, so the reclaimer must suspect it and
            proxy-scan its stack to keep the node alive until it wakes. *)
         (match fault with
         | "crash" -> Runtime.crash 1
         | "stall" -> Runtime.stall ~cycles:30_000 1
         | "none" -> ()
         | plan ->
             (* full plan: fire each clause on worker tids 1..V, advancing
                to its (virtual-cycle) trigger first.  Wall-clock triggers
                have no meaning in the sim. *)
             let clauses =
               match Ts_util.Fault_plan.parse plan with Ok cs -> cs | Error e -> failwith e
             in
             List.iter
               (fun { Ts_util.Fault_plan.victims; at; event } ->
                 (match at with
                 | Ts_util.Fault_plan.At k -> Runtime.advance k
                 | Ts_util.Fault_plan.At_ms _ ->
                     failwith "wall-clock (ms) triggers need the native backend");
                 for v = 1 to min victims nthreads do
                   match event with
                   | Ts_util.Fault_plan.Crash -> Runtime.crash v
                   | Ts_util.Fault_plan.Stall (Bounded c) -> Runtime.stall ~cycles:c v
                   | Ts_util.Fault_plan.Stall Forever -> Runtime.stall v
                   | Ts_util.Fault_plan.Unstall -> Runtime.unstall v
                   | Ts_util.Fault_plan.Drop_signals n -> Runtime.drop_signals v n
                   | Ts_util.Fault_plan.Delay_signals c -> Runtime.delay_signals v c
                 done)
               clauses);
         (* the main thread retires nodes until its buffer overflows: it
            becomes the reclaimer of Figure 2 *)
         for i = 0 to nthreads - 1 do
           let p = Runtime.read (cells + i) in
           if not (Ptr.is_null p) then begin
             Runtime.write (cells + i) 0;
             smr.Smr.retire p (* still held by worker i: will be marked *)
           end
         done;
         for _ = 1 to buffer_size do
           smr.Smr.retire (Ptr.of_addr (Runtime.malloc 3))
         done;
         (match built.Registry.ts with
         | Some ts ->
             has_ts := true;
             phases := Threadscan.phases ts;
             signals := Threadscan.signals_sent ts;
             carried := Threadscan.carried_last ts
         | None -> ());
         Runtime.write stop 1;
         List.iter Runtime.join ws;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()));
  (if !has_ts then
     Fmt.pr
       "One ThreadScan collect phase, traced (threads=%d, buffer=%d, cores=%s, fault=%s, seed=%d):@.@."
       nthreads buffer_size
       (if cores <= 0 then "dedicated" else string_of_int cores)
       fault seed
   else
     Fmt.pr
       "One %s reclamation pass, traced (threads=%d, buffer=%d, cores=%s, fault=%s, seed=%d):@.@."
       scheme nthreads buffer_size
       (if cores <= 0 then "dedicated" else string_of_int cores)
       fault seed);
  Fmt.pr
    "replay: dune exec bin/tstrace.exe -- --threads %d --buffer %d --cores %d%s%s%s --fault %s \
     --seed %d%s@."
    nthreads buffer_size cores
    (if scheme = default_scheme then "" else " --scheme " ^ scheme)
    (if shards <> 0 then Fmt.str " --shards %d" shards else "")
    (if magazine then "" else " --no-magazine")
    fault seed
    (if analyze then " --analyze" else "");
  Fmt.pr "(entries are in global schedule order; times are per-thread local clocks)@.";
  Fmt.pr "%10s  %s@." "cycles" "event";
  List.iter (fun e -> Fmt.pr "%a@." Trace.pp e) (entries ());
  if !has_ts then
    Fmt.pr "@.phases completed: %d;  signals sent: %d;  nodes carried (still referenced): %d@."
      !phases !signals !carried;
  match an with
  | None -> ()
  | Some a ->
      Ts_analyze.Analyze.detach a;
      Fmt.pr "@.%s" (Ts_analyze.Analyze.report_to_string a)
