(* tsbench: command-line driver for the ThreadScan reproduction.

   - `tsbench run`     one fully parameterised workload, verbose result
   - `tsbench sweep`   one named experiment (fig3-list .. ablate-padding)
   - `tsbench all`     every experiment at a given scale
   - `tsbench list`    available experiment names                          *)

module Workload = Ts_harness.Workload
module Experiment = Ts_harness.Experiment
module Registry = Ts_scheme.Registry
open Cmdliner

(* ------------------------------ converters ------------------------------ *)

let ds_conv =
  let parse = function
    | "list" -> Ok Workload.List_ds
    | "hash" -> Ok Workload.Hash_ds
    | "skip" | "skiplist" -> Ok Workload.Skip_ds
    | s -> Error (`Msg (Fmt.str "unknown data structure %S (list|hash|skip)" s))
  in
  Arg.conv (parse, fun ppf ds -> Fmt.string ppf (Workload.ds_kind_to_string ds))

let scale_conv =
  let parse s =
    match Experiment.scale_of_string s with
    | Some sc -> Ok sc
    | None -> Error (`Msg (Fmt.str "unknown scale %S (quick|full|paper)" s))
  in
  Arg.conv
    ( parse,
      fun ppf s ->
        Fmt.string ppf
          (match s with
          | Experiment.Quick -> "quick"
          | Experiment.Full -> "full"
          | Experiment.Paper -> "paper") )

let backend_conv =
  let parse = function
    | "sim" -> Ok `Sim
    | "native" -> Ok `Native
    | s -> Error (`Msg (Fmt.str "unknown backend %S (sim|native)" s))
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (match b with `Sim -> "sim" | `Native -> "native"))

let backend_arg =
  Arg.(
    value & opt backend_conv `Sim
    & info [ "b"; "backend" ]
        ~doc:"Execution backend: $(b,sim) (deterministic simulator) or $(b,native) (OCaml 5 domains).")

let pool_arg =
  Arg.(
    value & opt int 0
    & info [ "pool" ]
        ~doc:"Native backend only: domain pool size (0 = one domain per thread, capped at the \
              recommended domain count).")

let make_backend backend pool =
  match backend with `Sim -> Workload.Backend_sim | `Native -> Workload.Backend_native { pool }

(* Scheme names resolve through the registry (ids and aliases alike);
   the per-scheme tuning flags ride along as registry params and are
   ignored by schemes they do not apply to.  [--pipeline] upgrades a
   scheme to its pipelined registry variant when it has one. *)
let scheme_conv ~buffer ~help_free ~pipeline ~shards ~delay name =
  match Registry.canonical name with
  | Error e -> Error (`Msg e)
  | Ok id ->
      let id =
        if pipeline then Option.value (Registry.get id).Registry.pipelined ~default:id
        else id
      in
      Ok (Registry.spec ~buffer ~help_free ?shards ~delay id)

(* -------------------------------- run ----------------------------------- *)

let print_result (r : Workload.result) =
  let s = r.spec in
  Fmt.pr "workload:   %s + %s, %d threads on %s cores@."
    (Workload.ds_kind_to_string s.ds)
    (Registry.describe s.scheme)
    s.threads
    (if s.cores <= 0 then "dedicated" else string_of_int s.cores);
  Fmt.pr "            init=%d range=%d updates=%.0f%% horizon=%d cycles seed=%d@." s.init_size
    s.key_range (100. *. s.update_ratio) s.horizon s.seed;
  Fmt.pr "ops:        %d (%.1f per Mcycle)@." r.ops r.throughput;
  Fmt.pr "reclaim:    retired=%d freed=%d outstanding=%d peak-live=%d@." r.retired r.freed
    r.outstanding r.peak_live_blocks;
  Fmt.pr "%-11s elapsed=%d signals=%d switches=%d faults=%d@."
    (match r.spec.backend with Workload.Backend_sim -> "simulator:" | _ -> "native:")
    r.elapsed r.signals_delivered r.ctx_switches r.faults;
  if r.wall_ns > 0 then begin
    Fmt.pr "wall:       %.1f ms, %.1f kops/s@."
      (float_of_int r.wall_ns /. 1e6)
      (r.wall_throughput /. 1e3);
    if r.trials > 1 then
      Fmt.pr "trials:     median of %d (spread %.1f..%.1f ms)@." r.trials
        (float_of_int r.wall_min_ns /. 1e6)
        (float_of_int r.wall_max_ns /. 1e6)
  end;
  if r.extras <> [] then begin
    Fmt.pr "scheme:    ";
    List.iter (fun (k, v) -> Fmt.pr " %s=%d" k v) r.extras;
    Fmt.pr "@."
  end;
  if r.wedged then
    Fmt.pr "wedged:     liveness watchdog killed the run%a@."
      Fmt.(option (any ":@.            " ++ string))
      r.post_mortem;
  match r.chaos with
  | None -> ()
  | Some c ->
      (* ns on the native backend, virtual cycles on the sim *)
      let unit = match s.backend with Workload.Backend_sim -> "cycles" | _ -> "ns" in
      let t v = if v < 0 then "-" else Fmt.str "%d%s" v unit in
      Fmt.pr "chaos:      plan=%s fired=%d fault@%s@."
        (Ts_util.Fault_plan.to_string s.chaos)
        c.Ts_harness.Chaos.clauses_fired
        (t c.Ts_harness.Chaos.fault_at);
      Fmt.pr "recovery:   baseline=%d peak=%d takeover=%s recover=%s storm=%d@."
        c.Ts_harness.Chaos.baseline_outstanding c.Ts_harness.Chaos.peak_outstanding
        (t c.Ts_harness.Chaos.takeover_after)
        (t c.Ts_harness.Chaos.recover_after)
        c.Ts_harness.Chaos.storm_signals

let run_cmd =
  let ds =
    Arg.(value & opt ds_conv Workload.List_ds & info [ "d"; "ds" ] ~doc:"Data structure (list|hash|skip).")
  in
  let scheme_name =
    Arg.(
      value & opt string "threadscan"
      & info [ "s"; "scheme" ]
          ~doc:(Fmt.str "Reclamation scheme: %s." (Registry.names_doc ())))
  in
  let threads = Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Worker threads.") in
  let cores =
    Arg.(value & opt int 0 & info [ "c"; "cores" ] ~doc:"Simulated cores (0 = one per thread).")
  in
  let horizon = Arg.(value & opt int 400_000 & info [ "horizon" ] ~doc:"Cycles per run.") in
  let init = Arg.(value & opt int 128 & info [ "init" ] ~doc:"Initial structure size.") in
  let range = Arg.(value & opt int 256 & info [ "range" ] ~doc:"Key range.") in
  let update =
    Arg.(value & opt float 0.2 & info [ "update" ] ~doc:"Update ratio (paper: 0.2).")
  in
  let buffer =
    Arg.(value & opt int 32 & info [ "buffer" ] ~doc:"ThreadScan per-thread delete buffer.")
  in
  let help_free =
    Arg.(value & flag & info [ "help-free" ] ~doc:"Enable the help-free ThreadScan variant.")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "ThreadScan only: enable the parallel reclamation pipeline (sealed-run merge \
             collect, Bloom-prefiltered scan, chunked parallel free; see docs/PERF.md).")
  in
  let shards =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "ThreadScan reclamation shard count: 0 = auto (one shard per 8 threads), 1 = \
             single master, >1 = that many shards with helper work-stealing.  Unset keeps \
             the registry default (1 for legacy threadscan, auto for the pipeline).")
  in
  let no_magazine =
    Arg.(
      value & flag
      & info [ "no-magazine" ]
          ~doc:
            "Disable the per-thread allocator magazines (both backends): every small \
             malloc/free goes through the central free lists.")
  in
  let trials =
    Arg.(
      value & opt int 0
      & info [ "trials" ]
          ~doc:
            "Repeat the run and report the median by wall time (0 = auto: 3 on the native \
             backend, 1 on the deterministic simulator).")
  in
  let delay =
    Arg.(value & opt int 600_000 & info [ "delay" ] ~doc:"Slow-epoch errant delay (cycles).")
  in
  let padding = Arg.(value & opt int 0 & info [ "padding" ] ~doc:"Extra node words.") in
  let seed = Arg.(value & opt int 0xBE5 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Run the workload twice — plain, then under the happens-before + lifecycle \
             checkers — and report the detector's findings and host-time overhead.")
  in
  let chaos =
    Arg.(
      value & opt string "none"
      & info [ "chaos" ]
          ~doc:
            "Fault plan to inject, e.g. $(b,crash:1\\@100000) or \
             $(b,stall:2\\@80000:forever,release:2\\@500ms): comma-separated clauses \
             EVENT:VICTIMS\\@TRIGGER, where the trigger is virtual cycles or (native only) \
             $(b,Nms) wall-clock; events are crash, stall (bounded, $(b,:forever)), release, \
             drop-signals:N, delay-signals:CYCLES.  Recovery metrics are reported after the \
             run.")
  in
  let watchdog =
    Arg.(
      value & opt int 0
      & info [ "watchdog" ]
          ~doc:
            "Native backend only: liveness watchdog budget in milliseconds — a run still \
             going after this long is killed and reported as wedged with a post-mortem \
             (0 = off).  Required for chaos plans that starve plain epoch forever.")
  in
  let action ds scheme_name threads cores horizon init range update buffer help_free pipeline
      shards no_magazine trials delay padding seed analyze chaos watchdog backend pool =
    match
      ( scheme_conv ~buffer ~help_free ~pipeline ~shards ~delay scheme_name,
        Ts_util.Fault_plan.parse chaos )
    with
    | Error (`Msg m), _ -> `Error (false, m)
    | _, Error m -> `Error (false, Fmt.str "bad --chaos plan: %s" m)
    | Ok scheme, Ok chaos ->
        let spec =
          {
            Workload.default_spec with
            ds;
            scheme;
            threads;
            cores;
            horizon;
            init_size = init;
            key_range = range;
            update_ratio = update;
            padding;
            seed;
            chaos;
            watchdog_ms = watchdog;
            magazine = not no_magazine;
            backend = make_backend backend pool;
          }
        in
        let trials =
          if trials > 0 then trials
          else match spec.Workload.backend with Workload.Backend_native _ -> 3 | _ -> 1
        in
        if not analyze then begin
          print_result (Workload.run_trials ~trials spec);
          `Ok ()
        end
        else begin
          (* Paired runs: the plain result is the baseline the analyzed
             run's host time is compared against.  (Virtual throughput is
             not comparable: the analyzer adds ops to the schedule.) *)
          let time f =
            let t0 = Sys.time () in
            let r = f () in
            (r, Sys.time () -. t0)
          in
          let r_plain, t_plain = time (fun () -> Workload.run spec) in
          let an = Ts_analyze.Analyze.attach ~notes:false () in
          let r_an, t_an =
            Fun.protect
              ~finally:(fun () -> Ts_analyze.Analyze.detach an)
              (fun () ->
                time (fun () ->
                    Workload.run
                      { spec with Workload.smr_wrap = Some (Ts_analyze.Analyze.wrap_smr an) }))
          in
          print_result r_plain;
          let host r t =
            if r.Workload.wall_ns > 0 then float_of_int r.Workload.wall_ns /. 1e9 else t
          in
          let base = host r_plain t_plain and instr = host r_an t_an in
          Fmt.pr "@.analysis:   %d ops observed, %d allocations tracked@."
            (Ts_analyze.Analyze.ops_seen an)
            (Ts_analyze.Analyze.allocs_seen an);
          Fmt.pr "            %d races, %d lifecycle violations (+%d beyond cap)@."
            (List.length (Ts_analyze.Analyze.races an))
            (List.length (Ts_analyze.Analyze.lifecycle_violations an))
            (Ts_analyze.Analyze.dropped an);
          List.iter
            (fun v -> Fmt.pr "            %a@." Ts_analyze.Analyze.pp_violation v)
            (Ts_analyze.Analyze.violations an);
          Fmt.pr "overhead:   %.3fs plain -> %.3fs analyzed (%.1fx)@." base instr
            (if base > 0.0 then instr /. base else 0.0);
          if Ts_analyze.Analyze.violations an = [] then `Ok ()
          else begin
            Fmt.pr "tsbench: analysis found violations@.";
            exit 1
          end
        end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one fully parameterised workload.")
    Term.(
      ret
        (const action $ ds $ scheme_name $ threads $ cores $ horizon $ init $ range $ update
       $ buffer $ help_free $ pipeline $ shards $ no_magazine $ trials $ delay $ padding $ seed
       $ analyze $ chaos $ watchdog $ backend_arg $ pool_arg))

(* ------------------------------- sweep ---------------------------------- *)

let scale_arg =
  Arg.(value & opt scale_conv Experiment.Quick & info [ "scale" ] ~doc:"quick|full|paper.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Also write the sweep as $(b,BENCH_<experiment>.json).")

let trials_arg =
  Arg.(
    value & opt int 0
    & info [ "trials" ]
        ~doc:
          "Trials per wall-clock measurement; the median run is reported with the min/max \
           spread (0 = auto: 3 on the native backend, 1 on the simulator).")

let sweep_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc:"Experiment name.")
  in
  let action name scale backend pool json trials =
    match List.assoc_opt name Experiment.names with
    | None ->
        `Error
          ( false,
            Fmt.str "unknown experiment %S; one of: %s" name
              (String.concat ", " (List.map fst Experiment.names)) )
    | Some f ->
        Experiment.run_and_print ~title:name ~backend:(make_backend backend pool) ~json ~trials
          f scale;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run one named experiment (a paper figure or an ablation).")
    Term.(
      ret (const action $ exp_name $ scale_arg $ backend_arg $ pool_arg $ json_arg $ trials_arg))

let all_cmd =
  let action scale backend pool json trials =
    let backend = make_backend backend pool in
    List.iter
      (fun (name, f) ->
        (* chaos-recovery injects faults into real domains: silently
           meaningless on the simulator, so `all` only runs it natively *)
        if name = "chaos-recovery" && backend = Workload.Backend_sim then
          Fmt.pr "@.== chaos-recovery == skipped (native backend only)@."
        else Experiment.run_and_print ~title:name ~backend ~json ~trials f scale)
      Experiment.names
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at the given scale.")
    Term.(const action $ scale_arg $ backend_arg $ pool_arg $ json_arg $ trials_arg)

let list_cmd =
  let action () = List.iter (fun (n, _) -> print_endline n) Experiment.names in
  Cmd.v (Cmd.info "list" ~doc:"List experiment names.") Term.(const action $ const ())

let () =
  let doc = "ThreadScan (SPAA 2015) reproduction benchmarks" in
  exit (Cmd.eval (Cmd.group (Cmd.info "tsbench" ~doc) [ run_cmd; sweep_cmd; all_cmd; list_cmd ]))
