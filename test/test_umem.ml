module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Ptr = Ts_umem.Ptr
module Size_class = Ts_umem.Size_class
module Splitmix = Ts_util.Splitmix

let check = Alcotest.(check int)

let fresh () =
  let mem = Mem.create () in
  let alloc = Alloc.create ~max_threads:4 mem in
  (mem, alloc)

(* --------------------------------- Ptr ---------------------------------- *)

let test_ptr_roundtrip () =
  List.iter
    (fun a -> check "roundtrip" a (Ptr.addr (Ptr.of_addr a)))
    [ 1; 2; 1000; 123456; (1 lsl 40) - 1 ]

let test_ptr_marking () =
  let p = Ptr.of_addr 77 in
  Alcotest.(check bool) "fresh unmarked" false (Ptr.is_marked p);
  let m = Ptr.mark p in
  Alcotest.(check bool) "marked" true (Ptr.is_marked m);
  check "addr survives mark" 77 (Ptr.addr m);
  check "unmark restores" p (Ptr.unmark m)

let test_ptr_null () =
  Alcotest.(check bool) "null is null" true (Ptr.is_null Ptr.null);
  Alcotest.(check bool) "tagged null is null" true (Ptr.is_null (Ptr.mark Ptr.null));
  Alcotest.(check bool) "non-null" false (Ptr.is_null (Ptr.of_addr 1))

let test_ptr_mask () =
  check "mask clears 3 bits" (Ptr.of_addr 5) (Ptr.mask (Ptr.of_addr 5 lor 7))

(* --------------------------------- Mem ---------------------------------- *)

let test_mem_reserve_rw () =
  let mem = Mem.create () in
  let base = Mem.reserve mem 10 in
  Mem.mark_live mem base 10;
  Mem.write mem base 42;
  Mem.write mem (base + 9) 43;
  check "read back" 42 (Mem.read mem base);
  check "read back end" 43 (Mem.read mem (base + 9))

let test_mem_wild_access () =
  let mem = Mem.create () in
  let base = Mem.reserve mem 4 in
  (* reserved but never marked live *)
  Alcotest.check_raises "wild read" (Mem.Fault (Mem.Wild_read, base)) (fun () ->
      ignore (Mem.read mem base));
  Alcotest.check_raises "wild write" (Mem.Fault (Mem.Wild_write, base)) (fun () ->
      Mem.write mem base 1)

let test_mem_null_page () =
  let mem = Mem.create () in
  Alcotest.check_raises "null deref" (Mem.Fault (Mem.Wild_read, 0)) (fun () ->
      ignore (Mem.read mem 0))

let test_mem_uaf () =
  let mem = Mem.create () in
  let base = Mem.reserve mem 4 in
  Mem.mark_live mem base 4;
  Mem.write mem base 7;
  Mem.mark_freed mem base 4;
  Alcotest.check_raises "uaf read" (Mem.Fault (Mem.Uaf_read, base)) (fun () ->
      ignore (Mem.read mem base));
  Alcotest.check_raises "uaf write" (Mem.Fault (Mem.Uaf_write, base + 1)) (fun () ->
      Mem.write mem (base + 1) 1)

let test_mem_poison () =
  let mem = Mem.create () in
  let base = Mem.reserve mem 4 in
  Mem.mark_live mem base 4;
  Mem.write mem base 7;
  Mem.mark_freed mem base 4;
  check "poisoned" Mem.poison (Mem.raw_read mem base)

let test_mem_nonstrict_counts () =
  let mem = Mem.create ~strict:false () in
  let base = Mem.reserve mem 2 in
  Mem.mark_live mem base 2;
  Mem.mark_freed mem base 2;
  check "uaf read returns poison" Mem.poison (Mem.read mem base);
  Mem.write mem base 9;
  check "uaf read count" 1 (Mem.fault_count mem Mem.Uaf_read);
  check "uaf write count" 1 (Mem.fault_count mem Mem.Uaf_write);
  check "total" 2 (Mem.total_faults mem)

let test_mem_realloc_clears_state () =
  let mem = Mem.create () in
  let base = Mem.reserve mem 4 in
  Mem.mark_live mem base 4;
  Mem.mark_freed mem base 4;
  Mem.mark_live mem base 4;
  check "zeroed on relive" 0 (Mem.read mem base)

let test_mem_capacity_limit () =
  let mem = Mem.create ~capacity_limit:1024 () in
  ignore (Mem.reserve mem 1000);
  Alcotest.check_raises "oom" (Mem.Fault (Mem.Out_of_memory, 1001)) (fun () ->
      ignore (Mem.reserve mem 100))

(* ------------------------------ Size_class ------------------------------ *)

let test_size_class_monotone () =
  for n = 1 to Size_class.max_small do
    let c = Size_class.of_size n in
    Alcotest.(check bool) "class fits" true (Size_class.size c >= n);
    if c > 0 then
      Alcotest.(check bool) "tightest class" true (Size_class.size (c - 1) < n)
  done

let test_size_class_bounds () =
  Alcotest.(check bool) "0 not small" false (Size_class.is_small 0);
  Alcotest.(check bool) "max small" true (Size_class.is_small Size_class.max_small);
  Alcotest.(check bool) "beyond" false (Size_class.is_small (Size_class.max_small + 1))

(* -------------------------------- Alloc --------------------------------- *)

let test_alloc_basic () =
  let mem, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 3 in
  check "zero filled" 0 (Mem.read mem a);
  Mem.write mem a 11;
  Mem.write mem (a + 2) 13;
  check "rw" 11 (Mem.read mem a);
  check "live blocks" 1 (Alloc.live_blocks alloc);
  Alloc.free alloc ~tid:0 a;
  check "live blocks after free" 0 (Alloc.live_blocks alloc)

let test_alloc_reuse_same_class () =
  let _, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 3 in
  Alloc.free alloc ~tid:0 a;
  let b = Alloc.malloc alloc ~tid:0 3 in
  check "cache reuses freed block" a b

let test_alloc_usable_size () =
  let _, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 5 in
  Alcotest.(check bool) "usable >= requested" true (Alloc.block_size alloc a >= 5)

let test_alloc_double_free () =
  let _, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 2 in
  Alloc.free alloc ~tid:0 a;
  Alcotest.check_raises "double free" (Mem.Fault (Mem.Double_free, a)) (fun () ->
      Alloc.free alloc ~tid:0 a)

let test_alloc_interior_free () =
  let _, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 8 in
  Alcotest.check_raises "interior free" (Mem.Fault (Mem.Bad_free, a + 1)) (fun () ->
      Alloc.free alloc ~tid:0 (a + 1))

let test_alloc_header_protected () =
  let mem, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 2 in
  Alcotest.check_raises "header is not data" (Mem.Fault (Mem.Wild_read, a - 1)) (fun () ->
      ignore (Mem.read mem (a - 1)))

let test_alloc_uaf_detected () =
  let mem, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 2 in
  Alloc.free alloc ~tid:0 a;
  Alcotest.check_raises "uaf" (Mem.Fault (Mem.Uaf_read, a)) (fun () ->
      ignore (Mem.read mem a))

let test_alloc_large () =
  let mem, alloc = fresh () in
  let n = Size_class.max_small * 3 in
  let a = Alloc.malloc alloc ~tid:0 n in
  Mem.write mem (a + n - 1) 5;
  check "large rw" 5 (Mem.read mem (a + n - 1));
  check "large exact size" n (Alloc.block_size alloc a);
  Alloc.free alloc ~tid:0 a;
  let b = Alloc.malloc alloc ~tid:0 n in
  check "large reuse" a b

let test_alloc_is_block () =
  let _, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 4 in
  Alcotest.(check bool) "base is block" true (Alloc.is_block alloc a);
  Alcotest.(check bool) "interior is not" false (Alloc.is_block alloc (a + 1));
  Alloc.free alloc ~tid:0 a;
  Alcotest.(check bool) "freed is not" false (Alloc.is_block alloc a)

let test_alloc_cross_thread_free () =
  let _, alloc = fresh () in
  let a = Alloc.malloc alloc ~tid:0 3 in
  Alloc.free alloc ~tid:1 a;
  (* Thread 1's cache owns it now; thread 1 reuses it. *)
  let b = Alloc.malloc alloc ~tid:1 3 in
  check "migrated to freeing thread's cache" a b

let test_alloc_region_permanent () =
  let mem, alloc = fresh () in
  let r = Alloc.alloc_region alloc 16 in
  Mem.write mem (r + 15) 3;
  check "region rw" 3 (Mem.read mem (r + 15));
  Alcotest.check_raises "regions cannot be freed" (Mem.Fault (Mem.Bad_free, r)) (fun () ->
      Alloc.free alloc ~tid:0 r)

let test_alloc_stats () =
  let _, alloc = fresh () in
  let blocks = List.init 10 (fun _ -> Alloc.malloc alloc ~tid:0 4) in
  check "peak" 10 (Alloc.peak_live_blocks alloc);
  List.iter (Alloc.free alloc ~tid:0) blocks;
  check "mallocs" 10 (Alloc.total_mallocs alloc);
  check "frees" 10 (Alloc.total_frees alloc);
  check "live" 0 (Alloc.live_blocks alloc);
  check "live words" 0 (Alloc.live_words alloc);
  Alcotest.(check bool) "cache hits happened" true (Alloc.cache_hits alloc > 0);
  check "one central refill was enough" 1 (Alloc.central_refills alloc)

(* ------------------------------ properties ------------------------------ *)

(* Random malloc/free interleavings: live blocks never overlap, contents are
   independent, sizes honoured. *)
let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"random alloc/free: live blocks disjoint" ~count:100
    QCheck.(pair int (list (pair bool (int_range 1 300))))
    (fun (seed, ops) ->
      let mem = Mem.create () in
      let alloc = Alloc.create ~max_threads:2 mem in
      let rng = Splitmix.create seed in
      let live = Hashtbl.create 16 in
      List.iter
        (fun (do_alloc, n) ->
          if do_alloc || Hashtbl.length live = 0 then begin
            let a = Alloc.malloc alloc ~tid:(Splitmix.below rng 2) n in
            let size = Alloc.block_size alloc a in
            (* stamp the block with its own id *)
            for i = 0 to size - 1 do
              Mem.write mem (a + i) a
            done;
            Hashtbl.replace live a size
          end
          else begin
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
            let victim = List.nth keys (Splitmix.below rng (List.length keys)) in
            (* before freeing, verify the stamp is intact: overlap would have
               corrupted it *)
            let size = Hashtbl.find live victim in
            for i = 0 to size - 1 do
              if Mem.read mem (victim + i) <> victim then failwith "overlap!"
            done;
            Alloc.free alloc ~tid:(Splitmix.below rng 2) victim;
            Hashtbl.remove live victim
          end)
        ops;
      Hashtbl.iter
        (fun a size ->
          for i = 0 to size - 1 do
            if Mem.read mem (a + i) <> a then failwith "corrupt survivor"
          done)
        live;
      Hashtbl.length live = Alloc.live_blocks alloc)

let prop_alloc_balance =
  QCheck.Test.make ~name:"mallocs - frees = live" ~count:100
    QCheck.(list (int_range 1 64))
    (fun sizes ->
      let mem = Mem.create () in
      let alloc = Alloc.create ~max_threads:1 mem in
      let blocks = List.map (fun n -> Alloc.malloc alloc ~tid:0 n) sizes in
      let half = List.filteri (fun i _ -> i mod 2 = 0) blocks in
      List.iter (Alloc.free alloc ~tid:0) half;
      Alloc.total_mallocs alloc - Alloc.total_frees alloc = Alloc.live_blocks alloc)

(* Magazine conservation: tiny per-thread magazines (cache_cap 4, batch 2)
   forced through constant refill/flush churn must neither lose nor
   duplicate a block against the central lists.  Duplication is caught
   directly (a returned base already live, or the strict heap's
   double-free fault); loss is caught by the capacity limit — the heap is
   sized for a handful of working sets, so a block stranded per round
   would grow the reserve until [Out_of_memory]. *)
let prop_magazine_conservation =
  QCheck.Test.make ~name:"magazines: refill/flush loses and duplicates nothing" ~count:60
    QCheck.(pair int (list (int_range 1 16)))
    (fun (seed, sizes) ->
      let sizes = if sizes = [] then [ 3 ] else sizes in
      let words = List.fold_left ( + ) 0 sizes in
      (* ~6 working sets incl. headers: ample steady state, fatal leak *)
      let mem = Mem.create ~capacity_limit:(1024 + (6 * (words + (3 * List.length sizes)))) () in
      let alloc = Alloc.create ~cache_cap:4 ~batch:2 ~max_threads:2 mem in
      let rng = Splitmix.create seed in
      let live = Hashtbl.create 16 in
      for _round = 1 to 40 do
        let blocks =
          List.map
            (fun n ->
              let a = Alloc.malloc alloc ~tid:(Splitmix.below rng 2) n in
              if Hashtbl.mem live a then failwith "block handed out twice";
              Hashtbl.replace live a ();
              a)
            sizes
        in
        (* cross-thread frees push the flush path on both magazine rows *)
        List.iter
          (fun a ->
            Hashtbl.remove live a;
            Alloc.free alloc ~tid:(Splitmix.below rng 2) a)
          blocks
      done;
      Alloc.live_blocks alloc = 0
      && Alloc.total_mallocs alloc = Alloc.total_frees alloc
      && Alloc.cache_flushes alloc > 0 (* the churn actually exercised the path *))

(* Savepoint safety: the magazine rows, central lists and the extended
   counters all round-trip through snapshot/restore — the restored
   allocator is digest-identical and replays the exact same addresses. *)
let prop_magazine_snapshot_roundtrip =
  QCheck.Test.make ~name:"magazines: snapshot/restore replays identically" ~count:60
    QCheck.(pair int (list (int_range 1 16)))
    (fun (seed, sizes) ->
      let sizes = if sizes = [] then [ 2; 5 ] else sizes in
      let mem = Mem.create () in
      let alloc = Alloc.create ~cache_cap:4 ~batch:2 ~max_threads:2 mem in
      let rng = Splitmix.create seed in
      (* warm the magazines so the snapshot captures non-trivial rows *)
      let warm = List.map (fun n -> Alloc.malloc alloc ~tid:(Splitmix.below rng 2) n) sizes in
      List.iteri (fun i a -> if i mod 2 = 0 then Alloc.free alloc ~tid:0 a) warm;
      let digest s =
        let b = Buffer.create 256 in
        Alloc.snapshot_digest_into b s;
        Buffer.contents b
      in
      let msnap = Mem.snapshot mem in
      let asnap = Alloc.snapshot alloc in
      let d0 = digest asnap in
      let replay () =
        List.map (fun n -> Alloc.malloc alloc ~tid:(n mod 2) (1 + (n mod 16))) sizes
      in
      let first = replay () in
      Mem.restore_snapshot mem msnap;
      Alloc.restore_snapshot alloc asnap;
      let d1 = digest (Alloc.snapshot alloc) in
      let second = replay () in
      d0 = d1 && first = second)

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ts_umem"
    [
      ( "ptr",
        [
          Alcotest.test_case "roundtrip" `Quick test_ptr_roundtrip;
          Alcotest.test_case "marking" `Quick test_ptr_marking;
          Alcotest.test_case "null" `Quick test_ptr_null;
          Alcotest.test_case "mask" `Quick test_ptr_mask;
        ] );
      ( "mem",
        [
          Alcotest.test_case "reserve + rw" `Quick test_mem_reserve_rw;
          Alcotest.test_case "wild access faults" `Quick test_mem_wild_access;
          Alcotest.test_case "null page faults" `Quick test_mem_null_page;
          Alcotest.test_case "use-after-free faults" `Quick test_mem_uaf;
          Alcotest.test_case "freed words poisoned" `Quick test_mem_poison;
          Alcotest.test_case "non-strict counting" `Quick test_mem_nonstrict_counts;
          Alcotest.test_case "realloc clears state" `Quick test_mem_realloc_clears_state;
          Alcotest.test_case "capacity limit" `Quick test_mem_capacity_limit;
        ] );
      ( "size_class",
        [
          Alcotest.test_case "classes tight and monotone" `Quick test_size_class_monotone;
          Alcotest.test_case "bounds" `Quick test_size_class_bounds;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "malloc/free basic" `Quick test_alloc_basic;
          Alcotest.test_case "cache reuse" `Quick test_alloc_reuse_same_class;
          Alcotest.test_case "usable size" `Quick test_alloc_usable_size;
          Alcotest.test_case "double free detected" `Quick test_alloc_double_free;
          Alcotest.test_case "interior free detected" `Quick test_alloc_interior_free;
          Alcotest.test_case "header protected" `Quick test_alloc_header_protected;
          Alcotest.test_case "UAF detected" `Quick test_alloc_uaf_detected;
          Alcotest.test_case "large blocks" `Quick test_alloc_large;
          Alcotest.test_case "is_block" `Quick test_alloc_is_block;
          Alcotest.test_case "cross-thread free" `Quick test_alloc_cross_thread_free;
          Alcotest.test_case "regions permanent" `Quick test_alloc_region_permanent;
          Alcotest.test_case "stats" `Quick test_alloc_stats;
          qt prop_alloc_no_overlap;
          qt prop_alloc_balance;
        ] );
      ( "magazines",
        [ qt prop_magazine_conservation; qt prop_magazine_snapshot_roundtrip ] );
    ]
