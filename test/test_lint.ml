(* ts_lint regression suite.

   Each fixture in lint_fixtures/ seeds violations for exactly one
   pass; the suite pins the reported pass id, file and line numbers so
   a pass that drifts (stops seeing a shape, or starts mis-locating
   it) fails here before it rots the tree.  The facade fixture carries
   the module-alias and [open] shapes the original textual grep could
   not see — the regression that motivated the AST rewrite. *)

module Diagnostic = Ts_lint.Diagnostic
module Driver = Ts_lint.Driver
module Waiver = Ts_lint.Waiver

(* `dune runtest` runs in test/; a bare `dune exec` runs at the root *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

let errors ds =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds

(* Run one pass over one fixture; check every diagnostic cites the
   right pass and file, and the error lines are exactly [expected]. *)
let check_fixture ~pass name expected () =
  let ds = Driver.lint_file ~passes:[ pass ] (fixture name) in
  List.iter
    (fun d ->
      Alcotest.(check string) "pass id" pass d.Diagnostic.pass;
      Alcotest.(check string) "file" name (Filename.basename d.Diagnostic.file))
    ds;
  Alcotest.(check (list int))
    "error lines" expected
    (List.map (fun d -> d.Diagnostic.line) (errors ds))

(* The alias/open regression, spelled out: line 9 USES the alias
   ([A.make]) and must stay silent — the violation is pinned on the
   binding (line 5), not smuggled through the use. *)
let test_facade_alias_flagged_at_binding () =
  let ds = errors (Driver.lint_file ~passes:[ "facade" ] (fixture "fixture_facade.ml")) in
  Alcotest.(check bool)
    "alias binding flagged" true
    (List.exists (fun d -> d.Diagnostic.line = 5) ds);
  Alcotest.(check bool)
    "alias use not re-flagged" false
    (List.exists (fun d -> d.Diagnostic.line = 9) ds)

(* All passes at once still attribute each violation to its own pass. *)
let test_all_passes_attribution () =
  let ds = errors (Driver.lint_file (fixture "fixture_padded.ml")) in
  let padded = List.filter (fun d -> d.Diagnostic.pass = "padded") ds in
  Alcotest.(check (list int))
    "padded lines under full run" [ 8; 10 ]
    (List.map (fun d -> d.Diagnostic.line) padded)

(* ------------------------------ waivers ------------------------------ *)

let test_waiver_parses () =
  let src = "let x = 1 (* tslint: allow facade -- demo backdoor *)\nlet y = 2\n" in
  let ws, warns = Waiver.scan ~file:"x.ml" src in
  Alcotest.(check int) "one waiver" 1 (List.length ws);
  Alcotest.(check int) "no warnings" 0 (List.length warns);
  Alcotest.(check bool) "covers its line" true (Waiver.covers ws ~pass:"facade" ~line:1);
  Alcotest.(check bool) "covers next line" true (Waiver.covers ws ~pass:"facade" ~line:2);
  Alcotest.(check bool) "not other passes" false (Waiver.covers ws ~pass:"retire" ~line:1);
  Alcotest.(check bool) "not later lines" false (Waiver.covers ws ~pass:"facade" ~line:3)

let test_waiver_requires_reason () =
  let _, warns = Waiver.scan ~file:"x.ml" "(* tslint: allow facade *)\n" in
  Alcotest.(check int) "malformed reported" 1 (List.length warns)

let test_waiver_prose_is_not_directive () =
  let ws, warns =
    Waiver.scan ~file:"x.ml" "(* the tslint: marker mid-comment is prose *)\n"
  in
  Alcotest.(check int) "no waiver" 0 (List.length ws);
  Alcotest.(check int) "no warning" 0 (List.length warns)

let test_unused_waiver_reported () =
  let ws, _ = Waiver.scan ~file:"x.ml" "(* tslint: allow facade -- nothing here *)\n" in
  Alcotest.(check int) "unused under its pass" 1
    (List.length (Waiver.unused ws ~file:"x.ml" ~ran:[ "facade" ]));
  Alcotest.(check int) "silent when pass not run" 0
    (List.length (Waiver.unused ws ~file:"x.ml" ~ran:[ "retire" ]))

let () =
  Alcotest.run "ts_lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "facade" `Quick
            (check_fixture ~pass:"facade" "fixture_facade.ml" [ 5; 7; 10 ]);
          Alcotest.test_case "critical" `Quick
            (check_fixture ~pass:"critical" "fixture_critical.ml" [ 5; 6; 7; 10; 12 ]);
          Alcotest.test_case "padded" `Quick
            (check_fixture ~pass:"padded" "fixture_padded.ml" [ 8; 10 ]);
          Alcotest.test_case "sigsafe" `Quick
            (check_fixture ~pass:"sigsafe" "fixture_sigsafe.ml" [ 8; 9 ]);
          Alcotest.test_case "retire" `Quick
            (check_fixture ~pass:"retire" "fixture_retire.ml" [ 8 ]);
          Alcotest.test_case "facade alias at binding" `Quick
            test_facade_alias_flagged_at_binding;
          Alcotest.test_case "full-run attribution" `Quick test_all_passes_attribution;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "parses" `Quick test_waiver_parses;
          Alcotest.test_case "requires reason" `Quick test_waiver_requires_reason;
          Alcotest.test_case "prose ignored" `Quick test_waiver_prose_is_not_directive;
          Alcotest.test_case "unused reported" `Quick test_unused_waiver_reported;
        ] );
    ]
