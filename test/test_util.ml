module Splitmix = Ts_util.Splitmix
module Vec = Ts_util.Vec
module Isort = Ts_util.Isort
module Bloom = Ts_util.Bloom
module Padded = Ts_util.Padded

let check = Alcotest.(check int)

(* ------------------------------- Splitmix ------------------------------ *)

let test_rng_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    check "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_rng_seed_matters () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Splitmix.next a <> Splitmix.next b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_below_bounds () =
  let r = Splitmix.create 7 in
  for _ = 1 to 10_000 do
    let v = Splitmix.below r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_below_covers () =
  let r = Splitmix.create 3 in
  let seen = Array.make 8 false in
  for _ = 1 to 1_000 do
    seen.(Splitmix.below r 8) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Fmt.str "bucket %d hit" i) true s) seen

let test_rng_int_in () =
  let r = Splitmix.create 11 in
  for _ = 1 to 1_000 do
    let v = Splitmix.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_split_independent () =
  let parent = Splitmix.create 5 in
  let c1 = Splitmix.split parent in
  let c2 = Splitmix.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Splitmix.next c1 = Splitmix.next c2 then incr same
  done;
  Alcotest.(check bool) "children differ" true (!same < 4)

let test_rng_copy () =
  let a = Splitmix.create 9 in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  for _ = 1 to 50 do
    check "copy matches" (Splitmix.next a) (Splitmix.next b)
  done

let test_rng_float_range () =
  let r = Splitmix.create 13 in
  for _ = 1 to 1_000 do
    let f = Splitmix.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_permutes () =
  let r = Splitmix.create 21 in
  let a = Array.init 100 Fun.id in
  Splitmix.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

(* --------------------------------- Vec ---------------------------------- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check "length" 100 (Vec.length v);
  for i = 99 downto 0 do
    check "pop order" i (Vec.pop v)
  done;
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_vec_get_set () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Vec.set v 1 42;
  check "set/get" 42 (Vec.get v 1);
  Alcotest.check_raises "oob get" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 3))

let test_vec_pop_empty () =
  let v = Vec.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_growth () =
  let v = Vec.create ~capacity:1 () in
  for i = 0 to 9999 do
    Vec.push v i
  done;
  check "length after growth" 10000 (Vec.length v);
  check "first survives" 0 (Vec.get v 0);
  check "last survives" 9999 (Vec.get v 9999)

let test_vec_swap_remove () =
  let v = Vec.of_array [| 10; 20; 30; 40 |] in
  check "removed" 20 (Vec.swap_remove v 1);
  check "length" 3 (Vec.length v);
  check "swapped in" 40 (Vec.get v 1)

let test_vec_sort_iter () =
  let v = Vec.of_array [| 5; 1; 4; 2; 3 |] in
  Vec.sort v;
  let out = ref [] in
  Vec.iter (fun x -> out := x :: !out) v;
  Alcotest.(check (list int)) "sorted" [ 5; 4; 3; 2; 1 ] !out

let test_vec_exists_clear () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  Vec.clear v;
  check "cleared" 0 (Vec.length v)

let test_vec_append_array () =
  let v = Vec.of_array [| 1 |] in
  Vec.append_array v [| 2; 3 |];
  Alcotest.(check (array int)) "appended" [| 1; 2; 3 |] (Vec.to_array v)

(* -------------------------------- Isort --------------------------------- *)

let test_sort_prefix () =
  let a = [| 5; 3; 9; 1; 7; 100; -1 |] in
  Isort.sort_prefix a 5;
  Alcotest.(check (array int)) "prefix sorted, tail untouched" [| 1; 3; 5; 7; 9; 100; -1 |] a

let test_sort_empty_and_single () =
  let a = [| 3; 1 |] in
  Isort.sort_prefix a 0;
  Isort.sort_prefix a 1;
  Alcotest.(check (array int)) "untouched" [| 3; 1 |] a

let test_binary_search_hits () =
  let a = [| 2; 4; 6; 8; 10; 999 |] in
  List.iteri
    (fun i x -> check (Fmt.str "find %d" x) i (Isort.binary_search a 5 x))
    [ 2; 4; 6; 8; 10 ]

let test_binary_search_misses () =
  let a = [| 2; 4; 6; 8; 10 |] in
  List.iter
    (fun x -> check (Fmt.str "miss %d" x) (-1) (Isort.binary_search a 5 x))
    [ 1; 3; 5; 7; 9; 11; 999 ]

let test_binary_search_excludes_tail () =
  let a = [| 2; 4; 6; 8; 10 |] in
  check "tail not searched" (-1) (Isort.binary_search a 3 8)

let test_dedup_sorted () =
  let a = [| 1; 1; 2; 2; 2; 3; 5; 5 |] in
  let n = Isort.dedup_sorted a 8 in
  check "new length" 4 n;
  Alcotest.(check (array int)) "prefix deduped" [| 1; 2; 3; 5 |] (Array.sub a 0 n)

(* ------------------------------ merge_runs ------------------------------ *)

let test_merge_runs_basic () =
  let r1 = ([| 1; 4; 7; 999 |], 3) in
  let r2 = ([| 2; 4; 8 |], 3) in
  let r3 = ([| 3 |], 1) in
  let dst = Array.make 16 0 in
  let n = Isort.merge_runs [| r1; r2; r3 |] dst in
  check "merged length" 6 n;
  Alcotest.(check (array int)) "merged, deduped, sorted" [| 1; 2; 3; 4; 7; 8 |]
    (Array.sub dst 0 n)

let test_merge_runs_degenerate () =
  let dst = Array.make 4 9 in
  check "no runs" 0 (Isort.merge_runs [||] dst);
  check "all-empty runs" 0 (Isort.merge_runs [| ([| 1 |], 0); ([||], 0) |] dst);
  let n = Isort.merge_runs [| ([| 5; 5; 5 |], 3) |] dst in
  check "single run deduped" 1 n;
  check "value" 5 dst.(0)

(* ------------------------------- Bloom ---------------------------------- *)

let test_bloom_members () =
  let keys = List.init 64 (fun i -> (i * 37) lxor 0x155) in
  let f = Bloom.create ~expected:(List.length keys) in
  List.iter (Bloom.add f) keys;
  List.iter
    (fun k -> Alcotest.(check bool) (Fmt.str "member %d" k) true (Bloom.test f k))
    keys

let test_bloom_rejects_most () =
  let f = Bloom.create ~expected:32 in
  for i = 0 to 31 do
    Bloom.add f (i * 613)
  done;
  let rejected = ref 0 in
  for probe = 1_000_000 to 1_000_999 do
    if not (Bloom.test f probe) then incr rejected
  done;
  (* False positives are allowed, but a filter that accepts half of
     everything is useless as a prefilter. *)
  Alcotest.(check bool) "rejects most non-members" true (!rejected > 800)

let test_bloom_words_for_pow2 () =
  List.iter
    (fun n ->
      let w = Bloom.words_for n in
      Alcotest.(check bool) (Fmt.str "words_for %d power of two" n) true
        (w > 0 && w land (w - 1) = 0))
    [ 0; 1; 5; 16; 63; 64; 65; 1000; 4096 ]

(* ------------------------------- Padded --------------------------------- *)

let test_padded_copy_preserves () =
  let r = Padded.copy { contents = 42 } in
  check "field preserved" 42 r.contents;
  r.contents <- 7;
  check "mutable" 7 r.contents

let test_padded_atomic () =
  let a = Padded.atomic 3 in
  check "initial" 3 (Atomic.get a);
  ignore (Atomic.fetch_and_add a 2);
  check "faa" 5 (Atomic.get a)

(* ------------------------------ properties ------------------------------ *)

let prop_sort_matches_stdlib =
  QCheck.Test.make ~name:"Isort.sort_prefix matches Array.sort" ~count:500
    QCheck.(list int)
    (fun l ->
      let a = Array.of_list l in
      let b = Array.copy a in
      Isort.sort_prefix a (Array.length a);
      Array.sort compare b;
      a = b)

let prop_binary_search_complete =
  QCheck.Test.make ~name:"binary_search finds every member" ~count:500
    QCheck.(list small_nat)
    (fun l ->
      let a = Array.of_list l in
      Isort.sort_prefix a (Array.length a);
      List.for_all
        (fun x ->
          let i = Isort.binary_search a (Array.length a) x in
          i >= 0 && a.(i) = x)
        l)

let prop_binary_search_sound =
  QCheck.Test.make ~name:"binary_search never false-positives" ~count:500
    QCheck.(pair (list small_nat) small_nat)
    (fun (l, probe) ->
      let a = Array.of_list l in
      Isort.sort_prefix a (Array.length a);
      let i = Isort.binary_search a (Array.length a) probe in
      if List.mem probe l then i >= 0 && a.(i) = probe else i = -1)

(* The pipeline's collect correctness hinges on this equivalence: a k-way
   merge of sorted per-thread runs must publish exactly what the legacy
   concat-then-sort-then-dedup path would. *)
let prop_merge_runs_equiv =
  QCheck.Test.make ~name:"merge_runs = concat |> sort_prefix |> dedup_sorted" ~count:500
    QCheck.(list (list small_nat))
    (fun lists ->
      let runs =
        Array.of_list
          (List.map
             (fun l ->
               let a = Array.of_list l in
               Isort.sort_prefix a (Array.length a);
               (a, Array.length a))
             lists)
      in
      let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 runs in
      let dst = Array.make (max 1 total) (-1) in
      let n = Isort.merge_runs runs dst in
      let reference = Array.of_list (List.concat lists) in
      Isort.sort_prefix reference (Array.length reference);
      let rn = Isort.dedup_sorted reference (Array.length reference) in
      n = rn && Array.sub dst 0 n = Array.sub reference 0 rn)

(* The scan prefilter is only sound if membership never false-negatives:
   a miss means "definitely not retired", so a single false negative would
   let a live pointer go unmarked and be freed under a reader. *)
let prop_bloom_zero_false_negatives =
  QCheck.Test.make ~name:"Bloom never false-negatives" ~count:500
    QCheck.(pair (list int) small_nat)
    (fun (keys, slack) ->
      let f = Bloom.create ~expected:(List.length keys + slack) in
      List.iter (Bloom.add f) keys;
      List.for_all (Bloom.test f) keys)

let prop_vec_model =
  QCheck.Test.make ~name:"Vec behaves like a list model" ~count:300
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun (push, x) ->
          if push then begin
            Vec.push v x;
            model := x :: !model
          end
          else if !model <> [] then begin
            let got = Vec.pop v in
            match !model with
            | m :: tl ->
                model := tl;
                if got <> m then failwith "pop mismatch"
            | [] -> ()
          end)
        ops;
      Vec.to_array v = Array.of_list (List.rev !model))

(* ------------------------------ Fault_plan ----------------------------- *)

module Fault_plan = Ts_util.Fault_plan

let test_plan_empty () =
  Alcotest.(check bool) "none is empty" true (Fault_plan.parse "none" = Ok []);
  Alcotest.(check bool) "blank is empty" true (Fault_plan.parse "" = Ok []);
  Alcotest.(check string) "empty prints none" "none" (Fault_plan.to_string [])

let test_plan_single_clauses () =
  let ok s expected =
    match Fault_plan.parse s with
    | Ok [ c ] -> Alcotest.(check bool) (s ^ " shape") true (c = expected)
    | Ok _ -> Alcotest.failf "%s: expected one clause" s
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "crash:2@100" { Fault_plan.victims = 2; at = At 100; event = Crash };
  ok "stall:1@50:400" { Fault_plan.victims = 1; at = At 50; event = Stall (Bounded 400) };
  ok "stall:1@50:forever" { Fault_plan.victims = 1; at = At 50; event = Stall Forever };
  ok "release:1@900" { Fault_plan.victims = 1; at = At 900; event = Unstall };
  ok "drop-signals:3@0:5" { Fault_plan.victims = 3; at = At 0; event = Drop_signals 5 };
  ok "delay-signals:1@10:200"
    { Fault_plan.victims = 1; at = At 10; event = Delay_signals 200 };
  ok "crash:1@250ms" { Fault_plan.victims = 1; at = At_ms 250; event = Crash }

let test_plan_multi_roundtrip () =
  let s = "stall:2@800:forever,release:2@40000,drop-signals:1@100:3" in
  match Fault_plan.parse s with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check int) "three clauses" 3 (List.length plan);
      Alcotest.(check string) "round-trips" s (Fault_plan.to_string plan);
      (match Fault_plan.parse (Fault_plan.to_string plan) with
      | Ok plan' -> Alcotest.(check bool) "reparse equal" true (plan = plan')
      | Error e -> Alcotest.fail e)

let test_plan_legacy_printer () =
  (* the shapes Ts_check always printed in replay commands *)
  Alcotest.(check string) "crash" "crash:1@7"
    (Fault_plan.clause_to_string { Fault_plan.victims = 1; at = At 7; event = Crash });
  Alcotest.(check string) "stall" "stall:2@9:40"
    (Fault_plan.clause_to_string
       { Fault_plan.victims = 2; at = At 9; event = Stall (Bounded 40) })

let test_plan_errors () =
  let bad s =
    match Fault_plan.parse s with
    | Error e ->
        (* every diagnosis names the offending clause *)
        Alcotest.(check bool)
          (Fmt.str "%S error mentions clause (got %S)" s e)
          true
          (String.length e > 0)
    | Ok _ -> Alcotest.failf "%S should not parse" s
  in
  bad "crash@oops";
  bad "crash:0@100" (* victims must be positive *);
  bad "crash:1@-5" (* trigger must be non-negative *);
  bad "stall:1@100:0" (* stall cycles must be positive *);
  bad "stall:1@100" (* stall needs a duration *);
  bad "drop-signals:1@100:0";
  bad "explode:1@100";
  bad "crash:1@100ns" (* only the ms suffix exists *);
  bad "crash:1@100,,stall:1@2:3" (* empty clause in a list *)

let test_plan_feature_flags () =
  let plan s = match Fault_plan.parse s with Ok p -> p | Error e -> failwith e in
  Alcotest.(check bool) "wall trigger" true
    (Fault_plan.has_wall_triggers (plan "crash:1@5ms"));
  Alcotest.(check bool) "no wall trigger" false
    (Fault_plan.has_wall_triggers (plan "crash:1@5"));
  Alcotest.(check bool) "forever" true (Fault_plan.has_forever (plan "stall:1@5:forever"));
  Alcotest.(check bool) "bounded is not forever" false
    (Fault_plan.has_forever (plan "stall:1@5:9"));
  Alcotest.(check bool) "release flag" true
    (Fault_plan.has_release (plan "stall:1@5:forever,release:1@50"));
  Alcotest.(check bool) "release needs monitor" true
    (Fault_plan.needs_monitor (plan "stall:1@5:forever,release:1@50"));
  Alcotest.(check bool) "self-inflicted plan needs none" false
    (Fault_plan.needs_monitor (plan "crash:1@5,stall:1@9:20"))

let () =
  let qt t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "ts_util"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "empty plans" `Quick test_plan_empty;
          Alcotest.test_case "single clauses" `Quick test_plan_single_clauses;
          Alcotest.test_case "multi-clause round-trip" `Quick test_plan_multi_roundtrip;
          Alcotest.test_case "legacy printer shapes" `Quick test_plan_legacy_printer;
          Alcotest.test_case "parse errors" `Quick test_plan_errors;
          Alcotest.test_case "feature flags" `Quick test_plan_feature_flags;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
          Alcotest.test_case "below bounds" `Quick test_rng_below_bounds;
          Alcotest.test_case "below covers all buckets" `Quick test_rng_below_covers;
          Alcotest.test_case "int_in inclusive" `Quick test_rng_int_in;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "get/set + bounds" `Quick test_vec_get_set;
          Alcotest.test_case "pop empty" `Quick test_vec_pop_empty;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "sort + iter" `Quick test_vec_sort_iter;
          Alcotest.test_case "exists + clear" `Quick test_vec_exists_clear;
          Alcotest.test_case "append_array" `Quick test_vec_append_array;
          qt prop_vec_model;
        ] );
      ( "isort",
        [
          Alcotest.test_case "sort prefix" `Quick test_sort_prefix;
          Alcotest.test_case "sort degenerate" `Quick test_sort_empty_and_single;
          Alcotest.test_case "search hits" `Quick test_binary_search_hits;
          Alcotest.test_case "search misses" `Quick test_binary_search_misses;
          Alcotest.test_case "search respects prefix" `Quick test_binary_search_excludes_tail;
          Alcotest.test_case "dedup" `Quick test_dedup_sorted;
          Alcotest.test_case "merge runs" `Quick test_merge_runs_basic;
          Alcotest.test_case "merge degenerate" `Quick test_merge_runs_degenerate;
          qt prop_sort_matches_stdlib;
          qt prop_binary_search_complete;
          qt prop_binary_search_sound;
          qt prop_merge_runs_equiv;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "members always hit" `Quick test_bloom_members;
          Alcotest.test_case "rejects most non-members" `Quick test_bloom_rejects_most;
          Alcotest.test_case "words_for powers of two" `Quick test_bloom_words_for_pow2;
          qt prop_bloom_zero_false_negatives;
        ] );
      ( "padded",
        [
          Alcotest.test_case "copy preserves fields" `Quick test_padded_copy_preserves;
          Alcotest.test_case "line-isolated atomic" `Quick test_padded_atomic;
        ] );
    ]
