module Workload = Ts_harness.Workload
module Experiment = Ts_harness.Experiment
module Registry = Ts_scheme.Registry

let check = Alcotest.(check int)

let spec =
  {
    Workload.default_spec with
    threads = 4;
    horizon = 250_000;
    init_size = 64;
    key_range = 128;
    scheme = Registry.spec ~buffer:8 "threadscan";
  }

let test_basic_run () =
  let r = Workload.run spec in
  Alcotest.(check bool) "did work" true (r.Workload.ops > 0);
  check "no faults" 0 r.Workload.faults;
  check "no leaks" 0 r.Workload.outstanding;
  Alcotest.(check bool) "reclamation happened" true (r.Workload.freed > 0);
  Alcotest.(check bool) "throughput consistent" true
    (abs_float
       (r.Workload.throughput
       -. (float_of_int r.Workload.ops *. 1e6 /. float_of_int spec.Workload.horizon))
    < 1.0)

let test_deterministic () =
  let a = Workload.run spec and b = Workload.run spec in
  check "ops equal" a.Workload.ops b.Workload.ops;
  check "retired equal" a.Workload.retired b.Workload.retired;
  check "elapsed equal" a.Workload.elapsed b.Workload.elapsed

let test_seed_matters () =
  let a = Workload.run spec in
  let b = Workload.run { spec with Workload.seed = spec.Workload.seed + 1 } in
  Alcotest.(check bool) "different schedule, different ops" true
    (a.Workload.ops <> b.Workload.ops)

let test_all_schemes_clean () =
  List.iter
    (fun scheme ->
      let name = Registry.describe scheme in
      let r = Workload.run { spec with Workload.scheme } in
      Alcotest.(check bool) (name ^ " did work") true (r.Workload.ops > 0);
      check (name ^ " no faults") 0 r.Workload.faults;
      if (Registry.descriptor scheme).Registry.caps.Registry.reclaims then
        check (name ^ " no leaks") 0 r.Workload.outstanding)
    [
      Registry.spec "leaky";
      Registry.spec ~buffer:16 "threadscan";
      Registry.spec ~buffer:16 ~help_free:true "threadscan";
      Registry.spec ~buffer:16 "threadscan-pipe";
      Registry.spec "hazard";
      Registry.spec "epoch";
      Registry.spec ~delay:30_000 "slow-epoch";
      Registry.spec "stacktrack";
      Registry.spec "debra";
      Registry.spec "hyaline";
    ]

let test_all_structures_clean () =
  List.iter
    (fun ds ->
      let r = Workload.run { spec with Workload.ds } in
      Alcotest.(check bool) (Workload.ds_kind_to_string ds ^ " did work") true (r.Workload.ops > 0);
      check (Workload.ds_kind_to_string ds ^ " no leaks") 0 r.Workload.outstanding)
    [ Workload.List_ds; Workload.Hash_ds; Workload.Skip_ds ]

let test_leaky_leaks () =
  let r = Workload.run { spec with Workload.scheme = Registry.spec "leaky" } in
  Alcotest.(check bool) "retired nodes stay live" true
    (r.Workload.outstanding = r.Workload.retired && r.Workload.retired > 0)

let test_read_only_workload_retires_nothing () =
  let r = Workload.run { spec with Workload.update_ratio = 0.0 } in
  check "no retires" 0 r.Workload.retired;
  Alcotest.(check bool) "still did work" true (r.Workload.ops > 0)

let test_scaling_undersubscribed () =
  let tput threads =
    (Workload.run { spec with Workload.threads; scheme = Registry.spec "leaky" }).Workload
      .throughput
  in
  let t1 = tput 1 and t4 = tput 4 in
  Alcotest.(check bool) (Fmt.str "4 threads > 2x 1 thread (%.0f vs %.0f)" t4 t1) true
    (t4 > 2.0 *. t1)

let test_oversubscription_switches () =
  let r = Workload.run { spec with Workload.threads = 8; cores = 2; quantum = 5_000 } in
  Alcotest.(check bool) "context switches happened" true (r.Workload.ctx_switches > 0);
  check "still no leaks" 0 r.Workload.outstanding

let test_signals_only_with_threadscan () =
  let ts = Workload.run { spec with Workload.scheme = Registry.spec ~buffer:4 "threadscan" } in
  let ep = Workload.run { spec with Workload.scheme = Registry.spec "epoch" } in
  Alcotest.(check bool) "threadscan signals" true (ts.Workload.signals_delivered > 0);
  check "epoch sends none" 0 ep.Workload.signals_delivered

let test_stack_depth_scanned () =
  let busy = { spec with Workload.scheme = Registry.spec ~buffer:4 "threadscan" } in
  let shallow = Workload.run { busy with Workload.stack_depth = 0 } in
  let deep = Workload.run { busy with Workload.stack_depth = 180 } in
  let words r = try List.assoc "scan-words" r.Workload.extras with Not_found -> 0 in
  Alcotest.(check bool)
    (Fmt.str "deeper stacks mean bigger scans (%d vs %d)" (words deep) (words shallow))
    true
    (words deep > words shallow)

let test_names_cover_every_figure () =
  let names = List.map fst Experiment.names in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [
      "fig3-list"; "fig3-hash"; "fig3-skip"; "fig4-list"; "fig4-hash"; "fig4-skip";
      "ablate-buffer"; "ablate-slow-epoch"; "ablate-help-free"; "ablate-padding";
    ]

let test_scale_parsing () =
  Alcotest.(check bool) "quick" true (Experiment.scale_of_string "quick" = Some Experiment.Quick);
  Alcotest.(check bool) "full" true (Experiment.scale_of_string "full" = Some Experiment.Full);
  Alcotest.(check bool) "paper" true (Experiment.scale_of_string "paper" = Some Experiment.Paper);
  Alcotest.(check bool) "junk" true (Experiment.scale_of_string "banana" = None)

(* Canonical-name stability: the id a scheme prints is the same one the
   CLIs parse — no parameter suffixes leak into labels; tuning rides in a
   separate params assoc. *)
let test_scheme_names () =
  Alcotest.(check string) "list" "list" (Workload.ds_kind_to_string Workload.List_ds);
  Alcotest.(check string) "ts label" "threadscan"
    (Registry.label (Registry.spec ~buffer:8 "threadscan"));
  Alcotest.(check string) "alias resolves" "threadscan-pipe" (Registry.label (Registry.spec "ts-pipe"));
  Alcotest.(check bool) "params ride separately" true
    (Registry.params_assoc (Registry.spec ~buffer:8 "threadscan") = [ ("buffer", 8) ]);
  Alcotest.(check string) "describe" "threadscan buffer=8 help-free=1"
    (Registry.describe (Registry.spec ~buffer:8 ~help_free:true "threadscan"));
  Alcotest.(check string) "slow" "slow-epoch" (Registry.label (Registry.spec ~delay:1 "slow-epoch"));
  Alcotest.(check bool) "unknown rejected" true (Result.is_error (Registry.canonical "banana"))

let () =
  Alcotest.run "ts_harness"
    [
      ( "workload",
        [
          Alcotest.test_case "basic run" `Quick test_basic_run;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed matters" `Quick test_seed_matters;
          Alcotest.test_case "all schemes clean" `Quick test_all_schemes_clean;
          Alcotest.test_case "all structures clean" `Quick test_all_structures_clean;
          Alcotest.test_case "leaky leaks" `Quick test_leaky_leaks;
          Alcotest.test_case "read-only retires nothing" `Quick
            test_read_only_workload_retires_nothing;
          Alcotest.test_case "scaling undersubscribed" `Quick test_scaling_undersubscribed;
          Alcotest.test_case "oversubscription switches" `Quick test_oversubscription_switches;
          Alcotest.test_case "signals only with threadscan" `Quick
            test_signals_only_with_threadscan;
          Alcotest.test_case "stack depth scanned" `Quick test_stack_depth_scanned;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "every figure has a target" `Quick test_names_cover_every_figure;
          Alcotest.test_case "scale parsing" `Quick test_scale_parsing;
          Alcotest.test_case "scheme names" `Quick test_scheme_names;
        ] );
    ]
