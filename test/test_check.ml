(* The systematic concurrency checker (lib/check), checked.

   Layers under test:
   - the delete-buffer capacity boundary and the exact retire counts at
     which collect phases trigger (full/empty wrap of the SRSW ring);
   - the §4.3 heap-block extension (registered blocks pin, deregistered
     blocks release);
   - the §7 help-free conservation law across a seed family;
   - the PCT priority scheduler (determinism, both orders reachable,
     liveness of yielding spin loops, change-point trace events);
   - the linearizability checker on hand-crafted histories;
   - the heap sanitizer (canaries, allocation generations, fault context);
   - the explorer end-to-end: clean sweeps stay clean, seeded protocol
     bugs are caught and shrink to a replayable spec. *)

module Runtime = Ts_sim.Runtime
module Trace = Ts_sim.Trace
module Frame = Ts_sim.Frame
module Ptr = Ts_umem.Ptr
module Mem = Ts_umem.Mem
module Alloc = Ts_umem.Alloc
module Smr = Ts_smr.Smr
module Backoff = Ts_sync.Backoff
module Config = Threadscan.Config
module Delete_buffer = Threadscan.Delete_buffer
module Set_intf = Ts_ds.Set_intf
module Scenario = Ts_check.Scenario
module Explore = Ts_check.Explore
module Fork = Ts_check.Fork
module Linearize = Ts_check.Linearize
module Sanitize = Ts_check.Sanitize
module Report = Ts_check.Report

let check = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let cfg = Runtime.default_config

let small_ts ?(help_free = false) ?(buffer_size = 8) ?(max_threads = 16) () =
  Threadscan.create ~config:{ Config.default with max_threads; buffer_size; help_free } ()

let alloc_node () = Ptr.of_addr (Runtime.malloc 3)

(* --------------------- delete-buffer capacity boundary ------------------- *)

let test_db_exact_capacity_wrap () =
  (* Exactly [capacity] pushes succeed, the next fails without storing, and
     the pattern survives several full/empty wraps of the monotone
     head/tail counters. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let cap = 4 in
         let b = Delete_buffer.create ~capacity:cap () in
         for round = 0 to 2 do
           for i = 0 to cap - 1 do
             check_bool "push below capacity" true (Delete_buffer.push b ((10 * round) + i))
           done;
           check "exactly full" cap (Delete_buffer.size b);
           check_bool "push at capacity fails" false (Delete_buffer.push b 999);
           check "failed push stored nothing" cap (Delete_buffer.size b);
           let got = ref [] in
           Delete_buffer.drain b (fun p ->
               got := p :: !got;
               true);
           Alcotest.(check (list int))
             "fifo across the wrap"
             (List.init cap (fun i -> (10 * round) + i))
             (List.rev !got);
           check "empty again" 0 (Delete_buffer.size b)
         done))

let test_phase_trigger_points () =
  (* With buffer capacity [cap], the phase triggers on retire number
     [cap*i + 1]: the failing push runs a collect that drains everything,
     then retries and stays buffered.  For cap = 8: retires 9, 17, 25. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 ~max_threads:4 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let expected = function n when n <= 8 -> 0 | n when n <= 16 -> 1 | n when n <= 24 -> 2 | _ -> 3 in
         for n = 1 to 25 do
           smr.Smr.retire (alloc_node ());
           check (Fmt.str "phases after retire %d" n) (expected n) (Threadscan.phases ts)
         done;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

(* ------------------------ §4.3 heap-block extension ----------------------- *)

let wash_regs noise =
  for _ = 1 to 64 do
    ignore (Runtime.read noise)
  done

let test_heap_block_pins_and_releases () =
  (* A pointer whose only reference lives in a registered heap block
     survives the phase; after deregistering the block it is reclaimed by
     the next phase. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 ~max_threads:4 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         let blk = Runtime.malloc 4 in
         Threadscan.add_heap_block ~start_addr:blk ~len:4;
         let p = alloc_node () in
         Runtime.write blk p;
         smr.Smr.retire p;
         for _ = 1 to 7 do
           smr.Smr.retire (alloc_node ())
         done;
         wash_regs noise;
         smr.Smr.retire (alloc_node ());
         (* phase 1: the 7 fillers freed, [p] marked via the block *)
         check "phase ran" 1 (Threadscan.phases ts);
         check "fillers freed, p survived" 7 smr.Smr.counters.freed;
         check "p carried over" 1 (Threadscan.carried_last ts);
         (* deregister: the stashed reference no longer pins *)
         Threadscan.remove_heap_block ~start_addr:blk ~len:4;
         Runtime.write blk 0;
         for _ = 1 to 7 do
           smr.Smr.retire (alloc_node ())
         done;
         wash_regs noise;
         smr.Smr.retire (alloc_node ());
         check "second phase ran" 2 (Threadscan.phases ts);
         (* 7 + (carry p + 8 drained) = 16 *)
         check "p reclaimed after removal" 16 smr.Smr.counters.freed;
         check "nothing carried" 0 (Threadscan.carried_last ts);
         Runtime.free blk;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

let test_heap_block_cross_thread () =
  (* The §4.3 scan happens inside the *owning* thread's signal handler: a
     worker stashes the only reference in its registered block; the main
     thread (reclaimer) retires the node and must not free it until the
     worker deregisters the block. *)
  ignore
    (Runtime.run ~config:cfg (fun () ->
         let ts = small_ts ~buffer_size:8 ~max_threads:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let noise = Runtime.alloc_region 1 in
         let cell = Runtime.alloc_region 1 in
         let stage = Runtime.alloc_region 1 in
         let w =
           Runtime.spawn (fun () ->
               smr.Smr.thread_init ();
               let blk = Runtime.malloc 4 in
               Threadscan.add_heap_block ~start_addr:blk ~len:4;
               let p = alloc_node () in
               Runtime.write blk p;
               Runtime.write cell p;
               wash_regs noise;
               while Runtime.read stage = 0 do
                 Runtime.advance 10
               done;
               Threadscan.remove_heap_block ~start_addr:blk ~len:4;
               Runtime.write blk 0;
               wash_regs noise;
               Runtime.write stage 2;
               while Runtime.read stage = 2 do
                 Runtime.advance 10
               done;
               Runtime.free blk;
               smr.Smr.thread_exit ())
         in
         while Runtime.read cell = 0 do
           Runtime.advance 10
         done;
         smr.Smr.retire (Runtime.read cell);
         Runtime.write cell 0;
         for _ = 1 to 7 do
           smr.Smr.retire (alloc_node ())
         done;
         wash_regs noise;
         smr.Smr.retire (alloc_node ());
         check "phase ran" 1 (Threadscan.phases ts);
         check "p pinned by the worker's block" 7 smr.Smr.counters.freed;
         check "p carried over" 1 (Threadscan.carried_last ts);
         Runtime.write stage 1;
         while Runtime.read stage <> 2 do
           Runtime.advance 10
         done;
         for _ = 1 to 7 do
           smr.Smr.retire (alloc_node ())
         done;
         wash_regs noise;
         smr.Smr.retire (alloc_node ());
         check "second phase ran" 2 (Threadscan.phases ts);
         check "p reclaimed once deregistered" 16 smr.Smr.counters.freed;
         Runtime.write stage 3;
         Runtime.join w;
         smr.Smr.thread_exit ();
         smr.Smr.flush ()))

(* ----------------------- help-free conservation (§7) ---------------------- *)

let churn_helpfree seed =
  (* Lemma-1 churn under the help-free variant; returns the accounting
     quadruple after flush.  Strict memory + propagated failures mean any
     double free or UAF aborts the test. *)
  let out = ref (0, 0, 0, 0) in
  ignore
    (Runtime.run
       ~config:{ cfg with seed; sched = Runtime.Uniform }
       (fun () ->
         let ts = small_ts ~help_free:true ~buffer_size:8 ~max_threads:8 () in
         let smr = Threadscan.smr ts in
         smr.Smr.thread_init ();
         let slots = Runtime.alloc_region 3 in
         let noise = Runtime.alloc_region 1 in
         let worker i () =
           smr.Smr.thread_init ();
           Frame.with_frame 1 (fun fr ->
               for _ = 1 to 30 do
                 let q = Runtime.read (slots + Runtime.rand_below 3) in
                 Frame.set fr 0 q;
                 if not (Ptr.is_null q) then ignore (Runtime.read (Ptr.addr q));
                 Frame.set fr 0 0;
                 let p = alloc_node () in
                 let old = Runtime.read (slots + i) in
                 Runtime.write (slots + i) p;
                 if not (Ptr.is_null old) then smr.Smr.retire old
               done);
           smr.Smr.thread_exit ()
         in
         let ws = List.init 3 (fun i -> Runtime.spawn (worker i)) in
         List.iter Runtime.join ws;
         for i = 0 to 2 do
           let old = Runtime.read (slots + i) in
           Runtime.write (slots + i) 0;
           if not (Ptr.is_null old) then smr.Smr.retire old
         done;
         wash_regs noise;
         smr.Smr.thread_exit ();
         smr.Smr.flush ();
         out :=
           ( smr.Smr.counters.retired,
             smr.Smr.counters.freed,
             Threadscan.helped_frees ts,
             Threadscan.reclaimer_frees ts )));
  !out

let test_helpfree_conservation () =
  (* Across 64 seeds: every retired node is freed exactly once, and every
     free is accounted to either a helping scanner or the reclaimer. *)
  let total_helped = ref 0 in
  for seed = 0 to 63 do
    let retired, freed, helped, burden = churn_helpfree seed in
    check (Fmt.str "seed %d: all retired freed" seed) retired freed;
    check (Fmt.str "seed %d: helped + reclaimer = freed" seed) freed (helped + burden);
    total_helped := !total_helped + helped
  done;
  check_bool "scanners actually helped somewhere" true (!total_helped > 0)

(* ------------------------------ PCT scheduler ----------------------------- *)

let race_winner ~sched seed =
  let cell = ref 0 in
  ignore
    (Runtime.run ~config:{ cfg with seed; sched } (fun () ->
         let c = Runtime.alloc_region 1 in
         let a = Runtime.spawn (fun () -> Runtime.write c 1) in
         let b = Runtime.spawn (fun () -> Runtime.write c 2) in
         Runtime.join a;
         Runtime.join b;
         cell := Runtime.read c));
  !cell

let test_pct_reaches_both_orders () =
  let seen = Hashtbl.create 4 in
  for seed = 0 to 19 do
    Hashtbl.replace seen (race_winner ~sched:(Runtime.Pct { change_points = 1; expected_steps = 20 }) seed) ()
  done;
  check "both write orders reached" 2 (Hashtbl.length seen)

let test_pct_deterministic () =
  let spec = { Scenario.default with Scenario.ds = Scenario.Churn; policy = Scenario.Pct 3; seed = 11 } in
  let a = Scenario.run spec and b = Scenario.run spec in
  check "same steps" a.Scenario.steps b.Scenario.steps;
  check "same phases" a.Scenario.phases b.Scenario.phases;
  check "same events" a.Scenario.events b.Scenario.events;
  check "same violations" (List.length a.Scenario.violations) (List.length b.Scenario.violations)

let test_pct_spin_liveness () =
  (* A top-priority thread spinning through Backoff yields, which demotes
     it below the thread it waits for — the run terminates even with zero
     change points left. *)
  ignore
    (Runtime.run
       ~config:
         {
           cfg with
           seed = 5;
           max_steps = 100_000;
           sched = Runtime.Pct { change_points = 0; expected_steps = 100 };
         }
       (fun () ->
         let flag = Runtime.alloc_region 1 in
         let waiter =
           Runtime.spawn (fun () ->
               let b = Backoff.create () in
               while Runtime.read flag = 0 do
                 Backoff.once b
               done)
         in
         let writer = Runtime.spawn (fun () -> Runtime.write flag 1) in
         Runtime.join waiter;
         Runtime.join writer))

let test_pct_change_points_traced () =
  let record, entries = Trace.recorder () in
  ignore
    (Runtime.run
       ~config:
         {
           cfg with
           seed = 3;
           trace = Some record;
           sched = Runtime.Pct { change_points = 3; expected_steps = 100 };
         }
       (fun () ->
         let c = Runtime.alloc_region 1 in
         let ws =
           List.init 2 (fun _ ->
               Runtime.spawn (fun () ->
                   for _ = 1 to 200 do
                     ignore (Runtime.read c)
                   done))
         in
         List.iter Runtime.join ws));
  let demotions =
    List.length
      (List.filter
         (fun (e : Trace.entry) ->
           match e.Trace.event with Trace.Priority_changed _ -> true | _ -> false)
         (entries ()))
  in
  check "all change points fired" 3 demotions

(* ------------------------- linearizability checker ------------------------ *)

let ev ?(tid = 0) kind key result t0 t1 = { Set_intf.tid; kind; key; result; t0; t1 }

let test_lin_valid_overlap () =
  (* Two racing inserts: one wins, one loses — linearizable either way. *)
  let r =
    Linearize.check
      [ ev Set_intf.Op_insert 7 true 0 10; ev ~tid:1 Set_intf.Op_insert 7 false 5 15 ]
  in
  check_bool "valid" true (r.Linearize.violation = None);
  check "one key" 1 r.Linearize.keys

let test_lin_stale_read () =
  (* contains(k) = false strictly after insert(k) = true completed, with no
     remove in between: no linearization explains it. *)
  let r =
    Linearize.check [ ev Set_intf.Op_insert 7 true 0 5; ev ~tid:1 Set_intf.Op_contains 7 false 10 12 ]
  in
  check_bool "violation found" true (r.Linearize.violation <> None)

let test_lin_double_insert () =
  let r =
    Linearize.check [ ev Set_intf.Op_insert 3 true 0 5; ev ~tid:1 Set_intf.Op_insert 3 true 10 15 ]
  in
  check_bool "two winning inserts impossible" true (r.Linearize.violation <> None)

let test_lin_mixed_valid () =
  let r =
    Linearize.check
      [
        ev Set_intf.Op_insert 1 true 0 4;
        ev ~tid:1 Set_intf.Op_remove 1 true 2 8;
        ev ~tid:2 Set_intf.Op_contains 1 false 6 12;
        ev Set_intf.Op_insert 1 true 14 16;
        ev ~tid:1 Set_intf.Op_contains 1 true 18 20;
      ]
  in
  check_bool "valid mixed history" true (r.Linearize.violation = None)

let test_lin_keys_independent () =
  (* A violation on one key is found even among clean traffic on others. *)
  let r =
    Linearize.check
      [
        ev Set_intf.Op_insert 1 true 0 4;
        ev Set_intf.Op_contains 1 true 6 8;
        ev ~tid:1 Set_intf.Op_insert 2 true 0 5;
        ev ~tid:1 Set_intf.Op_contains 2 false 10 12;
      ]
  in
  (match r.Linearize.violation with
  | Some (key, _) -> check "offending key" 2 key
  | None -> Alcotest.fail "expected a violation");
  check "both keys examined" 2 r.Linearize.keys

let test_lin_segmentation () =
  let segs =
    Linearize.segments
      [ ev Set_intf.Op_insert 1 true 0 5; ev Set_intf.Op_remove 1 true 10 15; ev ~tid:1 Set_intf.Op_contains 1 false 12 20 ]
  in
  Alcotest.(check (list int)) "quiescent cut after the first op" [ 1; 2 ] (List.map List.length segs)

let test_lin_wide_segment_skipped () =
  (* 25 mutually overlapping reads exceed the search bound: skipped, not
     failed. *)
  let events = List.init 25 (fun i -> ev ~tid:i Set_intf.Op_contains 4 false 0 100) in
  let r = Linearize.check events in
  check_bool "no violation" true (r.Linearize.violation = None);
  check "segment skipped" 1 r.Linearize.skipped_segments

(* ------------------------------ heap sanitizer ---------------------------- *)

let test_sanitizer_canary () =
  (* Clobbering the word just past a block's payload is caught on free. *)
  let rt = Runtime.create { cfg with sanitize = true; strict_mem = false } in
  ignore
    (Runtime.add_thread rt (fun () ->
         let a = Runtime.malloc 2 in
         ignore (Runtime.malloc 1);
         Runtime.free a));
  ignore (Runtime.start rt);
  check "clean frees leave canaries alone" 0 (Mem.fault_count (Runtime.mem rt) Mem.Canary_overwrite);
  let rt = Runtime.create { cfg with sanitize = true; strict_mem = false } in
  let victim = ref 0 in
  ignore
    (Runtime.add_thread rt (fun () ->
         let a = Runtime.malloc 2 in
         victim := a;
         Runtime.free a));
  (* run far enough to learn the address, then rerun with the overwrite *)
  ignore (Runtime.start rt);
  let addr = !victim in
  let rt = Runtime.create { cfg with sanitize = true; strict_mem = false } in
  ignore
    (Runtime.add_thread rt (fun () ->
         let a = Runtime.malloc 2 in
         let size = Alloc.block_size (Runtime.alloc rt) a in
         Mem.raw_write (Runtime.mem rt) (a + size) 0xDEAD;
         Runtime.free a));
  ignore (Runtime.start rt);
  check "same deterministic address" addr !victim;
  check "canary overwrite detected" 1 (Mem.fault_count (Runtime.mem rt) Mem.Canary_overwrite)

let test_sanitizer_generations () =
  (* The per-base generation counter distinguishes reuse of an address —
     the ABA signature — from a plain double retire. *)
  let rt = Runtime.create { cfg with sanitize = true } in
  let g1 = ref 0 and g2 = ref 0 and same = ref false in
  ignore
    (Runtime.add_thread rt (fun () ->
         let a = Runtime.malloc 3 in
         g1 := Alloc.generation (Runtime.alloc rt) a;
         Runtime.free a;
         let b = Runtime.malloc 3 in
         same := a = b;
         g2 := Alloc.generation (Runtime.alloc rt) b;
         Runtime.free b));
  ignore (Runtime.start rt);
  check_bool "thread cache reuses the address" true !same;
  check "first generation" 1 !g1;
  check "bumped on reuse" 2 !g2

let test_sanitizer_fault_context () =
  (* The fault hook captures the offending thread while it is being
     stepped — before the strict-mode raise unwinds it. *)
  let rt = Runtime.create { cfg with sanitize = true; propagate_failures = false } in
  let san = Sanitize.install rt ~phase_of:(fun () -> 42) in
  let victim_tid = ref (-1) in
  ignore
    (Runtime.add_thread rt (fun () ->
         let a = Runtime.malloc 2 in
         Runtime.free a;
         let w =
           Runtime.spawn (fun () ->
               victim_tid := Runtime.self ();
               ignore (Runtime.read a))
         in
         Runtime.join w));
  ignore (Runtime.start rt);
  match Sanitize.first san with
  | None -> Alcotest.fail "expected a captured fault"
  | Some f ->
      check_bool "kind is UAF read" true (f.Sanitize.kind = Mem.Uaf_read);
      check "attributed to the faulting thread" !victim_tid f.Sanitize.tid;
      check "phase context threaded through" 42 f.Sanitize.phase

(* ------------------------- explorer, end to end --------------------------- *)

let test_sweep_clean () =
  List.iter
    (fun ds ->
      let specs =
        Explore.sweep_specs ~base:{ Scenario.default with Scenario.ds } ~schedules:6 ~seed0:0
          ~pct_depth:3
      in
      let s = Explore.sweep specs in
      check (Fmt.str "%s: no violations" (Scenario.ds_to_string ds)) 0
        (List.length s.Explore.failures);
      check (Fmt.str "%s: all schedules ran" (Scenario.ds_to_string ds)) 6 s.Explore.runs)
    [ Scenario.List_ds; Scenario.Hash_ds; Scenario.Skip_ds; Scenario.Churn ]

let test_explorer_catches_seeded_bug () =
  (* The acceptance gate: a deliberately broken sweep (carry-over of marked
     entries skipped) must be detected and shrink to a failing spec whose
     replay command reproduces it. *)
  let base =
    { Scenario.default with Scenario.ds = Scenario.Churn; inject = Threadscan.Skip_carryover }
  in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:4 ~seed0:0 ~pct_depth:3) in
  check_bool "seeded bug caught" true (s.Explore.failures <> []);
  let first = (List.hd s.Explore.failures).Scenario.spec in
  let shrunk = Explore.shrink first in
  check_bool "shrunk spec still fails" true (Scenario.failed (Scenario.run shrunk));
  check_bool "shrink did not grow the spec" true
    (shrunk.Scenario.threads <= first.Scenario.threads && shrunk.Scenario.ops <= first.Scenario.ops);
  let cmd = Scenario.replay_command shrunk in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "replay command names the injection" true (contains cmd "skip-carryover")

let test_scenario_attributes_uaf () =
  (* The violation a seeded bug produces is a *sanitizer* finding with
     thread and phase attribution, not a bare crash. *)
  let spec =
    { Scenario.default with Scenario.ds = Scenario.Churn; inject = Threadscan.Skip_carryover; seed = 0 }
  in
  let o = Scenario.run spec in
  match o.Scenario.violations with
  | [ Report.Sanitizer { kind = Mem.Uaf_read; tid; phase; _ } ] ->
      check_bool "attributed to a worker" true (tid >= 0);
      check_bool "phase recorded" true (phase >= 1)
  | vs ->
      Alcotest.fail
        (Fmt.str "expected one attributed UAF, got: %a" Fmt.(list ~sep:(any "; ") Report.pp) vs)

(* ------------------------- fault plans (crash/stall) ---------------------- *)

let test_fault_string_roundtrip () =
  List.iter
    (fun f ->
      let s = Scenario.fault_to_string f in
      match Scenario.fault_of_string s with
      | Some f' -> check_bool (Fmt.str "roundtrip %s" s) true (f = f')
      | None -> Alcotest.fail (Fmt.str "unparseable: %s" s))
    [
      Scenario.Fault_none;
      Scenario.Fault_crash { victims = 1; after = 10 };
      Scenario.Fault_crash { victims = 3; after = 0 };
      Scenario.Fault_stall { victims = 2; after = 7; cycles = 60_000 };
    ];
  check_bool "garbage rejected" true (Scenario.fault_of_string "crash@oops" = None)

let test_crash_sweep_stays_clean () =
  (* Killing a worker mid-operation is a legal execution: the degradation
     ladder reaps it and the run must satisfy the same oracles (UAF-free,
     leak within the crash budget). *)
  List.iter
    (fun ds ->
      let base =
        {
          Scenario.default with
          Scenario.ds;
          fault = Scenario.Fault_crash { victims = 1; after = 10 };
        }
      in
      let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
      check (Fmt.str "%s under crash: no violations" (Scenario.ds_to_string ds)) 0
        (List.length s.Explore.failures))
    [ Scenario.List_ds; Scenario.Churn ]

let test_stall_sweep_stays_clean () =
  let base =
    {
      Scenario.default with
      Scenario.ds = Scenario.Churn;
      fault = Scenario.Fault_stall { victims = 1; after = 10; cycles = 60_000 };
    }
  in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
  check "churn under stall: no violations" 0 (List.length s.Explore.failures)

let test_proxy_scan_load_bearing_under_stall () =
  (* The shrunk counterexample from the crash-safety sweep: with the proxy
     scan disabled, a frozen suspect's held node is freed under it and the
     sanitizer attributes a UAF.  This pins that the proxy scan is what
     makes stalled-thread reaping sound. *)
  let spec =
    {
      Scenario.default with
      Scenario.ds = Scenario.Churn;
      threads = 2;
      ops = 40;
      key_range = 4;
      inject = Threadscan.Skip_proxy_scan;
      fault = Scenario.Fault_stall { victims = 1; after = 10; cycles = 60_000 };
      policy = Scenario.Pct 3;
      seed = 1;
    }
  in
  let o = Scenario.run spec in
  check_bool "violation detected" true (Scenario.failed o);
  check_bool "attributed as a sanitizer UAF" true
    (List.exists
       (function Report.Sanitizer { kind = Mem.Uaf_read; _ } -> true | _ -> false)
       o.Scenario.violations);
  (* the same schedule with the proxy scan back on is clean *)
  let fixed = Scenario.run { spec with Scenario.inject = Threadscan.No_fault } in
  check_bool "clean with the proxy scan enabled" true (not (Scenario.failed fixed))

let test_stale_recovery_blinds_phase () =
  (* Regression: the schedule that caught the stale-recovery unsoundness.
     A suspect's missed signal delivers on wake and its handler scans the
     *previous* master (it read the phase word before the new publish); the
     reclaimer saw the ack move, declared it recovered, and swept — freeing
     a node only the recovered thread's frame still referenced.  The fix
     blinds any phase whose recovery ack is not tagged with the current
     phase; this spec must stay clean forever. *)
  let spec =
    {
      Scenario.default with
      Scenario.ds = Scenario.Churn;
      threads = 3;
      ops = 40;
      key_range = 4;
      fault = Scenario.Fault_stall { victims = 1; after = 10; cycles = 60_000 };
      policy = Scenario.Uniform;
      seed = 50;
    }
  in
  let o = Scenario.run spec in
  List.iter (fun v -> Fmt.epr "%a@." Report.pp v) o.Scenario.violations;
  check "no violations" 0 (List.length o.Scenario.violations)

let test_crash_leak_budget_enforced () =
  (* The oracle's crash-leak allowance is exactly [victims] nodes: a crashed
     thread may take its in-flight retirement with it, nothing more.  A
     clean run under a crash plan must not trip the outstanding check. *)
  let spec =
    {
      Scenario.default with
      Scenario.ds = Scenario.Churn;
      fault = Scenario.Fault_crash { victims = 2; after = 5 };
      seed = 3;
    }
  in
  let o = Scenario.run spec in
  check "no violations within the budget" 0 (List.length o.Scenario.violations);
  check_bool "phases still completed" true (o.Scenario.phases >= 1)

(* --------------------- pipeline under the checker ------------------------ *)

(* Every pipeline stage on at once: sealed-run merge collect, Bloom
   prefilter, chunked helper-parallel free.  The pipeline must be
   indistinguishable from legacy ThreadScan to every oracle. *)
let pipeline_base =
  {
    Scenario.default with
    Scenario.help_free = true;
    collect_merge = true;
    scan_filter = true;
    free_chunk = 2;
  }

let test_pipeline_sweep_clean () =
  List.iter
    (fun ds ->
      let s =
        Explore.sweep
          (Explore.sweep_specs ~base:{ pipeline_base with Scenario.ds } ~schedules:6 ~seed0:0
             ~pct_depth:3)
      in
      check (Fmt.str "pipeline %s: no violations" (Scenario.ds_to_string ds)) 0
        (List.length s.Explore.failures);
      check (Fmt.str "pipeline %s: all schedules ran" (Scenario.ds_to_string ds)) 6
        s.Explore.runs)
    [ Scenario.List_ds; Scenario.Hash_ds; Scenario.Skip_ds; Scenario.Churn ]

let test_pipeline_crash_sweep_clean () =
  List.iter
    (fun ds ->
      let base =
        {
          pipeline_base with
          Scenario.ds;
          fault = Scenario.Fault_crash { victims = 1; after = 10 };
        }
      in
      let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
      check (Fmt.str "pipeline %s under crash: no violations" (Scenario.ds_to_string ds)) 0
        (List.length s.Explore.failures))
    [ Scenario.List_ds; Scenario.Churn ]

let test_pipeline_stall_sweep_clean () =
  let base =
    {
      pipeline_base with
      Scenario.ds = Scenario.Churn;
      fault = Scenario.Fault_stall { victims = 1; after = 10; cycles = 60_000 };
    }
  in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
  check "pipeline churn under stall: no violations" 0 (List.length s.Explore.failures)

let test_pipeline_reclaimer_crash_takeover () =
  (* The reclaimer dies mid-phase — with [free_chunk] on, possibly in the
     middle of the chunked free, with helpers still pulling chunks.  The
     heartbeat takeover plus the all-or-nothing sealed staging must keep
     the run sound within the one-node leak budget. *)
  let base = { pipeline_base with Scenario.ds = Scenario.Churn; inject = Threadscan.Crash_mid_phase } in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
  check "pipeline survives reclaimer crash mid-phase" 0 (List.length s.Explore.failures)

let test_pipeline_still_catches_seeded_bug () =
  (* The checker stays sharp with the pipeline on: a skipped carry-over
     must surface exactly as it does on the legacy path. *)
  let base =
    { pipeline_base with Scenario.ds = Scenario.Churn; inject = Threadscan.Skip_carryover }
  in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:4 ~seed0:0 ~pct_depth:3) in
  check_bool "seeded bug caught under the pipeline" true (s.Explore.failures <> []);
  let cmd = Scenario.replay_command (List.hd s.Explore.failures).Scenario.spec in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "replay command carries the pipeline flags" true
    (contains cmd "--collect-merge" && contains cmd "--scan-filter"
    && contains cmd "--free-chunk 2")

(* ---------------------- sharding under the checker ------------------------ *)

(* The full pipeline plus reclamation sharding: two shards over the
   checker's default thread count, so phases run the per-shard
   collect/merge/publish and idle helpers can steal sealed runs across
   shards.  Like the pipeline, sharding must be invisible to every
   oracle — and the fault plans now also cover dying mid-steal: a victim
   crashed after its first few steps may hold a shard claim word. *)
let shards_base = { pipeline_base with Scenario.shards = 2 }

let test_shards_sweep_clean () =
  List.iter
    (fun ds ->
      let s =
        Explore.sweep
          (Explore.sweep_specs ~base:{ shards_base with Scenario.ds } ~schedules:6 ~seed0:0
             ~pct_depth:3)
      in
      check (Fmt.str "shards %s: no violations" (Scenario.ds_to_string ds)) 0
        (List.length s.Explore.failures);
      check (Fmt.str "shards %s: all schedules ran" (Scenario.ds_to_string ds)) 6
        s.Explore.runs)
    [ Scenario.List_ds; Scenario.Hash_ds; Scenario.Skip_ds; Scenario.Churn ]

let test_shards_crash_sweep_clean () =
  (* Crash-mid-steal coverage: the victim dies shortly after startup, so
     across the seed/schedule sweep it is killed at every point of the
     steal protocol — including between claiming a shard's sealed run
     and stamping it done.  The reclaimer's bounded-ack recovery must
     take the claim back and re-collect without a double free or leak
     beyond the crash budget. *)
  List.iter
    (fun ds ->
      let base =
        {
          shards_base with
          Scenario.ds;
          fault = Scenario.Fault_crash { victims = 1; after = 10 };
        }
      in
      let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
      check (Fmt.str "shards %s under crash: no violations" (Scenario.ds_to_string ds)) 0
        (List.length s.Explore.failures))
    [ Scenario.List_ds; Scenario.Churn ]

let test_shards_stall_sweep_clean () =
  (* A stalled thread can freeze while holding a shard claim; the phase
     must still complete via the claim-recovery path and stay sound once
     the sleeper wakes and finds its shard already drained. *)
  let base =
    {
      shards_base with
      Scenario.ds = Scenario.Churn;
      fault = Scenario.Fault_stall { victims = 1; after = 10; cycles = 60_000 };
    }
  in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
  check "shards churn under stall: no violations" 0 (List.length s.Explore.failures)

let test_shards_reclaimer_crash_takeover () =
  (* The reclaimer dies mid-phase with shards on: un-collected shards
     still carry the generation stamp of the dead phase, and the
     takeover must restart the claim protocol from scratch. *)
  let base = { shards_base with Scenario.ds = Scenario.Churn; inject = Threadscan.Crash_mid_phase } in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:6 ~seed0:0 ~pct_depth:3) in
  check "shards survive reclaimer crash mid-phase" 0 (List.length s.Explore.failures)

let test_shards_still_catches_seeded_bug () =
  (* Sharding must not blunt the checker, and a failing sharded spec must
     replay with its shard count (and the magazine toggle) intact. *)
  let base =
    { shards_base with Scenario.ds = Scenario.Churn; magazine = false; inject = Threadscan.Skip_carryover }
  in
  let s = Explore.sweep (Explore.sweep_specs ~base ~schedules:4 ~seed0:0 ~pct_depth:3) in
  check_bool "seeded bug caught with shards on" true (s.Explore.failures <> []);
  let cmd = Scenario.replay_command (List.hd s.Explore.failures).Scenario.spec in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "replay command carries the shard count" true (contains cmd "--shards 2");
  check_bool "replay command carries the magazine toggle" true (contains cmd "--no-magazine")

(* ------------------- forked exploration vs replay-from-seed --------------- *)

(* The forked explorer shares schedule prefixes via process snapshots;
   replay-from-seed is its oracle.  The differential mode inside
   Fork.sweep replays sampled leaves from their seed through the
   preloaded choice log and demands byte-identical traces and identical
   outcome counters — these tests run that oracle over a 200-schedule
   sweep spanning both list flavours and both fault plans. *)

let fork_opts = { Fork.default_options with Fork.prune = false; differential = 4 }

let diff_sweep ?(opts = fork_opts) base schedules =
  Fork.sweep ~opts ~base ~schedules ~seed0:0 ~pct_depth:3 ()

let test_fork_differential_200 () =
  (* 200 schedules: lazy list and michael hash, clean and under
     crash/stall fault plans.  Every sampled leaf must replay from its
     seed to a byte-identical trace. *)
  let configs =
    [
      ("lazy", { Scenario.default with Scenario.ds = Scenario.Lazy_ds }, 60);
      ("hash", { Scenario.default with Scenario.ds = Scenario.Hash_ds }, 60);
      ( "lazy under crash:1@10",
        {
          Scenario.default with
          Scenario.ds = Scenario.Lazy_ds;
          fault = Scenario.Fault_crash { victims = 1; after = 10 };
        },
        40 );
      ( "hash under stall:1@10:60000",
        {
          Scenario.default with
          Scenario.ds = Scenario.Hash_ds;
          fault = Scenario.Fault_stall { victims = 1; after = 10; cycles = 60_000 };
        },
        40 );
    ]
  in
  List.iter
    (fun (name, base, schedules) ->
      let st = diff_sweep base schedules in
      check (Fmt.str "%s: all schedules explored" name) schedules st.Fork.explored;
      check (Fmt.str "%s: no violations" name) 0 st.Fork.failed;
      check (Fmt.str "%s: no leaf errors" name) 0 st.Fork.errors;
      check_bool (Fmt.str "%s: oracle exercised" name) true (st.Fork.diff_checked > 0);
      check (Fmt.str "%s: replays byte-identical" name) 0 st.Fork.diff_mismatches)
    configs

let test_fork_prune_sound () =
  (* Sleep-set pruning only drops redundant samples: every schedule is
     either explored or pruned, nothing is lost, and the sampled leaves
     still replay byte-identically. *)
  let base = { Scenario.default with Scenario.ds = Scenario.Lazy_ds } in
  let st =
    diff_sweep ~opts:{ fork_opts with Fork.prune = true; differential = 2 } base 60
  in
  check "explored + pruned covers the quota" 60 (st.Fork.explored + st.Fork.pruned);
  check "no violations" 0 st.Fork.failed;
  check "pruned runs still replay byte-identical" 0 st.Fork.diff_mismatches

let test_fork_throughput () =
  (* The point of forking: schedules per simulated step.  fresh_steps is
     everything the forked sweep executed (scout and fork passes
     included); replay_steps is what replay-from-seed would spend on the
     same schedules.  Even this small sweep must clear a comfortable
     multiple. *)
  let base = { Scenario.default with Scenario.ds = Scenario.Lazy_ds } in
  let st = diff_sweep ~opts:{ fork_opts with Fork.differential = 0 } base 100 in
  check "all schedules explored" 100 st.Fork.explored;
  check_bool
    (Fmt.str "forked sweep at least 4x replay throughput (got %.1fx)" (Fork.speedup st))
    true
    (Fork.speedup st >= 4.0)

let test_fork_catches_seeded_bug_replayably () =
  (* A forked sweep must find the same seeded bug a replay sweep finds,
     and the recorded choice log must reproduce the failure exactly. *)
  let base =
    { Scenario.default with Scenario.ds = Scenario.Churn; inject = Threadscan.Skip_carryover }
  in
  let st = diff_sweep ~opts:{ fork_opts with Fork.differential = 0 } base 8 in
  check_bool "seeded bug caught by forked sweep" true (st.Fork.failed > 0);
  match st.Fork.failures with
  | [] -> Alcotest.fail "failed > 0 but no failure recorded"
  | (o, log) :: _ ->
      let replayed =
        Scenario.run
          ~configure:(fun rt -> Runtime.preload_choices rt log)
          o.Scenario.spec
      in
      check_bool "recorded schedule reproduces the failure" true (Scenario.failed replayed);
      check "replay takes the same number of steps" o.Scenario.steps replayed.Scenario.steps;
      check "replay sees the same violations"
        (List.length o.Scenario.violations)
        (List.length replayed.Scenario.violations)

(* ------------------------------ shrink, axis by axis ---------------------- *)

(* Synthetic failure predicates isolate each reduction axis without
   needing a real protocol bug: shrink_memo must drive every axis to the
   smallest spec the predicate still accepts, never run the same spec
   twice, and stop the seed scan at the first failing seed. *)

let counting_fails pred =
  let seen : (Scenario.spec, int) Hashtbl.t = Hashtbl.create 64 in
  let f spec =
    Hashtbl.replace seen spec (1 + Option.value ~default:0 (Hashtbl.find_opt seen spec));
    pred spec
  in
  (f, seen)

let test_shrink_reduces_each_axis () =
  (* Fails while threads >= 2, ops >= 10 and key_range >= 8: the floor on
     each axis is exactly one reduction short of breaking the predicate. *)
  let pred s = s.Scenario.threads >= 2 && s.Scenario.ops >= 10 && s.Scenario.key_range >= 8 in
  let fails, seen = counting_fails pred in
  let shrunk, stats = Explore.shrink_memo ~fails Scenario.default in
  check "threads reduced to the predicate floor" 2 shrunk.Scenario.threads;
  check "ops halved down to the predicate floor" 10 shrunk.Scenario.ops;
  check "key range halved down to the predicate floor" 8 shrunk.Scenario.key_range;
  check "seed 0 untouched" 0 shrunk.Scenario.seed;
  check "memo: accounting adds up" stats.Explore.candidates
    (stats.Explore.runs_executed + stats.Explore.memo_hits);
  Hashtbl.iter
    (fun _ n -> check "memo: no spec ever run twice" 1 n)
    seen

let test_shrink_memo_hits_across_passes () =
  (* Interacting axes: reducing threads below 2 only keeps failing once
     ops has been halved first, so the fixpoint needs a second pass to
     finish the job — and the pass after that re-proposes an
     already-judged candidate, which must be answered from the memo
     table, not re-run. *)
  let allowed = [ (3, 40); (2, 40); (2, 20); (1, 20); (1, 10) ] in
  let pred s = List.mem (s.Scenario.threads, s.Scenario.ops) allowed in
  let fails, seen = counting_fails pred in
  let shrunk, stats = Explore.shrink_memo ~fails Scenario.default in
  check "second pass finished the threads reduction" 1 shrunk.Scenario.threads;
  check "ops reduced across passes" 10 shrunk.Scenario.ops;
  check_bool "fixpoint revisits are memo hits" true (stats.Explore.memo_hits >= 1);
  Hashtbl.iter (fun _ n -> check "no spec ever run twice" 1 n) seen

let test_shrink_seed_scan_stops_at_first_failure () =
  (* Seeds are scanned from 0 and the scan must stop at the first failing
     seed — not the smallest-failing over the whole range. *)
  let pred s = s.Scenario.seed >= 10 in
  let fails, seen = counting_fails pred in
  let spec = { Scenario.default with Scenario.seed = 30 } in
  let shrunk, _ = Explore.shrink_memo ~fails spec in
  check "stopped at the first failing seed" 10 shrunk.Scenario.seed;
  Hashtbl.iter
    (fun s _ ->
      check_bool "never scanned past the first failing seed" true
        (s.Scenario.seed <= 10 || s.Scenario.seed = 30))
    seen

let test_shrink_seed_scan_bounded () =
  (* Regression for the stopping conditions: the scan never looks at
     seeds at or beyond the 64-seed horizon, and never at or beyond the
     spec's own seed — a spec whose bug needs its exact large seed keeps
     it. *)
  let pred s = s.Scenario.seed = 100 in
  let fails, seen = counting_fails pred in
  let spec = { Scenario.default with Scenario.seed = 100 } in
  let shrunk, _ = Explore.shrink_memo ~fails spec in
  check "large seed kept when no smaller seed fails" 100 shrunk.Scenario.seed;
  Hashtbl.iter
    (fun s _ ->
      check_bool "scan bounded by the 64-seed horizon" true
        (s.Scenario.seed < 64 || s.Scenario.seed = 100))
    seen

let test_shrink_nonfailing_spec_unchanged () =
  let fails, _ = counting_fails (fun _ -> false) in
  let shrunk, stats = Explore.shrink_memo ~fails Scenario.default in
  check_bool "spec returned unchanged" true (shrunk = Scenario.default);
  check "exactly one probe run" 1 stats.Explore.runs_executed;
  check "no reduction candidates tried" 1 stats.Explore.candidates

let () =
  Alcotest.run "check"
    [
      ( "delete-buffer boundary",
        [
          Alcotest.test_case "exact capacity across wraps" `Quick test_db_exact_capacity_wrap;
          Alcotest.test_case "phase triggers at cap*i + 1" `Quick test_phase_trigger_points;
        ] );
      ( "heap-block extension (4.3)",
        [
          Alcotest.test_case "registered block pins, removal releases" `Quick
            test_heap_block_pins_and_releases;
          Alcotest.test_case "cross-thread block scan" `Quick test_heap_block_cross_thread;
        ] );
      ( "help-free conservation (7)",
        [ Alcotest.test_case "helped + reclaimer = freed, 64 seeds" `Quick test_helpfree_conservation ]
      );
      ( "pct scheduler",
        [
          Alcotest.test_case "reaches both orders" `Quick test_pct_reaches_both_orders;
          Alcotest.test_case "deterministic" `Quick test_pct_deterministic;
          Alcotest.test_case "yielding spin loops stay live" `Quick test_pct_spin_liveness;
          Alcotest.test_case "change points traced" `Quick test_pct_change_points_traced;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "racing inserts ok" `Quick test_lin_valid_overlap;
          Alcotest.test_case "stale read caught" `Quick test_lin_stale_read;
          Alcotest.test_case "double winning insert caught" `Quick test_lin_double_insert;
          Alcotest.test_case "mixed valid history" `Quick test_lin_mixed_valid;
          Alcotest.test_case "keys are independent" `Quick test_lin_keys_independent;
          Alcotest.test_case "quiescent-cut segmentation" `Quick test_lin_segmentation;
          Alcotest.test_case "wide segment skipped" `Quick test_lin_wide_segment_skipped;
        ] );
      ( "heap sanitizer",
        [
          Alcotest.test_case "canary overwrite" `Quick test_sanitizer_canary;
          Alcotest.test_case "allocation generations" `Quick test_sanitizer_generations;
          Alcotest.test_case "fault context capture" `Quick test_sanitizer_fault_context;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "clean sweeps stay clean" `Quick test_sweep_clean;
          Alcotest.test_case "seeded bug caught and shrunk" `Quick test_explorer_catches_seeded_bug;
          Alcotest.test_case "UAF attributed, not just crashed" `Quick test_scenario_attributes_uaf;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fault spec round-trips" `Quick test_fault_string_roundtrip;
          Alcotest.test_case "crash plans stay clean" `Quick test_crash_sweep_stays_clean;
          Alcotest.test_case "stall plans stay clean" `Quick test_stall_sweep_stays_clean;
          Alcotest.test_case "proxy scan is load-bearing under stall" `Quick
            test_proxy_scan_load_bearing_under_stall;
          Alcotest.test_case "crash-leak budget enforced" `Quick test_crash_leak_budget_enforced;
          Alcotest.test_case "stale recovery blinds the phase (regression)" `Quick
            test_stale_recovery_blinds_phase;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "clean sweeps stay clean" `Quick test_pipeline_sweep_clean;
          Alcotest.test_case "crash plans stay clean" `Quick test_pipeline_crash_sweep_clean;
          Alcotest.test_case "stall plans stay clean" `Quick test_pipeline_stall_sweep_clean;
          Alcotest.test_case "reclaimer crash mid-phase survives" `Quick
            test_pipeline_reclaimer_crash_takeover;
          Alcotest.test_case "seeded bug still caught" `Quick
            test_pipeline_still_catches_seeded_bug;
        ] );
      ( "shards",
        [
          Alcotest.test_case "clean sweeps stay clean" `Quick test_shards_sweep_clean;
          Alcotest.test_case "crash-mid-steal plans stay clean" `Quick
            test_shards_crash_sweep_clean;
          Alcotest.test_case "stall plans stay clean" `Quick test_shards_stall_sweep_clean;
          Alcotest.test_case "reclaimer crash mid-phase survives" `Quick
            test_shards_reclaimer_crash_takeover;
          Alcotest.test_case "seeded bug still caught, replay keeps flags" `Quick
            test_shards_still_catches_seeded_bug;
        ] );
      ( "forked exploration",
        [
          Alcotest.test_case "200-schedule differential vs replay-from-seed" `Quick
            test_fork_differential_200;
          Alcotest.test_case "pruning loses nothing, stays byte-identical" `Quick
            test_fork_prune_sound;
          Alcotest.test_case "schedule throughput beats replay" `Quick test_fork_throughput;
          Alcotest.test_case "seeded bug caught with a replayable log" `Quick
            test_fork_catches_seeded_bug_replayably;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "every axis reduced to its floor" `Quick
            test_shrink_reduces_each_axis;
          Alcotest.test_case "fixpoint revisits answered from the memo" `Quick
            test_shrink_memo_hits_across_passes;
          Alcotest.test_case "seed scan stops at the first failing seed" `Quick
            test_shrink_seed_scan_stops_at_first_failure;
          Alcotest.test_case "seed scan bounded by horizon and own seed" `Quick
            test_shrink_seed_scan_bounded;
          Alcotest.test_case "non-failing spec returned unchanged" `Quick
            test_shrink_nonfailing_spec_unchanged;
        ] );
    ]
