(* Backend conformance: the same algorithm code (sync primitives, SMR
   schemes, data structures — all written against Ts_rt) must behave
   identically on the deterministic simulator and on real OCaml 5
   domains.  Every case here runs once per backend; the native runs use
   a 4-domain pool so they exercise genuine parallelism even when the
   logical thread count is higher.  A final native-only stress group
   drives ThreadScan's retire/scan/free pipeline under real parallelism
   with the strict shadow-heap oracle armed. *)

module Rt = Ts_rt
module Frame = Ts_rt.Frame
module Smr = Ts_smr.Smr
module Spinlock = Ts_sync.Spinlock
module Ticket_lock = Ts_sync.Ticket_lock
module Barrier = Ts_sync.Barrier
module Backoff = Ts_sync.Backoff

let check = Alcotest.(check int)

type runner = {
  rname : string;
  (* runs [body] as logical thread 0, returns total memory faults *)
  exec : ?strict:bool -> (unit -> unit) -> int;
}

let sim_runner =
  {
    rname = "sim";
    exec =
      (fun ?(strict = true) body ->
        let module R = Ts_sim.Runtime in
        let cfg = { R.default_config with strict_mem = strict; propagate_failures = true } in
        let rt = R.create cfg in
        ignore (R.add_thread rt body);
        ignore (R.start rt);
        Ts_umem.Mem.total_faults (R.mem rt));
  }

let native_runner =
  {
    rname = "native";
    exec =
      (fun ?(strict = true) body ->
        let module R = Ts_par.Runtime in
        let cfg = { R.default_config with strict_mem = strict; pool = 4 } in
        let res = R.run ~config:cfg body in
        Ts_par.Heap.total_faults res.R.heap);
  }

let runners = [ sim_runner; native_runner ]

(* ------------------------------------------------------------------ *)
(* Core runtime ops                                                   *)
(* ------------------------------------------------------------------ *)

let test_memory_roundtrip r () =
  let out = ref 0 and poisoned = ref 0 in
  let faults =
    r.exec ~strict:false (fun () ->
        let a = Rt.malloc 4 in
        Rt.write a 42;
        Rt.write (a + 3) 7;
        out := Rt.read a + Rt.read (a + 3);
        Rt.free a;
        (* UAF: non-strict mode counts the fault and returns poison *)
        poisoned := if Rt.read a = Ts_umem.Mem.poison then 1 else 0)
  in
  check "read back" 49 !out;
  check "freed read returns poison" 1 !poisoned;
  Alcotest.(check bool) "uaf counted" true (faults >= 1)

let test_atomics r () =
  let out = ref [] in
  let faults =
    r.exec (fun () ->
        let a = Rt.alloc_region 1 in
        Rt.write a 10;
        let ok1 = Rt.cas a 10 20 in
        let ok2 = Rt.cas a 10 30 in
        let prev = Rt.faa a 5 in
        out := [ (if ok1 then 1 else 0); (if ok2 then 1 else 0); prev; Rt.read a ])
  in
  Alcotest.(check (list int)) "cas/faa semantics" [ 1; 0; 20; 25 ] !out;
  check "no faults" 0 faults

let test_double_free_detected r () =
  let faults =
    r.exec ~strict:false (fun () ->
        let a = Rt.malloc 2 in
        Rt.free a;
        Rt.free a)
  in
  Alcotest.(check bool) "double free counted" true (faults >= 1)

let test_frames r () =
  let out = ref 0 in
  let (_ : int) =
    (r.exec (fun () ->
         let base0 = snd (Rt.stack_range ()) in
         Frame.with_frame 4 (fun fr ->
             Frame.set fr 0 11;
             Frame.set fr 3 31;
             let grown = snd (Rt.stack_range ()) in
             out := Frame.get fr 0 + Frame.get fr 3 + (grown - base0))))
  in
  check "frame slots + stack growth" (11 + 31 + 4) !out

let test_clock_and_rand r () =
  let ok = ref false in
  let (_ : int) =
    (r.exec (fun () ->
         let t0 = Rt.now () in
         Rt.advance 123;
         let t1 = Rt.now () in
         let v = Rt.rand_below 10 in
         ok := t1 - t0 >= 123 && v >= 0 && v < 10 && Rt.self () = 0))
  in
  Alcotest.(check bool) "clock advances, rand in range" true !ok

let test_spawn_join r () =
  let out = ref 0 in
  let (_ : int) =
    (r.exec (fun () ->
         let cell = Rt.alloc_region 1 in
         let ts = List.init 4 (fun i -> Rt.spawn (fun () -> ignore (Rt.faa cell (i + 1)))) in
         List.iter Rt.join ts;
         List.iter (fun t -> assert (Rt.is_done t)) ts;
         out := Rt.read cell))
  in
  check "all workers ran" 10 !out

let test_signal_delivery r () =
  let out = ref 0 in
  let (_ : int) =
    (r.exec (fun () ->
         let flag = Rt.alloc_region 2 in
         let w =
           Rt.spawn (fun () ->
               Rt.set_signal_handler (fun () -> Rt.write (flag + 1) (Rt.read (flag + 1) + 1));
               Rt.write flag 1;
               (* spin at op boundaries until the signal landed *)
               let b = Backoff.create () in
               while Rt.read (flag + 1) = 0 do
                 Backoff.once b
               done)
         in
         let b = Backoff.create () in
         while Rt.read flag = 0 do
           Backoff.once b
         done;
         Rt.signal w;
         Rt.join w;
         out := Rt.read (flag + 1)))
  in
  Alcotest.(check bool) "handler ran at least once" true (!out >= 1)

(* ------------------------------------------------------------------ *)
(* Sync primitives                                                    *)
(* ------------------------------------------------------------------ *)

let hammer ~threads ~iters ~lock ~unlock counter =
  let ts =
    List.init threads (fun _ ->
        Rt.spawn (fun () ->
            for _ = 1 to iters do
              lock ();
              let v = Rt.read counter in
              Rt.advance 3;
              Rt.write counter (v + 1);
              unlock ()
            done))
  in
  List.iter Rt.join ts

let test_spinlock r () =
  let out = ref 0 in
  let (_ : int) =
    (r.exec (fun () ->
         let counter = Rt.alloc_region 1 in
         let l = Spinlock.create () in
         hammer ~threads:6 ~iters:40
           ~lock:(fun () -> Spinlock.acquire l)
           ~unlock:(fun () -> Spinlock.release l)
           counter;
         out := Rt.read counter))
  in
  check "no lost updates under spinlock" 240 !out

let test_ticket_lock r () =
  let out = ref 0 in
  let (_ : int) =
    (r.exec (fun () ->
         let counter = Rt.alloc_region 1 in
         let l = Ticket_lock.create () in
         hammer ~threads:6 ~iters:40
           ~lock:(fun () -> Ticket_lock.acquire l)
           ~unlock:(fun () -> Ticket_lock.release l)
           counter;
         out := Rt.read counter))
  in
  check "no lost updates under ticket lock" 240 !out

let test_barrier r () =
  let ok = ref false in
  let (_ : int) =
    (r.exec (fun () ->
         let n = 4 in
         let bar = Barrier.create n in
         let before = Rt.alloc_region 1 and after = Rt.alloc_region 1 in
         let ts =
           List.init n (fun _ ->
               Rt.spawn (fun () ->
                   ignore (Rt.faa before 1);
                   Barrier.wait bar;
                   (* everyone reached the barrier before anyone passed *)
                   if Rt.read before = n then ignore (Rt.faa after 1)))
         in
         List.iter Rt.join ts;
         ok := Rt.read after = n))
  in
  Alcotest.(check bool) "barrier releases only when full" true !ok

(* ------------------------------------------------------------------ *)
(* SMR schemes and data structures                                    *)
(* ------------------------------------------------------------------ *)

module Registry = Ts_scheme.Registry

(* Conformance is driven off the scheme registry: the registry is the
   roster, so a newly registered scheme is covered on both backends by
   construction — no list here to keep in sync. *)
let make_scheme ?(max_threads = 8) id =
  let env = { Registry.max_threads; hazard_slots = 3; epoch_batch = 32; budgets = None } in
  (Registry.build env (Registry.spec ~buffer:16 id)).Registry.smr

let run_scheme_workload r scheme ~threads ~ops =
  let retired = ref 0 and freed = ref 0 in
  let faults =
    r.exec (fun () ->
        let smr = make_scheme scheme in
        smr.Smr.thread_init ();
        let ds = Ts_ds.Michael_list.create ~smr () in
        for k = 0 to 15 do
          ignore (ds.Ts_ds.Set_intf.insert k k)
        done;
        let ws =
          List.init threads (fun _ ->
              Rt.spawn (fun () ->
                  smr.Smr.thread_init ();
                  ignore (Frame.push 8);
                  for _ = 1 to ops do
                    let key = Rt.rand_below 32 in
                    match Rt.rand_below 3 with
                    | 0 -> ignore (ds.Ts_ds.Set_intf.insert key key)
                    | 1 -> ignore (ds.Ts_ds.Set_intf.remove key)
                    | _ -> ignore (ds.Ts_ds.Set_intf.contains key)
                  done;
                  smr.Smr.thread_exit ()))
        in
        List.iter Rt.join ws;
        smr.Smr.thread_exit ();
        smr.Smr.flush ();
        retired := smr.Smr.counters.Smr.retired;
        freed := smr.Smr.counters.Smr.freed)
  in
  (faults, !retired, !freed)

let test_scheme r (d : Registry.descriptor) () =
  let faults, retired, freed = run_scheme_workload r d.Registry.id ~threads:4 ~ops:250 in
  check "no memory faults" 0 faults;
  Alcotest.(check bool) "some nodes were retired" true (retired > 0);
  if d.Registry.caps.Registry.reclaims then
    check "flush reclaims every retired node" 0 (retired - freed)
  else check "non-reclaiming scheme frees nothing" 0 freed

let make_ds smr = function
  | "list" -> Ts_ds.Michael_list.create ~smr ()
  | "hash" -> Ts_ds.Hash_table.create ~smr ~buckets:32 ()
  | "skiplist" -> Ts_ds.Skiplist.create ~smr ~max_height:6 ()
  | "lazy-list" -> Ts_ds.Lazy_list.create ~smr ()
  | "split-hash" -> Ts_ds.Split_hash.set (Ts_ds.Split_hash.create ~smr ~max_buckets:32 ())
  | s -> invalid_arg s

let test_ds r kind () =
  let size = ref (-1) and faults = ref (-1) in
  faults :=
    r.exec (fun () ->
        let smr = make_scheme "threadscan" in
        smr.Smr.thread_init ();
        let ds = make_ds smr kind in
        let ws =
          List.init 4 (fun i ->
              Rt.spawn (fun () ->
                  smr.Smr.thread_init ();
                  ignore (Frame.push 8);
                  for _ = 1 to 200 do
                    let key = Rt.rand_below 48 in
                    match Rt.rand_below 3 with
                    | 0 -> ignore (ds.Ts_ds.Set_intf.insert key key)
                    | 1 -> ignore (ds.Ts_ds.Set_intf.remove key)
                    | _ -> ignore (ds.Ts_ds.Set_intf.contains key)
                  done;
                  (* leave a deterministic residue: thread i owns keys 100+i *)
                  ignore (ds.Ts_ds.Set_intf.insert (100 + i) i);
                  smr.Smr.thread_exit ()))
        in
        List.iter Rt.join ws;
        ds.Ts_ds.Set_intf.check ();
        for i = 0 to 3 do
          assert (ds.Ts_ds.Set_intf.contains (100 + i))
        done;
        size := List.length (ds.Ts_ds.Set_intf.to_list ());
        smr.Smr.thread_exit ();
        smr.Smr.flush ());
  check "no memory faults" 0 !faults;
  Alcotest.(check bool) "structure non-empty and consistent" true (!size >= 4)

(* ------------------------------------------------------------------ *)
(* Native-only: ThreadScan stress under real parallelism              *)
(* ------------------------------------------------------------------ *)

let test_native_stress () =
  let module R = Ts_par.Runtime in
  let threads = 8 in
  let cfg =
    { R.default_config with pool = 4; strict_mem = true; max_threads = threads + 2 }
  in
  let retired = ref 0 and freed = ref 0 and phases = ref 0 in
  let res =
    R.run ~config:cfg (fun () ->
        let config =
          { Threadscan.Config.default with max_threads = threads + 2; buffer_size = 24 }
        in
        let ts = Threadscan.create ~config () in
        let smr = Threadscan.smr ts in
        smr.Smr.thread_init ();
        let ds = Ts_ds.Michael_list.create ~smr () in
        for k = 0 to 31 do
          ignore (ds.Ts_ds.Set_intf.insert k k)
        done;
        let ws =
          List.init threads (fun _ ->
              Rt.spawn (fun () ->
                  smr.Smr.thread_init ();
                  ignore (Frame.push 16);
                  for _ = 1 to 1_500 do
                    let key = Rt.rand_below 64 in
                    match Rt.rand_below 4 with
                    | 0 -> ignore (ds.Ts_ds.Set_intf.insert key key)
                    | 1 -> ignore (ds.Ts_ds.Set_intf.remove key)
                    | _ -> ignore (ds.Ts_ds.Set_intf.contains key)
                  done;
                  smr.Smr.thread_exit ()))
        in
        List.iter Rt.join ws;
        smr.Smr.thread_exit ();
        smr.Smr.flush ();
        retired := smr.Smr.counters.Smr.retired;
        freed := smr.Smr.counters.Smr.freed;
        phases := Threadscan.phases ts)
  in
  check "no UAF / double-free / wild access" 0 (Ts_par.Heap.total_faults res.R.heap);
  Alcotest.(check bool) "retirements happened" true (!retired > 100);
  check "no leaked nodes after flush" 0 (!retired - !freed);
  Alcotest.(check bool) "scan phases ran" true (!phases >= 1);
  Alcotest.(check bool) "signals were delivered" true (res.R.run_stats.R.signals_delivered > 0)

let test_native_parallel_speedup_shape () =
  (* Not a perf assertion (CI machines vary; this box may have 1 core):
     just proves a multi-domain pool completes the same workload and
     reports sane wall-clock numbers. *)
  let module R = Ts_par.Runtime in
  let run pool =
    let cfg = { R.default_config with pool; max_threads = 8 } in
    let res =
      R.run ~config:cfg (fun () ->
          let cell = Rt.alloc_region 1 in
          let ws =
            List.init 4 (fun _ ->
                Rt.spawn (fun () ->
                    for _ = 1 to 3_000 do
                      ignore (Rt.faa cell 1)
                    done))
          in
          List.iter Rt.join ws)
    in
    res
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "pool=1 did the work" true (r1.R.run_stats.R.faas = 12_000);
  Alcotest.(check bool) "pool=4 did the work" true (r4.R.run_stats.R.faas = 12_000);
  Alcotest.(check bool) "wall clocks measured" true (r1.R.wall_ns > 0 && r4.R.wall_ns > 0)

(* ------------------------------------------------------------------ *)
(* Native-only: the degradation ladder under real-domain faults        *)
(* ------------------------------------------------------------------ *)

(* Mirrors the tstrace Figure-2 setup: workers publish one node each and
   hold it in a frame until released, so the reclaimer must keep those
   nodes alive across the fault. *)
let ladder_fixture ~nthreads ~config ~fault ~after body_extra =
  let module R = Ts_par.Runtime in
  let cfg =
    { R.default_config with pool = 4; strict_mem = true; max_threads = nthreads + 2 }
  in
  let out = ref None in
  let res =
    R.run ~config:cfg (fun () ->
        let ts = Threadscan.create ~config () in
        let smr = Threadscan.smr ts in
        smr.Smr.thread_init ();
        let cells = Rt.alloc_region nthreads in
        let stop = Rt.alloc_region 1 in
        let ws =
          List.init nthreads (fun i ->
              Rt.spawn (fun () ->
                  smr.Smr.thread_init ();
                  Frame.with_frame 1 (fun fr ->
                      let p = Ts_umem.Ptr.of_addr (Rt.malloc 3) in
                      Frame.set fr 0 p;
                      Rt.write (cells + i) p;
                      while Rt.read stop = 0 do
                        Rt.advance 20
                      done;
                      Frame.set fr 0 0);
                  smr.Smr.thread_exit ()))
        in
        (* wait until every worker has registered and published its node:
           a fault landing before the victim's thread_init would freeze an
           unregistered thread the ladder never signals or suspects *)
        for i = 0 to nthreads - 1 do
          while Rt.read (cells + i) = 0 do
            Rt.sleep 1_000
          done
        done;
        fault ();
        (* retire the held nodes, then filler: phases must run against
           the faulted worker *)
        for i = 0 to nthreads - 1 do
          let p = Rt.read (cells + i) in
          if not (Ts_umem.Ptr.is_null p) then begin
            Rt.write (cells + i) 0;
            smr.Smr.retire p
          end
        done;
        for _ = 1 to 4 * (Threadscan.config ts).Threadscan.Config.buffer_size do
          smr.Smr.retire (Ts_umem.Ptr.of_addr (Rt.malloc 3))
        done;
        after ts smr;
        Rt.write stop 1;
        List.iter Rt.join ws;
        smr.Smr.thread_exit ();
        smr.Smr.flush ();
        out :=
          Some
            ( smr.Smr.counters.Smr.retired - smr.Smr.counters.Smr.freed,
              body_extra ts ))
  in
  let module R = Ts_par.Runtime in
  Alcotest.(check bool) "run not wedged" false res.R.wedged;
  check "no UAF / double-free / wild access" 0 (Ts_par.Heap.total_faults res.R.heap);
  match !out with None -> Alcotest.fail "body never finished" | Some v -> v

let ladder_config =
  (* budgets small enough that the ladder fires inside a tiny run: the
     ack wait gives up fast, suspects stay suspects (not reaped) while
     the victim is merely frozen *)
  {
    Threadscan.Config.default with
    max_threads = 5;
    buffer_size = 8;
    ack_budget = 2_000;
    suspect_phases = 1_000;
  }

let test_native_ladder_proxy_scan () =
  (* Stall worker 1 forever while it holds a published node: phases must
     go blind, suspect it, proxy-scan its frozen stack (keeping the node
     alive), then see it recover after the explicit release. *)
  let outstanding, (suspects, proxy_scans, recoveries) =
    ladder_fixture ~nthreads:3 ~config:ladder_config
      ~fault:(fun () ->
        Rt.stall 1;
        (* the stall request is polled; wait until the victim is parked *)
        while not (Rt.is_stalled 1) do
          Rt.sleep 1_000
        done)
      ~after:(fun ts smr ->
        Rt.unstall 1;
        (* wake propagates in real time; then force post-wake phases so
           the suspect's returning ack is observed *)
        while Rt.is_stalled 1 do
          Rt.sleep 1_000
        done;
        for _ = 1 to 2 * (Threadscan.config ts).Threadscan.Config.buffer_size do
          smr.Smr.retire (Ts_umem.Ptr.of_addr (Rt.malloc 3))
        done)
      (fun ts ->
        (Threadscan.suspected_total ts, Threadscan.proxy_scans ts, Threadscan.recoveries ts))
  in
  check "all retired nodes reclaimed after flush" 0 outstanding;
  Alcotest.(check bool) "victim went suspect" true (suspects >= 1);
  Alcotest.(check bool) "frozen victim was proxy-scanned" true (proxy_scans >= 1);
  Alcotest.(check bool) "release was observed as a recovery" true (recoveries >= 1)

let test_native_ladder_reap_readmit () =
  (* Crash worker 1 mid-hold: the ladder must reap the corpse (dropping
     its pin) and a later thread re-admits cleanly into the same scheme. *)
  let readmitted = ref false in
  let outstanding, reaps =
    ladder_fixture ~nthreads:3
      ~config:{ ladder_config with suspect_phases = 2 }
      ~fault:(fun () ->
        Rt.crash 1;
        (* the kill is polled; wait until the victim is an observable corpse *)
        while not (Rt.is_done 1) do
          Rt.sleep 1_000
        done)
      ~after:(fun _ts smr ->
        (* re-admit: a fresh thread joins the scheme after the reap and
           works normally *)
        let w =
          Rt.spawn (fun () ->
              smr.Smr.thread_init ();
              ignore (Frame.push 4);
              for _ = 1 to 8 do
                smr.Smr.retire (Ts_umem.Ptr.of_addr (Rt.malloc 2))
              done;
              smr.Smr.thread_exit ())
        in
        Rt.join w;
        readmitted := true)
      (fun ts -> Threadscan.reaps ts)
  in
  check "all retired nodes reclaimed after flush" 0 outstanding;
  Alcotest.(check bool) "corpse was reaped" true (reaps >= 1);
  Alcotest.(check bool) "fresh thread re-admitted after the reap" true !readmitted

let test_native_ladder_heartbeat_takeover () =
  (* The reclaimer itself stalls forever mid-phase (injected): another
     retiring worker must watch its heartbeat go stale, wrest the phase
     lock, and finish reclamation; the eventual release resumes the old
     reclaimer into the generation fence. *)
  let module R = Ts_par.Runtime in
  let cfg = { R.default_config with pool = 4; strict_mem = true; max_threads = 6 } in
  let takeovers = ref 0 and outstanding = ref (-1) in
  let res =
    R.run ~config:cfg (fun () ->
        let config =
          {
            ladder_config with
            Threadscan.Config.takeover_steps = 50;
            ack_budget = 1_000;
          }
        in
        let ts = Threadscan.create ~config () in
        let smr = Threadscan.smr ts in
        smr.Smr.thread_init ();
        Threadscan.set_inject ts Threadscan.Stall_mid_phase;
        let bsz = config.Threadscan.Config.buffer_size in
        (* tid 1 fills its buffer then flushes: it becomes the reclaimer
           with nothing in flight (a node still in retire's hand when the
           takeover kills its owner is leaked by design) and stalls
           mid-phase; tid 2 keeps retiring and must take the orphaned
           phase lock over.  The takeover declares t1 dead and kills it,
           so its thread_exit never runs: the reap deregisters it. *)
        let w1 =
          Rt.spawn (fun () ->
              smr.Smr.thread_init ();
              ignore (Frame.push 4);
              for _ = 1 to bsz do
                smr.Smr.retire (Ts_umem.Ptr.of_addr (Rt.malloc 2))
              done;
              smr.Smr.flush ();
              smr.Smr.thread_exit ())
        in
        while not (Rt.is_stalled 1) do
          Rt.sleep 1_000
        done;
        let w2 =
          Rt.spawn (fun () ->
              smr.Smr.thread_init ();
              ignore (Frame.push 4);
              for _ = 1 to 4 * bsz do
                smr.Smr.retire (Ts_umem.Ptr.of_addr (Rt.malloc 2))
              done;
              smr.Smr.thread_exit ())
        in
        Rt.join w2;
        (* release the ex-reclaimer: the takeover already declared it
           dead, so it wakes straight into the kill *)
        Rt.unstall 1;
        Rt.join w1;
        smr.Smr.thread_exit ();
        smr.Smr.flush ();
        takeovers := Threadscan.takeovers ts;
        outstanding := smr.Smr.counters.Smr.retired - smr.Smr.counters.Smr.freed)
  in
  Alcotest.(check bool) "run not wedged" false res.R.wedged;
  check "no UAF / double-free / wild access" 0 (Ts_par.Heap.total_faults res.R.heap);
  Alcotest.(check bool) "phase lock was taken over" true (!takeovers >= 1);
  check "all retired nodes reclaimed after flush" 0 !outstanding

(* ------------------------------------------------------------------ *)

let per_backend name f =
  List.map
    (fun r -> Alcotest.test_case (Fmt.str "%s [%s]" name r.rname) `Quick (fun () -> f r ()))
    runners

let ds_kinds = [ "list"; "hash"; "skiplist"; "lazy-list"; "split-hash" ]

let () =
  Alcotest.run "backends"
    [
      ( "rt-core",
        per_backend "memory roundtrip + uaf" test_memory_roundtrip
        @ per_backend "cas/faa" test_atomics
        @ per_backend "double free detected" test_double_free_detected
        @ per_backend "frames" test_frames
        @ per_backend "clock + rand" test_clock_and_rand
        @ per_backend "spawn/join" test_spawn_join
        @ per_backend "signal delivery" test_signal_delivery );
      ( "sync",
        per_backend "spinlock" test_spinlock
        @ per_backend "ticket lock" test_ticket_lock
        @ per_backend "barrier" test_barrier );
      ( "smr",
        List.concat_map
          (fun d -> per_backend d.Registry.id (fun r -> test_scheme r d))
          Registry.all );
      ("ds", List.concat_map (fun k -> per_backend k (fun r -> test_ds r k)) ds_kinds);
      ( "native-stress",
        [
          Alcotest.test_case "threadscan retire/scan/free under parallelism" `Quick
            test_native_stress;
          Alcotest.test_case "multi-domain pool completes work" `Quick
            test_native_parallel_speedup_shape;
        ] );
      ( "native-ladder",
        [
          Alcotest.test_case "proxy scan keeps a stalled holder's node alive" `Quick
            test_native_ladder_proxy_scan;
          Alcotest.test_case "crash is reaped and a fresh thread re-admits" `Quick
            test_native_ladder_reap_readmit;
          Alcotest.test_case "heartbeat takeover of a stalled reclaimer" `Quick
            test_native_ladder_heartbeat_takeover;
        ] );
    ]
