(* The happens-before race detector + SMR lifecycle sanitizer.

   Three angles:

   - soundness of the quiet side: every structure in the repository, on
     both backends, runs under the analyzer with zero reports (the
     structures are correct; a false positive here would poison every
     sweep);
   - each deliberately seeded bug is caught, with the right violation
     kind and attribution (checker validation — a detector that never
     fires is indistinguishable from one that works);
   - determinism: the same spec yields a byte-identical report, which is
     what makes a failing sweep's replay command trustworthy;

   plus the backend-registration guard the analyzer's decorator relies
   on: entering a second backend mid-run must fail loudly rather than
   silently swapping the ops table out from under the instrumentation. *)

module Rt = Ts_rt
module Frame = Ts_rt.Frame
module Smr = Ts_smr.Smr
module Analyze = Ts_analyze.Analyze
module Scenario = Ts_check.Scenario
module Report = Ts_check.Report

let check = Alcotest.(check int)

type runner = { rname : string; exec : (unit -> unit) -> int }

let sim_runner =
  {
    rname = "sim";
    exec =
      (fun body ->
        let module R = Ts_sim.Runtime in
        let cfg = { R.default_config with strict_mem = true; propagate_failures = true } in
        let rt = R.create cfg in
        ignore (R.add_thread rt body);
        ignore (R.start rt);
        Ts_umem.Mem.total_faults (R.mem rt));
  }

let native_runner =
  {
    rname = "native";
    exec =
      (fun body ->
        let module R = Ts_par.Runtime in
        let cfg = { R.default_config with strict_mem = true; pool = 4 } in
        let res = R.run ~config:cfg body in
        Ts_par.Heap.total_faults res.R.heap);
  }

let runners = [ sim_runner; native_runner ]

(* ------------------------------------------------------------------ *)
(* Clean structures stay clean under the analyzer                     *)
(* ------------------------------------------------------------------ *)

let make_ds smr = function
  | "list" -> Ts_ds.Michael_list.create ~smr ()
  | "hash" -> Ts_ds.Hash_table.create ~smr ~buckets:32 ()
  | "skiplist" -> Ts_ds.Skiplist.create ~smr ~max_height:6 ()
  | "lazy-list" -> Ts_ds.Lazy_list.create ~smr ()
  | "split-hash" -> Ts_ds.Split_hash.set (Ts_ds.Split_hash.create ~smr ~max_buckets:32 ())
  | s -> invalid_arg s

let test_clean r kind () =
  let an = Analyze.attach ~notes:false () in
  let faults =
    Fun.protect
      ~finally:(fun () -> Analyze.detach an)
      (fun () ->
        r.exec (fun () ->
            let config = { Threadscan.Config.default with max_threads = 8; buffer_size = 16 } in
            let smr = Analyze.wrap_smr an (Threadscan.smr (Threadscan.create ~config ())) in
            smr.Smr.thread_init ();
            let ds = make_ds smr kind in
            let ws =
              List.init 4 (fun _ ->
                  Rt.spawn (fun () ->
                      smr.Smr.thread_init ();
                      ignore (Frame.push 8);
                      for _ = 1 to 150 do
                        let key = Rt.rand_below 32 in
                        match Rt.rand_below 3 with
                        | 0 -> ignore (ds.Ts_ds.Set_intf.insert key key)
                        | 1 -> ignore (ds.Ts_ds.Set_intf.remove key)
                        | _ -> ignore (ds.Ts_ds.Set_intf.contains key)
                      done;
                      smr.Smr.thread_exit ()))
            in
            List.iter Rt.join ws;
            ds.Ts_ds.Set_intf.check ();
            smr.Smr.thread_exit ();
            smr.Smr.flush ()))
  in
  check "no memory faults" 0 faults;
  Alcotest.(check bool) "analyzer observed the run" true (Analyze.ops_seen an > 0);
  Alcotest.(check bool) "allocations tracked" true (Analyze.allocs_seen an > 0);
  Alcotest.(check (list string)) "no violations"
    []
    (List.map Analyze.violation_to_string (Analyze.violations an))

(* ------------------------------------------------------------------ *)
(* Seeded bugs are caught, with the right attribution                 *)
(* ------------------------------------------------------------------ *)

(* Known-firing specs (found by sweeping, kept deterministic by seed;
   see test/cram/tscheck_race.t for the CLI view of the same runs). *)
let bug_spec bug =
  let base =
    { Scenario.default with Scenario.ds = Scenario.bug_ds bug; analyze = true; bug = Some bug }
  in
  match bug with
  | Scenario.Bug_elide_lock -> { base with Scenario.threads = 3; ops = 5; key_range = 4; seed = 1 }
  | Scenario.Bug_retire_early -> { base with Scenario.threads = 1; ops = 2; key_range = 4 }
  | Scenario.Bug_skip_fence -> { base with Scenario.threads = 3; ops = 15; key_range = 8; seed = 9 }

let races o =
  List.filter_map (function Report.Race r -> Some r | _ -> None) o.Scenario.violations

let lifecycles o =
  List.filter_map (function Report.Lifecycle l -> Some l | _ -> None) o.Scenario.violations

let test_elide_lock () =
  let o = Scenario.run (bug_spec Scenario.Bug_elide_lock) in
  let write_write =
    List.filter
      (fun (r : Ts_analyze.Analyze.race) ->
        r.rc_first.a_op = "write" && r.rc_second.a_op = "write"
        && r.rc_first.a_tid <> r.rc_second.a_tid)
      (races o)
  in
  Alcotest.(check bool) "unordered write-write pair reported" true (write_write <> []);
  List.iter
    (fun (r : Ts_analyze.Analyze.race) ->
      Alcotest.(check bool) "racing word attributed to an allocation" true
        (r.rc_alloc <> None))
    write_write

let test_retire_early () =
  let o = Scenario.run (bug_spec Scenario.Bug_retire_early) in
  let kinds = List.map (fun (l : Ts_analyze.Analyze.lifecycle) -> l.lc_kind) (lifecycles o) in
  Alcotest.(check bool) "retire-before-unlink reported" true
    (List.mem Ts_analyze.Analyze.Retire_before_unlink kinds);
  Alcotest.(check bool) "double-retire reported" true
    (List.mem Ts_analyze.Analyze.Double_retire kinds);
  List.iter
    (fun (l : Ts_analyze.Analyze.lifecycle) ->
      Alcotest.(check string) "attributed to the owning scheme" "threadscan" l.lc_scheme)
    (lifecycles o)

let test_skip_fence () =
  let o = Scenario.run (bug_spec Scenario.Bug_skip_fence) in
  let free_races =
    List.filter
      (fun (r : Ts_analyze.Analyze.race) ->
        r.rc_first.a_op = "free" || r.rc_second.a_op = "free")
      (races o)
  in
  Alcotest.(check bool) "free-vs-access race reported" true (free_races <> []);
  List.iter
    (fun (r : Ts_analyze.Analyze.race) ->
      Alcotest.(check bool) "free races a different thread's access" true
        (r.rc_first.a_tid <> r.rc_second.a_tid))
    free_races

(* ------------------------------------------------------------------ *)
(* Determinism                                                        *)
(* ------------------------------------------------------------------ *)

let report_of o = List.map Report.to_string o.Scenario.violations

let test_deterministic_report () =
  let spec = bug_spec Scenario.Bug_elide_lock in
  let a = Scenario.run spec and b = Scenario.run spec in
  Alcotest.(check bool) "the seeded bug fired" true (a.Scenario.violations <> []);
  Alcotest.(check (list string)) "same seed, byte-identical report" (report_of a) (report_of b);
  let other = Scenario.run { spec with Scenario.seed = spec.Scenario.seed + 1 } in
  (* not an assertion that it MUST differ — just record that a different
     seed is a different schedule *)
  ignore other

(* ------------------------------------------------------------------ *)
(* Backend install guard                                              *)
(* ------------------------------------------------------------------ *)

let test_install_guard () =
  let refused = ref false in
  let (_ : int) =
    sim_runner.exec (fun () ->
        (* entering the native backend while the simulator run is active
           must be refused — it would swap the ops table (and any attached
           analyzer) out from under every running fiber *)
        match Ts_par.Runtime.run (fun () -> ()) with
        | _ -> ()
        | exception Failure msg ->
            refused := String.length msg > 0;
            ())
  in
  Alcotest.(check bool) "second backend install refused mid-run" true !refused

let test_reinstall_between_runs () =
  (* sequential sim and native runs in one process keep working: install
     between runs is the documented, supported reinstall path *)
  let s1 = sim_runner.exec (fun () -> ignore (Rt.malloc 2)) in
  let n1 = native_runner.exec (fun () -> ignore (Rt.malloc 2)) in
  let s2 = sim_runner.exec (fun () -> ignore (Rt.malloc 2)) in
  check "sim leak-free" 0 s1;
  check "native leak-free" 0 n1;
  check "sim again leak-free" 0 s2

(* ------------------------------------------------------------------ *)

let per_backend name f =
  List.map
    (fun r -> Alcotest.test_case (Fmt.str "%s [%s]" name r.rname) `Quick (fun () -> f r ()))
    runners

let ds_kinds = [ "list"; "hash"; "skiplist"; "lazy-list"; "split-hash" ]

let () =
  Alcotest.run "analyze"
    [
      ("clean", List.concat_map (fun k -> per_backend k (fun r -> test_clean r k)) ds_kinds);
      ( "seeded-bugs",
        [
          Alcotest.test_case "elide-lock: unordered write-write" `Quick test_elide_lock;
          Alcotest.test_case "retire-early: lifecycle automaton" `Quick test_retire_early;
          Alcotest.test_case "skip-fence: free-vs-access race" `Quick test_skip_fence;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same report" `Quick test_deterministic_report ] );
      ( "backend-guard",
        [
          Alcotest.test_case "install refused while a run is active" `Quick test_install_guard;
          Alcotest.test_case "reinstall between runs is supported" `Quick
            test_reinstall_between_runs;
        ] );
    ]
