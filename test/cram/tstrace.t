The trace tool renders one deterministic collect phase (Figure 2):

  $ ../../bin/tstrace.exe
  One ThreadScan collect phase, traced (threads=3, buffer=8, cores=dedicated, fault=none, seed=24301):
  
  replay: dune exec bin/tstrace.exe -- --threads 3 --buffer 8 --cores 0 --fault none --seed 24301
  (entries are in global schedule order; times are per-thread local clocks)
      cycles  event
           0  thread 0 started
        3031  thread 1 started
        5031  thread 2 started
        7031  thread 3 started
        9487  thread 0 signaled thread 1
        9994  thread 1 entered its handler (depth 1)
        9897  thread 0 signaled thread 2
       10404  thread 2 entered its handler (depth 1)
       10307  thread 0 signaled thread 3
       10814  thread 3 entered its handler (depth 1)
       10745  thread 1 returned from its handler
       11165  thread 2 returned from its handler
       11585  thread 3 returned from its handler
       11897  thread 1 finished
       11897  thread 2 finished
       11897  thread 3 finished
       14041  thread 0 finished
  
  phases completed: 1;  signals sent: 3;  nodes carried (still referenced): 8
