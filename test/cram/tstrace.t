The trace tool renders one deterministic collect phase (Figure 2):

  $ ../../bin/tstrace.exe
  One ThreadScan collect phase, traced (threads=3, buffer=8, cores=dedicated, seed=24301):
  
  replay: dune exec bin/tstrace.exe -- --threads 3 --buffer 8 --cores 0 --seed 24301
  (entries are in global schedule order; times are per-thread local clocks)
      cycles  event
           0  thread 0 started
        2921  thread 1 started
        4921  thread 2 started
        6921  thread 3 started
        9347  thread 0 signaled thread 1
        9854  thread 1 entered its handler (depth 1)
        9757  thread 0 signaled thread 2
       10264  thread 2 entered its handler (depth 1)
       10167  thread 0 signaled thread 3
       10674  thread 3 entered its handler (depth 1)
       10605  thread 1 returned from its handler
       11025  thread 2 returned from its handler
       11445  thread 3 returned from its handler
       11697  thread 1 finished
       11697  thread 2 finished
       11697  thread 3 finished
       13741  thread 0 finished
  
  phases completed: 1;  signals sent: 3;  nodes carried (still referenced): 8
