Forked schedule-tree exploration (docs/CHECKING.md, "Forked
exploration"): instead of replaying every schedule from its seed, the
explorer snapshots the running simulator at scheduling decision points
by forking the process, and each leaf inherits the trunk's prefix
without re-executing it.  Exploration is sequential and deterministic,
so the sweep statistics below are exact.

A small forked sweep.  The first fork line counts trunk schedules,
process snapshots taken, and schedules pruned; the second accounts
steps: shared (inherited prefixes), fresh (actually executed, scout and
fork passes included), and replay-equivalent (what replay-from-seed
would have spent on the same schedules) — the ratio is the speedup:

  $ ../../bin/tscheck.exe sweep --ds lazy --schedules 8 --ops 20 --key-range 16 --fork
  sweep: 1 structures x 8 schedules (seeds 0..7, uniform/pct:3 alternating)
  fork: factor=3 stride=auto window=0.50 prune=off differential=0
    lazy     8 schedules     672 ops     8 phases   128 keys checked  0 violations
          fork: 2 trunks  6 snapshots  0 schedules pruned
          fork: 21519 prefix steps shared  20960 fresh  33984 replay-equivalent  speedup 1.6x
  total: 8 schedules, 0 with violations

Replay-from-seed stays the oracle: --differential replays sampled leaves
from their seed through the preloaded choice log and fails loudly unless
the traces are byte-identical and the outcomes equal.  --prune turns on
sleep-set pruning of forked alternatives whose first step commutes with
every explored sibling's:

  $ ../../bin/tscheck.exe sweep --ds lazy --schedules 24 --ops 20 --key-range 16 --fork --prune --differential 2
  sweep: 1 structures x 24 schedules (seeds 0..23, uniform/pct:3 alternating)
  fork: factor=3 stride=auto window=0.50 prune=on differential=2
    lazy    24 schedules    2016 ops    24 phases   384 keys checked  0 violations
          fork: 2 trunks  22 snapshots  0 schedules pruned
          fork: 78815 prefix steps shared  31626 fresh  101946 replay-equivalent  speedup 3.2x
          differential: 4 leaves replayed from seed  0 mismatches
  total: 24 schedules, 0 with violations

At scale the prefix sharing dominates — and with enough leaves the fork
points climb into regions where several siblings contend, so pruning
starts retiring commuting alternatives (pruned schedules are dropped
from the explored count, never silently kept):

  $ ../../bin/tscheck.exe sweep --ds lazy --schedules 400 --fork --prune
  sweep: 1 structures x 400 schedules (seeds 0..399, uniform/pct:3 alternating)
  fork: factor=3 stride=auto window=0.50 prune=on differential=0
    lazy   398 schedules   66864 ops  1394 phases  12736 keys checked  0 violations
          fork: 2 trunks  398 snapshots  2 schedules pruned
          fork: 4100290 prefix steps shared  565815 fresh  4642760 replay-equivalent  speedup 8.2x
  total: 398 schedules, 0 with violations

Forking composes with the happens-before and lifecycle analyzers — the
forked children carry the analyzer state in their snapshot:

  $ ../../bin/tscheck.exe sweep --ds lazy --schedules 8 --ops 20 --key-range 16 --fork --race --differential 2
  sweep: 1 structures x 8 schedules (seeds 0..7, uniform/pct:3 alternating)
  fork: factor=3 stride=auto window=0.50 prune=off differential=2
  analysis: happens-before + lifecycle checkers on
    lazy     8 schedules     672 ops    12 phases   128 keys checked  0 violations
          fork: 2 trunks  6 snapshots  0 schedules pruned
          fork: 42297 prefix steps shared  44124 fresh  69138 replay-equivalent  speedup 1.6x
          differential: 4 leaves replayed from seed  0 mismatches
  total: 8 schedules, 0 with violations

A forked sweep finds the same seeded bugs a replay sweep finds, and
prints the recorded choice log length so the failing schedule can be
replayed exactly:

  $ ../../bin/tscheck.exe sweep --ds churn --schedules 2 --inject skip-carryover --fork
  sweep: 1 structures x 2 schedules (seeds 0..1, uniform/pct:3 alternating)
  fork: factor=3 stride=auto window=0.50 prune=off differential=0
  injected bug: skip-carryover
    churn    2 schedules       0 ops    12 phases     0 keys checked  2 violations
          fork: 2 trunks  0 snapshots  0 schedules pruned
          fork: 0 prefix steps shared  9520 fresh  9520 replay-equivalent  speedup 1.0x
  total: 2 schedules, 2 with violations
  
  first failing schedule (churn, forked from seed 0):
    sanitizer: use-after-free read at addr 4885 (tid 1, phase 3)
  recorded schedule: 5945 choices (replayable via the preloaded choice log)
  [1]

