`--json` writes a machine-readable BENCH_<experiment>.json next to the
table.  On the sim backend the whole artifact is a pure function of the
seed (wall-clock fields are zero there), so its bytes are exact:

  $ ../../bin/tsbench.exe sweep ablate-slow-epoch --scale quick --json
  
  == ablate-slow-epoch ==
  threads          epoch     delay=18k     delay=75k    delay=600k
  8               4677.5        4645.0        4362.5        3522.5
  16              9085.0        9000.0        8380.0        7212.5
  (throughput: completed operations per million simulated cycles)
  wrote BENCH_ablate-slow-epoch.json

  $ cat BENCH_ablate-slow-epoch.json
  {
    "target": "ablate-slow-epoch",
    "backend": "sim",
    "scale": "quick",
    "points": [
      { "threads": 8, "cells": [
        { "series": "epoch", "scheme": "epoch", "ds": "list", "ops": 1871, "throughput": 4677.500, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 93, "freed": 93, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 188, "mag_misses": 14, "mag_refills": 7, "mag_flushes": 0 },
        { "series": "delay=18k", "scheme": "slow-epoch", "params": { "delay": 18750 }, "ds": "list", "ops": 1858, "throughput": 4645.000, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 92, "freed": 92, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 186, "mag_misses": 14, "mag_refills": 7, "mag_flushes": 0 },
        { "series": "delay=75k", "scheme": "slow-epoch", "params": { "delay": 75000 }, "ds": "list", "ops": 1745, "throughput": 4362.500, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 87, "freed": 87, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 180, "mag_misses": 14, "mag_refills": 7, "mag_flushes": 0 },
        { "series": "delay=600k", "scheme": "slow-epoch", "params": { "delay": 600000 }, "ds": "list", "ops": 1409, "throughput": 3522.500, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 72, "freed": 72, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 151, "mag_misses": 14, "mag_refills": 7, "mag_flushes": 0 }
      ] },
      { "threads": 16, "cells": [
        { "series": "epoch", "scheme": "epoch", "ds": "list", "ops": 3634, "throughput": 9085.000, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 195, "freed": 195, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 266, "mag_misses": 22, "mag_refills": 11, "mag_flushes": 1 },
        { "series": "delay=18k", "scheme": "slow-epoch", "params": { "delay": 18750 }, "ds": "list", "ops": 3600, "throughput": 9000.000, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 194, "freed": 194, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 265, "mag_misses": 22, "mag_refills": 11, "mag_flushes": 1 },
        { "series": "delay=75k", "scheme": "slow-epoch", "params": { "delay": 75000 }, "ds": "list", "ops": 3352, "throughput": 8380.000, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 179, "freed": 179, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 250, "mag_misses": 22, "mag_refills": 11, "mag_flushes": 0 },
        { "series": "delay=600k", "scheme": "slow-epoch", "params": { "delay": 600000 }, "ds": "list", "ops": 2885, "throughput": 7212.500, "wall_ns": 0, "wall_throughput": 0.0, "trials": 1, "wall_min_ns": 0, "wall_max_ns": 0, "retired": 150, "freed": 150, "outstanding": 0, "faults": 0, "signals": 0, "mag_hits": 224, "mag_misses": 22, "mag_refills": 11, "mag_flushes": 0 }
      ] }
    ]
  }
