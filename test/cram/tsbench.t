The CLI lists every experiment of the paper's evaluation:

  $ ../../bin/tsbench.exe list
  fig3-list
  fig3-hash
  fig3-skip
  fig4-list
  fig4-hash
  fig4-skip
  fig5-hash
  ablate-buffer
  ablate-slow-epoch
  ablate-help-free
  ablate-padding
  ablate-structures
  ablate-pipeline
  ablate-crash
  chaos-recovery

A single run is a pure function of its seed, so its output is exact:

  $ ../../bin/tsbench.exe run -d list -s leaky -t 2 --horizon 50000 --init 16 --range 32
  workload:   list + leaky, 2 threads on dedicated cores
              init=16 range=32 updates=20% horizon=50000 cycles seed=3045
  ops:        317 (6340.0 per Mcycle)
  reclaim:    retired=14 freed=0 outstanding=14 peak-live=32
  simulator:  elapsed=55394 signals=0 switches=0 faults=0
  scheme:     mag-hits=29 mag-misses=3 mag-refills=2 mag-flushes=0

Unknown experiment names are rejected with the list of valid ones:

  $ ../../bin/tsbench.exe sweep fig9-cache 2>&1 | head -1
  tsbench: unknown experiment "fig9-cache"; one of: fig3-list, fig3-hash, fig3-skip, fig4-list, fig4-hash, fig4-skip, fig5-hash, ablate-buffer, ablate-slow-epoch, ablate-help-free, ablate-padding, ablate-structures, ablate-pipeline, ablate-crash, chaos-recovery
