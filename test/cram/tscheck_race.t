The happens-before race detector and SMR lifecycle sanitizer, driven
through the checker CLI.  Each seeded bug (--bug) forces the structure
it lives in, implies --race, and must be caught with both access sites
(races) or the owning scheme (lifecycle violations) attributed.

A lock-elided lazy list: two mutators write the same node word with no
happens-before edge.  The race report names both writes; everything
after it (the broken history) is downstream damage from the same lost
update:

  $ ../../bin/tscheck.exe replay --threads 3 --ops 5 --key-range 4 --seed 1 --bug elide-lock
  replay: ds=lazy threads=3 ops=5 key-range=4 buffer=8 inject=none fault=none policy=uniform seed=1 race bug=elide-lock
  outcome: 3 violations (events=21 phases=1 steps=1602 keys-checked=4)
    race on word 3696 (alloc #1+2): t1 write@41 vs t3 write@46
    oracle: heap not back to baseline (live=4 baseline=2 (crash-leak budget 0))
    non-linearizable: lazy key 1: [196,347] t2 remove(1)=false; [497,650] t1 insert(1)=true; [499,607] t2 remove(1)=false; [678,848] t3 remove(1)=false; [1176,1207] t0 remove(1)=false
  [1]

A Michael list that retires right after marking, while the predecessor
still links to the node: the lifecycle automaton flags the
retire-before-unlink at the retire itself, and the double-retire when a
traversal later unlinks and retires the same node:

  $ ../../bin/tscheck.exe replay --threads 1 --ops 2 --key-range 4 --seed 0 --bug retire-early
  replay: ds=list threads=1 ops=2 key-range=4 buffer=8 inject=none fault=none policy=uniform seed=0 race bug=retire-early
  outcome: 10 violations (events=8 phases=1 steps=727 keys-checked=4)
    lifecycle [threadscan] retire-before-unlink: alloc #1 (base 3590) by t1: 1 live shared reference at retire
    lifecycle [threadscan] double-retire: alloc #1 (base 3590) by t1: already retired to threadscan
    lifecycle [threadscan] retire-before-unlink: alloc #0 (base 3585) by t0: 1 live shared reference at retire
    lifecycle [threadscan] double-retire: alloc #0 (base 3585) by t0: already retired to threadscan
    lifecycle [threadscan] retire-before-unlink: alloc #2 (base 3510) by t0: 1 live shared reference at retire
    lifecycle [threadscan] double-retire: alloc #2 (base 3510) by t0: already retired to threadscan
    oracle: double retire (addr 3510 retired twice in generation 1)
    oracle: double retire (addr 3585 retired twice in generation 1)
    oracle: double retire (addr 3590 retired twice in generation 1)
    oracle: retired nodes never freed (outstanding=3 after flush (crash-leak budget 0))
  [1]

An epoch scheme that skips the fence announcing its odd epoch: a
concurrent cleanup reads the stale even counter and frees a node mid-
traversal — reported as a free racing an unordered read, with both
sites:

  $ ../../bin/tscheck.exe replay --threads 3 --ops 15 --key-range 8 --seed 9 --bug skip-fence
  replay: ds=list threads=3 ops=15 key-range=8 buffer=8 inject=none fault=none policy=uniform seed=9 race bug=skip-fence
  outcome: 1 violations (events=57 phases=0 steps=4419 keys-checked=8)
    race on word 413 (alloc #2+0): t3 read@334 vs t1 free@315
  [1]

The same specs without the seeded bug stay silent under --race — the
detectors fire on bugs, not on correct synchronization:

  $ ../../bin/tscheck.exe replay --ds lazy --threads 3 --ops 5 --key-range 4 --seed 1 --race
  replay: ds=lazy threads=3 ops=5 key-range=4 buffer=8 inject=none fault=none policy=uniform seed=1 race
  outcome: 0 violations (events=21 phases=1 steps=1956 keys-checked=4)

  $ ../../bin/tscheck.exe replay --ds list --threads 3 --ops 15 --key-range 8 --seed 9 --race
  replay: ds=list threads=3 ops=15 key-range=8 buffer=8 inject=none fault=none policy=uniform seed=9 race
  outcome: 0 violations (events=57 phases=1 steps=4635 keys-checked=8)
