The facade-discipline pass.  Everything outside lib/rt, lib/sim and
lib/par must go through the Ts_rt facade; naming the simulator or a
domain primitive directly fails the lint.

A fake tree standing in for the repository's lib/, with a data-structure
module that smuggles in an Atomic and spawns a Domain:

  $ mkdir -p lib/ds lib/rt
  $ cat > lib/ds/bad.ml <<'EOF'
  > (* A comment may say Atomic.make freely; code may not. *)
  > let counter = Atomic.make 0
  > let spawn f = Domain.spawn f
  > let label = "Mutex.lock inside a string is fine"
  > EOF
  $ cat > lib/ds/good.ml <<'EOF'
  > let bump t = Ts_rt.faa t 1
  > EOF

lib/rt is a backend directory, so it may (must) name the primitives:

  $ cat > lib/rt/backend.ml <<'EOF'
  > let current = Atomic.make None
  > EOF

The planted references are reported with file, line and a reason, and
the pass exits nonzero:

  $ ../../bin/tslint.exe lib
  lib/ds/bad.ml:2: forbidden reference "Atomic." — backend primitive; route shared state through Ts_rt ops
  lib/ds/bad.ml:3: forbidden reference "Domain." — backend primitive; spawn through Ts_rt
  tslint: 2 violations of the Ts_rt facade discipline
  [1]

Removing the offender leaves a clean tree:

  $ rm lib/ds/bad.ml
  $ ../../bin/tslint.exe lib
  tslint: OK
