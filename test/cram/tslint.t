The facade-discipline pass.  Everything outside lib/rt, lib/sim and
lib/par must go through the Ts_rt facade; naming the simulator or a
domain primitive directly fails the lint.  The checker is AST-based:
aliasing or opening a forbidden module is caught at the binding, which
the old textual grep could not see.

A fake tree standing in for the repository's lib/, with a data-structure
module that smuggles in an Atomic three different ways:

  $ mkdir -p fake/ds fake/rt
  $ cat > fake/ds/bad.ml <<'EOF'
  > (* A comment may say Atomic.make freely; code may not. *)
  > module A = Atomic
  > open Mutex
  > let counter = A.make 0
  > let spawn f = Domain.spawn f
  > let label = "Mutex.lock inside a string is fine"
  > EOF
  $ cat > fake/ds/good.ml <<'EOF'
  > let bump t = Ts_rt.faa t 1
  > EOF

fake/rt is a backend directory, so it may (must) name the primitives:

  $ cat > fake/rt/backend.ml <<'EOF'
  > let current = Atomic.make 0
  > EOF

The planted references are reported with file, line, column and a
reason — note the alias is flagged at its binding (line 2), not at the
use (line 4), and the open (line 3) is caught too:

  $ ../../bin/tslint.exe --pass facade fake
  fake/ds/bad.ml:2:11: [facade] error: forbidden reference "Atomic" — backend primitive; route shared state through Ts_rt ops
  fake/ds/bad.ml:3:5: [facade] error: forbidden reference "Mutex" — backend primitive; use Ts_rt.critical or lib/sync locks
  fake/ds/bad.ml:5:14: [facade] error: forbidden reference "Domain" — backend primitive; spawn through Ts_rt
  tslint: 3 errors, 0 warnings (1 pass, 3 files)
  [1]

An inline waiver silences one diagnostic and must say why:

  $ cat > fake/ds/waived.ml <<'EOF'
  > module A = Atomic (* tslint: allow facade -- demo backdoor *)
  > EOF
  $ ../../bin/tslint.exe --pass facade fake/ds/waived.ml
  tslint: OK (1 pass, 1 files)

A waiver that silences nothing is itself reported, so the set cannot
rot:

  $ cat > fake/ds/stale.ml <<'EOF'
  > (* tslint: allow facade -- nothing here anymore *)
  > let x = 1
  > EOF
  $ ../../bin/tslint.exe --pass facade fake/ds/stale.ml
  fake/ds/stale.ml:1:0: [waiver] warning: unused waiver for facade (nothing here anymore) — remove it or the violation moved
  tslint: OK, 1 warning (1 pass, 1 files)

Removing the offender leaves a clean tree (warnings do not fail it):

  $ rm fake/ds/bad.ml
  $ ../../bin/tslint.exe --pass facade fake | sed -E 's/[0-9]+ files/N files/'
  fake/ds/stale.ml:1:0: [waiver] warning: unused waiver for facade (nothing here anymore) — remove it or the violation moved
  tslint: OK, 1 warning (1 pass, N files)
