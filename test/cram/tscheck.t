The checker CLI, driven the way a user would drive it.

A small clean sweep across every structure: uniform and PCT schedules
alternate through the seed family, every operation is linearizability-
checked, and the oracles stay quiet.

  $ ../../bin/tscheck.exe sweep --schedules 4 --ops 20 --key-range 16
  sweep: 4 structures x 4 schedules (seeds 0..3, uniform/pct:3 alternating)
    list     4 schedules     336 ops     6 phases    64 keys checked  0 violations
    hash     4 schedules     336 ops     7 phases    64 keys checked  0 violations
    skip     4 schedules     336 ops     5 phases    64 keys checked  0 violations
    churn    4 schedules       0 ops    16 phases     0 keys checked  0 violations
  total: 16 schedules, 0 with violations

A deliberately seeded protocol bug — the sweep skipping carry-over of
marked (still referenced) nodes — is caught, attributed by the sanitizer
to a thread and a phase, shrunk to a minimal spec, and printed as a
copy-pasteable replay command:

  $ ../../bin/tscheck.exe sweep --ds churn --schedules 2 --inject skip-carryover
  sweep: 1 structures x 2 schedules (seeds 0..1, uniform/pct:3 alternating)
  injected bug: skip-carryover
    churn    2 schedules       0 ops    12 phases     0 keys checked  2 violations
  total: 2 schedules, 2 with violations
  
  first failing schedule (churn, seed 0):
    sanitizer: use-after-free read at addr 4885 (tid 1, phase 3)
  shrunk to threads=1 ops=10 key-range=4 seed=0
  replay: dune exec bin/tscheck.exe -- replay --ds churn --threads 1 --ops 10 --key-range 4 --buffer 8 --inject skip-carryover --fault none --policy uniform --seed 0
  [1]


The replay command reproduces the same violation on its own:

  $ ../../bin/tscheck.exe replay --ds churn --threads 1 --ops 20 --key-range 4 --buffer 8 --inject skip-carryover --policy uniform --seed 0
  replay: ds=churn threads=1 ops=20 key-range=4 buffer=8 inject=skip-carryover fault=none policy=uniform seed=0
  outcome: 1 violations (events=0 phases=2 steps=860 keys-checked=0)
    sanitizer: use-after-free read at addr 3526 (tid 1, phase 1)
  [1]

A clean replay of the same spec without the injection exits zero:

  $ ../../bin/tscheck.exe replay --ds churn --threads 1 --ops 20 --key-range 4 --buffer 8 --policy uniform --seed 0
  replay: ds=churn threads=1 ops=20 key-range=4 buffer=8 inject=none fault=none policy=uniform seed=0
  outcome: 0 violations (events=0 phases=3 steps=1732 keys-checked=0)

Environment faults are legal executions the protocol must survive: a
sweep that crashes a worker mid-workload stays clean — the degradation
ladder reaps the dead thread and reclamation continues:

  $ ../../bin/tscheck.exe sweep --ds churn --schedules 4 --ops 20 --key-range 8 --fault crash:1@10
  sweep: 1 structures x 4 schedules (seeds 0..3, uniform/pct:3 alternating)
  injected fault: crash:1@10
    churn    4 schedules       0 ops    15 phases     0 keys checked  0 violations
  total: 4 schedules, 0 with violations

The shrunk counterexample from the fault-injection sweep: disabling the
frozen-suspect proxy scan under a stall frees a held node under the
sleeping thread, and the sanitizer attributes the use-after-free.  This
is the replay command the explorer printed, preserved verbatim:

  $ ../../bin/tscheck.exe replay --ds churn --threads 2 --ops 40 --key-range 4 --buffer 8 --inject skip-proxy-scan --fault stall:1@10:60000 --policy pct:3 --seed 1
  replay: ds=churn threads=2 ops=40 key-range=4 buffer=8 inject=skip-proxy-scan fault=stall:1@10:60000 policy=pct:3 seed=1
  outcome: 1 violations (events=0 phases=5 steps=3685 keys-checked=0)
    sanitizer: use-after-free read at addr 4423 (tid 1, phase 4)
  [1]

The identical schedule with the proxy scan back on rides out the stall:

  $ ../../bin/tscheck.exe replay --ds churn --threads 2 --ops 40 --key-range 4 --buffer 8 --fault stall:1@10:60000 --policy pct:3 --seed 1
  replay: ds=churn threads=2 ops=40 key-range=4 buffer=8 inject=none fault=stall:1@10:60000 policy=pct:3 seed=1
  outcome: 0 violations (events=0 phases=8 steps=5498 keys-checked=0)
