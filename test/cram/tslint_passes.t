The pass catalogue:

  $ ../../bin/tslint.exe --list-passes
  facade     shared state must flow through the Ts_rt facade (catches aliases and opens)
  critical   Ts_rt.critical bodies: no spawn/join/poll/sleep, no polling loops, no nesting
  padded     cross-thread-hot record fields in core/reclaim/par/smr must be Ts_util.Padded
  sigsafe    code reachable from signal-handler registration must not malloc/free or lock
  retire     Smr.retire must be dominated by an unlink write/cas in the same function

The repository's own sources are clean under every pass — the inline
waivers in the tree cover exactly the documented backdoors, so any new
violation (or newly unused waiver) fails this run.  The file count is
normalised: it grows with the tree.

  $ ../../bin/tslint.exe ../../lib ../../bin | sed -E 's/[0-9]+ files/N files/'
  tslint: OK (5 passes, N files)

A seeded violation exits 1 and cites file, line and pass:

  $ ../../bin/tslint.exe --pass retire ../lint_fixtures/fixture_retire.ml
  ../lint_fixtures/fixture_retire.ml:8:40: [retire] error: retire of cur with no unlink evidence on the path: no preceding write/cas targets another cell — the node may still be reachable from the structure (retire-before-unlink)
  tslint: 1 error, 0 warnings (1 pass, 1 files)
  [1]

Pass selection is real — the same fixture is clean under another pass:

  $ ../../bin/tslint.exe --pass critical ../lint_fixtures/fixture_retire.ml
  tslint: OK (1 pass, 1 files)

The JSON report carries the same diagnostics machine-readably:

  $ ../../bin/tslint.exe --json --pass padded ../lint_fixtures/fixture_padded.ml
  {
    "tool": "ts_lint",
    "version": 1,
    "roots": ["../lint_fixtures/fixture_padded.ml"],
    "passes": ["padded"],
    "files": 1,
    "errors": 2,
    "warnings": 0,
    "diagnostics": [
      {"pass":"padded","severity":"error","file":"../lint_fixtures/fixture_padded.ml","line":8,"col":31,"message":"hot field hot.sig_word is not line-isolated — wrap the cell in Ts_util.Padded.copy"},
      {"pass":"padded","severity":"error","file":"../lint_fixtures/fixture_padded.ml","line":10,"col":29,"message":"record field value holds a bare Atomic.make cell — adjacent cells share a cache line; wrap it in Ts_util.Padded.copy (or whitelist the type as cold)"}
    ]
  }
  [1]

An unknown pass is a usage error, not a clean run:

  $ ../../bin/tslint.exe --pass nosuch ../lint_fixtures/fixture_retire.ml
  tslint: unknown pass "nosuch" (see --list-passes)
  [2]
